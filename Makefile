GO ?= go

.PHONY: all build test race vet check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (the fault-tolerance paths are concurrency-heavy).
check:
	./scripts/check.sh

# bench regenerates the committed send-path baseline: probes/sec,
# ns/probe, and allocs/probe for the per-probe shape and the batch-size
# sweep, as JSON with speedups relative to the per-probe baseline.
bench:
	$(GO) test -run XXX -bench 'BenchmarkSendPath' -benchtime=2s ./internal/core \
		| $(GO) run ./scripts/benchjson -baseline BenchmarkSendPathPerProbe \
		> BENCH_sendpath.json
	@cat BENCH_sendpath.json

clean:
	$(GO) clean ./...
