GO ?= go

.PHONY: all build test race vet check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (the fault-tolerance paths are concurrency-heavy).
check:
	./scripts/check.sh

# bench regenerates the committed baselines: the send-path shapes
# (probes/sec, ns/probe, allocs/probe with speedups vs per-probe) and
# the flight-recorder hot path (RecordAt must stay <= 50 ns / 0 allocs;
# the Stamp variant prices the optional time.Now).
bench:
	$(GO) test -run XXX -bench 'BenchmarkSendPath' -benchtime=2s ./internal/core \
		| $(GO) run ./scripts/benchjson -baseline BenchmarkSendPathPerProbe \
		> BENCH_sendpath.json
	@cat BENCH_sendpath.json
	$(GO) test -run XXX -bench 'BenchmarkTrace' -benchmem -benchtime=2s ./internal/trace \
		| $(GO) run ./scripts/benchjson \
		> BENCH_trace.json
	@cat BENCH_trace.json
	$(GO) test -run XXX -bench 'BenchmarkRecvPath' -benchmem -benchtime=2s ./internal/core \
		| $(GO) run ./scripts/benchjson -baseline 'BenchmarkRecvPath/workers=1' \
		> BENCH_recvpath.json
	@cat BENCH_recvpath.json

clean:
	$(GO) clean ./...
