GO ?= go

.PHONY: all build test race vet check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (the fault-tolerance paths are concurrency-heavy).
check:
	./scripts/check.sh

clean:
	$(GO) clean ./...
