// Package zmapgo_test is the benchmark harness: one testing.B target per
// table and figure in "Ten Years of ZMap", plus end-to-end engine
// benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks execute the same experiment code as
// cmd/experiments (at reduced scale, so the suite stays fast) and report
// the headline measurement as a custom metric; the experiment tests in
// internal/experiments assert the paper-matching shapes at full scale.
package zmapgo_test

import (
	"context"
	"testing"
	"time"

	"zmapgo/internal/experiments"
	"zmapgo/zmap"
)

// BenchmarkFig1AdoptionPipeline regenerates the Figure 1 adoption series
// (scanner population -> telescope -> tool attribution).
func BenchmarkFig1AdoptionPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(nil, 30000, int64(i)+1)
		b.ReportMetric(rows[len(rows)-1].Measured*100, "zmap-share-2024Q1-%")
	}
}

// BenchmarkFig2And3TopPorts regenerates the port breakdowns.
func BenchmarkFig2And3TopPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig23(nil, 60000, int64(i)+1)
		b.ReportMetric(float64(res.AllScans[0].Port), "top-port")
	}
}

// BenchmarkFig4CountryShares regenerates the per-country table.
func BenchmarkFig4CountryShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(nil, 60000, int64(i)+1)
		b.ReportMetric(rows[0].Measured*100, "max-country-share-%")
	}
}

// BenchmarkFig5DedupWindow regenerates the sliding-window duplicate-rate
// sweep.
func BenchmarkFig5DedupWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(nil, 0.3, uint64(i)+1)
		b.ReportMetric(rows[len(rows)-1].ResidualPct, "residual-dups-1e6-window-%")
	}
}

// BenchmarkFig6Sharding regenerates the sharding-scheme comparison.
func BenchmarkFig6Sharding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(nil, int64(i)+1)
		b.ReportMetric(float64(rows[len(rows)-1].NaiveMissed), "naive-missed-targets")
	}
}

// BenchmarkFig7TCPOptions regenerates the option-layout hitrate sweep.
func BenchmarkFig7TCPOptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(nil, 400000, uint64(i)+1)
		var none, linux float64
		for _, r := range rows {
			switch r.Layout.String() {
			case "none":
				none = r.Hitrate
			case "linux":
				linux = r.Hitrate
			}
		}
		b.ReportMetric((linux/none-1)*100, "option-lift-%")
	}
}

// BenchmarkFig8PaperTable renders the Appendix B dataset.
func BenchmarkFig8PaperTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topics := experiments.Fig8(nil)
		b.ReportMetric(float64(len(topics)), "topics")
	}
}

// BenchmarkTableLineRate regenerates the §4.3 wire-rate arithmetic.
func BenchmarkTableLineRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.LineRate(nil)
		b.ReportMetric(rows[0].Mpps1GbE, "mpps-1gbe-no-options")
	}
}

// BenchmarkTableIPID regenerates the static-vs-random IP ID comparison.
func BenchmarkTableIPID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.IPIDHitrate(nil, 100000, uint64(i)+1)
		b.ReportMetric((rows[0].Hitrate-rows[1].Hitrate)*100, "hitrate-delta-%")
	}
}

// BenchmarkTableGenerators regenerates the generator-search table.
func BenchmarkTableGenerators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Generators(nil, 100, int64(i)+1)
		b.ReportMetric(rows[len(rows)-1].AvgAttempts, "avg-attempts-2^48-group")
	}
}

// BenchmarkTableDedupMemory regenerates the §4.1 memory table.
func BenchmarkTableDedupMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DedupMem(nil)
		b.ReportMetric(float64(rows[2].Bytes)/1e6, "window-memory-MB")
	}
}

// BenchmarkTableMasscanCoverage regenerates the randomization-coverage
// comparison.
func BenchmarkTableMasscanCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Masscan(nil, 300_000, int64(i)+1)
		b.ReportMetric(rows[2].MissRate*100, "biased-miss-%")
	}
}

// BenchmarkTableL4L7 regenerates the §3 discrepancy analysis.
func BenchmarkTableL4L7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.L4L7(nil, 120000, uint64(i)+1)
		b.ReportMetric(res.SingleProbeMiss*100, "single-probe-miss-%")
	}
}

// BenchmarkEndToEndScan measures the full engine over the simulated
// Internet: cyclic generation, probe construction, link, validation,
// dedup, and output.
func BenchmarkEndToEndScan(b *testing.B) {
	internet := zmap.NewInternet(zmap.SimOptions{Seed: 9, Lossless: true, DisableBlowback: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link := internet.NewLink(1<<16, 0)
		scanner, err := zmap.Options{
			Ranges:   []string{"10.0.0.0/17"},
			Ports:    "80",
			Seed:     int64(i) + 1,
			Threads:  4,
			Cooldown: 10 * time.Millisecond,
		}.Compile(link)
		if err != nil {
			b.Fatal(err)
		}
		summary, err := scanner.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		link.Close()
		b.ReportMetric(summary.SendRatePPS, "probes/sec")
	}
}

// BenchmarkEndToEndMultiport measures the multiport (IP, port) target
// path through the 48-bit-capable space.
func BenchmarkEndToEndMultiport(b *testing.B) {
	internet := zmap.NewInternet(zmap.SimOptions{Seed: 10, Lossless: true, DisableBlowback: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link := internet.NewLink(1<<16, 0)
		scanner, err := zmap.Options{
			Ranges:   []string{"10.0.0.0/19"},
			Ports:    "22,80,443,8080",
			Seed:     int64(i) + 1,
			Threads:  4,
			Cooldown: 10 * time.Millisecond,
		}.Compile(link)
		if err != nil {
			b.Fatal(err)
		}
		summary, err := scanner.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		link.Close()
		b.ReportMetric(summary.SendRatePPS, "probes/sec")
	}
}

// BenchmarkTableFingerprint regenerates the Mazel et al. scan
// identification analysis (§4.2).
func BenchmarkTableFingerprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fingerprint(nil, 512, 4, int64(i)+1)
		detected := 0.0
		for _, r := range rows {
			if r.Detected {
				detected++
			}
		}
		b.ReportMetric(detected, "streams-identified")
	}
}
