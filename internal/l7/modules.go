package l7

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ProtocolModule parses a raw banner into structured, statically-typed
// fields — the zgrab2 module pattern: each protocol scanner owns its
// output schema, and a registry maps names to modules so callers select
// them like CLI subcommands.
type ProtocolModule interface {
	// Name is the registry key ("http", "tls", "ssh", "banner").
	Name() string
	// Matches reports whether the banner looks like this protocol.
	Matches(banner string) bool
	// Parse extracts structured fields. Only called when Matches.
	Parse(banner string) map[string]string
}

var moduleRegistry = map[string]ProtocolModule{}

// RegisterModule adds a protocol module; duplicate names panic.
func RegisterModule(m ProtocolModule) {
	if _, dup := moduleRegistry[m.Name()]; dup {
		panic("l7: duplicate module " + m.Name())
	}
	moduleRegistry[m.Name()] = m
}

// LookupModule retrieves a module by name.
func LookupModule(name string) (ProtocolModule, error) {
	m, ok := moduleRegistry[name]
	if !ok {
		return nil, fmt.Errorf("l7: unknown module %q (have %v)", name, ModuleNames())
	}
	return m, nil
}

// ModuleNames lists registered modules, sorted.
func ModuleNames() []string {
	out := make([]string, 0, len(moduleRegistry))
	for n := range moduleRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterModule(HTTPModule{})
	RegisterModule(TLSModule{})
	RegisterModule(SSHModule{})
	RegisterModule(BannerModule{})
}

// StructuredGrab runs the L7 follow-up and, when a banner arrives,
// dispatches it to the best-matching protocol module for structured
// parsing. module may name a specific module ("http") or be empty for
// auto-detection across the registry.
func (g *Grabber) StructuredGrab(ip uint32, port uint16, module string) (Result, map[string]string, error) {
	r := g.Grab(ip, port)
	if !r.ServiceDetected {
		return r, nil, nil
	}
	if module != "" {
		m, err := LookupModule(module)
		if err != nil {
			return r, nil, err
		}
		if !m.Matches(r.Banner) {
			return r, nil, fmt.Errorf("l7: banner does not match module %q", module)
		}
		return r, m.Parse(r.Banner), nil
	}
	// Auto-detect: specific modules first, generic banner last.
	for _, name := range []string{"http", "tls", "ssh"} {
		m := moduleRegistry[name]
		if m.Matches(r.Banner) {
			return r, m.Parse(r.Banner), nil
		}
	}
	return r, (BannerModule{}).Parse(r.Banner), nil
}

// HTTPModule parses HTTP response banners.
type HTTPModule struct{}

// Name implements ProtocolModule.
func (HTTPModule) Name() string { return "http" }

// Matches implements ProtocolModule.
func (HTTPModule) Matches(banner string) bool { return strings.HasPrefix(banner, "HTTP/") }

// Parse implements ProtocolModule: status line + headers.
func (HTTPModule) Parse(banner string) map[string]string {
	out := map[string]string{"protocol": "http"}
	lines := strings.Split(banner, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) >= 2 {
		out["version"] = strings.TrimPrefix(parts[0], "HTTP/")
		if _, err := strconv.Atoi(parts[1]); err == nil {
			out["status_code"] = parts[1]
		}
	}
	for _, line := range lines[1:] {
		if k, v, ok := strings.Cut(line, ":"); ok {
			key := strings.ToLower(strings.TrimSpace(k))
			if key == "server" {
				out["server"] = strings.TrimSpace(v)
			}
		}
	}
	return out
}

// TLSModule parses the simulated TLS greeting.
type TLSModule struct{}

// Name implements ProtocolModule.
func (TLSModule) Name() string { return "tls" }

// Matches implements ProtocolModule.
func (TLSModule) Matches(banner string) bool { return strings.HasPrefix(banner, "TLSv") }

// Parse implements ProtocolModule: version and certificate CN.
func (TLSModule) Parse(banner string) map[string]string {
	out := map[string]string{"protocol": "tls"}
	fields := strings.Fields(banner)
	if len(fields) > 0 {
		out["version"] = strings.TrimPrefix(fields[0], "TLSv")
	}
	for _, f := range fields {
		if cn, ok := strings.CutPrefix(f, "cn="); ok {
			out["certificate_cn"] = cn
		}
	}
	return out
}

// SSHModule parses SSH identification strings (RFC 4253 §4.2).
type SSHModule struct{}

// Name implements ProtocolModule.
func (SSHModule) Name() string { return "ssh" }

// Matches implements ProtocolModule.
func (SSHModule) Matches(banner string) bool { return strings.HasPrefix(banner, "SSH-") }

// Parse implements ProtocolModule: protocol version and software.
func (SSHModule) Parse(banner string) map[string]string {
	out := map[string]string{"protocol": "ssh"}
	// SSH-protoversion-softwareversion [comments]
	rest := strings.TrimPrefix(banner, "SSH-")
	if version, software, ok := strings.Cut(rest, "-"); ok {
		out["version"] = version
		if sw, _, hasSpace := strings.Cut(software, " "); hasSpace {
			out["software"] = sw
		} else {
			out["software"] = software
		}
	}
	return out
}

// BannerModule is the generic fallback: it matches anything and reports
// the raw banner truncated to a fixed budget.
type BannerModule struct{}

// Name implements ProtocolModule.
func (BannerModule) Name() string { return "banner" }

// Matches implements ProtocolModule.
func (BannerModule) Matches(string) bool { return true }

// Parse implements ProtocolModule.
func (BannerModule) Parse(banner string) map[string]string {
	if len(banner) > 128 {
		banner = banner[:128]
	}
	return map[string]string{"protocol": "unknown", "banner": banner}
}
