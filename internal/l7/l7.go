// Package l7 is the application-layer follow-up stage — the ZGrab/LZR
// stand-in the paper's §3 leans on: "these differences fundamentally
// limit ZMap's utility (as a standalone L4 tool) to discovering potential
// services, requiring most work to be completed in follow-up L7 scans."
//
// A Grabber performs the second phase of two-phase scanning against the
// simulated Internet: complete the handshake on an L4-responsive target
// and try to obtain an application banner (waiting first, then sending a
// protocol trigger, as LZR does). Middleboxes accept the handshake but
// never produce data, so the grabber is what separates real services
// from L4 illusions.
package l7

import (
	"strings"

	"zmapgo/internal/netsim"
)

// Result is the outcome of one L7 grab.
type Result struct {
	IP   uint32
	Port uint16
	// HandshakeOK is L4 liveness: the SYN-ACK arrived and the handshake
	// completed.
	HandshakeOK bool
	// ServiceDetected is L7 truth: a banner or protocol response came
	// back. Middleboxes and bannerless sockets leave this false.
	ServiceDetected bool
	// Protocol is the identified protocol when ServiceDetected.
	Protocol netsim.Protocol
	// Banner is the raw banner (possibly truncated).
	Banner string
	// Middlebox marks L4-open-but-no-service targets that sit in a
	// middlebox prefix — the LZR-style diagnosis.
	Middlebox bool
}

// Grabber performs follow-up grabs against a simulated Internet.
type Grabber struct {
	in *netsim.Internet
	// MaxBanner truncates captured banners.
	MaxBanner int
}

// NewGrabber wraps a simulated Internet.
func NewGrabber(in *netsim.Internet) *Grabber {
	return &Grabber{in: in, MaxBanner: 256}
}

// Grab connects to (ip, port) and attempts service identification. The
// L4 phase uses ZMap's default options (MSS-only), mirroring a ZMap->
// ZGrab pipeline; transient loss is not modeled here because the grab
// phase retries connections (TCP does that for free).
func (g *Grabber) Grab(ip uint32, port uint16) Result {
	r := Result{IP: ip, Port: port}
	opts := defaultSYNOptions
	if !g.in.ExpectedSYNACK(ip, port, opts) {
		return r
	}
	r.HandshakeOK = true
	banner := g.in.Banner(ip, port)
	if banner == "" {
		// LZR step: no banner after connect; send a protocol trigger
		// (e.g. an HTTP GET). In the simulation, services that would
		// respond to a trigger already expose a banner, so silence here
		// is a genuine no-service signal.
		r.Middlebox = g.in.Middlebox(ip) && !g.in.ServiceOpen(ip, port)
		return r
	}
	if g.MaxBanner > 0 && len(banner) > g.MaxBanner {
		banner = banner[:g.MaxBanner]
	}
	r.ServiceDetected = true
	r.Banner = banner
	r.Protocol = g.in.ServiceProtocol(ip, port)
	return r
}

var defaultSYNOptions = mssOnlyOptions()

func mssOnlyOptions() []byte {
	// MSS 1460: kind 2, len 4.
	return []byte{2, 4, 0x05, 0xB4}
}

// IdentifyProtocol guesses a protocol from a banner string, the way a
// ZGrab pipeline tags results. It is intentionally simple: the simulated
// banners are unambiguous.
func IdentifyProtocol(banner string) netsim.Protocol {
	switch {
	case strings.HasPrefix(banner, "HTTP/"):
		return netsim.ProtoHTTP
	case strings.HasPrefix(banner, "TLSv"):
		return netsim.ProtoTLS
	case strings.HasPrefix(banner, "SSH-"):
		return netsim.ProtoSSH
	case strings.HasPrefix(banner, "login:"):
		return netsim.ProtoTelnet
	case strings.HasPrefix(banner, "!done"):
		return netsim.ProtoMikrotikAPI
	default:
		return netsim.ProtoNone
	}
}

// SurveyStats aggregates a two-phase survey over a target list.
type SurveyStats struct {
	Probed          int
	L4Open          int
	ServiceDetected int
	MiddleboxOnly   int
	BannerlessOpen  int
	ByProtocol      map[netsim.Protocol]int
}

// Survey grabs every (ip, port) pair produced by next (which returns
// ok=false at the end) and aggregates the L4-vs-L7 discrepancy stats.
func (g *Grabber) Survey(next func() (uint32, uint16, bool)) SurveyStats {
	stats := SurveyStats{ByProtocol: make(map[netsim.Protocol]int)}
	for {
		ip, port, ok := next()
		if !ok {
			return stats
		}
		stats.Probed++
		r := g.Grab(ip, port)
		if !r.HandshakeOK {
			continue
		}
		stats.L4Open++
		switch {
		case r.ServiceDetected:
			stats.ServiceDetected++
			stats.ByProtocol[r.Protocol]++
		case r.Middlebox:
			stats.MiddleboxOnly++
		default:
			stats.BannerlessOpen++
		}
	}
}
