package l7

import (
	"strings"
	"testing"

	"zmapgo/internal/netsim"
)

func sim(seed uint64) *netsim.Internet {
	cfg := netsim.DefaultConfig(seed)
	cfg.ProbeLoss, cfg.ResponseLoss, cfg.PathBadFraction = 0, 0, 0
	return netsim.New(cfg)
}

func TestGrabRealService(t *testing.T) {
	in := sim(60)
	g := NewGrabber(in)
	var ip uint32
	for ; ; ip++ {
		if in.ServiceOpen(ip, 80) && in.ServiceProtocol(ip, 80) == netsim.ProtoHTTP &&
			in.AcceptsSYN(ip, 80, mssOnlyOptions()) {
			break
		}
	}
	r := g.Grab(ip, 80)
	if !r.HandshakeOK || !r.ServiceDetected {
		t.Fatalf("real HTTP service: %+v", r)
	}
	if r.Protocol != netsim.ProtoHTTP || !strings.HasPrefix(r.Banner, "HTTP/1.1") {
		t.Errorf("protocol %v banner %q", r.Protocol, r.Banner)
	}
	if r.Middlebox {
		t.Error("real service flagged as middlebox")
	}
}

func TestGrabMiddlebox(t *testing.T) {
	in := sim(61)
	g := NewGrabber(in)
	var ip uint32
	for ; ; ip++ {
		if in.Middlebox(ip) && !in.ServiceOpen(ip, 81) {
			break
		}
	}
	r := g.Grab(ip, 81)
	if !r.HandshakeOK {
		t.Fatal("middlebox did not complete handshake")
	}
	if r.ServiceDetected {
		t.Fatal("middlebox produced a service")
	}
	if !r.Middlebox {
		t.Error("middlebox not diagnosed")
	}
}

func TestGrabClosed(t *testing.T) {
	in := sim(62)
	g := NewGrabber(in)
	var ip uint32
	for ; ; ip++ {
		if !in.Live(ip) && !in.Middlebox(ip) {
			break
		}
	}
	r := g.Grab(ip, 80)
	if r.HandshakeOK || r.ServiceDetected {
		t.Errorf("dead host grabbed: %+v", r)
	}
}

func TestBannerTruncation(t *testing.T) {
	in := sim(63)
	g := NewGrabber(in)
	g.MaxBanner = 4
	var ip uint32
	for ; ; ip++ {
		if in.ServiceOpen(ip, 80) && in.Banner(ip, 80) != "" &&
			in.AcceptsSYN(ip, 80, mssOnlyOptions()) {
			break
		}
	}
	r := g.Grab(ip, 80)
	if len(r.Banner) > 4 {
		t.Errorf("banner not truncated: %q", r.Banner)
	}
}

func TestIdentifyProtocol(t *testing.T) {
	cases := map[string]netsim.Protocol{
		"HTTP/1.1 200 OK": netsim.ProtoHTTP,
		"TLSv1.3 sim":     netsim.ProtoTLS,
		"SSH-2.0-OpenSSH": netsim.ProtoSSH,
		"login: ":         netsim.ProtoTelnet,
		"!done mikrotik":  netsim.ProtoMikrotikAPI,
		"220 ftp ready":   netsim.ProtoNone,
		"":                netsim.ProtoNone,
	}
	for banner, want := range cases {
		if got := IdentifyProtocol(banner); got != want {
			t.Errorf("IdentifyProtocol(%q) = %v, want %v", banner, got, want)
		}
	}
}

func TestSurveyL4L7Gap(t *testing.T) {
	// Over a block with middleboxes, L4-open must exceed L7 services —
	// the central §3 discrepancy.
	in := sim(64)
	g := NewGrabber(in)
	i := uint32(0)
	const n = 120000
	stats := g.Survey(func() (uint32, uint16, bool) {
		if i >= n {
			return 0, 0, false
		}
		i++
		// Stride across /16 prefixes so middlebox prefixes are sampled.
		return (i - 1) * 4099, 80, true
	})
	if stats.Probed != n {
		t.Fatalf("probed %d, want %d", stats.Probed, n)
	}
	if stats.L4Open == 0 || stats.ServiceDetected == 0 {
		t.Fatalf("empty survey: %+v", stats)
	}
	if stats.L4Open <= stats.ServiceDetected {
		t.Errorf("no L4/L7 gap: open %d, services %d", stats.L4Open, stats.ServiceDetected)
	}
	if stats.MiddleboxOnly == 0 {
		t.Error("no middlebox-only targets diagnosed")
	}
	if stats.ByProtocol[netsim.ProtoHTTP] == 0 {
		t.Error("no HTTP identified on port 80")
	}
	// Consistency: categories partition L4Open.
	if stats.ServiceDetected+stats.MiddleboxOnly+stats.BannerlessOpen != stats.L4Open {
		t.Errorf("L4 categories do not partition: %+v", stats)
	}
}

func BenchmarkGrab(b *testing.B) {
	in := sim(65)
	g := NewGrabber(in)
	var r Result
	for i := 0; i < b.N; i++ {
		r = g.Grab(uint32(i), 80)
	}
	benchResult = r
}

var benchResult Result

func TestModuleRegistry(t *testing.T) {
	names := ModuleNames()
	want := []string{"banner", "http", "ssh", "tls"}
	if len(names) != len(want) {
		t.Fatalf("modules %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("modules %v, want %v", names, want)
		}
	}
	if _, err := LookupModule("nope"); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestRegisterModuleDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate register did not panic")
		}
	}()
	RegisterModule(HTTPModule{})
}

func TestHTTPModuleParse(t *testing.T) {
	m := HTTPModule{}
	banner := "HTTP/1.1 200 OK\r\nServer: simhttpd/123\r\n\r\n"
	if !m.Matches(banner) || m.Matches("SSH-2.0-x") {
		t.Error("Matches wrong")
	}
	out := m.Parse(banner)
	if out["version"] != "1.1" || out["status_code"] != "200" || out["server"] != "simhttpd/123" {
		t.Errorf("parsed %v", out)
	}
}

func TestTLSModuleParse(t *testing.T) {
	out := (TLSModule{}).Parse("TLSv1.3 sim certificate cn=host-42.example")
	if out["version"] != "1.3" || out["certificate_cn"] != "host-42.example" {
		t.Errorf("parsed %v", out)
	}
}

func TestSSHModuleParse(t *testing.T) {
	out := (SSHModule{}).Parse("SSH-2.0-OpenSSH_sim7")
	if out["version"] != "2.0" || out["software"] != "OpenSSH_sim7" {
		t.Errorf("parsed %v", out)
	}
	out = (SSHModule{}).Parse("SSH-2.0-OpenSSH_9.6 Ubuntu-3")
	if out["software"] != "OpenSSH_9.6" {
		t.Errorf("comment handling: %v", out)
	}
}

func TestBannerModuleTruncates(t *testing.T) {
	long := strings.Repeat("x", 300)
	out := (BannerModule{}).Parse(long)
	if len(out["banner"]) != 128 {
		t.Errorf("banner length %d", len(out["banner"]))
	}
	if !(BannerModule{}).Matches("anything") {
		t.Error("banner module must match everything")
	}
}

func TestStructuredGrabAutoDetect(t *testing.T) {
	in := sim(66)
	g := NewGrabber(in)
	found := map[string]bool{}
	ports := []uint16{80, 443, 22}
	for ip := uint32(0); ip < 2_000_000 && len(found) < 3; ip++ {
		for _, port := range ports {
			if !in.ServiceOpen(ip, port) {
				continue
			}
			r, fields, err := g.StructuredGrab(ip, port, "")
			if err != nil {
				t.Fatal(err)
			}
			if !r.ServiceDetected {
				continue
			}
			proto := fields["protocol"]
			if proto == "http" || proto == "tls" || proto == "ssh" {
				found[proto] = true
			}
		}
	}
	for _, p := range []string{"http", "tls", "ssh"} {
		if !found[p] {
			t.Errorf("auto-detect never identified %s", p)
		}
	}
}

func TestStructuredGrabExplicitModule(t *testing.T) {
	in := sim(67)
	g := NewGrabber(in)
	var httpIP uint32
	for ip := uint32(0); ; ip++ {
		if in.ServiceOpen(ip, 80) && in.ServiceProtocol(ip, 80) == netsim.ProtoHTTP &&
			in.AcceptsSYN(ip, 80, mssOnlyOptions()) {
			httpIP = ip
			break
		}
	}
	_, fields, err := g.StructuredGrab(httpIP, 80, "http")
	if err != nil || fields["status_code"] != "200" {
		t.Errorf("explicit http grab: %v, %v", fields, err)
	}
	// Wrong module for the banner must error.
	if _, _, err := g.StructuredGrab(httpIP, 80, "ssh"); err == nil {
		t.Error("ssh module accepted an HTTP banner")
	}
	// Unknown module must error.
	if _, _, err := g.StructuredGrab(httpIP, 80, "nope"); err == nil {
		t.Error("unknown module accepted")
	}
	// Closed target: no fields, no error.
	var dead uint32
	for ip := uint32(0); ; ip++ {
		if !in.Live(ip) && !in.Middlebox(ip) {
			dead = ip
			break
		}
	}
	r, fields, err := g.StructuredGrab(dead, 80, "")
	if err != nil || fields != nil || r.ServiceDetected {
		t.Errorf("dead grab: %+v %v %v", r, fields, err)
	}
}
