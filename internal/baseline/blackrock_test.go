package baseline

import (
	"testing"
	"testing/quick"
)

func TestBlackrockIsPermutation(t *testing.T) {
	for _, rang := range []uint64{2, 10, 100, 1000, 65537, 1 << 16} {
		br := NewBlackrock(rang, 12345, 4)
		seen := make([]bool, rang)
		for m := uint64(0); m < rang; m++ {
			v := br.Shuffle(m)
			if v >= rang {
				t.Fatalf("range %d: output %d out of domain", rang, v)
			}
			if seen[v] {
				t.Fatalf("range %d: output %d repeated", rang, v)
			}
			seen[v] = true
		}
	}
}

func TestBlackrockPermutationProperty(t *testing.T) {
	f := func(rangRaw uint16, seed uint64, roundsRaw uint8) bool {
		rang := uint64(rangRaw%5000) + 2
		rounds := int(roundsRaw%5) + 2
		br := NewBlackrock(rang, seed, rounds)
		cov := Coverage(rang, br.Shuffle)
		return cov.Missed == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBlackrockDifferentSeedsDifferentOrders(t *testing.T) {
	a := NewBlackrock(1000, 1, 4)
	b := NewBlackrock(1000, 2, 4)
	same := true
	for m := uint64(0); m < 1000; m++ {
		if a.Shuffle(m) != b.Shuffle(m) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical shuffles")
	}
}

func TestBiasedShuffleLosesCoverage(t *testing.T) {
	// The pre-fix behavior: modulo folding loses targets on any domain
	// where a*b > range (nearly all non-square domains).
	br := NewBlackrock(100000, 7, 4)
	biased := Coverage(br.Range, br.BiasedShuffle)
	if biased.Missed == 0 {
		t.Fatal("biased shuffle achieved full coverage; bias not reproduced")
	}
	correct := Coverage(br.Range, br.Shuffle)
	if correct.Missed != 0 {
		t.Fatal("correct shuffle missed targets")
	}
	rate := biased.MissRate()
	if rate <= 0 || rate > 0.25 {
		t.Errorf("biased miss rate %.4f outside plausible (0, 0.25]", rate)
	}
}

func TestBlackrockPanicsOnTinyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("range 1 should panic")
		}
	}()
	NewBlackrock(1, 0, 4)
}

func TestCoverageCountsExactly(t *testing.T) {
	// Identity shuffle covers everything; constant shuffle covers one.
	c := Coverage(50, func(m uint64) uint64 { return m })
	if c.Visited != 50 || c.Missed != 0 {
		t.Errorf("identity coverage %+v", c)
	}
	c = Coverage(50, func(m uint64) uint64 { return 7 })
	if c.Visited != 1 || c.Missed != 49 {
		t.Errorf("constant coverage %+v", c)
	}
	if c.MissRate() != 49.0/50 {
		t.Errorf("miss rate %f", c.MissRate())
	}
}

func TestDefaultRounds(t *testing.T) {
	br := NewBlackrock(100, 1, 0)
	if br.Rounds != 4 {
		t.Errorf("default rounds = %d, want 4", br.Rounds)
	}
}

func BenchmarkBlackrockShuffle(b *testing.B) {
	br := NewBlackrock(1<<32, 9, 4)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = br.Shuffle(uint64(i) & (1<<32 - 1))
	}
	benchSink = sink
}

var benchSink uint64
