// Package baseline implements masscan-style target randomization as the
// comparison point §3 references: Adrian et al. observed that masscan
// "finds notably fewer hosts than ZMap, likely due to biases in its
// randomization algorithm."
//
// Masscan shuffles indices with "Blackrock", an unbalanced Feistel cipher
// over an arbitrary-size domain. Done correctly — with cycle-walking to
// stay inside the domain — it is a bijection, like ZMap's cyclic groups.
// Early versions cut that corner by reducing out-of-domain outputs modulo
// the range, which collides indices and silently skips targets. Both
// variants are implemented here so the coverage experiment can measure
// who wins and by how much.
package baseline

import "math"

// Blackrock is a correct unbalanced-Feistel permutation of [0, Range).
type Blackrock struct {
	// Range is the domain size.
	Range uint64
	a, b  uint64
	seed  uint64
	// Rounds is the Feistel round count (masscan uses 3–4).
	Rounds int
}

// NewBlackrock builds a permutation of [0, rang) with the given seed.
// rang must be at least 2.
func NewBlackrock(rang uint64, seed uint64, rounds int) *Blackrock {
	if rang < 2 {
		panic("baseline: range must be >= 2")
	}
	if rounds <= 0 {
		rounds = 4
	}
	a := uint64(math.Sqrt(float64(rang)))
	if a < 1 {
		a = 1
	}
	for a*a < rang {
		a++
	}
	b := rang/a + 1
	for a*b < rang {
		b++
	}
	return &Blackrock{Range: rang, a: a, b: b, seed: seed, Rounds: rounds}
}

// f is the Feistel round function: a splitmix-style mix of round index,
// half-block, and seed.
func (br *Blackrock) f(round int, right uint64) uint64 {
	x := right ^ (br.seed + uint64(round)*0x9E3779B97F4A7C15)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// encrypt applies the Feistel network once over the a x b rectangle; the
// output lies in [0, a*b), which may exceed Range.
func (br *Blackrock) encrypt(m uint64) uint64 {
	left, right := m%br.a, m/br.a
	for j := 1; j <= br.Rounds; j++ {
		var tmp uint64
		if j&1 == 1 {
			tmp = (left + br.f(j, right)) % br.a
		} else {
			tmp = (left + br.f(j, right)) % br.b
		}
		left, right = right, tmp
	}
	if br.Rounds&1 == 1 {
		return br.a*left + right
	}
	return br.a*right + left
}

// Shuffle maps index m in [0, Range) to its shuffled position, walking
// the cipher until the output re-enters the domain (cycle-walking keeps
// the map bijective).
func (br *Blackrock) Shuffle(m uint64) uint64 {
	c := br.encrypt(m)
	for c >= br.Range {
		c = br.encrypt(c)
	}
	return c
}

// BiasedShuffle reproduces the shortcut of early masscan-era shuffles:
// run the cipher over a power-of-two rectangle covering the range (cheap
// masking instead of exact-domain arithmetic) and fold out-of-domain
// outputs back with a modulo instead of cycle-walking. The result is NOT
// a bijection — folded outputs collide with direct ones, so some targets
// are visited twice and others never — which is the coverage-deficit bug
// class the §3 comparison attributes to masscan. The deficit grows with
// the gap between the range and the next power of two.
func (br *Blackrock) BiasedShuffle(m uint64) uint64 {
	pow2 := nextPow2(br.Range)
	half := uint64(1)
	for half*half < pow2 {
		half <<= 1
	}
	biased := Blackrock{Range: pow2, a: half, b: pow2 / half, seed: br.seed, Rounds: br.Rounds}
	c := biased.encrypt(m)
	return c % br.Range
}

func nextPow2(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// CoverageResult summarizes a full-domain walk of a shuffle.
type CoverageResult struct {
	Domain  uint64
	Visited uint64 // distinct outputs
	Missed  uint64 // domain values never produced
}

// MissRate is the fraction of the domain never visited.
func (c CoverageResult) MissRate() float64 {
	return float64(c.Missed) / float64(c.Domain)
}

// Coverage walks the entire domain through shuffle and counts distinct
// outputs. Intended for domains that fit in memory (<= 2^27 or so).
func Coverage(domain uint64, shuffle func(uint64) uint64) CoverageResult {
	seen := make([]bool, domain)
	var visited uint64
	for m := uint64(0); m < domain; m++ {
		v := shuffle(m)
		if !seen[v] {
			seen[v] = true
			visited++
		}
	}
	return CoverageResult{Domain: domain, Visited: visited, Missed: domain - visited}
}
