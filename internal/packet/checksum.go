package packet

// RFC 1624 incremental checksum updates.
//
// The batched send path patches a handful of header fields in a
// pre-rendered frame instead of rebuilding it, so checksums must be
// updated from the changed words alone rather than recomputed over the
// whole header or segment. RFC 1624 gives the safe form:
//
//	HC' = ~(~HC + ~m + m')
//
// where m/m' are the old/new 16-bit words. A ChecksumDelta accumulates
// the (~m + m') terms for any number of changed words; Apply folds the
// sum into a stored checksum.
//
// Equivalence with full recomputation (packet.Checksum) is exact, not
// merely congruent, under one precondition: the checksummed data must
// contain at least one nonzero word outside the patched fields. Both
// methods then produce a positive pre-complement sum, and repeated
// carry folding maps congruent positive sums to the same representative
// in [1, 0xFFFF]. Every frame this package builds satisfies the
// precondition (the IP version/IHL byte, TTL, and protocol are nonzero,
// and TCP/UDP checksums chain a pseudo-header whose protocol field is
// nonzero), and FuzzChecksumDelta pins the equivalence. The lone
// representative ambiguity — a sum that is exactly zero, where full
// recomputation yields 0xFFFF but the incremental form can yield 0 —
// requires an all-zero input and therefore cannot occur here.

// ChecksumDelta accumulates RFC 1624 checksum adjustments for a set of
// 16-bit word replacements. The zero value is ready to use; it is a
// plain integer, so building one costs nothing.
type ChecksumDelta uint32

// Swap16 records the replacement of one 16-bit word.
func (d *ChecksumDelta) Swap16(old, new uint16) {
	*d += ChecksumDelta(^old)
	*d += ChecksumDelta(new)
}

// Swap32 records the replacement of one 32-bit field (two 16-bit words).
func (d *ChecksumDelta) Swap32(old, new uint32) {
	d.Swap16(uint16(old>>16), uint16(new>>16))
	d.Swap16(uint16(old), uint16(new))
}

// Apply folds the accumulated delta into a checksum as stored in a
// frame, returning the updated checksum. A zero delta returns ck
// unchanged.
func (d ChecksumDelta) Apply(ck uint16) uint16 {
	sum := uint32(^ck&0xFFFF) + uint32(d)
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}
