package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame templates for the batched send path (§4.3). ZMap 4.0's jump
// toward 10/100GbE line rate came from rendering each probe's invariant
// bytes once and patching only the per-target fields; this file is that
// primitive. A Template captures a fully built prototype frame
// (Ethernet/IPv4/transport with correct checksums), Seed stamps it into
// per-thread ring buffers, and the Patch* helpers rewrite the mutable
// fields in place, fixing the IP and transport checksums with RFC 1624
// incremental updates (ChecksumDelta) instead of full recomputes.
//
// The patchers read the OLD field values out of the frame itself, so a
// ring slot can be re-patched from one target to the next indefinitely:
// each call moves the frame from whatever target it last carried to the
// new one. Offsets are fixed because templates require the exact header
// shape this package's builders emit — Ethernet II, a 20-byte IPv4
// header (no IP options), then TCP/UDP/ICMP.

// Fixed byte offsets into a templated frame.
const (
	ipIDOff  = EthernetHeaderLen + 4  // IPv4 identification
	ipCkOff  = EthernetHeaderLen + 10 // IPv4 header checksum
	ipDstOff = EthernetHeaderLen + 16 // IPv4 destination address
	l4Off    = EthernetHeaderLen + IPv4HeaderLen

	tcpSportOff = l4Off + 0
	tcpDportOff = l4Off + 2
	tcpSeqOff   = l4Off + 4
	tcpAckOff   = l4Off + 8
	tcpCkOff    = l4Off + 16

	udpSportOff = l4Off + 0
	udpDportOff = l4Off + 2
	udpCkOff    = l4Off + 6

	icmpCkOff  = l4Off + 2
	icmpIDOff  = l4Off + 4
	icmpSeqOff = l4Off + 6
)

// ErrBadTemplate reports a prototype frame a Template cannot patch:
// wrong ethertype, an IPv4 header with options, or a frame too short
// for its transport.
var ErrBadTemplate = errors.New("packet: frame not templatable")

// Template is an immutable prototype probe frame. Seed copies it into a
// working buffer; the package-level Patch* helpers then retarget that
// buffer per probe without touching the invariant bytes.
type Template struct {
	base  []byte
	proto byte
}

// NewTemplate validates and captures a prototype frame as built by this
// package's Append* helpers. The frame must be Ethernet II + IPv4
// without IP options, carrying TCP, UDP, or ICMP.
func NewTemplate(frame []byte) (*Template, error) {
	if len(frame) < l4Off {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadTemplate, len(frame))
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return nil, fmt.Errorf("%w: not IPv4", ErrBadTemplate)
	}
	if frame[EthernetHeaderLen] != 0x45 {
		return nil, fmt.Errorf("%w: IPv4 header must be 20 bytes (version/IHL 0x%02x)",
			ErrBadTemplate, frame[EthernetHeaderLen])
	}
	proto := frame[EthernetHeaderLen+9]
	var minLen int
	switch proto {
	case ProtocolTCP:
		minLen = l4Off + TCPHeaderLen
	case ProtocolUDP:
		minLen = l4Off + UDPHeaderLen
	case ProtocolICMP:
		minLen = l4Off + ICMPHeaderLen
	default:
		return nil, fmt.Errorf("%w: protocol %d", ErrBadTemplate, proto)
	}
	if len(frame) < minLen {
		return nil, fmt.Errorf("%w: %d bytes for protocol %d", ErrBadTemplate, len(frame), proto)
	}
	return &Template{base: append([]byte(nil), frame...), proto: proto}, nil
}

// Len returns the frame length, which is invariant across patches.
func (t *Template) Len() int { return len(t.base) }

// Protocol returns the prototype's IP protocol.
func (t *Template) Protocol() byte { return t.proto }

// Seed copies the prototype into frame, which must be exactly Len()
// bytes. The result is a valid frame for the prototype's original
// target, ready for patching.
func (t *Template) Seed(frame []byte) { copy(frame, t.base) }

// patchIPv4 rewrites the IP identification and destination address,
// incrementally fixing the header checksum, and returns the destination
// delta (which TCP/UDP pseudo-header checksums also need).
func patchIPv4(frame []byte, ipid uint16, dst uint32) ChecksumDelta {
	var ipd, dstd ChecksumDelta
	oldID := binary.BigEndian.Uint16(frame[ipIDOff:])
	ipd.Swap16(oldID, ipid)
	binary.BigEndian.PutUint16(frame[ipIDOff:], ipid)

	oldDst := binary.BigEndian.Uint32(frame[ipDstOff:])
	dstd.Swap32(oldDst, dst)
	binary.BigEndian.PutUint32(frame[ipDstOff:], dst)

	ipd += dstd
	ck := binary.BigEndian.Uint16(frame[ipCkOff:])
	binary.BigEndian.PutUint16(frame[ipCkOff:], ipd.Apply(ck))
	return dstd
}

// PatchTCP retargets a seeded TCP frame: IP ID, destination address,
// source and destination ports, and the validator-derived sequence and
// acknowledgment numbers. Both checksums are fixed incrementally.
func PatchTCP(frame []byte, ipid uint16, dst uint32, sport, dport uint16, seq, ack uint32) {
	// The destination address participates in the TCP pseudo-header, so
	// its delta carries over into the transport checksum.
	d := patchIPv4(frame, ipid, dst)

	oldSport := binary.BigEndian.Uint16(frame[tcpSportOff:])
	d.Swap16(oldSport, sport)
	binary.BigEndian.PutUint16(frame[tcpSportOff:], sport)

	oldDport := binary.BigEndian.Uint16(frame[tcpDportOff:])
	d.Swap16(oldDport, dport)
	binary.BigEndian.PutUint16(frame[tcpDportOff:], dport)

	oldSeq := binary.BigEndian.Uint32(frame[tcpSeqOff:])
	d.Swap32(oldSeq, seq)
	binary.BigEndian.PutUint32(frame[tcpSeqOff:], seq)

	oldAck := binary.BigEndian.Uint32(frame[tcpAckOff:])
	d.Swap32(oldAck, ack)
	binary.BigEndian.PutUint32(frame[tcpAckOff:], ack)

	ck := binary.BigEndian.Uint16(frame[tcpCkOff:])
	binary.BigEndian.PutUint16(frame[tcpCkOff:], d.Apply(ck))
}

// PatchUDP retargets a seeded UDP frame: IP ID, destination address,
// and ports. The RFC 768 zero-checksum substitution (0 transmits as
// 0xFFFF) is preserved; 0 and 0xFFFF are congruent in one's-complement
// arithmetic, so patching through the substituted value still matches a
// full rebuild byte for byte.
func PatchUDP(frame []byte, ipid uint16, dst uint32, sport, dport uint16) {
	d := patchIPv4(frame, ipid, dst)

	oldSport := binary.BigEndian.Uint16(frame[udpSportOff:])
	d.Swap16(oldSport, sport)
	binary.BigEndian.PutUint16(frame[udpSportOff:], sport)

	oldDport := binary.BigEndian.Uint16(frame[udpDportOff:])
	d.Swap16(oldDport, dport)
	binary.BigEndian.PutUint16(frame[udpDportOff:], dport)

	ck := d.Apply(binary.BigEndian.Uint16(frame[udpCkOff:]))
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(frame[udpCkOff:], ck)
}

// PatchICMPEcho retargets a seeded ICMP echo frame: IP ID, destination
// address, and the validator-derived echo identifier and sequence. ICMP
// has no pseudo-header, so the destination change touches only the IP
// checksum.
func PatchICMPEcho(frame []byte, ipid uint16, dst uint32, id, seq uint16) {
	patchIPv4(frame, ipid, dst)

	var d ChecksumDelta
	oldID := binary.BigEndian.Uint16(frame[icmpIDOff:])
	d.Swap16(oldID, id)
	binary.BigEndian.PutUint16(frame[icmpIDOff:], id)

	oldSeq := binary.BigEndian.Uint16(frame[icmpSeqOff:])
	d.Swap16(oldSeq, seq)
	binary.BigEndian.PutUint16(frame[icmpSeqOff:], seq)

	ck := binary.BigEndian.Uint16(frame[icmpCkOff:])
	binary.BigEndian.PutUint16(frame[icmpCkOff:], d.Apply(ck))
}
