package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func v6Addr(last byte) [16]byte {
	var a [16]byte
	a[0], a[1] = 0x20, 0x01
	a[15] = last
	return a
}

func buildSYN6(layout OptionLayout) []byte {
	opts := BuildOptions(layout, 5)
	src, dst := v6Addr(1), v6Addr(2)
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv6)
	buf = AppendIPv6(buf, IPv6Header{
		NextHeader: ProtocolTCP, HopLimit: 255, Src: src, Dst: dst,
	}, TCPHeaderLen+len(opts))
	buf, _ = AppendTCP6(buf, TCP{
		SrcPort: 40000, DstPort: 443, Seq: 0x01020304,
		Flags: FlagSYN, Window: 65535, Options: opts,
	}, src, dst, nil)
	return buf
}

func TestIPv6SYNRoundTrip(t *testing.T) {
	for _, layout := range []OptionLayout{LayoutNone, LayoutMSS, LayoutLinux} {
		frame := buildSYN6(layout)
		f, err := ParseIPv6(frame)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if f.IP.Src != v6Addr(1) || f.IP.Dst != v6Addr(2) {
			t.Error("v6 addresses mismatch")
		}
		if f.IP.HopLimit != 255 || f.IP.NextHeader != ProtocolTCP {
			t.Errorf("header fields %+v", f.IP)
		}
		if f.TCP == nil || f.TCP.DstPort != 443 || f.TCP.Seq != 0x01020304 {
			t.Errorf("tcp fields %+v", f.TCP)
		}
		if !bytes.Equal(f.TCP.Options, BuildOptions(layout, 5)) {
			t.Error("options mismatch")
		}
		// Verify the v6 pseudo-header checksum.
		seg := frame[EthernetHeaderLen+IPv6HeaderLen:]
		if Checksum(seg, pseudoHeaderSum6(v6Addr(1), v6Addr(2), ProtocolTCP, len(seg))) != 0 {
			t.Error("TCPv6 checksum does not verify")
		}
	}
}

func TestParseIPv6RejectsMalformed(t *testing.T) {
	good := buildSYN6(LayoutMSS)
	cases := map[string][]byte{
		"empty":          {},
		"short ethernet": good[:8],
		"v4 ethertype":   mutate(good, 12, 0x08),
		"short ipv6":     good[:EthernetHeaderLen+20],
		"bad version":    mutate(good, EthernetHeaderLen, 0x45),
		"udp next":       mutate(good, EthernetHeaderLen+6, 17),
		"len overrun":    mutate(good, EthernetHeaderLen+4, 0xFF),
		"tiny offset":    mutate(good, EthernetHeaderLen+IPv6HeaderLen+12, 0x10),
	}
	for name, data := range cases {
		if _, err := ParseIPv6(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseIPv6NeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	good := buildSYN6(LayoutLinux)
	for i := 0; i < 4000; i++ {
		var data []byte
		switch i % 3 {
		case 0:
			data = make([]byte, rng.Intn(120))
			rng.Read(data)
		case 1:
			data = append([]byte{}, good[:rng.Intn(len(good)+1)]...)
		case 2:
			data = append([]byte{}, good...)
			for j := 0; j < 4; j++ {
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			}
		}
		ParseIPv6(data)
	}
}

func TestAppendTCP6RejectsUnalignedOptions(t *testing.T) {
	if _, err := AppendTCP6(nil, TCP{Options: []byte{1}}, v6Addr(1), v6Addr(2), nil); !errors.Is(err, ErrBadOptions) {
		t.Errorf("AppendTCP6 error = %v, want ErrBadOptions", err)
	}
}

// FuzzParseIPv6 mirrors FuzzParse for the v6 path: no panics on
// arbitrary input and every rejection wraps ErrTruncated or
// ErrUnsupported.
func FuzzParseIPv6(f *testing.F) {
	syn := buildSYN6(LayoutMSS)
	f.Add(syn)
	f.Add([]byte{})
	for _, n := range []int{1, 13, 14, 30, 54, 55, len(syn) - 1} {
		if n > 0 && n < len(syn) {
			f.Add(syn[:n])
		}
	}
	for _, i := range []int{12, 18, 40, 60} {
		if i < len(syn) {
			c := append([]byte(nil), syn...)
			c[i] ^= 0xFF
			f.Add(c)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := ParseIPv6(data)
		switch {
		case err != nil:
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrUnsupported) {
				t.Fatalf("ParseIPv6 error outside taxonomy: %v", err)
			}
			if frame != nil {
				t.Fatal("non-nil frame alongside error")
			}
		case frame == nil:
			t.Fatal("nil frame, nil error")
		}
	})
}

func BenchmarkBuildSYN6(b *testing.B) {
	opts := BuildOptions(LayoutMSS, 5)
	src, dst := v6Addr(1), v6Addr(2)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = AppendEthernet(buf, srcMAC, dstMAC, EtherTypeIPv6)
		buf = AppendIPv6(buf, IPv6Header{NextHeader: ProtocolTCP, HopLimit: 255, Src: src, Dst: dst}, TCPHeaderLen+len(opts))
		buf, _ = AppendTCP6(buf, TCP{SrcPort: 1, DstPort: 443, Seq: uint32(i), Flags: FlagSYN, Options: opts}, src, dst, nil)
	}
	benchLen = len(buf)
}
