package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	srcMAC = MAC{0x02, 0, 0, 0, 0, 1}
	dstMAC = MAC{0x02, 0, 0, 0, 0, 2}
)

func buildSYN(t *testing.T, layout OptionLayout) []byte {
	t.Helper()
	opts := BuildOptions(layout, 0xDEADBEEF)
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{
		ID: ZMapIPID, DontFrag: true, TTL: DefaultProbeTTL, Protocol: ProtocolTCP,
		Src: 0x01020304, Dst: 0x05060708,
	}, TCPHeaderLen+len(opts))
	buf, err := AppendTCP(buf, TCP{
		SrcPort: 54321, DstPort: 80, Seq: 0xCAFEBABE,
		Flags: FlagSYN, Window: 65535, Options: opts,
	}, 0x01020304, 0x05060708, nil)
	if err != nil {
		t.Fatalf("AppendTCP: %v", err)
	}
	return buf
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Errorf("Checksum = %04x, want 220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd final byte is padded with zero.
	if Checksum([]byte{0xFF}, 0) != ^uint16(0xFF00) {
		t.Error("odd-length checksum wrong")
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		ck := Checksum(data, 0)
		withCk := append([]byte{}, data...)
		withCk = binary.BigEndian.AppendUint16(withCk, ck)
		return Checksum(withCk, 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSYNRoundTrip(t *testing.T) {
	for _, layout := range AllOptionLayouts() {
		frame := buildSYN(t, layout)
		f, err := Parse(frame)
		if err != nil {
			t.Fatalf("%v: Parse: %v", layout, err)
		}
		if f.EthSrc != srcMAC || f.EthDst != dstMAC {
			t.Errorf("%v: MAC mismatch", layout)
		}
		if f.IP.Src != 0x01020304 || f.IP.Dst != 0x05060708 {
			t.Errorf("%v: IP mismatch", layout)
		}
		if f.IP.ID != ZMapIPID || !f.IP.DontFrag || f.IP.TTL != DefaultProbeTTL {
			t.Errorf("%v: IP fields mismatch: %+v", layout, f.IP)
		}
		if f.TCP == nil {
			t.Fatalf("%v: no TCP layer", layout)
		}
		if f.TCP.SrcPort != 54321 || f.TCP.DstPort != 80 || f.TCP.Seq != 0xCAFEBABE {
			t.Errorf("%v: TCP fields mismatch: %+v", layout, f.TCP)
		}
		if f.TCP.Flags != FlagSYN {
			t.Errorf("%v: flags = %02x, want SYN", layout, f.TCP.Flags)
		}
		wantOpts := BuildOptions(layout, 0xDEADBEEF)
		if !bytes.Equal(f.TCP.Options, wantOpts) {
			t.Errorf("%v: options %x, want %x", layout, f.TCP.Options, wantOpts)
		}
		if !VerifyIPv4Checksum(frame) {
			t.Errorf("%v: bad IP checksum", layout)
		}
		if len(f.Payload) != 0 {
			t.Errorf("%v: unexpected payload %d bytes", layout, len(f.Payload))
		}
	}
}

func TestTCPChecksumValid(t *testing.T) {
	frame := buildSYN(t, LayoutLinux)
	// Recompute the TCP checksum over the parsed segment; including the
	// transmitted checksum field, the sum must verify to zero.
	seg := frame[EthernetHeaderLen+IPv4HeaderLen:]
	sum := pseudoHeaderSum(0x01020304, 0x05060708, ProtocolTCP, len(seg))
	if Checksum(seg, sum) != 0 {
		t.Error("TCP checksum does not verify")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("dns-ish probe")
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: ProtocolUDP, Src: 1, Dst: 2}, UDPHeaderLen+len(payload))
	buf = AppendUDP(buf, 1234, 53, 1, 2, payload)
	f, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.UDP == nil || f.UDP.SrcPort != 1234 || f.UDP.DstPort != 53 {
		t.Fatalf("UDP parse mismatch: %+v", f.UDP)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload %q, want %q", f.Payload, payload)
	}
	seg := buf[EthernetHeaderLen+IPv4HeaderLen:]
	sum := pseudoHeaderSum(1, 2, ProtocolUDP, len(seg))
	if Checksum(seg, sum) != 0 {
		t.Error("UDP checksum does not verify")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: ProtocolICMP, Src: 1, Dst: 2}, ICMPHeaderLen+len(payload))
	buf = AppendICMPEcho(buf, ICMPEchoRequest, 777, 42, payload)
	f, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.ICMP == nil || f.ICMP.Type != ICMPEchoRequest || f.ICMP.ID != 777 || f.ICMP.Seq != 42 {
		t.Fatalf("ICMP parse mismatch: %+v", f.ICMP)
	}
	if Checksum(buf[EthernetHeaderLen+IPv4HeaderLen:], 0) != 0 {
		t.Error("ICMP checksum does not verify")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := buildSYN(t, LayoutMSS)
	cases := map[string][]byte{
		"empty":            {},
		"short ethernet":   good[:10],
		"short ip":         good[:EthernetHeaderLen+10],
		"short tcp":        good[:EthernetHeaderLen+IPv4HeaderLen+10],
		"bad ethertype":    mutate(good, 12, 0x86),
		"ipv6 version":     mutate(good, EthernetHeaderLen, 0x65),
		"tiny ihl":         mutate(good, EthernetHeaderLen, 0x41),
		"huge total len":   mutate(good, EthernetHeaderLen+2, 0xFF),
		"fragment offset":  mutate(good, EthernetHeaderLen+7, 0x10),
		"more fragments":   mutate(good, EthernetHeaderLen+6, 0x20),
		"tcp offset small": mutate(good, EthernetHeaderLen+IPv4HeaderLen+12, 0x10),
		"tcp offset big":   mutate(good, EthernetHeaderLen+IPv4HeaderLen+12, 0xF0),
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func mutate(src []byte, idx int, val byte) []byte {
	out := append([]byte{}, src...)
	out[idx] = val
	return out
}

func TestParseNeverPanics(t *testing.T) {
	// Parsers handle attacker-controlled input; random garbage and random
	// truncations/mutations of valid frames must return errors, not panic.
	rng := rand.New(rand.NewSource(99))
	good := buildSYN(t, LayoutBSD)
	for i := 0; i < 5000; i++ {
		var data []byte
		switch i % 3 {
		case 0:
			data = make([]byte, rng.Intn(120))
			rng.Read(data)
		case 1:
			data = append([]byte{}, good[:rng.Intn(len(good)+1)]...)
		case 2:
			data = append([]byte{}, good...)
			for j := 0; j < 4; j++ {
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			}
		}
		f, err := Parse(data)
		if err == nil && f == nil {
			t.Fatal("nil frame with nil error")
		}
	}
}

func TestParseUnsupportedProtocol(t *testing.T) {
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: 47 /* GRE */, Src: 1, Dst: 2}, 0)
	if _, err := Parse(buf); err == nil {
		t.Error("GRE should be unsupported")
	}
}

func TestBuildOptionsLengths(t *testing.T) {
	wantLens := map[OptionLayout]int{
		LayoutNone:      0,
		LayoutMSS:       4,
		LayoutSACK:      4,
		LayoutTimestamp: 12,
		LayoutWScale:    4,
		LayoutOptimal:   20,
		LayoutLinux:     20,
		LayoutBSD:       24,
		LayoutWindows:   12,
	}
	for l, want := range wantLens {
		got := BuildOptions(l, 0)
		if len(got) != want {
			t.Errorf("%v: option length %d, want %d", l, len(got), want)
		}
		if len(got)%4 != 0 {
			t.Errorf("%v: option length %d not word aligned", l, len(got))
		}
	}
}

func TestBuildOptionsKinds(t *testing.T) {
	wantKinds := map[OptionLayout][]byte{
		LayoutNone:      {},
		LayoutMSS:       {OptMSS},
		LayoutSACK:      {OptSACKPerm},
		LayoutTimestamp: {OptTimestamp},
		LayoutWScale:    {OptWScale},
		LayoutOptimal:   {OptMSS, OptSACKPerm, OptTimestamp, OptWScale},
		LayoutLinux:     {OptMSS, OptSACKPerm, OptTimestamp, OptWScale},
		LayoutBSD:       {OptMSS, OptSACKPerm, OptTimestamp, OptWScale},
		LayoutWindows:   {OptMSS, OptSACKPerm, OptWScale},
	}
	for l, want := range wantKinds {
		kinds := OptionKinds(BuildOptions(l, 1))
		if len(kinds) != len(want) {
			t.Errorf("%v: kinds %v, want %v", l, kinds, want)
			continue
		}
		for _, k := range want {
			if !kinds[k] {
				t.Errorf("%v: missing option kind %d", l, k)
			}
		}
	}
}

func TestOptionKindsMalformed(t *testing.T) {
	// Truncated and zero-length options must terminate cleanly.
	cases := [][]byte{
		{OptMSS},            // kind without length
		{OptMSS, 0},         // zero length
		{OptMSS, 10, 1, 2},  // length exceeds buffer
		{OptNOP, OptNOP},    // only padding
		{OptEOL, OptMSS, 4}, // EOL stops processing
	}
	for i, opts := range cases {
		kinds := OptionKinds(opts)
		if kinds[OptMSS] {
			t.Errorf("case %d: malformed MSS accepted", i)
		}
	}
}

func TestLineRateMatchesPaper(t *testing.T) {
	// §4.3: on 1 GbE, optionless and MSS-only SYNs achieve 1.488 Mpps
	// (minimum frame), Windows layout 1.389 Mpps, Linux layout 1.276 Mpps.
	const gbe = 1e9
	cases := []struct {
		layout OptionLayout
		want   float64 // Mpps
	}{
		{LayoutNone, 1.488},
		{LayoutMSS, 1.488},
		{LayoutWindows, 1.389},
		{LayoutLinux, 1.276},
	}
	for _, c := range cases {
		got := LineRatePPS(gbe, SYNFrameLen(c.layout)) / 1e6
		if math.Abs(got-c.want) > 0.001 {
			t.Errorf("%v: %.3f Mpps, want %.3f", c.layout, got, c.want)
		}
	}
}

func TestSYNFrameLenMSSUnderEthernetMin(t *testing.T) {
	// §4.3: MSS-only probes stay under the 64-byte Ethernet minimum.
	if SYNFrameLen(LayoutMSS)+EthernetFCSLen > EthernetMinFrame {
		t.Errorf("MSS-only frame %d bytes exceeds Ethernet minimum", SYNFrameLen(LayoutMSS))
	}
	if SYNFrameLen(LayoutWindows)+EthernetFCSLen <= EthernetMinFrame {
		t.Error("Windows layout should exceed Ethernet minimum")
	}
}

func TestWireLen(t *testing.T) {
	cases := []struct{ frame, want int }{
		{54, 84}, // padded to 64 + 20 overhead
		{60, 84}, // still at minimum
		{64, 88}, // 64+4 FCS + 20
		{1514, 1538},
	}
	for _, c := range cases {
		if got := WireLen(c.frame); got != c.want {
			t.Errorf("WireLen(%d) = %d, want %d", c.frame, got, c.want)
		}
	}
}

func TestParseOptionLayout(t *testing.T) {
	for _, l := range AllOptionLayouts() {
		got, ok := ParseOptionLayout(l.String())
		if !ok || got != l {
			t.Errorf("ParseOptionLayout(%q) = %v, %v", l.String(), got, ok)
		}
	}
	if _, ok := ParseOptionLayout("nonsense"); ok {
		t.Error("nonsense layout accepted")
	}
	if OptionLayout(99).String() != "unknown" {
		t.Error("unknown layout String wrong")
	}
}

func TestAppendTCPRejectsUnalignedOptions(t *testing.T) {
	buf, err := AppendTCP([]byte{0xAA}, TCP{Options: []byte{1, 2, 3}}, 0, 0, nil)
	if !errors.Is(err, ErrBadOptions) {
		t.Errorf("AppendTCP error = %v, want ErrBadOptions", err)
	}
	if len(buf) != 1 {
		t.Errorf("buf modified on error: %d bytes", len(buf))
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String() = %q", m.String())
	}
}

// FuzzParse hammers the parser with arbitrary frames. Two invariants:
// no panic (the receive path feeds this function raw network input),
// and every error stays inside the documented taxonomy — wrapping
// ErrTruncated or ErrUnsupported — so the engine's per-class fault
// counters classify every rejection.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	syn := buildSYNForFuzz()
	f.Add(syn)
	// Truncations at every structural boundary: mid-Ethernet, mid-IP,
	// mid-TCP, mid-options.
	for _, n := range []int{1, 13, 14, 20, 33, 34, 40, 53, len(syn) - 1} {
		if n > 0 && n < len(syn) {
			f.Add(syn[:n])
		}
	}
	// Bit corruption in each header region.
	for _, i := range []int{12, 14, 23, 34, 47} {
		c := append([]byte(nil), syn...)
		c[i] ^= 0xFF
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Parse(data)
		switch {
		case err != nil:
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrUnsupported) {
				t.Fatalf("Parse error outside taxonomy: %v", err)
			}
			if frame != nil {
				t.Fatal("non-nil frame alongside error")
			}
		case frame == nil:
			t.Fatal("nil frame, nil error")
		case frame.TCP == nil && frame.UDP == nil && frame.ICMP == nil:
			t.Fatal("parsed frame carries no transport header")
		}
		// Checksum verification must tolerate anything the parser does.
		VerifyChecksums(data)
	})
}

func buildSYNForFuzz() []byte {
	opts := BuildOptions(LayoutLinux, 7)
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: ProtocolTCP, Src: 1, Dst: 2}, TCPHeaderLen+len(opts))
	buf, _ = AppendTCP(buf, TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN, Options: opts}, 1, 2, nil)
	return buf
}

func BenchmarkBuildSYNNoOptions(b *testing.B) { benchBuildSYN(b, LayoutNone) }
func BenchmarkBuildSYNMSS(b *testing.B)       { benchBuildSYN(b, LayoutMSS) }
func BenchmarkBuildSYNLinux(b *testing.B)     { benchBuildSYN(b, LayoutLinux) }
func BenchmarkBuildSYNWindows(b *testing.B)   { benchBuildSYN(b, LayoutWindows) }

func benchBuildSYN(b *testing.B, layout OptionLayout) {
	opts := BuildOptions(layout, 7)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = AppendEthernet(buf, srcMAC, dstMAC, EtherTypeIPv4)
		buf = AppendIPv4(buf, IPv4{ID: uint16(i), TTL: 255, Protocol: ProtocolTCP, Src: 1, Dst: uint32(i)}, TCPHeaderLen+len(opts))
		buf, _ = AppendTCP(buf, TCP{SrcPort: 54321, DstPort: 80, Seq: uint32(i), Flags: FlagSYN, Window: 65535, Options: opts}, 1, uint32(i), nil)
	}
	benchLen = len(buf)
}

func BenchmarkParseSYNACK(b *testing.B) {
	frame := buildSYNForFuzz()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Parse(frame)
		if err != nil {
			b.Fatal(err)
		}
		benchLen = int(f.TCP.DstPort)
	}
}

var benchLen int
