package packet

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// buildUDPReply builds a checksummed UDP frame (a DNS-ish response).
func buildUDPReply(payload []byte) []byte {
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: ProtocolUDP, Src: 0x05060708, Dst: 0x01020304}, UDPHeaderLen+len(payload))
	return AppendUDP(buf, 53, 54321, 0x05060708, 0x01020304, payload)
}

// buildEchoReply builds a checksummed ICMP echo reply frame.
func buildEchoReply() []byte {
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: ProtocolICMP, Src: 0x05060708, Dst: 0x01020304}, ICMPHeaderLen+4)
	return AppendICMPEcho(buf, ICMPEchoReply, 777, 42, []byte{1, 2, 3, 4})
}

// buildUnreach builds a checksummed ICMP destination-unreachable frame
// from a router, quoting a UDP probe from quotedSrc to quotedDst.
func buildUnreach(router, quotedSrc, quotedDst uint32, qSrcPort, qDstPort uint16) []byte {
	quote := AppendIPv4(nil, IPv4{TTL: 64, Protocol: ProtocolUDP, Src: quotedSrc, Dst: quotedDst}, UDPHeaderLen)
	quote = AppendUDP(quote, qSrcPort, qDstPort, quotedSrc, quotedDst, nil)
	seg := make([]byte, ICMPHeaderLen, ICMPHeaderLen+len(quote))
	seg[0] = ICMPDestUnreach
	seg[1] = 3 // port unreachable
	seg = append(seg, quote...)
	binary.BigEndian.PutUint16(seg[2:4], Checksum(seg, 0))
	buf := AppendEthernet(nil, srcMAC, dstMAC, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{TTL: 64, Protocol: ProtocolICMP, Src: router, Dst: 0x01020304}, len(seg))
	return append(buf, seg...)
}

// twoPass is the reference receive-path shape ParseVerified replaced:
// structural Parse, then a second full walk for checksums. It returns
// the frame plus the error class the old path would act on.
func twoPass(data []byte) (*Frame, error) {
	f, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if !VerifyChecksums(data) {
		return nil, ErrChecksum
	}
	return f, nil
}

// errClass buckets a parse error into the receive path's rejection
// taxonomy: the counter a frame increments depends only on this class.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrTruncated):
		return "recv_truncated"
	case errors.Is(err, ErrChecksum):
		return "recv_checksum_fail"
	case errors.Is(err, ErrUnsupported):
		return "recv_unsupported"
	default:
		return "other"
	}
}

// TestParseVerifiedTaxonomy pins the single-pass parser's rejection
// taxonomy on hand-built cases across every header class the receive
// path distinguishes.
func TestParseVerifiedTaxonomy(t *testing.T) {
	synack := buildSYN(t, LayoutMSS)
	udp := buildUDPReply([]byte("answer"))
	zeroCk := buildUDPReply([]byte("unchecksummed"))
	// RFC 768: a transmitted checksum of zero means "not computed".
	zeroCk[EthernetHeaderLen+IPv4HeaderLen+6] = 0
	zeroCk[EthernetHeaderLen+IPv4HeaderLen+7] = 0

	cases := []struct {
		name  string
		frame []byte
		want  string
	}{
		{"tcp-good", synack, "ok"},
		{"udp-good", udp, "ok"},
		{"udp-zero-checksum", zeroCk, "ok"},
		{"icmp-echo-good", buildEchoReply(), "ok"},
		{"icmp-unreach-good", buildUnreach(9, 0x01020304, 0x05060708, 54321, 53), "ok"},
		{"empty", nil, "recv_truncated"},
		{"runt-ethernet", synack[:10], "recv_truncated"},
		{"runt-ip", synack[:EthernetHeaderLen+8], "recv_truncated"},
		{"runt-tcp", synack[:EthernetHeaderLen+IPv4HeaderLen+4], "recv_truncated"},
		{"bad-ethertype", mutate(synack, 12, 0x86), "recv_unsupported"},
		{"bad-protocol", reflagProtocol(synack, 47), "recv_unsupported"},
		{"ip-checksum-flipped", mutate(synack, EthernetHeaderLen+10, synack[EthernetHeaderLen+10]^0xFF), "recv_checksum_fail"},
		{"tcp-payload-corrupt", mutate(synack, len(synack)-1, synack[len(synack)-1]^0x01), "recv_checksum_fail"},
		{"udp-checksum-corrupt", mutate(udp, len(udp)-1, udp[len(udp)-1]^0x01), "recv_checksum_fail"},
		{"icmp-checksum-corrupt", mutate(buildEchoReply(), EthernetHeaderLen+IPv4HeaderLen+2, 0xAA), "recv_checksum_fail"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseVerified(tc.frame)
			if got := errClass(err); got != tc.want {
				t.Errorf("ParseVerified class = %s (err %v), want %s", got, err, tc.want)
			}
			_, refErr := twoPass(tc.frame)
			if got, ref := errClass(err), errClass(refErr); got != ref {
				t.Errorf("single-pass class %s disagrees with two-pass reference %s", got, ref)
			}
		})
	}
}

// reflagProtocol rewrites the IP protocol field and repairs the header
// checksum so only the protocol is at fault.
func reflagProtocol(src []byte, proto byte) []byte {
	out := append([]byte(nil), src...)
	ip := out[EthernetHeaderLen:]
	ip[9] = proto
	ip[10], ip[11] = 0, 0
	ihl := int(ip[0]&0x0F) * 4
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:ihl], 0))
	return out
}

// TestParseVerifiedEquivalentToTwoPass sweeps every single-byte
// mutation and every truncation of each good frame class and asserts
// the folded single-pass parser lands in exactly the same taxonomy
// bucket as the old Parse-then-VerifyChecksums composition — and
// returns an identical Frame whenever both accept.
func TestParseVerifiedEquivalentToTwoPass(t *testing.T) {
	seeds := map[string][]byte{
		"tcp":     buildSYN(t, LayoutLinux),
		"udp":     buildUDPReply([]byte("payload")),
		"icmp":    buildEchoReply(),
		"unreach": buildUnreach(9, 0x01020304, 0x05060708, 54321, 53),
	}
	for name, seed := range seeds {
		t.Run(name, func(t *testing.T) {
			check := func(frame []byte, what string) {
				t.Helper()
				got, gotErr := ParseVerified(frame)
				ref, refErr := twoPass(frame)
				if g, r := errClass(gotErr), errClass(refErr); g != r {
					t.Fatalf("%s: single-pass %s (%v), two-pass %s (%v)", what, g, gotErr, r, refErr)
				}
				if gotErr == nil && !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s: accepted frames differ:\n single %+v\n two    %+v", what, got, ref)
				}
			}
			check(seed, "pristine")
			for n := 0; n < len(seed); n++ {
				check(seed[:n], "truncated")
			}
			for i := range seed {
				for _, delta := range []byte{0x01, 0x80, 0xFF} {
					check(mutate(seed, i, seed[i]^delta), "mutated")
				}
			}
		})
	}
}

// TestFrameScratchMatchesParseVerified proves the zero-alloc scratch
// parser is observationally identical to the allocating one, including
// across reuse (no state bleeding from the previous frame).
func TestFrameScratchMatchesParseVerified(t *testing.T) {
	frames := [][]byte{
		buildSYN(t, LayoutMSS),
		buildUDPReply([]byte("a")),
		buildEchoReply(),
		buildUnreach(9, 0x01020304, 0x05060708, 1, 2),
		buildSYN(t, LayoutWindows),
		{0xde, 0xad}, // rejected; must not corrupt the next parse
		buildSYN(t, LayoutNone),
	}
	var sc FrameScratch
	for i, frame := range frames {
		got, gotErr := sc.ParseVerified(frame)
		want, wantErr := ParseVerified(frame)
		if errClass(gotErr) != errClass(wantErr) {
			t.Fatalf("frame %d: scratch err %v, package err %v", i, gotErr, wantErr)
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: scratch parse differs:\n scratch %+v\n package %+v", i, got, want)
		}
	}
}

// TestFlowKeyMatchesClassifyIdentity pins the fanout key to the flow
// identity each response class is deduplicated under: (src, sport) for
// TCP/UDP, (src, 0) for ICMP echo, and the QUOTED (dst, dstport) for
// destination-unreachable so the error lands on the same shard as a
// positive reply from that target would.
func TestFlowKeyMatchesClassifyIdentity(t *testing.T) {
	syn := buildSYN(t, LayoutMSS)
	cases := []struct {
		name     string
		frame    []byte
		wantIP   uint32
		wantPort uint16
	}{
		{"tcp", syn, 0x01020304, 54321},
		{"udp", buildUDPReply(nil), 0x05060708, 53},
		{"icmp-echo", buildEchoReply(), 0x05060708, 0},
		{"icmp-unreach-quoted", buildUnreach(9, 0x01020304, 0x05060708, 54321, 53), 0x05060708, 53},
		{"short", syn[:12], 0, 0},
		{"non-ipv4", mutate(syn, EthernetHeaderLen, 0x60), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ip, port := FlowKey(tc.frame)
			if ip != tc.wantIP || port != tc.wantPort {
				t.Errorf("FlowKey = (%08x, %d), want (%08x, %d)", ip, port, tc.wantIP, tc.wantPort)
			}
		})
	}
	// FlowKey must be total: no slice of a valid frame may panic it.
	for n := 0; n <= len(syn); n++ {
		FlowKey(syn[:n])
	}
}
