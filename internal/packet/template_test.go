package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// buildSYN constructs a complete SYN frame from scratch, the way the
// probe modules do — the ground truth the template patchers must match.
func buildSYNFrame(t testing.TB, layout OptionLayout, ipid uint16, src, dst uint32, sport, dport uint16, seq, ack uint32) []byte {
	t.Helper()
	opts := BuildOptions(layout, 0xDEADBEEF)
	buf := AppendEthernet(nil, MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2}, EtherTypeIPv4)
	buf = AppendIPv4(buf, IPv4{
		ID: ipid, DontFrag: true, TTL: 255, Protocol: ProtocolTCP, Src: src, Dst: dst,
	}, TCPHeaderLen+len(opts))
	buf, err := AppendTCP(buf, TCP{
		SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack,
		Flags: FlagSYN, Window: 65535, Options: opts,
	}, src, dst, nil)
	if err != nil {
		t.Fatalf("AppendTCP: %v", err)
	}
	return buf
}

func TestPatchTCPMatchesRebuild(t *testing.T) {
	const src = 0x0A000001
	for _, layout := range AllOptionLayouts() {
		proto := buildSYNFrame(t, layout, 54321, src, 0, 40000, 0, 0, 0)
		tpl, err := NewTemplate(proto)
		if err != nil {
			t.Fatalf("%v: NewTemplate: %v", layout, err)
		}
		frame := make([]byte, tpl.Len())
		tpl.Seed(frame)
		// Walk a chain of targets so each patch starts from the previous
		// target's values, the way a ring slot is reused.
		targets := []struct {
			ipid         uint16
			dst          uint32
			sport, dport uint16
			seq, ack     uint32
		}{
			{54321, 0x01020304, 32768, 80, 0x11223344, 0},
			{0, 0xFFFFFFFF, 65535, 65535, 0xFFFFFFFF, 0xFFFFFFFF},
			{0xFFFF, 0, 1, 1, 0, 0},
			{7, 0x01020304, 32768, 80, 0x11223344, 1}, // revisit with one field changed
			{7, 0x01020304, 32768, 80, 0x11223344, 1}, // no-op patch (delta zero)
		}
		for i, tgt := range targets {
			PatchTCP(frame, tgt.ipid, tgt.dst, tgt.sport, tgt.dport, tgt.seq, tgt.ack)
			want := buildSYNFrame(t, layout, tgt.ipid, src, tgt.dst, tgt.sport, tgt.dport, tgt.seq, tgt.ack)
			if !bytes.Equal(frame, want) {
				t.Fatalf("%v target %d: patched frame differs from rebuild", layout, i)
			}
			if !VerifyChecksums(frame) {
				t.Fatalf("%v target %d: checksums invalid after patch", layout, i)
			}
		}
	}
}

func TestPatchUDPMatchesRebuild(t *testing.T) {
	const src = 0x0A000001
	payload := []byte("zmapgo-udp-probe")
	build := func(ipid uint16, dst uint32, sport, dport uint16) []byte {
		buf := AppendEthernet(nil, MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2}, EtherTypeIPv4)
		buf = AppendIPv4(buf, IPv4{
			ID: ipid, DontFrag: true, TTL: 255, Protocol: ProtocolUDP, Src: src, Dst: dst,
		}, UDPHeaderLen+len(payload))
		return AppendUDP(buf, sport, dport, src, dst, payload)
	}
	tpl, err := NewTemplate(build(54321, 0, 40000, 0))
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, tpl.Len())
	tpl.Seed(frame)
	for i, tgt := range []struct {
		ipid         uint16
		dst          uint32
		sport, dport uint16
	}{
		{54321, 0x01020304, 32768, 53},
		{1, 0xC0A80101, 33000, 123},
		{0xFFFF, 0xFFFFFFFF, 65535, 65535},
		{0, 0, 1, 1},
	} {
		PatchUDP(frame, tgt.ipid, tgt.dst, tgt.sport, tgt.dport)
		if want := build(tgt.ipid, tgt.dst, tgt.sport, tgt.dport); !bytes.Equal(frame, want) {
			t.Fatalf("target %d: patched frame differs from rebuild", i)
		}
		if !VerifyChecksums(frame) {
			t.Fatalf("target %d: checksums invalid after patch", i)
		}
	}
}

// TestPatchUDPZeroChecksumSubstitution drives a patch through targets
// hand-picked so the true checksum lands on the 0 -> 0xFFFF substitution
// boundary, and verifies equality with a rebuild either way.
func TestPatchUDPZeroChecksumSubstitution(t *testing.T) {
	const src = 0x0A000001
	build := func(dst uint32, sport, dport uint16) []byte {
		buf := AppendEthernet(nil, MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2}, EtherTypeIPv4)
		buf = AppendIPv4(buf, IPv4{
			ID: 1, TTL: 255, Protocol: ProtocolUDP, Src: src, Dst: dst,
		}, UDPHeaderLen)
		return AppendUDP(buf, sport, dport, src, dst, nil)
	}
	tpl, err := NewTemplate(build(0, 40000, 0))
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, tpl.Len())
	tpl.Seed(frame)
	// Scan the port space until a rebuild produces the substituted
	// checksum, proving the patcher agrees on that exact boundary.
	hitSubstitution := false
	for dport := uint16(1); dport < 60000; dport++ {
		want := build(0x01020304, 40000, dport)
		PatchUDP(frame, 1, 0x01020304, 40000, dport)
		if !bytes.Equal(frame, want) {
			t.Fatalf("dport %d: patched frame differs from rebuild", dport)
		}
		if binary.BigEndian.Uint16(want[udpCkOff:]) == 0xFFFF {
			hitSubstitution = true
			break
		}
	}
	if !hitSubstitution {
		t.Skip("no zero-checksum target found in sweep")
	}
}

func TestPatchICMPEchoMatchesRebuild(t *testing.T) {
	const src = 0x0A000001
	build := func(ipid uint16, dst uint32, id, seq uint16) []byte {
		buf := AppendEthernet(nil, MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2}, EtherTypeIPv4)
		buf = AppendIPv4(buf, IPv4{
			ID: ipid, DontFrag: true, TTL: 255, Protocol: ProtocolICMP, Src: src, Dst: dst,
		}, ICMPHeaderLen)
		return AppendICMPEcho(buf, ICMPEchoRequest, id, seq, nil)
	}
	tpl, err := NewTemplate(build(54321, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, tpl.Len())
	tpl.Seed(frame)
	for i, tgt := range []struct {
		ipid    uint16
		dst     uint32
		id, seq uint16
	}{
		{54321, 0x01020304, 0x1111, 0x2222},
		{2, 0xFFFFFFFF, 0xFFFF, 0xFFFF},
		{0xFFFF, 1, 0, 0},
	} {
		PatchICMPEcho(frame, tgt.ipid, tgt.dst, tgt.id, tgt.seq)
		if want := build(tgt.ipid, tgt.dst, tgt.id, tgt.seq); !bytes.Equal(frame, want) {
			t.Fatalf("target %d: patched frame differs from rebuild", i)
		}
		if !VerifyChecksums(frame) {
			t.Fatalf("target %d: checksums invalid after patch", i)
		}
	}
}

func TestNewTemplateRejectsBadFrames(t *testing.T) {
	good := buildSYNFrame(t, LayoutMSS, 1, 0x0A000001, 0x01020304, 40000, 80, 1, 0)
	cases := map[string][]byte{
		"short":      good[:20],
		"not-ipv4":   append([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x86, 0xDD}, good[14:]...),
		"ip-options": append(append([]byte{}, good[:14]...), append([]byte{0x46}, good[15:]...)...),
	}
	for name, frame := range cases {
		if _, err := NewTemplate(frame); err == nil {
			t.Errorf("%s: NewTemplate accepted a bad frame", name)
		}
	}
	if _, err := NewTemplate(good); err != nil {
		t.Errorf("good frame rejected: %v", err)
	}
}

// TestPatchTCPZeroAllocs pins the hot-path property the batched send
// loop depends on: retargeting a frame allocates nothing.
func TestPatchTCPZeroAllocs(t *testing.T) {
	proto := buildSYNFrame(t, LayoutLinux, 1, 0x0A000001, 0x01020304, 40000, 80, 1, 0)
	tpl, err := NewTemplate(proto)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, tpl.Len())
	tpl.Seed(frame)
	dst := uint32(0x0B000000)
	allocs := testing.AllocsPerRun(1000, func() {
		dst++
		PatchTCP(frame, uint16(dst), dst, uint16(32768+dst%256), 443, dst, 0)
	})
	if allocs != 0 {
		t.Fatalf("PatchTCP allocates %.1f objects per call, want 0", allocs)
	}
}

// FuzzChecksumDelta checks the RFC 1624 incremental helper against full
// recomputation on arbitrary buffers and patch positions. The buffer is
// anchored with a nonzero word outside the patched range, mirroring the
// helper's contract (real frames always carry nonzero version/protocol
// bytes the patchers never touch).
func FuzzChecksumDelta(f *testing.F) {
	f.Add([]byte{0x45, 0x00, 0x00, 0x28, 0xDE, 0xAD, 0xBE, 0xEF}, 0, uint32(0x01020304))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00}, 2, uint32(0))
	f.Add(make([]byte, 64), 60, uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, data []byte, pos int, newVal uint32) {
		buf := append([]byte{0x45, 0x06}, data...) // nonzero anchor, never patched
		if len(buf)%2 != 0 {
			buf = append(buf, 0)
		}
		if pos < 0 {
			pos = -pos
		}
		// Patch a 32-bit word at an even offset past the anchor.
		if len(buf) < 8 {
			return
		}
		pos = 2 + (pos%(len(buf)-6))&^1
		ck0 := Checksum(buf, 0)

		var d ChecksumDelta
		old := binary.BigEndian.Uint32(buf[pos:])
		d.Swap32(old, newVal)
		binary.BigEndian.PutUint32(buf[pos:], newVal)

		want := Checksum(buf, 0)
		got := d.Apply(ck0)
		if got != want {
			t.Fatalf("incremental %#04x != recompute %#04x (pos %d, %#08x -> %#08x)",
				got, want, pos, old, newVal)
		}
	})
}
