package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv6 support exists for the hitlist-scanning path (internal/v6scan),
// mirroring the functionality the XMap and ZMapv6 forks added (§4 of the
// paper notes IPv6 was implemented in forks rather than upstreamed).

// IPv6 constants.
const (
	IPv6HeaderLen = 40
	EtherTypeIPv6 = 0x86DD
)

// IPv6Header is the fixed 40-byte IPv6 header (no extension headers; the
// scanner neither sends nor accepts them).
type IPv6Header struct {
	TrafficClass byte
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   byte
	HopLimit     byte
	Src, Dst     [16]byte
}

// AppendIPv6 appends a fixed IPv6 header. payloadLen is the byte count
// that will follow.
func AppendIPv6(buf []byte, h IPv6Header, payloadLen int) []byte {
	vtf := uint32(6)<<28 | uint32(h.TrafficClass)<<20 | (h.FlowLabel & 0xFFFFF)
	buf = binary.BigEndian.AppendUint32(buf, vtf)
	buf = binary.BigEndian.AppendUint16(buf, uint16(payloadLen))
	buf = append(buf, h.NextHeader, h.HopLimit)
	buf = append(buf, h.Src[:]...)
	buf = append(buf, h.Dst[:]...)
	return buf
}

// pseudoHeaderSum6 is the IPv6 pseudo-header partial checksum (RFC 8200).
func pseudoHeaderSum6(src, dst [16]byte, nextHeader byte, length int) uint32 {
	var sum uint32
	for i := 0; i < 16; i += 2 {
		sum += uint32(src[i])<<8 | uint32(src[i+1])
		sum += uint32(dst[i])<<8 | uint32(dst[i+1])
	}
	sum += uint32(length)
	sum += uint32(nextHeader)
	return sum
}

// AppendTCP6 appends a TCP header over IPv6 with a correct checksum. It
// fails with ErrBadOptions when h.Options is not a multiple of 4 bytes,
// leaving buf unmodified.
func AppendTCP6(buf []byte, h TCP, src, dst [16]byte, payload []byte) ([]byte, error) {
	start := len(buf)
	if len(h.Options)%4 != 0 {
		return buf, ErrBadOptions
	}
	dataOffset := byte((TCPHeaderLen + len(h.Options)) / 4)
	buf = binary.BigEndian.AppendUint16(buf, h.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, h.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, h.Seq)
	buf = binary.BigEndian.AppendUint32(buf, h.Ack)
	buf = append(buf, dataOffset<<4, h.Flags)
	buf = binary.BigEndian.AppendUint16(buf, h.Window)
	buf = append(buf, 0, 0)
	buf = binary.BigEndian.AppendUint16(buf, h.Urgent)
	buf = append(buf, h.Options...)
	buf = append(buf, payload...)
	segLen := len(buf) - start
	ck := Checksum(buf[start:], pseudoHeaderSum6(src, dst, ProtocolTCP, segLen))
	binary.BigEndian.PutUint16(buf[start+16:start+18], ck)
	return buf, nil
}

// Frame6 is a parsed IPv6 frame (TCP only; that is all the v6 scanner
// sends and accepts).
type Frame6 struct {
	EthSrc, EthDst MAC
	IP             IPv6Header
	TCP            *TCP
	Payload        []byte
}

// ParseIPv6 decodes an Ethernet frame carrying IPv6+TCP with the same
// hostile-input discipline as Parse. Extension headers are rejected.
func ParseIPv6(data []byte) (*Frame6, error) {
	if len(data) < EthernetHeaderLen {
		return nil, fmt.Errorf("%w: frame %d bytes", ErrTruncated, len(data))
	}
	var f Frame6
	copy(f.EthDst[:], data[0:6])
	copy(f.EthSrc[:], data[6:12])
	if et := binary.BigEndian.Uint16(data[12:14]); et != EtherTypeIPv6 {
		return nil, fmt.Errorf("%w: ethertype 0x%04x", ErrUnsupported, et)
	}
	p := data[EthernetHeaderLen:]
	if len(p) < IPv6HeaderLen {
		return nil, fmt.Errorf("%w: ipv6 header %d bytes", ErrTruncated, len(p))
	}
	vtf := binary.BigEndian.Uint32(p[0:4])
	if vtf>>28 != 6 {
		return nil, fmt.Errorf("%w: ip version %d", ErrUnsupported, vtf>>28)
	}
	f.IP = IPv6Header{
		TrafficClass: byte(vtf >> 20),
		FlowLabel:    vtf & 0xFFFFF,
		PayloadLen:   binary.BigEndian.Uint16(p[4:6]),
		NextHeader:   p[6],
		HopLimit:     p[7],
	}
	copy(f.IP.Src[:], p[8:24])
	copy(f.IP.Dst[:], p[24:40])
	if f.IP.NextHeader != ProtocolTCP {
		return nil, fmt.Errorf("%w: next header %d", ErrUnsupported, f.IP.NextHeader)
	}
	if int(f.IP.PayloadLen) > len(p)-IPv6HeaderLen {
		return nil, fmt.Errorf("%w: payload length %d, have %d", ErrTruncated, f.IP.PayloadLen, len(p)-IPv6HeaderLen)
	}
	seg := p[IPv6HeaderLen : IPv6HeaderLen+int(f.IP.PayloadLen)]
	if len(seg) < TCPHeaderLen {
		return nil, fmt.Errorf("%w: tcp header %d bytes", ErrTruncated, len(seg))
	}
	offset := int(seg[12]>>4) * 4
	if offset < TCPHeaderLen || offset > len(seg) {
		return nil, fmt.Errorf("%w: tcp data offset %d", ErrUnsupported, offset)
	}
	f.TCP = &TCP{
		SrcPort:  binary.BigEndian.Uint16(seg[0:2]),
		DstPort:  binary.BigEndian.Uint16(seg[2:4]),
		Seq:      binary.BigEndian.Uint32(seg[4:8]),
		Ack:      binary.BigEndian.Uint32(seg[8:12]),
		Flags:    seg[13] & 0x3F,
		Window:   binary.BigEndian.Uint16(seg[14:16]),
		Checksum: binary.BigEndian.Uint16(seg[16:18]),
		Urgent:   binary.BigEndian.Uint16(seg[18:20]),
		Options:  seg[TCPHeaderLen:offset],
	}
	f.Payload = seg[offset:]
	return &f, nil
}
