package packet

import "encoding/binary"

// TCP option kinds.
const (
	OptEOL       = 0
	OptNOP       = 1
	OptMSS       = 2 // length 4
	OptWScale    = 3 // length 3
	OptSACKPerm  = 4 // length 2
	OptTimestamp = 8 // length 10
)

// Default option values, matching common OS defaults.
const (
	DefaultMSS    = 1460
	DefaultWScale = 7
)

// OptionLayout names a TCP SYN option arrangement evaluated in Figure 7.
// Layouts differ in which options are present and in their byte order;
// both affect hitrate (§4.3), and total length affects the achievable
// send rate.
type OptionLayout int

const (
	// LayoutNone is the original ZMap probe: a bare 20-byte TCP header.
	LayoutNone OptionLayout = iota
	// LayoutMSS includes only MSS: 4 option bytes, keeping the frame
	// under the Ethernet minimum so 1 GbE line rate is preserved. This is
	// ZMap's modern default.
	LayoutMSS
	// LayoutSACK includes only SACK-permitted (padded to 4 bytes).
	LayoutSACK
	// LayoutTimestamp includes only Timestamp (padded to 12 bytes).
	LayoutTimestamp
	// LayoutWScale includes only Window Scale (padded to 4 bytes).
	LayoutWScale
	// LayoutOptimal packs all four options in the byte-layout order that
	// minimizes padding against the 4-byte word boundary. Per §4.3 it
	// finds marginally fewer hosts (~0.0023%) than OS-exact orders.
	LayoutOptimal
	// LayoutLinux mimics Linux's SYN: MSS, SACK-perm, Timestamp, NOP,
	// WScale (20 option bytes).
	LayoutLinux
	// LayoutBSD mimics macOS/BSD: MSS, NOP, WScale, NOP, NOP, Timestamp,
	// SACK-perm, EOL padding (24 option bytes).
	LayoutBSD
	// LayoutWindows mimics Windows: MSS, NOP, WScale, NOP, NOP, SACK-perm
	// (12 option bytes).
	LayoutWindows
)

var layoutNames = map[OptionLayout]string{
	LayoutNone:      "none",
	LayoutMSS:       "mss",
	LayoutSACK:      "sack",
	LayoutTimestamp: "timestamp",
	LayoutWScale:    "wscale",
	LayoutOptimal:   "optimal",
	LayoutLinux:     "linux",
	LayoutBSD:       "bsd",
	LayoutWindows:   "windows",
}

func (l OptionLayout) String() string {
	if s, ok := layoutNames[l]; ok {
		return s
	}
	return "unknown"
}

// ParseOptionLayout maps a name (as used by the CLI --probe-options flag)
// back to a layout.
func ParseOptionLayout(s string) (OptionLayout, bool) {
	for l, name := range layoutNames {
		if name == s {
			return l, true
		}
	}
	return LayoutNone, false
}

// AllOptionLayouts lists every layout, in Figure 7 order.
func AllOptionLayouts() []OptionLayout {
	return []OptionLayout{
		LayoutNone, LayoutMSS, LayoutSACK, LayoutTimestamp, LayoutWScale,
		LayoutOptimal, LayoutLinux, LayoutBSD, LayoutWindows,
	}
}

func mss(b []byte) []byte {
	b = append(b, OptMSS, 4)
	return binary.BigEndian.AppendUint16(b, DefaultMSS)
}

func sackPerm(b []byte) []byte { return append(b, OptSACKPerm, 2) }

func timestamp(b []byte, tsVal uint32) []byte {
	b = append(b, OptTimestamp, 10)
	b = binary.BigEndian.AppendUint32(b, tsVal)
	return binary.BigEndian.AppendUint32(b, 0) // TS echo reply zero in SYN
}

func wscale(b []byte) []byte { return append(b, OptWScale, 3, DefaultWScale) }

func padTo4(b []byte) []byte {
	for len(b)%4 != 0 {
		b = append(b, OptEOL)
	}
	return b
}

// BuildOptions returns the raw option bytes for a layout. tsVal seeds the
// timestamp option where present (ZMap uses a per-scan value so responses
// can be matched). The result length is always a multiple of 4.
func BuildOptions(l OptionLayout, tsVal uint32) []byte {
	var b []byte
	switch l {
	case LayoutNone:
		return nil
	case LayoutMSS:
		b = mss(b) // exactly 4 bytes
	case LayoutSACK:
		b = padTo4(sackPerm(b))
	case LayoutTimestamp:
		b = padTo4(timestamp(b, tsVal))
	case LayoutWScale:
		b = padTo4(wscale(b))
	case LayoutOptimal:
		// Packed for minimal padding: 4 + 2 + 10 = 16, then 3 + 1 pad = 20.
		b = mss(b)
		b = sackPerm(b)
		b = timestamp(b, tsVal)
		b = padTo4(wscale(b))
	case LayoutLinux:
		// Linux: MSS(4) SACKPERM(2) TS(10) NOP(1) WS(3) = 20.
		b = mss(b)
		b = sackPerm(b)
		b = timestamp(b, tsVal)
		b = append(b, OptNOP)
		b = wscale(b)
	case LayoutBSD:
		// BSD/macOS: MSS(4) NOP WS(3) NOP NOP TS(10) SACKPERM(2) EOL*2 = 24.
		b = mss(b)
		b = append(b, OptNOP)
		b = wscale(b)
		b = append(b, OptNOP, OptNOP)
		b = timestamp(b, tsVal)
		b = sackPerm(b)
		b = padTo4(b)
	case LayoutWindows:
		// Windows: MSS(4) NOP WS(3) NOP NOP SACKPERM(2) = 12.
		b = mss(b)
		b = append(b, OptNOP)
		b = wscale(b)
		b = append(b, OptNOP, OptNOP)
		b = sackPerm(b)
	default:
		return nil
	}
	return b
}

// OptionKinds walks raw option bytes and returns the set of option kinds
// present (excluding NOP/EOL). Malformed options terminate the walk; this
// mirrors receiver behavior, which must tolerate garbage.
func OptionKinds(options []byte) map[byte]bool {
	kinds := make(map[byte]bool)
	i := 0
	for i < len(options) {
		kind := options[i]
		switch kind {
		case OptEOL:
			return kinds
		case OptNOP:
			i++
			continue
		}
		if i+1 >= len(options) {
			return kinds // truncated option header
		}
		length := int(options[i+1])
		if length < 2 || i+length > len(options) {
			return kinds // malformed length
		}
		kinds[kind] = true
		i += length
	}
	return kinds
}

// SYNFrameLen returns the Ethernet frame length (without FCS) of a SYN
// probe using the given layout.
func SYNFrameLen(l OptionLayout) int {
	return EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen + len(BuildOptions(l, 0))
}
