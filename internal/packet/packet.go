// Package packet builds and parses the raw Ethernet/IPv4/TCP/UDP/ICMP
// frames ZMap sends and receives. It is a from-scratch, stdlib-only
// equivalent of the slice of gopacket the scanner needs, with two
// priorities taken from the paper:
//
//   - Probe construction is allocation-free: builders append into caller
//     buffers so the send loop can run at line rate.
//   - Parsers treat input as attacker-controlled: every access is bounds
//     checked and malformed input yields an error, never a panic (§5
//     "Network parsers are particularly hard to implement safely").
//
// The package also models time-on-the-wire for Ethernet links (preamble,
// FCS, minimum frame size, interframe gap), which is what the §4.3
// line-rate numbers (1.488/1.389/1.276 Mpps on 1 GbE) reduce to.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Link-layer and protocol constants.
const (
	EthernetHeaderLen = 14
	EthernetFCSLen    = 4
	EthernetMinFrame  = 64 // including FCS
	EthernetPreamble  = 8  // preamble + SFD
	EthernetIFG       = 12 // interframe gap

	IPv4HeaderLen   = 20
	TCPHeaderLen    = 20 // without options
	UDPHeaderLen    = 8
	ICMPHeaderLen   = 8
	EtherTypeIPv4   = 0x0800
	ProtocolICMP    = 1
	ProtocolTCP     = 6
	ProtocolUDP     = 17
	DefaultProbeTTL = 255

	// ZMapIPID is the static IP identification value that made ZMap
	// probes fingerprintable for a decade (§2.1). Since early 2024 the
	// default is a random per-probe ID; both behaviors are supported.
	ZMapIPID = 54321
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Checksum computes the Internet checksum (RFC 1071) over data with an
// initial partial sum, enabling pseudo-header chaining.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial sum of the IPv4 pseudo-header used by
// TCP and UDP checksums.
func pseudoHeaderSum(src, dst uint32, protocol byte, length int) uint32 {
	sum := (src >> 16) + (src & 0xFFFF)
	sum += (dst >> 16) + (dst & 0xFFFF)
	sum += uint32(protocol)
	sum += uint32(length)
	return sum
}

// IPv4 is a decoded (or to-be-encoded) IPv4 header. Options are not
// supported; ZMap never sends them and drops packets that carry them.
type IPv4 struct {
	TOS      byte
	TotalLen uint16
	ID       uint16
	DontFrag bool
	TTL      byte
	Protocol byte
	Checksum uint16
	Src, Dst uint32
}

// TCP is a decoded (or to-be-encoded) TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte // raw option bytes, length multiple of 4
}

// HeaderLen returns the TCP header length including options.
func (t *TCP) HeaderLen() int { return TCPHeaderLen + len(t.Options) }

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// ICMP is a decoded ICMP header (echo and destination-unreachable forms).
type ICMP struct {
	Type, Code byte
	Checksum   uint16
	ID, Seq    uint16 // echo request/reply
}

// ICMP types the scanner cares about.
const (
	ICMPEchoReply    = 0
	ICMPDestUnreach  = 3
	ICMPEchoRequest  = 8
	ICMPTimeExceeded = 11
)

// AppendEthernet appends a 14-byte Ethernet II header.
func AppendEthernet(buf []byte, src, dst MAC, etherType uint16) []byte {
	buf = append(buf, dst[:]...)
	buf = append(buf, src[:]...)
	return binary.BigEndian.AppendUint16(buf, etherType)
}

// AppendIPv4 appends a 20-byte IPv4 header with a correct checksum.
// payloadLen is the number of bytes that will follow the header.
func AppendIPv4(buf []byte, h IPv4, payloadLen int) []byte {
	start := len(buf)
	total := IPv4HeaderLen + payloadLen
	buf = append(buf, 0x45, h.TOS)
	buf = binary.BigEndian.AppendUint16(buf, uint16(total))
	buf = binary.BigEndian.AppendUint16(buf, h.ID)
	frag := uint16(0)
	if h.DontFrag {
		frag = 0x4000
	}
	buf = binary.BigEndian.AppendUint16(buf, frag)
	buf = append(buf, h.TTL, h.Protocol, 0, 0) // checksum zeroed
	buf = binary.BigEndian.AppendUint32(buf, h.Src)
	buf = binary.BigEndian.AppendUint32(buf, h.Dst)
	ck := Checksum(buf[start:start+IPv4HeaderLen], 0)
	binary.BigEndian.PutUint16(buf[start+10:start+12], ck)
	return buf
}

// ErrBadOptions reports a TCP option slice whose length is not a
// multiple of 4, which cannot be encoded in the data-offset field. It is
// a builder error, returned rather than panicked per the package's
// "malformed input yields an error, never a panic" contract.
var ErrBadOptions = errors.New("packet: TCP options length must be a multiple of 4")

// AppendTCP appends a TCP header (with h.Options) and computes its checksum
// over the pseudo-header; payload is the TCP payload (usually empty for
// probes). It fails with ErrBadOptions when h.Options is not a multiple
// of 4 bytes, leaving buf unmodified.
func AppendTCP(buf []byte, h TCP, src, dst uint32, payload []byte) ([]byte, error) {
	start := len(buf)
	if len(h.Options)%4 != 0 {
		return buf, ErrBadOptions
	}
	dataOffset := byte((TCPHeaderLen + len(h.Options)) / 4)
	buf = binary.BigEndian.AppendUint16(buf, h.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, h.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, h.Seq)
	buf = binary.BigEndian.AppendUint32(buf, h.Ack)
	buf = append(buf, dataOffset<<4, h.Flags)
	buf = binary.BigEndian.AppendUint16(buf, h.Window)
	buf = append(buf, 0, 0) // checksum
	buf = binary.BigEndian.AppendUint16(buf, h.Urgent)
	buf = append(buf, h.Options...)
	buf = append(buf, payload...)
	segLen := len(buf) - start
	sum := pseudoHeaderSum(src, dst, ProtocolTCP, segLen)
	ck := Checksum(buf[start:], sum)
	binary.BigEndian.PutUint16(buf[start+16:start+18], ck)
	return buf, nil
}

// AppendUDP appends a UDP header plus payload with checksum.
func AppendUDP(buf []byte, srcPort, dstPort uint16, src, dst uint32, payload []byte) []byte {
	start := len(buf)
	length := UDPHeaderLen + len(payload)
	buf = binary.BigEndian.AppendUint16(buf, srcPort)
	buf = binary.BigEndian.AppendUint16(buf, dstPort)
	buf = binary.BigEndian.AppendUint16(buf, uint16(length))
	buf = append(buf, 0, 0)
	buf = append(buf, payload...)
	sum := pseudoHeaderSum(src, dst, ProtocolUDP, length)
	ck := Checksum(buf[start:], sum)
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(buf[start+6:start+8], ck)
	return buf
}

// AppendICMPEcho appends an ICMP echo request/reply with payload.
func AppendICMPEcho(buf []byte, icmpType byte, id, seq uint16, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, icmpType, 0, 0, 0)
	buf = binary.BigEndian.AppendUint16(buf, id)
	buf = binary.BigEndian.AppendUint16(buf, seq)
	buf = append(buf, payload...)
	ck := Checksum(buf[start:], 0)
	binary.BigEndian.PutUint16(buf[start+2:start+4], ck)
	return buf
}

// Frame is a fully parsed probe or response. Exactly one of TCP, UDP, ICMP
// is non-nil for well-formed scanner traffic.
type Frame struct {
	EthSrc, EthDst MAC
	IP             IPv4
	TCP            *TCP
	UDP            *UDP
	ICMP           *ICMP
	Payload        []byte // transport payload (after options), aliased into input
}

// Parse errors. Errors wrap ErrTruncated, ErrUnsupported, or ErrChecksum
// so callers can distinguish garbage from merely-uninteresting traffic
// from bit corruption.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrUnsupported = errors.New("packet: unsupported")
	// ErrChecksum reports a frame that parsed structurally but whose IP
	// header or transport checksum does not verify (ParseVerified only;
	// plain Parse never checks). Structural faults always win: a frame
	// that is both truncated and corrupt reports ErrTruncated.
	ErrChecksum = errors.New("packet: checksum mismatch")
)

// Checksum rejections are pre-wrapped: the receive hot path rejects
// corrupt frames without allocating an error per frame.
var (
	errIPChecksum        = fmt.Errorf("%w: ip header", ErrChecksum)
	errTransportChecksum = fmt.Errorf("%w: transport segment", ErrChecksum)
)

// Parse decodes an Ethernet frame containing IPv4 and a supported
// transport. The returned Frame aliases data; callers that retain frames
// across buffer reuse must copy. Parsing is strict: header lengths,
// total-length fields, and data offsets are all validated against the
// actual buffer.
func Parse(data []byte) (*Frame, error) {
	var f Frame
	if err := parseInto(&f, nil, data, false); err != nil {
		// Never hand back a half-populated frame: a caller that misses
		// the error must get a nil dereference, not silently read
		// whichever headers happened to parse before the fault.
		return nil, err
	}
	return &f, nil
}

// ParseVerified is Parse with checksum verification folded into the same
// pass: after the structural walk validates every offset, the IP header
// and transport checksums are summed over the already-bounded slices
// instead of re-walking the frame from scratch (the old Parse-then-
// VerifyChecksums shape). Rejection taxonomy: structural faults return
// ErrTruncated/ErrUnsupported exactly as Parse would; a frame Parse
// accepts that VerifyChecksums would refuse returns ErrChecksum.
func ParseVerified(data []byte) (*Frame, error) {
	var f Frame
	if err := parseInto(&f, nil, data, true); err != nil {
		return nil, err
	}
	return &f, nil
}

// FrameScratch is reusable parse state for a zero-allocation receive
// path: the transport-header structs Parse heap-allocates per call live
// in the scratch instead and are re-pointed into the Frame each parse.
// A scratch is single-owner — one per receive worker, never shared.
type FrameScratch struct {
	frame Frame
	tcp   TCP
	udp   UDP
	icmp  ICMP
}

// ParseVerified parses and checksum-verifies data into the scratch with
// the same semantics as the package-level ParseVerified, without its
// allocations. The returned Frame (and everything it points to) is
// valid only until the next call on this scratch.
func (s *FrameScratch) ParseVerified(data []byte) (*Frame, error) {
	s.frame = Frame{}
	if err := parseInto(&s.frame, s, data, true); err != nil {
		return nil, err
	}
	return &s.frame, nil
}

func parseInto(f *Frame, sc *FrameScratch, data []byte, verify bool) error {
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("%w: frame %d bytes", ErrTruncated, len(data))
	}
	copy(f.EthDst[:], data[0:6])
	copy(f.EthSrc[:], data[6:12])
	etherType := binary.BigEndian.Uint16(data[12:14])
	if etherType != EtherTypeIPv4 {
		return fmt.Errorf("%w: ethertype 0x%04x", ErrUnsupported, etherType)
	}
	return parseIPv4(f, sc, data[EthernetHeaderLen:], verify)
}

func parseIPv4(f *Frame, sc *FrameScratch, data []byte, verify bool) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("%w: ip header %d bytes", ErrTruncated, len(data))
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return fmt.Errorf("%w: ip version %d", ErrUnsupported, vihl>>4)
	}
	ihl := int(vihl&0x0F) * 4
	if ihl < IPv4HeaderLen {
		return fmt.Errorf("%w: ihl %d", ErrUnsupported, ihl)
	}
	if len(data) < ihl {
		return fmt.Errorf("%w: ip header claims %d bytes, have %d", ErrTruncated, ihl, len(data))
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl {
		return fmt.Errorf("%w: total length %d < header %d", ErrUnsupported, total, ihl)
	}
	if total > len(data) {
		return fmt.Errorf("%w: total length %d, have %d", ErrTruncated, total, len(data))
	}
	frag := binary.BigEndian.Uint16(data[6:8])
	if frag&0x1FFF != 0 || frag&0x2000 != 0 {
		return fmt.Errorf("%w: fragmented packet", ErrUnsupported)
	}
	f.IP = IPv4{
		TOS:      data[1],
		TotalLen: uint16(total),
		ID:       binary.BigEndian.Uint16(data[4:6]),
		DontFrag: frag&0x4000 != 0,
		TTL:      data[8],
		Protocol: data[9],
		Checksum: binary.BigEndian.Uint16(data[10:12]),
		Src:      binary.BigEndian.Uint32(data[12:16]),
		Dst:      binary.BigEndian.Uint32(data[16:20]),
	}
	payload := data[ihl:total]
	var err error
	switch f.IP.Protocol {
	case ProtocolTCP:
		var t *TCP
		if sc != nil {
			t = &sc.tcp
		} else {
			t = new(TCP)
		}
		err = parseTCP(f, t, payload)
	case ProtocolUDP:
		var u *UDP
		if sc != nil {
			u = &sc.udp
		} else {
			u = new(UDP)
		}
		err = parseUDP(f, u, payload)
	case ProtocolICMP:
		var ic *ICMP
		if sc != nil {
			ic = &sc.icmp
		} else {
			ic = new(ICMP)
		}
		err = parseICMP(f, ic, payload)
	default:
		return fmt.Errorf("%w: ip protocol %d", ErrUnsupported, f.IP.Protocol)
	}
	if err != nil || !verify {
		return err
	}
	// Single-pass verification: the structural walk above already
	// validated ihl and total against the buffer, so the checksum sums
	// run over pre-bounded slices. Ordering matters for the rejection
	// taxonomy — no checksum verdict is reached unless the whole frame
	// parsed, matching the historical Parse-then-VerifyChecksums shape.
	if Checksum(data[:ihl], 0) != 0 {
		return errIPChecksum
	}
	seg := data[ihl:total]
	switch f.IP.Protocol {
	case ProtocolTCP:
		if Checksum(seg, pseudoHeaderSum(f.IP.Src, f.IP.Dst, ProtocolTCP, len(seg))) != 0 {
			return errTransportChecksum
		}
	case ProtocolUDP:
		// A zero UDP checksum means the sender elected not to checksum
		// (RFC 768); accept it, as VerifyChecksums always has.
		if f.UDP.Checksum != 0 &&
			Checksum(seg, pseudoHeaderSum(f.IP.Src, f.IP.Dst, ProtocolUDP, len(seg))) != 0 {
			return errTransportChecksum
		}
	case ProtocolICMP:
		if Checksum(seg, 0) != 0 {
			return errTransportChecksum
		}
	}
	return nil
}

func parseTCP(f *Frame, t *TCP, data []byte) error {
	if len(data) < TCPHeaderLen {
		return fmt.Errorf("%w: tcp header %d bytes", ErrTruncated, len(data))
	}
	offset := int(data[12]>>4) * 4
	if offset < TCPHeaderLen {
		return fmt.Errorf("%w: tcp data offset %d", ErrUnsupported, offset)
	}
	if offset > len(data) {
		return fmt.Errorf("%w: tcp offset %d, have %d", ErrTruncated, offset, len(data))
	}
	*t = TCP{
		SrcPort:  binary.BigEndian.Uint16(data[0:2]),
		DstPort:  binary.BigEndian.Uint16(data[2:4]),
		Seq:      binary.BigEndian.Uint32(data[4:8]),
		Ack:      binary.BigEndian.Uint32(data[8:12]),
		Flags:    data[13] & 0x3F,
		Window:   binary.BigEndian.Uint16(data[14:16]),
		Checksum: binary.BigEndian.Uint16(data[16:18]),
		Urgent:   binary.BigEndian.Uint16(data[18:20]),
		Options:  data[TCPHeaderLen:offset],
	}
	f.TCP = t
	f.Payload = data[offset:]
	return nil
}

func parseUDP(f *Frame, u *UDP, data []byte) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("%w: udp header %d bytes", ErrTruncated, len(data))
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < UDPHeaderLen {
		return fmt.Errorf("%w: udp length %d", ErrUnsupported, length)
	}
	if length > len(data) {
		return fmt.Errorf("%w: udp length %d, have %d", ErrTruncated, length, len(data))
	}
	*u = UDP{
		SrcPort:  binary.BigEndian.Uint16(data[0:2]),
		DstPort:  binary.BigEndian.Uint16(data[2:4]),
		Length:   uint16(length),
		Checksum: binary.BigEndian.Uint16(data[6:8]),
	}
	f.UDP = u
	f.Payload = data[UDPHeaderLen:length]
	return nil
}

func parseICMP(f *Frame, ic *ICMP, data []byte) error {
	if len(data) < ICMPHeaderLen {
		return fmt.Errorf("%w: icmp header %d bytes", ErrTruncated, len(data))
	}
	*ic = ICMP{
		Type:     data[0],
		Code:     data[1],
		Checksum: binary.BigEndian.Uint16(data[2:4]),
		ID:       binary.BigEndian.Uint16(data[4:6]),
		Seq:      binary.BigEndian.Uint16(data[6:8]),
	}
	f.ICMP = ic
	f.Payload = data[ICMPHeaderLen:]
	return nil
}

// FlowKey extracts the flow identity a response will be classified
// under — the (responder IP, scanned port) pair every probe module keys
// its Result by: the source address and source port for TCP and UDP
// replies, (source, 0) for ICMP, except destination-unreachable errors,
// which are keyed by the quoted probe's destination so a UDP reply and
// the port-unreachable for the same target agree. A sharded receive
// path fans frames out by this key so every response for one target
// lands on the same worker and its dedup shard.
//
// FlowKey reads only the fixed offsets it needs, bounds-checked and
// allocation-free. Frames too short or non-IPv4 return (0, 0); the
// value for any frame the parser would reject is irrelevant (rejected
// frames never reach dedup), it only must be deterministic.
func FlowKey(data []byte) (ip uint32, port uint16) {
	if len(data) < EthernetHeaderLen+IPv4HeaderLen {
		return 0, 0
	}
	b := data[EthernetHeaderLen:]
	if b[0]>>4 != 4 {
		return 0, 0
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl+4 {
		return 0, 0
	}
	src := binary.BigEndian.Uint32(b[12:16])
	switch b[9] {
	case ProtocolTCP, ProtocolUDP:
		return src, binary.BigEndian.Uint16(b[ihl : ihl+2])
	case ProtocolICMP:
		if b[ihl] != ICMPDestUnreach || len(b) < ihl+ICMPHeaderLen+IPv4HeaderLen+8 {
			return src, 0
		}
		// Same quote layout ParseUnreachQuote validates: the ports are
		// only meaningful for TCP/UDP quotes, which is exactly when a
		// classifier would use them.
		q := b[ihl+ICMPHeaderLen:]
		if q[0]>>4 != 4 {
			return src, 0
		}
		qihl := int(q[0]&0x0F) * 4
		if qihl < IPv4HeaderLen || len(q) < qihl+4 {
			return src, 0
		}
		switch q[9] {
		case ProtocolTCP, ProtocolUDP:
			return binary.BigEndian.Uint32(q[16:20]), binary.BigEndian.Uint16(q[qihl+2 : qihl+4])
		}
		return src, 0
	}
	return src, 0
}

// VerifyIPv4Checksum reports whether the IPv4 header checksum in an
// encoded frame (starting at the Ethernet header) is valid.
func VerifyIPv4Checksum(frame []byte) bool {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return false
	}
	ihl := int(frame[EthernetHeaderLen]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(frame) < EthernetHeaderLen+ihl {
		return false
	}
	return Checksum(frame[EthernetHeaderLen:EthernetHeaderLen+ihl], 0) == 0
}

// VerifyChecksums reports whether both the IPv4 header checksum and the
// transport (TCP/UDP/ICMP) checksum in an encoded frame are valid. The
// receive path uses it to discard bit-corrupted frames that still parse:
// a raw-socket receiver sees frames the kernel never checksummed, so a
// stateless scanner must do its own verification before validation.
// Frames too short or oddly shaped verify false; a UDP checksum of zero
// (legitimately unchecksummed per RFC 768) is accepted.
func VerifyChecksums(frame []byte) bool {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return false
	}
	ip := frame[EthernetHeaderLen:]
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return false
	}
	if Checksum(ip[:ihl], 0) != 0 {
		return false
	}
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	if total < ihl || total > len(ip) {
		return false
	}
	seg := ip[ihl:total]
	src := binary.BigEndian.Uint32(ip[12:16])
	dst := binary.BigEndian.Uint32(ip[16:20])
	switch ip[9] {
	case ProtocolTCP:
		if len(seg) < TCPHeaderLen {
			return false
		}
		return Checksum(seg, pseudoHeaderSum(src, dst, ProtocolTCP, len(seg))) == 0
	case ProtocolUDP:
		if len(seg) < UDPHeaderLen {
			return false
		}
		if binary.BigEndian.Uint16(seg[6:8]) == 0 {
			return true // sender elected not to checksum
		}
		return Checksum(seg, pseudoHeaderSum(src, dst, ProtocolUDP, len(seg))) == 0
	case ProtocolICMP:
		if len(seg) < ICMPHeaderLen {
			return false
		}
		return Checksum(seg, 0) == 0
	default:
		return false
	}
}

// WireLen returns the number of byte times a frame of frameLen bytes
// (Ethernet header through payload, excluding FCS) occupies on the wire:
// preamble + padded frame + FCS + interframe gap. Frames below the
// Ethernet minimum are padded.
func WireLen(frameLen int) int {
	withFCS := frameLen + EthernetFCSLen
	if withFCS < EthernetMinFrame {
		withFCS = EthernetMinFrame
	}
	return EthernetPreamble + withFCS + EthernetIFG
}

// LineRatePPS returns the maximum packets per second a link of linkBits
// bits/s can carry for frames of frameLen bytes (excluding FCS).
func LineRatePPS(linkBits float64, frameLen int) float64 {
	return linkBits / (8 * float64(WireLen(frameLen)))
}
