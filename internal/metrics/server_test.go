package metrics

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"zmapgo/internal/trace"
)

func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestServerHealthzReadiness: /healthz answers 200 while serving and
// 503 once the scan marks the server draining — the contract an
// orchestrator's readiness probe relies on.
func TestServerHealthzReadiness(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := get(t, srv.Addr(), "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("ready server: status %d body %q, want 200 ok", code, body)
	}
	srv.SetReady(false)
	if code, body := get(t, srv.Addr(), "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining server: status %d body %q, want 503 draining", code, body)
	}
	srv.SetReady(true)
	if code, _ := get(t, srv.Addr(), "/healthz"); code != http.StatusOK {
		t.Errorf("re-readied server: status %d, want 200", code)
	}
}

// TestServerDebugTraceEndpoint: /debug/trace is 404 until a recorder is
// attached, then serves parseable JSONL and chrome dumps with the right
// content types, and 400s unknown formats.
func TestServerDebugTraceEndpoint(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, _ := get(t, srv.Addr(), "/debug/trace"); code != http.StatusNotFound {
		t.Errorf("unattached /debug/trace: status %d, want 404", code)
	}

	rec := trace.New(trace.Config{Shards: 1})
	rec.Shard(0).Record(trace.KProbeSent, 0x0a000001, 80, 0)
	rec.Journal(trace.JEntry{Kind: trace.JPhase, Phase: "send"})
	srv.SetTraceSource(func(w io.Writer, format string) error {
		snap := rec.Snapshot()
		if format == "chrome" {
			return snap.WriteChromeTrace(w)
		}
		return snap.WriteJSONL(w)
	})

	code, body := get(t, srv.Addr(), "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", code)
	}
	snap, err := trace.ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("served JSONL does not parse: %v", err)
	}
	if len(snap.Events) != 1 || len(snap.Journal) != 1 {
		t.Errorf("served snapshot: %d events, %d journal entries, want 1+1",
			len(snap.Events), len(snap.Journal))
	}
	if code, body := get(t, srv.Addr(), "/debug/trace?format=chrome"); code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("chrome dump: status %d body %q", code, body)
	}
	if code, _ := get(t, srv.Addr(), "/debug/trace?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", code)
	}
}

// TestServerShutdownReleasesListener: Shutdown marks the server
// draining, stops accepting, and frees the port — the listener must not
// leak past scan end (it used to).
func TestServerShutdownReleasesListener(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	// The port is actually free again: a fresh server can bind it.
	srv2, err := NewServer(addr, NewRegistry())
	if err != nil {
		t.Fatalf("rebind %s after shutdown: %v", addr, err)
	}
	srv2.Close()
}
