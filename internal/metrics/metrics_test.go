package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {7, 7}, // unit buckets
		{8, 8}, {9, 9}, {15, 15}, // first octave, width 1
		{16, 16}, {17, 16}, {18, 17}, {31, 23}, // width 2
		{32, 24}, {63, 31}, // width 4
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket bounds must tile the value space without gaps or overlaps.
	values := []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025,
		1_000_000, 123_456_789, math.MaxUint64 / 2, math.MaxUint64}
	for _, v := range values {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d in bucket %d with bounds [%d, %d]", v, i, lo, hi)
		}
	}
	for i := 1; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		_, prevHi := bucketBounds(i - 1)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, previous ends at %d", i, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted bounds [%d, %d]", i, lo, hi)
		}
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Log-linear with 8 sub-buckets per octave: bucket width must never
	// exceed 1/8 of the bucket's lower bound (for values >= 8).
	for i := subCount; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if width := hi - lo + 1; float64(width) > float64(lo)/subCount+1 {
			t.Fatalf("bucket %d [%d, %d] wider than 12.5%%", i, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1)
	// 1000 observations: 1µs, 2µs, ..., 1000µs. True p50=500µs, p90=900µs,
	// p99=990µs; bucket error is at most 12.5%.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := s.Quantile(c.q)
		err := math.Abs(float64(got-c.want)) / float64(c.want)
		if err > 0.13 {
			t.Errorf("p%.0f = %v, want %v ±12.5%% (err %.1f%%)", c.q*100, got, c.want, err*100)
		}
	}
	if got := s.Quantile(0); got > 2*time.Microsecond {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Quantile(1); got < 875*time.Microsecond {
		t.Errorf("p100 = %v", got)
	}
}

func TestHistogramEmptyAndMean(t *testing.T) {
	h := NewHistogram(2)
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Errorf("empty histogram: %+v", s)
	}
	h.Shard(0).Record(10 * time.Millisecond)
	h.Shard(1).Record(20 * time.Millisecond)
	s = h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if m := s.Mean(); m != 15*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
	h.Record(-time.Second) // negative clamps to 0, must not panic
	if h.Snapshot().Count != 3 {
		t.Error("negative record not counted")
	}
}

func TestHistogramConcurrentRecordSnapshot(t *testing.T) {
	h := NewHistogram(4)
	const perG = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				s.Quantile(0.99)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := h.Shard(g)
			for i := 0; i < perG; i++ {
				sh.Record(time.Duration(i) * time.Nanosecond)
			}
		}(g)
	}
	// Let writers finish, then stop the reader.
	deadline := time.Now().Add(5 * time.Second)
	for h.Snapshot().Count < 4*perG && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count; got != 4*perG {
		t.Errorf("count = %d, want %d", got, 4*perG)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "a counter")
	b := r.Counter("x_total", "a counter")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	h1 := r.Histogram("h_seconds", "h", 2)
	h2 := r.Histogram("h_seconds", "h", 8)
	if h1 != h2 {
		t.Error("same name returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zmapgo_test_sent_total", "Probes sent.")
	c.Add(42)
	g := r.Gauge("zmapgo_test_rate_pps", "Configured rate.")
	g.Set(1250.5)
	r.CounterFunc("zmapgo_test_recv_total", "Frames received.", func() uint64 { return 7 })
	h := r.Histogram("zmapgo_test_latency_seconds", "Send latency.", 1)
	// Two observations in the same octave (1024–2047 ns) and one larger.
	h.Record(1100 * time.Nanosecond)
	h.Record(1800 * time.Nanosecond)
	h.Record(70 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP zmapgo_test_latency_seconds Send latency.
# TYPE zmapgo_test_latency_seconds histogram
zmapgo_test_latency_seconds_bucket{le="2.048e-06"} 2
zmapgo_test_latency_seconds_bucket{le="7.3728e-05"} 3
zmapgo_test_latency_seconds_bucket{le="+Inf"} 3
zmapgo_test_latency_seconds_sum 7.29e-05
zmapgo_test_latency_seconds_count 3
# HELP zmapgo_test_rate_pps Configured rate.
# TYPE zmapgo_test_rate_pps gauge
zmapgo_test_rate_pps 1250.5
# HELP zmapgo_test_recv_total Frames received.
# TYPE zmapgo_test_recv_total counter
zmapgo_test_recv_total 7
# HELP zmapgo_test_sent_total Probes sent.
# TYPE zmapgo_test_sent_total counter
zmapgo_test_sent_total 42
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("zmapgo_test_total", "t").Add(3)
	srv, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "zmapgo_test_total 3") {
		t.Errorf("/metrics missing counter: %q", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if body := get("/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index page: %q", body)
	}
}
