package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, HDR-style. Values (nanoseconds)
// from 0 to 7 land in unit-width buckets 0..7; larger values split each
// power-of-two octave into 2^subBits = 8 linear sub-buckets, giving a
// worst-case relative error of 1/8 = 12.5% on any quantile — tight
// enough to tell a 50µs send from a 60µs one, while the whole table
// (496 buckets × 8 bytes) stays under 4 KB per shard.
const (
	subBits    = 3
	subCount   = 1 << subBits                     // sub-buckets per octave
	numBuckets = (64-subBits)*subCount + subCount // 496
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // floor(log2 v), >= subBits
	sub := (v >> (uint(exp) - subBits)) & (subCount - 1)
	return (exp-subBits)*subCount + subCount + int(sub)
}

// bucketBounds returns the inclusive [lower, upper] nanosecond range of
// bucket i.
func bucketBounds(i int) (lower, upper uint64) {
	if i < subCount {
		return uint64(i), uint64(i)
	}
	exp := uint((i-subCount)/subCount) + subBits
	sub := uint64((i - subCount) % subCount)
	width := uint64(1) << (exp - subBits)
	lower = (subCount + sub) << (exp - subBits)
	return lower, lower + width - 1
}

// HistShard is one writer's slice of a histogram. Record is lock-free,
// allocation-free, and safe for concurrent use, but giving each writer
// thread its own shard avoids cache-line ping-pong entirely.
type HistShard struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds recorded

	// _pad keeps adjacent shards off each other's trailing cache line;
	// the large counts array already separates their hot heads.
	_pad [64]byte //nolint:unused
}

// Record adds one observation. Negative durations count as zero.
func (s *HistShard) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	s.counts[bucketIndex(v)].Add(1)
	s.sum.Add(v)
}

// RecordN adds n observations of d each, in two atomic updates. Batched
// writers use it to record amortized per-item latency (total/n, n times)
// without paying n Record calls.
func (s *HistShard) RecordN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	s.counts[bucketIndex(v)].Add(uint64(n))
	s.sum.Add(v * uint64(n))
}

// Histogram is a set of shards merged at read time.
type Histogram struct {
	shards []*HistShard
}

// NewHistogram creates a histogram with the given number of shards
// (minimum 1). Histograms are normally created via Registry.Histogram.
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{shards: make([]*HistShard, shards)}
	for i := range h.shards {
		h.shards[i] = &HistShard{}
	}
	return h
}

// Shard returns shard i (mod the shard count), for a writer to keep.
func (h *Histogram) Shard(i int) *HistShard {
	if i < 0 {
		i = -i
	}
	return h.shards[i%len(h.shards)]
}

// Record adds one observation to shard 0 — convenience for single-writer
// histograms.
func (h *Histogram) Record(d time.Duration) { h.shards[0].Record(d) }

// HistSnapshot is a merged point-in-time view of a histogram.
type HistSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64 // total observations
	SumNs  uint64 // total nanoseconds
}

// Snapshot merges all shards. Concurrent records may straddle the merge;
// each observation is either fully in or fully out of the count column,
// and sum/count drift by at most the in-flight records.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for _, sh := range h.shards {
		for i := range sh.counts {
			c := sh.counts[i].Load()
			s.Counts[i] += c
			s.Count += c
		}
		s.SumNs += sh.sum.Load()
	}
	return s
}

// Quantile returns the q-th quantile (q in [0, 1]) as a duration,
// interpolating linearly inside the landing bucket.
//
// Edge cases are pinned (see TestQuantileEdgeCases):
//   - An empty histogram returns 0 for every q.
//   - A single observation v returns the upper bound of v's bucket for
//     every q — exact for v < 8ns (unit buckets), and at most 12.5%
//     above v otherwise (the bucket's relative width). Interpolation
//     cannot refine a one-sample bucket, and the conservative edge is
//     the honest one for a latency report.
//   - q outside [0, 1] is clamped, so Quantile(-1) == Quantile(0) and
//     Quantile(2) == Quantile(1).
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q*float64(s.Count-1)) + 1
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			lower, upper := bucketBounds(i)
			// Position of the target inside this bucket, in (0, 1].
			frac := float64(target-(cum-c)) / float64(c)
			return time.Duration(float64(lower) + frac*float64(upper-lower))
		}
	}
	return 0 // unreachable: cum == Count >= target
}

// Mean returns the average observation.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}
