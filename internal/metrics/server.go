package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry over HTTP: Prometheus text at /metrics and
// the standard Go profiler at /debug/pprof/. It binds eagerly so ":0"
// callers can learn the chosen port from Addr.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (e.g. ":8080", "127.0.0.1:0") and serves
// the registry until Close. The error covers the bind only; serve-loop
// errors after a successful bind end the goroutine silently, as they
// only occur at shutdown.
func NewServer(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "zmapgo observability endpoint\n/metrics\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (resolving ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
