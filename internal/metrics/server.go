package metrics

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server exposes a registry over HTTP: Prometheus text at /metrics, a
// readiness probe at /healthz, the scan flight recorder at /debug/trace
// (when attached), and the standard Go profiler at /debug/pprof/. It
// binds eagerly so ":0" callers can learn the chosen port from Addr.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	ready   atomic.Bool
	traceFn atomic.Value // func(io.Writer, string) error
}

// NewServer listens on addr (e.g. ":8080", "127.0.0.1:0") and serves
// the registry until Close or Shutdown. The error covers the bind only;
// serve-loop errors after a successful bind end the goroutine silently,
// as they only occur at shutdown. The server starts ready.
func NewServer(addr string, reg *Registry) (*Server, error) {
	s := &Server{}
	s.ready.Store(true)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() {
			fmt.Fprint(w, "ok\n")
			return
		}
		http.Error(w, "draining", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		fn, _ := s.traceFn.Load().(func(io.Writer, string) error)
		if fn == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "jsonl"
		}
		switch format {
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
		default:
			http.Error(w, "format must be jsonl or chrome", http.StatusBadRequest)
			return
		}
		_ = fn(w, format)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "zmapgo observability endpoint\n/metrics\n/healthz\n/debug/trace\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// SetTraceSource attaches the flight recorder: fn writes a dump in the
// given format ("jsonl" or "chrome") and is invoked per /debug/trace
// request. Safe to call at any time, including nil to detach.
func (s *Server) SetTraceSource(fn func(w io.Writer, format string) error) {
	s.traceFn.Store(fn)
}

// SetReady flips the /healthz verdict. The scan engine marks the server
// unready before draining so orchestrators stop routing to it.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Addr returns the bound address (resolving ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown marks the server unready and drains it gracefully: the
// listener closes at once, in-flight requests (a scrape mid-page) get
// until ctx to finish. Scanner teardown uses this so the listener no
// longer leaks past scan end.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	return s.srv.Shutdown(ctx)
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	s.ready.Store(false)
	return s.srv.Close()
}
