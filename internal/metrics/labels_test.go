package metrics

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// parseExposition is a line-level reader for the text exposition format,
// good enough to round-trip what WritePrometheus emits: it returns
// series → value, with label values unescaped.
func parseExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, labels := "", "", ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces: %q", line)
			}
			labels = line[i+1 : j]
			rest = strings.TrimSpace(line[j+1:])
		} else {
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("no value on line %q", line)
			}
			name, rest = line[:sp], strings.TrimSpace(line[sp+1:])
		}
		key := name
		if labels != "" {
			key = name + "|" + canonLabels(t, labels)
		}
		out[key] = rest
	}
	return out
}

// canonLabels parses `k="v",k2="v2"` honoring escapes, and re-renders
// the pairs with unescaped values as k=v;k2=v2.
func canonLabels(t *testing.T, s string) string {
	t.Helper()
	var parts []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			t.Fatalf("bad label block tail %q", s)
		}
		key := s[:eq]
		var val strings.Builder
		i := eq + 2
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '"', '\\':
					val.WriteByte(s[i])
				default:
					t.Fatalf("unknown escape \\%c in %q", s[i], s)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) || s[i] != '"' {
			t.Fatalf("unterminated label value in %q", s)
		}
		parts = append(parts, key+"="+val.String())
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return strings.Join(parts, ";")
}

// TestLabelEscapingRoundTrip pins the satellite fix: label values
// containing backslash, double quote, and newline survive exposition
// and parse back to the original bytes.
func TestLabelEscapingRoundTrip(t *testing.T) {
	nasty := []string{
		`plain`,
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all\three" of\nthem` + "\n",
	}
	r := NewRegistry()
	for i, v := range nasty {
		r.CounterWith("zmapgo_test_total", "labeled counter", "class", v).Add(uint64(i + 1))
	}
	r.GaugeWith("zmapgo_test_gauge", "labeled gauge", "kind", nasty[4]).Set(2.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "\r") {
			t.Fatalf("raw control char leaked into exposition: %q", line)
		}
	}
	series := parseExposition(t, text)
	for i, v := range nasty {
		key := "zmapgo_test_total|class=" + v
		if got := series[key]; got != fmt.Sprint(i+1) {
			t.Errorf("series %q = %q, want %d (have %v)", key, got, i+1, series)
		}
	}
	if got := series["zmapgo_test_gauge|kind="+nasty[4]]; got != "2.5" {
		t.Errorf("gauge series lost: %v", series)
	}
	// One HELP/TYPE block per bare name, not per series.
	if n := strings.Count(text, "# TYPE zmapgo_test_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times, want once:\n%s", n, text)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		`a\b`:         `a\\b`,
		`a"b`:         `a\"b`,
		"a\nb":        `a\nb`,
		`a\"b` + "\n": `a\\\"b\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestQuantileEdgeCases pins the documented Quantile contract for the
// empty and single-observation histograms, and q clamping.
func TestQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		obs  []time.Duration
		q    float64
		want time.Duration
	}{
		{"empty q0", nil, 0, 0},
		{"empty q0.5", nil, 0.5, 0},
		{"empty q1", nil, 1, 0},
		{"empty q>1 clamped", nil, 2, 0},
		// Unit buckets (v < 8ns) are exact for a single observation.
		{"single 0ns", []time.Duration{0}, 0.5, 0},
		{"single 5ns q0", []time.Duration{5}, 0, 5},
		{"single 5ns q1", []time.Duration{5}, 1, 5},
		// Larger single observations report the landing bucket's upper
		// bound for every q: 100ns lands in [96, 103].
		{"single 100ns q0", []time.Duration{100}, 0, 103},
		{"single 100ns q0.5", []time.Duration{100}, 0.5, 103},
		{"single 100ns q1", []time.Duration{100}, 1, 103},
		{"single 100ns q<0 clamped", []time.Duration{100}, -1, 103},
		{"single 100ns q>1 clamped", []time.Duration{100}, 7, 103},
		// Negative durations count as zero observations of 0ns.
		{"single negative", []time.Duration{-50}, 1, 0},
	}
	for _, tc := range cases {
		h := NewHistogram(1)
		for _, d := range tc.obs {
			h.Record(d)
		}
		s := h.Snapshot()
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}

	// Clamping equivalences on a multi-observation histogram.
	h := NewHistogram(1)
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Quantile(-3) != s.Quantile(0) {
		t.Error("q<0 not clamped to 0")
	}
	if s.Quantile(42) != s.Quantile(1) {
		t.Error("q>1 not clamped to 1")
	}
}

// TestServerHealthzAndShutdown pins the satellite endpoint: /healthz is
// ready until Shutdown, which also actually releases the listener.
func TestServerHealthzAndShutdown(t *testing.T) {
	r := NewRegistry()
	s, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get("/debug/trace"); code != 404 {
		t.Fatalf("/debug/trace with no recorder = %d, want 404", code)
	}
	s.SetTraceSource(func(w io.Writer, format string) error {
		fmt.Fprintf(w, `{"type":"meta","format":%q}`+"\n", format)
		return nil
	})
	if code, body := get("/debug/trace"); code != 200 || !strings.Contains(body, `"jsonl"`) {
		t.Fatalf("/debug/trace = %d %q", code, body)
	}
	if code, body := get("/debug/trace?format=chrome"); code != 200 || !strings.Contains(body, `"chrome"`) {
		t.Fatalf("/debug/trace?format=chrome = %d %q", code, body)
	}
	if code, _ := get("/debug/trace?format=bogus"); code != 400 {
		t.Fatalf("bad format accepted: %d", code)
	}

	s.SetReady(false)
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unready /healthz = %d, want 503", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
