package metrics

import (
	"testing"
	"time"
)

// The send loop records once per packet, so a record must cost less
// than ~50 ns and never allocate — otherwise the instrumentation would
// distort the throughput it exists to measure. Run with:
//
//	go test -bench . -benchmem ./internal/metrics
func BenchmarkHistShardRecord(b *testing.B) {
	h := NewHistogram(1)
	sh := h.Shard(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Record(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkHistShardRecordParallel(b *testing.B) {
	h := NewHistogram(16)
	var next int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		sh := h.Shard(int(next))
		next++
		d := 37 * time.Microsecond
		for pb.Next() {
			sh.Record(d)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSnapshotQuantile(b *testing.B) {
	h := NewHistogram(8)
	for i := 0; i < 100000; i++ {
		h.Shard(i).Record(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		s.Quantile(0.99)
	}
}
