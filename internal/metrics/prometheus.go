package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name. Histograms emit
// cumulative buckets at octave boundaries — enough resolution for a
// scrape-side quantile while keeping pages small — plus _sum and _count
// in seconds, per Prometheus convention for latency histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	prevName := ""
	for _, e := range r.sortedSnapshot() {
		// Labeled series of one metric share a single HELP/TYPE block.
		if e.name != prevName {
			prevName = e.name
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, sanitizeHelp(e.help)); err != nil {
					return err
				}
			}
			var typ string
			switch e.kind {
			case kindCounter, kindCounterFunc:
				typ = "counter"
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
				return err
			}
		}
		series := e.name + e.labels
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", series, e.counter.Value())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", series, e.cfn())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", series, formatFloat(e.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", series, formatFloat(e.gfn()))
		case kindHistogram:
			err = writeHistogram(w, e.name, e.hist.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram emits cumulative le buckets at octave-final boundaries
// between the first and last non-empty buckets. The TYPE line is the
// caller's job (WritePrometheus groups it with HELP).
func writeHistogram(w io.Writer, name string, s HistSnapshot) error {
	first, last := -1, -1
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	if first >= 0 {
		var cum uint64
		emitted := uint64(0)
		for i := 0; i <= last; i++ {
			cum += s.Counts[i]
			if i < first {
				continue
			}
			// Emit at octave-final sub-buckets (and at the very last
			// non-empty bucket) so the le series stays short.
			octaveEnd := i >= subCount && (i-subCount)%subCount == subCount-1
			if i < subCount {
				octaveEnd = i == subCount-1
			}
			if !octaveEnd && i != last {
				continue
			}
			if cum == emitted && i != last {
				continue // no new observations since the previous le
			}
			emitted = cum
			_, upper := bucketBounds(i)
			le := formatFloat(float64(upper+1) / 1e9)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, s.Count, name, formatFloat(float64(s.SumNs)/1e9), name, s.Count)
	return err
}
