// Package metrics is the scanner's instrumentation substrate: a
// hot-path-safe registry of counters, gauges, and log-bucketed latency
// histograms. §5 of "Ten Years of ZMap" makes the four output streams
// (data, logs, status updates, metadata) a first-class design principle;
// this package feeds two of them — the 1 Hz status stream gets histogram
// quantiles, and the metadata document gets final counter values — and
// adds a fifth, pull-based view: Prometheus text exposition plus pprof
// over HTTP (see Server).
//
// Design constraints, in order:
//
//  1. Recording must be safe from any goroutine and effectively free: a
//     counter increment is one atomic add; a histogram record is two
//     atomic adds on a per-thread shard (no locks, no allocation, no
//     time formatting). The send loop records per packet at millions of
//     packets per second, so anything slower would show up in the very
//     throughput numbers it measures.
//  2. Reading (snapshot, quantile, exposition) may be arbitrarily slow;
//     it happens at 1 Hz or on scrape, never on the hot path.
//  3. No external dependencies: exposition is hand-rolled Prometheus
//     text format (version 0.0.4), which every Prometheus scraper since
//     2014 accepts.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use, but counters are normally created through Registry.Counter so
// they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// entry is one registered metric series: a bare name plus a pre-rendered
// (already escaped) label block, empty for unlabeled metrics.
type entry struct {
	name   string
	labels string // `{k="v",...}` or ""
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	cfn     func() uint64
	gfn     func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them as Prometheus text.
// All methods are safe for concurrent use. Registration is get-or-create:
// asking for an existing name of the same kind returns the existing
// metric (so two scans may share one registry); re-registering a func
// metric replaces its callback (the latest scan wins); asking for an
// existing name with a different kind panics, since that is always a
// programming error.
type Registry struct {
	mu      sync.Mutex
	order   []*entry
	entries map[string]*entry     // keyed by name+labels (one per series)
	kinds   map[string]metricKind // keyed by bare name (TYPE consistency)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		kinds:   make(map[string]metricKind),
	}
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and line feed become
// `\\`, `\"`, and `\n`.
func EscapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels builds the `{k="v",...}` block from alternating
// key/value pairs, escaping each value. Odd trailing keys are dropped.
func renderLabels(pairs []string) string {
	if len(pairs) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for the (name, labels) series, creating it
// with the given kind if absent. Panics if the bare name is already
// registered with a different kind.
func (r *Registry) lookup(name, labels, help string, kind metricKind) (*entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("metrics: %q re-registered with a different kind", name))
	}
	r.kinds[name] = kind
	series := name + labels
	if e, ok := r.entries[series]; ok {
		return e, true
	}
	e := &entry{name: name, labels: labels, help: help, kind: kind}
	r.entries[series] = e
	r.order = append(r.order, e)
	return e, false
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help)
}

// CounterWith returns the counter series for name plus alternating
// label key/value pairs (values are escaped at registration), creating
// it if needed.
func (r *Registry) CounterWith(name, help string, labelPairs ...string) *Counter {
	e, existed := r.lookup(name, renderLabels(labelPairs), help, kindCounter)
	if !existed {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help)
}

// GaugeWith returns the gauge series for name plus alternating label
// key/value pairs, creating it if needed.
func (r *Registry) GaugeWith(name, help string, labelPairs ...string) *Gauge {
	e, existed := r.lookup(name, renderLabels(labelPairs), help, kindGauge)
	if !existed {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// CounterFunc registers a read-only counter whose value is fetched from
// fn at exposition time. Use it to expose atomics that already exist
// (e.g. monitor.Counters) without double bookkeeping on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.CounterFuncWith(name, help, fn)
}

// CounterFuncWith is CounterFunc for a labeled series.
func (r *Registry) CounterFuncWith(name, help string, fn func() uint64, labelPairs ...string) {
	e, _ := r.lookup(name, renderLabels(labelPairs), help, kindCounterFunc)
	r.mu.Lock()
	e.cfn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a read-only gauge computed by fn at exposition.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	e, _ := r.lookup(name, "", help, kindGaugeFunc)
	r.mu.Lock()
	e.gfn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with the given
// shard count if needed. Shards decouple writer threads: give each
// sender thread its own shard index and records never contend.
// Histograms do not take labels: the le series would collide.
func (r *Registry) Histogram(name, help string, shards int) *Histogram {
	e, existed := r.lookup(name, "", help, kindHistogram)
	if !existed {
		e.hist = NewHistogram(shards)
	}
	return e.hist
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.name
	}
	return out
}

// sortedSnapshot copies the entry list under the lock so exposition can
// run without holding it (func metrics may themselves take locks).
func (r *Registry) sortedSnapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, len(r.order))
	copy(out, r.order)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// sanitizeHelp keeps HELP lines single-line per the text format.
func sanitizeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
