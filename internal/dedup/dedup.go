// Package dedup filters repeated scan responses.
//
// Hosts frequently answer a single probe more than once — retransmitted
// SYN-ACKs, broken stacks, and "blowback" hosts that send tens of
// thousands of responses (Goldblatt et al.). ZMap has used two
// deduplication designs, both implemented here:
//
//   - Bitmap: a paged 2^32-bit map keyed by source IP. It guarantees zero
//     duplicates but costs 512 MB when fully touched and cannot extend to
//     the 48-bit (IP, port) multiport space (that would be 35 TB), which
//     is why it was retired (§4.1).
//
//   - Window: a sliding window of the last n (IP, port) responses — the
//     modern design. The C implementation indexes the window with a Judy
//     array; the property Figure 5 depends on is O(1) membership with
//     memory proportional to occupancy, which a hash index provides
//     identically, so that is what backs Window here. A ring buffer
//     provides FIFO expiry.
//
// Deduplicators are not safe for concurrent use. ZMap dedupes on a
// single receive thread; the sharded receive path keeps that invariant
// per shard by giving each worker its own Window over a disjoint slice
// of the key space — ShardOf decides which worker owns a key, so Seen
// needs no mutex.
package dedup

// Deduper records (IP, port) response keys and reports repeats.
type Deduper interface {
	// Seen records the key and reports whether it was already present.
	Seen(ip uint32, port uint16) bool
	// Len returns the number of keys currently tracked.
	Len() int
	// MemoryBytes estimates current memory consumption.
	MemoryBytes() uint64
}

// DefaultWindowSize is ZMap's default sliding-window size (10^6), which
// Figure 5 shows eliminates nearly all duplicates at 1 Gbps scan rates.
const DefaultWindowSize = 1_000_000

// pageBits is the size of one bitmap page (2^16 bits = 8 KB), paged so an
// untouched address space costs nothing.
const pageBits = 16

// Bitmap is the original single-port deduplicator: one bit per IPv4
// address, allocated in pages on first touch. Ports are ignored.
type Bitmap struct {
	pages     [1 << (32 - pageBits)][]uint64
	count     int
	allocated int
}

// NewBitmap returns an empty paged bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Seen implements Deduper. The port argument is ignored: the bitmap
// design predates multiport scanning, which is exactly its limitation.
func (b *Bitmap) Seen(ip uint32, _ uint16) bool {
	page := ip >> pageBits
	if b.pages[page] == nil {
		b.pages[page] = make([]uint64, (1<<pageBits)/64)
		b.allocated++
	}
	offset := ip & (1<<pageBits - 1)
	word, bit := offset/64, offset%64
	mask := uint64(1) << bit
	if b.pages[page][word]&mask != 0 {
		return true
	}
	b.pages[page][word] |= mask
	b.count++
	return false
}

// Len implements Deduper.
func (b *Bitmap) Len() int { return b.count }

// MemoryBytes implements Deduper: 8 KB per allocated page.
func (b *Bitmap) MemoryBytes() uint64 {
	return uint64(b.allocated) * (1 << pageBits) / 8
}

// FullBitmapBytes returns the memory a non-paged bitmap over the given key
// width would need; FullBitmapBytes(32) is the 512 MB figure and
// FullBitmapBytes(48) the 35 TB figure from §4.1.
func FullBitmapBytes(bits uint) uint64 { return (uint64(1) << bits) / 8 }

// Window is the modern sliding-window deduplicator over 48-bit (IP, port)
// keys: a hash membership index (the Judy-array equivalent) plus a ring
// buffer that evicts the oldest key once the window is full.
type Window struct {
	size  int
	ring  []uint64 // keys in insertion order
	head  int      // next slot to overwrite
	used  int
	index map[uint64]struct{}
}

// NewWindow returns a sliding-window deduplicator remembering the last
// size responses. Size must be positive.
func NewWindow(size int) *Window {
	if size <= 0 {
		panic("dedup: window size must be positive")
	}
	return &Window{
		size:  size,
		ring:  make([]uint64, size),
		index: make(map[uint64]struct{}, size),
	}
}

func key(ip uint32, port uint16) uint64 { return uint64(ip)<<16 | uint64(port) }

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer, so
// adjacent (IP, port) keys — scans walk dense ranges — spread uniformly
// across shards instead of striping.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf maps a response flow to its owning shard: mix64 over the same
// packed 48-bit key Window stores, masked to the shard count (mask must
// be 2^n - 1). The mapping depends only on the key, never on shard
// count history, so checkpointed keys re-partition cleanly when a scan
// resumes with a different number of receive workers.
func ShardOf(ip uint32, port uint16, mask uint32) uint32 {
	return uint32(mix64(key(ip, port))) & mask
}

// Seen implements Deduper over the 48-bit key space.
func (w *Window) Seen(ip uint32, port uint16) bool {
	k := key(ip, port)
	if _, dup := w.index[k]; dup {
		return true
	}
	if w.used == w.size {
		delete(w.index, w.ring[w.head])
	} else {
		w.used++
	}
	w.ring[w.head] = k
	w.head = (w.head + 1) % w.size
	w.index[k] = struct{}{}
	return false
}

// Len implements Deduper.
func (w *Window) Len() int { return w.used }

// Size returns the configured window capacity.
func (w *Window) Size() int { return w.size }

// Keys returns the window contents in insertion order, oldest first —
// the serializable state a checkpoint needs to carry dedup across a
// process restart. Replaying the returned slice through Seen on an empty
// window of the same size reproduces the exact membership and eviction
// order.
func (w *Window) Keys() []uint64 {
	out := make([]uint64, 0, w.used)
	start := w.head - w.used
	for i := 0; i < w.used; i++ {
		out = append(out, w.ring[((start+i)%w.size+w.size)%w.size])
	}
	return out
}

// Restore replays previously captured keys (oldest first) into the
// window, as if each had been Seen. Keys beyond the window size evict
// the oldest, matching live behavior, so restoring into a smaller window
// keeps the most recent keys.
func (w *Window) Restore(keys []uint64) {
	for _, k := range keys {
		w.Seen(uint32(k>>16), uint16(k&0xFFFF))
	}
}

// MemoryBytes implements Deduper: the ring plus an estimate of the hash
// index (Go maps cost roughly 48 bytes per uint64 key entry including
// bucket overhead at typical load factors).
func (w *Window) MemoryBytes() uint64 {
	const perEntry = 48
	return uint64(len(w.ring))*8 + uint64(len(w.index))*perEntry
}

// KeyedWindow is the sliding-window deduplicator generalized over any
// comparable key type. Window specializes it to packed 48-bit (IP, port)
// keys; the IPv6 hitlist scanner uses [18]byte (address, port) keys.
type KeyedWindow[K comparable] struct {
	size  int
	ring  []K
	head  int
	used  int
	index map[K]struct{}
}

// NewKeyedWindow returns a window remembering the last size keys.
func NewKeyedWindow[K comparable](size int) *KeyedWindow[K] {
	if size <= 0 {
		panic("dedup: window size must be positive")
	}
	return &KeyedWindow[K]{
		size:  size,
		ring:  make([]K, size),
		index: make(map[K]struct{}, size),
	}
}

// Seen records k and reports whether it was already in the window.
func (w *KeyedWindow[K]) Seen(k K) bool {
	if _, dup := w.index[k]; dup {
		return true
	}
	if w.used == w.size {
		delete(w.index, w.ring[w.head])
	} else {
		w.used++
	}
	w.ring[w.head] = k
	w.head = (w.head + 1) % w.size
	w.index[k] = struct{}{}
	return false
}

// Len returns the number of keys currently tracked.
func (w *KeyedWindow[K]) Len() int { return w.used }
