package dedup

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasic(t *testing.T) {
	b := NewBitmap()
	if b.Seen(1234, 80) {
		t.Error("fresh IP reported seen")
	}
	if !b.Seen(1234, 80) {
		t.Error("repeat IP not reported")
	}
	// The bitmap ignores ports: same IP different port is still a dup.
	if !b.Seen(1234, 443) {
		t.Error("bitmap should ignore ports (single-port design)")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBitmapExtremes(t *testing.T) {
	b := NewBitmap()
	for _, ip := range []uint32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF} {
		if b.Seen(ip, 0) {
			t.Errorf("ip %d: fresh reported seen", ip)
		}
		if !b.Seen(ip, 0) {
			t.Errorf("ip %d: repeat missed", ip)
		}
	}
}

func TestBitmapPagedMemory(t *testing.T) {
	b := NewBitmap()
	if b.MemoryBytes() != 0 {
		t.Error("untouched bitmap should use no page memory")
	}
	b.Seen(0, 0)
	b.Seen(1, 0) // same page
	if b.MemoryBytes() != 8192 {
		t.Errorf("one page = %d bytes, want 8192", b.MemoryBytes())
	}
	b.Seen(1<<31, 0) // distant page
	if b.MemoryBytes() != 16384 {
		t.Errorf("two pages = %d bytes, want 16384", b.MemoryBytes())
	}
}

func TestFullBitmapBytesPaperFigures(t *testing.T) {
	// §4.1: 2^32 bits = 512 MB; the 48-bit space would need 35 TB.
	if got := FullBitmapBytes(32); got != 512<<20 {
		t.Errorf("FullBitmapBytes(32) = %d, want 512 MB", got)
	}
	if got := FullBitmapBytes(48) / (1 << 40); got != 32 { // 32 TiB ~ "35 TB" decimal
		t.Errorf("FullBitmapBytes(48) = %d TiB, want 32", got)
	}
	if got := float64(FullBitmapBytes(48)) / 1e12; got < 35 || got > 35.3 {
		t.Errorf("FullBitmapBytes(48) = %.1f TB decimal, want ~35.2", got)
	}
}

func TestWindowBasic(t *testing.T) {
	w := NewWindow(10)
	if w.Seen(1, 80) {
		t.Error("fresh key reported seen")
	}
	if !w.Seen(1, 80) {
		t.Error("repeat key missed")
	}
	if w.Seen(1, 443) {
		t.Error("same IP different port should be fresh (multiport keys)")
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	w.Seen(1, 1)
	w.Seen(2, 1)
	w.Seen(3, 1)
	w.Seen(4, 1) // evicts (1,1)
	if w.Seen(1, 1) {
		t.Error("evicted key still reported seen")
	}
	// (1,1) reinserted; (2,1) now evicted.
	if w.Seen(2, 1) {
		t.Error("second-oldest key should have been evicted")
	}
	if !w.Seen(4, 1) {
		t.Error("recent key lost")
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
}

func TestWindowNoFalseNegativesWithinWindow(t *testing.T) {
	// Invariant: a key is always detected as duplicate if fewer than
	// size distinct keys arrived since its insertion.
	w := NewWindow(100)
	for i := uint32(0); i < 100; i++ {
		w.Seen(i, uint16(i))
	}
	for i := uint32(0); i < 100; i++ {
		if !w.Seen(i, uint16(i)) {
			t.Fatalf("key %d within window not detected", i)
		}
	}
}

func TestWindowDuplicateDoesNotEvict(t *testing.T) {
	// Re-seeing an in-window key must not consume a slot.
	w := NewWindow(2)
	w.Seen(1, 1)
	w.Seen(2, 2)
	for i := 0; i < 10; i++ {
		if !w.Seen(1, 1) || !w.Seen(2, 2) {
			t.Fatal("repeated in-window keys must stay duplicates")
		}
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d, want 2", w.Len())
	}
}

func TestWindowMatchesNaiveModel(t *testing.T) {
	// Property: the window behaves exactly like a naive FIFO-set model
	// under random workloads.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(20) + 1
		w := NewWindow(size)
		var fifo []uint64
		inSet := make(map[uint64]bool)
		for op := 0; op < 500; op++ {
			ip := uint32(rng.Intn(30))
			port := uint16(rng.Intn(3))
			k := uint64(ip)<<16 | uint64(port)
			want := inSet[k]
			got := w.Seen(ip, port)
			if got != want {
				return false
			}
			if !want {
				if len(fifo) == size {
					delete(inSet, fifo[0])
					fifo = fifo[1:]
				}
				fifo = append(fifo, k)
				inSet[k] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMemoryProportional(t *testing.T) {
	small := NewWindow(100)
	big := NewWindow(DefaultWindowSize)
	for i := uint32(0); i < 100; i++ {
		small.Seen(i*2654435761, uint16(i))
	}
	for i := uint32(0); i < 100_000; i++ {
		big.Seen(i*2654435761, uint16(i))
	}
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Error("memory not proportional to occupancy")
	}
	// The window must stay far below the full 48-bit bitmap cost.
	if big.MemoryBytes() >= FullBitmapBytes(48)/1000 {
		t.Error("window memory not dramatically below 48-bit bitmap")
	}
}

func TestWindowIndexReclamation(t *testing.T) {
	// Filling and fully cycling the window must not grow the index: the
	// memory-proportional-to-occupancy property (the Judy-array role).
	w := NewWindow(10)
	for i := uint32(0); i < 10; i++ {
		w.Seen(i<<20, 1)
	}
	memAtFull := w.MemoryBytes()
	for i := uint32(100); i < 10000; i++ {
		w.Seen(i<<20, 1)
	}
	if w.MemoryBytes() != memAtFull {
		t.Errorf("memory grew from %d to %d across eviction churn", memAtFull, w.MemoryBytes())
	}
	if len(w.index) != 10 {
		t.Errorf("index holds %d keys, want 10", len(w.index))
	}
}

func TestWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewWindow(0)
}

func TestWindowSize1(t *testing.T) {
	w := NewWindow(1)
	if w.Seen(1, 1) {
		t.Error("fresh seen")
	}
	if !w.Seen(1, 1) {
		t.Error("immediate repeat missed")
	}
	w.Seen(2, 2)
	if w.Seen(1, 1) {
		t.Error("evicted key remembered by size-1 window")
	}
}

func TestDeduperInterfaces(t *testing.T) {
	var _ Deduper = NewBitmap()
	var _ Deduper = NewWindow(1)
}

func BenchmarkBitmapSeen(b *testing.B) {
	m := NewBitmap()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = m.Seen(uint32(i)*2654435761, 80)
	}
	benchBool = sink
}

func BenchmarkWindowSeenFresh(b *testing.B) {
	w := NewWindow(DefaultWindowSize)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = w.Seen(uint32(i)*2654435761, uint16(i))
	}
	benchBool = sink
}

func BenchmarkWindowSeenDuplicate(b *testing.B) {
	w := NewWindow(DefaultWindowSize)
	w.Seen(42, 80)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = w.Seen(42, 80)
	}
	benchBool = sink
}

var benchBool bool

func TestKeyedWindowV6StyleKeys(t *testing.T) {
	w := NewKeyedWindow[[18]byte](2)
	k := func(b byte) [18]byte { var a [18]byte; a[0] = b; return a }
	if w.Seen(k(1)) {
		t.Error("fresh key seen")
	}
	if !w.Seen(k(1)) {
		t.Error("repeat missed")
	}
	w.Seen(k(2))
	w.Seen(k(3)) // evicts k(1)
	if w.Seen(k(1)) {
		t.Error("evicted key remembered")
	}
	if w.Len() != 2 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestKeyedWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewKeyedWindow[int](0)
}

func TestWindowKeysOldestFirst(t *testing.T) {
	w := NewWindow(4)
	for i := uint32(1); i <= 3; i++ {
		w.Seen(i, 80)
	}
	keys := w.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys len = %d", len(keys))
	}
	for i, k := range keys {
		if uint32(k>>16) != uint32(i+1) {
			t.Errorf("key %d = ip %d, want oldest-first order", i, k>>16)
		}
	}
}

func TestWindowKeysAfterWraparound(t *testing.T) {
	// Fill past capacity so the ring wraps; Keys must return exactly the
	// surviving window, oldest first.
	w := NewWindow(4)
	for i := uint32(1); i <= 10; i++ {
		w.Seen(i, 80)
	}
	keys := w.Keys()
	if len(keys) != 4 {
		t.Fatalf("keys len = %d, want 4", len(keys))
	}
	for i, k := range keys {
		if want := uint32(7 + i); uint32(k>>16) != want {
			t.Errorf("key %d = ip %d, want %d", i, k>>16, want)
		}
	}
}

func TestWindowRestoreReproducesStateExactly(t *testing.T) {
	// The checkpoint contract: replaying Keys() into a fresh window of
	// the same size reproduces both membership and eviction order, so a
	// resumed scan dedupes exactly as the original would have.
	orig := NewWindow(8)
	for i := uint32(0); i < 20; i++ {
		orig.Seen(1000+i, uint16(i%3))
	}
	restored := NewWindow(8)
	restored.Restore(orig.Keys())
	if restored.Len() != orig.Len() {
		t.Fatalf("restored len %d, orig %d", restored.Len(), orig.Len())
	}
	// Same membership.
	for _, k := range orig.Keys() {
		if !restored.Seen(uint32(k>>16), uint16(k&0xFFFF)) {
			t.Errorf("restored window missing %x", k)
		}
	}
	// Same eviction order from here on: drive both with identical new
	// keys and compare verdicts (restored was just mutated by the
	// membership probes above, so rebuild it first).
	restored = NewWindow(8)
	restored.Restore(orig.Keys())
	for i := uint32(0); i < 30; i++ {
		a := orig.Seen(2000+i*7, 443)
		b := restored.Seen(2000+i*7, 443)
		if a != b {
			t.Fatalf("divergence at step %d: orig %v restored %v", i, a, b)
		}
	}
}

func TestWindowRestoreIntoSmallerWindowKeepsNewest(t *testing.T) {
	orig := NewWindow(8)
	for i := uint32(1); i <= 8; i++ {
		orig.Seen(i, 80)
	}
	small := NewWindow(3)
	small.Restore(orig.Keys())
	if small.Len() != 3 {
		t.Fatalf("len = %d", small.Len())
	}
	for i := uint32(6); i <= 8; i++ {
		if !small.Seen(i, 80) {
			t.Errorf("newest key ip=%d lost in smaller restore", i)
		}
	}
}
