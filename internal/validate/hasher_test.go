package validate

import (
	"math/rand"
	"testing"
)

func TestHasherMatchesValidator(t *testing.T) {
	v, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	h := v.NewHasher()
	rng := rand.New(rand.NewSource(4))
	tuples := [][3]uint64{
		{0, 0, 0},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFF},
		{0x0A000001, 0x01020304, 443},
	}
	for i := 0; i < 4096; i++ {
		tuples = append(tuples, [3]uint64{
			uint64(rng.Uint32()), uint64(rng.Uint32()), uint64(rng.Uint32() & 0xFFFF),
		})
	}
	for _, tp := range tuples {
		src, dst, port := uint32(tp[0]), uint32(tp[1]), uint16(tp[2])
		want := v.Compute(src, dst, port)
		if got := h.Compute(src, dst, port); got != want {
			t.Fatalf("Compute(%#x,%#x,%d): hasher %#x != validator %#x", src, dst, port, got, want)
		}
	}
	// A hasher is reusable: repeating an earlier tuple after many other
	// computations must still agree.
	if got, want := h.Compute(0x0A000001, 0x01020304, 443), v.Compute(0x0A000001, 0x01020304, 443); got != want {
		t.Fatalf("reuse: hasher %#x != validator %#x", got, want)
	}
}

func TestHasherSourcePortMatchesValidator(t *testing.T) {
	v, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	h := v.NewHasher()
	for _, count := range []uint16{0, 1, 2, 256, 65535} {
		for dport := uint16(1); dport < 100; dport++ {
			want := v.SourcePort(32768, count, 0x01020304, dport)
			if got := h.SourcePort(32768, count, 0x01020304, dport); got != want {
				t.Fatalf("SourcePort(count=%d, dport=%d): hasher %d != validator %d", count, dport, got, want)
			}
		}
	}
}

func TestHasherInstrumented(t *testing.T) {
	v, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	var n countingCounter
	v.Instrument(&n)
	h := v.NewHasher()
	h.Compute(1, 2, 3)
	h.SourcePort(32768, 256, 2, 3)
	h.SourcePort(32768, 1, 2, 3) // single-port range: no computation
	if n != 2 {
		t.Fatalf("compute counter = %d, want 2", n)
	}
}

type countingCounter uint64

func (c *countingCounter) Add(n uint64) { *c += countingCounter(n) }

// TestHasherZeroAllocs pins the property the batched send loop needs:
// deriving validation words costs no heap allocations.
func TestHasherZeroAllocs(t *testing.T) {
	v, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	h := v.NewHasher()
	var sink uint64
	dst := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		dst++
		sink += h.Compute(0x0A000001, dst, 443)
		sink += uint64(h.SourcePort(32768, 256, dst, 443))
	})
	if allocs != 0 {
		t.Fatalf("Hasher.Compute allocates %.1f objects per call, want 0 (sink %d)", allocs, sink)
	}
}

func BenchmarkValidatorCompute(b *testing.B) {
	v, _ := NewRandom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Compute(0x0A000001, uint32(i), 443)
	}
}

func BenchmarkHasherCompute(b *testing.B) {
	v, _ := NewRandom()
	h := v.NewHasher()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Compute(0x0A000001, uint32(i), 443)
	}
}
