// Package validate implements ZMap's stateless response validation.
//
// ZMap keeps no per-probe state, so it must decide whether an inbound
// packet is a genuine response to a probe it sent — rather than backscatter
// or an attacker guessing — using only the packet itself. It does so by
// deriving the mutable fields of each probe (TCP sequence number, ICMP id,
// UDP source port entropy) from a keyed MAC over the flow tuple. A
// response echoes these fields (a SYN-ACK acknowledges seq+1), so the
// receiver can recompute the MAC and compare.
//
// The C implementation uses AES-128 with a per-scan key; we use
// HMAC-SHA256 truncated to 8 bytes, which provides the same unforgeability
// property with stdlib crypto.
package validate

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
)

// KeySize is the size of the per-scan validation key in bytes.
const KeySize = 32

// ComputeCounter counts validation-word computations; satisfied by
// *metrics.Counter. A local interface keeps this package dependency-free.
type ComputeCounter interface {
	Add(n uint64)
}

// Validator computes per-target validation words for one scan.
//
// Compute sits on both hot paths — once per rendered probe and twice per
// classified response — so the keyed HMAC state is pooled and reused
// rather than rebuilt per call: after warm-up a Compute performs no heap
// allocation, which the receive path's zero-alloc contract depends on.
// The pool makes the Validator safe for concurrent use by sender threads
// and receive workers.
type Validator struct {
	key      [KeySize]byte
	computes ComputeCounter
	macs     sync.Pool // *macScratch
}

// macScratch is one reusable keyed-MAC evaluation context. The sum
// buffer is sized so hmac's append-style Sum never grows it, and the
// tuple buffer lives here (not on the caller's stack) because slices
// passed through the hash.Hash interface escape.
type macScratch struct {
	mac   hash.Hash
	sum   [sha256.Size]byte
	tuple [34]byte
}

// getMAC fetches a pooled scratch, creating one on first use per P.
func (v *Validator) getMAC() *macScratch {
	if s, ok := v.macs.Get().(*macScratch); ok {
		s.mac.Reset()
		return s
	}
	return &macScratch{mac: hmac.New(sha256.New, v.key[:])}
}

// finish extracts the truncated validation word and returns the scratch
// to the pool.
func (v *Validator) finish(s *macScratch) uint64 {
	out := s.mac.Sum(s.sum[:0])
	w := binary.BigEndian.Uint64(out[:8])
	v.macs.Put(s)
	return w
}

// Instrument attaches a counter incremented once per validation-word
// computation (MakeProbe computes twice per probe — source port and
// sequence — and Classify once per candidate response, so this tracks
// validator load on both hot paths). Call before the scan starts; a nil
// counter disables counting.
func (v *Validator) Instrument(c ComputeCounter) { v.computes = c }

// New creates a Validator with the given per-scan key.
func New(key [KeySize]byte) *Validator {
	return &Validator{key: key}
}

// NewRandom creates a Validator with a fresh random key.
func NewRandom() (*Validator, error) {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, err
	}
	return New(key), nil
}

// Key returns the validator's key (for scan metadata / resumption).
func (v *Validator) Key() [KeySize]byte { return v.key }

// Compute returns the 8-byte validation word for a flow. The same tuple
// always produces the same word within a scan, so validation needs no
// lookup table. srcIP/dstIP are the PROBE's source and destination; when
// validating a response the caller swaps them back.
func (v *Validator) Compute(srcIP, dstIP uint32, dstPort uint16) uint64 {
	if v.computes != nil {
		v.computes.Add(1)
	}
	s := v.getMAC()
	binary.BigEndian.PutUint32(s.tuple[0:4], srcIP)
	binary.BigEndian.PutUint32(s.tuple[4:8], dstIP)
	binary.BigEndian.PutUint16(s.tuple[8:10], dstPort)
	s.mac.Write(s.tuple[:10])
	return v.finish(s)
}

// TCPSeq returns the 32-bit sequence number to place in a SYN probe for
// the flow. A valid SYN-ACK must acknowledge TCPSeq+1; a valid RST
// acknowledges TCPSeq+0 or +1 depending on the stack.
func (v *Validator) TCPSeq(srcIP, dstIP uint32, dstPort uint16) uint32 {
	return uint32(v.Compute(srcIP, dstIP, dstPort))
}

// TCPAckValid reports whether ack is a plausible acknowledgment of the
// probe identified by the flow tuple: seq+1 for SYN-ACKs, and seq or seq+1
// for RSTs (stacks differ).
func (v *Validator) TCPAckValid(srcIP, dstIP uint32, dstPort uint16, ack uint32, isRST bool) bool {
	seq := v.TCPSeq(srcIP, dstIP, dstPort)
	if ack == seq+1 {
		return true
	}
	return isRST && ack == seq
}

// ICMPIDSeq returns the (id, seq) pair for an ICMP echo probe.
func (v *Validator) ICMPIDSeq(srcIP, dstIP uint32) (id, seq uint16) {
	w := v.Compute(srcIP, dstIP, 0)
	return uint16(w >> 16), uint16(w)
}

// Compute6 is the IPv6 analogue of Compute, MACing the 16-byte source
// and destination addresses plus the destination port.
func (v *Validator) Compute6(src, dst [16]byte, dstPort uint16) uint64 {
	if v.computes != nil {
		v.computes.Add(1)
	}
	s := v.getMAC()
	copy(s.tuple[0:16], src[:])
	copy(s.tuple[16:32], dst[:])
	binary.BigEndian.PutUint16(s.tuple[32:34], dstPort)
	s.mac.Write(s.tuple[:34])
	return v.finish(s)
}

// TCPSeq6 derives the SYN sequence number for a v6 flow.
func (v *Validator) TCPSeq6(src, dst [16]byte, dstPort uint16) uint32 {
	return uint32(v.Compute6(src, dst, dstPort))
}

// SourcePort returns the probe's TCP/UDP source port, drawn from the
// configured range [base, base+count) keyed by the flow so that retries
// reuse the same port but distinct targets spread load. This mirrors
// ZMap's --source-port range behavior.
func (v *Validator) SourcePort(base uint16, count uint16, dstIP uint32, dstPort uint16) uint16 {
	if count <= 1 {
		return base
	}
	w := v.Compute(0, dstIP, dstPort)
	return base + uint16(w>>32)%count
}
