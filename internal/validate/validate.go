// Package validate implements ZMap's stateless response validation.
//
// ZMap keeps no per-probe state, so it must decide whether an inbound
// packet is a genuine response to a probe it sent — rather than backscatter
// or an attacker guessing — using only the packet itself. It does so by
// deriving the mutable fields of each probe (TCP sequence number, ICMP id,
// UDP source port entropy) from a keyed MAC over the flow tuple. A
// response echoes these fields (a SYN-ACK acknowledges seq+1), so the
// receiver can recompute the MAC and compare.
//
// The C implementation uses AES-128 with a per-scan key; we use
// HMAC-SHA256 truncated to 8 bytes, which provides the same unforgeability
// property with stdlib crypto.
package validate

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
)

// KeySize is the size of the per-scan validation key in bytes.
const KeySize = 32

// ComputeCounter counts validation-word computations; satisfied by
// *metrics.Counter. A local interface keeps this package dependency-free.
type ComputeCounter interface {
	Add(n uint64)
}

// Validator computes per-target validation words for one scan.
type Validator struct {
	key      [KeySize]byte
	computes ComputeCounter
}

// Instrument attaches a counter incremented once per validation-word
// computation (MakeProbe computes twice per probe — source port and
// sequence — and Classify once per candidate response, so this tracks
// validator load on both hot paths). Call before the scan starts; a nil
// counter disables counting.
func (v *Validator) Instrument(c ComputeCounter) { v.computes = c }

// New creates a Validator with the given per-scan key.
func New(key [KeySize]byte) *Validator {
	return &Validator{key: key}
}

// NewRandom creates a Validator with a fresh random key.
func NewRandom() (*Validator, error) {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, err
	}
	return New(key), nil
}

// Key returns the validator's key (for scan metadata / resumption).
func (v *Validator) Key() [KeySize]byte { return v.key }

// Compute returns the 8-byte validation word for a flow. The same tuple
// always produces the same word within a scan, so validation needs no
// lookup table. srcIP/dstIP are the PROBE's source and destination; when
// validating a response the caller swaps them back.
func (v *Validator) Compute(srcIP, dstIP uint32, dstPort uint16) uint64 {
	if v.computes != nil {
		v.computes.Add(1)
	}
	mac := hmac.New(sha256.New, v.key[:])
	var tuple [10]byte
	binary.BigEndian.PutUint32(tuple[0:4], srcIP)
	binary.BigEndian.PutUint32(tuple[4:8], dstIP)
	binary.BigEndian.PutUint16(tuple[8:10], dstPort)
	mac.Write(tuple[:])
	sum := mac.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// TCPSeq returns the 32-bit sequence number to place in a SYN probe for
// the flow. A valid SYN-ACK must acknowledge TCPSeq+1; a valid RST
// acknowledges TCPSeq+0 or +1 depending on the stack.
func (v *Validator) TCPSeq(srcIP, dstIP uint32, dstPort uint16) uint32 {
	return uint32(v.Compute(srcIP, dstIP, dstPort))
}

// TCPAckValid reports whether ack is a plausible acknowledgment of the
// probe identified by the flow tuple: seq+1 for SYN-ACKs, and seq or seq+1
// for RSTs (stacks differ).
func (v *Validator) TCPAckValid(srcIP, dstIP uint32, dstPort uint16, ack uint32, isRST bool) bool {
	seq := v.TCPSeq(srcIP, dstIP, dstPort)
	if ack == seq+1 {
		return true
	}
	return isRST && ack == seq
}

// ICMPIDSeq returns the (id, seq) pair for an ICMP echo probe.
func (v *Validator) ICMPIDSeq(srcIP, dstIP uint32) (id, seq uint16) {
	w := v.Compute(srcIP, dstIP, 0)
	return uint16(w >> 16), uint16(w)
}

// Compute6 is the IPv6 analogue of Compute, MACing the 16-byte source
// and destination addresses plus the destination port.
func (v *Validator) Compute6(src, dst [16]byte, dstPort uint16) uint64 {
	if v.computes != nil {
		v.computes.Add(1)
	}
	mac := hmac.New(sha256.New, v.key[:])
	var tuple [34]byte
	copy(tuple[0:16], src[:])
	copy(tuple[16:32], dst[:])
	binary.BigEndian.PutUint16(tuple[32:34], dstPort)
	mac.Write(tuple[:])
	sum := mac.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// TCPSeq6 derives the SYN sequence number for a v6 flow.
func (v *Validator) TCPSeq6(src, dst [16]byte, dstPort uint16) uint32 {
	return uint32(v.Compute6(src, dst, dstPort))
}

// SourcePort returns the probe's TCP/UDP source port, drawn from the
// configured range [base, base+count) keyed by the flow so that retries
// reuse the same port but distinct targets spread load. This mirrors
// ZMap's --source-port range behavior.
func (v *Validator) SourcePort(base uint16, count uint16, dstIP uint32, dstPort uint16) uint16 {
	if count <= 1 {
		return base
	}
	w := v.Compute(0, dstIP, dstPort)
	return base + uint16(w>>32)%count
}
