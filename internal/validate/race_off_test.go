//go:build !race

package validate

const raceEnabled = false
