package validate

import (
	"testing"
	"testing/quick"
)

func testValidator() *Validator {
	var key [KeySize]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	return New(key)
}

func TestComputeDeterministic(t *testing.T) {
	v := testValidator()
	a := v.Compute(1, 2, 80)
	b := v.Compute(1, 2, 80)
	if a != b {
		t.Error("Compute not deterministic")
	}
}

func TestComputeDistinguishesTuples(t *testing.T) {
	v := testValidator()
	base := v.Compute(1, 2, 80)
	if v.Compute(2, 2, 80) == base || v.Compute(1, 3, 80) == base || v.Compute(1, 2, 81) == base {
		t.Error("tuple variation did not change validation word")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	var k1, k2 [KeySize]byte
	k2[0] = 1
	if New(k1).Compute(1, 2, 80) == New(k2).Compute(1, 2, 80) {
		t.Error("different keys produced same word")
	}
}

func TestNewRandomKeysDistinct(t *testing.T) {
	v1, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	if v1.Key() == v2.Key() {
		t.Error("two random validators share a key")
	}
}

func TestTCPAckValidation(t *testing.T) {
	v := testValidator()
	seq := v.TCPSeq(10, 20, 443)
	if !v.TCPAckValid(10, 20, 443, seq+1, false) {
		t.Error("SYN-ACK with seq+1 rejected")
	}
	if v.TCPAckValid(10, 20, 443, seq, false) {
		t.Error("SYN-ACK with seq accepted (only RST may ack seq)")
	}
	if !v.TCPAckValid(10, 20, 443, seq, true) {
		t.Error("RST with seq rejected")
	}
	if !v.TCPAckValid(10, 20, 443, seq+1, true) {
		t.Error("RST with seq+1 rejected")
	}
	if v.TCPAckValid(10, 20, 443, seq+2, true) {
		t.Error("ack seq+2 accepted")
	}
	if v.TCPAckValid(10, 21, 443, seq+1, false) {
		t.Error("wrong flow accepted")
	}
}

func TestTCPAckValidProperty(t *testing.T) {
	// Property: a random ack is (nearly) never valid for a random flow.
	v := testValidator()
	f := func(src, dst uint32, port uint16, ack uint32) bool {
		seq := v.TCPSeq(src, dst, port)
		valid := v.TCPAckValid(src, dst, port, ack, true)
		shouldBe := ack == seq || ack == seq+1
		return valid == shouldBe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestICMPIDSeqStable(t *testing.T) {
	v := testValidator()
	id1, seq1 := v.ICMPIDSeq(5, 6)
	id2, seq2 := v.ICMPIDSeq(5, 6)
	if id1 != id2 || seq1 != seq2 {
		t.Error("ICMP id/seq not deterministic")
	}
	id3, seq3 := v.ICMPIDSeq(5, 7)
	if id1 == id3 && seq1 == seq3 {
		t.Error("different destination produced identical ICMP id/seq")
	}
}

func TestSourcePortRange(t *testing.T) {
	v := testValidator()
	const base, count = 32768, 100
	seen := make(map[uint16]bool)
	for ip := uint32(0); ip < 2000; ip++ {
		p := v.SourcePort(base, count, ip, 80)
		if p < base || p >= base+count {
			t.Fatalf("source port %d outside [%d, %d)", p, base, base+count)
		}
		seen[p] = true
	}
	if len(seen) < count/2 {
		t.Errorf("only %d distinct ports of %d used; poor spread", len(seen), count)
	}
	// Stable per flow.
	if v.SourcePort(base, count, 42, 80) != v.SourcePort(base, count, 42, 80) {
		t.Error("source port not stable per flow")
	}
	// Single-port config always returns base.
	if v.SourcePort(base, 1, 42, 80) != base || v.SourcePort(base, 0, 42, 80) != base {
		t.Error("single-port config wrong")
	}
}

func BenchmarkCompute(b *testing.B) {
	v := testValidator()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = v.Compute(uint32(i), uint32(i*3), 80)
	}
	benchSink = sink
}

var benchSink uint64

// countingAdder satisfies ComputeCounter.
type countingAdder struct{ n uint64 }

func (c *countingAdder) Add(n uint64) { c.n += n }

func TestInstrumentCountsComputes(t *testing.T) {
	v := New([KeySize]byte{1})
	c := &countingAdder{}
	v.Instrument(c)
	v.Compute(1, 2, 80)
	v.TCPSeq(1, 2, 80) // one Compute
	v.ICMPIDSeq(1, 2)  // one Compute
	v.Compute6([16]byte{1}, [16]byte{2}, 443)
	if c.n != 4 {
		t.Errorf("compute counter = %d, want 4", c.n)
	}
	// SourcePort with a range consults the validator too.
	v.SourcePort(32768, 256, 9, 80)
	if c.n != 5 {
		t.Errorf("compute counter = %d after SourcePort, want 5", c.n)
	}
	// Detaching stops counting without breaking computation.
	v.Instrument(nil)
	v.Compute(1, 2, 80)
	if c.n != 5 {
		t.Errorf("counter advanced after detach: %d", c.n)
	}
}
