//go:build race

package validate

// raceEnabled reports whether the race detector is active. The detector
// randomly drops sync.Pool items to expose lifetime bugs, so pooled-MAC
// allocation counts are meaningless under -race.
const raceEnabled = true
