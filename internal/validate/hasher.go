package validate

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"hash"
)

// Hasher computes the same validation words as Validator.Compute with
// zero heap allocations per call, for the batched send path.
//
// crypto/hmac.New allocates two digest states, pad buffers, and a sum
// slice on every call — several allocations per probe at line rate. A
// Hasher instead captures the SHA-256 states with the key's inner and
// outer pads already absorbed (via the digest's BinaryMarshaler) once
// at construction, then restores them per computation and sums into
// preallocated buffers. The words produced are bit-identical to
// HMAC-SHA256, so template-rendered probes validate against responses
// exactly like built-from-scratch ones.
//
// A Hasher is NOT safe for concurrent use: each sender thread owns one.
type Hasher struct {
	h     hash.Hash
	um    encoding.BinaryUnmarshaler
	inner []byte // marshaled SHA-256 state after absorbing key XOR ipad
	outer []byte // marshaled SHA-256 state after absorbing key XOR opad

	tuple    [10]byte
	innerSum [sha256.Size]byte
	outerSum [sha256.Size]byte

	computes ComputeCounter
}

// NewHasher builds a reusable hasher keyed like the validator. It
// inherits the validator's compute counter (see Instrument) so
// validator-load metrics cover both paths; attach the counter before
// creating hashers.
func (v *Validator) NewHasher() *Hasher {
	h := sha256.New()
	m := h.(encoding.BinaryMarshaler)
	um := h.(encoding.BinaryUnmarshaler)

	var pad [sha256.BlockSize]byte
	for i := range pad {
		pad[i] = 0x36
	}
	for i, b := range v.key {
		pad[i] ^= b
	}
	h.Write(pad[:])
	inner, err := m.MarshalBinary()
	if err != nil {
		// The stdlib digest marshaler cannot fail; a change that makes it
		// fail must be caught loudly, not by silently mis-validating.
		panic("validate: sha256 state marshal: " + err.Error())
	}

	h.Reset()
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5C
	}
	h.Write(pad[:])
	outer, err := m.MarshalBinary()
	if err != nil {
		panic("validate: sha256 state marshal: " + err.Error())
	}

	return &Hasher{h: h, um: um, inner: inner, outer: outer, computes: v.computes}
}

// word finishes the HMAC over the hasher's tuple buffer (first n bytes)
// and returns the leading 8 bytes, matching Validator.Compute.
func (hr *Hasher) word(n int) uint64 {
	if hr.computes != nil {
		hr.computes.Add(1)
	}
	if err := hr.um.UnmarshalBinary(hr.inner); err != nil {
		panic("validate: sha256 state restore: " + err.Error())
	}
	hr.h.Write(hr.tuple[:n])
	sum := hr.h.Sum(hr.innerSum[:0])
	if err := hr.um.UnmarshalBinary(hr.outer); err != nil {
		panic("validate: sha256 state restore: " + err.Error())
	}
	hr.h.Write(sum)
	sum = hr.h.Sum(hr.outerSum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Compute returns the validation word for a flow; bit-identical to
// Validator.Compute on the same key.
func (hr *Hasher) Compute(srcIP, dstIP uint32, dstPort uint16) uint64 {
	binary.BigEndian.PutUint32(hr.tuple[0:4], srcIP)
	binary.BigEndian.PutUint32(hr.tuple[4:8], dstIP)
	binary.BigEndian.PutUint16(hr.tuple[8:10], dstPort)
	return hr.word(len(hr.tuple))
}

// SourcePort mirrors Validator.SourcePort.
func (hr *Hasher) SourcePort(base, count uint16, dstIP uint32, dstPort uint16) uint16 {
	if count <= 1 {
		return base
	}
	w := hr.Compute(0, dstIP, dstPort)
	return base + uint16(w>>32)%count
}
