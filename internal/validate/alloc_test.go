package validate

import (
	"sync"
	"testing"
)

// The receive path classifies every candidate response with the shared
// Validator from several workers at once, so Compute must be both
// concurrency-safe and allocation-free once its MAC pool is warm. This
// pins the zero-alloc half; TestComputeConcurrent (under -race) covers
// the other.
func TestComputeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are not meaningful")
	}
	v := New([KeySize]byte{1, 2, 3})
	v.Compute(1, 2, 3) // warm the pool
	if a := testing.AllocsPerRun(200, func() { benchSink = v.Compute(4, 5, 6) }); a != 0 {
		t.Errorf("Compute allocates %.2f objects per call, want 0", a)
	}
	v.Compute6([16]byte{1}, [16]byte{2}, 443)
	if a := testing.AllocsPerRun(200, func() {
		benchSink = v.Compute6([16]byte{9}, [16]byte{8}, 443)
	}); a != 0 {
		t.Errorf("Compute6 allocates %.2f objects per call, want 0", a)
	}
}

// Concurrent callers must see the same words a lone caller computes:
// pooled MAC state must never bleed between flows.
func TestComputeConcurrent(t *testing.T) {
	v := New([KeySize]byte{7, 7, 7})
	const flows = 512
	want := make([]uint64, flows)
	for i := range want {
		want[i] = v.Compute(uint32(i), uint32(i)*3+1, uint16(i))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				for i := range want {
					if got := v.Compute(uint32(i), uint32(i)*3+1, uint16(i)); got != want[i] {
						select {
						case errs <- "goroutine observed a different validation word":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
