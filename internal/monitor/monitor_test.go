package monitor

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Sent()
				c.Recv()
				c.Valid()
				c.Success(i%2 == 0)
				c.Duplicate()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Sent != 8000 || s.Recv != 8000 || s.Valid != 8000 {
		t.Errorf("snapshot %+v", s)
	}
	if s.Success != 8000 || s.UniqueSucc != 4000 || s.Duplicates != 8000 {
		t.Errorf("snapshot %+v", s)
	}
}

func TestSetDropsIsGauge(t *testing.T) {
	var c Counters
	c.SetDrops(5)
	c.SetDrops(7)
	if c.Snapshot().Drops != 7 {
		t.Error("drops should store the latest gauge value")
	}
	c.SetDrops(6) // a later, smaller report replaces — it is a gauge
	if c.Snapshot().Drops != 6 {
		t.Error("drops gauge must be replaceable, not monotonic")
	}
}

func TestStatusWriterEmitsLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := &lockedWriter{mu: &mu, w: &buf}
	var c Counters
	s := NewStatusWriter(w, &c, 10*time.Millisecond)
	for i := 0; i < 100; i++ {
		c.Sent()
	}
	time.Sleep(35 * time.Millisecond)
	s.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected >= 2 status lines, got %q", out)
	}
	fields := strings.Split(lines[len(lines)-1], ",")
	if len(fields) != 22 {
		t.Fatalf("status line has %d fields: %q", len(fields), lines[len(lines)-1])
	}
	if fields[1] != "100" {
		t.Errorf("sent field = %q, want 100", fields[1])
	}
}

func TestFaultCounters(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.SendError()
				c.Retry()
				c.SendDrop()
			}
			c.SenderRestart()
			c.AddDegraded(time.Millisecond)
			c.AddDegraded(-time.Second) // negative durations are ignored
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.SendErrors != 400 || s.Retries != 400 || s.SendDrops != 400 {
		t.Errorf("fault counters %+v", s)
	}
	if s.SenderRestarts != 4 {
		t.Errorf("restarts = %d", s.SenderRestarts)
	}
	if s.Degraded != 4*time.Millisecond {
		t.Errorf("degraded = %v", s.Degraded)
	}
}

func TestStatusWriterNilWriter(t *testing.T) {
	var c Counters
	s := NewStatusWriter(nil, &c, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Stop() // must not panic
}

func TestStatusWriterStopIdempotent(t *testing.T) {
	var c Counters
	s := NewStatusWriter(nil, &c, time.Millisecond)
	s.Stop()
	s.Stop() // second call must not panic on a closed channel

	// Concurrent stops must all return.
	s2 := NewStatusWriter(nil, &c, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s2.Stop()
		}()
	}
	wg.Wait()
}

func TestStatusCSVHeaderPinned(t *testing.T) {
	// The column order is a compatibility contract for parsers of
	// --status-updates-file. New counters must be APPENDED; any reorder
	// or rename must be a deliberate, test-breaking decision.
	const want = "time_unix,sent,sent_pps,recv,recv_pps," +
		"success,unique,duplicates,drops," +
		"send_errors,retries,send_drops,sender_restarts,degraded_secs," +
		"recv_truncated,recv_unsupported,recv_checksum_fail,recv_invalid," +
		"hit_rate_1m,controller_rate_pps,quarantined_prefixes," +
		"parole_probes"
	if got := CSVHeader(); got != want {
		t.Errorf("CSV header changed:\n got %q\nwant %q", got, want)
	}
}

func TestStatusWriterHeaderLine(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := &lockedWriter{mu: &mu, w: &buf}
	var c Counters
	s := NewStatusWriterWith(w, &c, StatusOptions{
		Interval: 5 * time.Millisecond,
		Header:   true,
	})
	time.Sleep(15 * time.Millisecond)
	s.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != CSVHeader() {
		t.Fatalf("first line %q, want header", lines[0])
	}
	if strings.Count(out, CSVHeader()) != 1 {
		t.Error("header emitted more than once")
	}
	if len(lines) < 2 {
		t.Fatal("no data rows after header")
	}
	if cols := strings.Split(lines[1], ","); len(cols) != len(strings.Split(CSVHeader(), ",")) {
		t.Errorf("data row has %d fields, header has %d", len(cols), len(strings.Split(CSVHeader(), ",")))
	}
}

func TestStatusWriterJSONFormat(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := &lockedWriter{mu: &mu, w: &buf}
	var c Counters
	for i := 0; i < 50; i++ {
		c.Sent()
		c.Recv()
		c.Success(i%2 == 0)
	}
	s := NewStatusWriterWith(w, &c, StatusOptions{
		Interval: 5 * time.Millisecond,
		Format:   "json",
		Extra: func(st *Status, dt time.Duration) {
			st.ThreadPPS = []float64{12.5, 14}
			st.SendLatencyP50 = 0.001
			st.SendLatencyP90 = 0.002
			st.SendLatencyP99 = 0.004
		},
	})
	time.Sleep(15 * time.Millisecond)
	s.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 1 {
		t.Fatalf("no JSON status lines: %q", out)
	}
	var st Status
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("unmarshal %q: %v", lines[len(lines)-1], err)
	}
	if st.Sent != 50 || st.Recv != 50 {
		t.Errorf("sent/recv = %d/%d", st.Sent, st.Recv)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate)
	}
	if len(st.ThreadPPS) != 2 || st.SendLatencyP99 != 0.004 {
		t.Errorf("extra fields lost: %+v", st)
	}
	// Quantile keys must appear literally (the acceptance contract).
	for _, key := range []string{"send_latency_p50_secs", "send_latency_p90_secs", "send_latency_p99_secs", "hit_rate", "thread_pps"} {
		if !strings.Contains(lines[len(lines)-1], key) {
			t.Errorf("JSON line missing %q: %s", key, lines[len(lines)-1])
		}
	}
}

func TestStatusWriterCSVOutputUnchanged(t *testing.T) {
	// The legacy constructor must keep the exact pre-header format:
	// comma-separated fields matching csvColumns, no header line.
	var mu sync.Mutex
	var buf bytes.Buffer
	w := &lockedWriter{mu: &mu, w: &buf}
	var c Counters
	s := NewStatusWriter(w, &c, 5*time.Millisecond)
	time.Sleep(12 * time.Millisecond)
	s.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "time_unix") {
			t.Fatal("legacy constructor emitted a header")
		}
		if got := len(strings.Split(line, ",")); got != 22 {
			t.Fatalf("line has %d fields: %q", got, line)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestWindowedHitRate(t *testing.T) {
	base := time.Unix(1000, 0)
	snap := func(at time.Duration, sent, unique uint64) Snapshot {
		return Snapshot{Time: base.Add(at), Sent: sent, UniqueSucc: unique}
	}
	s := &StatusWriter{window: []Snapshot{snap(0, 0, 0)}}

	// 10s in: cumulative and windowed agree (window covers the start).
	if got := s.windowedHitRate(snap(10*time.Second, 1000, 100)); got != 0.1 {
		t.Fatalf("windowed rate = %v, want 0.1", got)
	}
	// 30s in, still inside the window: rate over the whole history.
	if got := s.windowedHitRate(snap(30*time.Second, 2000, 200)); got != 0.1 {
		t.Fatalf("windowed rate = %v, want 0.1", got)
	}
	// 80s in: the t=0 and t=10s anchors have aged out; the window now
	// starts at t=30s. The scan went dark after 30s (no new uniques), so
	// the windowed rate collapses to 0 while cumulative would read 0.04.
	if got := s.windowedHitRate(snap(80*time.Second, 5000, 200)); got != 0 {
		t.Fatalf("windowed rate after collapse = %v, want 0", got)
	}
	// Nothing sent in the window (cooldown): defined as zero even as
	// responses trickle in.
	if got := s.windowedHitRate(snap(150*time.Second, 5000, 250)); got != 0 {
		t.Fatalf("windowed rate with idle senders = %v, want 0", got)
	}
}

func TestWindowedHitRateRingBounded(t *testing.T) {
	s := &StatusWriter{window: []Snapshot{{Time: time.Unix(0, 0)}}}
	base := time.Unix(1000, 0)
	for i := 0; i < 5000; i++ {
		s.windowedHitRate(Snapshot{Time: base.Add(time.Duration(i) * time.Millisecond)})
	}
	if len(s.window) > maxWindowEntries {
		t.Fatalf("window ring grew to %d entries", len(s.window))
	}
}
