package monitor

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Sent()
				c.Recv()
				c.Valid()
				c.Success(i%2 == 0)
				c.Duplicate()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Sent != 8000 || s.Recv != 8000 || s.Valid != 8000 {
		t.Errorf("snapshot %+v", s)
	}
	if s.Success != 8000 || s.UniqueSucc != 4000 || s.Duplicates != 8000 {
		t.Errorf("snapshot %+v", s)
	}
}

func TestAddDropsIsGauge(t *testing.T) {
	var c Counters
	c.AddDrops(5)
	c.AddDrops(7)
	if c.Snapshot().Drops != 7 {
		t.Error("drops should store the latest gauge value")
	}
}

func TestStatusWriterEmitsLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := &lockedWriter{mu: &mu, w: &buf}
	var c Counters
	s := NewStatusWriter(w, &c, 10*time.Millisecond)
	for i := 0; i < 100; i++ {
		c.Sent()
	}
	time.Sleep(35 * time.Millisecond)
	s.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected >= 2 status lines, got %q", out)
	}
	fields := strings.Split(lines[len(lines)-1], ",")
	if len(fields) != 14 {
		t.Fatalf("status line has %d fields: %q", len(fields), lines[len(lines)-1])
	}
	if fields[1] != "100" {
		t.Errorf("sent field = %q, want 100", fields[1])
	}
}

func TestFaultCounters(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.SendError()
				c.Retry()
				c.SendDrop()
			}
			c.SenderRestart()
			c.AddDegraded(time.Millisecond)
			c.AddDegraded(-time.Second) // negative durations are ignored
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.SendErrors != 400 || s.Retries != 400 || s.SendDrops != 400 {
		t.Errorf("fault counters %+v", s)
	}
	if s.SenderRestarts != 4 {
		t.Errorf("restarts = %d", s.SenderRestarts)
	}
	if s.Degraded != 4*time.Millisecond {
		t.Errorf("degraded = %v", s.Degraded)
	}
}

func TestStatusWriterNilWriter(t *testing.T) {
	var c Counters
	s := NewStatusWriter(nil, &c, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Stop() // must not panic
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
