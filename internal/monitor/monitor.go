// Package monitor implements the real-time status stream — the third of
// the four output streams §5 prescribes (data, logs, status updates,
// metadata). Counters are lock-free atomics updated by send and receive
// goroutines; a snapshot loop emits one machine-parsable line per second
// in CSV (ZMap's --status-updates-file format, optionally with a header)
// or JSON (one object per line, with room for per-thread rates and
// latency quantiles contributed by the engine).
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates scan progress. All methods are safe for concurrent
// use.
type Counters struct {
	sent       atomic.Uint64
	recv       atomic.Uint64
	valid      atomic.Uint64
	success    atomic.Uint64
	uniqueSucc atomic.Uint64
	duplicates atomic.Uint64
	drops      atomic.Uint64

	// Send-path fault counters (§4.3 send-loop hardening): transport
	// errors, retry attempts, probes dropped after exhausting retries,
	// supervised sender restarts, and time spent with a degraded rate.
	sendErrors     atomic.Uint64
	retries        atomic.Uint64
	sendDrops      atomic.Uint64
	senderRestarts atomic.Uint64
	degradedNanos  atomic.Int64

	// Receive-path fault counters: frames rejected before they could
	// produce a result, bucketed by failure class so a hostile or lossy
	// receive path is visible in the status stream (truncated and
	// unsupported from the parser's error taxonomy, checksum failures
	// from corruption, invalid from validation/classification refusals —
	// the spoofed-response bucket).
	recvTruncated   atomic.Uint64
	recvUnsupported atomic.Uint64
	recvChecksum    atomic.Uint64
	recvInvalid     atomic.Uint64

	// quarantineSkips counts targets skipped because their prefix was
	// quarantined by the scan-health subsystem (probe budget saved, not
	// probes failed).
	quarantineSkips atomic.Uint64

	// paroleProbes counts probes sent into quarantined prefixes on the
	// parole re-probe budget — the small spend that lets a recovered
	// prefix earn its release.
	paroleProbes atomic.Uint64
}

// Sent increments packets sent.
func (c *Counters) Sent() { c.sent.Add(1) }

// SentN adds n packets sent in one update (batched send paths).
func (c *Counters) SentN(n uint64) { c.sent.Add(n) }

// SendError increments failed transport send attempts (transient or
// fatal).
func (c *Counters) SendError() { c.sendErrors.Add(1) }

// Retry increments send re-attempts after a transient transport error.
func (c *Counters) Retry() { c.retries.Add(1) }

// SendDrop increments probes abandoned after exhausting their retry
// budget. Dropped probes are never counted as sent.
func (c *Counters) SendDrop() { c.sendDrops.Add(1) }

// SenderRestart increments supervised restarts of sender goroutines
// after a panic or fatal transport error.
func (c *Counters) SenderRestart() { c.senderRestarts.Add(1) }

// AddDegraded accumulates wall time a sender spent below its configured
// rate share because the transport was failing.
func (c *Counters) AddDegraded(d time.Duration) {
	if d > 0 {
		c.degradedNanos.Add(int64(d))
	}
}

// Recv increments packets received (pre-validation).
func (c *Counters) Recv() { c.recv.Add(1) }

// RecvTruncated increments frames the parser rejected as truncated.
func (c *Counters) RecvTruncated() { c.recvTruncated.Add(1) }

// RecvUnsupported increments frames the parser rejected as an
// unsupported protocol or shape.
func (c *Counters) RecvUnsupported() { c.recvUnsupported.Add(1) }

// RecvChecksum increments frames that parsed but failed IP or transport
// checksum verification (bit corruption on the path).
func (c *Counters) RecvChecksum() { c.recvChecksum.Add(1) }

// RecvInvalid increments well-formed frames the validator or classifier
// refused — unsolicited or spoofed traffic that carried no proof it
// answers one of this scan's probes.
func (c *Counters) RecvInvalid() { c.recvInvalid.Add(1) }

// QuarantineSkip increments targets skipped due to prefix quarantine.
func (c *Counters) QuarantineSkip() { c.quarantineSkips.Add(1) }

// ParoleProbe increments probes sent into a quarantined prefix on its
// parole re-probe budget.
func (c *Counters) ParoleProbe() { c.paroleProbes.Add(1) }

// Valid increments validated responses.
func (c *Counters) Valid() { c.valid.Add(1) }

// Success increments successful classifications; unique marks first
// sightings after dedup.
func (c *Counters) Success(unique bool) {
	c.success.Add(1)
	if unique {
		c.uniqueSucc.Add(1)
	}
}

// Duplicate increments deduplicated repeats.
func (c *Counters) Duplicate() { c.duplicates.Add(1) }

// SetDrops records the receive-ring drop gauge, as last reported by the
// link. It is a set, not an increment: the link tracks the cumulative
// total itself, so each report replaces the previous one. (A single
// aggregated transport reports here; per-link totals would need summing
// by the caller before the set.)
func (c *Counters) SetDrops(n uint64) { c.drops.Store(n) }

// Snapshot is a point-in-time view of the counters.
type Snapshot struct {
	Time       time.Time
	Sent       uint64
	Recv       uint64
	Valid      uint64
	Success    uint64
	UniqueSucc uint64
	Duplicates uint64
	Drops      uint64

	SendErrors     uint64
	Retries        uint64
	SendDrops      uint64
	SenderRestarts uint64
	Degraded       time.Duration

	RecvTruncated   uint64
	RecvUnsupported uint64
	RecvChecksum    uint64
	RecvInvalid     uint64

	QuarantineSkips uint64
	ParoleProbes    uint64
}

// Snapshot captures current values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Time:           time.Now(),
		Sent:           c.sent.Load(),
		Recv:           c.recv.Load(),
		Valid:          c.valid.Load(),
		Success:        c.success.Load(),
		UniqueSucc:     c.uniqueSucc.Load(),
		Duplicates:     c.duplicates.Load(),
		Drops:          c.drops.Load(),
		SendErrors:     c.sendErrors.Load(),
		Retries:        c.retries.Load(),
		SendDrops:      c.sendDrops.Load(),
		SenderRestarts: c.senderRestarts.Load(),
		Degraded:       time.Duration(c.degradedNanos.Load()),

		RecvTruncated:   c.recvTruncated.Load(),
		RecvUnsupported: c.recvUnsupported.Load(),
		RecvChecksum:    c.recvChecksum.Load(),
		RecvInvalid:     c.recvInvalid.Load(),

		QuarantineSkips: c.quarantineSkips.Load(),
		ParoleProbes:    c.paroleProbes.Load(),
	}
}

// Status is one status-stream tick. CSV emits the first 14 fields in
// csvColumns order; JSON emits everything, including the fields only an
// engine callback can fill (hit rate, per-thread rates, quantiles).
type Status struct {
	TimeUnix       int64   `json:"time_unix"`
	Sent           uint64  `json:"sent"`
	SentPPS        float64 `json:"sent_pps"`
	Recv           uint64  `json:"recv"`
	RecvPPS        float64 `json:"recv_pps"`
	Success        uint64  `json:"success"`
	Unique         uint64  `json:"unique"`
	Duplicates     uint64  `json:"duplicates"`
	Drops          uint64  `json:"drops"`
	SendErrors     uint64  `json:"send_errors"`
	Retries        uint64  `json:"retries"`
	SendDrops      uint64  `json:"send_drops"`
	SenderRestarts uint64  `json:"sender_restarts"`
	DegradedSecs   float64 `json:"degraded_secs"`

	// Receive-path fault classes (appended CSV columns; always in JSON).
	RecvTruncated   uint64 `json:"recv_truncated"`
	RecvUnsupported uint64 `json:"recv_unsupported"`
	RecvChecksum    uint64 `json:"recv_checksum_fail"`
	RecvInvalid     uint64 `json:"recv_invalid"`

	// Scan-health fields (appended CSV columns; always in JSON).
	// HitRate1m is the windowed hit rate — unique successes over probes
	// sent within the trailing 60s (or since start, if younger). Unlike
	// the cumulative HitRate it reacts to conditions *now*: a congestion
	// collapse is visible within a window, not diluted by hours of
	// history. ControllerRatePPS and QuarantinedPrefixes mirror the
	// health controller's target rate and quarantine count (zero when
	// the subsystem is off).
	HitRate1m           float64 `json:"hit_rate_1m"`
	ControllerRatePPS   float64 `json:"controller_rate_pps"`
	QuarantinedPrefixes uint64  `json:"quarantined_prefixes"`
	QuarantineSkips     uint64  `json:"quarantine_skips"`
	ParoleProbes        uint64  `json:"parole_probes"`

	// Enriched fields (JSON only). HitRate defaults to unique/sent; the
	// engine's Extra callback overrides it with the probes-per-target
	// aware value and fills the rest.
	HitRate        float64   `json:"hit_rate"`
	ThreadPPS      []float64 `json:"thread_pps,omitempty"`
	SendLatencyP50 float64   `json:"send_latency_p50_secs"`
	SendLatencyP90 float64   `json:"send_latency_p90_secs"`
	SendLatencyP99 float64   `json:"send_latency_p99_secs"`
	// Receive-path latency (frame receipt to parse+validate), merged
	// across all receive-worker histogram shards. JSON-only, like the
	// send quantiles: csvColumns is pinned for parser compatibility.
	RecvLatencyP50 float64 `json:"recv_latency_p50_secs"`
	RecvLatencyP90 float64 `json:"recv_latency_p90_secs"`
	RecvLatencyP99 float64 `json:"recv_latency_p99_secs"`
}

// csvColumns pins the CSV column order. Appending a column is fine;
// reordering or renaming breaks every parser of --status-updates-file,
// so TestStatusCSVHeaderPinned fails if this list silently changes.
var csvColumns = []string{
	"time_unix", "sent", "sent_pps", "recv", "recv_pps",
	"success", "unique", "duplicates", "drops",
	"send_errors", "retries", "send_drops", "sender_restarts",
	"degraded_secs",
	"recv_truncated", "recv_unsupported", "recv_checksum_fail", "recv_invalid",
	"hit_rate_1m", "controller_rate_pps", "quarantined_prefixes",
	"parole_probes",
}

// CSVHeader returns the status CSV header line (without newline).
func CSVHeader() string { return strings.Join(csvColumns, ",") }

// StatusOptions configures a StatusWriter beyond the defaults.
type StatusOptions struct {
	// Interval between ticks (default 1s).
	Interval time.Duration
	// Format is "csv" (default) or "json" (one object per line).
	Format string
	// Header emits the CSV header line before the first row (ZMap's
	// --status-updates-file carries one). Ignored for JSON.
	Header bool
	// Extra, if set, is called once per tick with the assembled Status
	// and the measured interval, before formatting. The engine uses it
	// to fill hit rate, per-thread rates, latency quantiles, and the
	// receive-ring drop gauge. It runs on the status goroutine.
	Extra func(st *Status, dt time.Duration)
}

// hitRateWindow is the trailing span over which hit_rate_1m is
// computed. maxWindowEntries bounds the snapshot ring at sub-second
// tick intervals (the window then shortens rather than growing without
// bound).
const (
	hitRateWindow    = time.Minute
	maxWindowEntries = 1024
)

// StatusWriter periodically emits one status line per tick.
type StatusWriter struct {
	w        io.Writer
	counters *Counters
	opts     StatusOptions
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	last     Snapshot
	window   []Snapshot // trailing snapshots for hit_rate_1m, oldest first
	headed   bool
}

// NewStatusWriter starts a CSV status loop writing to w every interval —
// the legacy headerless format. Call Stop to end it. A nil w disables
// output but still permits Stop.
func NewStatusWriter(w io.Writer, c *Counters, interval time.Duration) *StatusWriter {
	return NewStatusWriterWith(w, c, StatusOptions{Interval: interval})
}

// NewStatusWriterWith starts a status loop with full options.
func NewStatusWriterWith(w io.Writer, c *Counters, opts StatusOptions) *StatusWriter {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Format == "" {
		opts.Format = "csv"
	}
	first := c.Snapshot()
	s := &StatusWriter{
		w:        w,
		counters: c,
		opts:     opts,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		last:     first,
		window:   []Snapshot{first},
	}
	go s.loop()
	return s
}

// windowedHitRate computes unique/sent over the trailing window ending
// at now, using the oldest retained snapshot inside the window as the
// anchor. It also prunes the ring. Zero when nothing was sent in the
// window (e.g. during cooldown).
func (s *StatusWriter) windowedHitRate(now Snapshot) float64 {
	cutoff := now.Time.Add(-hitRateWindow)
	i := 0
	for i < len(s.window)-1 && s.window[i].Time.Before(cutoff) {
		i++
	}
	s.window = append(s.window[i:], now)
	if len(s.window) > maxWindowEntries {
		s.window = s.window[len(s.window)-maxWindowEntries:]
	}
	anchor := s.window[0]
	if now.Sent <= anchor.Sent {
		return 0
	}
	return float64(now.UniqueSucc-anchor.UniqueSucc) / float64(now.Sent-anchor.Sent)
}

func (s *StatusWriter) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.emit()
		case <-s.stop:
			s.emit()
			return
		}
	}
}

func (s *StatusWriter) emit() {
	now := s.counters.Snapshot()
	dt := now.Time.Sub(s.last.Time)
	if dt <= 0 {
		dt = s.opts.Interval
	}
	secs := dt.Seconds()
	st := Status{
		TimeUnix:       now.Time.Unix(),
		Sent:           now.Sent,
		SentPPS:        float64(now.Sent-s.last.Sent) / secs,
		Recv:           now.Recv,
		RecvPPS:        float64(now.Recv-s.last.Recv) / secs,
		Success:        now.Success,
		Unique:         now.UniqueSucc,
		Duplicates:     now.Duplicates,
		Drops:          now.Drops,
		SendErrors:     now.SendErrors,
		Retries:        now.Retries,
		SendDrops:      now.SendDrops,
		SenderRestarts: now.SenderRestarts,
		DegradedSecs:   now.Degraded.Seconds(),

		RecvTruncated:   now.RecvTruncated,
		RecvUnsupported: now.RecvUnsupported,
		RecvChecksum:    now.RecvChecksum,
		RecvInvalid:     now.RecvInvalid,

		QuarantineSkips: now.QuarantineSkips,
		ParoleProbes:    now.ParoleProbes,
	}
	if now.Sent > 0 {
		st.HitRate = float64(now.UniqueSucc) / float64(now.Sent)
	}
	st.HitRate1m = s.windowedHitRate(now)
	if s.opts.Extra != nil {
		s.opts.Extra(&st, dt)
	}
	s.last = now
	if s.w == nil {
		return
	}
	switch s.opts.Format {
	case "json":
		_ = json.NewEncoder(s.w).Encode(&st)
	default:
		if s.opts.Header && !s.headed {
			s.headed = true
			fmt.Fprintln(s.w, CSVHeader())
		}
		fmt.Fprintf(s.w, "%d,%d,%.0f,%d,%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%d,%d,%d,%.6f,%.0f,%d,%d\n",
			st.TimeUnix,
			st.Sent, st.SentPPS,
			st.Recv, st.RecvPPS,
			st.Success, st.Unique, st.Duplicates, st.Drops,
			st.SendErrors, st.Retries, st.SendDrops, st.SenderRestarts,
			st.DegradedSecs,
			st.RecvTruncated, st.RecvUnsupported, st.RecvChecksum, st.RecvInvalid,
			st.HitRate1m, st.ControllerRatePPS, st.QuarantinedPrefixes,
			st.ParoleProbes)
	}
}

// Stop ends the loop after a final line. It is idempotent: concurrent
// and repeated calls all block until the final line is written, then
// return.
func (s *StatusWriter) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
