// Package monitor implements the real-time status stream — the third of
// the four output streams §5 prescribes (data, logs, status updates,
// metadata). Counters are lock-free atomics updated by send and receive
// goroutines; a snapshot loop emits one machine-parsable line per second,
// like ZMap's --status-updates-file.
package monitor

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Counters aggregates scan progress. All methods are safe for concurrent
// use.
type Counters struct {
	sent       atomic.Uint64
	recv       atomic.Uint64
	valid      atomic.Uint64
	success    atomic.Uint64
	uniqueSucc atomic.Uint64
	duplicates atomic.Uint64
	drops      atomic.Uint64

	// Send-path fault counters (§4.3 send-loop hardening): transport
	// errors, retry attempts, probes dropped after exhausting retries,
	// supervised sender restarts, and time spent with a degraded rate.
	sendErrors     atomic.Uint64
	retries        atomic.Uint64
	sendDrops      atomic.Uint64
	senderRestarts atomic.Uint64
	degradedNanos  atomic.Int64
}

// Sent increments packets sent.
func (c *Counters) Sent() { c.sent.Add(1) }

// SendError increments failed transport send attempts (transient or
// fatal).
func (c *Counters) SendError() { c.sendErrors.Add(1) }

// Retry increments send re-attempts after a transient transport error.
func (c *Counters) Retry() { c.retries.Add(1) }

// SendDrop increments probes abandoned after exhausting their retry
// budget. Dropped probes are never counted as sent.
func (c *Counters) SendDrop() { c.sendDrops.Add(1) }

// SenderRestart increments supervised restarts of sender goroutines
// after a panic or fatal transport error.
func (c *Counters) SenderRestart() { c.senderRestarts.Add(1) }

// AddDegraded accumulates wall time a sender spent below its configured
// rate share because the transport was failing.
func (c *Counters) AddDegraded(d time.Duration) {
	if d > 0 {
		c.degradedNanos.Add(int64(d))
	}
}

// Recv increments packets received (pre-validation).
func (c *Counters) Recv() { c.recv.Add(1) }

// Valid increments validated responses.
func (c *Counters) Valid() { c.valid.Add(1) }

// Success increments successful classifications; unique marks first
// sightings after dedup.
func (c *Counters) Success(unique bool) {
	c.success.Add(1)
	if unique {
		c.uniqueSucc.Add(1)
	}
}

// Duplicate increments deduplicated repeats.
func (c *Counters) Duplicate() { c.duplicates.Add(1) }

// AddDrops records receive-ring drops (gauge snapshot from the link).
func (c *Counters) AddDrops(n uint64) { c.drops.Store(n) }

// Snapshot is a point-in-time view of the counters.
type Snapshot struct {
	Time       time.Time
	Sent       uint64
	Recv       uint64
	Valid      uint64
	Success    uint64
	UniqueSucc uint64
	Duplicates uint64
	Drops      uint64

	SendErrors     uint64
	Retries        uint64
	SendDrops      uint64
	SenderRestarts uint64
	Degraded       time.Duration
}

// Snapshot captures current values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Time:           time.Now(),
		Sent:           c.sent.Load(),
		Recv:           c.recv.Load(),
		Valid:          c.valid.Load(),
		Success:        c.success.Load(),
		UniqueSucc:     c.uniqueSucc.Load(),
		Duplicates:     c.duplicates.Load(),
		Drops:          c.drops.Load(),
		SendErrors:     c.sendErrors.Load(),
		Retries:        c.retries.Load(),
		SendDrops:      c.sendDrops.Load(),
		SenderRestarts: c.senderRestarts.Load(),
		Degraded:       time.Duration(c.degradedNanos.Load()),
	}
}

// StatusWriter periodically emits CSV status lines:
// unix_ts,sent,sent_pps,recv,recv_pps,success,unique,duplicates,drops,
// send_errors,retries,send_drops,sender_restarts,degraded_secs.
type StatusWriter struct {
	w        io.Writer
	counters *Counters
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	last     Snapshot
}

// NewStatusWriter starts a status loop writing to w every interval. Call
// Stop to end it. A nil w disables output but still permits Stop.
func NewStatusWriter(w io.Writer, c *Counters, interval time.Duration) *StatusWriter {
	if interval <= 0 {
		interval = time.Second
	}
	s := &StatusWriter{
		w:        w,
		counters: c,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		last:     c.Snapshot(),
	}
	go s.loop()
	return s
}

func (s *StatusWriter) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.emit()
		case <-s.stop:
			s.emit()
			return
		}
	}
}

func (s *StatusWriter) emit() {
	now := s.counters.Snapshot()
	dt := now.Time.Sub(s.last.Time).Seconds()
	if dt <= 0 {
		dt = s.interval.Seconds()
	}
	if s.w != nil {
		fmt.Fprintf(s.w, "%d,%d,%.0f,%d,%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%.3f\n",
			now.Time.Unix(),
			now.Sent, float64(now.Sent-s.last.Sent)/dt,
			now.Recv, float64(now.Recv-s.last.Recv)/dt,
			now.Success, now.UniqueSucc, now.Duplicates, now.Drops,
			now.SendErrors, now.Retries, now.SendDrops, now.SenderRestarts,
			now.Degraded.Seconds())
	}
	s.last = now
}

// Stop ends the loop after a final line.
func (s *StatusWriter) Stop() {
	close(s.stop)
	<-s.done
}
