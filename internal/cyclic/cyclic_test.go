package cyclic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zmapgo/internal/mathx"
)

func TestGroupTableIsPrimeWithCorrectFactors(t *testing.T) {
	for _, g := range Groups() {
		if !mathx.IsPrime(g.P) {
			t.Errorf("group modulus %d is not prime", g.P)
		}
		want := mathx.DistinctPrimes(g.P - 1)
		if len(want) != len(g.PM1Factors) {
			t.Errorf("group %d: factor count %d, want %d", g.P, len(g.PM1Factors), len(want))
			continue
		}
		for i := range want {
			if want[i] != g.PM1Factors[i] {
				t.Errorf("group %d: factor[%d] = %d, want %d", g.P, i, g.PM1Factors[i], want[i])
			}
		}
	}
}

func TestGroupForOrder(t *testing.T) {
	cases := []struct {
		n     uint64
		wantP uint64
	}{
		{1, (1 << 8) + 1},
		{256, (1 << 8) + 1},
		{257, (1 << 16) + 1},
		{1 << 16, (1 << 16) + 1},
		{(1 << 16) + 1, (1 << 24) + 43},
		{1 << 32, (1 << 32) + 15},
		{1 << 48, (1 << 48) + 21},
	}
	for _, c := range cases {
		g, err := GroupForOrder(c.n)
		if err != nil {
			t.Fatalf("GroupForOrder(%d): %v", c.n, err)
		}
		if g.P != c.wantP {
			t.Errorf("GroupForOrder(%d).P = %d, want %d", c.n, g.P, c.wantP)
		}
	}
	if _, err := GroupForOrder((1 << 48) + 21); err == nil {
		t.Error("GroupForOrder beyond 2^48+20 should fail")
	}
}

func TestFindGeneratorProducesGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range Groups() {
		gen, attempts := FindGenerator(g, rng)
		if !mathx.IsGeneratorOfMultiplicativeGroup(gen, g.P, g.PM1Factors) {
			t.Errorf("group %d: %d is not a generator", g.P, gen)
		}
		if gen >= MaxGeneratorCandidate && g.P > MaxGeneratorCandidate {
			t.Errorf("group %d: generator %d exceeds 16-bit bound", g.P, gen)
		}
		if attempts <= 0 {
			t.Errorf("group %d: nonpositive attempt count %d", g.P, attempts)
		}
	}
}

func TestFindGeneratorAverageAttempts(t *testing.T) {
	// §4.1: the modern search averages about four attempts, because the
	// density of generators among candidates is phi(p-1)/(p-1) ~ 1/4.
	rng := rand.New(rand.NewSource(7))
	g, _ := GroupForOrder(1 << 32)
	const trials = 2000
	total := 0
	for i := 0; i < trials; i++ {
		_, attempts := FindGenerator(g, rng)
		total += attempts
	}
	avg := float64(total) / trials
	want := float64(g.P-1) / float64(mathx.EulerPhi(g.P-1))
	if avg < want*0.85 || avg > want*1.15 {
		t.Errorf("average attempts %.2f, want within 15%% of %.2f", avg, want)
	}
	if want < 3 || want > 5 {
		t.Errorf("analytic expected attempts %.2f, paper says ~4", want)
	}
}

func TestFindGeneratorAdditiveWorksForSmallBound(t *testing.T) {
	// The 2013 approach is fine when the usable bound (2^32) is large
	// relative to the modulus, as with the 2^24 group.
	rng := rand.New(rand.NewSource(3))
	g, _ := GroupForOrder(1 << 24)
	root := SmallestPrimitiveRoot(g)
	gen, _, ok := FindGeneratorAdditive(g, root, 1<<32, rng, 1000)
	if !ok {
		t.Fatal("additive search failed with generous bound")
	}
	if !mathx.IsGeneratorOfMultiplicativeGroup(gen, g.P, g.PM1Factors) {
		t.Errorf("additive search returned non-generator %d", gen)
	}
}

func TestFindGeneratorAdditiveFailsFor48BitGroup(t *testing.T) {
	// §4.1: for the 2^48 group only 1/2^32 of additive candidates map
	// below 2^16, so the old approach effectively never succeeds.
	rng := rand.New(rand.NewSource(4))
	g, _ := GroupForOrder(1 << 48)
	// Use a known small generator as the root (search would be slow).
	root := uint64(0)
	for c := uint64(2); c < 100; c++ {
		if mathx.IsGeneratorOfMultiplicativeGroup(c, g.P, g.PM1Factors) {
			root = c
			break
		}
	}
	if root == 0 {
		t.Fatal("no small primitive root found for 2^48+21")
	}
	_, attempts, ok := FindGeneratorAdditive(g, root, MaxGeneratorCandidate, rng, 20000)
	if ok {
		t.Error("additive search succeeded against 2^-32 odds; suspicious")
	}
	if attempts != 20000 {
		t.Errorf("attempts = %d, want exhaustion at 20000", attempts)
	}
}

func TestSmallestPrimitiveRoot(t *testing.T) {
	g := Group{P: 7, PM1Factors: []uint64{2, 3}}
	if r := SmallestPrimitiveRoot(g); r != 3 {
		t.Errorf("SmallestPrimitiveRoot(7) = %d, want 3", r)
	}
}

// fullWalk iterates an entire cycle and returns the visited elements.
func fullWalk(c Cycle) []uint64 {
	it := c.Iterate(0, c.Group.Order(), 1)
	out := make([]uint64, 0, c.Group.Order())
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

func TestCycleIsPermutation(t *testing.T) {
	// Walking the full cycle must visit every element of [1, P-1] exactly
	// once — the core statelessness guarantee.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := GroupForOrder(256)
		c := NewCycle(g, rng)
		seen := make(map[uint64]bool)
		for _, e := range fullWalk(c) {
			if e < 1 || e >= g.P {
				t.Fatalf("element %d out of range [1, %d)", e, g.P)
			}
			if seen[e] {
				t.Fatalf("element %d visited twice (seed %d, gen %d)", e, seed, c.Generator)
			}
			seen[e] = true
		}
		if uint64(len(seen)) != g.Order() {
			t.Fatalf("visited %d elements, want %d", len(seen), g.Order())
		}
	}
}

func TestCyclePermutationProperty(t *testing.T) {
	// Property: for the 2^16 group and arbitrary seeds, a full walk is a
	// bijection.
	g, _ := GroupForOrder(1 << 16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCycle(g, rng)
		seen := make([]bool, g.P)
		n := uint64(0)
		it := c.Iterate(0, g.Order(), 1)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			if seen[e] {
				return false
			}
			seen[e] = true
			n++
		}
		return n == g.Order()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentSeedsDifferentOrders(t *testing.T) {
	g, _ := GroupForOrder(256)
	c1 := NewCycle(g, rand.New(rand.NewSource(1)))
	c2 := NewCycle(g, rand.New(rand.NewSource(2)))
	w1, w2 := fullWalk(c1), fullWalk(c2)
	same := true
	for i := range w1 {
		if w1[i] != w2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two different seeds produced identical permutations")
	}
}

func TestElementMatchesIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, _ := GroupForOrder(1 << 16)
	c := NewCycle(g, rng)
	it := c.Iterate(0, 1000, 1)
	for i := uint64(0); i < 1000; i++ {
		e, ok := it.Next()
		if !ok {
			t.Fatal("iterator exhausted early")
		}
		if want := c.Element(i); e != want {
			t.Fatalf("position %d: iterator %d, Element %d", i, e, want)
		}
	}
}

func TestElementOffsetWraps(t *testing.T) {
	g, _ := GroupForOrder(256)
	c := Cycle{Group: g, Generator: SmallestPrimitiveRoot(g), Offset: g.Order() - 1}
	// Position 1 wraps to exponent 0 => element 1? No: exponent
	// (order-1+1) mod order = 0 => g^0 = 1.
	if e := c.Element(1); e != 1 {
		t.Errorf("wrapped element = %d, want 1 (g^0)", e)
	}
}

func TestIterateStride(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := GroupForOrder(256)
	c := NewCycle(g, rng)
	// A stride-3 walk must equal every third element of the stride-1 walk.
	full := fullWalk(c)
	it := c.Iterate(2, 50, 3)
	for i := 0; i < 50; i++ {
		e, ok := it.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		want := full[(2+3*i)%len(full)]
		if e != want {
			t.Fatalf("stride walk[%d] = %d, want %d", i, e, want)
		}
	}
	if _, ok := it.Next(); ok {
		t.Error("iterator should be exhausted after count elements")
	}
}

func TestIteratorZeroCount(t *testing.T) {
	g, _ := GroupForOrder(256)
	c := NewCycle(g, rand.New(rand.NewSource(1)))
	it := c.Iterate(0, 0, 1)
	if _, ok := it.Next(); ok {
		t.Error("zero-count iterator returned an element")
	}
	if it.Remaining() != 0 {
		t.Error("zero-count iterator has nonzero Remaining")
	}
}

func TestNewSpaceGroupSelection(t *testing.T) {
	cases := []struct {
		ips, ports uint64
		wantP      uint64
	}{
		{256, 1, (1 << 8) + 1},
		{1 << 16, 1, (1 << 16) + 1},
		{1 << 32, 1, (1 << 32) + 15},
		{1 << 32, 2, (1 << 34) + 25},   // 33 bits -> 2^34 group
		{1 << 32, 3, (1 << 34) + 25},   // 32+2=34 bits
		{1 << 32, 100, (1 << 40) + 15}, // 32+7=39 bits -> 2^40
		{1 << 32, 1 << 16, (1 << 48) + 21},
	}
	for _, c := range cases {
		s, err := NewSpace(c.ips, c.ports)
		if err != nil {
			t.Fatalf("NewSpace(%d,%d): %v", c.ips, c.ports, err)
		}
		if s.Group().P != c.wantP {
			t.Errorf("NewSpace(%d,%d) chose group %d, want %d", c.ips, c.ports, s.Group().P, c.wantP)
		}
	}
}

func TestNewSpaceErrors(t *testing.T) {
	if _, err := NewSpace(0, 1); err == nil {
		t.Error("NewSpace(0,1) should fail")
	}
	if _, err := NewSpace(1, 0); err == nil {
		t.Error("NewSpace(1,0) should fail")
	}
	if _, err := NewSpace(1<<33, 1<<16); err == nil {
		t.Error("NewSpace beyond 48 bits should fail")
	}
}

func TestSpaceDecodeEncodeRoundTrip(t *testing.T) {
	s, err := NewSpace(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	for ip := uint64(0); ip < 300; ip += 7 {
		for port := uint64(0); port < 5; port++ {
			elem := s.Encode(ip, port)
			gotIP, gotPort, ok := s.Decode(elem)
			if !ok || gotIP != ip || gotPort != port {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d,%v)", ip, port, elem, gotIP, gotPort, ok)
			}
		}
	}
}

func TestSpaceDecodeRejectsOutOfRange(t *testing.T) {
	s, err := NewSpace(300, 5) // 9+3=12 bits, group 2^16+1
	if err != nil {
		t.Fatal(err)
	}
	// Element encoding port index 5..7 must be rejected.
	elem := (uint64(0)<<3 | 5) + 1
	if _, _, ok := s.Decode(elem); ok {
		t.Error("port index 5 of 5 accepted")
	}
	// Element encoding IP index 300 must be rejected.
	elem = (uint64(300)<<3 | 0) + 1
	if _, _, ok := s.Decode(elem); ok {
		t.Error("IP index 300 of 300 accepted")
	}
}

func TestSpaceFullCoverage(t *testing.T) {
	// Iterating the full cycle and decoding must hit every (ip, port)
	// target exactly once — the multiport generalization of the
	// permutation property.
	s, err := NewSpace(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCycle(s.Group(), rand.New(rand.NewSource(11)))
	seen := make(map[[2]uint64]int)
	it := c.Iterate(0, s.Group().Order(), 1)
	skipped := uint64(0)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		ip, port, ok := s.Decode(e)
		if !ok {
			skipped++
			continue
		}
		seen[[2]uint64{ip, port}]++
	}
	if uint64(len(seen)) != s.Targets() {
		t.Fatalf("covered %d targets, want %d", len(seen), s.Targets())
	}
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("target %v visited %d times", k, v)
		}
	}
	if skipped != s.Group().Order()-s.Targets() {
		t.Errorf("skipped %d, want %d", skipped, s.Group().Order()-s.Targets())
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	s, _ := NewSpace(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("Encode out of range did not panic")
		}
	}()
	s.Encode(10, 0)
}

func BenchmarkIteratorNext(b *testing.B) {
	g, _ := GroupForOrder(1 << 32)
	c := NewCycle(g, rand.New(rand.NewSource(1)))
	it := c.Iterate(0, ^uint64(0), 1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		e, _ := it.Next()
		sink = e
	}
	benchSink = sink
}

func BenchmarkIteratorNext48BitGroup(b *testing.B) {
	g, _ := GroupForOrder(1 << 48)
	c := NewCycle(g, rand.New(rand.NewSource(1)))
	it := c.Iterate(0, ^uint64(0), 1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		e, _ := it.Next()
		sink = e
	}
	benchSink = sink
}

func BenchmarkFindGenerator(b *testing.B) {
	g, _ := GroupForOrder(1 << 48)
	rng := rand.New(rand.NewSource(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		gen, _ := FindGenerator(g, rng)
		sink = gen
	}
	benchSink = sink
}

func BenchmarkSpaceDecode(b *testing.B) {
	s, _ := NewSpace(1<<32, 100)
	var a, c uint64
	for i := 0; i < b.N; i++ {
		a, c, _ = s.Decode(uint64(i)%(s.Group().P-1) + 1)
	}
	benchSink = a + c
}

var benchSink uint64
