// Package cyclic implements ZMap's stateless pseudorandom target generation.
//
// ZMap visits every (IP, port) target exactly once, in an order that looks
// random, without keeping any per-target state. It does so by iterating a
// cyclic multiplicative group (Z/pZ)* for a prime p slightly larger than the
// number of targets: starting from a random generator g and a random initial
// exponent, repeatedly multiplying by g walks the full group in a
// pseudorandom order, and each group element decodes to one target. Elements
// that decode outside the requested target space are skipped.
//
// The package provides:
//
//   - the fixed table of prime-order groups ZMap uses (2^8+1 up to 2^48+21)
//     with precomputed factorizations of p-1,
//   - the modern generator search (random g in [2, 2^16), verified against
//     the distinct prime factors of p-1), described in §4.1 of "Ten Years
//     of ZMap",
//   - the original 2013 generator search (additive-group mapping) kept as a
//     baseline so its breakdown on 48-bit groups can be demonstrated, and
//   - iterators over exponent ranges and strides, which the shard package
//     composes into interleaved and pizza sharding.
//
// Note: the IMC paper's text says the largest group is 2^48+23; that value
// is composite. The actual ZMap group modulus is 2^48+21, which is what we
// use (verified prime in tests).
package cyclic

import (
	"errors"
	"fmt"
	"math/rand"

	"zmapgo/internal/mathx"
)

// Group is a multiplicative group (Z/pZ)* of prime modulus P. Its order is
// P-1, and PM1Factors lists the distinct prime factors of P-1, which is
// everything needed to test whether a candidate is a generator.
type Group struct {
	P          uint64   // prime modulus
	PM1Factors []uint64 // distinct prime factors of P-1, ascending
}

// Order returns the order of the group, P-1.
func (g Group) Order() uint64 { return g.P - 1 }

// groups is ZMap's group table: for each target-space size there is a prime
// barely above a power of two, so at most ~half of iterated elements are
// skipped (and usually far fewer). The factorizations are precomputed, as
// the paper describes, so generator checking is a handful of modular
// exponentiations at scan start.
var groups = []Group{
	{(1 << 8) + 1, []uint64{2}},                           // 257
	{(1 << 16) + 1, []uint64{2}},                          // 65537
	{(1 << 24) + 43, []uint64{2, 23, 103, 3541}},          // 16777259
	{(1 << 28) + 3, []uint64{2, 3, 19, 87211}},            // 268435459
	{(1 << 32) + 15, []uint64{2, 3, 5, 131, 364289}},      // 4294967311
	{(1 << 34) + 25, []uint64{2, 83, 1277, 20261}},        //
	{(1 << 36) + 31, []uint64{2, 163, 883, 238727}},       //
	{(1 << 40) + 15, []uint64{2, 3, 5, 36650387593}},      //
	{(1 << 44) + 7, []uint64{2, 11, 53, 97, 155542661}},   //
	{(1 << 48) + 21, []uint64{2, 3, 7, 1361, 2462081249}}, //
}

// Groups returns a copy of the group table, smallest first.
func Groups() []Group {
	out := make([]Group, len(groups))
	copy(out, groups)
	return out
}

// ErrTooLarge is returned when a target space exceeds the largest group
// (2^48 targets: the full IPv4 space times 2^16 ports).
var ErrTooLarge = errors.New("cyclic: target space exceeds 2^48 largest group")

// GroupForOrder returns the smallest group whose order (P-1) is at least n,
// i.e. that can cover a target space of n elements.
func GroupForOrder(n uint64) (Group, error) {
	for _, g := range groups {
		if g.Order() >= n {
			return g, nil
		}
	}
	return Group{}, ErrTooLarge
}

// MaxGeneratorCandidate bounds random generator candidates to 16 bits so
// that elem*gen products stay within 64-bit arithmetic for the 48-bit
// groups (48+16 = 64). The modern search draws from [2, 2^16).
const MaxGeneratorCandidate = 1 << 16

// FindGenerator implements the modern (factorization-based) generator
// search from §4.1: draw random candidates g in [2, 2^16) and accept the
// first with g^((p-1)/k) != 1 (mod p) for every distinct prime k | p-1.
// It returns the generator and the number of candidates tested; the paper
// reports this averages about four attempts.
func FindGenerator(g Group, rng *rand.Rand) (gen uint64, attempts int) {
	for {
		attempts++
		candidate := uint64(rng.Intn(MaxGeneratorCandidate-2)) + 2
		if candidate >= g.P {
			// Tiny groups (2^8+1) can draw out-of-range candidates.
			candidate = candidate%(g.P-2) + 2
		}
		if mathx.IsGeneratorOfMultiplicativeGroup(candidate, g.P, g.PM1Factors) {
			return candidate, attempts
		}
	}
}

// FindGeneratorAdditive implements the original 2013 search: pick a random
// element a of the additive group (Z/(p-1)Z, +); a generates the additive
// group iff gcd(a, p-1) = 1, which is cheap to test. Then map it into the
// multiplicative group as root^a mod p, where root is any fixed primitive
// root of p. The result is always a generator of (Z/pZ)*, but it lands
// anywhere in [2, p), so when the usable range is capped at maxCandidate
// (2^32 for single-port scans, 2^16 for 48-bit multiport groups) most
// mapped generators are unusable. maxAttempts bounds the search; ok=false
// reports exhaustion. For the 2^48 group, the usable fraction is
// 2^16/2^48 = 2^-32, which is why ZMap flipped the approach.
func FindGeneratorAdditive(g Group, root uint64, maxCandidate uint64, rng *rand.Rand, maxAttempts int) (gen uint64, attempts int, ok bool) {
	order := g.Order()
	for attempts < maxAttempts {
		attempts++
		a := uint64(rng.Int63n(int64(order-1))) + 1
		if mathx.GCD(a, order) != 1 {
			continue // not an additive generator; redraw
		}
		candidate := mathx.PowMod(root, a, g.P)
		if candidate >= 2 && candidate < maxCandidate {
			return candidate, attempts, true
		}
	}
	return 0, attempts, false
}

// SmallestPrimitiveRoot returns the smallest generator of (Z/pZ)*. It is
// used to seed FindGeneratorAdditive, mirroring the hard-coded known roots
// the 2013 implementation shipped.
func SmallestPrimitiveRoot(g Group) uint64 {
	for candidate := uint64(2); candidate < g.P; candidate++ {
		if mathx.IsGeneratorOfMultiplicativeGroup(candidate, g.P, g.PM1Factors) {
			return candidate
		}
	}
	panic("cyclic: no primitive root found (modulus not prime?)")
}

// Cycle is one full pseudorandom permutation of a group: a generator plus a
// random starting offset, so every scan visits targets in a fresh order.
type Cycle struct {
	Group     Group
	Generator uint64
	// Offset is the exponent of the first element; iteration covers
	// exponents [Offset, Offset+Order) mod Order.
	Offset uint64
}

// NewCycle creates a permutation of g seeded by rng: it runs the modern
// generator search and draws a random starting offset.
func NewCycle(g Group, rng *rand.Rand) Cycle {
	gen, _ := FindGenerator(g, rng)
	return Cycle{
		Group:     g,
		Generator: gen,
		Offset:    uint64(rng.Int63n(int64(g.Order()))),
	}
}

// Element returns the group element at exponent position e (mod order),
// relative to the cycle's offset: Generator^(Offset+e) mod P.
func (c Cycle) Element(e uint64) uint64 {
	order := c.Group.Order()
	exp := c.Offset % order
	e %= order
	exp += e
	if exp >= order {
		exp -= order
	}
	// g^order = 1, so exponents reduce mod order.
	return mathx.PowMod(c.Generator, exp, c.Group.P)
}

// Iterator walks count elements of a cycle starting at exponent position
// start (relative to the cycle offset), advancing stride exponent positions
// per step. A full walk is start=0, count=order, stride=1. Sharding carves
// the exponent space into ranges (pizza) or residue classes (interleaved)
// and hands each worker its own Iterator; workers share no state.
type Iterator struct {
	p         uint64
	cur       uint64 // current element, valid when remaining > 0
	step      uint64 // Generator^stride mod P
	remaining uint64
}

// Iterate returns an iterator over the exponent positions
// start, start+stride, ..., start+(count-1)*stride, all relative to the
// cycle's random offset.
func (c Cycle) Iterate(start, count, stride uint64) *Iterator {
	order := c.Group.Order()
	if stride == 0 {
		stride = 1
	}
	return &Iterator{
		p:         c.Group.P,
		cur:       c.Element(start),
		step:      mathx.PowMod(c.Generator, stride%order, c.Group.P),
		remaining: count,
	}
}

// Next returns the next group element, or ok=false when the iterator is
// exhausted. Elements are in [1, P-1].
func (it *Iterator) Next() (elem uint64, ok bool) {
	if it.remaining == 0 {
		return 0, false
	}
	it.remaining--
	elem = it.cur
	it.cur = mathx.MulMod(it.cur, it.step, it.p)
	return elem, true
}

// Remaining returns how many elements the iterator has yet to produce.
func (it *Iterator) Remaining() uint64 { return it.remaining }

// Space maps group elements to (IP index, port index) targets using the
// bit-split encoding from §4.1: the top ceil(log2 IPs) bits of the
// zero-based element select the IP and the bottom ceil(log2 Ports) bits
// select the port. Elements whose decoded indices fall outside the actual
// target counts are skipped by the caller (ok=false).
type Space struct {
	NumIPs   uint64
	NumPorts uint64
	ipBits   uint
	portBits uint
	group    Group
}

// NewSpace selects the smallest group able to cover numIPs*numPorts targets
// under the bit-split encoding (which needs 2^(ipBits+portBits) elements).
func NewSpace(numIPs, numPorts uint64) (*Space, error) {
	if numIPs == 0 || numPorts == 0 {
		return nil, fmt.Errorf("cyclic: empty target space (%d IPs x %d ports)", numIPs, numPorts)
	}
	ipBits := mathx.Log2Ceil(numIPs)
	portBits := mathx.Log2Ceil(numPorts)
	if ipBits+portBits > 48 {
		return nil, ErrTooLarge
	}
	g, err := GroupForOrder(uint64(1) << (ipBits + portBits))
	if err != nil {
		return nil, err
	}
	return &Space{
		NumIPs:   numIPs,
		NumPorts: numPorts,
		ipBits:   ipBits,
		portBits: portBits,
		group:    g,
	}, nil
}

// Group returns the group backing the space.
func (s *Space) Group() Group { return s.group }

// Targets returns the number of real targets, NumIPs * NumPorts.
func (s *Space) Targets() uint64 { return s.NumIPs * s.NumPorts }

// Decode maps a group element (in [1, P-1]) to target indices. ok is false
// when the element falls outside the requested target space and must be
// skipped; because the group modulus is barely above 2^(ipBits+portBits)
// and indices are dense, the expected skip fraction is
// 1 - Targets()/Order().
func (s *Space) Decode(elem uint64) (ipIdx, portIdx uint64, ok bool) {
	v := elem - 1 // elements are 1..P-1; indices are zero-based
	portIdx = v & ((1 << s.portBits) - 1)
	ipIdx = v >> s.portBits
	if ipIdx >= s.NumIPs || portIdx >= s.NumPorts {
		return 0, 0, false
	}
	return ipIdx, portIdx, true
}

// Encode is the inverse of Decode: it returns the group element that
// decodes to (ipIdx, portIdx). It panics if the indices are out of range.
func (s *Space) Encode(ipIdx, portIdx uint64) uint64 {
	if ipIdx >= s.NumIPs || portIdx >= s.NumPorts {
		panic("cyclic: Encode index out of range")
	}
	return (ipIdx<<s.portBits | portIdx) + 1
}
