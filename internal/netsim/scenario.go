package netsim

import (
	"sync"
	"sync/atomic"
	"time"

	"zmapgo/internal/packet"
)

// Network weather: a scenario-driven fault layer over the simulated
// link. A Scenario is a deterministic, seeded, time-scripted timeline
// of adverse events — bursty loss, latency ramps, blackouts, moving
// capacity knees, asymmetric loss, unreachable storms — that plays over
// the existing host/path model. The controller-facing point: each event
// class stresses a different health-controller signal, so the scenario
// suite is the gauntlet every controller change is re-validated against
// (see DESIGN.md "Network weather").
//
// Every decision is a pure function of (scenario seed, event index,
// per-event packet ordinal), so a scenario replays byte-identically
// from its seed regardless of thread interleaving; trace_test.go pins
// this property.

// Scenario event types.
const (
	// ScenarioBurstyLoss is Gilbert-Elliott two-state bursty loss on the
	// forward path: per-packet Markov transitions between a good state
	// (LossGood) and a bad state (LossBad). Stresses the controller's
	// ability to distinguish loss bursts from sustained congestion.
	ScenarioBurstyLoss = "bursty_loss"
	// ScenarioLatency adds ramped extra delay plus uniform jitter to
	// responses (optionally per-prefix). Stresses cooldown/drain and the
	// windowed hit-rate math (late responses land in later windows).
	ScenarioLatency = "latency"
	// ScenarioBlackout silently drops every probe into a prefix for a
	// bounded interval — the transient null-route that must be
	// quarantined and then paroled, not banned forever.
	ScenarioBlackout = "blackout"
	// ScenarioCrossTraffic is a time-varying capacity knee: competing
	// traffic temporarily lowers the path's probes/second budget, with
	// an ICMP-unreachable generation budget for the overflow. Stresses
	// the AIMD decrease/recovery loop.
	ScenarioCrossTraffic = "cross_traffic"
	// ScenarioAsymLoss applies independent loss rates to the forward
	// (probe) and reverse (response) directions. Stresses hit-rate
	// attribution: reverse loss looks identical to unresponsive hosts.
	ScenarioAsymLoss = "asym_loss"
	// ScenarioUnreachStorm forges ICMP destination-unreachables at up to
	// StormPPS toward the scanner. ValidQuote=true models an on-path
	// adversary quoting real probes (passes receive validation — only
	// the controller's decrease clamp defends); false models off-path
	// spoofing with a garbled quote (receive validation rejects it).
	ScenarioUnreachStorm = "unreach_storm"
)

// ScenarioEvent is one scripted fault in a network-weather timeline.
// Fields beyond Type/AtSecs/DurationSecs/Prefix are per-type parameters;
// see the Scenario* constants for which apply.
type ScenarioEvent struct {
	Type string `json:"type"`

	// AtSecs and DurationSecs bound the active window on the scenario
	// clock (seconds since the link's first probe). DurationSecs 0
	// keeps the event active to the end of the scan.
	AtSecs       float64 `json:"at_secs"`
	DurationSecs float64 `json:"duration_secs,omitempty"`

	// Prefix restricts the event to IPv4 destinations inside a CIDR
	// ("10.1.0.0/16"); empty applies everywhere. Required for blackout.
	Prefix string `json:"prefix,omitempty"`

	// Gilbert-Elliott parameters (bursty_loss): per-packet transition
	// probabilities and per-state loss rates.
	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad,omitempty"`

	// Latency parameters: extra response delay ramped in over RampSecs,
	// plus uniform jitter in [0, JitterMS).
	DelayMS  float64 `json:"delay_ms,omitempty"`
	JitterMS float64 `json:"jitter_ms,omitempty"`
	RampSecs float64 `json:"ramp_secs,omitempty"`

	// Cross-traffic parameters: the temporary capacity knee in
	// probes/second and its unreachable-generation budget.
	CapacityPPS float64 `json:"capacity_pps,omitempty"`
	ICMPPPS     float64 `json:"icmp_pps,omitempty"`

	// Asymmetric loss parameters.
	ForwardLoss float64 `json:"forward_loss,omitempty"`
	ReverseLoss float64 `json:"reverse_loss,omitempty"`

	// Unreachable-storm parameters.
	StormPPS   float64 `json:"storm_pps,omitempty"`
	ValidQuote bool    `json:"valid_quote,omitempty"`
}

// Scenario is a deterministic network-weather script: a seed plus an
// event timeline. Load one from JSON with LoadScenario/ParseScenario.
type Scenario struct {
	Name   string          `json:"name"`
	Seed   uint64          `json:"seed"`
	Events []ScenarioEvent `json:"events"`
}

// WeatherStats counts the weather layer's interventions, by class.
type WeatherStats struct {
	BurstyDropped   uint64 // probes lost to Gilbert-Elliott bursts
	BlackoutDropped uint64 // probes swallowed by a blacked-out prefix
	ForwardDropped  uint64 // probes lost to asym_loss forward loss
	ReverseDropped  uint64 // responses lost to asym_loss reverse loss
	KneeDropped     uint64 // probes dropped at a cross-traffic knee
	KneeICMP        uint64 // unreachables generated at the knee
	StormICMP       uint64 // forged unreachables injected by storms
	Delayed         uint64 // responses given extra latency
}

// Draw domains for the per-event decision streams.
const (
	wxDrawGEMove uint64 = iota + 1
	wxDrawGELoss
	wxDrawForward
	wxDrawReverse
	wxDrawJitter
)

// WeatherObserver receives a playing weather layer's lifecycle, for the
// scan flight recorder (or any other instrumentation) to put scenario
// faults on the same timeline as the controller's decisions. Like
// DelayRecorder, it is a local interface so netsim stays free of
// dependencies on the instrumentation layer.
//
// WeatherTransition fires once when an event's window opens (began=true)
// and once when it closes; an event with no end stays open. WeatherDrop
// fires for every probe or response a scripted fault consumes. Both may
// be called concurrently from sender goroutines; implementations must be
// safe for concurrent use.
type WeatherObserver interface {
	WeatherTransition(began bool, index int, ev ScenarioEvent, at time.Duration)
	WeatherDrop(class string, dst uint32, at time.Duration)
}

// Weather-drop classes passed to WeatherObserver.WeatherDrop.
const (
	WeatherDropBlackout = "blackout"
	WeatherDropBursty   = "bursty_loss"
	WeatherDropForward  = "asym_forward"
	WeatherDropReverse  = "asym_reverse"
	WeatherDropKnee     = "knee"
)

// weatherEvent is one compiled scenario event with its runtime state.
type weatherEvent struct {
	ScenarioEvent
	idx        uint64
	at, until  time.Duration
	prefixNet  uint32
	prefixMask uint32 // 0 = matches everything

	// announced tracks observer notification: 0 pending, 1 begun, 2
	// ended. CAS transitions so concurrent senders announce once.
	announced atomic.Uint32

	knee  *tokenBucket // cross_traffic capacity
	icmp  *tokenBucket // cross_traffic unreachable budget
	storm *tokenBucket // unreach_storm flood budget

	// Gilbert-Elliott chain: state plus the per-event packet ordinal
	// that keys its decision stream. Guarded by mu so the chain advances
	// exactly once per consulted packet under concurrent senders.
	mu    sync.Mutex
	geBad bool
	geOrd uint64

	fwdOrd atomic.Uint64 // stateless forward-loss ordinal
	revOrd atomic.Uint64 // stateless reverse-loss/jitter ordinal
}

func (ev *weatherEvent) active(el time.Duration) bool {
	return el >= ev.at && el < ev.until
}

func (ev *weatherEvent) matches(dst uint32, isV4 bool) bool {
	if ev.prefixMask == 0 {
		return true
	}
	return isV4 && dst&ev.prefixMask == ev.prefixNet
}

// Weather is a compiled Scenario attached to a Link. The scenario clock
// starts at the first probe through the link.
type Weather struct {
	name   string
	seed   uint64
	events []*weatherEvent

	startMu sync.Mutex
	started bool
	start   time.Time

	observer WeatherObserver // nil = unobserved

	burstyDropped   atomic.Uint64
	blackoutDropped atomic.Uint64
	forwardDropped  atomic.Uint64
	reverseDropped  atomic.Uint64
	kneeDropped     atomic.Uint64
	kneeICMP        atomic.Uint64
	stormICMP       atomic.Uint64
	delayed         atomic.Uint64
}

// NewWeather compiles a scenario into a playable weather layer. The
// scenario must be valid (see Scenario.Validate); LoadScenario and
// ParseScenario return only valid scenarios.
func NewWeather(sc *Scenario) (*Weather, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w := &Weather{name: sc.Name, seed: sc.Seed}
	for i, e := range sc.Events {
		ev := &weatherEvent{
			ScenarioEvent: e,
			idx:           uint64(i),
			at:            time.Duration(e.AtSecs * float64(time.Second)),
			until:         time.Duration(1<<62 - 1),
		}
		if e.DurationSecs > 0 {
			ev.until = ev.at + time.Duration(e.DurationSecs*float64(time.Second))
		}
		if e.Prefix != "" {
			net, mask, err := parseCIDRv4(e.Prefix)
			if err != nil {
				return nil, err
			}
			ev.prefixNet, ev.prefixMask = net, mask
		}
		switch e.Type {
		case ScenarioCrossTraffic:
			burst := e.CapacityPPS / 50
			if burst < 16 {
				burst = 16
			}
			ev.knee = newTokenBucket(e.CapacityPPS, burst)
			icmpBurst := e.ICMPPPS / 50
			if icmpBurst < 8 {
				icmpBurst = 8
			}
			ev.icmp = newTokenBucket(e.ICMPPPS, icmpBurst)
		case ScenarioUnreachStorm:
			burst := e.StormPPS / 50
			if burst < 8 {
				burst = 8
			}
			ev.storm = newTokenBucket(e.StormPPS, burst)
		}
		w.events = append(w.events, ev)
	}
	return w, nil
}

// Stats reports the weather layer's intervention counters.
func (w *Weather) Stats() WeatherStats {
	return WeatherStats{
		BurstyDropped:   w.burstyDropped.Load(),
		BlackoutDropped: w.blackoutDropped.Load(),
		ForwardDropped:  w.forwardDropped.Load(),
		ReverseDropped:  w.reverseDropped.Load(),
		KneeDropped:     w.kneeDropped.Load(),
		KneeICMP:        w.kneeICMP.Load(),
		StormICMP:       w.stormICMP.Load(),
		Delayed:         w.delayed.Load(),
	}
}

// SetObserver attaches lifecycle instrumentation. Call before the scan
// starts; concurrent Sends observe it racily otherwise.
func (w *Weather) SetObserver(obs WeatherObserver) { w.observer = obs }

// elapsed converts wall time to the scenario clock, anchoring the clock
// at the first call (the link's first probe).
func (w *Weather) elapsed(now time.Time) time.Duration {
	w.startMu.Lock()
	if !w.started {
		w.started = true
		w.start = now
	}
	start := w.start
	w.startMu.Unlock()
	return now.Sub(start)
}

// notice announces event-window transitions to the observer. Called per
// probe from the send path: transitions are detected at packet times, so
// an end is announced on the first probe after the window closes. The
// per-event check is two time comparisons; the CAS runs only at the
// transitions themselves.
func (w *Weather) notice(el time.Duration) {
	obs := w.observer
	if obs == nil {
		return
	}
	for _, ev := range w.events {
		switch ev.announced.Load() {
		case 0:
			if el >= ev.at && ev.announced.CompareAndSwap(0, 1) {
				obs.WeatherTransition(true, int(ev.idx), ev.ScenarioEvent, el)
			}
		case 1:
			if el >= ev.until && ev.announced.CompareAndSwap(1, 2) {
				obs.WeatherTransition(false, int(ev.idx), ev.ScenarioEvent, el)
			}
		}
	}
}

// noteDrop reports one fault-consumed packet to the observer.
func (w *Weather) noteDrop(class string, dst uint32, el time.Duration) {
	if obs := w.observer; obs != nil {
		obs.WeatherDrop(class, dst, el)
	}
}

// draw produces one uniform decision for (event, domain, ordinal) —
// a pure function of the scenario seed, so playback is deterministic.
func (w *Weather) draw(ev *weatherEvent, domain, ordinal uint64) float64 {
	return uniform(splitmix64(w.seed ^ ev.idx<<48 ^ domain<<40 ^ ordinal))
}

// geDrop advances the event's Gilbert-Elliott chain by one packet and
// reports whether that packet is lost.
func (w *Weather) geDrop(ev *weatherEvent) bool {
	ev.mu.Lock()
	n := ev.geOrd
	ev.geOrd++
	if ev.geBad {
		if w.draw(ev, wxDrawGEMove, n) < ev.PBadGood {
			ev.geBad = false
		}
	} else {
		if w.draw(ev, wxDrawGEMove, n) < ev.PGoodBad {
			ev.geBad = true
		}
	}
	loss := ev.LossGood
	if ev.geBad {
		loss = ev.LossBad
	}
	ev.mu.Unlock()
	if loss <= 0 {
		return false
	}
	return w.draw(ev, wxDrawGELoss, n) < loss
}

// forwardDecision is the weather layer's verdict on one outbound probe.
type forwardDecision struct {
	drop       bool
	stormValid bool // inject a forged unreachable quoting the probe
	stormSpoof bool // inject a forged unreachable with a garbled quote
	kneeICMP   bool // the cross-traffic knee generated an unreachable
}

// forwardDecide applies every active event to one outbound probe at
// scenario time el. Drop-type events are evaluated in script order and
// the first drop wins (the probe never reaches later bottlenecks);
// unreachable storms are off-path — the adversary forges unreachables
// for observed probes regardless of their fate — so they are evaluated
// for every probe.
func (w *Weather) forwardDecide(dst uint32, isV4 bool, el time.Duration) forwardDecision {
	w.notice(el)
	var d forwardDecision
	for _, ev := range w.events {
		if !ev.active(el) || !ev.matches(dst, isV4) {
			continue
		}
		if ev.Type == ScenarioUnreachStorm {
			if isV4 && ev.storm.take(el.Seconds()) {
				if ev.ValidQuote {
					d.stormValid = true
				} else {
					d.stormSpoof = true
				}
			}
			continue
		}
		if d.drop {
			continue
		}
		switch ev.Type {
		case ScenarioBlackout:
			w.blackoutDropped.Add(1)
			w.noteDrop(WeatherDropBlackout, dst, el)
			d.drop = true
		case ScenarioBurstyLoss:
			if w.geDrop(ev) {
				w.burstyDropped.Add(1)
				w.noteDrop(WeatherDropBursty, dst, el)
				d.drop = true
			}
		case ScenarioAsymLoss:
			if ev.ForwardLoss > 0 &&
				w.draw(ev, wxDrawForward, ev.fwdOrd.Add(1)) < ev.ForwardLoss {
				w.forwardDropped.Add(1)
				w.noteDrop(WeatherDropForward, dst, el)
				d.drop = true
			}
		case ScenarioCrossTraffic:
			if !ev.knee.take(el.Seconds()) {
				w.kneeDropped.Add(1)
				w.noteDrop(WeatherDropKnee, dst, el)
				d.drop = true
				if ev.ICMPPPS > 0 && isV4 && ev.icmp.take(el.Seconds()) {
					d.kneeICMP = true
				}
			}
		}
	}
	return d
}

// reverseDecide applies active events to one inbound response from src
// at scenario time el: reverse loss drops it, latency events delay it.
func (w *Weather) reverseDecide(src uint32, el time.Duration) (drop bool, extra time.Duration) {
	for _, ev := range w.events {
		if !ev.active(el) || !ev.matches(src, true) {
			continue
		}
		switch ev.Type {
		case ScenarioAsymLoss:
			if ev.ReverseLoss > 0 &&
				w.draw(ev, wxDrawReverse, ev.revOrd.Add(1)) < ev.ReverseLoss {
				w.reverseDropped.Add(1)
				w.noteDrop(WeatherDropReverse, src, el)
				return true, 0
			}
		case ScenarioLatency:
			ramp := 1.0
			if ev.RampSecs > 0 {
				ramp = (el - ev.at).Seconds() / ev.RampSecs
				if ramp > 1 {
					ramp = 1
				}
			}
			ms := ev.DelayMS
			if ev.JitterMS > 0 {
				ms += ev.JitterMS * w.draw(ev, wxDrawJitter, ev.revOrd.Add(1))
			}
			if ms > 0 {
				w.delayed.Add(1)
				extra += time.Duration(ramp * ms * float64(time.Millisecond))
			}
		}
	}
	return false, extra
}

// SetWeather installs a compiled weather layer on the link. Call before
// the scan starts; concurrent Sends observe it racily otherwise.
func (l *Link) SetWeather(w *Weather) {
	l.weather = w
	if l.weatherObs != nil {
		w.SetObserver(l.weatherObs)
	}
}

// SetWeatherObserver attaches scenario instrumentation to the link's
// weather layer — now if one is installed, or at SetWeather time
// otherwise, so Compile-time wiring works in either order. Call before
// the scan starts.
func (l *Link) SetWeatherObserver(obs WeatherObserver) {
	l.weatherObs = obs
	if l.weather != nil {
		l.weather.SetObserver(obs)
	}
}

// WeatherStats reports the installed weather layer's counters (zero
// value when no scenario is installed).
func (l *Link) WeatherStats() WeatherStats {
	if l.weather == nil {
		return WeatherStats{}
	}
	return l.weather.Stats()
}

// weatherSend applies the forward-path weather to one probe: it may
// inject forged unreachables toward the scanner and reports whether the
// probe was consumed.
func (l *Link) weatherSend(frame []byte, dst uint32, isV4 bool, el time.Duration) bool {
	w := l.weather
	d := w.forwardDecide(dst, isV4, el)
	if isV4 && (d.stormValid || d.stormSpoof) {
		if resp := buildStormUnreach(frame, dst, d.stormValid); resp != nil {
			w.stormICMP.Add(1)
			l.schedule(l.in.RTT(dst)/2, resp)
		}
	}
	if d.kneeICMP && isV4 {
		if resp := buildCongestionUnreach(frame, dst); resp != nil {
			w.kneeICMP.Add(1)
			l.schedule(l.in.RTT(dst)/2, resp)
		}
	}
	return d.drop
}

// buildStormUnreach forges the adversarial ICMP destination-unreachable
// of an unreachable storm. With validQuote it is indistinguishable from
// a congested router's signal (quotes the real probe); without, the
// quoted source is garbled — well-formed and correctly checksummed, but
// rejected by the receive path's quoted-packet validation.
func buildStormUnreach(probe []byte, dst uint32, validQuote bool) []byte {
	raw := probe[packet.EthernetHeaderLen:]
	if len(raw) < packet.IPv4HeaderLen+8 {
		return nil
	}
	var quote [packet.IPv4HeaderLen + 8]byte
	copy(quote[:], raw)
	// Quoted source = the scanner's address = where the ICMP goes.
	scanner := uint32(quote[12])<<24 | uint32(quote[13])<<16 |
		uint32(quote[14])<<8 | uint32(quote[15])
	if !validQuote {
		// Off-path spoofer guessing at the scanner's traffic: the quoted
		// inner packet claims a source that is not the scanner.
		quote[12] ^= 0x5A
		quote[14] ^= 0xA5
	}
	router := dst&0xFFFF0000 | 0x00FE
	var ethDst packet.MAC
	copy(ethDst[:], probe[6:12])
	buf := getFrame()
	buf = packet.AppendEthernet(buf, hostMAC, ethDst, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolICMP, Src: router, Dst: scanner,
	}, packet.ICMPHeaderLen+len(quote))
	buf = packet.AppendICMPEcho(buf, packet.ICMPDestUnreach, 0, 0, quote[:])
	return buf
}
