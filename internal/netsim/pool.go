package netsim

// Response frame pooling. The simulator's receive path used to allocate
// a fresh []byte per delivered frame, which dominated the scanner's
// steady-state allocation profile in benchmarks. Frames now come from a
// shared free list and flow: builder -> link ring -> consumer ->
// Release -> free list. Consumers that do not release (old tests)
// simply leave buffers to the GC, so pooling is strictly optional.
//
// A buffered channel rather than sync.Pool: the pool holds plain
// []byte values and a channel exchanges them without boxing the slice
// header into an interface, keeping Get/Put themselves alloc-free.

const (
	// frameBufCap is the capacity of pooled buffers; every simulated
	// response fits (the largest is a DNS answer well under 200 bytes).
	// Buffers that grew past it stay in the pool; smaller foreign
	// buffers handed to PutFrame are rejected so the pool never shrinks.
	frameBufCap = 256

	poolSize = 4096
)

var framePool = make(chan []byte, poolSize)

// getFrame returns an empty frame buffer with at least frameBufCap
// capacity, recycled when possible.
func getFrame() []byte {
	select {
	case b := <-framePool:
		return b[:0]
	default:
		return make([]byte, 0, frameBufCap)
	}
}

// PutFrame recycles a frame buffer previously delivered by a Link (or a
// fault wrapper around one). Callers must not touch the slice after
// releasing it. Buffers of foreign origin (too small) are dropped, and
// a full pool discards excess buffers, so PutFrame never blocks.
func PutFrame(b []byte) {
	if cap(b) < frameBufCap {
		return
	}
	select {
	case framePool <- b[:0]:
	default:
	}
}
