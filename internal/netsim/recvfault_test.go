package netsim

import (
	"testing"
	"time"

	"zmapgo/internal/packet"
)

// chanTransport is a minimal inner transport for injector tests.
type chanTransport struct {
	ch   chan []byte
	sent uint64
}

func (c *chanTransport) Send(frame []byte) error { c.sent++; return nil }
func (c *chanTransport) Recv() <-chan []byte     { return c.ch }
func (c *chanTransport) Stats() (uint64, uint64, uint64) {
	return c.sent, uint64(len(c.ch)), 0
}

// buildResponseFrame makes a well-formed SYN-ACK like the simulator
// produces, addressed to the scanner at dst.
func buildResponseFrame(src, dst uint32) []byte {
	buf := make([]byte, 0, 64)
	buf = packet.AppendEthernet(buf, hostMAC, packet.MAC{2, 0, 0, 0, 0, 1}, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolTCP, Src: src, Dst: dst,
	}, packet.TCPHeaderLen)
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: 443, DstPort: 32768, Seq: 7, Ack: 42,
		Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
	}, src, dst, nil)
	return buf
}

func collect(t *testing.T, ch <-chan []byte, n int) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(2 * time.Second)
	for len(out) < n {
		select {
		case f := <-ch:
			out = append(out, f)
		case <-deadline:
			t.Fatalf("timed out after %d of %d frames", len(out), n)
		}
	}
	return out
}

func TestRecvFaultDuplicateAndTruncate(t *testing.T) {
	inner := &chanTransport{ch: make(chan []byte, 16)}
	ft := NewRecvFaultTransport(inner, RecvFaultConfig{Seed: 1, DuplicateProb: 1})
	defer ft.Stop()
	orig := buildResponseFrame(0x0A000001, 0xC0000201)
	inner.ch <- orig
	got := collect(t, ft.Recv(), 2)
	if string(got[0]) != string(orig) || string(got[1]) != string(orig) {
		t.Error("duplicate fault must deliver the identical frame twice")
	}
	if ft.Injected(RecvFaultDuplicate) != 1 {
		t.Errorf("duplicate counter = %d", ft.Injected(RecvFaultDuplicate))
	}

	inner2 := &chanTransport{ch: make(chan []byte, 16)}
	trunc := NewRecvFaultTransport(inner2, RecvFaultConfig{Seed: 1, TruncateProb: 1})
	defer trunc.Stop()
	inner2.ch <- orig
	short := collect(t, trunc.Recv(), 1)[0]
	if len(short) >= len(orig) {
		t.Errorf("truncate fault left %d of %d bytes", len(short), len(orig))
	}
}

func TestRecvFaultCorruptBreaksChecksum(t *testing.T) {
	inner := &chanTransport{ch: make(chan []byte, 16)}
	ft := NewRecvFaultTransport(inner, RecvFaultConfig{Seed: 3, CorruptProb: 1})
	defer ft.Stop()
	// Corruption flips random bits; over many frames, the overwhelming
	// majority must fail checksum verification (a flip confined to the
	// Ethernet header is the rare exception).
	failed := 0
	const n = 50
	for i := 0; i < n; i++ {
		inner.ch <- buildResponseFrame(0x0A000000+uint32(i), 0xC0000201)
		got := collect(t, ft.Recv(), 1)[0]
		if !packet.VerifyChecksums(got) {
			failed++
		}
	}
	if failed < n/2 {
		t.Errorf("only %d/%d corrupted frames failed checksum verification", failed, n)
	}
	if ft.Injected(RecvFaultCorrupt) != n {
		t.Errorf("corrupt counter = %d, want %d", ft.Injected(RecvFaultCorrupt), n)
	}
}

func TestRecvFaultSpoofIsValidButUnverifiable(t *testing.T) {
	inner := &chanTransport{ch: make(chan []byte, 16)}
	ft := NewRecvFaultTransport(inner, RecvFaultConfig{Seed: 5, SpoofProb: 1})
	defer ft.Stop()
	orig := buildResponseFrame(0x0A000001, 0xC0000201)
	inner.ch <- orig
	got := collect(t, ft.Recv(), 2) // spoof + original
	var spoofed []byte
	for _, f := range got {
		if string(f) != string(orig) {
			spoofed = f
		}
	}
	if spoofed == nil {
		t.Fatal("no spoofed frame delivered alongside the original")
	}
	f, err := packet.Parse(spoofed)
	if err != nil || f.TCP == nil {
		t.Fatalf("spoofed frame must parse cleanly: %v", err)
	}
	if !packet.VerifyChecksums(spoofed) {
		t.Error("spoofed frame must carry valid checksums (it exists to exercise validation, not parsing)")
	}
	if f.IP.Dst != 0xC0000201 {
		t.Error("spoofed frame must target the scanner address")
	}
	if f.IP.Src == 0x0A000001 {
		t.Error("spoofed frame kept the real responder source")
	}
}

func TestRecvFaultReorderDelaysDelivery(t *testing.T) {
	inner := &chanTransport{ch: make(chan []byte, 16)}
	ft := NewRecvFaultTransport(inner, RecvFaultConfig{
		Seed: 9, ReorderProb: 1, ReorderDelay: 20 * time.Millisecond,
	})
	defer ft.Stop()
	inner.ch <- buildResponseFrame(0x0A000001, 0xC0000201)
	start := time.Now()
	collect(t, ft.Recv(), 1)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("reordered frame arrived after %v, want >= ~20ms hold", elapsed)
	}
	if ft.Injected(RecvFaultReorder) != 1 {
		t.Errorf("reorder counter = %d", ft.Injected(RecvFaultReorder))
	}
}

func TestRecvFaultDeterministicSchedule(t *testing.T) {
	run := func() [numRecvFaultClasses]uint64 {
		inner := &chanTransport{ch: make(chan []byte, 64)}
		ft := NewRecvFaultTransport(inner, RecvFaultConfig{
			Seed: 42, TruncateProb: 0.3, CorruptProb: 0.3, DuplicateProb: 0.3, SpoofProb: 0.3,
		})
		defer ft.Stop()
		delivered := 0
		for i := 0; i < 40; i++ {
			inner.ch <- buildResponseFrame(0x0A000000+uint32(i), 0xC0000201)
		}
		// Drain whatever comes out for a bounded time; counts are what matter.
		timeout := time.After(500 * time.Millisecond)
	loop:
		for {
			select {
			case <-ft.Recv():
				delivered++
			case <-timeout:
				break loop
			}
		}
		var got [numRecvFaultClasses]uint64
		for c := RecvFaultClass(0); c < numRecvFaultClasses; c++ {
			got[c] = ft.Injected(c)
		}
		return got
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different schedules: %v vs %v", a, b)
	}
	var total uint64
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Error("aggressive config injected nothing")
	}
}
