package netsim

import (
	"sync"
	"sync/atomic"
	"time"

	"zmapgo/internal/packet"
)

// Response is one frame a probe elicits, Delay after the probe reaches
// the destination network.
type Response struct {
	Delay time.Duration
	Frame []byte
}

// hostMAC is the Ethernet address the simulated gateway answers from.
var hostMAC = packet.MAC{0x02, 0x5A, 0x4D, 0x41, 0x50, 0x01}

// ExpectedSYNACK reports whether a SYN to (ip, port) with the given
// options would be answered with a SYN-ACK absent packet loss: either a
// middlebox fronts the prefix or an open, option-satisfied service
// listens there. Experiments use it as loss-free ground truth.
func (in *Internet) ExpectedSYNACK(ip uint32, port uint16, options []byte) bool {
	if in.Middlebox(ip) {
		return true
	}
	return in.ServiceOpen(ip, port) && in.AcceptsSYN(ip, port, options)
}

// Respond consumes a raw probe frame and returns the responses it
// elicits, including transient loss on both directions and blowback
// duplicate trains. A nil or empty result means silence. Respond is safe
// for concurrent use.
func (in *Internet) Respond(probe []byte) []Response {
	// Dispatch on ethertype: the v6 hitlist path shares the link.
	if len(probe) >= packet.EthernetHeaderLen &&
		uint16(probe[12])<<8|uint16(probe[13]) == packet.EtherTypeIPv6 {
		return in.Respond6(probe)
	}
	f, err := packet.Parse(probe)
	if err != nil {
		return nil
	}
	if in.pathLost(f.IP.Src, f.IP.Dst, in.cfg.ProbeLoss) {
		return nil
	}
	switch {
	case f.TCP != nil:
		return in.respondTCP(f)
	case f.ICMP != nil:
		return in.respondICMP(f)
	case f.UDP != nil:
		return in.respondUDP(f, probe)
	default:
		return nil
	}
}

func (in *Internet) respondTCP(f *packet.Frame) []Response {
	if f.TCP.Flags == packet.FlagSYN|packet.FlagACK {
		return in.respondSYNACKProbe(f)
	}
	if f.TCP.Flags&packet.FlagSYN == 0 || f.TCP.Flags&packet.FlagACK != 0 {
		return nil // other non-SYN segments are not answered at L4
	}
	ip, port := f.IP.Dst, f.TCP.DstPort
	rtt := in.RTT(ip)

	synack := in.ExpectedSYNACK(ip, port, f.TCP.Options)
	if synack {
		frame := in.buildTCPReply(f, packet.FlagSYN|packet.FlagACK)
		var out []Response
		if !in.lost(in.cfg.ResponseLoss) {
			out = append(out, Response{Delay: rtt, Frame: frame})
		}
		// Middleboxes answer statelessly and do not blow back.
		dups := 0
		if !in.Middlebox(ip) && in.ServiceOpen(ip, port) {
			dups = in.BlowbackCount(ip, port)
		}
		gap := in.cfg.BlowbackGap
		if gap <= 0 {
			gap = 500 * time.Millisecond
		}
		for i := 1; i <= dups; i++ {
			if in.lost(in.cfg.ResponseLoss) {
				continue
			}
			out = append(out, Response{
				Delay: rtt + time.Duration(i)*gap,
				Frame: in.buildTCPReply(f, packet.FlagSYN|packet.FlagACK),
			})
		}
		return out
	}
	// Closed port on a live host: maybe RST.
	if in.Live(ip) && uniform(in.hash(purposeRST, ip, port)) < in.cfg.RSTFraction {
		if in.lost(in.cfg.ResponseLoss) {
			return nil
		}
		return []Response{{Delay: rtt, Frame: in.buildTCPReply(f, packet.FlagRST|packet.FlagACK)}}
	}
	return nil
}

// respondSYNACKProbe handles tcp_synackscan's unsolicited SYN-ACKs: an
// RFC 9293 stack with no matching connection answers with RST whose
// sequence number equals the segment's acknowledgment number. Backscatter
// liveness probing measures exactly this, so middleboxes (stateless SYN
// responders) stay silent here.
func (in *Internet) respondSYNACKProbe(f *packet.Frame) []Response {
	ip := f.IP.Dst
	if !in.Live(ip) {
		return nil
	}
	if uniform(in.hash(purposeRST+8, ip, f.TCP.DstPort)) >= in.cfg.SYNACKRSTFraction {
		return nil
	}
	if in.lost(in.cfg.ResponseLoss) {
		return nil
	}
	buf := getFrame()
	buf = packet.AppendEthernet(buf, hostMAC, f.EthSrc, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       uint16(in.hash(purposeService+34, ip, f.TCP.DstPort)),
		TTL:      64,
		Protocol: packet.ProtocolTCP,
		Src:      f.IP.Dst,
		Dst:      f.IP.Src,
	}, packet.TCPHeaderLen)
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: f.TCP.DstPort,
		DstPort: f.TCP.SrcPort,
		Seq:     f.TCP.Ack, // RST takes its seq from the offending ack
		Flags:   packet.FlagRST,
	}, f.IP.Dst, f.IP.Src, nil) // options are empty; cannot fail
	return []Response{{Delay: in.RTT(ip), Frame: buf}}
}

// icmpAllowed consumes one slot of a host's ICMP rate budget, returning
// false once a rate-limiting host has exhausted it.
func (in *Internet) icmpAllowed(ip uint32) bool {
	if in.cfg.ICMPRateLimitFraction <= 0 || in.cfg.ICMPRateLimit <= 0 {
		return true
	}
	if uniform(in.hash(purposeICMP+8, ip, 0)) >= in.cfg.ICMPRateLimitFraction {
		return true
	}
	in.icmpMu.Lock()
	defer in.icmpMu.Unlock()
	if in.icmpCounts[ip] >= in.cfg.ICMPRateLimit {
		return false
	}
	in.icmpCounts[ip]++
	return true
}

// mssOpts is the option block simulated hosts put on their SYN-ACKs.
// Precomputed once: responders only ever read it (AppendTCP copies it
// into the frame), so sharing is safe and saves a per-response build.
var mssOpts = packet.BuildOptions(packet.LayoutMSS, 0)

// buildTCPReply constructs the mirror-image TCP response to a probe.
func (in *Internet) buildTCPReply(f *packet.Frame, flags byte) []byte {
	ip, port := f.IP.Dst, f.TCP.DstPort
	seq := uint32(in.hash(purposeService+32, ip, port)) // host ISN, stable
	var opts []byte
	if flags&packet.FlagSYN != 0 {
		opts = mssOpts
	}
	buf := getFrame()
	buf = packet.AppendEthernet(buf, hostMAC, f.EthSrc, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       uint16(in.hash(purposeService+33, ip, port)),
		TTL:      64,
		Protocol: packet.ProtocolTCP,
		Src:      f.IP.Dst,
		Dst:      f.IP.Src,
	}, packet.TCPHeaderLen+len(opts))
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: port,
		DstPort: f.TCP.SrcPort,
		Seq:     seq,
		Ack:     f.TCP.Seq + 1,
		Flags:   flags,
		Window:  28960,
		Options: opts,
	}, f.IP.Dst, f.IP.Src, nil) // BuildOptions layouts are 4-aligned; cannot fail
	return buf
}

func (in *Internet) respondICMP(f *packet.Frame) []Response {
	if f.ICMP.Type != packet.ICMPEchoRequest {
		return nil
	}
	ip := f.IP.Dst
	if !in.Live(ip) || uniform(in.hash(purposeICMP, ip, 0)) >= in.cfg.ICMPEchoFraction {
		return nil
	}
	if !in.icmpAllowed(ip) {
		return nil // rate-limited host went silent (Guo & Heidemann)
	}
	if in.lost(in.cfg.ResponseLoss) {
		return nil
	}
	buf := getFrame()
	buf = packet.AppendEthernet(buf, hostMAC, f.EthSrc, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolICMP, Src: f.IP.Dst, Dst: f.IP.Src,
	}, packet.ICMPHeaderLen+len(f.Payload))
	buf = packet.AppendICMPEcho(buf, packet.ICMPEchoReply, f.ICMP.ID, f.ICMP.Seq, f.Payload)
	return []Response{{Delay: in.RTT(ip), Frame: buf}}
}

// UDPServiceOpen reports whether a UDP service listens at (ip, port).
func (in *Internet) UDPServiceOpen(ip uint32, port uint16) bool {
	if !in.Live(ip) {
		return false
	}
	p := in.cfg.UDPPortOpen[port]
	return p > 0 && uniform(in.hash(purposeUDP, ip, port)) < p
}

func (in *Internet) respondUDP(f *packet.Frame, probe []byte) []Response {
	ip, port := f.IP.Dst, f.UDP.DstPort
	rtt := in.RTT(ip)
	if in.UDPServiceOpen(ip, port) {
		if in.lost(in.cfg.ResponseLoss) {
			return nil
		}
		payload := []byte("sim-udp-reply")
		if port == 53 {
			if dns := in.dnsAnswer(ip, f.Payload); dns != nil {
				payload = dns
			}
		}
		buf := getFrame()
		buf = packet.AppendEthernet(buf, hostMAC, f.EthSrc, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{
			TTL: 64, Protocol: packet.ProtocolUDP, Src: f.IP.Dst, Dst: f.IP.Src,
		}, packet.UDPHeaderLen+len(payload))
		buf = packet.AppendUDP(buf, port, f.UDP.SrcPort, f.IP.Dst, f.IP.Src, payload)
		return []Response{{Delay: rtt, Frame: buf}}
	}
	if in.Live(ip) && uniform(in.hash(purposeUDP+8, ip, port)) < in.cfg.UDPUnreachFraction {
		if in.lost(in.cfg.ResponseLoss) {
			return nil
		}
		// ICMP port unreachable carrying the original IP header + 8 bytes.
		quote := probe[packet.EthernetHeaderLen:]
		if len(quote) > packet.IPv4HeaderLen+8 {
			quote = quote[:packet.IPv4HeaderLen+8]
		}
		buf := getFrame()
		buf = packet.AppendEthernet(buf, hostMAC, f.EthSrc, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{
			TTL: 64, Protocol: packet.ProtocolICMP, Src: f.IP.Dst, Dst: f.IP.Src,
		}, packet.ICMPHeaderLen+len(quote))
		buf = packet.AppendICMPEcho(buf, packet.ICMPDestUnreach, 0, 0, quote)
		// Set code 3 (port unreachable): AppendICMPEcho wrote code 0.
		codeIdx := len(buf) - packet.ICMPHeaderLen - len(quote) + 1
		buf[codeIdx] = 3
		// Recompute checksum after the code change.
		icmpStart := len(buf) - packet.ICMPHeaderLen - len(quote)
		buf[icmpStart+2], buf[icmpStart+3] = 0, 0
		ck := packet.Checksum(buf[icmpStart:], 0)
		buf[icmpStart+2] = byte(ck >> 8)
		buf[icmpStart+3] = byte(ck)
		return []Response{{Delay: rtt, Frame: buf}}
	}
	return nil
}

// Link is the asynchronous attachment point between a scanner and the
// simulated Internet: Send injects a probe, and elicited responses arrive
// on Recv after their (scaled) simulated delays. A full receive buffer
// drops frames, modeling kernel ring-buffer drops, and the drop count is
// reported like ZMap's monitor does.
type Link struct {
	in        *Internet
	recv      chan []byte
	timeScale float64
	delays    DelayRecorder

	// cong, when set, interposes the congestion model (capacity knee,
	// unreachable generation, dark prefix) on every probe.
	cong *congestion

	// weather, when set, plays a scripted fault scenario over the link
	// (see scenario.go): forward effects before the host model responds,
	// reverse effects on each response before it is scheduled.
	// weatherObs is instrumentation attached via SetWeatherObserver,
	// kept on the link so it survives a later SetWeather.
	weather    *Weather
	weatherObs WeatherObserver

	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup
	drops   atomic.Uint64
	sent    atomic.Uint64
	rcvd    atomic.Uint64
}

// DelayRecorder observes the simulated (unscaled) delay of each
// response the link schedules — the modeled RTT plus any blowback gap.
// Satisfied by *metrics.HistShard; a local interface keeps netsim free
// of dependencies on the instrumentation layer.
type DelayRecorder interface {
	Record(d time.Duration)
}

// NewLink attaches to the simulated Internet. buffer is the receive ring
// size; timeScale multiplies simulated delays before sleeping (use small
// values like 1e-3 to compress hundreds of milliseconds of RTT into
// test-friendly wall time; 0 delivers at once).
func NewLink(in *Internet, buffer int, timeScale float64) *Link {
	if buffer <= 0 {
		buffer = 4096
	}
	return &Link{
		in:        in,
		recv:      make(chan []byte, buffer),
		timeScale: timeScale,
	}
}

// SetDelayRecorder attaches a recorder for simulated response delays.
// Call before the scan starts; concurrent Sends observe it racily
// otherwise.
func (l *Link) SetDelayRecorder(r DelayRecorder) { l.delays = r }

// Send injects one probe frame. The frame is processed synchronously
// (loss, host model) and responses are scheduled for delivery. The
// lossless in-process link never fails; the error return exists so Link
// satisfies the engine's fallible Transport contract (wrap it in a
// FaultyTransport to inject failures).
func (l *Link) Send(frame []byte) error {
	l.sent.Add(1)
	var wEl time.Duration
	var wDst uint32
	var wIsV4 bool
	if l.weather != nil {
		wEl = l.weather.elapsed(time.Now())
		wDst, wIsV4 = frameDstIPv4(frame)
		if l.weatherSend(frame, wDst, wIsV4, wEl) {
			return nil // consumed by a scripted fault
		}
	}
	if l.cong != nil && l.congest(frame) {
		return nil // dropped at the knee or swallowed by a dark prefix
	}
	responses := l.in.Respond(frame)
	for _, r := range responses {
		if l.weather != nil && wIsV4 {
			drop, extra := l.weather.reverseDecide(wDst, wEl)
			if drop {
				PutFrame(r.Frame)
				continue
			}
			r.Delay += extra
		}
		l.schedule(r.Delay, r.Frame)
	}
	return nil
}

// schedule queues one response frame for delivery after the simulated
// delay (scaled by the link's timeScale).
func (l *Link) schedule(simDelay time.Duration, frame []byte) {
	if l.delays != nil {
		l.delays.Record(simDelay)
	}
	delay := time.Duration(float64(simDelay) * l.timeScale)
	if delay <= 0 {
		l.deliver(frame)
		return
	}
	l.pending.Add(1)
	time.AfterFunc(delay, func() {
		defer l.pending.Done()
		l.deliver(frame)
	})
}

// SendBatch injects a batch of probe frames. The in-process link cannot
// partially fail, but the contract matches the engine's BatchTransport:
// frames[:sent] were handed off before the error. Frames are consumed
// synchronously — the caller may reuse their buffers once SendBatch
// returns.
func (l *Link) SendBatch(frames [][]byte) (int, error) {
	for i, frame := range frames {
		if err := l.Send(frame); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// Release returns a frame previously delivered by Recv to the response
// buffer pool. Optional: unreleased frames are garbage collected.
func (l *Link) Release(frame []byte) { PutFrame(frame) }

func (l *Link) deliver(frame []byte) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		PutFrame(frame)
		return
	}
	l.mu.Unlock()
	select {
	case l.recv <- frame:
		l.rcvd.Add(1)
	default:
		l.drops.Add(1)
		PutFrame(frame)
	}
}

// Recv returns the response stream. The channel is never closed; readers
// stop by their own timeout (the scan cooldown), as a raw socket would.
func (l *Link) Recv() <-chan []byte { return l.recv }

// RecvBatch moves up to len(dst) already-delivered frames from the
// receive ring into dst without blocking and returns the count — the
// recvmmsg analogue of SendBatch. The engine's receive path blocks on
// Recv for the first frame of a batch and fills the rest from here, so
// an idle link costs nothing extra.
func (l *Link) RecvBatch(dst [][]byte) int {
	n := 0
	for n < len(dst) {
		select {
		case frame := <-l.recv:
			dst[n] = frame
			n++
		default:
			return n
		}
	}
	return n
}

// Drain blocks until all scheduled deliveries have fired, then returns.
// Useful in tests; a real scan just waits out its cooldown.
func (l *Link) Drain() { l.pending.Wait() }

// Stats returns frames sent, delivered, and dropped at the receive ring.
func (l *Link) Stats() (sent, received, dropped uint64) {
	return l.sent.Load(), l.rcvd.Load(), l.drops.Load()
}

// Close stops future deliveries. Pending timers fire harmlessly.
func (l *Link) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}
