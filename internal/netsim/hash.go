package netsim

// splitmix64 is the finalizer-quality mixing function used to derive every
// per-host attribute. The whole simulated Internet is a pure function of
// (seed, ip, port, purpose), so a population of 2^32 hosts costs no memory
// and two runs with the same seed are identical.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// purpose constants salt the hash so distinct attributes of the same host
// are independent.
const (
	purposeLive = iota + 1
	purposeService
	purposeOptions
	purposeMiddlebox
	purposeBlowback
	purposeRST
	purposeICMP
	purposeProtocol
	purposeLatency
	purposeLoss
	purposeBanner
	purposeUDP
)

func (in *Internet) hash(purpose uint64, ip uint32, port uint16) uint64 {
	return splitmix64(in.cfg.Seed ^ purpose<<56 ^ uint64(ip)<<16 ^ uint64(port))
}

// uniform converts a hash to [0, 1).
func uniform(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
