package netsim

import (
	"strings"

	"zmapgo/internal/dnswire"
)

// dnsAnswer implements the simulated recursive resolvers behind UDP/53
// services. The zone contents are, like everything else here, a pure
// function of the population seed and the query name:
//
//   - ~85% of names "exist": an A query returns one or two deterministic
//     addresses, a TXT query returns a deterministic record;
//   - the rest return NXDOMAIN;
//   - ~3% of resolvers are REFUSED-only (closed resolvers reached by a
//     scan), and malformed queries earn FORMERR.
//
// The return value is the raw DNS message, or nil when the payload is
// not DNS (the generic UDP reply is used instead).
func (in *Internet) dnsAnswer(server uint32, payload []byte) []byte {
	q, err := dnswire.ParseQuery(payload)
	if err != nil {
		if len(payload) >= dnswire.HeaderLen {
			// DNS-shaped but malformed: FORMERR, as real servers do.
			resp, err := dnswire.AppendResponse(nil, dnswire.Query{ID: bigEndianID(payload)}, dnswire.RCodeFormErr, nil)
			if err != nil {
				return nil
			}
			return resp
		}
		return nil
	}
	if uniform(in.hash(purposeUDP+16, server, 53)) < 0.03 {
		resp, _ := dnswire.AppendResponse(nil, q, dnswire.RCodeRefused, nil)
		return resp
	}
	name := strings.ToLower(q.Name)
	nameHash := splitmix64(in.cfg.Seed ^ 0xD15 ^ hashString(name))
	if uniform(nameHash) >= 0.85 {
		resp, _ := dnswire.AppendResponse(nil, q, dnswire.RCodeNXDomain, nil)
		return resp
	}
	var answers []dnswire.Answer
	switch q.Type {
	case dnswire.TypeA:
		addr := addrFor(nameHash)
		answers = append(answers, dnswire.Answer{
			Name: q.Name, Type: dnswire.TypeA, TTL: 300, A: addr,
		})
		if nameHash&1 == 1 { // some names have two records
			answers = append(answers, dnswire.Answer{
				Name: q.Name, Type: dnswire.TypeA, TTL: 300, A: addrFor(splitmix64(nameHash)),
			})
		}
	case dnswire.TypeTXT:
		answers = append(answers, dnswire.Answer{
			Name: q.Name, Type: dnswire.TypeTXT, TTL: 300,
			Text: "v=sim1 id=" + name,
		})
	default:
		// Existing name, unsupported type: NOERROR with no answers.
	}
	resp, err := dnswire.AppendResponse(nil, q, dnswire.RCodeNoError, answers)
	if err != nil {
		return nil
	}
	return resp
}

func addrFor(h uint64) [4]byte {
	return [4]byte{byte(h>>24)%223 + 1, byte(h >> 16), byte(h >> 8), byte(h)}
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func bigEndianID(p []byte) uint16 {
	return uint16(p[0])<<8 | uint16(p[1])
}
