package netsim

import (
	"errors"
	"sync"
	"syscall"
	"testing"
)

// nullTransport records sends and never fails.
type nullTransport struct {
	mu    sync.Mutex
	sends int
	ch    chan []byte
}

func (n *nullTransport) Send(frame []byte) error {
	n.mu.Lock()
	n.sends++
	n.mu.Unlock()
	return nil
}
func (n *nullTransport) Recv() <-chan []byte                 { return n.ch }
func (n *nullTransport) Stats() (sent, recv, dropped uint64) { return 0, 0, 0 }

func (n *nullTransport) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sends
}

func TestFaultyFailFirstNPerFrame(t *testing.T) {
	inner := &nullTransport{}
	ft := NewFaultyTransport(inner, FaultConfig{FailFirstN: 2})
	frameA := []byte("frame-a")
	frameB := []byte("frame-b")
	for i := 0; i < 2; i++ {
		if err := ft.Send(frameA); err == nil {
			t.Fatalf("attempt %d of frameA succeeded, want transient fault", i+1)
		}
	}
	if err := ft.Send(frameA); err != nil {
		t.Fatalf("attempt 3 of frameA failed: %v", err)
	}
	// frameB has its own schedule regardless of interleaving.
	if err := ft.Send(frameB); err == nil {
		t.Fatal("first attempt of frameB succeeded, want fault")
	}
	if inner.count() != 1 {
		t.Errorf("inner saw %d sends, want 1", inner.count())
	}
	if ft.Injected() != 3 {
		t.Errorf("Injected() = %d, want 3", ft.Injected())
	}
}

func TestFaultyTransientErrorClass(t *testing.T) {
	ft := NewFaultyTransport(&nullTransport{}, FaultConfig{FailFirstN: 1})
	err := ft.Send([]byte("x"))
	if err == nil {
		t.Fatal("want error")
	}
	var se *SendError
	if !errors.As(err, &se) || !se.Transient() {
		t.Errorf("error %v not classified transient", err)
	}
	if !errors.Is(err, syscall.ENOBUFS) {
		t.Errorf("transient error does not unwrap to ENOBUFS: %v", err)
	}
}

func TestFaultyFatalAfter(t *testing.T) {
	inner := &nullTransport{}
	ft := NewFaultyTransport(inner, FaultConfig{FatalAfter: 3})
	for i := 0; i < 3; i++ {
		if err := ft.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d failed early: %v", i, err)
		}
	}
	err := ft.Send([]byte("doomed"))
	if err == nil {
		t.Fatal("send after FatalAfter succeeded")
	}
	var se *SendError
	if !errors.As(err, &se) || se.Transient() {
		t.Errorf("post-threshold error %v should be fatal", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Errorf("fatal error does not unwrap to EIO: %v", err)
	}
	if inner.count() != 3 {
		t.Errorf("inner saw %d sends, want 3", inner.count())
	}
}

func TestFaultyTransientProbDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		ft := NewFaultyTransport(&nullTransport{}, FaultConfig{Seed: seed, TransientProb: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = ft.Send([]byte{byte(i), byte(i >> 8)}) != nil
		}
		return out
	}
	a, b := run(7), run(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 50 || fails > 150 {
		t.Errorf("prob 0.5 failed %d/200 attempts", fails)
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultyFailFirstSendsBurst(t *testing.T) {
	inner := &nullTransport{}
	ft := NewFaultyTransport(inner, FaultConfig{FailFirstSends: 5})
	var errs int
	for i := 0; i < 10; i++ {
		if ft.Send([]byte{byte(i)}) != nil {
			errs++
		}
	}
	if errs != 5 || inner.count() != 5 {
		t.Errorf("errs=%d inner=%d, want 5/5", errs, inner.count())
	}
}

func TestFaultyZeroConfigPassesThrough(t *testing.T) {
	inner := &nullTransport{}
	ft := NewFaultyTransport(inner, FaultConfig{})
	for i := 0; i < 100; i++ {
		if err := ft.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("zero-config fault injected: %v", err)
		}
	}
	if inner.count() != 100 || ft.Injected() != 0 || ft.Attempts() != 100 {
		t.Errorf("passthrough stats wrong: inner=%d injected=%d attempts=%d",
			inner.count(), ft.Injected(), ft.Attempts())
	}
}
