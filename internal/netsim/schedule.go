package netsim

import (
	"math/rand"
	"sync"
)

// Deterministic fault-schedule primitives shared by the simulator's
// fault injectors (faulty.go, recvfault.go, congestion.go) and the
// scenario weather layer (scenario.go). Every schedule decision in the
// simulator reduces to one of these:
//
//   - a keyed content hash identifying a frame (schedFrameHash),
//   - a stateless whitened draw over (hash, ordinal) pairs (schedMix,
//     schedRoll, schedSaltedDraw),
//   - a token bucket metered on a caller-supplied clock (tokenBucket),
//   - a seeded math/rand stream (newScheduleRNG) for injectors whose
//     faults need variable-width random draws.
//
// Centralizing them keeps the schedules byte-for-byte reproducible from
// their seeds across refactors; schedule_test.go pins each one against
// the original per-file formulas.

// schedLossDomain salts the Internet's transient-loss draws so they are
// independent of the population and path hashes built on the same seed.
const schedLossDomain = 0xABCD

// schedFrameHash is FNV-1a over the frame, keyed by the seed. Probe
// frames are unique per (dst, port) in a scan, so the hash identifies
// the probe regardless of which thread or attempt carries it.
func schedFrameHash(seed uint64, frame []byte) uint64 {
	h := uint64(14695981039346656037) ^ (seed * 0x9E3779B97F4A7C15)
	for _, b := range frame {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// schedMix whitens a (hash, ordinal) pair into an independent draw, so
// successive ordinals (retry attempts, packet indices) re-roll rather
// than repeat the base hash's decision.
func schedMix(h, ordinal uint64) uint64 {
	h ^= ordinal * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return h
}

// schedRoll converts a whitened draw into a Bernoulli decision.
func schedRoll(h uint64, prob float64) bool {
	return uniform(h) < prob
}

// schedSaltedDraw is the stateless uniform draw behind transient loss:
// splitmix64 over the seed, a domain separator, and a per-decision salt.
func schedSaltedDraw(seed, domain, salt uint64) uint64 {
	return splitmix64(seed ^ domain ^ salt)
}

// newScheduleRNG builds the seeded stream used by injectors that need
// variable-width draws (truncation points, bit positions, spoofed
// addresses). Equal seeds replay the same fault sequence.
func newScheduleRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// tokenBucket is the rate/burst meter behind the congestion knee, its
// ICMP budget, and the weather layer's time-varying faults. The clock
// is supplied by the caller in seconds on any monotonic axis — wall
// time on the live link, scripted virtual time in determinism tests —
// which keeps bucket decisions replayable. The bucket starts full; the
// first take anchors the refill clock.
type tokenBucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   float64
	primed bool
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take draws one slot at the given time, refilling rate tokens/sec
// since the previous call, capped at the burst depth.
func (b *tokenBucket) take(nowSecs float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		b.primed = true
		b.last = nowSecs
	}
	if nowSecs > b.last {
		b.tokens += (nowSecs - b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = nowSecs
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
