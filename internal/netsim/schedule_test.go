package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// The shared schedule utility replaced three independently-implemented
// seeded helpers (faulty.go's keyed frame hash + attempt roll,
// netsim.go's salted loss draw, congestion.go's token buckets). These
// tests pin the extracted primitives against the original per-file
// formulas, re-implemented here verbatim, so no seeded schedule can
// silently shift under a future refactor.

// legacyFrameHash is faulty.go's original FNV-1a keyed hash.
func legacyFrameHash(seed uint64, frame []byte) uint64 {
	h := uint64(14695981039346656037) ^ (seed * 0x9E3779B97F4A7C15)
	for _, b := range frame {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// legacyTransientRoll is faulty.go's original per-attempt fault roll.
func legacyTransientRoll(frameHash, attempt uint64, prob float64) bool {
	h := frameHash ^ (attempt * 0xBF58476D1CE4E5B9)
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return float64(h>>11)/float64(1<<53) < prob
}

// legacyLostDraw is netsim.go's original transient-loss draw.
func legacyLostDraw(seed, salt uint64, prob float64) bool {
	return uniform(splitmix64(seed^0xABCD^salt)) < prob
}

func TestScheduleFrameHashPinsLegacy(t *testing.T) {
	frames := [][]byte{
		nil,
		{},
		{0x00},
		{0xFF, 0x00, 0xAB},
		[]byte("deterministic schedule"),
		make([]byte, 64),
	}
	rng := rand.New(rand.NewSource(7))
	long := make([]byte, 1500)
	rng.Read(long)
	frames = append(frames, long)
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, ^uint64(0)} {
		for i, frame := range frames {
			want := legacyFrameHash(seed, frame)
			if got := schedFrameHash(seed, frame); got != want {
				t.Fatalf("seed %#x frame %d: schedFrameHash = %#x, legacy = %#x", seed, i, got, want)
			}
		}
	}
	// Golden value guards the constants themselves.
	if got := schedFrameHash(42, []byte("zmap")); got != legacyFrameHash(42, []byte("zmap")) {
		t.Fatalf("golden mismatch: %#x", got)
	}
}

func TestScheduleMixRollPinsLegacy(t *testing.T) {
	probs := []float64{0, 0.001, 0.25, 0.5, 0.999, 1}
	for _, seed := range []uint64{0, 3, 99} {
		h := schedFrameHash(seed, []byte("probe frame"))
		for attempt := uint64(1); attempt <= 1000; attempt++ {
			for _, p := range probs {
				want := legacyTransientRoll(h, attempt, p)
				if got := schedRoll(schedMix(h, attempt), p); got != want {
					t.Fatalf("seed %d attempt %d prob %v: roll = %v, legacy = %v",
						seed, attempt, p, got, want)
				}
			}
		}
	}
}

func TestScheduleSaltedDrawPinsLegacy(t *testing.T) {
	for _, seed := range []uint64{0, 17, 0xFEEDFACE} {
		for salt := uint64(1); salt <= 5000; salt++ {
			want := legacyLostDraw(seed, salt, 0.37)
			got := uniform(schedSaltedDraw(seed, schedLossDomain, salt)) < 0.37
			if got != want {
				t.Fatalf("seed %d salt %d: draw = %v, legacy = %v", seed, salt, got, want)
			}
		}
	}
}

// legacyBucket is congestion.go's original wall-clock token bucket,
// reproduced over an abstract clock.
type legacyBucket struct {
	rate, burst float64
	tokens      float64
	last        time.Duration
}

func (b *legacyBucket) take(now time.Duration) bool {
	b.tokens += (now - b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

func TestTokenBucketPinsLegacySchedule(t *testing.T) {
	const rate, burst = 20000, 400
	nb := newTokenBucket(rate, burst)
	lb := &legacyBucket{rate: rate, burst: burst, tokens: burst}
	rng := rand.New(rand.NewSource(11))
	now := time.Duration(0)
	for i := 0; i < 200000; i++ {
		now += time.Duration(rng.Intn(200)) * time.Microsecond
		want := lb.take(now)
		if got := nb.take(now.Seconds()); got != want {
			t.Fatalf("draw %d at %v: bucket = %v, legacy = %v", i, now, got, want)
		}
	}
}

// TestRecvFaultRNGStreamPinned guards the recvfault pump's RNG
// construction: newScheduleRNG(seed) must produce exactly the stream
// rand.New(rand.NewSource(seed)) did before the extraction.
func TestRecvFaultRNGStreamPinned(t *testing.T) {
	a := newScheduleRNG(123)
	b := rand.New(rand.NewSource(123))
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %#x != %#x", i, x, y)
		}
	}
}
