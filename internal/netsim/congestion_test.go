package netsim

import (
	"testing"
	"time"

	"zmapgo/internal/packet"
)

// drainFrames collects everything currently deliverable on the link.
func drainFrames(l *Link) [][]byte {
	l.Drain()
	var out [][]byte
	for {
		select {
		case f := <-l.Recv():
			out = append(out, f)
		default:
			return out
		}
	}
}

func TestCongestionKneeDropsAndGeneratesUnreach(t *testing.T) {
	in := New(lossless(11))
	l := NewLink(in, 1<<14, 0)
	l.SetCongestion(CongestionConfig{
		CapacityPPS: 100, // tiny knee: a burst of probes must overflow it
		Burst:       10,
		ICMPPPS:     1000,
		ICMPBurst:   50,
	})
	for ip := uint32(0x0A000000); ip < 0x0A000000+2000; ip++ {
		if err := l.Send(buildSYNProbe(ip, 80, packet.LayoutMSS)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.CongestionStats()
	if st.Dropped == 0 {
		t.Fatal("no probes dropped at a knee far below the offered rate")
	}
	if st.ICMPSent == 0 {
		t.Fatal("no unreachables generated for dropped probes")
	}
	if st.ICMPSent > st.Dropped {
		t.Fatalf("more unreachables (%d) than drops (%d)", st.ICMPSent, st.Dropped)
	}

	// The generated unreachables must be parseable, checksum-valid, and
	// quote the probe's IP header so the scanner can attribute them.
	unreach := 0
	for _, frame := range drainFrames(l) {
		f, err := packet.Parse(frame)
		if err != nil {
			t.Fatalf("generated frame does not parse: %v", err)
		}
		if f.ICMP == nil || f.ICMP.Type != packet.ICMPDestUnreach {
			continue
		}
		unreach++
		if !packet.VerifyChecksums(frame) {
			t.Fatal("unreachable has bad checksums")
		}
		if f.IP.Dst != 0xC0000201 {
			t.Fatalf("unreachable sent to %#x, want the scanner", f.IP.Dst)
		}
		if len(f.Payload) < packet.IPv4HeaderLen+8 {
			t.Fatalf("quote too short: %d bytes", len(f.Payload))
		}
		q := f.Payload
		quotedSrc := uint32(q[12])<<24 | uint32(q[13])<<16 | uint32(q[14])<<8 | uint32(q[15])
		if quotedSrc != 0xC0000201 {
			t.Fatalf("quoted source = %#x, want the scanner address", quotedSrc)
		}
	}
	if uint64(unreach) != st.ICMPSent {
		t.Fatalf("delivered %d unreachables, stats say %d", unreach, st.ICMPSent)
	}
}

func TestCongestionBelowKneePassesThrough(t *testing.T) {
	in := New(lossless(12))
	l := NewLink(in, 1<<14, 0)
	l.SetCongestion(CongestionConfig{CapacityPPS: 1e9, ICMPPPS: 1000})
	sent := 0
	for ip := uint32(0x0A010000); ip < 0x0A010000+500; ip++ {
		if err := l.Send(buildSYNProbe(ip, 80, packet.LayoutMSS)); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	st := l.CongestionStats()
	if st.Dropped != 0 || st.ICMPSent != 0 || st.DarkDropped != 0 {
		t.Fatalf("interventions below the knee: %+v", st)
	}
}

func TestCongestionDarkPrefix(t *testing.T) {
	in := New(lossless(13))
	// Find a responder inside the to-be-darkened prefix.
	var target uint32
	for ip := uint32(0x0A030000); ip < 0x0A040000; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 12345)) {
			target = ip
			break
		}
	}
	if target == 0 {
		t.Fatal("no responder found in prefix")
	}

	l := NewLink(in, 1<<14, 0)
	l.SetCongestion(CongestionConfig{
		DarkPrefix: 0x0A030000,
		DarkAfter:  20,
	})
	// Before the trigger the responder answers.
	for i := 0; i < 10; i++ {
		if err := l.Send(buildSYNProbe(target, 80, packet.LayoutMSS)); err != nil {
			t.Fatal(err)
		}
	}
	before := len(drainFrames(l))
	if before == 0 {
		t.Fatal("responder silent before the dark trigger")
	}
	// Push past the trigger, then probe the dark prefix again.
	for i := 0; i < 20; i++ {
		if err := l.Send(buildSYNProbe(0x0B000000+uint32(i), 80, packet.LayoutMSS)); err != nil {
			t.Fatal(err)
		}
	}
	drainFrames(l)
	for i := 0; i < 10; i++ {
		if err := l.Send(buildSYNProbe(target, 80, packet.LayoutMSS)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(drainFrames(l)); got != 0 {
		t.Fatalf("dark prefix still answering: %d frames", got)
	}
	st := l.CongestionStats()
	if st.DarkDropped != 10 {
		t.Fatalf("dark drops = %d, want 10", st.DarkDropped)
	}
	// Other prefixes are unaffected.
	var other uint32
	for ip := uint32(0x0B010000); ip < 0x0B020000; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 12345)) {
			other = ip
			break
		}
	}
	if other == 0 {
		t.Fatal("no responder found outside dark prefix")
	}
	if err := l.Send(buildSYNProbe(other, 80, packet.LayoutMSS)); err != nil {
		t.Fatal(err)
	}
	if got := len(drainFrames(l)); got == 0 {
		t.Fatal("non-dark prefix stopped answering")
	}
}

func TestCongestionTokenBucketRefills(t *testing.T) {
	in := New(lossless(14))
	l := NewLink(in, 1<<14, 0)
	l.SetCongestion(CongestionConfig{CapacityPPS: 100000, Burst: 4})
	// Exhaust the burst.
	for i := 0; i < 50; i++ {
		_ = l.Send(buildSYNProbe(0x0A050000+uint32(i), 80, packet.LayoutMSS))
	}
	dropped := l.CongestionStats().Dropped
	if dropped == 0 {
		t.Fatal("burst never exhausted")
	}
	// After a pause the bucket refills and probes pass again.
	time.Sleep(20 * time.Millisecond)
	_ = l.Send(buildSYNProbe(0x0A050100, 80, packet.LayoutMSS))
	if got := l.CongestionStats().Dropped; got != dropped {
		t.Fatalf("probe dropped after refill window: %d -> %d", dropped, got)
	}
}
