package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Scenario profile loading and the rendered event timeline. Profiles
// are JSON documents shaped like conf/scenarios/*.json:
//
//	{
//	  "name": "bursty-loss",
//	  "seed": 7,
//	  "events": [
//	    {"type": "bursty_loss", "at_secs": 0,
//	     "p_good_bad": 0.0005, "p_bad_good": 0.01, "loss_bad": 0.9},
//	    {"type": "blackout", "at_secs": 0.5, "duration_secs": 2,
//	     "prefix": "10.1.0.0/16"}
//	  ]
//	}
//
// The loader is strict: unknown fields, out-of-range parameters, and
// malformed prefixes are errors, never panics (FuzzScenarioProfile pins
// this), so hostile or mangled profiles cannot wedge a scan.

// maxScenarioEvents bounds hostile profiles; real scenarios are a
// handful of events.
const maxScenarioEvents = 1024

// LoadScenario reads and validates a JSON scenario profile.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// ParseScenario parses and validates a JSON scenario profile.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Exactly one JSON document.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after profile")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// probRange validates one probability-shaped parameter.
func probRange(event int, name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("scenario: event %d: %s %v outside [0, 1]", event, name, v)
	}
	return nil
}

// nonNegative validates one magnitude parameter against an upper sanity
// bound (hostile profiles must not overflow duration math).
func nonNegative(event int, name string, v, max float64) error {
	if math.IsNaN(v) || v < 0 || v > max {
		return fmt.Errorf("scenario: event %d: %s %v outside [0, %g]", event, name, v, max)
	}
	return nil
}

// Validate checks the scenario against the per-event-type parameter
// ranges. NewWeather validates again, so a hand-built Scenario cannot
// bypass the checks.
func (s *Scenario) Validate() error {
	if len(s.Events) > maxScenarioEvents {
		return fmt.Errorf("scenario: %d events exceeds the %d limit", len(s.Events), maxScenarioEvents)
	}
	for i := range s.Events {
		e := &s.Events[i]
		if err := nonNegative(i, "at_secs", e.AtSecs, 1e6); err != nil {
			return err
		}
		if err := nonNegative(i, "duration_secs", e.DurationSecs, 1e6); err != nil {
			return err
		}
		if e.Prefix != "" {
			if _, _, err := parseCIDRv4(e.Prefix); err != nil {
				return fmt.Errorf("scenario: event %d: %w", i, err)
			}
		}
		switch e.Type {
		case ScenarioBurstyLoss:
			for _, p := range []struct {
				name string
				v    float64
			}{
				{"p_good_bad", e.PGoodBad}, {"p_bad_good", e.PBadGood},
				{"loss_good", e.LossGood}, {"loss_bad", e.LossBad},
			} {
				if err := probRange(i, p.name, p.v); err != nil {
					return err
				}
			}
		case ScenarioLatency:
			if err := nonNegative(i, "delay_ms", e.DelayMS, 1e6); err != nil {
				return err
			}
			if err := nonNegative(i, "jitter_ms", e.JitterMS, 1e6); err != nil {
				return err
			}
			if err := nonNegative(i, "ramp_secs", e.RampSecs, 1e6); err != nil {
				return err
			}
		case ScenarioBlackout:
			if e.Prefix == "" {
				return fmt.Errorf("scenario: event %d: blackout requires a prefix", i)
			}
		case ScenarioCrossTraffic:
			if err := nonNegative(i, "capacity_pps", e.CapacityPPS, 1e9); err != nil {
				return err
			}
			if e.CapacityPPS <= 0 {
				return fmt.Errorf("scenario: event %d: cross_traffic requires capacity_pps > 0", i)
			}
			if err := nonNegative(i, "icmp_pps", e.ICMPPPS, 1e9); err != nil {
				return err
			}
		case ScenarioAsymLoss:
			if err := probRange(i, "forward_loss", e.ForwardLoss); err != nil {
				return err
			}
			if err := probRange(i, "reverse_loss", e.ReverseLoss); err != nil {
				return err
			}
		case ScenarioUnreachStorm:
			if err := nonNegative(i, "storm_pps", e.StormPPS, 1e9); err != nil {
				return err
			}
			if e.StormPPS <= 0 {
				return fmt.Errorf("scenario: event %d: unreach_storm requires storm_pps > 0", i)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown type %q", i, e.Type)
		}
	}
	return nil
}

// parseCIDRv4 parses an IPv4 CIDR ("10.1.0.0/16") into its masked
// network value and mask. Prefix lengths 1–32 are accepted.
func parseCIDRv4(s string) (network, mask uint32, err error) {
	ipStr, bitsStr, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("prefix %q is not a.b.c.d/len CIDR", s)
	}
	bits, err := strconv.Atoi(bitsStr)
	if err != nil || bits < 1 || bits > 32 {
		return 0, 0, fmt.Errorf("prefix %q length must be 1-32", s)
	}
	var ip uint32
	parts := strings.Split(ipStr, ".")
	if len(parts) != 4 {
		return 0, 0, fmt.Errorf("prefix %q is not a.b.c.d/len CIDR", s)
	}
	for _, p := range parts {
		o, err := strconv.Atoi(p)
		if err != nil || o < 0 || o > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, 0, fmt.Errorf("prefix %q has an invalid octet %q", s, p)
		}
		ip = ip<<8 | uint32(o)
	}
	m := cidrMask(bits)
	return ip & m, m, nil
}

// Timeline renders the compiled event timeline, one line per event with
// every effective parameter. Two scenarios with identical timelines
// play back identically from the same seed; the determinism test pins
// byte-for-byte equality across loads and runs.
func (s *Scenario) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q seed=%d events=%d\n", s.Name, s.Seed, len(s.Events))
	for i := range s.Events {
		e := &s.Events[i]
		fmt.Fprintf(&b, "[%3d] t=%.3fs", i, e.AtSecs)
		if e.DurationSecs > 0 {
			fmt.Fprintf(&b, "+%.3fs", e.DurationSecs)
		} else {
			b.WriteString("+inf")
		}
		fmt.Fprintf(&b, " %s", e.Type)
		if e.Prefix != "" {
			fmt.Fprintf(&b, " prefix=%s", e.Prefix)
		}
		switch e.Type {
		case ScenarioBurstyLoss:
			fmt.Fprintf(&b, " p_gb=%g p_bg=%g loss_good=%g loss_bad=%g",
				e.PGoodBad, e.PBadGood, e.LossGood, e.LossBad)
		case ScenarioLatency:
			fmt.Fprintf(&b, " delay=%gms jitter=%gms ramp=%gs", e.DelayMS, e.JitterMS, e.RampSecs)
		case ScenarioCrossTraffic:
			fmt.Fprintf(&b, " capacity=%gpps icmp=%gpps", e.CapacityPPS, e.ICMPPPS)
		case ScenarioAsymLoss:
			fmt.Fprintf(&b, " fwd=%g rev=%g", e.ForwardLoss, e.ReverseLoss)
		case ScenarioUnreachStorm:
			fmt.Fprintf(&b, " storm=%gpps valid_quote=%v", e.StormPPS, e.ValidQuote)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
