package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Transport is the subset of the engine's transport contract the fault
// injector decorates. Declared locally so netsim does not import the
// engine package (the engine imports netsim in its tests).
type Transport interface {
	Send(frame []byte) error
	Recv() <-chan []byte
	Stats() (sent, received, dropped uint64)
}

// SendError is a transport failure injected by FaultyTransport. It wraps
// a syscall errno (ENOBUFS for transient, EIO for fatal) so both the
// structural Transient() classifier and errno-based errors.Is checks
// agree on its class.
type SendError struct {
	transient bool
	errno     syscall.Errno
	reason    string
}

// Error implements error.
func (e *SendError) Error() string {
	kind := "fatal"
	if e.transient {
		kind = "transient"
	}
	return fmt.Sprintf("netsim: %s send fault (%s): %v", kind, e.reason, e.errno)
}

// Transient reports whether retrying the send may succeed.
func (e *SendError) Transient() bool { return e.transient }

// Unwrap exposes the underlying errno for errors.Is.
func (e *SendError) Unwrap() error { return e.errno }

func transientErr(reason string) error {
	return &SendError{transient: true, errno: syscall.ENOBUFS, reason: reason}
}

func fatalErr(reason string) error {
	return &SendError{transient: false, errno: syscall.EIO, reason: reason}
}

// FaultConfig describes a deterministic failure schedule. The zero value
// injects nothing.
type FaultConfig struct {
	// Seed keys the per-frame hash used by TransientProb, so two runs
	// with the same seed fail the same frames.
	Seed uint64

	// FailFirstN makes the first N send attempts *of each distinct
	// frame* fail with a transient error; attempt N+1 of that frame
	// succeeds. Keyed by frame content, so the schedule is immune to
	// thread interleaving. FailFirstN=1 with retries enabled must yield
	// the same unique-success set as a clean transport.
	FailFirstN int

	// TransientProb fails each send attempt with this probability
	// (seeded, per-attempt). 1.0 fails every attempt forever.
	TransientProb float64

	// FailFirstSends makes the first N send attempts overall (across
	// all frames and threads) fail transiently — a burst fault, the
	// shape of a full socket buffer at scan start.
	FailFirstSends int

	// FatalAfter injects a permanent fault: once this many attempts
	// (counted across all threads) have been made, every subsequent
	// send fails with a non-transient error. 0 disables.
	FatalAfter int

	// StallEvery blocks the sender for StallFor on every k-th attempt,
	// modeling a wedged driver. 0 disables.
	StallEvery int
	StallFor   time.Duration
}

// FaultyTransport wraps a Transport and injects failures per a
// deterministic FaultConfig. Receive and stats pass through untouched.
type FaultyTransport struct {
	inner Transport
	cfg   FaultConfig

	attemptCount atomic.Uint64 // all attempts, success or not
	injected     atomic.Uint64 // attempts that were failed

	mu       sync.Mutex
	perFrame map[uint64]int // frame hash -> attempts seen
}

// NewFaultyTransport decorates inner with the given fault schedule.
func NewFaultyTransport(inner Transport, cfg FaultConfig) *FaultyTransport {
	return &FaultyTransport{
		inner:    inner,
		cfg:      cfg,
		perFrame: make(map[uint64]int),
	}
}

// frameHash identifies the probe by seed-keyed content hash (see
// schedFrameHash); frames are unique per (dst, port) in a scan.
func (f *FaultyTransport) frameHash(frame []byte) uint64 {
	return schedFrameHash(f.cfg.Seed, frame)
}

// Send applies the fault schedule, forwarding to the wrapped transport
// only when no fault fires. Safe for concurrent use.
func (f *FaultyTransport) Send(frame []byte) error {
	attempt := f.attemptCount.Add(1) // 1-based

	if f.cfg.StallEvery > 0 && attempt%uint64(f.cfg.StallEvery) == 0 && f.cfg.StallFor > 0 {
		time.Sleep(f.cfg.StallFor)
	}

	if f.cfg.FatalAfter > 0 && attempt > uint64(f.cfg.FatalAfter) {
		f.injected.Add(1)
		return fatalErr("fatal-after threshold crossed")
	}

	if f.cfg.FailFirstSends > 0 && attempt <= uint64(f.cfg.FailFirstSends) {
		f.injected.Add(1)
		return transientErr("initial send burst fault")
	}

	if f.cfg.FailFirstN > 0 {
		h := f.frameHash(frame)
		f.mu.Lock()
		seen := f.perFrame[h]
		f.perFrame[h] = seen + 1
		f.mu.Unlock()
		if seen < f.cfg.FailFirstN {
			f.injected.Add(1)
			return transientErr("first attempts of frame fail")
		}
	}

	if f.cfg.TransientProb > 0 {
		// Mix the frame hash with the attempt ordinal so retries of the
		// same frame re-roll.
		if schedRoll(schedMix(f.frameHash(frame), attempt), f.cfg.TransientProb) {
			f.injected.Add(1)
			return transientErr("probabilistic transient fault")
		}
	}

	return f.inner.Send(frame)
}

// batchSender and releaser mirror the engine's optional transport
// extensions, declared locally for the same no-import reason as
// Transport above.
type batchSender interface {
	SendBatch(frames [][]byte) (int, error)
}

type releaser interface {
	Release(frame []byte)
}

type batchReceiver interface {
	RecvBatch(dst [][]byte) int
}

// SendBatch applies the fault schedule frame by frame, so a batch
// observes exactly the faults the same frames would see through Send:
// per-frame schedules (FailFirstN), attempt-ordinal schedules
// (FailFirstSends, FatalAfter, StallEvery), and probabilistic faults
// all count each frame as one attempt. The first fault splits the
// batch: frames[:sent] were delivered, the failing frame was not.
func (f *FaultyTransport) SendBatch(frames [][]byte) (int, error) {
	for i, frame := range frames {
		if err := f.Send(frame); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// Release forwards received-frame buffers to the inner transport's
// pool, when it has one.
func (f *FaultyTransport) Release(frame []byte) {
	if r, ok := f.inner.(releaser); ok {
		r.Release(frame)
	}
}

// Recv passes through to the wrapped transport.
func (f *FaultyTransport) Recv() <-chan []byte { return f.inner.Recv() }

// RecvBatch passes through to the wrapped transport's batch receive
// when it has one; otherwise it reports zero frames queued, which
// degrades the caller to per-frame Recv with unchanged semantics.
func (f *FaultyTransport) RecvBatch(dst [][]byte) int {
	if br, ok := f.inner.(batchReceiver); ok {
		return br.RecvBatch(dst)
	}
	return 0
}

// Stats passes through to the wrapped transport; injected failures never
// reach the inner link, so its sent count reflects real deliveries.
func (f *FaultyTransport) Stats() (sent, received, dropped uint64) {
	return f.inner.Stats()
}

// Injected returns how many send attempts the fault schedule failed.
func (f *FaultyTransport) Injected() uint64 { return f.injected.Load() }

// Attempts returns how many send attempts were made in total.
func (f *FaultyTransport) Attempts() uint64 { return f.attemptCount.Load() }
