package netsim

import (
	"testing"

	"zmapgo/internal/packet"
)

// drainPool empties the shared frame pool so reuse tests start from a
// known state.
func drainPool() {
	for {
		select {
		case <-framePool:
		default:
			return
		}
	}
}

func TestFramePoolRecycles(t *testing.T) {
	drainPool()
	b := make([]byte, frameBufCap)
	PutFrame(b)
	got := getFrame()
	if len(got) != 0 || cap(got) < frameBufCap {
		t.Fatalf("getFrame returned len %d cap %d", len(got), cap(got))
	}
	got = append(got, 1)
	if &got[0] != &b[0] {
		t.Error("pooled buffer was not reused")
	}
}

func TestFramePoolRejectsForeignBuffers(t *testing.T) {
	drainPool()
	PutFrame(make([]byte, frameBufCap-1)) // too small: a caller-owned slice
	select {
	case <-framePool:
		t.Error("undersized buffer entered the pool")
	default:
	}
}

// TestRecvPathReusesPooledBuffers pins the perf fix end to end: a
// response delivered by the link is built into a buffer the consumer
// previously released, not a fresh allocation.
func TestRecvPathReusesPooledBuffers(t *testing.T) {
	in := New(lossless(91))
	link := NewLink(in, 64, 0)
	defer link.Close()

	var ip uint32
	for ; ; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			break
		}
	}
	probe := buildSYNProbe(ip, 80, packet.LayoutMSS)

	drainPool()
	marker := make([]byte, frameBufCap)
	link.Release(marker) // consumer hands a buffer back

	if err := link.Send(probe); err != nil {
		t.Fatal(err)
	}
	frame := <-link.Recv()
	if len(frame) == 0 {
		t.Fatal("empty response frame")
	}
	if &frame[0] != &marker[0] {
		t.Error("response was not built into the released buffer")
	}
	link.Release(frame)
}

// TestDuplicateFaultDeliversDistinctBuffers guards the double-release
// hazard: the duplicate fault must never deliver the same backing array
// twice, or two later responses would share one buffer.
func TestDuplicateFaultDeliversDistinctBuffers(t *testing.T) {
	in := New(lossless(92))
	link := NewLink(in, 64, 0)
	defer link.Close()
	ft := NewRecvFaultTransport(link, RecvFaultConfig{Seed: 7, DuplicateProb: 1.0})
	defer ft.Stop()

	var ip uint32
	for ; ; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			break
		}
	}
	if err := ft.Send(buildSYNProbe(ip, 80, packet.LayoutMSS)); err != nil {
		t.Fatal(err)
	}
	a := <-ft.Recv()
	b := <-ft.Recv()
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("missing duplicate delivery")
	}
	if &a[0] == &b[0] {
		t.Fatal("duplicate delivered the same backing array twice")
	}
	ft.Release(a)
	ft.Release(b)
}

// BenchmarkRecvPath measures the full simulated receive path in steady
// state — respond, deliver, consume, release — and asserts the pooled
// buffers hold allocations per response to the small fixed cost of
// parsing and scheduling (frame buffers themselves must not allocate).
func BenchmarkRecvPath(b *testing.B) {
	in := New(lossless(93))
	link := NewLink(in, 1024, 0)
	defer link.Close()

	var ip uint32
	for ; ; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			break
		}
	}
	probe := buildSYNProbe(ip, 80, packet.LayoutMSS)
	// Warm the pool so the steady state is measured, not pool growth.
	for i := 0; i < 16; i++ {
		if err := link.Send(probe); err != nil {
			b.Fatal(err)
		}
		link.Release(<-link.Recv())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := link.Send(probe); err != nil {
			b.Fatal(err)
		}
		link.Release(<-link.Recv())
	}
	b.StopTimer()

	// Allocs-per-response assertion: parsing the probe costs a handful
	// of allocations (packet.Frame and friends), but the response buffer
	// is pooled. Without pooling this path sits several allocs higher;
	// the bound fails loudly if buffer reuse regresses.
	if b.N >= 100 {
		allocs := float64(testing.AllocsPerRun(100, func() {
			if err := link.Send(probe); err != nil {
				b.Fatal(err)
			}
			link.Release(<-link.Recv())
		}))
		const maxAllocsPerResponse = 8
		if allocs > maxAllocsPerResponse {
			b.Fatalf("recv path allocates %.1f objects per response, want <= %d",
				allocs, maxAllocsPerResponse)
		}
	}
}
