package netsim

import (
	"zmapgo/internal/packet"
)

// IPv6 host model. IPv6 cannot be exhaustively scanned, so the v6 world
// is organized around hitlists (as XMap/ZMapv6 deployments are): any
// 128-bit address can be queried, attributes are hashed from the full
// address, and responsiveness among hitlist-style addresses is much
// higher than the v4 base rate (hitlists are curated from known-live
// sources).

// v6LiveFraction is the fraction of queried v6 addresses with a host:
// calibrated for hitlist populations, not random address space.
const v6LiveFraction = 0.35

// v6hash folds a 128-bit address (and salt) into the attribute PRF.
func (in *Internet) v6hash(purpose uint64, addr [16]byte, port uint16) uint64 {
	h := in.cfg.Seed ^ purpose<<56 ^ uint64(port)<<40
	for i := 0; i < 16; i += 8 {
		word := uint64(addr[i])<<56 | uint64(addr[i+1])<<48 | uint64(addr[i+2])<<40 |
			uint64(addr[i+3])<<32 | uint64(addr[i+4])<<24 | uint64(addr[i+5])<<16 |
			uint64(addr[i+6])<<8 | uint64(addr[i+7])
		h = splitmix64(h ^ word)
	}
	return h
}

// Live6 reports whether a host exists at the v6 address.
func (in *Internet) Live6(addr [16]byte) bool {
	return uniform(in.v6hash(purposeLive, addr, 0)) < v6LiveFraction
}

// ServiceOpen6 reports whether a TCP service listens at (addr, port).
// Port densities reuse the v4 tables conditioned on liveness.
func (in *Internet) ServiceOpen6(addr [16]byte, port uint16) bool {
	if !in.Live6(addr) {
		return false
	}
	p, ok := in.cfg.AssignedPortOpen[port]
	if !ok {
		p = in.cfg.TailPortOpen
	}
	// Hitlist hosts are live by construction, so their per-port service
	// density runs ~3x the v4 conditional rate (services are why they
	// appear on hitlists).
	p *= 3
	if p > 1 {
		p = 1
	}
	return uniform(in.v6hash(purposeService, addr, port)) < p
}

// Respond6 answers an IPv6 TCP SYN probe frame, mirroring respondTCP:
// SYN-ACK for open services (option gating reuses the v4 stack model),
// RST from live hosts on closed ports, silence otherwise. There are no
// v6 middleboxes in the model — SYN-ACK-everything prefixes are a v4
// telescope phenomenon.
func (in *Internet) Respond6(probe []byte) []Response {
	f, err := packet.ParseIPv6(probe)
	if err != nil || f.TCP == nil {
		return nil
	}
	if f.TCP.Flags != packet.FlagSYN {
		return nil
	}
	if in.lost(in.cfg.ProbeLoss) {
		return nil
	}
	addr, port := f.IP.Dst, f.TCP.DstPort
	rttKey := uint32(in.v6hash(purposeLatency, addr, 0))
	rtt := in.RTT(rttKey)
	if in.ServiceOpen6(addr, port) && in.acceptsSYN6(addr, port, f.TCP.Options) {
		if in.lost(in.cfg.ResponseLoss) {
			return nil
		}
		return []Response{{Delay: rtt, Frame: in.buildTCP6Reply(f, packet.FlagSYN|packet.FlagACK)}}
	}
	if in.Live6(addr) && uniform(in.v6hash(purposeRST, addr, port)) < in.cfg.RSTFraction {
		if in.lost(in.cfg.ResponseLoss) {
			return nil
		}
		return []Response{{Delay: rtt, Frame: in.buildTCP6Reply(f, packet.FlagRST|packet.FlagACK)}}
	}
	return nil
}

// acceptsSYN6 applies the option-sensitivity model to v6 services.
func (in *Internet) acceptsSYN6(addr [16]byte, port uint16, options []byte) bool {
	u := uniform(in.v6hash(purposeOptions, addr, port))
	if u < in.cfg.RequireOptionFraction {
		kinds := packet.OptionKinds(options)
		for kind, prob := range in.cfg.OptionAcceptProb {
			if !kinds[kind] {
				continue
			}
			if uniform(in.v6hash(purposeOptions+16+uint64(kind), addr, port)) < prob {
				return true
			}
		}
		return false
	}
	return true
}

func (in *Internet) buildTCP6Reply(f *packet.Frame6, flags byte) []byte {
	addr, port := f.IP.Dst, f.TCP.DstPort
	var opts []byte
	if flags&packet.FlagSYN != 0 {
		opts = packet.BuildOptions(packet.LayoutMSS, 0)
	}
	buf := make([]byte, 0, 96)
	buf = packet.AppendEthernet(buf, hostMAC, f.EthSrc, packet.EtherTypeIPv6)
	buf = packet.AppendIPv6(buf, packet.IPv6Header{
		NextHeader: packet.ProtocolTCP,
		HopLimit:   64,
		Src:        f.IP.Dst,
		Dst:        f.IP.Src,
	}, packet.TCPHeaderLen+len(opts))
	buf, _ = packet.AppendTCP6(buf, packet.TCP{
		SrcPort: port,
		DstPort: f.TCP.SrcPort,
		Seq:     uint32(in.v6hash(purposeService+32, addr, port)),
		Ack:     f.TCP.Seq + 1,
		Flags:   flags,
		Window:  28960,
		Options: opts,
	}, f.IP.Dst, f.IP.Src, nil) // BuildOptions layouts are 4-aligned; cannot fail
	return buf
}
