package netsim

import (
	"strings"
	"testing"
	"time"

	"zmapgo/internal/packet"
)

func sim(seed uint64) *Internet { return New(DefaultConfig(seed)) }

// lossless returns a config with packet loss disabled, for exact checks.
func lossless(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.ProbeLoss, cfg.ResponseLoss, cfg.PathBadFraction = 0, 0, 0
	return cfg
}

var probeSrcMAC = packet.MAC{0x02, 0, 0, 0, 0, 9}

func buildSYNProbe(dst uint32, port uint16, layout packet.OptionLayout) []byte {
	opts := packet.BuildOptions(layout, 12345)
	buf := packet.AppendEthernet(nil, probeSrcMAC, packet.MAC{}, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID: packet.ZMapIPID, TTL: 255, Protocol: packet.ProtocolTCP,
		Src: 0xC0000201, Dst: dst,
	}, packet.TCPHeaderLen+len(opts))
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: 54321, DstPort: port, Seq: 0x1000, Flags: packet.FlagSYN,
		Window: 65535, Options: opts,
	}, 0xC0000201, dst, nil)
	return buf
}

func TestDeterminism(t *testing.T) {
	a, b := sim(7), sim(7)
	for ip := uint32(0); ip < 5000; ip++ {
		if a.Live(ip) != b.Live(ip) {
			t.Fatal("Live differs between identical seeds")
		}
		if a.ServiceOpen(ip, 80) != b.ServiceOpen(ip, 80) {
			t.Fatal("ServiceOpen differs between identical seeds")
		}
		if a.Middlebox(ip) != b.Middlebox(ip) {
			t.Fatal("Middlebox differs between identical seeds")
		}
	}
}

func TestSeedsProduceDifferentPopulations(t *testing.T) {
	a, b := sim(1), sim(2)
	same := 0
	const n = 10000
	for ip := uint32(0); ip < n; ip++ {
		if a.Live(ip) == b.Live(ip) {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical liveness")
	}
}

func TestLiveFractionCalibrated(t *testing.T) {
	in := sim(3)
	live := 0
	const n = 200000
	for ip := uint32(0); ip < n; ip++ {
		if in.Live(ip) {
			live++
		}
	}
	frac := float64(live) / n
	want := in.Config().LiveFraction
	if frac < want*0.9 || frac > want*1.1 {
		t.Errorf("live fraction %.4f, want ~%.2f", frac, want)
	}
}

func TestServiceRequiresLiveHost(t *testing.T) {
	in := sim(4)
	for ip := uint32(0); ip < 50000; ip++ {
		if !in.Live(ip) && in.ServiceOpen(ip, 80) {
			t.Fatalf("dead host %d has open service", ip)
		}
	}
}

func TestMiddleboxPerPrefix(t *testing.T) {
	in := sim(5)
	// All addresses in one /16 share a middlebox decision.
	found := false
	for prefix := uint32(0); prefix < 3000 && !found; prefix++ {
		base := prefix << 16
		if in.Middlebox(base) {
			found = true
			for off := uint32(0); off < 1000; off++ {
				if !in.Middlebox(base | off) {
					t.Fatal("middlebox decision differs within a /16")
				}
			}
		}
	}
	if !found {
		t.Error("no middlebox prefix among 3000 /16s at 0.4% density; suspicious")
	}
}

func TestOptionSensitiveHitrates(t *testing.T) {
	// The Figure 7 invariant at population level: among open services,
	// optionless SYNs reach ~98%, MSS-only >99.9%, and a full OS layout
	// reaches ~100%.
	in := New(lossless(6))
	var open, none, mssOnly, linux int
	noneOpts := packet.BuildOptions(packet.LayoutNone, 0)
	mssOpts := packet.BuildOptions(packet.LayoutMSS, 0)
	linuxOpts := packet.BuildOptions(packet.LayoutLinux, 0)
	for ip := uint32(0); ip < 3_000_000 && open < 40000; ip += 3 {
		if !in.ServiceOpen(ip, 80) {
			continue
		}
		open++
		if in.AcceptsSYN(ip, 80, noneOpts) {
			none++
		}
		if in.AcceptsSYN(ip, 80, mssOpts) {
			mssOnly++
		}
		if in.AcceptsSYN(ip, 80, linuxOpts) {
			linux++
		}
	}
	if open < 1000 {
		t.Fatalf("too few open services sampled: %d", open)
	}
	noneRate := float64(none) / float64(open)
	mssRate := float64(mssOnly) / float64(open)
	linuxRate := float64(linux) / float64(open)
	if noneRate > 0.99 || noneRate < 0.97 {
		t.Errorf("optionless acceptance %.4f, want ~0.98", noneRate)
	}
	if mssRate < 0.9995 {
		t.Errorf("MSS-only acceptance %.5f, want > 0.9995", mssRate)
	}
	if linuxRate < mssRate {
		t.Errorf("linux layout acceptance %.5f below MSS %.5f", linuxRate, mssRate)
	}
	// Relative improvement of options over none: 1.5-2.0% band.
	lift := linuxRate/noneRate - 1
	if lift < 0.013 || lift > 0.025 {
		t.Errorf("option hitrate lift %.4f, want ~0.015-0.020", lift)
	}
}

func TestOrderSensitiveHostsAcceptOnlyOSLayouts(t *testing.T) {
	in := New(lossless(8))
	// Find an order-sensitive service by scanning.
	foundIP := uint32(0)
	found := false
	for ip := uint32(0); ip < 30_000_000; ip++ {
		if in.optionReq(ip, 80) == requiresOSOrder && in.ServiceOpen(ip, 80) {
			foundIP = ip
			found = true
			break
		}
	}
	if !found {
		t.Skip("no order-sensitive open service in sample (density 2.3e-5)")
	}
	for _, l := range []packet.OptionLayout{packet.LayoutLinux, packet.LayoutBSD, packet.LayoutWindows} {
		if !in.AcceptsSYN(foundIP, 80, packet.BuildOptions(l, 99)) {
			t.Errorf("order-sensitive host rejected %v layout", l)
		}
	}
	for _, l := range []packet.OptionLayout{packet.LayoutNone, packet.LayoutMSS, packet.LayoutOptimal} {
		if in.AcceptsSYN(foundIP, 80, packet.BuildOptions(l, 99)) {
			t.Errorf("order-sensitive host accepted %v layout", l)
		}
	}
}

func TestRespondSYNACKForOpenService(t *testing.T) {
	in := New(lossless(10))
	// Find an open non-middlebox service.
	var ip uint32
	for ; ; ip++ {
		if in.ServiceOpen(ip, 80) && !in.Middlebox(ip) && in.AcceptsSYN(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) && in.BlowbackCount(ip, 80) == 0 {
			break
		}
	}
	rs := in.Respond(buildSYNProbe(ip, 80, packet.LayoutMSS))
	if len(rs) != 1 {
		t.Fatalf("got %d responses, want 1", len(rs))
	}
	f, err := packet.Parse(rs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCP == nil || f.TCP.Flags != packet.FlagSYN|packet.FlagACK {
		t.Fatalf("expected SYN-ACK, got %+v", f.TCP)
	}
	if f.IP.Src != ip || f.TCP.SrcPort != 80 || f.TCP.DstPort != 54321 {
		t.Error("response tuple not mirrored")
	}
	if f.TCP.Ack != 0x1000+1 {
		t.Errorf("ack = %d, want seq+1", f.TCP.Ack)
	}
	if rs[0].Delay != in.RTT(ip) {
		t.Error("delay should equal host RTT")
	}
}

func TestRespondRSTForClosedPort(t *testing.T) {
	in := New(lossless(11))
	var ip uint32
	found := false
	for ip = 0; ip < 1_000_000; ip++ {
		if in.Live(ip) && !in.Middlebox(ip) && !in.ServiceOpen(ip, 81) &&
			uniform(in.hash(purposeRST, ip, 81)) < in.Config().RSTFraction {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no RST host found")
	}
	rs := in.Respond(buildSYNProbe(ip, 81, packet.LayoutMSS))
	if len(rs) != 1 {
		t.Fatalf("got %d responses, want 1 RST", len(rs))
	}
	f, _ := packet.Parse(rs[0].Frame)
	if f.TCP == nil || f.TCP.Flags&packet.FlagRST == 0 {
		t.Fatal("expected RST")
	}
}

func TestRespondSilenceForDeadHost(t *testing.T) {
	in := New(lossless(12))
	var ip uint32
	for ; ; ip++ {
		if !in.Live(ip) && !in.Middlebox(ip) {
			break
		}
	}
	if rs := in.Respond(buildSYNProbe(ip, 80, packet.LayoutMSS)); len(rs) != 0 {
		t.Fatalf("dead host responded: %d frames", len(rs))
	}
}

func TestMiddleboxSYNACKsEverything(t *testing.T) {
	in := New(lossless(13))
	var ip uint32
	for ; ; ip++ {
		if in.Middlebox(ip) && !in.Live(ip) {
			break
		}
	}
	for _, port := range []uint16{80, 81, 9999, 31337} {
		rs := in.Respond(buildSYNProbe(ip, port, packet.LayoutNone))
		if len(rs) != 1 {
			t.Fatalf("middlebox port %d: %d responses, want 1", port, len(rs))
		}
		f, _ := packet.Parse(rs[0].Frame)
		if f.TCP.Flags != packet.FlagSYN|packet.FlagACK {
			t.Fatal("middlebox should SYN-ACK")
		}
		// And there is no banner behind it.
		if in.Banner(ip, port) != "" {
			t.Error("middlebox host has a banner")
		}
	}
}

func TestRespondIgnoresNonSYN(t *testing.T) {
	in := New(lossless(14))
	probe := buildSYNProbe(1, 80, packet.LayoutMSS)
	// Flip SYN to ACK.
	flagIdx := packet.EthernetHeaderLen + packet.IPv4HeaderLen + 13
	probe[flagIdx] = packet.FlagACK
	// Recompute TCP checksum irrelevant: responder parses but only
	// checks flags, so response must be empty regardless.
	if rs := in.Respond(probe); len(rs) != 0 {
		t.Error("non-SYN TCP probe elicited a response")
	}
	if rs := in.Respond([]byte{1, 2, 3}); rs != nil {
		t.Error("garbage probe elicited a response")
	}
}

func TestBlowbackHeavyTail(t *testing.T) {
	in := sim(15)
	cfg := in.Config()
	var blowers, maxDups int
	const samples = 400000
	total := 0
	for ip := uint32(0); ip < samples; ip++ {
		d := in.BlowbackCount(ip, 80)
		if d > 0 {
			blowers++
			total += d
			if d > maxDups {
				maxDups = d
			}
		}
	}
	frac := float64(blowers) / samples
	if frac < cfg.BlowbackFraction*0.8 || frac > cfg.BlowbackFraction*1.2 {
		t.Errorf("blowback fraction %.4f, want ~%.3f", frac, cfg.BlowbackFraction)
	}
	if maxDups < 100 {
		t.Errorf("max duplicate train %d; want heavy tail reaching 100+", maxDups)
	}
	if maxDups > cfg.BlowbackMax {
		t.Errorf("duplicate train %d exceeds cap %d", maxDups, cfg.BlowbackMax)
	}
}

func TestBlowbackProducesDuplicateFrames(t *testing.T) {
	in := New(lossless(16))
	var ip uint32
	found := false
	for ip = 0; ip < 3_000_000; ip++ {
		if in.ServiceOpen(ip, 80) && !in.Middlebox(ip) &&
			in.AcceptsSYN(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) &&
			in.BlowbackCount(ip, 80) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no blowback host found")
	}
	rs := in.Respond(buildSYNProbe(ip, 80, packet.LayoutMSS))
	if len(rs) < 3 {
		t.Fatalf("blowback host sent %d frames, want >= 3", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Delay <= rs[i-1].Delay {
			t.Error("duplicate delays not increasing")
		}
	}
}

func TestICMPEcho(t *testing.T) {
	in := New(lossless(17))
	var live, dead uint32
	foundLive, foundDead := false, false
	for ip := uint32(0); ip < 1_000_000 && !(foundLive && foundDead); ip++ {
		if !foundLive && in.Live(ip) && uniform(in.hash(purposeICMP, ip, 0)) < in.Config().ICMPEchoFraction {
			live, foundLive = ip, true
		}
		if !foundDead && !in.Live(ip) {
			dead, foundDead = ip, true
		}
	}
	probe := func(dst uint32) []byte {
		buf := packet.AppendEthernet(nil, probeSrcMAC, packet.MAC{}, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 255, Protocol: packet.ProtocolICMP, Src: 9, Dst: dst}, packet.ICMPHeaderLen)
		return packet.AppendICMPEcho(buf, packet.ICMPEchoRequest, 7, 9, nil)
	}
	rs := in.Respond(probe(live))
	if len(rs) != 1 {
		t.Fatalf("live host echo: %d responses", len(rs))
	}
	f, _ := packet.Parse(rs[0].Frame)
	if f.ICMP == nil || f.ICMP.Type != packet.ICMPEchoReply || f.ICMP.ID != 7 || f.ICMP.Seq != 9 {
		t.Fatalf("bad echo reply: %+v", f.ICMP)
	}
	if rs := in.Respond(probe(dead)); len(rs) != 0 {
		t.Error("dead host replied to ping")
	}
}

func TestUDPResponses(t *testing.T) {
	in := New(lossless(18))
	probe := func(dst uint32, port uint16) []byte {
		payload := []byte("probe")
		buf := packet.AppendEthernet(nil, probeSrcMAC, packet.MAC{}, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 255, Protocol: packet.ProtocolUDP, Src: 9, Dst: dst}, packet.UDPHeaderLen+len(payload))
		return packet.AppendUDP(buf, 44444, port, 9, dst, payload)
	}
	var openIP, unreachIP uint32
	foundOpen, foundUnreach := false, false
	for ip := uint32(0); ip < 3_000_000 && !(foundOpen && foundUnreach); ip++ {
		if !foundOpen && in.UDPServiceOpen(ip, 53) {
			openIP, foundOpen = ip, true
		}
		if !foundUnreach && in.Live(ip) && !in.UDPServiceOpen(ip, 53) &&
			uniform(in.hash(purposeUDP+8, ip, 53)) < in.Config().UDPUnreachFraction {
			unreachIP, foundUnreach = ip, true
		}
	}
	if !foundOpen || !foundUnreach {
		t.Fatal("could not find UDP test hosts")
	}
	rs := in.Respond(probe(openIP, 53))
	if len(rs) != 1 {
		t.Fatalf("udp open: %d responses", len(rs))
	}
	f, _ := packet.Parse(rs[0].Frame)
	if f.UDP == nil || f.UDP.SrcPort != 53 {
		t.Fatalf("expected UDP reply, got %+v", f)
	}
	rs = in.Respond(probe(unreachIP, 53))
	if len(rs) != 1 {
		t.Fatalf("udp closed: %d responses", len(rs))
	}
	f, err := packet.Parse(rs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.ICMP == nil || f.ICMP.Type != packet.ICMPDestUnreach || f.ICMP.Code != 3 {
		t.Fatalf("expected ICMP port unreachable, got %+v", f.ICMP)
	}
}

func TestTransientLossIndependentAcrossAttempts(t *testing.T) {
	// Loss has two components: fast-varying independent loss and
	// correlated per-path outages. Across a population of responsive
	// hosts, the aggregate single-probe miss rate should land near the
	// 2.7% Wan et al. figure; per host, repeats on a clean path rarely
	// miss while a bad path misses most attempts.
	in := sim(19)
	const vantage = 0xC0000201
	opts := packet.BuildOptions(packet.LayoutMSS, 0)
	var probes, misses int
	var badHost, cleanHost uint32
	foundBad, foundClean := false, false
	for ip := uint32(0); ip < 30_000_000 && probes < 20000; ip += 7 {
		if !in.ExpectedSYNACK(ip, 80, opts) {
			continue
		}
		probes++
		lost := in.PathBad(vantage, ip) && in.LossDrawAt(in.Config().PathBadLossProb)
		if !lost {
			lost = in.LossDraw() || in.LossDraw()
		}
		if lost {
			misses++
		}
		if !foundBad && in.PathBad(vantage, ip) {
			badHost, foundBad = ip, true
		}
		if !foundClean && !in.PathBad(vantage, ip) {
			cleanHost, foundClean = ip, true
		}
	}
	if probes < 5000 {
		t.Fatalf("only %d responsive hosts sampled", probes)
	}
	missRate := float64(misses) / float64(probes)
	if missRate < 0.018 || missRate > 0.038 {
		t.Errorf("aggregate single-probe miss rate %.4f, want ~0.027", missRate)
	}
	if !foundBad || !foundClean {
		t.Fatal("did not sample both path classes")
	}
	// Path decisions are stable for the window: retries from the same
	// vantage keep hitting the bad path.
	if !in.PathBad(vantage, badHost) || in.PathBad(vantage, cleanHost) {
		t.Error("PathBad not stable")
	}
	// A different vantage draws an independent path decision; over many
	// bad-path hosts most are clean from elsewhere.
	const vantage2 = 0xC6336401
	badBoth, badA := 0, 0
	for ip := uint32(0); ip < 10_000_000; ip += 251 {
		if in.PathBad(vantage, ip) {
			badA++
			if in.PathBad(vantage2, ip) {
				badBoth++
			}
		}
	}
	if badA == 0 {
		t.Fatal("no bad paths sampled")
	}
	if frac := float64(badBoth) / float64(badA); frac > 0.10 {
		t.Errorf("%.3f of bad paths bad from both vantages; should be ~PathBadFraction", frac)
	}
}

func TestBannerStableAndProtocolConsistent(t *testing.T) {
	in := New(lossless(20))
	var ip uint32
	for ; ; ip++ {
		if in.ServiceOpen(ip, 80) && in.ServiceProtocol(ip, 80) == ProtoHTTP {
			break
		}
	}
	b1, b2 := in.Banner(ip, 80), in.Banner(ip, 80)
	if b1 == "" || b1 != b2 {
		t.Error("banner not stable")
	}
	if !strings.HasPrefix(b1, "HTTP/1.1") {
		t.Errorf("HTTP banner %q", b1)
	}
	// Closed port has no banner.
	var closed uint32
	for ; ; closed++ {
		if !in.ServiceOpen(closed, 80) {
			break
		}
	}
	if in.Banner(closed, 80) != "" {
		t.Error("closed port has banner")
	}
}

func TestRTTBounds(t *testing.T) {
	in := sim(21)
	cfg := in.Config()
	for ip := uint32(0); ip < 10000; ip++ {
		rtt := in.RTT(ip)
		if rtt < cfg.RTTMin || rtt > cfg.RTTMax {
			t.Fatalf("RTT %v outside [%v, %v]", rtt, cfg.RTTMin, cfg.RTTMax)
		}
	}
	if in.RTT(1) != in.RTT(1) {
		t.Error("RTT not stable per host")
	}
}

func TestLinkDelivery(t *testing.T) {
	in := New(lossless(22))
	link := NewLink(in, 1024, 0) // deliver immediately
	defer link.Close()
	responses := 0
	probes := 0
	for ip := uint32(0); ip < 30000; ip++ {
		if !in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			continue
		}
		probes++
		link.Send(buildSYNProbe(ip, 80, packet.LayoutMSS))
	drain:
		for {
			select {
			case <-link.Recv():
				responses++
			default:
				break drain
			}
		}
		if probes >= 200 {
			break
		}
	}
	if responses < probes {
		t.Errorf("got %d responses for %d hits (lossless, immediate)", responses, probes)
	}
	sent, rcvd, dropped := link.Stats()
	if sent == 0 || rcvd == 0 {
		t.Error("stats not counting")
	}
	_ = dropped
}

func TestLinkScaledDelays(t *testing.T) {
	in := New(lossless(23))
	link := NewLink(in, 1024, 1e-4) // 100ms RTT -> 10us
	defer link.Close()
	var ip uint32
	for ; ; ip++ {
		if in.ExpectedSYNACK(ip, 443, packet.BuildOptions(packet.LayoutMSS, 0)) {
			break
		}
	}
	link.Send(buildSYNProbe(ip, 443, packet.LayoutMSS))
	select {
	case <-link.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("scaled delivery never arrived")
	}
}

func TestLinkDropsWhenFull(t *testing.T) {
	in := New(lossless(24))
	link := NewLink(in, 1, 0)
	defer link.Close()
	sent := 0
	for ip := uint32(0); sent < 50; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			link.Send(buildSYNProbe(ip, 80, packet.LayoutMSS))
			sent++
		}
	}
	_, _, dropped := link.Stats()
	if dropped == 0 {
		t.Error("full 1-slot ring never dropped")
	}
}

func TestLinkCloseStopsDelivery(t *testing.T) {
	in := New(lossless(25))
	link := NewLink(in, 8, 1e-5)
	var ip uint32
	for ; ; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			break
		}
	}
	link.Send(buildSYNProbe(ip, 80, packet.LayoutMSS))
	link.Close()
	link.Drain()
	// No panic and no guarantee of delivery; just ensure Stats is sane.
	sent, _, _ := link.Stats()
	if sent != 1 {
		t.Errorf("sent = %d, want 1", sent)
	}
}

func BenchmarkRespondSYN(b *testing.B) {
	in := New(lossless(30))
	probe := buildSYNProbe(12345, 80, packet.LayoutMSS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchResp = in.Respond(probe)
	}
}

func BenchmarkServiceOpen(b *testing.B) {
	in := sim(31)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = in.ServiceOpen(uint32(i), 80)
	}
	benchBool = sink
}

var (
	benchResp []Response
	benchBool bool
)

func TestICMPRateLimiting(t *testing.T) {
	cfg := lossless(26)
	cfg.ICMPRateLimitFraction = 1.0 // every host rate limits
	cfg.ICMPRateLimit = 3
	in := New(cfg)
	var ip uint32
	for ; ; ip++ {
		if in.Live(ip) && uniform(in.hash(purposeICMP, ip, 0)) < cfg.ICMPEchoFraction {
			break
		}
	}
	probe := func() []byte {
		buf := packet.AppendEthernet(nil, probeSrcMAC, packet.MAC{}, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 255, Protocol: packet.ProtocolICMP, Src: 9, Dst: ip}, packet.ICMPHeaderLen)
		return packet.AppendICMPEcho(buf, packet.ICMPEchoRequest, 7, 9, nil)
	}
	replies := 0
	for i := 0; i < 10; i++ {
		if len(in.Respond(probe())) > 0 {
			replies++
		}
	}
	if replies != 3 {
		t.Errorf("rate-limited host replied %d times, want 3", replies)
	}
}

func TestSYNACKProbeGetsRSTFromLiveHost(t *testing.T) {
	in := New(lossless(27))
	var live uint32
	for ; ; live++ {
		if in.Live(live) && uniform(in.hash(purposeRST+8, live, 80)) < in.Config().SYNACKRSTFraction {
			break
		}
	}
	probe := func(dst uint32) []byte {
		buf := packet.AppendEthernet(nil, probeSrcMAC, packet.MAC{}, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 255, Protocol: packet.ProtocolTCP, Src: 9, Dst: dst}, packet.TCPHeaderLen)
		buf, _ = packet.AppendTCP(buf, packet.TCP{
			SrcPort: 54321, DstPort: 80, Seq: 100, Ack: 0xABCDEF01,
			Flags: packet.FlagSYN | packet.FlagACK,
		}, 9, dst, nil)
		return buf
	}
	rs := in.Respond(probe(live))
	if len(rs) != 1 {
		t.Fatalf("live host: %d responses to SYN-ACK, want 1", len(rs))
	}
	f, err := packet.Parse(rs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCP == nil || f.TCP.Flags != packet.FlagRST {
		t.Fatalf("expected bare RST, got %+v", f.TCP)
	}
	if f.TCP.Seq != 0xABCDEF01 {
		t.Errorf("RST seq %x, want the probe's ack", f.TCP.Seq)
	}
	var dead uint32
	for ; ; dead++ {
		if !in.Live(dead) {
			break
		}
	}
	if rs := in.Respond(probe(dead)); len(rs) != 0 {
		t.Error("dead host answered a SYN-ACK probe")
	}
}

func TestProtocolStrings(t *testing.T) {
	want := map[Protocol]string{
		ProtoNone: "none", ProtoHTTP: "http", ProtoTLS: "tls",
		ProtoSSH: "ssh", ProtoTelnet: "telnet", ProtoMikrotikAPI: "mikrotik",
		Protocol(99): "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Protocol(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestServiceProtocolDistribution(t *testing.T) {
	// Assigned ports host their assigned protocols; the tail is web-heavy.
	in := New(lossless(28))
	counts := map[uint16]map[Protocol]int{}
	ports := []uint16{80, 443, 22, 23, 8728, 8080, 12345}
	for _, p := range ports {
		counts[p] = map[Protocol]int{}
	}
	for ip := uint32(0); ip < 3_000_000; ip += 2 {
		for _, p := range ports {
			if in.ServiceOpen(ip, p) {
				counts[p][in.ServiceProtocol(ip, p)]++
			}
		}
	}
	check := func(port uint16, proto Protocol) {
		total := 0
		for _, n := range counts[port] {
			total += n
		}
		if total == 0 {
			t.Fatalf("no services sampled on port %d", port)
		}
		if frac := float64(counts[port][proto]) / float64(total); frac < 0.5 {
			t.Errorf("port %d: %v fraction %.2f, want majority", port, proto, frac)
		}
	}
	check(80, ProtoHTTP)
	check(443, ProtoTLS)
	check(22, ProtoSSH)
	check(23, ProtoTelnet)
	check(8728, ProtoMikrotikAPI)
	check(8080, ProtoHTTP)
	// Tail port: mostly HTTP+TLS combined.
	tailTotal, tailWeb := 0, 0
	for proto, n := range counts[12345] {
		tailTotal += n
		if proto == ProtoHTTP || proto == ProtoTLS {
			tailWeb += n
		}
	}
	if tailTotal > 0 && float64(tailWeb)/float64(tailTotal) < 0.7 {
		t.Errorf("tail web fraction %.2f, want >= 0.7 (LZR)", float64(tailWeb)/float64(tailTotal))
	}
}

func TestBannersPerProtocol(t *testing.T) {
	in := New(lossless(29))
	wantPrefix := map[Protocol]string{
		ProtoHTTP:        "HTTP/1.1",
		ProtoTLS:         "TLSv1.3",
		ProtoSSH:         "SSH-2.0",
		ProtoTelnet:      "login:",
		ProtoMikrotikAPI: "!done",
	}
	found := map[Protocol]bool{}
	ports := []uint16{80, 443, 22, 23, 8728}
	for ip := uint32(0); ip < 3_000_000 && len(found) < len(wantPrefix); ip++ {
		for _, p := range ports {
			if !in.ServiceOpen(ip, p) {
				continue
			}
			proto := in.ServiceProtocol(ip, p)
			prefix, care := wantPrefix[proto]
			if !care || found[proto] {
				continue
			}
			b := in.Banner(ip, p)
			if !strings.HasPrefix(b, prefix) {
				t.Errorf("%v banner %q, want prefix %q", proto, b, prefix)
			}
			found[proto] = true
		}
	}
	if len(found) < len(wantPrefix) {
		t.Errorf("only found banners for %d protocols", len(found))
	}
	// ProtoNone services have no banner.
	for ip := uint32(0); ip < 3_000_000; ip++ {
		if in.ServiceOpen(ip, 80) && in.ServiceProtocol(ip, 80) == ProtoNone {
			if in.Banner(ip, 80) != "" {
				t.Error("bannerless service produced a banner")
			}
			break
		}
	}
}

func TestLossDraw(t *testing.T) {
	in := sim(30)
	losses := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if in.LossDraw() {
			losses++
		}
	}
	rate := float64(losses) / n
	want := in.Config().ProbeLoss
	if rate < want*0.8 || rate > want*1.2 {
		t.Errorf("loss rate %.4f, want ~%.4f", rate, want)
	}
	noLoss := New(lossless(30))
	if noLoss.LossDraw() {
		t.Error("lossless config drew a loss")
	}
}

func TestRTTZeroSpan(t *testing.T) {
	cfg := lossless(31)
	cfg.RTTMin, cfg.RTTMax = 50*time.Millisecond, 50*time.Millisecond
	in := New(cfg)
	if in.RTT(123) != 50*time.Millisecond {
		t.Error("degenerate RTT span should return RTTMin")
	}
}

func TestBlowbackDefaults(t *testing.T) {
	cfg := lossless(32)
	cfg.BlowbackAlpha = 0 // zero alpha falls back to 1.2
	cfg.BlowbackFraction = 1
	in := New(cfg)
	if in.BlowbackCount(1, 80) < 1 {
		t.Error("blowback host with zero alpha returned no duplicates")
	}
}

func TestNewLinkDefaultBuffer(t *testing.T) {
	in := New(lossless(33))
	link := NewLink(in, 0, 0) // zero buffer takes the default
	defer link.Close()
	if cap(link.recv) == 0 {
		t.Error("default buffer not applied")
	}
}

func TestV6HostModel(t *testing.T) {
	in := New(lossless(34))
	mk := func(last byte) [16]byte {
		var a [16]byte
		a[0], a[1], a[15] = 0x20, 0x01, last
		return a
	}
	// Determinism and liveness density.
	live := 0
	const n = 20000
	for i := 0; i < n; i++ {
		var a [16]byte
		a[0], a[1] = 0x20, 0x01
		a[12], a[13], a[14], a[15] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		if in.Live6(a) != in.Live6(a) {
			t.Fatal("Live6 not deterministic")
		}
		if in.Live6(a) {
			live++
		}
	}
	frac := float64(live) / n
	if frac < 0.3 || frac > 0.4 {
		t.Errorf("v6 hitlist liveness %.3f, want ~0.35", frac)
	}
	// Services require liveness.
	for i := byte(0); i < 200; i++ {
		a := mk(i)
		if !in.Live6(a) && in.ServiceOpen6(a, 443) {
			t.Fatal("dead v6 host has a service")
		}
	}
}

func TestRespond6RejectsGarbage(t *testing.T) {
	in := New(lossless(35))
	if in.Respond6([]byte{1, 2, 3}) != nil {
		t.Error("garbage v6 frame elicited a response")
	}
	// A v4 frame routed through Respond must not hit the v6 path and
	// vice versa; Respond dispatches by ethertype.
	v4 := buildSYNProbe(1, 80, packet.LayoutMSS)
	if in.Respond6(v4) != nil {
		t.Error("v4 frame answered by v6 responder")
	}
}

// recordedDelays collects DelayRecorder calls for assertions.
type recordedDelays struct {
	ds []time.Duration
}

func (r *recordedDelays) Record(d time.Duration) { r.ds = append(r.ds, d) }

func TestLinkDelayRecorder(t *testing.T) {
	in := New(lossless(29))
	link := NewLink(in, 1024, 0)
	defer link.Close()
	rec := &recordedDelays{}
	link.SetDelayRecorder(rec)
	var ip uint32
	for ; ; ip++ {
		if in.ExpectedSYNACK(ip, 80, packet.BuildOptions(packet.LayoutMSS, 0)) {
			break
		}
	}
	link.Send(buildSYNProbe(ip, 80, packet.LayoutMSS))
	if len(rec.ds) == 0 {
		t.Fatal("delay recorder never called")
	}
	// The recorded delay is the UNSCALED simulated value (timeScale 0
	// still reports the modeled RTT).
	if rec.ds[0] != in.RTT(ip) {
		t.Errorf("recorded delay %v, want RTT %v", rec.ds[0], in.RTT(ip))
	}
}
