package netsim

import (
	"sync/atomic"
	"time"

	"zmapgo/internal/packet"
)

// CongestionConfig models the path bottleneck the 10GigE retrospective
// describes: a capacity knee in probes/second past which the network —
// not the host — drops traffic. Above the knee, excess probes are
// discarded; a rate-limited budget of ICMP destination-unreachable
// messages is generated back toward the scanner, the signal a congested
// router actually emits. A probe-count-triggered "dark prefix" fault
// models a remote network fingerprinting the scan and filtering it
// mid-flight (Mazel & Strullu).
type CongestionConfig struct {
	// CapacityPPS is the path capacity knee in probes/second; <= 0
	// disables the capacity model (dark-prefix can still be used).
	CapacityPPS float64

	// Burst is the token-bucket depth in probes (0 = max(16,
	// CapacityPPS/50), i.e. ~20ms of line rate).
	Burst float64

	// ICMPPPS budgets destination-unreachable generation for dropped
	// probes, like a router's ICMP rate limiter; 0 drops silently.
	ICMPPPS float64

	// ICMPBurst is the ICMP bucket depth (0 = max(8, ICMPPPS/50)).
	ICMPBurst float64

	// DarkPrefix/DarkBits/DarkAfter: once DarkAfter probes have
	// traversed the link, probes whose IPv4 destination falls inside
	// DarkPrefix/DarkBits are silently dropped — the subnet has gone
	// dark. DarkBits may be 8–32 (0 = 16, the historical default);
	// DarkAfter == 0 disables the fault.
	DarkPrefix uint32
	DarkBits   int
	DarkAfter  uint64
}

// CongestionStats counts the congestion model's interventions.
type CongestionStats struct {
	Dropped     uint64 // probes dropped at the capacity knee
	ICMPSent    uint64 // unreachables generated for dropped probes
	DarkDropped uint64 // probes swallowed by the dark prefix
}

type congestion struct {
	cfg      CongestionConfig
	darkNet  uint32 // DarkPrefix masked to DarkBits, precomputed
	darkMask uint32
	epoch    time.Time

	bucket     *tokenBucket
	icmpBucket *tokenBucket

	probes      atomic.Uint64
	dropped     atomic.Uint64
	icmpSent    atomic.Uint64
	darkDropped atomic.Uint64
}

// cidrMask returns the IPv4 network mask for a prefix length.
func cidrMask(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

// SetCongestion installs the congestion model on the link. Call before
// the scan starts; concurrent Sends observe it racily otherwise.
func (l *Link) SetCongestion(cfg CongestionConfig) {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.CapacityPPS / 50
		if cfg.Burst < 16 {
			cfg.Burst = 16
		}
	}
	if cfg.ICMPBurst <= 0 {
		cfg.ICMPBurst = cfg.ICMPPPS / 50
		if cfg.ICMPBurst < 8 {
			cfg.ICMPBurst = 8
		}
	}
	if cfg.DarkBits == 0 {
		cfg.DarkBits = 16
	}
	mask := cidrMask(cfg.DarkBits)
	l.cong = &congestion{
		cfg:        cfg,
		darkNet:    cfg.DarkPrefix & mask,
		darkMask:   mask,
		epoch:      time.Now(),
		bucket:     newTokenBucket(cfg.CapacityPPS, cfg.Burst),
		icmpBucket: newTokenBucket(cfg.ICMPPPS, cfg.ICMPBurst),
	}
}

// CongestionStats reports the model's counters (zero value when no
// congestion model is installed).
func (l *Link) CongestionStats() CongestionStats {
	c := l.cong
	if c == nil {
		return CongestionStats{}
	}
	return CongestionStats{
		Dropped:     c.dropped.Load(),
		ICMPSent:    c.icmpSent.Load(),
		DarkDropped: c.darkDropped.Load(),
	}
}

// frameDstIPv4 extracts the IPv4 destination from a raw probe frame
// without a full parse. ok is false for non-IPv4 or truncated frames.
func frameDstIPv4(frame []byte) (uint32, bool) {
	if len(frame) < packet.EthernetHeaderLen+packet.IPv4HeaderLen {
		return 0, false
	}
	if uint16(frame[12])<<8|uint16(frame[13]) != packet.EtherTypeIPv4 {
		return 0, false
	}
	if frame[packet.EthernetHeaderLen]>>4 != 4 {
		return 0, false
	}
	d := frame[packet.EthernetHeaderLen+16:]
	return uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3]), true
}

// congest applies the congestion model to one probe. It returns true
// when the probe was consumed (dropped dark or at the knee) and the
// normal response path must be skipped.
func (l *Link) congest(frame []byte) bool {
	c := l.cong
	n := c.probes.Add(1)
	dst, isV4 := frameDstIPv4(frame)
	if isV4 && c.cfg.DarkAfter > 0 && n > c.cfg.DarkAfter && dst&c.darkMask == c.darkNet {
		c.darkDropped.Add(1)
		return true
	}
	if c.cfg.CapacityPPS <= 0 {
		return false
	}
	now := time.Since(c.epoch).Seconds()
	if c.bucket.take(now) {
		return false
	}
	c.dropped.Add(1)
	if c.cfg.ICMPPPS > 0 && isV4 && c.icmpBucket.take(now) {
		if resp := buildCongestionUnreach(frame, dst); resp != nil {
			c.icmpSent.Add(1)
			// The drop happens in the path core, roughly half an RTT out.
			l.schedule(l.in.RTT(dst)/2, resp)
		}
	}
	return true
}

// buildCongestionUnreach constructs the ICMP destination-unreachable a
// congested router sends for a dropped probe: outer source is a router
// address on the destination's subnet, and the payload quotes the
// probe's IP header plus 8 bytes, exactly what the receive path's
// quoted-packet validation needs.
func buildCongestionUnreach(probe []byte, dst uint32) []byte {
	quote := probe[packet.EthernetHeaderLen:]
	if len(quote) < packet.IPv4HeaderLen+8 {
		return nil
	}
	quote = quote[:packet.IPv4HeaderLen+8]
	// Quoted source = the scanner's address = where the ICMP goes.
	q := quote[12:16]
	scanner := uint32(q[0])<<24 | uint32(q[1])<<16 | uint32(q[2])<<8 | uint32(q[3])
	router := dst&0xFFFF0000 | 0x0001
	var ethDst packet.MAC
	copy(ethDst[:], probe[6:12])
	buf := getFrame()
	buf = packet.AppendEthernet(buf, hostMAC, ethDst, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolICMP, Src: router, Dst: scanner,
	}, packet.ICMPHeaderLen+len(quote))
	// Type 3 code 0 (network unreachable); ID/Seq double as the unused
	// field, which must be zero.
	buf = packet.AppendICMPEcho(buf, packet.ICMPDestUnreach, 0, 0, quote)
	return buf
}
