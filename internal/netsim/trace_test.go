package netsim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// allWeatherProfile exercises every event type at once.
const allWeatherProfile = `{
  "name": "gauntlet",
  "seed": 1234,
  "events": [
    {"type": "bursty_loss", "at_secs": 0, "p_good_bad": 0.01, "p_bad_good": 0.05, "loss_good": 0.001, "loss_bad": 0.9},
    {"type": "latency", "at_secs": 0.2, "duration_secs": 2, "prefix": "10.0.0.0/16", "delay_ms": 120, "jitter_ms": 40, "ramp_secs": 0.5},
    {"type": "blackout", "at_secs": 0.5, "duration_secs": 1, "prefix": "10.1.0.0/16"},
    {"type": "cross_traffic", "at_secs": 1, "duration_secs": 2, "capacity_pps": 5000, "icmp_pps": 500},
    {"type": "asym_loss", "at_secs": 0, "forward_loss": 0.05, "reverse_loss": 0.2},
    {"type": "unreach_storm", "at_secs": 1.5, "duration_secs": 1, "storm_pps": 2000, "valid_quote": true}
  ]
}`

// playback drives a compiled weather layer through a fixed synthetic
// packet schedule on the scenario's virtual clock and renders every
// decision into a trace. Identical traces == identical playback.
func playback(t *testing.T, profile []byte) string {
	t.Helper()
	sc, err := ParseScenario(profile)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWeather(sc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(sc.Timeline())
	el := time.Duration(0)
	for i := 0; i < 20000; i++ {
		// A deterministic sweep over both /16s, advancing the virtual
		// clock by 100µs per probe (10 kpps for 2 simulated seconds).
		el += 100 * time.Microsecond
		dst := 0x0A000000 | uint32(i%2)<<16 | uint32(i%65536)
		d := w.forwardDecide(dst, true, el)
		fmt.Fprintf(&b, "%d f %v %v %v %v\n", i, d.drop, d.stormValid, d.stormSpoof, d.kneeICMP)
		if !d.drop {
			drop, extra := w.reverseDecide(dst, el)
			fmt.Fprintf(&b, "%d r %v %d\n", i, drop, extra)
		}
	}
	st := w.Stats()
	fmt.Fprintf(&b, "stats %+v\n", st)
	return b.String()
}

// TestScenarioPlaybackDeterministic is the satellite determinism
// property: same seed + same profile bytes => byte-identical event
// timeline and decision trace, across independent loads and runs (and
// under -race via scripts/check.sh).
func TestScenarioPlaybackDeterministic(t *testing.T) {
	first := playback(t, []byte(allWeatherProfile))
	for run := 0; run < 2; run++ {
		if got := playback(t, []byte(allWeatherProfile)); got != first {
			t.Fatalf("run %d diverged from first playback", run)
		}
	}
	if !strings.Contains(first, "stats") || len(first) < 1000 {
		t.Fatalf("trace suspiciously small:\n%s", first)
	}
	// A different seed must change the decision trace.
	other := strings.Replace(allWeatherProfile, `"seed": 1234`, `"seed": 1235`, 1)
	if got := playback(t, []byte(other)); got == first {
		t.Fatal("changing the seed did not change playback")
	}
}

// TestScenarioTimelineStable pins the rendered timeline so profile
// parsing changes cannot silently reinterpret existing profiles.
func TestScenarioTimelineStable(t *testing.T) {
	sc, err := ParseScenario([]byte(allWeatherProfile))
	if err != nil {
		t.Fatal(err)
	}
	want := `scenario "gauntlet" seed=1234 events=6
[  0] t=0.000s+inf bursty_loss p_gb=0.01 p_bg=0.05 loss_good=0.001 loss_bad=0.9
[  1] t=0.200s+2.000s latency prefix=10.0.0.0/16 delay=120ms jitter=40ms ramp=0.5s
[  2] t=0.500s+1.000s blackout prefix=10.1.0.0/16
[  3] t=1.000s+2.000s cross_traffic capacity=5000pps icmp=500pps
[  4] t=0.000s+inf asym_loss fwd=0.05 rev=0.2
[  5] t=1.500s+1.000s unreach_storm storm=2000pps valid_quote=true
`
	if got := sc.Timeline(); got != want {
		t.Fatalf("timeline drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestScenarioLoaderRejectsHostileProfiles(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`[]`,
		`{"events": [{"type": "tsunami"}]}`,
		`{"events": [{"type": "bursty_loss", "p_good_bad": 1.5}]}`,
		`{"events": [{"type": "bursty_loss", "loss_bad": -0.1}]}`,
		`{"events": [{"type": "blackout"}]}`,
		`{"events": [{"type": "blackout", "prefix": "10.0.0.0"}]}`,
		`{"events": [{"type": "blackout", "prefix": "10.0.0.0/33"}]}`,
		`{"events": [{"type": "blackout", "prefix": "10.0.0.256/16"}]}`,
		`{"events": [{"type": "cross_traffic"}]}`,
		`{"events": [{"type": "cross_traffic", "capacity_pps": 1e12}]}`,
		`{"events": [{"type": "unreach_storm"}]}`,
		`{"events": [{"type": "latency", "delay_ms": -1}]}`,
		`{"events": [{"type": "latency", "at_secs": -2}]}`,
		`{"events": [{"type": "bursty_loss", "frequency": 3}]}`,
		`{"name": "x"} {"name": "y"}`,
	}
	for _, p := range bad {
		if _, err := ParseScenario([]byte(p)); err == nil {
			t.Errorf("profile %q parsed without error", p)
		}
	}
	if _, err := ParseScenario([]byte(allWeatherProfile)); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

// FuzzScenarioProfile: malformed or hostile profiles must error, never
// panic — and any profile that parses must compile and play without
// panicking. Runs in the CI fuzz smoke.
func FuzzScenarioProfile(f *testing.F) {
	f.Add([]byte(allWeatherProfile))
	f.Add([]byte(`{"name":"x","seed":1,"events":[]}`))
	f.Add([]byte(`{"events":[{"type":"blackout","prefix":"10.0.0.0/8","at_secs":1}]}`))
	f.Add([]byte(`{"events":[{"type":"unreach_storm","storm_pps":100}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		w, err := NewWeather(sc)
		if err != nil {
			t.Fatalf("validated scenario failed to compile: %v", err)
		}
		for i := 0; i < 64; i++ {
			el := time.Duration(i) * 50 * time.Millisecond
			d := w.forwardDecide(0x0A000001+uint32(i)<<8, true, el)
			if !d.drop {
				w.reverseDecide(0x0A000001, el)
			}
		}
		_ = sc.Timeline()
	})
}

// TestShippedScenarioProfilesParse keeps conf/scenarios/ honest: every
// example profile we document must load, validate, and compile.
func TestShippedScenarioProfilesParse(t *testing.T) {
	dir := filepath.Join("..", "..", "conf", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
		sc, err := LoadScenario(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if _, err := NewWeather(sc); err != nil {
			t.Errorf("%s: compile: %v", e.Name(), err)
		}
	}
	if found < 2 {
		t.Fatalf("only %d example profiles shipped, want >= 2", found)
	}
}
