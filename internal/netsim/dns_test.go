package netsim

import (
	"testing"

	"zmapgo/internal/dnswire"
	"zmapgo/internal/packet"
)

// findResolver returns an open (non-REFUSED) DNS service address.
func findResolver(t *testing.T, in *Internet) uint32 {
	t.Helper()
	for ip := uint32(0); ip < 5_000_000; ip++ {
		if in.UDPServiceOpen(ip, 53) && uniform(in.hash(purposeUDP+16, ip, 53)) >= 0.03 {
			return ip
		}
	}
	t.Fatal("no open resolver found")
	return 0
}

func dnsProbe(server uint32, payload []byte) []byte {
	buf := packet.AppendEthernet(nil, probeSrcMAC, packet.MAC{}, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolUDP, Src: 9, Dst: server,
	}, packet.UDPHeaderLen+len(payload))
	return packet.AppendUDP(buf, 5353, 53, 9, server, payload)
}

func askDNS(t *testing.T, in *Internet, server uint32, payload []byte) []byte {
	t.Helper()
	rs := in.Respond(dnsProbe(server, payload))
	if len(rs) != 1 {
		t.Fatalf("%d responses from resolver", len(rs))
	}
	f, err := packet.Parse(rs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.UDP == nil {
		t.Fatal("non-UDP reply from resolver")
	}
	return f.Payload
}

func TestDNSAnswerA(t *testing.T) {
	in := New(lossless(400))
	server := findResolver(t, in)
	// Find an existing name.
	for i := byte('a'); i <= 'z'; i++ {
		name := "host-" + string(i) + ".example"
		query, err := dnswire.AppendQuery(nil, 0x1234, name, dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := dnswire.ParseResponse(askDNS(t, in, server, query))
		if err != nil {
			t.Fatal(err)
		}
		if msg.ID != 0x1234 || !msg.Response || !msg.RecursionAvailable {
			t.Fatalf("bad header %+v", msg)
		}
		if msg.RCode == dnswire.RCodeNXDomain {
			continue
		}
		if msg.RCode != dnswire.RCodeNoError || len(msg.Answers) == 0 {
			t.Fatalf("unexpected response %+v", msg)
		}
		// Determinism: same name, same answer from any resolver.
		other := findResolver(t, New(lossless(400)))
		msg2, err := dnswire.ParseResponse(askDNS(t, in, other, query))
		if err != nil {
			t.Fatal(err)
		}
		if len(msg2.Answers) != len(msg.Answers) || msg2.Answers[0].A != msg.Answers[0].A {
			t.Error("zone not consistent across resolvers")
		}
		return
	}
	t.Fatal("no existing name found in 26 tries")
}

func TestDNSAnswerTXTAndUnsupported(t *testing.T) {
	in := New(lossless(401))
	server := findResolver(t, in)
	for i := byte('a'); i <= 'z'; i++ {
		name := "txt-" + string(i) + ".example"
		query, _ := dnswire.AppendQuery(nil, 7, name, dnswire.TypeTXT)
		msg, err := dnswire.ParseResponse(askDNS(t, in, server, query))
		if err != nil {
			t.Fatal(err)
		}
		if msg.RCode == dnswire.RCodeNXDomain {
			continue
		}
		if len(msg.Answers) != 1 || msg.Answers[0].Text == "" {
			t.Fatalf("TXT response %+v", msg)
		}
		// Same name, unsupported type: NOERROR, zero answers.
		query2, _ := dnswire.AppendQuery(nil, 8, name, dnswire.TypeNS)
		msg2, err := dnswire.ParseResponse(askDNS(t, in, server, query2))
		if err != nil {
			t.Fatal(err)
		}
		if msg2.RCode != dnswire.RCodeNoError || len(msg2.Answers) != 0 {
			t.Fatalf("NS response %+v", msg2)
		}
		return
	}
	t.Fatal("no existing TXT name found")
}

func TestDNSFormErrOnMalformedQuery(t *testing.T) {
	in := New(lossless(402))
	server := findResolver(t, in)
	// 12 junk bytes: DNS-sized but not a valid query (QR bit set).
	junk := []byte{0xAB, 0xCD, 0x80, 0x00, 0, 1, 0, 0, 0, 0, 0, 0}
	payload := askDNS(t, in, server, junk)
	msg, err := dnswire.ParseResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.RCode != dnswire.RCodeFormErr {
		t.Errorf("rcode %d, want FORMERR", msg.RCode)
	}
	if msg.ID != 0xABCD {
		t.Errorf("FORMERR did not echo the query ID: %x", msg.ID)
	}
}

func TestDNSNonDNSPayloadGetsGenericReply(t *testing.T) {
	in := New(lossless(403))
	server := findResolver(t, in)
	payload := askDNS(t, in, server, []byte("hi"))
	if string(payload) != "sim-udp-reply" {
		t.Errorf("short payload reply %q", payload)
	}
}

func TestDNSRefusedResolversExist(t *testing.T) {
	in := New(lossless(404))
	found := false
	for ip := uint32(0); ip < 20_000_000 && !found; ip++ {
		if !in.UDPServiceOpen(ip, 53) {
			continue
		}
		if uniform(in.hash(purposeUDP+16, ip, 53)) < 0.03 {
			found = true
			query, _ := dnswire.AppendQuery(nil, 3, "x.example", dnswire.TypeA)
			msg, err := dnswire.ParseResponse(askDNS(t, in, ip, query))
			if err != nil {
				t.Fatal(err)
			}
			if msg.RCode != dnswire.RCodeRefused {
				t.Errorf("refusing resolver returned rcode %d", msg.RCode)
			}
		}
	}
	if !found {
		t.Skip("no refusing resolver in sample")
	}
}
