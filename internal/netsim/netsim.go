// Package netsim is the deterministic simulated IPv4 Internet that stands
// in for the real one ("Ten Years of ZMap" evaluates against live hosts,
// which a reproduction cannot ethically or practically rescan).
//
// Every behavior the paper's evaluation depends on is modeled, with
// densities calibrated to the paper's published rates:
//
//   - responsiveness and per-port service density, including the long-tail
//     "port diffusion" of Izhikevich et al. (only ~3% of HTTP services on
//     port 80, ~6% of TLS on 443),
//   - TCP-option-sensitive stacks: ~2% of services answer only SYNs that
//     carry at least one of MSS/SACK/TS/WScale, and a ~0.0023% sliver only
//     answers OS-exact option orderings (Figure 7),
//   - middlebox prefixes that SYN-ACK every port without any service
//     behind them (L4 vs L7 discrepancies, §3),
//   - "blowback" hosts that send heavy-tailed trains of duplicate
//     responses (Figure 5),
//   - transient, independent packet loss sized so a single-probe scan
//     misses ~2.7% of hosts (Wan et al., §3), and
//   - RST-on-closed, ICMP echo, and UDP service behavior for the other
//     probe modules.
//
// The population is a pure function of the seed: no per-host state exists,
// so experiments can span millions of addresses. See DESIGN.md for the
// calibration table.
package netsim

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"zmapgo/internal/packet"
)

// Protocol is the application protocol simulated behind an open port.
type Protocol int

// Simulated L7 protocols.
const (
	ProtoNone Protocol = iota // open socket, no recognizable service
	ProtoHTTP
	ProtoTLS
	ProtoSSH
	ProtoTelnet
	ProtoMikrotikAPI
)

func (p Protocol) String() string {
	switch p {
	case ProtoNone:
		return "none"
	case ProtoHTTP:
		return "http"
	case ProtoTLS:
		return "tls"
	case ProtoSSH:
		return "ssh"
	case ProtoTelnet:
		return "telnet"
	case ProtoMikrotikAPI:
		return "mikrotik"
	default:
		return "unknown"
	}
}

// Config sets population densities and link behavior. All probabilities
// are in [0, 1]. The zero value is unusable; start from DefaultConfig.
type Config struct {
	Seed uint64

	// LiveFraction is the fraction of addresses with a host behind them.
	LiveFraction float64

	// AssignedPortOpen gives P(service on port | live host) for
	// IANA-popular ports. Ports not listed fall back to TailPortOpen.
	AssignedPortOpen map[uint16]float64

	// TailPortOpen is P(service on an arbitrary unlisted port | live
	// host). With 65k ports this yields the long tail of port diffusion:
	// a mean of 65536*TailPortOpen diffused services per live host.
	TailPortOpen float64

	// RequireOptionFraction is the fraction of services that only answer
	// SYNs carrying at least one accepted TCP option (Figure 7's
	// 1.5–2.0% hitrate gap).
	RequireOptionFraction float64

	// OptionAcceptProb gives, for an option-requiring service, the
	// probability that each option kind satisfies it. MSS is nearly
	// universal so that MSS-only probes find >99.99% of services.
	OptionAcceptProb map[byte]float64

	// OrderSensitiveFraction is the fraction of services that only answer
	// SYNs whose option bytes exactly match a real OS layout
	// (Linux/BSD/Windows); the paper measured optimal-order probes losing
	// 0.0023% of hosts to these.
	OrderSensitiveFraction float64

	// MiddleboxFraction is the fraction of /16 prefixes fronted by a
	// middlebox that SYN-ACKs every (ip, port) regardless of services.
	MiddleboxFraction float64

	// BlowbackFraction is the fraction of responding services that send
	// duplicate response trains; BlowbackAlpha is the Pareto tail
	// exponent and BlowbackMax caps the train length.
	BlowbackFraction float64
	BlowbackAlpha    float64
	BlowbackMax      int
	// BlowbackGap is the mean spacing between consecutive duplicates.
	BlowbackGap time.Duration

	// RSTFraction is P(RST | live host, closed port); the rest stay
	// silent (host firewalls).
	RSTFraction float64

	// SYNACKRSTFraction is P(RST | live host receiving an unsolicited
	// SYN-ACK). RFC-compliant stacks reset such segments, which is what
	// tcp_synackscan liveness probing measures.
	SYNACKRSTFraction float64

	// ICMPEchoFraction is P(echo reply | live host).
	ICMPEchoFraction float64

	// ICMPRateLimitFraction is the fraction of echo-responsive hosts
	// that rate limit ICMP (Guo & Heidemann); ICMPRateLimit is the
	// number of replies such a host sends before going silent for the
	// remainder of the scan.
	ICMPRateLimitFraction float64
	ICMPRateLimit         int

	// UDPPortOpen gives P(UDP service | live host) per port; closed UDP
	// ports on live hosts yield ICMP port-unreachable with
	// UDPUnreachFraction.
	UDPPortOpen        map[uint16]float64
	UDPUnreachFraction float64

	// ProbeLoss and ResponseLoss are independent per-packet transient
	// loss probabilities (the fast-varying component).
	ProbeLoss, ResponseLoss float64

	// PathBadFraction is the probability that a (vantage, destination
	// /24) path suffers a correlated outage for the scan window, during
	// which packets are lost with PathBadLossProb. Wan et al.'s finding
	// that retries from one vantage recover much less than a second
	// vantage — "both probes are oftentimes lost" — is this component.
	// Defaults are sized so the single-probe miss rate totals ~2.7%.
	PathBadFraction float64
	PathBadLossProb float64

	// RTTMin/RTTMax bound the uniform per-host round-trip time.
	RTTMin, RTTMax time.Duration
}

// DefaultConfig returns the paper-calibrated population. See DESIGN.md's
// substitution table for the sources of each density.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:         seed,
		LiveFraction: 0.10,
		AssignedPortOpen: map[uint16]float64{
			80:   0.12,
			443:  0.25,
			22:   0.06,
			23:   0.02,
			21:   0.015,
			25:   0.01,
			8080: 0.05,
			8728: 0.004,
			3389: 0.01,
			1433: 0.005,
		},
		TailPortOpen:          8.0 / 65536, // ~8 diffused services per live host
		RequireOptionFraction: 0.02,
		OptionAcceptProb: map[byte]float64{
			packet.OptMSS:       0.997,
			packet.OptSACKPerm:  0.92,
			packet.OptTimestamp: 0.85,
			packet.OptWScale:    0.78,
		},
		OrderSensitiveFraction: 2.3e-5,
		MiddleboxFraction:      0.004,
		BlowbackFraction:       0.01,
		BlowbackAlpha:          1.2,
		BlowbackMax:            5000,
		BlowbackGap:            500 * time.Millisecond,
		RSTFraction:            0.30,
		SYNACKRSTFraction:      0.85,
		ICMPEchoFraction:       0.80,
		ICMPRateLimitFraction:  0.05,
		ICMPRateLimit:          4,
		UDPPortOpen: map[uint16]float64{
			53:  0.02,
			123: 0.012,
			161: 0.006,
		},
		UDPUnreachFraction: 0.25,
		ProbeLoss:          0.004,
		ResponseLoss:       0.004,
		PathBadFraction:    0.02,
		PathBadLossProb:    0.9,
		RTTMin:             20 * time.Millisecond,
		RTTMax:             300 * time.Millisecond,
	}
}

// Internet is a queryable simulated address space. Methods are safe for
// concurrent use; the only mutable state is the loss-salt counter and the
// ICMP rate-limit table.
type Internet struct {
	cfg      Config
	lossSalt atomic.Uint64

	icmpMu     sync.Mutex
	icmpCounts map[uint32]int
}

// New creates a simulated Internet from cfg.
func New(cfg Config) *Internet {
	return &Internet{cfg: cfg, icmpCounts: make(map[uint32]int)}
}

// Config returns the population configuration.
func (in *Internet) Config() Config { return in.cfg }

// Live reports whether a host exists at ip.
func (in *Internet) Live(ip uint32) bool {
	return uniform(in.hash(purposeLive, ip, 0)) < in.cfg.LiveFraction
}

// Middlebox reports whether ip sits behind a SYN-ACK-everything
// middlebox. Middleboxes are assigned per /16 prefix.
func (in *Internet) Middlebox(ip uint32) bool {
	return uniform(in.hash(purposeMiddlebox, ip&0xFFFF0000, 0)) < in.cfg.MiddleboxFraction
}

// ServiceOpen reports whether a real TCP service listens at (ip, port),
// excluding middlebox illusions.
func (in *Internet) ServiceOpen(ip uint32, port uint16) bool {
	if !in.Live(ip) {
		return false
	}
	p, ok := in.cfg.AssignedPortOpen[port]
	if !ok {
		p = in.cfg.TailPortOpen
	}
	return uniform(in.hash(purposeService, ip, port)) < p
}

// ServiceProtocol returns the L7 protocol behind an open service. It is
// meaningful only when ServiceOpen is true.
func (in *Internet) ServiceProtocol(ip uint32, port uint16) Protocol {
	u := uniform(in.hash(purposeProtocol, ip, port))
	switch port {
	case 80, 8080:
		if u < 0.85 {
			return ProtoHTTP
		}
		return ProtoNone
	case 443:
		if u < 0.90 {
			return ProtoTLS
		}
		return ProtoNone
	case 22:
		if u < 0.95 {
			return ProtoSSH
		}
		return ProtoNone
	case 23:
		if u < 0.90 {
			return ProtoTelnet
		}
		return ProtoNone
	case 8728:
		if u < 0.95 {
			return ProtoMikrotikAPI
		}
		return ProtoNone
	default:
		// The diffused tail is dominated by web services (LZR).
		switch {
		case u < 0.45:
			return ProtoHTTP
		case u < 0.90:
			return ProtoTLS
		case u < 0.95:
			return ProtoSSH
		default:
			return ProtoNone
		}
	}
}

// Banner returns the deterministic L7 banner a real service would emit on
// connect (possibly after a protocol-appropriate request). Middleboxes
// have no banner: that is precisely the L4/L7 gap.
func (in *Internet) Banner(ip uint32, port uint16) string {
	if !in.ServiceOpen(ip, port) {
		return ""
	}
	id := in.hash(purposeBanner, ip, port) & 0xFFFF
	switch in.ServiceProtocol(ip, port) {
	case ProtoHTTP:
		return fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: simhttpd/%d\r\n\r\n", id)
	case ProtoTLS:
		return fmt.Sprintf("TLSv1.3 sim certificate cn=host-%d.example", id)
	case ProtoSSH:
		return fmt.Sprintf("SSH-2.0-OpenSSH_sim%d", id%10)
	case ProtoTelnet:
		return "login: "
	case ProtoMikrotikAPI:
		return fmt.Sprintf("!done mikrotik-sim-%d", id)
	default:
		return ""
	}
}

// optionRequirement describes how a service reacts to SYN options.
type optionRequirement int

const (
	acceptsAny optionRequirement = iota
	requiresOption
	requiresOSOrder
)

func (in *Internet) optionReq(ip uint32, port uint16) optionRequirement {
	u := uniform(in.hash(purposeOptions, ip, port))
	if u < in.cfg.OrderSensitiveFraction {
		return requiresOSOrder
	}
	if u < in.cfg.OrderSensitiveFraction+in.cfg.RequireOptionFraction {
		return requiresOption
	}
	return acceptsAny
}

// osExactLayouts are the option byte patterns order-sensitive stacks
// accept. Timestamp values differ per probe, so comparison masks the
// 8 TSval/TSecr bytes following a timestamp option header.
var osExactLayouts = [][]byte{
	packet.BuildOptions(packet.LayoutLinux, 0),
	packet.BuildOptions(packet.LayoutBSD, 0),
	packet.BuildOptions(packet.LayoutWindows, 0),
}

func matchesOSLayout(options []byte) bool {
	for _, ref := range osExactLayouts {
		if len(options) != len(ref) {
			continue
		}
		if optionsEqualMasked(options, ref) {
			return true
		}
	}
	return false
}

// optionsEqualMasked compares option byte strings, ignoring timestamp
// value bytes.
func optionsEqualMasked(a, ref []byte) bool {
	i := 0
	for i < len(ref) {
		if ref[i] == packet.OptNOP || ref[i] == packet.OptEOL {
			if a[i] != ref[i] {
				return false
			}
			i++
			continue
		}
		if i+1 >= len(ref) {
			return bytes.Equal(a[i:], ref[i:])
		}
		length := int(ref[i+1])
		if length < 2 || i+length > len(ref) {
			return bytes.Equal(a[i:], ref[i:])
		}
		// Compare kind and length always.
		if a[i] != ref[i] || a[i+1] != ref[i+1] {
			return false
		}
		if ref[i] != packet.OptTimestamp {
			if !bytes.Equal(a[i+2:i+length], ref[i+2:i+length]) {
				return false
			}
		}
		i += length
	}
	return true
}

// AcceptsSYN reports whether the service at (ip, port) — which must be
// open — answers a SYN carrying the given raw option bytes.
func (in *Internet) AcceptsSYN(ip uint32, port uint16, options []byte) bool {
	switch in.optionReq(ip, port) {
	case acceptsAny:
		return true
	case requiresOption:
		kinds := packet.OptionKinds(options)
		for kind, prob := range in.cfg.OptionAcceptProb {
			if !kinds[kind] {
				continue
			}
			if uniform(in.hash(purposeOptions+16+uint64(kind), ip, port)) < prob {
				return true
			}
		}
		return false
	case requiresOSOrder:
		return matchesOSLayout(options)
	}
	return false
}

// RTT returns the fixed round-trip time of a host.
func (in *Internet) RTT(ip uint32) time.Duration {
	span := in.cfg.RTTMax - in.cfg.RTTMin
	if span <= 0 {
		return in.cfg.RTTMin
	}
	return in.cfg.RTTMin + time.Duration(uniform(in.hash(purposeLatency, ip, 0))*float64(span))
}

// lost draws a fresh transient loss decision; successive calls are
// independent so retries can succeed where first probes failed.
func (in *Internet) lost(prob float64) bool {
	if prob <= 0 {
		return false
	}
	salt := in.lossSalt.Add(1)
	return uniform(schedSaltedDraw(in.cfg.Seed, schedLossDomain, salt)) < prob
}

// LossDraw draws one independent transient-loss event at the configured
// probe-loss probability. Exposed for experiments that model loss on a
// path outside Respond (e.g. the multi-vantage comparison).
func (in *Internet) LossDraw() bool { return in.lost(in.cfg.ProbeLoss) }

// LossDrawAt draws a transient-loss event at an arbitrary probability.
func (in *Internet) LossDrawAt(prob float64) bool { return in.lost(prob) }

// PathBad reports whether the (vantage, destination /24) path is in a
// correlated outage for this scan window. The decision is stable for the
// window: retries from the same vantage hit the same bad path, while a
// different vantage draws an independent path.
func (in *Internet) PathBad(src, dst uint32) bool {
	if in.cfg.PathBadFraction <= 0 {
		return false
	}
	h := splitmix64(in.cfg.Seed ^ purposeLoss<<56 ^ uint64(src)<<32 ^ uint64(dst>>8))
	return uniform(h) < in.cfg.PathBadFraction
}

// pathLost combines the correlated and independent loss components for a
// packet from src toward dst (or the reverse path of a response).
func (in *Internet) pathLost(src, dst uint32, independent float64) bool {
	if in.PathBad(src, dst) && in.lost(in.cfg.PathBadLossProb) {
		return true
	}
	return in.lost(independent)
}

// BlowbackCount returns how many duplicate responses the service at
// (ip, port) sends after its first response (0 for well-behaved hosts).
// Counts follow a bounded Pareto, matching the tens-of-thousands trains
// Goldblatt et al. observed.
func (in *Internet) BlowbackCount(ip uint32, port uint16) int {
	h := in.hash(purposeBlowback, ip, port)
	if uniform(h) >= in.cfg.BlowbackFraction {
		return 0
	}
	u := uniform(splitmix64(h))
	if u < 1e-12 {
		u = 1e-12
	}
	alpha := in.cfg.BlowbackAlpha
	if alpha <= 0 {
		alpha = 1.2
	}
	// Bounded Pareto with xm=1: duplicates = floor(u^(-1/alpha)).
	n := int(math.Pow(u, -1.0/alpha))
	if n > in.cfg.BlowbackMax {
		n = in.cfg.BlowbackMax
	}
	if n < 1 {
		n = 1
	}
	return n
}
