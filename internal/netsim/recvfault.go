package netsim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zmapgo/internal/packet"
)

// RecvFaultClass labels one receive-path fault the injector can apply.
type RecvFaultClass int

const (
	// RecvFaultTruncate cuts a response frame short mid-header or
	// mid-segment (a mangled capture or a runt frame).
	RecvFaultTruncate RecvFaultClass = iota
	// RecvFaultCorrupt flips one to three random bits (path corruption
	// that slipped past link-layer CRC).
	RecvFaultCorrupt
	// RecvFaultDuplicate delivers the same frame twice back to back
	// (retransmission, or a tap seeing both directions).
	RecvFaultDuplicate
	// RecvFaultReorder delays a frame so later traffic overtakes it.
	RecvFaultReorder
	// RecvFaultSpoof injects a structurally valid, correctly checksummed
	// SYN-ACK that answers no probe — the unsolicited/forged traffic a
	// scanner's stateless validator exists to reject.
	RecvFaultSpoof
	numRecvFaultClasses
)

// String names the fault class for logs and stats.
func (c RecvFaultClass) String() string {
	switch c {
	case RecvFaultTruncate:
		return "truncate"
	case RecvFaultCorrupt:
		return "corrupt"
	case RecvFaultDuplicate:
		return "duplicate"
	case RecvFaultReorder:
		return "reorder"
	case RecvFaultSpoof:
		return "spoof"
	}
	return "unknown"
}

// RecvFaultConfig describes a seeded receive-path fault schedule. The
// zero value injects nothing. Probabilities are per delivered frame and
// evaluated independently, so aggressive configurations compose (a frame
// can be duplicated and its copy later truncated is NOT modeled — each
// frame suffers at most one mangling fault, chosen by the first roll
// that fires, plus optional duplication/spoof side effects — keeping the
// injected-fault counters meaningful per class).
type RecvFaultConfig struct {
	// Seed keys the injector's private RNG; equal seeds replay the same
	// fault schedule against the same traffic order.
	Seed int64

	// TruncateProb cuts the frame at a random byte boundary.
	TruncateProb float64
	// CorruptProb flips 1–3 random bits in a copy of the frame.
	CorruptProb float64
	// DuplicateProb delivers the frame, then delivers it again.
	DuplicateProb float64
	// ReorderProb withholds the frame for ReorderDelay so subsequent
	// frames overtake it.
	ReorderProb float64
	// ReorderDelay is how long reordered frames are held (default 2ms).
	ReorderDelay time.Duration
	// SpoofProb additionally injects a forged SYN-ACK alongside the real
	// frame: valid Ethernet/IPv4/TCP structure and checksums, but random
	// source address and acknowledgment number, so it must die in
	// validation, never in parsing.
	SpoofProb float64
}

func (c RecvFaultConfig) enabled() bool {
	return c.TruncateProb > 0 || c.CorruptProb > 0 || c.DuplicateProb > 0 ||
		c.ReorderProb > 0 || c.SpoofProb > 0
}

// RecvFaultTransport decorates a Transport's receive path with seeded
// fault injection; the send path and stats pass through untouched. A
// single pump goroutine owns the RNG and the output channel, so the
// schedule is deterministic for a given traffic order.
type RecvFaultTransport struct {
	inner Transport
	cfg   RecvFaultConfig
	out   chan []byte

	stop     chan struct{}
	stopOnce sync.Once
	pending  sync.WaitGroup

	injected [numRecvFaultClasses]atomic.Uint64
}

// NewRecvFaultTransport wraps inner. The pump goroutine runs until Stop
// is called; an idle pump parked on the inner Recv channel is harmless,
// matching the channel's never-closed contract.
func NewRecvFaultTransport(inner Transport, cfg RecvFaultConfig) *RecvFaultTransport {
	if cfg.ReorderDelay <= 0 {
		cfg.ReorderDelay = 2 * time.Millisecond
	}
	t := &RecvFaultTransport{
		inner: inner,
		cfg:   cfg,
		out:   make(chan []byte, 4096),
		stop:  make(chan struct{}),
	}
	go t.pump()
	return t
}

// Send passes through to the wrapped transport.
func (t *RecvFaultTransport) Send(frame []byte) error { return t.inner.Send(frame) }

// SendBatch passes through, preserving the inner transport's batch
// fault semantics (or falling back to per-frame sends).
func (t *RecvFaultTransport) SendBatch(frames [][]byte) (int, error) {
	if bs, ok := t.inner.(batchSender); ok {
		return bs.SendBatch(frames)
	}
	for i, frame := range frames {
		if err := t.inner.Send(frame); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// Release forwards received-frame buffers toward the owning pool. The
// injector's own emissions (spoofs, duplicate copies) come from the
// same pool, so everything it delivers releases uniformly.
func (t *RecvFaultTransport) Release(frame []byte) {
	if r, ok := t.inner.(releaser); ok {
		r.Release(frame)
	}
}

// Recv returns the fault-injected response stream.
func (t *RecvFaultTransport) Recv() <-chan []byte { return t.out }

// RecvBatch drains up to len(dst) queued fault-injected frames without
// blocking, mirroring Link.RecvBatch. Fault decisions were already made
// at emit time, so batching changes delivery granularity, not the
// schedule.
func (t *RecvFaultTransport) RecvBatch(dst [][]byte) int {
	n := 0
	for n < len(dst) {
		select {
		case frame := <-t.out:
			dst[n] = frame
			n++
		default:
			return n
		}
	}
	return n
}

// Stats passes through to the wrapped transport.
func (t *RecvFaultTransport) Stats() (sent, received, dropped uint64) {
	return t.inner.Stats()
}

// Stop ends the pump goroutine. Frames already in flight (reorder
// timers) still deliver.
func (t *RecvFaultTransport) Stop() { t.stopOnce.Do(func() { close(t.stop) }) }

// Injected reports how many faults of the given class were applied.
func (t *RecvFaultTransport) Injected(c RecvFaultClass) uint64 {
	return t.injected[c].Load()
}

// InjectedTotal reports all applied faults across classes.
func (t *RecvFaultTransport) InjectedTotal() uint64 {
	var n uint64
	for i := range t.injected {
		n += t.injected[i].Load()
	}
	return n
}

func (t *RecvFaultTransport) pump() {
	rng := newScheduleRNG(t.cfg.Seed)
	for {
		select {
		case <-t.stop:
			return
		case frame := <-t.inner.Recv():
			t.process(rng, frame)
		}
	}
}

func (t *RecvFaultTransport) process(rng *rand.Rand, frame []byte) {
	cfg := &t.cfg

	// Spoof is additive: the real frame still goes through.
	if cfg.SpoofProb > 0 && rng.Float64() < cfg.SpoofProb {
		if spoofed := spoofFrame(rng, frame); spoofed != nil {
			t.injected[RecvFaultSpoof].Add(1)
			t.emit(spoofed)
		}
	}

	// At most one mangling fault per frame: first roll that fires wins.
	// The pump owns the frame here — the producer handed it off and the
	// consumer has not seen it — so truncation and corruption mutate it
	// in place rather than allocating a copy. Truncation keeps the
	// backing array's capacity, so the buffer still recycles.
	switch {
	case cfg.TruncateProb > 0 && rng.Float64() < cfg.TruncateProb:
		t.injected[RecvFaultTruncate].Add(1)
		if len(frame) > 1 {
			frame = frame[:1+rng.Intn(len(frame)-1)]
		}
	case cfg.CorruptProb > 0 && rng.Float64() < cfg.CorruptProb:
		t.injected[RecvFaultCorrupt].Add(1)
		corruptFrame(rng, frame)
	}

	if cfg.DuplicateProb > 0 && rng.Float64() < cfg.DuplicateProb {
		t.injected[RecvFaultDuplicate].Add(1)
		// The duplicate is a pooled copy, never the same slice twice:
		// the consumer releases every delivered frame, and releasing one
		// buffer into the pool twice would hand it to two owners.
		t.emit(append(getFrame(), frame...))
	}

	if cfg.ReorderProb > 0 && rng.Float64() < cfg.ReorderProb {
		t.injected[RecvFaultReorder].Add(1)
		held := frame
		t.pending.Add(1)
		time.AfterFunc(cfg.ReorderDelay, func() {
			defer t.pending.Done()
			t.emit(held)
		})
		return
	}
	t.emit(frame)
}

// emit delivers to the output channel, dropping when the consumer has
// stopped (mirrors the ring-drop behavior of the underlying link).
func (t *RecvFaultTransport) emit(frame []byte) {
	select {
	case t.out <- frame:
	case <-t.stop:
		PutFrame(frame)
	}
}

// Drain waits for held (reordered) frames to be released.
func (t *RecvFaultTransport) Drain() { t.pending.Wait() }

// corruptFrame flips 1–3 random bits in frame, in place.
func corruptFrame(rng *rand.Rand, frame []byte) {
	if len(frame) == 0 {
		return
	}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		frame[rng.Intn(len(frame))] ^= 1 << rng.Intn(8)
	}
}

// spoofFrame builds a forged SYN-ACK addressed like the template frame:
// same destination (the scanner) so it reaches the receive path, a
// random source address and random sequence/ack numbers so stateless
// validation must reject it. Structure and checksums are valid — the
// whole point is to exercise the validator, not the parser. Returns nil
// when the template is not an IPv4/TCP frame to mirror.
func spoofFrame(rng *rand.Rand, template []byte) []byte {
	f, err := packet.Parse(template)
	if err != nil || f.TCP == nil {
		return nil
	}
	buf := getFrame()
	buf = packet.AppendEthernet(buf, hostMAC, f.EthDst, packet.EtherTypeIPv4)
	src := rng.Uint32()
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       uint16(rng.Uint32()),
		TTL:      64,
		Protocol: packet.ProtocolTCP,
		Src:      src,
		Dst:      f.IP.Dst,
	}, packet.TCPHeaderLen)
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: f.TCP.SrcPort,
		DstPort: f.TCP.DstPort,
		Seq:     rng.Uint32(),
		Ack:     rng.Uint32(),
		Flags:   packet.FlagSYN | packet.FlagACK,
		Window:  65535,
	}, src, f.IP.Dst, nil) // no options; cannot fail
	return buf
}
