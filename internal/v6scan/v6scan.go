// Package v6scan is the IPv6 hitlist scanner — the capability §4 of the
// paper notes was implemented twice in forks (XMap, ZMapv6) rather than
// upstreamed; this package mirrors that history by living beside the v4
// engine instead of inside it.
//
// IPv6's address space cannot be enumerated, so v6 scanning is
// hitlist-driven: a curated list of candidate addresses (from DNS, CT
// logs, traceroutes, ...) is permuted with the same cyclic-group
// machinery as a v4 scan — the space is hitlist-index × port — and probed
// with real IPv6/TCP frames. Validation, sharding, rate limiting, and
// sliding-window dedup are shared with the v4 engine's substrates.
package v6scan

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"time"

	"zmapgo/internal/cyclic"
	"zmapgo/internal/dedup"
	"zmapgo/internal/monitor"
	"zmapgo/internal/packet"
	"zmapgo/internal/ratelimit"
	"zmapgo/internal/shard"
	"zmapgo/internal/target"
	"zmapgo/internal/validate"
)

// Hitlist is an ordered, deduplicated list of IPv6 targets.
type Hitlist struct {
	addrs [][16]byte
}

// ParseHitlist reads one IPv6 address per line ('#' comments and blanks
// ignored), rejecting IPv4 and malformed entries, and deduplicating while
// preserving first-seen order.
func ParseHitlist(r io.Reader) (*Hitlist, error) {
	h := &Hitlist{}
	seen := make(map[[16]byte]bool)
	scanner := bufio.NewScanner(r)
	line := 0
	for scanner.Scan() {
		line++
		text := scanner.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		addr, err := netip.ParseAddr(text)
		if err != nil {
			return nil, fmt.Errorf("v6scan: line %d: %w", line, err)
		}
		if !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("v6scan: line %d: %q is not IPv6", line, text)
		}
		b := addr.As16()
		if !seen[b] {
			seen[b] = true
			h.addrs = append(h.addrs, b)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(h.addrs) == 0 {
		return nil, errors.New("v6scan: empty hitlist")
	}
	return h, nil
}

// NewHitlist wraps addresses directly (tests, generators).
func NewHitlist(addrs [][16]byte) (*Hitlist, error) {
	if len(addrs) == 0 {
		return nil, errors.New("v6scan: empty hitlist")
	}
	return &Hitlist{addrs: addrs}, nil
}

// Len returns the hitlist size.
func (h *Hitlist) Len() int { return len(h.addrs) }

// At returns the i-th address.
func (h *Hitlist) At(i int) [16]byte { return h.addrs[i] }

// Transport matches the v4 engine's wire interface, including its
// fallible Send contract.
type Transport interface {
	Send(frame []byte) error
	Recv() <-chan []byte
	Stats() (sent, received, dropped uint64)
}

// transientSendError mirrors core's structural error classifier without
// importing the v4 engine: transport errors self-describe retryability.
type transientSendError interface {
	Transient() bool
}

// Result is one classified v6 response.
type Result struct {
	Addr    netip.Addr
	Port    uint16
	Class   string // "synack" | "rst"
	Success bool
	Repeat  bool
}

// Config describes a v6 hitlist scan.
type Config struct {
	Hitlist *Hitlist
	Ports   *target.PortSet

	Seed       int64
	Shards     int
	ShardIndex int
	Threads    int

	Rate     float64
	Cooldown time.Duration

	Options packet.OptionLayout

	// SourceAddr is the scanner's v6 address (default 2001:db8::2, the
	// documentation prefix).
	SourceAddr [16]byte

	// DedupWindow sizes the sliding window (0 = default; negative
	// disables).
	DedupWindow int

	// Emit receives every classified result; nil discards.
	Emit func(Result)
}

// Summary is the end-of-scan report.
type Summary struct {
	Targets    uint64
	Sent       uint64
	Received   uint64
	Successes  uint64
	Duplicates uint64
}

// Scanner runs one hitlist scan.
type Scanner struct {
	cfg       Config
	transport Transport
	space     *cyclic.Space
	cycle     cyclic.Cycle
	validator *validate.Validator
	counters  monitor.Counters
	window    *dedup.KeyedWindow[[18]byte]
}

var defaultV6Source = [16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2}

// New prepares a scanner.
func New(cfg Config, transport Transport) (*Scanner, error) {
	if cfg.Hitlist == nil || cfg.Hitlist.Len() == 0 {
		return nil, errors.New("v6scan: hitlist required")
	}
	if cfg.Ports == nil || cfg.Ports.Len() == 0 {
		return nil, errors.New("v6scan: ports required")
	}
	if transport == nil {
		return nil, errors.New("v6scan: transport required")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.Shards {
		return nil, fmt.Errorf("v6scan: shard %d outside [0, %d)", cfg.ShardIndex, cfg.Shards)
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.SourceAddr == ([16]byte{}) {
		cfg.SourceAddr = defaultV6Source
	}
	space, err := cyclic.NewSpace(uint64(cfg.Hitlist.Len()), uint64(cfg.Ports.Len()))
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	cycle := cyclic.NewCycle(space.Group(), rng)
	var key [validate.KeySize]byte
	rng.Read(key[:])

	var window *dedup.KeyedWindow[[18]byte]
	if cfg.DedupWindow >= 0 {
		size := cfg.DedupWindow
		if size == 0 {
			size = dedup.DefaultWindowSize
		}
		window = dedup.NewKeyedWindow[[18]byte](size)
	}
	return &Scanner{
		cfg:       cfg,
		transport: transport,
		space:     space,
		cycle:     cycle,
		validator: validate.New(key),
		window:    window,
	}, nil
}

// Run executes the scan.
func (s *Scanner) Run(ctx context.Context) (Summary, error) {
	cfg := &s.cfg
	var wg sync.WaitGroup
	order := s.space.Group().Order()
	for t := 0; t < cfg.Threads; t++ {
		a := shard.Plan(shard.Pizza, order, cfg.Shards, cfg.Threads, cfg.ShardIndex, t)
		wg.Add(1)
		go func(a shard.Assignment) {
			defer wg.Done()
			s.sendLoop(ctx, a)
		}(a)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.recvLoop(ctx, stop)
	}()
	wg.Wait()
	select {
	case <-ctx.Done():
	case <-time.After(cfg.Cooldown):
	}
	close(stop)
	<-done

	snap := s.counters.Snapshot()
	return Summary{
		Targets:    s.space.Targets(),
		Sent:       snap.Sent,
		Received:   snap.Recv,
		Successes:  snap.UniqueSucc,
		Duplicates: snap.Duplicates,
	}, nil
}

func (s *Scanner) sendLoop(ctx context.Context, a shard.Assignment) {
	cfg := &s.cfg
	limiter := ratelimit.New(cfg.Rate/float64(cfg.Threads), nil)
	it := a.Iterator(s.cycle)
	buf := make([]byte, 0, 128)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		elem, ok := it.Next()
		if !ok {
			return
		}
		idx, portIdx, ok := s.space.Decode(elem)
		if !ok {
			continue
		}
		addr := cfg.Hitlist.At(int(idx))
		port := cfg.Ports.At(int(portIdx))
		limiter.Wait()
		var err error
		buf, err = s.makeProbe(buf[:0], addr, port)
		if err != nil {
			continue // unbuildable probe: skip the target, never send a partial frame
		}
		if !s.sendWithRetry(buf) {
			return // fatal transport error: stop this sender
		}
	}
}

// sendWithRetry pushes one frame with a small fixed retry budget for
// transient transport errors (the v6 path keeps core's policy in
// miniature: 10 attempts, 1ms doubling backoff). It reports false on a
// fatal error.
func (s *Scanner) sendWithRetry(frame []byte) bool {
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		err := s.transport.Send(frame)
		if err == nil {
			s.counters.Sent()
			return true
		}
		var te transientSendError
		if !errors.As(err, &te) || !te.Transient() {
			return false
		}
		if attempt >= 10 {
			return true // drop this probe, keep scanning
		}
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

func (s *Scanner) makeProbe(buf []byte, dst [16]byte, port uint16) ([]byte, error) {
	opts := packet.BuildOptions(s.cfg.Options, uint32(s.cfg.Seed))
	buf = packet.AppendEthernet(buf, packet.MAC{2, 0x5A, 0x36, 0, 0, 1}, packet.MAC{}, packet.EtherTypeIPv6)
	buf = packet.AppendIPv6(buf, packet.IPv6Header{
		NextHeader: packet.ProtocolTCP,
		HopLimit:   255,
		Src:        s.cfg.SourceAddr,
		Dst:        dst,
	}, packet.TCPHeaderLen+len(opts))
	return packet.AppendTCP6(buf, packet.TCP{
		SrcPort: 40000 + uint16(s.validator.Compute6(s.cfg.SourceAddr, dst, port)>>48)%256,
		DstPort: port,
		Seq:     s.validator.TCPSeq6(s.cfg.SourceAddr, dst, port),
		Flags:   packet.FlagSYN,
		Window:  65535,
		Options: opts,
	}, s.cfg.SourceAddr, dst, nil)
}

func (s *Scanner) recvLoop(ctx context.Context, stop <-chan struct{}) {
	cfg := &s.cfg
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case frame := <-s.transport.Recv():
			s.counters.Recv()
			f, err := packet.ParseIPv6(frame)
			if err != nil || f.TCP == nil || f.IP.Dst != cfg.SourceAddr {
				continue
			}
			addr, port := f.IP.Src, f.TCP.SrcPort
			isRST := f.TCP.Flags&packet.FlagRST != 0
			seq := s.validator.TCPSeq6(cfg.SourceAddr, addr, port)
			if f.TCP.Ack != seq+1 && !(isRST && f.TCP.Ack == seq) {
				continue // fails stateless validation
			}
			res := Result{Addr: netip.AddrFrom16(addr), Port: port}
			switch {
			case f.TCP.Flags&packet.FlagSYN != 0 && f.TCP.Flags&packet.FlagACK != 0:
				res.Class, res.Success = "synack", true
			case isRST:
				res.Class = "rst"
			default:
				continue
			}
			if s.window != nil {
				var key [18]byte
				copy(key[:16], addr[:])
				key[16], key[17] = byte(port>>8), byte(port)
				res.Repeat = s.window.Seen(key)
			}
			if res.Repeat {
				s.counters.Duplicate()
			}
			if res.Success {
				s.counters.Success(!res.Repeat)
			}
			if cfg.Emit != nil {
				cfg.Emit(res)
			}
		}
	}
}
