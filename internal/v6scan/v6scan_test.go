package v6scan

import (
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
	"zmapgo/internal/target"
)

func TestParseHitlist(t *testing.T) {
	src := `
# seed hitlist
2001:db8::1
2001:db8::2   # router
2001:db8::1
2600:beef:0:1::77
`
	h, err := ParseHitlist(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 {
		t.Fatalf("len = %d, want 3 (deduplicated)", h.Len())
	}
	if netip.AddrFrom16(h.At(0)).String() != "2001:db8::1" {
		t.Errorf("order not preserved: %v", netip.AddrFrom16(h.At(0)))
	}
}

func TestParseHitlistErrors(t *testing.T) {
	bad := []string{
		"not-an-address\n",
		"10.0.0.1\n",        // IPv4
		"::ffff:10.0.0.1\n", // v4-mapped
		"",                  // empty
		"# only comments\n",
	}
	for _, src := range bad {
		if _, err := ParseHitlist(strings.NewReader(src)); err == nil {
			t.Errorf("ParseHitlist(%q) succeeded, want error", src)
		}
	}
}

// synthHitlist builds n distinct addresses under 2001:db8:1::/48.
func synthHitlist(t *testing.T, n int) *Hitlist {
	t.Helper()
	addrs := make([][16]byte, n)
	for i := range addrs {
		var a [16]byte
		a[0], a[1], a[2], a[3], a[5] = 0x20, 0x01, 0x0d, 0xb8, 1
		a[12] = byte(i >> 24)
		a[13] = byte(i >> 16)
		a[14] = byte(i >> 8)
		a[15] = byte(i)
		addrs[i] = a
	}
	h, err := NewHitlist(addrs)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func testScan(t *testing.T, seed uint64, n int, ports string, threads int) (Summary, []Result, *netsim.Internet) {
	t.Helper()
	simCfg := netsim.DefaultConfig(seed)
	simCfg.ProbeLoss, simCfg.ResponseLoss, simCfg.PathBadFraction = 0, 0, 0
	in := netsim.New(simCfg)
	link := netsim.NewLink(in, 1<<16, 0)
	t.Cleanup(link.Close)

	ps, err := target.ParsePorts(ports)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var results []Result
	s, err := New(Config{
		Hitlist:  synthHitlist(t, n),
		Ports:    ps,
		Seed:     int64(seed) + 1,
		Threads:  threads,
		Cooldown: 150 * time.Millisecond,
		Options:  packet.LayoutMSS,
		Emit: func(r Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	}, link)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return sum, append([]Result{}, results...), in
}

func TestV6ScanFindsServices(t *testing.T) {
	sum, results, in := testScan(t, 600, 4096, "443", 4)
	if sum.Sent != 4096 {
		t.Errorf("sent %d probes, want 4096", sum.Sent)
	}
	// Ground truth: count open+accepting services in the hitlist.
	opts := packet.BuildOptions(packet.LayoutMSS, 0)
	want := 0
	h := synthHitlist(t, 4096)
	for i := 0; i < h.Len(); i++ {
		addr := h.At(i)
		if in.ServiceOpen6(addr, 443) && acceptsForTest(in, addr, 443, opts) {
			want++
		}
	}
	got := 0
	for _, r := range results {
		if r.Success && !r.Repeat {
			got++
			b := r.Addr.As16()
			if !in.ServiceOpen6(b, 443) {
				t.Errorf("false positive %v", r.Addr)
			}
		}
	}
	if got != want {
		t.Errorf("found %d v6 services, ground truth %d", got, want)
	}
	if got == 0 {
		t.Fatal("no v6 services found at hitlist densities")
	}
	if sum.Successes != uint64(got) {
		t.Errorf("summary successes %d, emitted %d", sum.Successes, got)
	}
}

// acceptsForTest mirrors the sim's option gate via probing.
func acceptsForTest(in *netsim.Internet, addr [16]byte, port uint16, opts []byte) bool {
	src := defaultV6Source
	buf := packet.AppendEthernet(nil, packet.MAC{1}, packet.MAC{}, packet.EtherTypeIPv6)
	buf = packet.AppendIPv6(buf, packet.IPv6Header{NextHeader: packet.ProtocolTCP, HopLimit: 255, Src: src, Dst: addr}, packet.TCPHeaderLen+len(opts))
	buf, _ = packet.AppendTCP6(buf, packet.TCP{SrcPort: 1, DstPort: port, Seq: 5, Flags: packet.FlagSYN, Options: opts}, src, addr, nil)
	rs := in.Respond6(buf)
	if len(rs) == 0 {
		return false
	}
	f, err := packet.ParseIPv6(rs[0].Frame)
	return err == nil && f.TCP != nil && f.TCP.Flags == packet.FlagSYN|packet.FlagACK
}

func TestV6ScanRSTsReported(t *testing.T) {
	_, results, _ := testScan(t, 601, 4096, "81", 2)
	rsts := 0
	for _, r := range results {
		if r.Class == "rst" {
			if r.Success {
				t.Fatal("rst marked success")
			}
			rsts++
		}
	}
	if rsts == 0 {
		t.Error("no RSTs from closed ports on live hosts")
	}
}

func TestV6ScanDeterministic(t *testing.T) {
	sum1, res1, _ := testScan(t, 602, 2048, "80", 3)
	sum2, res2, _ := testScan(t, 602, 2048, "80", 3)
	if sum1.Successes != sum2.Successes || len(res1) != len(res2) {
		t.Errorf("runs differ: %d/%d vs %d/%d", sum1.Successes, len(res1), sum2.Successes, len(res2))
	}
}

func TestV6ScanMultiport(t *testing.T) {
	sum, results, _ := testScan(t, 603, 1024, "80,443", 2)
	if sum.Sent != 2048 {
		t.Errorf("sent %d, want 2048", sum.Sent)
	}
	ports := map[uint16]int{}
	for _, r := range results {
		if r.Success {
			ports[r.Port]++
		}
	}
	if ports[80] == 0 || ports[443] == 0 {
		t.Errorf("port spread %v; want hits on both", ports)
	}
}

func TestV6ScanShardsPartition(t *testing.T) {
	simCfg := netsim.DefaultConfig(604)
	simCfg.ProbeLoss, simCfg.ResponseLoss, simCfg.PathBadFraction = 0, 0, 0
	in := netsim.New(simCfg)
	ps, _ := target.ParsePorts("443")
	var total uint64
	seen := map[netip.Addr]int{}
	var mu sync.Mutex
	for idx := 0; idx < 2; idx++ {
		link := netsim.NewLink(in, 1<<16, 0)
		s, err := New(Config{
			Hitlist: synthHitlist(t, 2048), Ports: ps, Seed: 99,
			Shards: 2, ShardIndex: idx, Threads: 2,
			Cooldown: 150 * time.Millisecond,
			Emit: func(r Result) {
				if r.Success && !r.Repeat {
					mu.Lock()
					seen[r.Addr]++
					mu.Unlock()
				}
			},
		}, link)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		total += sum.Sent
		link.Close()
	}
	if total != 2048 {
		t.Errorf("shards sent %d, want 2048", total)
	}
	for addr, n := range seen {
		if n != 1 {
			t.Errorf("%v found by %d shards", addr, n)
		}
	}
}

func TestV6ConfigValidation(t *testing.T) {
	in := netsim.New(netsim.DefaultConfig(605))
	link := netsim.NewLink(in, 16, 0)
	defer link.Close()
	ps, _ := target.ParsePorts("80")
	h := synthHitlist(t, 4)
	cases := []Config{
		{Ports: ps},  // no hitlist
		{Hitlist: h}, // no ports
		{Hitlist: h, Ports: ps, Shards: 2, ShardIndex: 2}, // bad shard
	}
	for i, cfg := range cases {
		if _, err := New(cfg, link); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Config{Hitlist: h, Ports: ps}, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewHitlist(nil); err == nil {
		t.Error("empty NewHitlist accepted")
	}
}

func BenchmarkV6Scan(b *testing.B) {
	simCfg := netsim.DefaultConfig(606)
	simCfg.ProbeLoss, simCfg.ResponseLoss, simCfg.PathBadFraction = 0, 0, 0
	in := netsim.New(simCfg)
	addrs := make([][16]byte, 4096)
	for i := range addrs {
		var a [16]byte
		a[0], a[1] = 0x20, 0x01
		a[14], a[15] = byte(i>>8), byte(i)
		addrs[i] = a
	}
	h, _ := NewHitlist(addrs)
	ps, _ := target.ParsePorts("443")
	for i := 0; i < b.N; i++ {
		link := netsim.NewLink(in, 1<<16, 0)
		s, err := New(Config{
			Hitlist: h, Ports: ps, Seed: int64(i) + 1, Threads: 4,
			Cooldown: 5 * time.Millisecond,
		}, link)
		if err != nil {
			b.Fatal(err)
		}
		sum, err := s.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		link.Close()
		b.ReportMetric(float64(sum.Successes), "services")
	}
}
