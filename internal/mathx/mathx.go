// Package mathx provides the 64-bit modular arithmetic, primality testing,
// and integer factorization routines that underpin ZMap's cyclic-group
// target generation. Everything here is deterministic and allocation-free
// on the hot paths.
//
// ZMap iterates multiplicative groups (Z/pZ)* for primes p slightly larger
// than a power of two. Group elements fit in 48 bits and generators are
// constrained below 2^16 so that products fit in 64-bit arithmetic, but the
// routines in this package are written for full-width uint64 operands using
// 128-bit intermediates so that callers never need to reason about overflow.
package mathx

import "math/bits"

// MulMod returns (a * b) mod m using a 128-bit intermediate product.
// m must be nonzero.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi == 0 {
		return lo % m
	}
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// PowMod returns (base ^ exp) mod m by square-and-multiply.
// m must be nonzero. PowMod(b, 0, m) == 1 % m.
func PowMod(base, exp, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = MulMod(result, base, m)
		}
		base = MulMod(base, base, m)
		exp >>= 1
	}
	return result
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Coprime reports whether a and b share no common factor other than 1.
func Coprime(a, b uint64) bool { return GCD(a, b) == 1 }

// millerRabinBases is a deterministic witness set for all n < 2^64
// (Sinclair 2011). Testing against these seven bases is a proof, not a
// probabilistic argument, within the uint64 range.
var millerRabinBases = [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022}

// IsPrime reports whether n is prime. Deterministic for all uint64 values.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	// Write n-1 as d * 2^r with d odd.
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range millerRabinBases {
		a %= n
		if a == 0 {
			continue
		}
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// NextPrime returns the smallest prime >= n. Panics if the search would
// overflow uint64 (no prime exists in range), which cannot happen for the
// group sizes used by this module.
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for {
		if IsPrime(n) {
			return n
		}
		if n > n+2 {
			panic("mathx: NextPrime overflow")
		}
		n += 2
	}
}

// pollardRho finds a non-trivial factor of composite odd n using Brent's
// cycle-finding variant of Pollard's rho with the polynomial x^2 + c.
func pollardRho(n uint64) uint64 {
	if n&1 == 0 {
		return 2
	}
	// Deterministic sequence of increment constants: rho can fail for a
	// particular c (cycle without a factor), so walk c upward until a
	// factor appears. Termination is guaranteed for composite n because
	// some c always works and c stays tiny in practice.
	for c := uint64(1); ; c++ {
		f := func(x uint64) uint64 {
			return (MulMod(x, x, n) + c) % n
		}
		x, y, d := uint64(2), uint64(2), uint64(1)
		for d == 1 {
			x = f(x)
			y = f(f(y))
			diff := x - y
			if x < y {
				diff = y - x
			}
			if diff == 0 {
				d = n // cycle without factor; try next c
				break
			}
			d = GCD(diff, n)
		}
		if d != n {
			return d
		}
	}
}

// Factor returns the prime factorization of n as a sorted slice of
// (prime, exponent) pairs. Factor(0) and Factor(1) return nil.
func Factor(n uint64) []PrimePower {
	if n < 2 {
		return nil
	}
	counts := make(map[uint64]uint)
	factorInto(n, counts)
	out := make([]PrimePower, 0, len(counts))
	for p, e := range counts {
		out = append(out, PrimePower{P: p, E: e})
	}
	sortPrimePowers(out)
	return out
}

// PrimePower is one term p^e of a factorization.
type PrimePower struct {
	P uint64 // prime
	E uint
	// E is the exponent; P^E divides the factored value exactly.
}

func factorInto(n uint64, counts map[uint64]uint) {
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47} {
		for n%p == 0 {
			counts[p]++
			n /= p
		}
	}
	if n == 1 {
		return
	}
	if IsPrime(n) {
		counts[n]++
		return
	}
	d := pollardRho(n)
	factorInto(d, counts)
	factorInto(n/d, counts)
}

func sortPrimePowers(pp []PrimePower) {
	// Insertion sort: factor lists are tiny (<= 15 entries for uint64).
	for i := 1; i < len(pp); i++ {
		for j := i; j > 0 && pp[j].P < pp[j-1].P; j-- {
			pp[j], pp[j-1] = pp[j-1], pp[j]
		}
	}
}

// DistinctPrimes returns just the distinct prime factors of n, sorted.
func DistinctPrimes(n uint64) []uint64 {
	pp := Factor(n)
	out := make([]uint64, len(pp))
	for i, f := range pp {
		out[i] = f.P
	}
	return out
}

// EulerPhi returns Euler's totient of n computed from its factorization.
func EulerPhi(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	phi := n
	for _, f := range Factor(n) {
		phi = phi / f.P * (f.P - 1)
	}
	return phi
}

// IsGeneratorOfMultiplicativeGroup reports whether g generates (Z/pZ)* for
// prime p, given the distinct prime factors of p-1. This is the
// factorization-based check the paper describes for the modern generator
// search: g is a generator iff g^((p-1)/k) != 1 (mod p) for every distinct
// prime k dividing p-1.
func IsGeneratorOfMultiplicativeGroup(g, p uint64, pm1Factors []uint64) bool {
	if g <= 1 || g >= p {
		return false
	}
	for _, k := range pm1Factors {
		if PowMod(g, (p-1)/k, p) == 1 {
			return false
		}
	}
	return true
}

// InvMod returns the multiplicative inverse of a modulo m, i.e. x with
// a*x ≡ 1 (mod m), and ok=false when gcd(a, m) != 1. It runs the extended
// Euclidean algorithm in int64 space, so m must be below 2^63 (true for
// every scanning group; moduli top out at 2^48+21).
func InvMod(a, m uint64) (uint64, bool) {
	if m == 0 || m >= 1<<63 {
		return 0, false
	}
	a %= m
	if a == 0 {
		return 0, false
	}
	// Iterative extended Euclid on (old_r, r) and (old_s, s).
	oldR, r := int64(a), int64(m)
	oldS, s := int64(1), int64(0)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldS, s = s, oldS-q*s
	}
	if oldR != 1 {
		return 0, false
	}
	if oldS < 0 {
		oldS += int64(m)
	}
	return uint64(oldS), true
}

// MulDiv64 returns floor(a*b/d) using a 128-bit intermediate product.
// d must be nonzero and the quotient must fit in 64 bits; callers in this
// module only use it to compute proportional chunk boundaries (b <= d), for
// which the quotient never exceeds a.
func MulDiv64(a, b, d uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	q, _ := bits.Div64(hi, lo, d)
	return q
}

// Log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func Log2Ceil(n uint64) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(n - 1))
}
