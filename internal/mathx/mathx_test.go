package mathx

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulModMatchesBigInt(t *testing.T) {
	f := func(a, b uint64, mRaw uint64) bool {
		m := mRaw
		if m == 0 {
			m = 1
		}
		got := MulMod(a, b, m)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulModEdgeCases(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{0, 0, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0), 0},
		{^uint64(0), ^uint64(0), 2, 1},
		{1 << 32, 1 << 32, (1 << 32) + 15, (1 << 32) % ((1 << 32) + 15) * (1 << 32) % ((1 << 32) + 15) % ((1 << 32) + 15)},
		{7, 9, 5, 3},
	}
	for _, c := range cases {
		if got := MulMod(c.a, c.b, c.m); got != c.want {
			// recompute want via big for the shifted case
			want := new(big.Int).Mul(new(big.Int).SetUint64(c.a), new(big.Int).SetUint64(c.b))
			want.Mod(want, new(big.Int).SetUint64(c.m))
			if got != want.Uint64() {
				t.Errorf("MulMod(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, want.Uint64())
			}
		}
	}
}

func TestPowModMatchesBigInt(t *testing.T) {
	f := func(base, exp uint64, mRaw uint64) bool {
		m := mRaw
		if m == 0 {
			m = 1
		}
		exp %= 1 << 20 // keep big.Exp cheap
		got := PowMod(base, exp, m)
		want := new(big.Int).Exp(
			new(big.Int).SetUint64(base),
			new(big.Int).SetUint64(exp),
			new(big.Int).SetUint64(m))
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPowModZeroExponent(t *testing.T) {
	if got := PowMod(12345, 0, 97); got != 1 {
		t.Errorf("PowMod(12345,0,97) = %d, want 1", got)
	}
	if got := PowMod(5, 0, 1); got != 0 {
		t.Errorf("PowMod(5,0,1) = %d, want 0", got)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{0, 7, 7},
		{7, 0, 7},
		{12, 18, 6},
		{17, 13, 1},
		{1 << 40, 1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDCommutes(t *testing.T) {
	f := func(a, b uint64) bool { return GCD(a, b) == GCD(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCDDivides(t *testing.T) {
	f := func(a, b uint64) bool {
		g := GCD(a, b)
		if g == 0 {
			return a == 0 && b == 0
		}
		return a%g == 0 && b%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		4: false, 6: false, 9: false, 15: false, 21: false, 25: false,
		0: false, 1: false,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeSieveAgreement(t *testing.T) {
	const limit = 20000
	sieve := make([]bool, limit)
	for i := 2; i < limit; i++ {
		sieve[i] = true
	}
	for i := 2; i*i < limit; i++ {
		if sieve[i] {
			for j := i * i; j < limit; j += i {
				sieve[j] = false
			}
		}
	}
	for n := uint64(0); n < limit; n++ {
		if IsPrime(n) != sieve[n] {
			t.Fatalf("IsPrime(%d) = %v disagrees with sieve", n, IsPrime(n))
		}
	}
}

func TestIsPrimeZMapGroupModuli(t *testing.T) {
	// The prime moduli ZMap uses for its cyclic groups. Note the paper's
	// text says 2^48+23, but that value is composite (divisible by small
	// primes); the actual ZMap group modulus is 2^48+21.
	primes := []uint64{
		(1 << 16) + 1,
		(1 << 24) + 43,
		(1 << 28) + 3,
		(1 << 32) + 15,
		(1 << 34) + 25,
		(1 << 36) + 31,
		(1 << 40) + 15,
		(1 << 44) + 7,
		(1 << 48) + 21,
	}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	if IsPrime((1 << 48) + 23) {
		t.Error("2^48+23 should be composite (paper typo)")
	}
}

func TestIsPrimeStrongPseudoprimes(t *testing.T) {
	// Carmichael numbers and strong pseudoprimes to base 2.
	composites := []uint64{561, 1105, 1729, 2047, 3215031751, 3825123056546413051}
	for _, n := range composites {
		if IsPrime(n) {
			t.Errorf("IsPrime(%d) = true for composite", n)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {1 << 16, 65537},
	}
	for _, c := range cases {
		if got := NextPrime(c.n); got != c.want {
			t.Errorf("NextPrime(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFactorReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint64(rng.Int63n(1<<40)) + 2
		prod := uint64(1)
		for _, pp := range Factor(n) {
			if !IsPrime(pp.P) {
				return false
			}
			for i := uint(0); i < pp.E; i++ {
				prod *= pp.P
			}
		}
		return prod == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorKnownValues(t *testing.T) {
	// Factorizations of p-1 for ZMap's group moduli (used by the modern
	// generator search). Cross-checked externally.
	cases := []struct {
		n    uint64
		want []PrimePower
	}{
		{(1 << 16), []PrimePower{{2, 16}}},
		{(1 << 24) + 42, []PrimePower{{2, 1}, {23, 1}, {103, 1}, {3541, 1}}},
		{(1 << 32) + 14, []PrimePower{{2, 1}, {3, 2}, {5, 1}, {131, 1}, {364289, 1}}},
		{(1 << 48) + 20, []PrimePower{{2, 2}, {3, 1}, {7, 1}, {1361, 1}, {2462081249, 1}}},
		{12, []PrimePower{{2, 2}, {3, 1}}},
		{1, nil},
		{0, nil},
	}
	for _, c := range cases {
		got := Factor(c.n)
		if len(got) != len(c.want) {
			t.Errorf("Factor(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Factor(%d)[%d] = %v, want %v", c.n, i, got[i], c.want[i])
			}
		}
	}
}

func TestFactorSortedAscending(t *testing.T) {
	f := func(n uint64) bool {
		n %= 1 << 44
		pp := Factor(n)
		for i := 1; i < len(pp); i++ {
			if pp[i].P <= pp[i-1].P {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEulerPhi(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 0}, {1, 1}, {2, 1}, {9, 6}, {10, 4}, {65536, 32768}, {97, 96},
	}
	for _, c := range cases {
		if got := EulerPhi(c.n); got != c.want {
			t.Errorf("EulerPhi(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestEulerPhiZMapGroup(t *testing.T) {
	// Sanity for the "average four attempts" claim: phi(p-1)/(p-1) should
	// be roughly 1/4 for ZMap's group moduli.
	for _, p := range []uint64{(1 << 32) + 15, (1 << 48) + 21} {
		phi := EulerPhi(p - 1)
		ratio := float64(phi) / float64(p-1)
		if ratio < 0.2 || ratio > 0.35 {
			t.Errorf("phi(p-1)/(p-1) for p=%d is %.4f, expected ~0.25-0.30", p, ratio)
		}
	}
}

func TestIsGeneratorOfMultiplicativeGroup(t *testing.T) {
	// (Z/7Z)*: generators are 3 and 5.
	factors := DistinctPrimes(6) // [2 3]
	gens := map[uint64]bool{1: false, 2: false, 3: true, 4: false, 5: true, 6: false}
	for g, want := range gens {
		if got := IsGeneratorOfMultiplicativeGroup(g, 7, factors); got != want {
			t.Errorf("IsGenerator(%d, 7) = %v, want %v", g, got, want)
		}
	}
	// Out of range values are never generators.
	if IsGeneratorOfMultiplicativeGroup(0, 7, factors) ||
		IsGeneratorOfMultiplicativeGroup(7, 7, factors) ||
		IsGeneratorOfMultiplicativeGroup(8, 7, factors) {
		t.Error("out-of-range g accepted as generator")
	}
}

func TestGeneratorCountMatchesPhi(t *testing.T) {
	// For prime p the number of generators of (Z/pZ)* is phi(p-1).
	for _, p := range []uint64{7, 11, 13, 17, 101, 65537} {
		factors := DistinctPrimes(p - 1)
		count := uint64(0)
		for g := uint64(2); g < p; g++ {
			if IsGeneratorOfMultiplicativeGroup(g, p, factors) {
				count++
			}
		}
		want := EulerPhi(p - 1)
		if p > 2 {
			want-- // g=1 is excluded by our range but phi counts it only when p-1=1
		}
		// phi(p-1) counts generators among 1..p-1; 1 is a generator only
		// for p=2, so for p>3 the count over 2..p-1 equals phi(p-1).
		want = EulerPhi(p - 1)
		if count != want {
			t.Errorf("p=%d: generator count %d, want phi(p-1)=%d", p, count, want)
		}
	}
}

func TestInvMod(t *testing.T) {
	cases := []struct {
		a, m uint64
		ok   bool
	}{
		{3, 7, true},
		{2, 7, true},
		{1, 7, true},
		{6, 9, false}, // gcd 3
		{0, 7, false},
		{7, 7, false},
		{5, 0, false},
		{48271, (1 << 48) + 21, true},
	}
	for _, c := range cases {
		inv, ok := InvMod(c.a, c.m)
		if ok != c.ok {
			t.Errorf("InvMod(%d, %d) ok = %v, want %v", c.a, c.m, ok, c.ok)
			continue
		}
		if ok && MulMod(c.a%c.m, inv, c.m) != 1 {
			t.Errorf("InvMod(%d, %d) = %d does not invert", c.a, c.m, inv)
		}
	}
}

func TestInvModProperty(t *testing.T) {
	// For prime p, every nonzero residue has an inverse that inverts.
	const p = (1 << 32) + 15
	f := func(a uint64) bool {
		a = a%(p-1) + 1
		inv, ok := InvMod(a, p)
		return ok && MulMod(a, inv, p) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1 << 16, 16}, {(1 << 16) + 1, 17},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func BenchmarkMulMod(b *testing.B) {
	const p = (1 << 48) + 21
	x := uint64(123456789)
	for i := 0; i < b.N; i++ {
		x = MulMod(x, 48271, p)
	}
	sinkU64 = x
}

func BenchmarkPowMod(b *testing.B) {
	const p = (1 << 48) + 21
	var x uint64
	for i := 0; i < b.N; i++ {
		x = PowMod(48271, uint64(i)|1, p)
	}
	sinkU64 = x
}

func BenchmarkIsPrime48Bit(b *testing.B) {
	var r bool
	for i := 0; i < b.N; i++ {
		r = IsPrime((1 << 48) + 21)
	}
	sinkBool = r
}

func BenchmarkFactor(b *testing.B) {
	var f []PrimePower
	for i := 0; i < b.N; i++ {
		f = Factor((1 << 48) + 20)
	}
	sinkLen = len(f)
}

var (
	sinkU64  uint64
	sinkBool bool
	sinkLen  int
)
