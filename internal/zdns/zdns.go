// Package zdns is a miniature of the ZDNS toolkit the paper's conclusion
// points to ("we are excited to continue to expand the ecosystem of tools
// that work with ZMap (e.g., ZDNS and ZGrab)"): a concurrent DNS lookup
// engine that reads names, fans them out over a worker pool to a set of
// resolvers, and emits one structured result per name — the same
// stdin-to-JSONL shape as the real tool.
//
// Queries run against the simulated Internet's UDP/53 services
// (internal/netsim), complete with transient loss, REFUSED-only
// resolvers, and NXDOMAINs, so retry and error paths are genuinely
// exercised.
package zdns

import (
	"fmt"
	"math/rand"
	"sync"

	"zmapgo/internal/dnswire"
	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
	"zmapgo/internal/target"
)

// Result is one lookup outcome, JSON-shaped like ZDNS output.
type Result struct {
	Name     string   `json:"name"`
	Type     string   `json:"type"`
	Status   string   `json:"status"` // NOERROR | NXDOMAIN | REFUSED | TIMEOUT | ERROR
	Answers  []string `json:"answers,omitempty"`
	Resolver string   `json:"resolver"`
	Tries    int      `json:"tries"`
}

// Resolver issues queries against simulated DNS servers.
type Resolver struct {
	in      *netsim.Internet
	servers []uint32
	// Retries is the per-lookup attempt budget across servers.
	Retries int

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a resolver pool. servers must be UDP/53-responsive
// addresses (DiscoverServers finds some).
func New(in *netsim.Internet, servers []uint32, seed int64) (*Resolver, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("zdns: no resolvers configured")
	}
	return &Resolver{
		in:      in,
		servers: servers,
		Retries: 3,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// DiscoverServers scans [start, start+span) for UDP/53 services — the
// ZMap-then-ZDNS pipeline in one call — returning up to max addresses.
func DiscoverServers(in *netsim.Internet, start uint32, span uint32, max int) []uint32 {
	var out []uint32
	for off := uint32(0); off < span && len(out) < max; off++ {
		ip := start + off
		if in.UDPServiceOpen(ip, 53) {
			out = append(out, ip)
		}
	}
	return out
}

// scannerSrcIP is the resolver's source address in the simulation.
const scannerSrcIP = 0xC0000202 // 192.0.2.2

func (r *Resolver) randID() uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint16(r.rng.Intn(65536))
}

func (r *Resolver) pickServer(try int) uint32 {
	return r.servers[try%len(r.servers)]
}

// Lookup resolves one name. qtype is dnswire.TypeA or dnswire.TypeTXT.
func (r *Resolver) Lookup(name string, qtype uint16) Result {
	res := Result{Name: name, Type: typeName(qtype)}
	for try := 0; try < r.Retries; try++ {
		res.Tries = try + 1
		server := r.pickServer(try)
		res.Resolver = target.FormatIPv4(server)
		id := r.randID()
		query, err := dnswire.AppendQuery(nil, id, name, qtype)
		if err != nil {
			res.Status = "ERROR"
			return res
		}
		frame := buildUDPFrame(server, query)
		responses := r.in.Respond(frame)
		if len(responses) == 0 {
			res.Status = "TIMEOUT" // lost or unresponsive; try next server
			continue
		}
		f, err := packet.Parse(responses[0].Frame)
		if err != nil || f.UDP == nil {
			res.Status = "ERROR"
			continue
		}
		msg, err := dnswire.ParseResponse(f.Payload)
		if err != nil {
			res.Status = "ERROR"
			continue
		}
		if msg.ID != id {
			// Off-path answer or corruption: never accept a mismatched
			// transaction ID (the anti-spoofing check ZDNS performs).
			res.Status = "ERROR"
			continue
		}
		switch msg.RCode {
		case dnswire.RCodeNoError:
			res.Status = "NOERROR"
			for _, a := range msg.Answers {
				switch a.Type {
				case dnswire.TypeA:
					res.Answers = append(res.Answers,
						target.FormatIPv4(uint32(a.A[0])<<24|uint32(a.A[1])<<16|uint32(a.A[2])<<8|uint32(a.A[3])))
				case dnswire.TypeTXT:
					res.Answers = append(res.Answers, a.Text)
				}
			}
		case dnswire.RCodeNXDomain:
			res.Status = "NXDOMAIN"
		case dnswire.RCodeRefused:
			// A refusing resolver is a definitive non-answer for this
			// server but not for the name; fall through to the next
			// server in the pool.
			res.Status = "REFUSED"
			continue
		default:
			res.Status = "ERROR"
		}
		return res
	}
	return res
}

// LookupAll fans names out over a worker pool, invoking emit for every
// result. emit is serialized; order follows completion, not input.
func (r *Resolver) LookupAll(names []string, qtype uint16, workers int, emit func(Result)) {
	if workers <= 0 {
		workers = 1
	}
	in := make(chan string)
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range in {
				res := r.Lookup(name, qtype)
				emitMu.Lock()
				emit(res)
				emitMu.Unlock()
			}
		}()
	}
	for _, n := range names {
		in <- n
	}
	close(in)
	wg.Wait()
}

func typeName(qtype uint16) string {
	switch qtype {
	case dnswire.TypeA:
		return "A"
	case dnswire.TypeTXT:
		return "TXT"
	default:
		return fmt.Sprintf("TYPE%d", qtype)
	}
}

// buildUDPFrame wraps a DNS payload in UDP/IP/Ethernet toward server.
func buildUDPFrame(server uint32, payload []byte) []byte {
	buf := make([]byte, 0, packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen+len(payload))
	buf = packet.AppendEthernet(buf, packet.MAC{2, 0, 0, 0, 0, 7}, packet.MAC{}, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolUDP, Src: scannerSrcIP, Dst: server,
	}, packet.UDPHeaderLen+len(payload))
	return packet.AppendUDP(buf, 53535, 53, scannerSrcIP, server, payload)
}
