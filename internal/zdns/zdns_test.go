package zdns

import (
	"fmt"
	"strings"
	"testing"

	"zmapgo/internal/dnswire"
	"zmapgo/internal/netsim"
)

func losslessSim(seed uint64) *netsim.Internet {
	cfg := netsim.DefaultConfig(seed)
	cfg.ProbeLoss, cfg.ResponseLoss, cfg.PathBadFraction = 0, 0, 0
	return netsim.New(cfg)
}

// openResolvers finds servers that are not REFUSED-only.
func openResolvers(t *testing.T, in *netsim.Internet, n int) []uint32 {
	t.Helper()
	servers := DiscoverServers(in, 0, 5_000_000, 50)
	if len(servers) == 0 {
		t.Fatal("no DNS servers in range")
	}
	r, err := New(in, servers[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	var open []uint32
	for _, s := range servers {
		r.servers = []uint32{s}
		if res := r.Lookup("probe.example", dnswire.TypeA); res.Status != "REFUSED" {
			open = append(open, s)
		}
		if len(open) == n {
			break
		}
	}
	if len(open) < n {
		t.Fatalf("only %d open resolvers found", len(open))
	}
	return open
}

func TestDiscoverServers(t *testing.T) {
	in := losslessSim(300)
	servers := DiscoverServers(in, 0, 2_000_000, 10)
	if len(servers) == 0 {
		t.Fatal("no servers discovered (2% density over 2M addresses)")
	}
	for _, s := range servers {
		if !in.UDPServiceOpen(s, 53) {
			t.Errorf("discovered %d is not a DNS service", s)
		}
	}
}

func TestLookupA(t *testing.T) {
	in := losslessSim(301)
	r, err := New(in, openResolvers(t, in, 1), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Find an existing name deterministically by trying a few.
	var hit Result
	for i := 0; i < 40; i++ {
		res := r.Lookup(fmt.Sprintf("host%d.example", i), dnswire.TypeA)
		if res.Status == "NOERROR" && len(res.Answers) > 0 {
			hit = res
			break
		}
	}
	if hit.Status != "NOERROR" {
		t.Fatal("no resolvable name in 40 tries at 85% existence")
	}
	for _, a := range hit.Answers {
		if !strings.Contains(a, ".") {
			t.Errorf("answer %q not an address", a)
		}
	}
	// Same name, same answers: zones are deterministic.
	again := r.Lookup(hit.Name, dnswire.TypeA)
	if len(again.Answers) != len(hit.Answers) || again.Answers[0] != hit.Answers[0] {
		t.Errorf("non-deterministic zone: %v vs %v", again.Answers, hit.Answers)
	}
}

func TestLookupNXDomain(t *testing.T) {
	in := losslessSim(302)
	r, err := New(in, openResolvers(t, in, 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	nx := 0
	for i := 0; i < 60; i++ {
		if r.Lookup(fmt.Sprintf("missing%d.example", i), dnswire.TypeA).Status == "NXDOMAIN" {
			nx++
		}
	}
	if nx == 0 {
		t.Error("no NXDOMAINs in 60 names at 15% nonexistence")
	}
}

func TestLookupTXT(t *testing.T) {
	in := losslessSim(303)
	r, err := New(in, openResolvers(t, in, 1), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		res := r.Lookup(fmt.Sprintf("txt%d.example", i), dnswire.TypeTXT)
		if res.Status == "NOERROR" && len(res.Answers) > 0 {
			if !strings.HasPrefix(res.Answers[0], "v=sim1") {
				t.Errorf("TXT answer %q", res.Answers[0])
			}
			return
		}
	}
	t.Fatal("no TXT records found")
}

func TestLookupRetriesAcrossServers(t *testing.T) {
	// First server REFUSED-only, second open: the retry path must land
	// on the second.
	in := losslessSim(304)
	servers := DiscoverServers(in, 0, 5_000_000, 50)
	r, err := New(in, servers[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	var refused, open uint32
	foundR, foundO := false, false
	for _, s := range servers {
		r.servers = []uint32{s}
		status := r.Lookup("retry.example", dnswire.TypeA).Status
		if status == "REFUSED" && !foundR {
			refused, foundR = s, true
		} else if status != "REFUSED" && !foundO {
			open, foundO = s, true
		}
		if foundR && foundO {
			break
		}
	}
	if !foundR || !foundO {
		t.Skip("could not find both refused and open resolvers in range")
	}
	r2, err := New(in, []uint32{refused, open}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := r2.Lookup("exists-eventually.example", dnswire.TypeA)
	if res.Status == "REFUSED" {
		t.Errorf("lookup stuck on refused resolver: %+v", res)
	}
	if res.Tries < 2 {
		t.Errorf("tries = %d, want >= 2 (first server refuses)", res.Tries)
	}
}

func TestLookupTimeoutOnDeadServer(t *testing.T) {
	in := losslessSim(305)
	var dead uint32
	for ; ; dead++ {
		if !in.Live(dead) {
			break
		}
	}
	r, err := New(in, []uint32{dead}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Lookup("any.example", dnswire.TypeA)
	if res.Status != "TIMEOUT" {
		t.Errorf("status %q, want TIMEOUT", res.Status)
	}
	if res.Tries != r.Retries {
		t.Errorf("tries %d, want %d", res.Tries, r.Retries)
	}
}

func TestLookupAllConcurrent(t *testing.T) {
	in := losslessSim(306)
	r, err := New(in, openResolvers(t, in, 2), 11)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 120; i++ {
		names = append(names, fmt.Sprintf("bulk%d.example", i))
	}
	var results []Result
	r.LookupAll(names, dnswire.TypeA, 8, func(res Result) {
		results = append(results, res)
	})
	if len(results) != len(names) {
		t.Fatalf("%d results for %d names", len(results), len(names))
	}
	statuses := map[string]int{}
	for _, res := range results {
		statuses[res.Status]++
	}
	if statuses["NOERROR"] == 0 || statuses["NXDOMAIN"] == 0 {
		t.Errorf("status mix %v; want both NOERROR and NXDOMAIN", statuses)
	}
}

func TestNewRequiresServers(t *testing.T) {
	if _, err := New(losslessSim(307), nil, 1); err == nil {
		t.Error("empty server list accepted")
	}
}

func BenchmarkLookup(b *testing.B) {
	in := losslessSim(308)
	servers := DiscoverServers(in, 0, 2_000_000, 4)
	if len(servers) == 0 {
		b.Skip("no servers")
	}
	r, _ := New(in, servers, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchResult = r.Lookup("bench.example", dnswire.TypeA)
	}
}

var benchResult Result
