package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zmapgo/internal/health"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Tool:        "zmapgo",
		ToolVersion: "1.0.0",
		WrittenAt:   time.Unix(1700000000, 0).UTC(),
		Fingerprint: Fingerprint{
			Seed: 7, Shards: 2, ShardIndex: 1, Threads: 4,
			ShardMode: "pizza", ProbeModule: "tcp_synscan", Ports: "80,443",
			ProbesPerTarget: 1, TargetsDigest: "abc123",
		},
		Phase:          "send",
		Progress:       []uint64{10, 20, 30, 40},
		Runs:           1,
		FirstStart:     time.Unix(1699999000, 0).UTC(),
		CumulativeSecs: 12.5,
		PacketsSent:    100,
		ResultsWritten: 42,
		Dedup:          &DedupState{Size: 100, Keys: EncodeKeys([]uint64{1, 2, 3})},
		Health: &health.State{
			RatePPS:         1234.5,
			BaselineHitRate: 0.02,
			Decreases:       3,
			Quarantined: []health.Quarantine{
				{Prefix: "10.3.0.0/16", Index: 0x0A03, Sent: 500, Recv: 40, AtSecs: 1.5},
			},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	want := sampleSnapshot()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("fingerprint round trip: got %+v want %+v", got.Fingerprint, want.Fingerprint)
	}
	if got.Phase != "send" || got.Runs != 1 || got.PacketsSent != 100 {
		t.Errorf("fields lost: %+v", got)
	}
	if len(got.Progress) != 4 || got.Progress[3] != 40 {
		t.Errorf("progress round trip: %v", got.Progress)
	}
	keys, err := DecodeKeys(got.Dedup.Keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("dedup keys round trip: %v", keys)
	}
	if got.ResultsWritten != 42 {
		t.Errorf("results_written round trip: %d", got.ResultsWritten)
	}
	if got.Health == nil || got.Health.RatePPS != 1234.5 || got.Health.Decreases != 3 {
		t.Errorf("health state round trip: %+v", got.Health)
	}
	if len(got.Health.Quarantined) != 1 || got.Health.Quarantined[0].Prefix != "10.3.0.0/16" ||
		got.Health.Quarantined[0].Index != 0x0A03 {
		t.Errorf("quarantine log round trip: %+v", got.Health.Quarantined)
	}
	// No temp litter after a clean save.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestSaveIsAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	first := sampleSnapshot()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Progress = []uint64{99, 99, 99, 99}
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Progress[0] != 99 {
		t.Errorf("overwrite not visible: %v", got.Progress)
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	if err := os.WriteFile(path,
		[]byte(`{"format_version": 999, "phase": "send", "progress": [1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrVersion) {
		t.Errorf("Load of v999 = %v, want ErrVersion", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"nonjson":   "not json at all",
		"truncated": `{"format_version": 1, "phase": "se`,
		"empty_doc": `{"format_version": 1}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: Load accepted garbage", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestVerifyMismatch(t *testing.T) {
	s := sampleSnapshot()
	want := s.Fingerprint
	if err := s.Verify(want); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Fingerprint)
	}{
		{"seed", func(f *Fingerprint) { f.Seed = 8 }},
		{"shards", func(f *Fingerprint) { f.Shards = 3 }},
		{"shard_index", func(f *Fingerprint) { f.ShardIndex = 0 }},
		{"threads", func(f *Fingerprint) { f.Threads = 2 }},
		{"shard_mode", func(f *Fingerprint) { f.ShardMode = "interleaved" }},
		{"probe_module", func(f *Fingerprint) { f.ProbeModule = "udp" }},
		{"ports", func(f *Fingerprint) { f.Ports = "22" }},
		{"probes_per_target", func(f *Fingerprint) { f.ProbesPerTarget = 2 }},
		{"targets_digest", func(f *Fingerprint) { f.TargetsDigest = "zzz" }},
	}
	for _, tc := range cases {
		w := want
		tc.mutate(&w)
		err := s.Verify(w)
		if !errors.Is(err, ErrFingerprintMismatch) {
			t.Errorf("%s: Verify = %v, want ErrFingerprintMismatch", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error does not name the field: %v", tc.name, err)
		}
	}
}

func TestDecodeKeysRejectsBadInput(t *testing.T) {
	if _, err := DecodeKeys("!!! not base64 !!!"); err == nil {
		t.Error("bad base64 accepted")
	}
	if _, err := DecodeKeys("AAAA"); err == nil { // 3 raw bytes, not /8
		t.Error("non-multiple-of-8 accepted")
	}
	keys, err := DecodeKeys("")
	if err != nil || len(keys) != 0 {
		t.Errorf("empty decode = %v, %v", keys, err)
	}
}
