package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// LeaseFormatVersion identifies the lease document schema.
const LeaseFormatVersion = 1

// ErrLeaseFenced is returned by RenewLease when the lease on disk
// carries a different epoch than the renewer holds: the coordinator has
// reclaimed the shard and granted it to a newer worker, so the renewer
// must stop scanning immediately. Epoch fencing is what makes reclaim
// safe when a "dead" worker was merely slow: even if it wakes up after
// the coordinator gave its shard away, its next renewal fails and it
// exits instead of double-scanning the slice.
var ErrLeaseFenced = errors.New("checkpoint: lease superseded by a newer epoch")

// Lease states. A lease is granted by the coordinator, marked running by
// the worker's first renewal, and done when the shard's scan completed.
const (
	LeaseGranted = "granted"
	LeaseRunning = "running"
	LeaseDone    = "done"
)

// Lease is the per-shard ownership document a fleet coordinator and its
// workers share through the filesystem. The coordinator writes it to
// grant a shard (bumping Epoch); the owning worker rewrites it every
// heartbeat interval with a fresh RenewedAt; the coordinator reclaims
// the shard when RenewedAt goes stale past the TTL. All writes go
// through the same atomic temp-fsync-rename path as snapshots, so a
// reader never observes a torn lease.
type Lease struct {
	FormatVersion int    `json:"format_version"`
	FleetID       string `json:"fleet_id"`
	ShardIndex    int    `json:"shard_index"`

	// Epoch increments on every grant, including reclaim re-grants. A
	// worker may renew only the epoch it was spawned with.
	Epoch int `json:"epoch"`

	// OwnerPID and WorkerID identify the current holder. WorkerID is
	// human-readable ("shard-2.epoch-3") and rides journal entries.
	OwnerPID int    `json:"owner_pid"`
	WorkerID string `json:"worker_id"`

	State     string    `json:"state"`
	GrantedAt time.Time `json:"granted_at"`
	RenewedAt time.Time `json:"renewed_at"`
	TTLSecs   float64   `json:"ttl_secs"`

	// Fingerprint pins the permutation slice this lease covers. A
	// reclaimed shard handed to a different worker is adopted only when
	// the new worker's scan fingerprint matches; see Snapshot.Verify.
	Fingerprint Fingerprint `json:"fingerprint"`
}

// TTL returns the lease's heartbeat time-to-live.
func (l *Lease) TTL() time.Duration {
	return time.Duration(l.TTLSecs * float64(time.Second))
}

// Expired reports whether the lease's last renewal is stale past the
// TTL at the given instant. Done leases never expire.
func (l *Lease) Expired(now time.Time) bool {
	if l.State == LeaseDone {
		return false
	}
	return now.Sub(l.RenewedAt) > l.TTL()
}

// SaveLease writes the lease atomically with the same transient-failure
// retry policy as snapshots.
func SaveLease(path string, l *Lease) error {
	l.FormatVersion = LeaseFormatVersion
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode lease: %w", err)
	}
	data = append(data, '\n')
	return writeFileAtomic(path, data)
}

// LoadLease reads and validates a lease written by SaveLease.
func LoadLease(path string) (*Lease, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: lease: %w", err)
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("checkpoint: decode lease %s: %w", path, err)
	}
	if l.FormatVersion != LeaseFormatVersion {
		return nil, fmt.Errorf("%w: lease has %d, this build reads %d",
			ErrVersion, l.FormatVersion, LeaseFormatVersion)
	}
	return &l, nil
}

// RenewLease is the worker-side heartbeat: re-read the lease, verify the
// caller still holds it (epoch fencing), stamp a fresh renewal, and
// write it back. It returns the renewed lease, or ErrLeaseFenced
// (wrapped) when the epoch on disk moved past the caller's — the signal
// to abandon the shard.
func RenewLease(path string, epoch, pid int, now time.Time) (*Lease, error) {
	l, err := LoadLease(path)
	if err != nil {
		return nil, err
	}
	if l.Epoch != epoch {
		return nil, fmt.Errorf("%w: held epoch %d, disk has %d",
			ErrLeaseFenced, epoch, l.Epoch)
	}
	if l.State == LeaseDone {
		// Completion is terminal; a straggling heartbeat must not
		// regress it to running (Done leases never expire anyway).
		return l, nil
	}
	l.OwnerPID = pid
	l.RenewedAt = now
	if l.State == LeaseGranted {
		l.State = LeaseRunning
	}
	if err := SaveLease(path, l); err != nil {
		return nil, err
	}
	return l, nil
}
