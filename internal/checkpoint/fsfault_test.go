package checkpoint

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// withFSFaults installs an injection hook for the test and removes it on
// cleanup. The hook runs before each filesystem operation; returning a
// non-nil error replaces that operation's result.
func withFSFaults(t *testing.T, hook func(op string) error) {
	t.Helper()
	injectFSFault = hook
	t.Cleanup(func() { injectFSFault = nil })
}

func testSnapshot() *Snapshot {
	return &Snapshot{
		Tool:      "zmapgo",
		WrittenAt: time.Now(),
		Phase:     "send",
		Progress:  []uint64{10, 20},
		Fingerprint: Fingerprint{
			Seed: 7, Shards: 3, ShardIndex: 1, Threads: 2,
			ShardMode: "pizza", ProbeModule: "tcp_synscan", Ports: "80",
			ProbesPerTarget: 1, TargetsDigest: "d",
		},
	}
}

// TestSaveRetriesTransientWriteFaults: EINTR on the first few write
// syscalls must not abort the scan's checkpoint — the save retries and
// lands the snapshot.
func TestSaveRetriesTransientWriteFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	writes := 0
	withFSFaults(t, func(op string) error {
		if op == "write" {
			writes++
			if writes <= 3 {
				return &os.PathError{Op: "write", Path: path, Err: syscall.EINTR}
			}
		}
		return nil
	})
	if err := Save(path, testSnapshot()); err != nil {
		t.Fatalf("Save with 3 transient EINTR faults: %v", err)
	}
	if writes != 4 {
		t.Fatalf("expected 4 write attempts (3 faulted + 1 clean), got %d", writes)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("Load after retried save: %v", err)
	}
}

// TestSaveRetriesShortWrite: a short write is transient; the retry
// starts from a fresh temp file so no partial data survives.
func TestSaveRetriesShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	n := 0
	withFSFaults(t, func(op string) error {
		if op == "write" {
			n++
			if n == 1 {
				return io.ErrShortWrite
			}
		}
		return nil
	})
	if err := Save(path, testSnapshot()); err != nil {
		t.Fatalf("Save with one short write: %v", err)
	}
	snap, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if snap.Phase != "send" {
		t.Fatalf("snapshot corrupted by short-write retry: phase %q", snap.Phase)
	}
}

// TestSaveRetriesRenameRace: the temp file vanishing between create and
// rename (an external tmp cleaner) classifies as transient; the retry
// recreates it.
func TestSaveRetriesRenameRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	renames := 0
	withFSFaults(t, func(op string) error {
		if op == "rename" {
			renames++
			if renames == 1 {
				return fs.ErrNotExist
			}
		}
		return nil
	})
	if err := Save(path, testSnapshot()); err != nil {
		t.Fatalf("Save with one rename race: %v", err)
	}
	if renames != 2 {
		t.Fatalf("expected 2 rename attempts, got %d", renames)
	}
}

// TestSaveFatalErrorNotRetried: permission errors are not transient —
// retrying them only delays the real failure.
func TestSaveFatalErrorNotRetried(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	creates := 0
	withFSFaults(t, func(op string) error {
		if op == "create" {
			creates++
			return &os.PathError{Op: "open", Path: path, Err: syscall.EACCES}
		}
		return nil
	})
	err := Save(path, testSnapshot())
	if err == nil {
		t.Fatal("Save succeeded through an EACCES fault")
	}
	if !errors.Is(err, syscall.EACCES) {
		t.Fatalf("error does not carry the underlying EACCES: %v", err)
	}
	if creates != 1 {
		t.Fatalf("fatal error was retried: %d create attempts", creates)
	}
}

// TestSaveExhaustedRetriesPreservePrevious: a persistently failing save
// gives up with a bounded error and the previous snapshot stays intact
// and loadable — the whole point of the atomic write discipline.
func TestSaveExhaustedRetriesPreservePrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	good := testSnapshot()
	if err := Save(path, good); err != nil {
		t.Fatalf("seed save: %v", err)
	}

	attempts := 0
	withFSFaults(t, func(op string) error {
		if op == "sync" {
			attempts++
			return &os.PathError{Op: "sync", Path: path, Err: syscall.EINTR}
		}
		return nil
	})
	next := testSnapshot()
	next.Progress = []uint64{99, 99}
	err := Save(path, next)
	if err == nil {
		t.Fatal("Save succeeded with every sync faulted")
	}
	if attempts != saveAttempts {
		t.Fatalf("expected exactly %d attempts, got %d", saveAttempts, attempts)
	}
	injectFSFault = nil
	snap, lerr := Load(path)
	if lerr != nil {
		t.Fatalf("previous snapshot unloadable after failed save: %v", lerr)
	}
	if snap.Progress[0] != 10 {
		t.Fatalf("previous snapshot clobbered: progress %v", snap.Progress)
	}
}

// TestLeaseRoundTripAndExpiry covers the lease document lifecycle:
// grant, load, renewal freshness, and TTL expiry.
func TestLeaseRoundTripAndExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-1.lease")
	now := time.Now()
	l := &Lease{
		FleetID: "f1", ShardIndex: 1, Epoch: 1, OwnerPID: 1234,
		WorkerID: "shard-1.epoch-1", State: LeaseGranted,
		GrantedAt: now, RenewedAt: now, TTLSecs: 0.5,
		Fingerprint: testSnapshot().Fingerprint,
	}
	if err := SaveLease(path, l); err != nil {
		t.Fatalf("SaveLease: %v", err)
	}
	got, err := LoadLease(path)
	if err != nil {
		t.Fatalf("LoadLease: %v", err)
	}
	if got.Epoch != 1 || got.WorkerID != "shard-1.epoch-1" {
		t.Fatalf("lease round trip mangled: %+v", got)
	}
	if got.Expired(now.Add(100 * time.Millisecond)) {
		t.Fatal("fresh lease reported expired")
	}
	if !got.Expired(now.Add(time.Second)) {
		t.Fatal("stale lease not reported expired")
	}

	renewed, err := RenewLease(path, 1, 4321, now.Add(time.Second))
	if err != nil {
		t.Fatalf("RenewLease: %v", err)
	}
	if renewed.State != LeaseRunning || renewed.OwnerPID != 4321 {
		t.Fatalf("renewal did not take: %+v", renewed)
	}
	if renewed.Expired(now.Add(1200 * time.Millisecond)) {
		t.Fatal("renewed lease reported expired inside its fresh TTL")
	}

	// Done leases never expire: completion is terminal, not stale.
	renewed.State = LeaseDone
	if renewed.Expired(now.Add(time.Hour)) {
		t.Fatal("done lease reported expired")
	}
}

// TestLeaseEpochFencing: a worker whose shard was reclaimed must be
// fenced out at its next renewal, even if it wakes up healthy.
func TestLeaseEpochFencing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.lease")
	now := time.Now()
	l := &Lease{
		FleetID: "f1", ShardIndex: 0, Epoch: 3, OwnerPID: 100,
		WorkerID: "shard-0.epoch-3", State: LeaseRunning,
		GrantedAt: now, RenewedAt: now, TTLSecs: 1,
	}
	if err := SaveLease(path, l); err != nil {
		t.Fatalf("SaveLease: %v", err)
	}
	if _, err := RenewLease(path, 2, 99, now); !errors.Is(err, ErrLeaseFenced) {
		t.Fatalf("stale-epoch renewal returned %v, want ErrLeaseFenced", err)
	}
	// The fenced attempt must not have disturbed the live lease.
	got, err := LoadLease(path)
	if err != nil {
		t.Fatalf("LoadLease: %v", err)
	}
	if got.Epoch != 3 || got.OwnerPID != 100 {
		t.Fatalf("fenced renewal mutated the lease: %+v", got)
	}
}
