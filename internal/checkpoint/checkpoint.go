// Package checkpoint persists scan state across process restarts — the
// crash-safety layer the paper's operational lessons call for: scans
// that run for hours must survive operator interrupts and machine
// failure without either re-probing the covered prefix or silently
// skipping the rest.
//
// A Snapshot is a small versioned JSON document: the configuration
// fingerprint that determines the permutation (seed, group/shard spec,
// port set, target-set digest), per-thread progress counters, the scan
// phase, wall-clock accounting across runs, and (optionally) the dedup
// sliding-window contents. Save writes it atomically — temp file in the
// same directory, fsync, rename — so a crash mid-write leaves the
// previous checkpoint intact. Load + Snapshot.Verify gate resumption: a
// fingerprint mismatch is a hard error, because resuming with a
// different permutation yields a silently wrong scan, which is worse
// than no scan.
package checkpoint

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"zmapgo/internal/health"
)

// FormatVersion identifies the snapshot schema. Readers reject files
// with a different version rather than guess at field semantics.
const FormatVersion = 1

// ErrFingerprintMismatch is wrapped by Snapshot.Verify when the
// checkpoint was written by a scan with different permutation-affecting
// configuration.
var ErrFingerprintMismatch = errors.New("checkpoint: configuration fingerprint mismatch")

// ErrVersion is wrapped by Load for snapshots written with an unknown
// format version.
var ErrVersion = errors.New("checkpoint: unsupported format version")

// Fingerprint captures every configuration value that affects which
// (IP, port) element the i-th permutation step probes. Two runs with
// equal fingerprints walk identical permutations, so per-thread progress
// counters carry over exactly.
type Fingerprint struct {
	Seed            int64  `json:"seed"`
	Shards          int    `json:"shards"`
	ShardIndex      int    `json:"shard_index"`
	Threads         int    `json:"threads"`
	ShardMode       string `json:"shard_mode"`
	ProbeModule     string `json:"probe_module"`
	Ports           string `json:"ports"`
	ProbesPerTarget int    `json:"probes_per_target"`
	TargetsDigest   string `json:"targets_digest"` // Constraint.Digest over allow-minus-deny
}

// DedupState is the serialized dedup sliding window: the key ring in
// insertion order (oldest first), packed little-endian uint64 and
// base64-encoded — at the default 10^6-entry window a JSON number array
// would be ~10 MB of text; this is ~10.7 MB raw halved by being binary,
// and keeps the document a single string field.
type DedupState struct {
	Size int    `json:"size"`
	Keys string `json:"keys_b64"`
}

// EncodeKeys packs window keys for embedding in a Snapshot.
func EncodeKeys(keys []uint64) string {
	raw := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(raw[8*i:], k)
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// DecodeKeys unpacks a key string written by EncodeKeys.
func DecodeKeys(s string) ([]uint64, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: dedup keys: %w", err)
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("checkpoint: dedup keys: %d bytes is not a multiple of 8", len(raw))
	}
	keys := make([]uint64, len(raw)/8)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return keys, nil
}

// Snapshot is one persisted scan state document.
type Snapshot struct {
	FormatVersion int       `json:"format_version"`
	Tool          string    `json:"tool"`
	ToolVersion   string    `json:"tool_version"`
	WrittenAt     time.Time `json:"written_at"`

	Fingerprint Fingerprint `json:"fingerprint"`

	// Phase is the scan lifecycle phase at write time ("send",
	// "cooldown", "done", ...). A "done" snapshot means the scan
	// completed; resuming it is a no-op covered by progress.
	Phase string `json:"phase"`

	// Progress holds permutation elements consumed per sender thread.
	// Final (graceful-shutdown) snapshots are exact; periodic snapshots
	// taken while senders run are rounded down by up to one element per
	// thread so a crash-resume re-probes rather than skips the element
	// that was in flight.
	Progress []uint64 `json:"progress"`

	// Wall-clock accounting across the runs of this scan.
	Runs           int       `json:"runs"`
	FirstStart     time.Time `json:"first_start"`
	CumulativeSecs float64   `json:"cumulative_secs"`
	PacketsSent    uint64    `json:"packets_sent"`

	// ResultsWritten is how many result records had been durably flushed
	// to the output stream when this snapshot was taken. The engine
	// flushes writers before every Save, so after a crash the output
	// file holds at least this many records — the at-most-one-interval
	// loss bound. Zero in snapshots from older versions.
	ResultsWritten uint64 `json:"results_written,omitempty"`

	// Dedup carries the sliding-window contents so responses straddling
	// the checkpoint boundary are still deduplicated after resume. Nil
	// when dedup is disabled.
	Dedup *DedupState `json:"dedup,omitempty"`

	// Health carries the scan-health controller state — learned rate,
	// baselines, and the interference-quarantine log — so a resumed scan
	// neither re-learns the network's capacity nor re-probes prefixes
	// already found dark. Nil when the health subsystem is disabled.
	Health *health.State `json:"health,omitempty"`
}

// Verify reports nil when the snapshot's fingerprint equals want, or an
// error wrapping ErrFingerprintMismatch naming every differing field.
func (s *Snapshot) Verify(want Fingerprint) error {
	got := s.Fingerprint
	var diffs []string
	add := func(field string, g, w any) {
		diffs = append(diffs, fmt.Sprintf("%s: checkpoint has %v, scan has %v", field, g, w))
	}
	if got.Seed != want.Seed {
		add("seed", got.Seed, want.Seed)
	}
	if got.Shards != want.Shards {
		add("shards", got.Shards, want.Shards)
	}
	if got.ShardIndex != want.ShardIndex {
		add("shard_index", got.ShardIndex, want.ShardIndex)
	}
	if got.Threads != want.Threads {
		add("threads", got.Threads, want.Threads)
	}
	if got.ShardMode != want.ShardMode {
		add("shard_mode", got.ShardMode, want.ShardMode)
	}
	if got.ProbeModule != want.ProbeModule {
		add("probe_module", got.ProbeModule, want.ProbeModule)
	}
	if got.Ports != want.Ports {
		add("ports", got.Ports, want.Ports)
	}
	if got.ProbesPerTarget != want.ProbesPerTarget {
		add("probes_per_target", got.ProbesPerTarget, want.ProbesPerTarget)
	}
	if got.TargetsDigest != want.TargetsDigest {
		add("targets_digest", got.TargetsDigest, want.TargetsDigest)
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrFingerprintMismatch, joinDiffs(diffs))
}

func joinDiffs(diffs []string) string {
	out := diffs[0]
	for _, d := range diffs[1:] {
		out += "; " + d
	}
	return out
}

// Save writes the snapshot atomically: marshal, write to a temp file in
// the target directory, fsync, then rename over path. Readers therefore
// always see either the previous complete snapshot or the new one, never
// a torn write — the property resume correctness rests on. Transient
// filesystem failures (interrupted syscalls, short writes, a temp file
// racing an external cleaner at rename time) are retried with bounded
// exponential backoff rather than surfacing: a scan that checkpoints
// every few seconds for hours must not die on one interrupted write.
func Save(path string, s *Snapshot) error {
	s.FormatVersion = FormatVersion
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	data = append(data, '\n')
	return writeFileAtomic(path, data)
}

// Retry policy for writeFileAtomic. Attempt n sleeps base<<(n-1) first,
// so a full budget costs ~31ms of backoff — negligible against the
// checkpoint interval, and enough to ride out signal storms or a
// momentarily contended filesystem.
const (
	saveAttempts    = 6
	saveBackoffBase = time.Millisecond
)

// injectFSFault, when non-nil, is consulted before each filesystem
// operation an atomic write performs ("create", "write", "sync",
// "close", "rename"); a non-nil return replaces the real operation's
// result. Tests use it to inject transient and fatal failures.
var injectFSFault func(op string) error

// fsOp runs one filesystem operation through the fault-injection seam.
func fsOp(op string, fn func() error) error {
	if injectFSFault != nil {
		if err := injectFSFault(op); err != nil {
			return err
		}
	}
	return fn()
}

// transientFS reports whether a filesystem error is worth retrying:
// interrupted or would-block syscalls, short writes, and the temp file
// vanishing between create and rename (an external tmp-cleaner race —
// the retry recreates it). Permission, quota, and media errors are not
// transient; retrying them just delays the real failure.
func transientFS(err error) bool {
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, io.ErrShortWrite) ||
		errors.Is(err, fs.ErrNotExist)
}

// writeFileAtomic is the durable write every checkpoint artifact
// (snapshots, leases) goes through: temp file in the target directory,
// fsync, rename, with the whole attempt retried on transient failure.
// Each attempt starts from a fresh temp file, so a partial write from a
// failed attempt never survives into the next one.
func writeFileAtomic(path string, data []byte) error {
	var err error
	backoff := saveBackoffBase
	for attempt := 0; attempt < saveAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = writeFileOnce(path, data); err == nil || !transientFS(err) {
			return err
		}
	}
	return fmt.Errorf("checkpoint: giving up after %d attempts: %w", saveAttempts, err)
}

// writeFileOnce performs one write-fsync-rename attempt.
func writeFileOnce(path string, data []byte) error {
	dir := filepath.Dir(path)
	var tmp *os.File
	err := fsOp("create", func() error {
		var cerr error
		tmp, cerr = os.CreateTemp(dir, filepath.Base(path)+".tmp*")
		return cerr
	})
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if err := fsOp("write", func() error {
		_, werr := tmp.Write(data)
		return werr
	}); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := fsOp("sync", tmp.Sync); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := fsOp("close", tmp.Close); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := fsOp("rename", func() error {
		return os.Rename(tmpName, path)
	}); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable; some
	// filesystems reject fsync on directories, which is not fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates a snapshot written by Save.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	if s.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: file has %d, this build reads %d",
			ErrVersion, s.FormatVersion, FormatVersion)
	}
	if s.Phase == "" || s.Progress == nil {
		return nil, fmt.Errorf("checkpoint: %s: missing phase or progress", path)
	}
	return &s, nil
}
