package dnswire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	buf, err := AppendQuery(nil, 0xBEEF, "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != 0xBEEF || q.Name != "www.example.com" || q.Type != TypeA || q.Class != ClassIN {
		t.Errorf("parsed %+v", q)
	}
	if !q.RecursionDesired {
		t.Error("RD not set")
	}
}

func TestQueryNameValidation(t *testing.T) {
	bad := []string{
		strings.Repeat("a", 64) + ".com",        // label too long
		strings.Repeat("abcdefgh.", 33) + "com", // name too long
		"a..b",                                  // empty label
	}
	for _, name := range bad {
		if _, err := AppendQuery(nil, 1, name, TypeA); err == nil {
			t.Errorf("AppendQuery(%q) succeeded, want error", name)
		}
	}
	// Trailing dot and root are fine.
	if _, err := AppendQuery(nil, 1, "example.com.", TypeA); err != nil {
		t.Errorf("trailing dot rejected: %v", err)
	}
	if _, err := AppendQuery(nil, 1, "", TypeA); err != nil {
		t.Errorf("root query rejected: %v", err)
	}
}

func TestResponseRoundTripA(t *testing.T) {
	q := Query{ID: 77, Name: "example.com", Type: TypeA, Class: ClassIN, RecursionDesired: true}
	answers := []Answer{
		{Name: "example.com", Type: TypeA, TTL: 300, A: [4]byte{93, 184, 216, 34}},
		{Name: "example.com", Type: TypeA, TTL: 300, A: [4]byte{93, 184, 216, 35}},
	}
	buf, err := AppendResponse(nil, q, RCodeNoError, answers)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Response || m.ID != 77 || m.RCode != RCodeNoError {
		t.Errorf("header %+v", m)
	}
	if !m.RecursionAvailable {
		t.Error("RA not set")
	}
	if m.Question.Name != "example.com" || m.Question.Type != TypeA {
		t.Errorf("question %+v", m.Question)
	}
	if len(m.Answers) != 2 {
		t.Fatalf("%d answers", len(m.Answers))
	}
	if m.Answers[0].A != [4]byte{93, 184, 216, 34} || m.Answers[0].TTL != 300 {
		t.Errorf("answer %+v", m.Answers[0])
	}
}

func TestResponseRoundTripTXT(t *testing.T) {
	q := Query{ID: 9, Name: "txt.example", Type: TypeTXT, Class: ClassIN}
	buf, err := AppendResponse(nil, q, RCodeNoError, []Answer{
		{Name: "txt.example", Type: TypeTXT, TTL: 60, Text: "v=sim1 hello"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Text != "v=sim1 hello" {
		t.Errorf("answers %+v", m.Answers)
	}
}

func TestResponseNXDomain(t *testing.T) {
	q := Query{ID: 5, Name: "nope.example", Type: TypeA, Class: ClassIN}
	buf, err := AppendResponse(nil, q, RCodeNXDomain, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.RCode != RCodeNXDomain || len(m.Answers) != 0 {
		t.Errorf("message %+v", m)
	}
}

func TestAppendResponseRejects(t *testing.T) {
	q := Query{ID: 1, Name: "x.example", Type: TypeA, Class: ClassIN}
	if _, err := AppendResponse(nil, q, 0, []Answer{{Name: "x.example", Type: TypeNS}}); err == nil {
		t.Error("NS answer should be unsupported")
	}
	if _, err := AppendResponse(nil, q, 0, []Answer{{Name: "x.example", Type: TypeTXT, Text: strings.Repeat("x", 300)}}); err == nil {
		t.Error("oversize TXT accepted")
	}
}

func TestParseCompressedName(t *testing.T) {
	// Hand-build a response where the answer name is a pointer to the
	// question name (the standard compression pattern).
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, 42)     // id
	buf = binary.BigEndian.AppendUint16(buf, 0x8180) // QR RD RA
	buf = binary.BigEndian.AppendUint16(buf, 1)      // qd
	buf = binary.BigEndian.AppendUint16(buf, 1)      // an
	buf = append(buf, 0, 0, 0, 0)
	nameOff := len(buf)
	buf = append(buf, 3, 'w', 'w', 'w', 4, 't', 'e', 's', 't', 0)
	buf = binary.BigEndian.AppendUint16(buf, TypeA)
	buf = binary.BigEndian.AppendUint16(buf, ClassIN)
	// Answer: pointer to nameOff.
	buf = append(buf, 0xC0, byte(nameOff))
	buf = binary.BigEndian.AppendUint16(buf, TypeA)
	buf = binary.BigEndian.AppendUint16(buf, ClassIN)
	buf = binary.BigEndian.AppendUint32(buf, 60)
	buf = binary.BigEndian.AppendUint16(buf, 4)
	buf = append(buf, 1, 2, 3, 4)

	m, err := ParseResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Question.Name != "www.test" {
		t.Errorf("question name %q", m.Question.Name)
	}
	if len(m.Answers) != 1 || m.Answers[0].Name != "www.test" || m.Answers[0].A != [4]byte{1, 2, 3, 4} {
		t.Errorf("answer %+v", m.Answers)
	}
}

func TestParseCompressionLoopRejected(t *testing.T) {
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = binary.BigEndian.AppendUint16(buf, 0x8000)
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = append(buf, 0, 0, 0, 0, 0, 0)
	// Question name: pointer to itself.
	self := len(buf)
	buf = append(buf, 0xC0, byte(self))
	buf = append(buf, 0, 1, 0, 1)
	if _, err := ParseResponse(buf); err == nil {
		t.Error("self-referential compression accepted")
	}
}

func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	good, _ := AppendResponse(nil,
		Query{ID: 1, Name: "fuzz.example", Type: TypeA, Class: ClassIN},
		RCodeNoError,
		[]Answer{{Name: "fuzz.example", Type: TypeA, TTL: 1, A: [4]byte{1, 2, 3, 4}}})
	for i := 0; i < 5000; i++ {
		var data []byte
		switch i % 3 {
		case 0:
			data = make([]byte, rng.Intn(80))
			rng.Read(data)
		case 1:
			data = append([]byte{}, good[:rng.Intn(len(good)+1)]...)
		case 2:
			data = append([]byte{}, good...)
			for j := 0; j < 3; j++ {
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			}
		}
		ParseResponse(data)
		ParseQuery(data)
	}
}

func FuzzParseResponse(f *testing.F) {
	good, _ := AppendResponse(nil,
		Query{ID: 1, Name: "seed.example", Type: TypeTXT, Class: ClassIN},
		RCodeNoError,
		[]Answer{{Name: "seed.example", Type: TypeTXT, TTL: 1, Text: "seed"}})
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ParseResponse(data)
		ParseQuery(data)
	})
}

func TestQueryResponseBytesDiffer(t *testing.T) {
	// A query must never parse as a response and vice versa (QR bit).
	qbuf, _ := AppendQuery(nil, 3, "a.b", TypeA)
	if m, err := ParseResponse(qbuf); err == nil && m.Response {
		t.Error("query parsed as response with QR set")
	}
	rbuf, _ := AppendResponse(nil, Query{ID: 3, Name: "a.b", Type: TypeA, Class: ClassIN}, 0, nil)
	if _, err := ParseQuery(rbuf); err == nil {
		t.Error("response accepted as query")
	}
	if bytes.Equal(qbuf, rbuf) {
		t.Error("query and response encodings identical")
	}
}

func BenchmarkAppendQuery(b *testing.B) {
	buf := make([]byte, 0, 64)
	for i := 0; i < b.N; i++ {
		buf, _ = AppendQuery(buf[:0], uint16(i), "bench.example.com", TypeA)
	}
	benchLen = len(buf)
}

func BenchmarkParseResponse(b *testing.B) {
	buf, _ := AppendResponse(nil,
		Query{ID: 1, Name: "bench.example.com", Type: TypeA, Class: ClassIN},
		RCodeNoError,
		[]Answer{{Name: "bench.example.com", Type: TypeA, TTL: 60, A: [4]byte{1, 2, 3, 4}}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseResponse(buf); err != nil {
			b.Fatal(err)
		}
	}
}

var benchLen int

func TestResponseRoundTripProperty(t *testing.T) {
	// Property: encode->parse is the identity for arbitrary well-formed
	// questions and A answers.
	f := func(id uint16, l1, l2 uint8, ttl uint32, a, b, c, d byte, twoAnswers bool) bool {
		name := strings.Repeat("a", int(l1%30)+1) + "." + strings.Repeat("b", int(l2%30)+1)
		q := Query{ID: id, Name: name, Type: TypeA, Class: ClassIN}
		answers := []Answer{{Name: name, Type: TypeA, TTL: ttl, A: [4]byte{a, b, c, d}}}
		if twoAnswers {
			answers = append(answers, Answer{Name: name, Type: TypeA, TTL: ttl + 1, A: [4]byte{d, c, b, a}})
		}
		buf, err := AppendResponse(nil, q, RCodeNoError, answers)
		if err != nil {
			return false
		}
		m, err := ParseResponse(buf)
		if err != nil {
			return false
		}
		if m.ID != id || m.Question.Name != name || len(m.Answers) != len(answers) {
			return false
		}
		for i := range answers {
			got := m.Answers[i]
			if got.Name != name || got.TTL != answers[i].TTL || got.A != answers[i].A {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	f := func(id uint16, l uint8, useTXT bool) bool {
		name := strings.Repeat("x", int(l%60)+1) + ".example"
		qtype := TypeA
		if useTXT {
			qtype = TypeTXT
		}
		buf, err := AppendQuery(nil, id, name, qtype)
		if err != nil {
			return false
		}
		q, err := ParseQuery(buf)
		return err == nil && q.ID == id && q.Name == name && q.Type == qtype
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
