// Package dnswire implements the slice of the DNS wire format (RFC 1035)
// that the ZDNS-style resolver toolkit needs: query construction and
// strict response parsing for A and TXT lookups, with compression-pointer
// handling. Like internal/packet, parsers treat input as hostile: every
// access is bounds checked, compression loops are capped, and malformed
// messages return errors rather than panicking.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Record types and classes supported by the toolkit.
const (
	TypeA   uint16 = 1
	TypeNS  uint16 = 2
	TypeTXT uint16 = 16

	ClassIN uint16 = 1
)

// RCodes surfaced to callers.
const (
	RCodeNoError  = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
	RCodeRefused  = 5
)

// HeaderLen is the fixed DNS header size.
const HeaderLen = 12

// Query is a parsed question.
type Query struct {
	ID    uint16
	Name  string
	Type  uint16
	Class uint16
	// RecursionDesired mirrors the RD bit.
	RecursionDesired bool
}

// Answer is one resource record from a response.
type Answer struct {
	Name string
	Type uint16
	TTL  uint32
	// A holds the address for TypeA records; Text the string for TXT.
	A    [4]byte
	Text string
}

// Message is a parsed DNS response.
type Message struct {
	ID                 uint16
	Response           bool
	RecursionAvailable bool
	RCode              int
	Question           Query
	Answers            []Answer
}

// Parse errors.
var (
	ErrTruncated = errors.New("dnswire: truncated message")
	ErrMalformed = errors.New("dnswire: malformed message")
)

// AppendQuery encodes a query for name/qtype with the given ID and the
// RD bit set. Name labels are validated (non-empty, <= 63 bytes).
func AppendQuery(buf []byte, id uint16, name string, qtype uint16) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, id)
	buf = binary.BigEndian.AppendUint16(buf, 0x0100) // RD
	buf = binary.BigEndian.AppendUint16(buf, 1)      // QDCOUNT
	buf = append(buf, 0, 0, 0, 0, 0, 0)              // AN/NS/AR
	var err error
	buf, err = appendName(buf, name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, qtype)
	buf = binary.BigEndian.AppendUint16(buf, ClassIN)
	return buf, nil
}

func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, fmt.Errorf("%w: name too long", ErrMalformed)
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: bad label %q", ErrMalformed, label)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// AppendResponse encodes a response to q with the given rcode and
// answers. TXT strings longer than 255 bytes are rejected.
func AppendResponse(buf []byte, q Query, rcode int, answers []Answer) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, q.ID)
	flags := uint16(0x8000) // QR
	if q.RecursionDesired {
		flags |= 0x0100 // echo RD
	}
	flags |= 0x0080 // RA: the simulated resolvers are recursive
	flags |= uint16(rcode & 0x0F)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(answers)))
	buf = append(buf, 0, 0, 0, 0)
	var err error
	buf, err = appendName(buf, q.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, q.Type)
	buf = binary.BigEndian.AppendUint16(buf, q.Class)
	for _, a := range answers {
		buf, err = appendName(buf, a.Name)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, a.Type)
		buf = binary.BigEndian.AppendUint16(buf, ClassIN)
		buf = binary.BigEndian.AppendUint32(buf, a.TTL)
		switch a.Type {
		case TypeA:
			buf = binary.BigEndian.AppendUint16(buf, 4)
			buf = append(buf, a.A[:]...)
		case TypeTXT:
			if len(a.Text) > 255 {
				return nil, fmt.Errorf("%w: TXT too long", ErrMalformed)
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Text)+1))
			buf = append(buf, byte(len(a.Text)))
			buf = append(buf, a.Text...)
		default:
			return nil, fmt.Errorf("%w: unsupported answer type %d", ErrMalformed, a.Type)
		}
	}
	return buf, nil
}

// ParseQuery decodes the first question of a query message.
func ParseQuery(data []byte) (Query, error) {
	var q Query
	if len(data) < HeaderLen {
		return q, ErrTruncated
	}
	q.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	if flags&0x8000 != 0 {
		return q, fmt.Errorf("%w: QR set on query", ErrMalformed)
	}
	q.RecursionDesired = flags&0x0100 != 0
	if binary.BigEndian.Uint16(data[4:6]) == 0 {
		return q, fmt.Errorf("%w: no question", ErrMalformed)
	}
	name, off, err := parseName(data, HeaderLen)
	if err != nil {
		return q, err
	}
	if off+4 > len(data) {
		return q, ErrTruncated
	}
	q.Name = name
	q.Type = binary.BigEndian.Uint16(data[off : off+2])
	q.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
	return q, nil
}

// ParseResponse decodes a response message: header, question, answers.
func ParseResponse(data []byte) (Message, error) {
	var m Message
	if len(data) < HeaderLen {
		return m, ErrTruncated
	}
	m.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&0x8000 != 0
	m.RecursionAvailable = flags&0x0080 != 0
	m.RCode = int(flags & 0x0F)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	if qd > 1 || an > 64 {
		return m, fmt.Errorf("%w: implausible counts qd=%d an=%d", ErrMalformed, qd, an)
	}
	off := HeaderLen
	if qd == 1 {
		name, n, err := parseName(data, off)
		if err != nil {
			return m, err
		}
		if n+4 > len(data) {
			return m, ErrTruncated
		}
		m.Question = Query{
			ID:    m.ID,
			Name:  name,
			Type:  binary.BigEndian.Uint16(data[n : n+2]),
			Class: binary.BigEndian.Uint16(data[n+2 : n+4]),
		}
		off = n + 4
	}
	for i := 0; i < an; i++ {
		name, n, err := parseName(data, off)
		if err != nil {
			return m, err
		}
		if n+10 > len(data) {
			return m, ErrTruncated
		}
		a := Answer{
			Name: name,
			Type: binary.BigEndian.Uint16(data[n : n+2]),
			TTL:  binary.BigEndian.Uint32(data[n+4 : n+8]),
		}
		rdLen := int(binary.BigEndian.Uint16(data[n+8 : n+10]))
		rdStart := n + 10
		if rdStart+rdLen > len(data) {
			return m, ErrTruncated
		}
		rdata := data[rdStart : rdStart+rdLen]
		switch a.Type {
		case TypeA:
			if rdLen != 4 {
				return m, fmt.Errorf("%w: A rdata %d bytes", ErrMalformed, rdLen)
			}
			copy(a.A[:], rdata)
		case TypeTXT:
			if rdLen < 1 || int(rdata[0]) != rdLen-1 {
				return m, fmt.Errorf("%w: TXT length", ErrMalformed)
			}
			a.Text = string(rdata[1:])
		}
		m.Answers = append(m.Answers, a)
		off = rdStart + rdLen
	}
	return m, nil
}

// parseName decodes a possibly-compressed name starting at off, returning
// the name and the offset just past its in-place encoding. Compression
// pointer chains are capped to prevent loops.
func parseName(data []byte, off int) (string, int, error) {
	var labels []string
	jumps := 0
	end := -1 // offset after the name at the original position
	pos := off
	for {
		if pos >= len(data) {
			return "", 0, ErrTruncated
		}
		b := data[pos]
		switch {
		case b == 0:
			if end < 0 {
				end = pos + 1
			}
			name := strings.Join(labels, ".")
			if name == "" {
				name = "."
			}
			return name, end, nil
		case b&0xC0 == 0xC0:
			if pos+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			if jumps++; jumps > 16 {
				return "", 0, fmt.Errorf("%w: compression loop", ErrMalformed)
			}
			if end < 0 {
				end = pos + 2
			}
			pos = int(binary.BigEndian.Uint16(data[pos:pos+2]) & 0x3FFF)
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrMalformed)
		default:
			if pos+1+int(b) > len(data) {
				return "", 0, ErrTruncated
			}
			if len(labels) > 128 {
				return "", 0, fmt.Errorf("%w: too many labels", ErrMalformed)
			}
			labels = append(labels, string(data[pos+1:pos+1+int(b)]))
			pos += 1 + int(b)
		}
	}
}
