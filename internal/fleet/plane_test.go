package fleet

import (
	"bytes"
	"log/slog"
	"os"
	"strconv"
	"testing"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/metrics"
	"zmapgo/internal/trace"
)

// TestFSCommitBestEffortDoneMark: the metadata file is the one commit
// record; the lease done-mark is an optimization. A worker whose
// done-mark cannot be written must still commit successfully — the
// coordinator's rerun adoption (already_done) keys off the metadata
// file, never the lease state.
func TestFSCommitBestEffortDoneMark(t *testing.T) {
	dir := t.TempDir()
	paths := PathsFor(dir, 0, 1, "text")
	if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := &WorkerSpec{FleetID: "t", Shard: 0, Shards: 1, Epoch: 1, Paths: paths}
	plane := NewFSWorkerPlane(spec, slog.New(slog.DiscardHandler))

	// Fault injection: the lease location is unusable (here: occupied by
	// a directory, so both the read-back and the atomic save fail). The
	// commit must tolerate it.
	if err := os.Mkdir(paths.Lease, 0o755); err != nil {
		t.Fatal(err)
	}
	meta := []byte(`{"ok":true}`)
	if err := plane.Commit(meta); err != nil {
		t.Fatalf("Commit failed on a lost done-mark: %v", err)
	}
	got, err := os.ReadFile(paths.Metadata)
	if err != nil {
		t.Fatalf("commit record missing: %v", err)
	}
	if !bytes.Equal(got, meta) {
		t.Fatalf("metadata %q", got)
	}
}

// TestFSCommitSkipsForeignEpochDoneMark: a commit landing after the
// shard was re-granted must not flip the successor's lease terminal.
func TestFSCommitSkipsForeignEpochDoneMark(t *testing.T) {
	dir := t.TempDir()
	paths := PathsFor(dir, 0, 1, "text")
	if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	lease := &checkpoint.Lease{
		FleetID: "t", ShardIndex: 0, Epoch: 2, WorkerID: "shard-0.epoch-2",
		State: checkpoint.LeaseRunning, GrantedAt: now, RenewedAt: now, TTLSecs: 5,
	}
	if err := checkpoint.SaveLease(paths.Lease, lease); err != nil {
		t.Fatal(err)
	}
	spec := &WorkerSpec{FleetID: "t", Shard: 0, Shards: 1, Epoch: 1, Paths: paths}
	if err := NewFSWorkerPlane(spec, nil).Commit([]byte("{}")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	l, err := checkpoint.LoadLease(paths.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if l.State != checkpoint.LeaseRunning || l.Epoch != 2 {
		t.Fatalf("epoch-1 commit rewrote epoch-2 lease: %+v", l)
	}
}

// TestReallocateJournalsLostRateWrite is the regression test for the
// silently-lost rate budget: when a shard's rate-file write fails past
// the bounded retry, the loss must surface as a first-class journal
// decision (fleet_rate_write_failed) instead of vanishing into a debug
// log — and the surviving shards' writes must still land.
func TestReallocateJournalsLostRateWrite(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	c := &coordinator{
		cfg:   Config{Workers: 2, Dir: dir, RateBudget: 1000, Scan: ScanSpec{Format: "text"}},
		log:   slog.New(slog.DiscardHandler),
		jr:    trace.New(trace.Config{Shards: 1, SampleEvery: -1}),
		alive: []bool{true, true},
	}
	for i := 0; i < 2; i++ {
		c.rateAlloc = append(c.rateAlloc, reg.GaugeWith("zmapgo_fleet_rate_allocation_pps",
			"test", "shard", strconv.Itoa(i)))
	}
	// Shard 0's directory exists; shard 1's does not, so every write
	// attempt for it fails (the injected fault).
	if err := os.MkdirAll(ShardDir(dir, 0), 0o755); err != nil {
		t.Fatal(err)
	}

	c.mu.Lock()
	share, alive := c.reallocateLocked("worker_lost")
	c.mu.Unlock()
	if share != 500 || alive != 2 {
		t.Fatalf("share=%v alive=%d, want 500/2", share, alive)
	}
	if got := ReadRateFile(PathsFor(dir, 0, 1, "text").Rate); got != 500 {
		t.Fatalf("surviving shard's rate file holds %v, want 500", got)
	}

	var lost []trace.JEntry
	for _, e := range c.jr.Snapshot().Journal {
		if e.Kind == trace.JFleetRateLost {
			lost = append(lost, e)
		}
	}
	if len(lost) != 1 {
		t.Fatalf("lost rate write journaled %d times, want exactly 1 (shard 1)", len(lost))
	}
	if lost[0].Index != 1 || lost[0].Reason != "worker_lost" || lost[0].RatePPS != 500 {
		t.Fatalf("lost-rate entry misattributed: %+v", lost[0])
	}
}

// TestWriteRateFileRetryRecovers: the bounded retry itself — a write
// that starts failing and then heals (directory appears, as when a
// shard dir is created concurrently) succeeds without journaling.
func TestWriteRateFileRetryRecovers(t *testing.T) {
	dir := t.TempDir()
	path := PathsFor(dir, 3, 1, "text").Rate
	done := make(chan error, 1)
	go func() { done <- writeRateFileRetry(path, 750) }()
	// Create the shard directory while the retry loop is backing off.
	time.Sleep(3 * time.Millisecond)
	if err := os.MkdirAll(ShardDir(dir, 3), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if got := ReadRateFile(path); got != 750 {
		t.Fatalf("rate file holds %v, want 750", got)
	}
}
