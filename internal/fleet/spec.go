// Package fleet implements the fault-tolerant multi-worker scan
// coordinator: one logical scan is split into N pizza shards (contiguous
// exponent ranges of the shared cyclic permutation, internal/shard), each
// shard is executed by a separate worker process, and the coordinator
// supervises the workers through heartbeat leases persisted next to each
// shard's checkpoint. A worker that crashes, is killed, or hangs past its
// lease TTL is reclaimed and respawned with bounded exponential backoff,
// resuming from its last durable checkpoint. Per-shard outputs are
// at-least-once across crashes; the merge stage (merge.go) dedups them
// back to exactly-once and unions metadata into a scan-level document.
//
// The package deliberately does not import the public zmap package (zmap
// imports it): the coordinator speaks to workers only through the
// filesystem (spec/lease/checkpoint/rate files) and POSIX signals, and
// the worker-side scan runner lives in zmap. Any binary that calls
// zmap.FleetWorkerMain at the top of main() can serve as a fleet worker,
// including test binaries.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/target"
)

// WorkerSpecEnv is the environment variable the coordinator sets on
// worker processes: the path to a WorkerSpec JSON document. A binary
// that finds it set at startup must run the assigned shard and exit (see
// zmap.FleetWorkerMain) instead of its normal entry point.
const WorkerSpecEnv = "ZMAPGO_FLEET_WORKER_SPEC"

// SpecFormatVersion identifies the worker spec schema.
const SpecFormatVersion = 1

// Worker exit codes, the coordinator's respawn policy keys off them:
// config and fingerprint failures are deterministic, so respawning would
// loop forever; crashes and fencings are circumstantial.
const (
	ExitOK          = 0 // shard completed, metadata written
	ExitConfig      = 2 // invalid spec or scan config: fatal, never respawn
	ExitCrash       = 3 // scan failed at runtime: respawn with backoff
	ExitFenced      = 4 // lease epoch moved on: another worker owns the shard
	ExitFingerprint = 5 // checkpoint fingerprint mismatch: fatal, never respawn
)

// ScanSpec is the scan configuration every worker in a fleet shares.
// Fields mirror the CLI-shaped zmap.Options subset that makes sense for
// the simulated-internet fleet; Seed must be non-zero so every worker
// derives the identical permutation (a clock-derived seed would give
// each process a different target ordering and break the pizza union).
type ScanSpec struct {
	Ranges    []string `json:"ranges,omitempty"`
	Blocklist []string `json:"blocklist,omitempty"`
	Ports     string   `json:"ports,omitempty"`
	Probe     string   `json:"probe,omitempty"`
	Seed      int64    `json:"seed"`

	// Threads is sender goroutines per worker process.
	Threads         int `json:"threads,omitempty"`
	BatchSize       int `json:"batch_size,omitempty"`
	ProbesPerTarget int `json:"probes_per_target,omitempty"`
	DedupWindow     int `json:"dedup_window,omitempty"`

	Cooldown    time.Duration `json:"cooldown,omitempty"`
	CooldownMax time.Duration `json:"cooldown_max,omitempty"`
	MaxRuntime  time.Duration `json:"max_runtime,omitempty"`

	Format string `json:"format,omitempty"`
	Filter string `json:"filter,omitempty"`

	// Simulated-internet parameters. The sim seed must be shared: the
	// population is a pure function of it, so every worker process
	// observes the same hosts.
	SimSeed            uint64  `json:"sim_seed"`
	SimLossless        bool    `json:"sim_lossless,omitempty"`
	SimDisableBlowback bool    `json:"sim_disable_blowback,omitempty"`
	SimTimeScale       float64 `json:"sim_time_scale,omitempty"`
}

// applyDefaults mirrors core.Config's defaulting for every field that
// participates in the checkpoint fingerprint, so the coordinator's
// expected fingerprints match what workers compute through Compile.
func (s *ScanSpec) applyDefaults() {
	if s.Threads <= 0 {
		s.Threads = 1
	}
	if s.ProbesPerTarget <= 0 {
		s.ProbesPerTarget = 1
	}
	if s.Probe == "" {
		s.Probe = "tcp_synscan"
	}
	if s.Ports == "" {
		s.Ports = "80"
	}
}

// Fingerprints computes the expected checkpoint fingerprint of every
// shard in a fleet of the given width, without compiling a scan. A
// reclaimed shard resumed on a different worker adopts the lease only
// when its checkpoint's fingerprint matches the slot's expected value;
// see Snapshot.Verify.
func (s *ScanSpec) Fingerprints(workers int) ([]checkpoint.Fingerprint, error) {
	spec := *s
	spec.applyDefaults()

	cons := target.NewConstraint(len(spec.Ranges) == 0)
	for _, r := range spec.Ranges {
		if err := cons.AllowCIDR(r); err != nil {
			return nil, fmt.Errorf("fleet: range %q: %w", r, err)
		}
	}
	for _, b := range spec.Blocklist {
		if err := cons.DenyCIDR(b); err != nil {
			return nil, fmt.Errorf("fleet: blocklist %q: %w", b, err)
		}
	}
	cons.Finalize()

	ports, err := target.ParsePorts(spec.Ports)
	if err != nil {
		return nil, fmt.Errorf("fleet: ports: %w", err)
	}

	fps := make([]checkpoint.Fingerprint, workers)
	for i := range fps {
		fps[i] = checkpoint.Fingerprint{
			Seed:            spec.Seed,
			Shards:          workers,
			ShardIndex:      i,
			Threads:         spec.Threads,
			ShardMode:       "pizza",
			ProbeModule:     spec.Probe,
			Ports:           ports.String(),
			ProbesPerTarget: spec.ProbesPerTarget,
			TargetsDigest:   cons.Digest(),
		}
	}
	return fps, nil
}

// outputExt maps an output format to the run-file extension.
func outputExt(format string) string {
	switch format {
	case "csv":
		return "csv"
	case "jsonl", "json":
		return "jsonl"
	default:
		return "txt"
	}
}

// WorkerPaths names every file a worker shares with its coordinator,
// all inside the shard's directory.
type WorkerPaths struct {
	// Dir is the shard directory (<fleet dir>/shard-<i>).
	Dir string `json:"dir"`
	// Spec is this document's own path (rewritten per epoch).
	Spec string `json:"spec"`
	// Lease is the heartbeat lease (checkpoint.Lease).
	Lease string `json:"lease"`
	// Checkpoint is the shard's durable scan snapshot.
	Checkpoint string `json:"checkpoint"`
	// Rate is the coordinator-written rate cap file (text, pps). The
	// worker polls it and folds the cap into its limiter at batch
	// boundaries, which is how a dead worker's budget share moves to
	// the survivors and moves back on recovery.
	Rate string `json:"rate"`
	// Output is this epoch's result file (out.run-<epoch>.<ext>). Each
	// grant writes a fresh file so a crash cannot torn-append; the merge
	// stage unions all run files and dedups.
	Output string `json:"output"`
	// Metadata is this epoch's end-of-scan summary, written atomically
	// on success — its existence is the worker's commit record.
	Metadata string `json:"metadata"`
}

// ShardDir returns the shard's directory under the fleet directory.
func ShardDir(fleetDir string, shard int) string {
	return filepath.Join(fleetDir, fmt.Sprintf("shard-%d", shard))
}

// PathsFor lays out the shared files for one shard and epoch.
func PathsFor(fleetDir string, shard, epoch int, format string) WorkerPaths {
	dir := ShardDir(fleetDir, shard)
	return WorkerPaths{
		Dir:        dir,
		Spec:       filepath.Join(dir, "spec.json"),
		Lease:      filepath.Join(dir, "lease.json"),
		Checkpoint: filepath.Join(dir, "scan.ckpt"),
		Rate:       filepath.Join(dir, "rate.pps"),
		Output:     filepath.Join(dir, fmt.Sprintf("out.run-%03d.%s", epoch, outputExt(format))),
		Metadata:   filepath.Join(dir, fmt.Sprintf("meta.run-%03d.json", epoch)),
	}
}

// WorkerSpec is the per-grant contract between coordinator and worker:
// which shard of which fleet, under which lease epoch, scanning what.
// The coordinator writes it before spawning; the worker loads it from
// the path in WorkerSpecEnv.
type WorkerSpec struct {
	FormatVersion int    `json:"format_version"`
	FleetID       string `json:"fleet_id"`
	Shard         int    `json:"shard"`
	Shards        int    `json:"shards"`

	// Epoch is the lease epoch this worker was granted. Renewals under
	// any other epoch are fenced (checkpoint.ErrLeaseFenced).
	Epoch int `json:"epoch"`

	Scan ScanSpec `json:"scan"`

	// RatePPS is the worker's configured rate ceiling — the full fleet
	// budget, not its share. The live share arrives through the rate
	// file (Paths.Rate), so the coordinator can move it both down and
	// up as fleet membership changes.
	RatePPS float64 `json:"rate_pps,omitempty"`

	// Resume tells the worker to load Paths.Checkpoint and continue
	// from it (fingerprint-verified; mismatch exits ExitFingerprint).
	Resume bool `json:"resume,omitempty"`

	Paths WorkerPaths `json:"paths"`

	// LeaseTTL is the coordinator's reclaim horizon. A worker whose
	// renewals have failed for longer than this self-fences — aborts
	// with a final checkpoint and exits uncommitted — because the
	// coordinator must be presumed to have re-granted the shard.
	LeaseTTL time.Duration `json:"lease_ttl,omitempty"`

	CheckpointInterval time.Duration `json:"checkpoint_interval,omitempty"`
	HeartbeatInterval  time.Duration `json:"heartbeat_interval,omitempty"`
	RatePollInterval   time.Duration `json:"rate_poll_interval,omitempty"`
}

// WorkerID is the human-readable identity riding leases and journals.
func (w *WorkerSpec) WorkerID() string {
	return fmt.Sprintf("shard-%d.epoch-%d", w.Shard, w.Epoch)
}

// SaveWorkerSpec writes the spec document (plain write; the lease, not
// the spec, is the coordination point — the spec is immutable between
// the write and the spawn that consumes it).
func SaveWorkerSpec(path string, w *WorkerSpec) error {
	w.FormatVersion = SpecFormatVersion
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encode worker spec: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("fleet: write worker spec: %w", err)
	}
	return nil
}

// LoadWorkerSpec reads and validates a spec written by SaveWorkerSpec.
func LoadWorkerSpec(path string) (*WorkerSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: worker spec: %w", err)
	}
	var w WorkerSpec
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("fleet: decode worker spec %s: %w", path, err)
	}
	if w.FormatVersion != SpecFormatVersion {
		return nil, fmt.Errorf("fleet: worker spec has format %d, this build reads %d",
			w.FormatVersion, SpecFormatVersion)
	}
	if w.Shards <= 0 || w.Shard < 0 || w.Shard >= w.Shards {
		return nil, fmt.Errorf("fleet: worker spec names shard %d of %d", w.Shard, w.Shards)
	}
	if w.Scan.Seed == 0 {
		return nil, fmt.Errorf("fleet: worker spec carries seed 0 (fleet scans require a fixed seed)")
	}
	return &w, nil
}
