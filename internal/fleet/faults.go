package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FaultKind is one class of injected worker failure.
type FaultKind string

const (
	// FaultKill SIGKILLs the worker: the crash path. The lease stops
	// renewing, the process exit is observed immediately, and the shard
	// is reclaimed and respawned from its checkpoint.
	FaultKill FaultKind = "kill"
	// FaultHang SIGSTOPs the worker and never resumes it: the hang
	// path. The process stays alive but its heartbeat goroutine is
	// frozen, so detection must come from lease-TTL staleness, after
	// which the coordinator SIGKILLs the stopped process and reclaims.
	FaultHang FaultKind = "hang"
	// FaultSlow SIGSTOPs the worker for a bounded pause shorter than
	// the lease TTL, then SIGCONTs it: the slow-worker path. A correct
	// coordinator must NOT reclaim — the lease renews again before
	// expiring.
	FaultSlow FaultKind = "slow"
)

// FaultEvent schedules one fault against one shard's current worker.
type FaultEvent struct {
	Shard int           `json:"shard"`
	Kind  FaultKind     `json:"kind"`
	After time.Duration `json:"after"` // since fleet start
	// Duration is the pause length for FaultSlow; ignored otherwise.
	Duration time.Duration `json:"duration,omitempty"`
}

func (e FaultEvent) String() string {
	s := fmt.Sprintf("%s:%d@%s", e.Kind, e.Shard, e.After)
	if e.Kind == FaultSlow {
		s += "/" + e.Duration.String()
	}
	return s
}

// FaultPlan is a deterministic schedule of worker faults, sorted by
// injection time. Plans are data, not behavior: the same plan string
// replays the same chaos, which is what makes the acceptance test
// seedable.
type FaultPlan struct {
	Events []FaultEvent `json:"events"`
}

// String renders the plan in the syntax ParseFaultPlan reads.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// sorted returns the events ordered by injection time (stable on shard).
func (p *FaultPlan) sorted() []FaultEvent {
	evs := make([]FaultEvent, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].After < evs[j].After })
	return evs
}

// ParseFaultPlan reads a comma-separated plan:
//
//	kill:0@800ms,hang:1@1.2s,slow:2@500ms/300ms
//
// Each term is kind:shard@after, with an optional /duration suffix for
// slow faults.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return &FaultPlan{}, nil
	}
	var plan FaultPlan
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(term, ":")
		if !ok {
			return nil, fmt.Errorf("fleet: fault %q: want kind:shard@after", term)
		}
		kind := FaultKind(kindStr)
		switch kind {
		case FaultKill, FaultHang, FaultSlow:
		default:
			return nil, fmt.Errorf("fleet: fault %q: unknown kind %q (kill|hang|slow)", term, kindStr)
		}
		shardStr, afterStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("fleet: fault %q: want kind:shard@after", term)
		}
		var shard int
		if _, err := fmt.Sscanf(shardStr, "%d", &shard); err != nil || shard < 0 {
			return nil, fmt.Errorf("fleet: fault %q: bad shard %q", term, shardStr)
		}
		durStr := ""
		if i := strings.IndexByte(afterStr, '/'); i >= 0 {
			afterStr, durStr = afterStr[:i], afterStr[i+1:]
		}
		after, err := time.ParseDuration(afterStr)
		if err != nil {
			return nil, fmt.Errorf("fleet: fault %q: bad delay: %w", term, err)
		}
		ev := FaultEvent{Shard: shard, Kind: kind, After: after}
		if kind == FaultSlow {
			if durStr == "" {
				return nil, fmt.Errorf("fleet: fault %q: slow faults need /duration", term)
			}
			if ev.Duration, err = time.ParseDuration(durStr); err != nil {
				return nil, fmt.Errorf("fleet: fault %q: bad duration: %w", term, err)
			}
		} else if durStr != "" {
			return nil, fmt.Errorf("fleet: fault %q: only slow faults take /duration", term)
		}
		plan.Events = append(plan.Events, ev)
	}
	return &plan, nil
}

// splitmix64 is the seed expander used across the repo for deterministic
// derived streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// RandomFaultPlan derives a deterministic chaos schedule from a seed:
// count faults spread uniformly over the window, each hitting a random
// shard with a random kind (slow pauses bounded by maxSlow). The same
// (seed, workers, count, window) always yields the same plan.
func RandomFaultPlan(seed uint64, workers, count int, window, maxSlow time.Duration) *FaultPlan {
	plan := &FaultPlan{}
	if workers <= 0 || count <= 0 || window <= 0 {
		return plan
	}
	state := splitmix64(seed)
	next := func() uint64 {
		state = splitmix64(state)
		return state
	}
	for i := 0; i < count; i++ {
		ev := FaultEvent{
			Shard: int(next() % uint64(workers)),
			After: time.Duration(next() % uint64(window)),
		}
		switch next() % 3 {
		case 0:
			ev.Kind = FaultKill
		case 1:
			ev.Kind = FaultHang
		default:
			ev.Kind = FaultSlow
			if maxSlow <= 0 {
				maxSlow = 200 * time.Millisecond
			}
			ev.Duration = time.Duration(1 + next()%uint64(maxSlow))
		}
		plan.Events = append(plan.Events, ev)
	}
	plan.Events = plan.sorted()
	return plan
}
