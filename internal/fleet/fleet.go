package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/metrics"
	"zmapgo/internal/output"
	"zmapgo/internal/trace"
)

// ErrFingerprintMismatch re-exports the checkpoint sentinel: a shard's
// durable state (lease or checkpoint) belongs to a different scan
// configuration. Resuming it would silently mis-cover the target space,
// so the whole fleet fails instead.
var ErrFingerprintMismatch = checkpoint.ErrFingerprintMismatch

// ErrRespawnsExhausted is wrapped into Run's error when one shard died
// more times than Config.MaxRespawns allows.
var ErrRespawnsExhausted = errors.New("fleet: respawn budget exhausted")

// Config drives one fleet run.
type Config struct {
	// Workers is the shard count: the scan is split into this many
	// pizza shards, one worker process each.
	Workers int

	// Dir is the fleet state directory; each shard gets a
	// subdirectory holding its spec, lease, checkpoint, rate file, and
	// per-epoch output/metadata runs.
	Dir string

	// Binary is the worker executable (default: this process's own
	// binary, which must call zmap.FleetWorkerMain at startup). Args
	// are extra arguments passed to it; the worker contract travels in
	// the environment, so none are normally needed.
	Binary string
	Args   []string

	// Scan is the shared scan configuration. Scan.Seed must be
	// non-zero.
	Scan ScanSpec

	// RateBudget is the aggregate probes/sec across the whole fleet
	// (0 = unlimited, no redistribution). Live workers share it
	// equally; when one dies its share moves to the survivors, and
	// moves back when the shard respawns.
	RateBudget float64

	// LeaseTTL is how stale a worker's heartbeat may go before the
	// coordinator declares it dead and reclaims the shard (default
	// 2s). HeartbeatInterval is the worker's renewal cadence (default
	// LeaseTTL/4).
	LeaseTTL          time.Duration
	HeartbeatInterval time.Duration

	// CheckpointInterval is the workers' snapshot cadence (default
	// 500ms); it bounds the work re-done after a crash.
	CheckpointInterval time.Duration

	// RatePollInterval is how often workers re-read their rate file
	// (default 100ms).
	RatePollInterval time.Duration

	// MaxRespawns bounds per-shard reclaim-respawn cycles (0 =
	// default 5; negative = none allowed). RespawnBackoff is the
	// first reclaim's delay, doubled per consecutive reclaim up to
	// RespawnBackoffMax (defaults 100ms / 2s).
	MaxRespawns       int
	RespawnBackoff    time.Duration
	RespawnBackoffMax time.Duration

	// Faults optionally injects a deterministic chaos schedule into
	// the running fleet (kill/hang/slow, see FaultPlan).
	Faults *FaultPlan

	// Plane is the coordinator↔worker control plane (nil = the
	// filesystem plane, byte-compatible with pre-network fleet dirs).
	// The network plane lives in internal/fleetnet and is wired in by
	// zmap.RunFleet when a listen address is configured.
	Plane ControlPlane

	// RemoteWorkers disables local worker spawning: each grant is
	// offered through the plane (which must implement RemotePlane) and
	// executed by a joined `fleet-worker` process, supervised through
	// its lease renewals alone.
	RemoteWorkers bool

	// MergedOutput is the merged result path (default
	// <Dir>/merged.<ext>). MetadataPath receives the fleet-level
	// summary document (default <Dir>/fleet-metadata.json). TracePath
	// receives the coordinator's decision journal as JSONL (default
	// <Dir>/fleet-trace.jsonl; "-" disables).
	MergedOutput string
	MetadataPath string
	TracePath    string

	// Metrics optionally supplies the registry fleet gauges/counters
	// record into; nil creates a private one.
	Metrics *metrics.Registry
	// Logger receives structured coordinator logs; nil discards.
	Logger *slog.Logger
}

// ShardResult summarizes one shard's supervision history.
type ShardResult struct {
	Shard int `json:"shard"`
	// Epochs is the total number of lease grants (1 = no reclaim).
	Epochs int `json:"epochs"`
	// Reclaims counts lease reclaims (crash, hang, fence).
	Reclaims int `json:"reclaims"`
	// Adopted is true when the coordinator attached to a live worker
	// it did not spawn.
	Adopted bool `json:"adopted,omitempty"`
	// Summary is the completing run's end-of-scan metadata.
	Summary *output.Metadata `json:"summary,omitempty"`
}

// Result is the fleet-level scan summary: the union of per-shard
// metadata plus the coordinator's own supervision and merge accounting.
// It is also the document written to Config.MetadataPath.
type Result struct {
	FleetID string   `json:"fleet_id"`
	Workers int      `json:"workers"`
	Scan    ScanSpec `json:"scan"`

	StartTime    time.Time `json:"start_time"`
	EndTime      time.Time `json:"end_time"`
	DurationSecs float64   `json:"duration_secs"`

	MergedOutput string     `json:"merged_output"`
	Merge        MergeStats `json:"merge"`

	Reclaims       int `json:"reclaims"`
	FaultsInjected int `json:"faults_injected"`
	RateReallocs   int `json:"rate_reallocs"`

	// Aggregated engine counters across the final run of every shard.
	TargetsScanned uint64 `json:"targets_scanned"`
	PacketsSent    uint64 `json:"packets_sent"`
	PacketsRecv    uint64 `json:"packets_received"`
	UniqueSucc     uint64 `json:"unique_successes"`

	// Quarantined unions every shard's interference-quarantine log.
	Quarantined []output.QuarantinedPrefix `json:"quarantined_prefixes,omitempty"`

	Shards []ShardResult `json:"shards"`
}

// supervision outcomes for one worker epoch.
type outcome int

const (
	outDone outcome = iota
	outCrash
	outHang
	outFenced
	outConfig
	outFingerprint
	outCanceled
)

func (o outcome) String() string {
	switch o {
	case outDone:
		return "done"
	case outCrash:
		return "crash"
	case outHang:
		return "hang"
	case outFenced:
		return "fenced"
	case outConfig:
		return "config"
	case outFingerprint:
		return "fingerprint"
	default:
		return "canceled"
	}
}

type coordinator struct {
	cfg     Config
	log     *slog.Logger
	jr      *trace.Recorder
	plane   ControlPlane
	start   time.Time
	fleetID string
	fps     []checkpoint.Fingerprint
	sups    []*supervisor

	mu       sync.Mutex
	alive    []bool
	reallocs int

	// metrics
	workersAlive *metrics.Gauge
	workerUp     []*metrics.Gauge
	rateAlloc    []*metrics.Gauge
	reclaimsM    []*metrics.Counter
	faultsM      map[FaultKind]*metrics.Counter
	faults       atomic.Int64
}

type supervisor struct {
	c     *coordinator
	shard int
	pid   atomic.Int64 // current worker pid; 0 when none
	res   ShardResult
}

func (c *Config) applyDefaults() error {
	if c.Workers <= 0 {
		return fmt.Errorf("fleet: need at least 1 worker, have %d", c.Workers)
	}
	if c.Dir == "" {
		return errors.New("fleet: Config.Dir is required")
	}
	if c.Scan.Seed == 0 {
		return errors.New("fleet: Scan.Seed must be non-zero (every worker must derive the same permutation)")
	}
	if c.Binary == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("fleet: no Binary and os.Executable failed: %w", err)
		}
		c.Binary = exe
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.LeaseTTL / 4
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 500 * time.Millisecond
	}
	if c.RatePollInterval <= 0 {
		c.RatePollInterval = 100 * time.Millisecond
	}
	switch {
	case c.MaxRespawns == 0:
		c.MaxRespawns = 5
	case c.MaxRespawns < 0:
		c.MaxRespawns = 0
	}
	if c.RespawnBackoff <= 0 {
		c.RespawnBackoff = 100 * time.Millisecond
	}
	if c.RespawnBackoffMax <= 0 {
		c.RespawnBackoffMax = 2 * time.Second
	}
	if c.Plane == nil {
		c.Plane = NewFSControlPlane()
	}
	if c.RemoteWorkers {
		if _, ok := c.Plane.(RemotePlane); !ok {
			return fmt.Errorf("fleet: RemoteWorkers requires a remote-capable control plane, have %q", c.Plane.Name())
		}
	}
	if c.MergedOutput == "" {
		c.MergedOutput = filepath.Join(c.Dir, "merged."+outputExt(c.Scan.Format))
	}
	if c.MetadataPath == "" {
		c.MetadataPath = filepath.Join(c.Dir, "fleet-metadata.json")
	}
	if c.TracePath == "" {
		c.TracePath = filepath.Join(c.Dir, "fleet-trace.jsonl")
	}
	return nil
}

// Run executes the fleet: split, spawn, supervise, reclaim, merge. It
// returns when every shard completed (merging their outputs), or with
// the first fatal error (config, fingerprint mismatch, respawn budget).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	fps, err := cfg.Scan.Fingerprints(cfg.Workers)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	for i := 0; i < cfg.Workers; i++ {
		if err := os.MkdirAll(ShardDir(cfg.Dir, i), 0o755); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &coordinator{
		cfg:     cfg,
		log:     logger,
		jr:      trace.New(trace.Config{Shards: 1, SampleEvery: -1}),
		plane:   cfg.Plane,
		start:   time.Now(),
		fleetID: fmt.Sprintf("fleet-%d-%d", os.Getpid(), time.Now().UnixNano()),
		fps:     fps,
		alive:   make([]bool, cfg.Workers),
		workersAlive: reg.Gauge("zmapgo_fleet_workers_alive",
			"Worker processes currently holding a fresh lease."),
		faultsM: map[FaultKind]*metrics.Counter{},
	}
	for _, k := range []FaultKind{FaultKill, FaultHang, FaultSlow} {
		c.faultsM[k] = reg.CounterWith("zmapgo_fleet_faults_injected_total",
			"Chaos faults injected into workers, by kind.", "kind", string(k))
	}
	for i := 0; i < cfg.Workers; i++ {
		lbl := strconv.Itoa(i)
		c.workerUp = append(c.workerUp, reg.GaugeWith("zmapgo_fleet_worker_up",
			"1 while the shard's worker process is supervised as live.", "shard", lbl))
		c.rateAlloc = append(c.rateAlloc, reg.GaugeWith("zmapgo_fleet_rate_allocation_pps",
			"Current slice of the fleet rate budget allocated to the shard.", "shard", lbl))
		c.reclaimsM = append(c.reclaimsM, reg.CounterWith("zmapgo_fleet_reclaims_total",
			"Lease reclaims (worker crash, hang, or fence), by shard.", "shard", lbl))
		c.sups = append(c.sups, &supervisor{c: c, shard: i, res: ShardResult{Shard: i}})
	}

	c.journal(trace.JEntry{Kind: trace.JFleetStart, Name: c.fleetID,
		Detail: fmt.Sprintf("workers=%d seed=%d budget=%.0fpps ttl=%s plane=%s",
			cfg.Workers, cfg.Scan.Seed, cfg.RateBudget, cfg.LeaseTTL, c.plane.Name())})
	defer c.dumpTrace()

	if err := c.plane.Start(PlaneInfo{
		Dir:      cfg.Dir,
		Workers:  cfg.Workers,
		Format:   cfg.Scan.Format,
		FleetID:  c.fleetID,
		LeaseTTL: cfg.LeaseTTL,
		Journal:  c.journal,
		Metrics:  reg,
		Logger:   logger,
	}); err != nil {
		return nil, fmt.Errorf("fleet: control plane start: %w", err)
	}
	defer c.plane.Close()

	// Initial rate allocation: everyone is presumed live until their
	// supervisor reports otherwise, so workers start at budget/N.
	c.mu.Lock()
	for i := range c.alive {
		c.alive[i] = true
	}
	c.reallocateLocked("start")
	c.mu.Unlock()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for i := range c.sups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.sups[i].run(runCtx)
			if errs[i] != nil && !errors.Is(errs[i], context.Canceled) {
				cancel() // one fatal shard takes the fleet down
			}
		}(i)
	}
	if cfg.Faults != nil && len(cfg.Faults.Events) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.injectFaults(runCtx)
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	return c.merge(reg)
}

// merge unions the per-shard run files and builds the fleet Result.
func (c *coordinator) merge(reg *metrics.Registry) (*Result, error) {
	files, err := RunFiles(c.cfg.Dir, c.cfg.Workers, c.cfg.Scan.Format)
	if err != nil {
		return nil, err
	}
	out, err := os.Create(c.cfg.MergedOutput)
	if err != nil {
		return nil, fmt.Errorf("fleet: merged output: %w", err)
	}
	stats, merr := MergeOutputs(c.cfg.Scan.Format, files, out)
	if cerr := out.Close(); merr == nil {
		merr = cerr
	}
	if merr != nil {
		return nil, merr
	}
	reg.Counter("zmapgo_fleet_merged_rows_total",
		"Unique result rows in the merged fleet output.").Add(uint64(stats.UniqueRows))
	reg.Counter("zmapgo_fleet_merge_duplicates_total",
		"Duplicate rows collapsed by the exactly-once merge.").Add(uint64(stats.Duplicates))
	c.journal(trace.JEntry{Kind: trace.JFleetMerge,
		Detail: fmt.Sprintf("files=%d rows=%d unique=%d dups=%d",
			stats.Files, stats.RowsRead, stats.UniqueRows, stats.Duplicates)})

	end := time.Now()
	res := &Result{
		FleetID:      c.fleetID,
		Workers:      c.cfg.Workers,
		Scan:         c.cfg.Scan,
		StartTime:    c.start,
		EndTime:      end,
		DurationSecs: end.Sub(c.start).Seconds(),
		MergedOutput: c.cfg.MergedOutput,
		Merge:        stats,
	}
	for _, s := range c.sups {
		res.Shards = append(res.Shards, s.res)
		res.Reclaims += s.res.Reclaims
		if m := s.res.Summary; m != nil {
			res.TargetsScanned += m.TargetsScanned
			res.PacketsSent += m.PacketsSent
			res.PacketsRecv += m.PacketsRecv
			res.UniqueSucc += m.UniqueSucc
			res.Quarantined = append(res.Quarantined, m.QuarantinedPrefixes...)
		}
	}
	res.FaultsInjected = int(c.faults.Load())
	c.mu.Lock()
	res.RateReallocs = c.reallocs
	c.mu.Unlock()

	c.journal(trace.JEntry{Kind: trace.JFleetDone,
		Detail: fmt.Sprintf("reclaims=%d unique=%d dups=%d wall=%.2fs",
			res.Reclaims, stats.UniqueRows, stats.Duplicates, res.DurationSecs)})

	if c.cfg.MetadataPath != "" && c.cfg.MetadataPath != "-" {
		doc, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(c.cfg.MetadataPath, append(doc, '\n'), 0o644)
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: metadata: %w", err)
		}
	}
	return res, nil
}

func (c *coordinator) journal(e trace.JEntry) {
	c.jr.Journal(e)
}

func (c *coordinator) dumpTrace() {
	if c.cfg.TracePath == "" || c.cfg.TracePath == "-" {
		return
	}
	f, err := os.Create(c.cfg.TracePath)
	if err != nil {
		c.log.Warn("fleet trace dump failed", "err", err)
		return
	}
	defer f.Close()
	if err := c.jr.Snapshot().WriteJSONL(f); err != nil {
		c.log.Warn("fleet trace dump failed", "err", err)
	}
}

// setAlive flips one shard's liveness and, when a rate budget is set,
// redistributes it across the survivors: a dead worker's slice moves to
// the live ones immediately and moves back once the shard respawns.
func (c *coordinator) setAlive(shard int, up bool, reason string) {
	c.mu.Lock()
	if c.alive[shard] == up {
		c.mu.Unlock()
		return
	}
	c.alive[shard] = up
	share, n := c.reallocateLocked(reason)
	c.mu.Unlock()

	if up {
		c.workerUp[shard].Set(1)
	} else {
		c.workerUp[shard].Set(0)
	}
	c.workersAlive.Set(float64(n))
	if c.cfg.RateBudget > 0 {
		c.journal(trace.JEntry{Kind: trace.JFleetRateRealloc, Index: shard,
			Reason: reason, RatePPS: share,
			Detail: fmt.Sprintf("alive=%d budget=%.0f", n, c.cfg.RateBudget)})
	}
}

// reallocateLocked rewrites every live shard's rate file with an equal
// share of the budget. Callers hold c.mu.
func (c *coordinator) reallocateLocked(reason string) (share float64, alive int) {
	for _, a := range c.alive {
		if a {
			alive++
		}
	}
	if c.cfg.RateBudget <= 0 {
		return 0, alive
	}
	if alive > 0 {
		share = c.cfg.RateBudget / float64(alive)
	}
	c.reallocs++
	for i, a := range c.alive {
		if !a {
			c.rateAlloc[i].Set(0)
			continue
		}
		c.rateAlloc[i].Set(share)
		path := PathsFor(c.cfg.Dir, i, 1, c.cfg.Scan.Format).Rate
		if err := writeRateFileRetry(path, share); err != nil {
			// A silently lost write here would strand part of the fleet
			// budget: a dead worker's slice never reaches the survivors
			// (or a respawn keeps an inflated share). Journal it as a
			// first-class decision so the loss is attributable, and keep
			// the gauge at the intended value — the next realloc retries.
			c.log.Warn("rate file write failed after retries", "shard", i, "err", err)
			c.journal(trace.JEntry{Kind: trace.JFleetRateLost, Index: i,
				Reason: reason, RatePPS: share,
				Detail: fmt.Sprintf("attempts=%d err=%v", rateWriteAttempts, err)})
		}
	}
	c.log.Debug("rate reallocated", "reason", reason, "alive", alive, "share", share)
	return share, alive
}

// rateWriteAttempts bounds the per-shard retry of a failed rate-file
// publication (transient ENOSPC/EACCES flaps on network filesystems).
const rateWriteAttempts = 4

// writeRateFileRetry publishes a rate cap with a short bounded backoff;
// the caller journals the final failure.
func writeRateFileRetry(path string, pps float64) error {
	backoff := 2 * time.Millisecond
	var err error
	for attempt := 0; attempt < rateWriteAttempts; attempt++ {
		if err = writeRateFile(path, pps); err == nil {
			return nil
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return err
}

// writeRateFile publishes a rate cap atomically (tiny advisory file;
// rename keeps readers from seeing a torn value).
func writeRateFile(path string, pps float64) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%g\n", pps)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadRateFile reads a cap published by the coordinator; workers poll
// it. Returns 0 (no cap) when the file is missing or unparseable.
func ReadRateFile(path string) float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(trimSpaceBytes(data)), 64)
	if err != nil || v < 0 {
		return 0
	}
	return v
}

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r' || b[len(b)-1] == ' ') {
		b = b[:len(b)-1]
	}
	for len(b) > 0 && b[0] == ' ' {
		b = b[1:]
	}
	return b
}

// injectFaults replays the chaos schedule against the live fleet.
func (c *coordinator) injectFaults(ctx context.Context) {
	for _, ev := range c.cfg.Faults.sorted() {
		delay := time.Until(c.start.Add(ev.After))
		if delay > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(delay):
			}
		}
		if ev.Shard < 0 || ev.Shard >= len(c.sups) {
			c.journal(trace.JEntry{Kind: trace.JFleetFault, Index: ev.Shard,
				Name: string(ev.Kind), Reason: "no_such_shard", Detail: ev.String()})
			continue
		}
		pid := int(c.sups[ev.Shard].pid.Load())
		if pid == 0 {
			c.journal(trace.JEntry{Kind: trace.JFleetFault, Index: ev.Shard,
				Name: string(ev.Kind), Reason: "no_worker", Detail: ev.String()})
			continue
		}
		switch ev.Kind {
		case FaultKill:
			syscall.Kill(pid, syscall.SIGKILL)
		case FaultHang:
			syscall.Kill(pid, syscall.SIGSTOP)
		case FaultSlow:
			syscall.Kill(pid, syscall.SIGSTOP)
			select {
			case <-ctx.Done():
				syscall.Kill(pid, syscall.SIGCONT)
				return
			case <-time.After(ev.Duration):
			}
			syscall.Kill(pid, syscall.SIGCONT)
		}
		c.faults.Add(1)
		c.faultsM[ev.Kind].Inc()
		c.journal(trace.JEntry{Kind: trace.JFleetFault, Index: ev.Shard,
			Name: string(ev.Kind), Reason: "injected",
			Detail: fmt.Sprintf("%s pid=%d", ev.String(), pid)})
		c.log.Info("fault injected", "shard", ev.Shard, "kind", ev.Kind, "pid", pid)
	}
}

// leasePathFor is the epoch-independent lease location of a shard.
func (c *coordinator) leasePathFor(shard int) string {
	return PathsFor(c.cfg.Dir, shard, 1, c.cfg.Scan.Format).Lease
}

// run supervises one shard to completion: adopt or spawn, monitor the
// lease, reclaim and respawn with bounded backoff on failure.
func (s *supervisor) run(ctx context.Context) error {
	c := s.c
	epoch := 0
	backoff := c.cfg.RespawnBackoff

	paths1 := PathsFor(c.cfg.Dir, s.shard, 1, c.cfg.Scan.Format)

	// Pre-existing durable state: a lease left by a previous
	// coordinator (or a crashed one). Adopt, skip, or reclaim it.
	if l, err := checkpoint.LoadLease(paths1.Lease); err == nil {
		if verr := (&checkpoint.Snapshot{Fingerprint: l.Fingerprint}).Verify(c.fps[s.shard]); verr != nil {
			return fmt.Errorf("fleet: shard %d lease belongs to a different scan: %w", s.shard, verr)
		}
		epoch = l.Epoch
		donePaths := PathsFor(c.cfg.Dir, s.shard, l.Epoch, c.cfg.Scan.Format)
		switch {
		case fileExists(donePaths.Metadata):
			// Shard finished under a previous coordinator. The metadata
			// file is the one commit record; the lease's done-mark is
			// only an optimization, and a worker whose done-mark write
			// failed must still be adopted as finished, never re-scanned.
			detail := ""
			if l.State != checkpoint.LeaseDone {
				detail = fmt.Sprintf("commit record present, lease state %q (done-mark lost)", l.State)
			}
			s.res.Epochs = epoch
			s.res.Summary = loadShardSummary(donePaths.Metadata)
			c.setAlive(s.shard, false, "already_done")
			c.journal(trace.JEntry{Kind: trace.JFleetAdopt, Index: s.shard,
				Name: l.WorkerID, Reason: "already_done", Detail: detail})
			return nil
		case pidAlive(l.OwnerPID) && !l.Expired(time.Now()):
			// A live worker from a previous coordinator still holds
			// the lease: adopt it instead of double-granting.
			s.res.Adopted = true
			s.pid.Store(int64(l.OwnerPID))
			c.setAlive(s.shard, true, "adopt")
			c.journal(trace.JEntry{Kind: trace.JFleetAdopt, Index: s.shard,
				Name: l.WorkerID, Reason: "live_worker",
				Detail: fmt.Sprintf("pid=%d epoch=%d", l.OwnerPID, l.Epoch)})
			out := s.monitorAdopted(ctx, l, donePaths)
			s.pid.Store(0)
			c.setAlive(s.shard, false, out.String())
			switch out {
			case outDone:
				s.res.Epochs = epoch
				s.res.Summary = loadShardSummary(donePaths.Metadata)
				return nil
			case outCanceled:
				return ctx.Err()
			default:
				if err := s.noteReclaim(ctx, out, &backoff); err != nil {
					return err
				}
			}
		default:
			// Stale lease: the owner is gone. The normal spawn path
			// below reclaims by granting the next epoch.
			c.journal(trace.JEntry{Kind: trace.JFleetLeaseExpired, Index: s.shard,
				Name: l.WorkerID, Reason: "stale_at_start",
				Detail: fmt.Sprintf("pid=%d renewed=%s", l.OwnerPID, l.RenewedAt.Format(time.RFC3339))})
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Resume from the shard checkpoint when one exists — after
		// verifying it describes this exact slice of this exact scan.
		resume := false
		if snap, err := checkpoint.Load(paths1.Checkpoint); err == nil {
			if verr := snap.Verify(c.fps[s.shard]); verr != nil {
				return fmt.Errorf("fleet: shard %d checkpoint rejected on handoff: %w", s.shard, verr)
			}
			resume = true
		}
		epoch++
		out, err := s.runEpoch(ctx, epoch, resume)
		if err != nil {
			return err
		}
		switch out {
		case outDone:
			s.res.Epochs = epoch
			return nil
		case outCanceled:
			return ctx.Err()
		case outConfig:
			return fmt.Errorf("fleet: shard %d worker rejected its config (exit %d); not respawning", s.shard, ExitConfig)
		case outFingerprint:
			return fmt.Errorf("fleet: shard %d worker refused checkpoint handoff: %w", s.shard, ErrFingerprintMismatch)
		default: // crash, hang, fence: reclaim and retry
			if err := s.noteReclaim(ctx, out, &backoff); err != nil {
				return err
			}
		}
	}
}

// noteReclaim journals one reclaim decision, enforces the respawn
// budget, and sleeps the bounded exponential backoff.
func (s *supervisor) noteReclaim(ctx context.Context, out outcome, backoff *time.Duration) error {
	c := s.c
	s.res.Reclaims++
	c.reclaimsM[s.shard].Inc()
	c.journal(trace.JEntry{Kind: trace.JFleetReclaim, Index: s.shard,
		Reason: out.String(),
		Detail: fmt.Sprintf("reclaim=%d backoff=%s", s.res.Reclaims, *backoff)})
	if s.res.Reclaims > c.cfg.MaxRespawns {
		return fmt.Errorf("fleet: shard %d died %d times (budget %d): %w",
			s.shard, s.res.Reclaims, c.cfg.MaxRespawns, ErrRespawnsExhausted)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(*backoff):
	}
	*backoff *= 2
	if *backoff > c.cfg.RespawnBackoffMax {
		*backoff = c.cfg.RespawnBackoffMax
	}
	return nil
}

// runEpoch grants the lease, spawns the worker, and supervises it until
// it exits or its lease expires. The returned error is fatal (infra or
// context); failures the reclaim loop handles come back as outcomes.
func (s *supervisor) runEpoch(ctx context.Context, epoch int, resume bool) (outcome, error) {
	c := s.c
	paths := PathsFor(c.cfg.Dir, s.shard, epoch, c.cfg.Scan.Format)
	spec := &WorkerSpec{
		FleetID:            c.fleetID,
		Shard:              s.shard,
		Shards:             c.cfg.Workers,
		Epoch:              epoch,
		Scan:               c.cfg.Scan,
		RatePPS:            c.cfg.RateBudget,
		Resume:             resume,
		Paths:              paths,
		LeaseTTL:           c.cfg.LeaseTTL,
		CheckpointInterval: c.cfg.CheckpointInterval,
		HeartbeatInterval:  c.cfg.HeartbeatInterval,
		RatePollInterval:   c.cfg.RatePollInterval,
	}
	// Grant: bump the epoch (durably, through the plane) before the
	// worker exists, so a fenced straggler from the previous epoch can
	// never renew again. The plane writes the spec before the lease.
	now := time.Now()
	lease := &checkpoint.Lease{
		FleetID:     c.fleetID,
		ShardIndex:  s.shard,
		Epoch:       epoch,
		WorkerID:    spec.WorkerID(),
		State:       checkpoint.LeaseGranted,
		GrantedAt:   now,
		RenewedAt:   now,
		TTLSecs:     c.cfg.LeaseTTL.Seconds(),
		Fingerprint: c.fps[s.shard],
	}
	if err := c.plane.Grant(spec, lease); err != nil {
		return outCrash, err
	}

	if c.cfg.RemoteWorkers {
		return s.runRemoteEpoch(ctx, spec, paths), nil
	}

	logf, err := os.OpenFile(filepath.Join(paths.Dir, "worker.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return outCrash, err
	}
	cmd := exec.Command(c.cfg.Binary, c.cfg.Args...)
	cmd.Env = append(os.Environ(), c.plane.WorkerEnv(spec)...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return outCrash, fmt.Errorf("fleet: spawn shard %d: %w", s.shard, err)
	}
	logf.Close()
	pid := cmd.Process.Pid
	s.pid.Store(int64(pid))
	c.setAlive(s.shard, true, "spawn")
	kind := trace.JFleetSpawn
	if epoch > 1 {
		kind = trace.JFleetRespawn
	}
	c.journal(trace.JEntry{Kind: kind, Index: s.shard, Name: spec.WorkerID(),
		Detail: fmt.Sprintf("pid=%d resume=%t", pid, resume)})
	c.log.Info("worker spawned", "shard", s.shard, "epoch", epoch, "pid", pid, "resume", resume)

	exitCh := make(chan error, 1)
	go func() { exitCh <- cmd.Wait() }()

	out := s.monitorSpawned(ctx, pid, epoch, exitCh, paths)
	s.pid.Store(0)
	c.setAlive(s.shard, false, out.String())
	return out, nil
}

// runRemoteEpoch supervises a grant executed by a worker process this
// coordinator did not spawn (`fleet-worker --join`): the grant is
// offered through the plane's acquire queue and the shard is judged
// entirely on durable protocol state — lease renewals arriving over the
// control plane, the epoch's commit record, and best-effort exit
// reports. There is no pid to kill: reclaim is pure fencing (the next
// grant bumps the epoch server-side, so every late RPC from the old
// worker is rejected, and a partitioned worker self-fences once it
// cannot renew within one lease TTL).
func (s *supervisor) runRemoteEpoch(ctx context.Context, spec *WorkerSpec, paths WorkerPaths) outcome {
	c := s.c
	rp := c.plane.(RemotePlane) // validated in applyDefaults
	rp.Offer(spec)
	c.setAlive(s.shard, true, "offer")
	c.journal(trace.JEntry{Kind: trace.JFleetOffer, Index: s.shard, Name: spec.WorkerID(),
		Reason: "grant", Detail: fmt.Sprintf("epoch=%d resume=%t", spec.Epoch, spec.Resume)})

	interval := c.cfg.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	reofferAfter := 5 * c.cfg.LeaseTTL
	tick := time.NewTicker(interval)
	defer tick.Stop()
	offered := time.Now()
	out := func() outcome {
		for {
			select {
			case <-ctx.Done():
				return outCanceled
			case <-tick.C:
				if fileExists(paths.Metadata) {
					s.res.Summary = loadShardSummary(paths.Metadata)
					c.journal(trace.JEntry{Kind: trace.JFleetWorkerDone, Index: s.shard,
						Name: spec.WorkerID(), Reason: "remote"})
					return outDone
				}
				if code, ok := rp.TakeExit(s.shard, spec.Epoch); ok {
					return s.classifyExitCode(code, nil, paths)
				}
				l, err := checkpoint.LoadLease(paths.Lease)
				if err != nil || l.Epoch != spec.Epoch {
					continue
				}
				switch {
				case l.State == checkpoint.LeaseRunning && l.Expired(time.Now()):
					c.journal(trace.JEntry{Kind: trace.JFleetLeaseExpired, Index: s.shard,
						Name: l.WorkerID, Reason: "heartbeat_stale_remote",
						Detail: fmt.Sprintf("stale=%s ttl=%s",
							time.Since(l.RenewedAt).Round(time.Millisecond), l.TTL())})
					return outHang
				case l.State == checkpoint.LeaseGranted && time.Since(offered) > reofferAfter:
					// Nobody adopted the grant: either no worker has
					// joined yet, or the acquirer died before its first
					// renewal. Re-offering the same epoch is idempotent —
					// worst case two workers race to adopt one epoch,
					// both may scan, and the merge dedups the overlap.
					rp.Offer(spec)
					offered = time.Now()
					c.journal(trace.JEntry{Kind: trace.JFleetOffer, Index: s.shard,
						Name: spec.WorkerID(), Reason: "reoffer"})
				}
			}
		}
	}()
	c.setAlive(s.shard, false, out.String())
	return out
}

// monitorSpawned watches one spawned worker: its process exit and its
// lease freshness. A heartbeat stale past the TTL means the worker is
// wedged even though the process may be alive (e.g. SIGSTOP); the
// coordinator kills it first — so a zombie can never keep probing — and
// reports a hang for the reclaim loop.
func (s *supervisor) monitorSpawned(ctx context.Context, pid, epoch int, exitCh <-chan error, paths WorkerPaths) outcome {
	c := s.c
	interval := c.cfg.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case werr := <-exitCh:
			return s.classifyExit(werr, paths)
		case <-tick.C:
			l, lerr := checkpoint.LoadLease(paths.Lease)
			if lerr != nil || l.Epoch != epoch || l.State == checkpoint.LeaseDone {
				continue
			}
			if l.Expired(time.Now()) {
				c.journal(trace.JEntry{Kind: trace.JFleetLeaseExpired, Index: s.shard,
					Name: l.WorkerID, Reason: "heartbeat_stale",
					Detail: fmt.Sprintf("pid=%d stale=%s ttl=%s", pid,
						time.Since(l.RenewedAt).Round(time.Millisecond), l.TTL())})
				c.log.Warn("lease expired, killing worker", "shard", s.shard, "pid", pid)
				syscall.Kill(pid, syscall.SIGKILL)
				<-exitCh // reap
				return outHang
			}
		case <-ctx.Done():
			syscall.Kill(pid, syscall.SIGKILL)
			<-exitCh
			return outCanceled
		}
	}
}

// monitorAdopted watches a worker this coordinator did not spawn: no
// Wait channel, so liveness is polled alongside the lease.
func (s *supervisor) monitorAdopted(ctx context.Context, l *checkpoint.Lease, paths WorkerPaths) outcome {
	c := s.c
	pid := l.OwnerPID
	interval := c.cfg.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if !pidAlive(pid) {
				// Judged on the commit record alone: a worker that died
				// after its metadata rename but before (or during) the
				// lease done-mark still finished.
				if fileExists(paths.Metadata) {
					c.journal(trace.JEntry{Kind: trace.JFleetWorkerDone, Index: s.shard,
						Name: l.WorkerID, Reason: "adopted"})
					return outDone
				}
				c.journal(trace.JEntry{Kind: trace.JFleetWorkerExit, Index: s.shard,
					Name: l.WorkerID, Reason: "adopted_died", Detail: fmt.Sprintf("pid=%d", pid)})
				return outCrash
			}
			if cur, err := checkpoint.LoadLease(paths.Lease); err == nil &&
				cur.Epoch == l.Epoch && cur.Expired(time.Now()) {
				c.journal(trace.JEntry{Kind: trace.JFleetLeaseExpired, Index: s.shard,
					Name: l.WorkerID, Reason: "heartbeat_stale_adopted"})
				syscall.Kill(pid, syscall.SIGKILL)
				return outHang
			}
		case <-ctx.Done():
			syscall.Kill(pid, syscall.SIGKILL)
			return outCanceled
		}
	}
}

// classifyExit maps a worker's exit status to a supervision outcome.
// Completion is judged by the metadata file, not the exit code alone:
// its atomic write is the worker's commit record.
func (s *supervisor) classifyExit(waitErr error, paths WorkerPaths) outcome {
	code := 0
	if waitErr != nil {
		var ee *exec.ExitError
		if errors.As(waitErr, &ee) {
			code = ee.ExitCode() // -1 when signal-killed
		} else {
			code = -1
		}
	}
	return s.classifyExitCode(code, waitErr, paths)
}

// classifyExitCode is the shared exit-status judgment for spawned
// workers (status from Wait) and remote joined workers (status from a
// best-effort exit-report RPC).
func (s *supervisor) classifyExitCode(code int, waitErr error, paths WorkerPaths) outcome {
	c := s.c
	switch code {
	case ExitOK:
		if fileExists(paths.Metadata) {
			s.res.Summary = loadShardSummary(paths.Metadata)
			c.journal(trace.JEntry{Kind: trace.JFleetWorkerDone, Index: s.shard})
			return outDone
		}
		c.journal(trace.JEntry{Kind: trace.JFleetWorkerExit, Index: s.shard,
			Reason: "exit0_no_metadata"})
		return outCrash
	case ExitConfig:
		c.journal(trace.JEntry{Kind: trace.JFleetWorkerExit, Index: s.shard, Reason: "config"})
		return outConfig
	case ExitFingerprint:
		c.journal(trace.JEntry{Kind: trace.JFleetWorkerExit, Index: s.shard, Reason: "fingerprint"})
		return outFingerprint
	case ExitFenced:
		// Distinguish the two fencing causes in the journal: a lease
		// superseded by a re-grant stays freshly renewed by its new
		// owner, while a worker that self-fenced behind a partition
		// leaves its own lease stale.
		if l, err := checkpoint.LoadLease(paths.Lease); err == nil && l.Expired(time.Now()) {
			c.journal(trace.JEntry{Kind: trace.JFleetSelfFence, Index: s.shard,
				Name: l.WorkerID, Reason: "renewals_stale",
				Detail: fmt.Sprintf("last renewal %s", l.RenewedAt.Format(time.RFC3339))})
		}
		c.journal(trace.JEntry{Kind: trace.JFleetWorkerExit, Index: s.shard, Reason: "fenced"})
		return outFenced
	default:
		c.journal(trace.JEntry{Kind: trace.JFleetWorkerExit, Index: s.shard,
			Reason: "crash", Detail: fmt.Sprintf("exit=%d err=%v", code, waitErr)})
		return outCrash
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

func loadShardSummary(path string) *output.Metadata {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var m output.Metadata
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	return &m
}
