package fleet

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"zmapgo/internal/output"
	"zmapgo/internal/target"
)

// MergeStats accounts for the exactly-once merge: how many run files
// contributed, how many rows they held, and how many were duplicates
// collapsed away. Duplicates are expected after crash recovery — a
// response received after the last checkpoint but before the crash is
// re-probed by the respawned worker, so the union of run files is
// at-least-once; the merge's dedup restores exactly-once. TornRows
// counts partial trailing lines cut short by a crash mid-write; the
// torn row's target is re-probed on resume (it lies past the last
// checkpoint by construction), so dropping the fragment loses nothing.
type MergeStats struct {
	Files      int `json:"files"`
	RowsRead   int `json:"rows_read"`
	UniqueRows int `json:"unique_rows"`
	Duplicates int `json:"duplicate_rows"`
	TornRows   int `json:"torn_rows,omitempty"`
}

// mergeKey identifies a result row for deduplication: the responding
// (address, port) pair, the same identity the engine's own dedup uses.
type mergeKey struct {
	ip   uint32
	port uint16
}

// mergeRow is one surviving row with its sort identity.
type mergeRow struct {
	key mergeKey
	// text is the row's serialized form (text line or csv fields).
	text   string
	fields []string
	rec    output.Record
}

// RunFiles lists every per-epoch output file of every shard under the
// fleet directory, in (shard, epoch) order — the deterministic
// first-seen order the merge dedups in.
func RunFiles(fleetDir string, workers int, format string) ([]string, error) {
	ext := outputExt(format)
	var files []string
	for s := 0; s < workers; s++ {
		matches, err := filepath.Glob(filepath.Join(ShardDir(fleetDir, s), "out.run-*."+ext))
		if err != nil {
			return nil, fmt.Errorf("fleet: list run files: %w", err)
		}
		sort.Strings(matches) // epoch is zero-padded, lexical == numeric
		files = append(files, matches...)
	}
	return files, nil
}

// MergeOutputs unions per-shard run files into one scan-level result
// stream: rows are deduplicated by (address, port) keeping the first
// occurrence in file order, then emitted sorted by numeric address and
// port. For the text format the merged stream is therefore byte-equal
// to a sorted-unique single-process reference scan of the same space.
func MergeOutputs(format string, files []string, w io.Writer) (MergeStats, error) {
	var stats MergeStats
	seen := make(map[mergeKey]int)
	var rows []mergeRow

	keep := func(row mergeRow) {
		stats.RowsRead++
		if _, dup := seen[row.key]; dup {
			stats.Duplicates++
			return
		}
		seen[row.key] = len(rows)
		rows = append(rows, row)
	}

	parse := parseTextRow
	switch format {
	case "csv":
		parse = parseCSVRow
	case "jsonl", "json":
		parse = parseJSONLRow
	}

	for _, path := range files {
		torn, err := mergeFile(path, parse, keep)
		if err != nil {
			return stats, fmt.Errorf("fleet: merge %s: %w", path, err)
		}
		stats.TornRows += torn
		stats.Files++
	}

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key.ip != rows[j].key.ip {
			return rows[i].key.ip < rows[j].key.ip
		}
		return rows[i].key.port < rows[j].key.port
	})
	stats.UniqueRows = len(rows)

	switch format {
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write(output.CSVHeader()); err != nil {
			return stats, err
		}
		for _, r := range rows {
			if err := cw.Write(r.fields); err != nil {
				return stats, err
			}
		}
		cw.Flush()
		return stats, cw.Error()
	case "jsonl", "json":
		enc := json.NewEncoder(w)
		for _, r := range rows {
			if err := enc.Encode(r.rec); err != nil {
				return stats, err
			}
		}
		return stats, nil
	default:
		bw := bufio.NewWriter(w)
		for _, r := range rows {
			if _, err := fmt.Fprintln(bw, r.text); err != nil {
				return stats, err
			}
		}
		return stats, bw.Flush()
	}
}

// mergeFile reads one run file line by line. A parse failure on the
// final line is a torn tail from a crashed writer and is dropped (the
// count is returned); a failure anywhere else is real corruption.
func mergeFile(path string, parse func(line string) (mergeRow, bool, error), keep func(mergeRow)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var badErr error
	badLine := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if badErr != nil {
			// The bad line was not the last one: hard error.
			return 0, fmt.Errorf("row %q: %w", badLine, badErr)
		}
		row, skip, err := parse(line)
		if err != nil {
			badErr, badLine = err, line
			continue
		}
		if !skip {
			keep(row)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if badErr != nil {
		return 1, nil // torn tail: dropped, not fatal
	}
	return 0, nil
}

// parseTextRow reads a text-format row: "a.b.c.d" or "a.b.c.d:port".
func parseTextRow(line string) (mergeRow, bool, error) {
	addr, portStr, hasPort := strings.Cut(line, ":")
	ip, err := target.ParseIPv4(addr)
	if err != nil {
		return mergeRow{}, false, err
	}
	var port uint16
	if hasPort {
		var p int
		if _, err := fmt.Sscanf(portStr, "%d", &p); err != nil || p < 0 || p > 0xFFFF {
			return mergeRow{}, false, fmt.Errorf("bad port %q", portStr)
		}
		port = uint16(p)
	}
	return mergeRow{key: mergeKey{ip: ip, port: port}, text: line}, false, nil
}

// parseCSVRow reads one schema row; per-file header rows are skipped.
// Rows are parsed line-wise (the schema has no quoted newlines), which
// is what lets a torn tail be detected per line.
func parseCSVRow(line string) (mergeRow, bool, error) {
	header := output.CSVHeader()
	if strings.HasPrefix(line, header[0]+",") {
		return mergeRow{}, true, nil
	}
	fields, err := csv.NewReader(strings.NewReader(line)).Read()
	if err != nil {
		return mergeRow{}, false, err
	}
	if len(fields) != len(header) {
		return mergeRow{}, false, fmt.Errorf("csv row with %d fields, want %d", len(fields), len(header))
	}
	ip, err := target.ParseIPv4(fields[0])
	if err != nil {
		return mergeRow{}, false, fmt.Errorf("csv saddr %q: %w", fields[0], err)
	}
	var port int
	if _, err := fmt.Sscanf(fields[1], "%d", &port); err != nil || port < 0 || port > 0xFFFF {
		return mergeRow{}, false, fmt.Errorf("csv sport %q", fields[1])
	}
	return mergeRow{key: mergeKey{ip: ip, port: uint16(port)}, fields: fields}, false, nil
}

// parseJSONLRow reads one JSON Lines record.
func parseJSONLRow(line string) (mergeRow, bool, error) {
	var rec output.Record
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return mergeRow{}, false, err
	}
	ip, err := target.ParseIPv4(rec.Saddr)
	if err != nil {
		return mergeRow{}, false, fmt.Errorf("jsonl saddr %q: %w", rec.Saddr, err)
	}
	return mergeRow{key: mergeKey{ip: ip, port: rec.Sport}, rec: rec}, false, nil
}
