package fleet

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/metrics"
	"zmapgo/internal/trace"
)

// This file abstracts the coordinator↔worker protocol — lease
// grant/renew/fence, heartbeats, rate-budget publication, checkpoint
// adoption, result/metadata shipping, and the epoch commit record —
// behind a pair of interfaces, so the same supervision and worker
// runtime work over two transports:
//
//   - the filesystem plane (this file): the PR 8 protocol, byte-
//     compatible with existing fleet directories — spec/lease/rate
//     files plus per-epoch run files, all coordinated through atomic
//     renames on a shared filesystem;
//   - the network plane (internal/fleetnet): the coordinator serves the
//     same shard-dir state machine over HTTP/JSON, and workers join
//     over TCP with per-RPC timeouts, bounded backoff, idempotent
//     retries, and server-side epoch fencing.
//
// The split is deliberately asymmetric. The coordinator's durable state
// lives in the fleet directory under BOTH planes (the network server is
// a fencing facade over the same files), so merge, crash-resume, and
// journal logic are transport-independent. Only the worker's access
// path changes: direct file I/O on the filesystem plane, RPCs against
// the coordinator on the network plane.

// PlaneInfo is what a ControlPlane learns about the fleet at Start:
// where the durable state lives, how wide the fleet is, and the hooks
// it journals and measures through.
type PlaneInfo struct {
	// Dir is the fleet state directory (shard dirs already exist).
	Dir string
	// Workers is the shard count.
	Workers int
	// Format is the scan output format (run-file extension).
	Format string
	// FleetID identifies this coordinator incarnation.
	FleetID string
	// LeaseTTL is the fleet's heartbeat TTL (workers self-fence against
	// it when they cannot renew).
	LeaseTTL time.Duration
	// Journal receives control-plane decisions for the coordinator's
	// decision journal. Never nil after fleet.Run wiring.
	Journal func(trace.JEntry)
	// Metrics is the fleet's registry; planes may register counters.
	Metrics *metrics.Registry
	// Logger receives structured plane logs; never nil after wiring.
	Logger *slog.Logger
}

// ControlPlane is the coordinator's side of the protocol: how a shard
// epoch is granted (the fencing point) and how a worker process is told
// to join it.
type ControlPlane interface {
	// Name labels the plane in journals and logs ("fs", "http").
	Name() string
	// Start binds the plane to a running fleet. Called once, before any
	// Grant.
	Start(info PlaneInfo) error
	// Grant publishes a new epoch's worker spec and lease. The lease
	// write is the fencing point: once it lands, renewals under any
	// older epoch fail. Spec must be durable before the lease.
	Grant(spec *WorkerSpec, lease *checkpoint.Lease) error
	// WorkerEnv returns the environment entries a locally-spawned
	// worker needs to find this grant (e.g. the spec path, or the
	// coordinator URL plus shard/epoch).
	WorkerEnv(spec *WorkerSpec) []string
	// Close releases listeners and handles. Safe after Start failure.
	Close() error
}

// RemotePlane is the optional coordinator-side extension for planes
// that can hand grants to worker processes the coordinator did not
// spawn (zmapgo fleet-worker --join). Offer makes a grant acquirable;
// TakeExit consumes a joined worker's reported exit code for the given
// epoch, if one arrived.
type RemotePlane interface {
	ControlPlane
	Offer(spec *WorkerSpec)
	TakeExit(shard, epoch int) (code int, ok bool)
}

// WorkerPlane is the worker's side of the protocol for one lease epoch:
// liveness, fencing, rate discovery, checkpoint adoption, result
// shipping, and the commit record. The worker runtime
// (zmap.FleetWorkerMain) is transport-agnostic against it.
type WorkerPlane interface {
	// Adopt is the first renewal: it proves liveness to the coordinator
	// and fences this worker out (checkpoint.ErrLeaseFenced, wrapped)
	// if the shard has already been re-granted.
	Adopt(pid int, now time.Time) error
	// Renew is the periodic heartbeat. It returns the worker's current
	// rate share in pps (0 = no cap, negative = no update available).
	// A wrapped checkpoint.ErrLeaseFenced means the epoch moved on and
	// the worker must stop scanning.
	Renew(pid int, now time.Time) (ratePPS float64, err error)
	// RateCap cheaply returns the freshest known rate share without a
	// round trip (filesystem: read the rate file; network: the value
	// cached from the last renewal). 0 = no cap.
	RateCap() float64
	// CheckpointPath is the local file the scan engine snapshots into.
	// On the network plane this is a private spool the plane ships
	// upstream; on the filesystem plane it is the shared shard file.
	CheckpointPath() string
	// LoadCheckpoint fetches the durable resume snapshot from the
	// coordinator's view, or (nil, nil) when none exists.
	LoadCheckpoint() (*checkpoint.Snapshot, error)
	// OpenResults opens this epoch's result stream.
	OpenResults() (io.WriteCloser, error)
	// Sync makes the coordinator's durable view catch up with local
	// progress: all result rows covered by the latest local checkpoint
	// are shipped before the checkpoint itself, so a reclaimed shard
	// resumed elsewhere never skips a row it cannot see. Filesystem
	// plane: no-op (the local files ARE the coordinator's view).
	Sync() error
	// Commit publishes the epoch's metadata document — the shard's
	// atomic completion record — after a final Sync. Idempotent: a
	// retried commit of the same epoch is acknowledged, not re-applied.
	Commit(metadata []byte) error
	// Close releases local resources without committing.
	Close() error
}

// ---------------------------------------------------------------------
// Filesystem implementations (the PR 8 protocol, refactored in place).
// ---------------------------------------------------------------------

// FSControlPlane is the shared-filesystem coordinator plane: grants are
// a spec write followed by an atomic lease write in the shard
// directory, and spawned workers find the spec through WorkerSpecEnv.
type FSControlPlane struct {
	info PlaneInfo
}

// NewFSControlPlane returns the default filesystem control plane.
func NewFSControlPlane() *FSControlPlane { return &FSControlPlane{} }

// Name implements ControlPlane.
func (p *FSControlPlane) Name() string { return "fs" }

// Start implements ControlPlane.
func (p *FSControlPlane) Start(info PlaneInfo) error {
	p.info = info
	return nil
}

// Grant implements ControlPlane: the spec must be durable before the
// lease, because the lease is what fences the previous epoch out and
// the new worker reads the spec unconditionally.
func (p *FSControlPlane) Grant(spec *WorkerSpec, lease *checkpoint.Lease) error {
	if err := SaveWorkerSpec(spec.Paths.Spec, spec); err != nil {
		return err
	}
	return checkpoint.SaveLease(spec.Paths.Lease, lease)
}

// WorkerEnv implements ControlPlane.
func (p *FSControlPlane) WorkerEnv(spec *WorkerSpec) []string {
	return []string{WorkerSpecEnv + "=" + spec.Paths.Spec}
}

// Close implements ControlPlane.
func (p *FSControlPlane) Close() error { return nil }

// FSWorkerPlane is the worker's filesystem plane: renewals rewrite the
// shared lease file (epoch-fenced by checkpoint.RenewLease), the rate
// cap is polled from the coordinator's rate file, and results,
// checkpoints, and the metadata commit record are written directly to
// the shard directory.
type FSWorkerPlane struct {
	spec *WorkerSpec
	log  *slog.Logger
}

// NewFSWorkerPlane builds the worker-side filesystem plane for one
// granted epoch. logger may be nil.
func NewFSWorkerPlane(spec *WorkerSpec, logger *slog.Logger) *FSWorkerPlane {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &FSWorkerPlane{spec: spec, log: logger}
}

// Adopt implements WorkerPlane.
func (p *FSWorkerPlane) Adopt(pid int, now time.Time) error {
	_, err := checkpoint.RenewLease(p.spec.Paths.Lease, p.spec.Epoch, pid, now)
	return err
}

// Renew implements WorkerPlane.
func (p *FSWorkerPlane) Renew(pid int, now time.Time) (float64, error) {
	if _, err := checkpoint.RenewLease(p.spec.Paths.Lease, p.spec.Epoch, pid, now); err != nil {
		return -1, err
	}
	return ReadRateFile(p.spec.Paths.Rate), nil
}

// RateCap implements WorkerPlane.
func (p *FSWorkerPlane) RateCap() float64 {
	return ReadRateFile(p.spec.Paths.Rate)
}

// CheckpointPath implements WorkerPlane.
func (p *FSWorkerPlane) CheckpointPath() string { return p.spec.Paths.Checkpoint }

// LoadCheckpoint implements WorkerPlane. A missing or unreadable
// checkpoint returns (nil, nil): resuming from zero only costs
// re-scanning, at-least-once is preserved, and the merge dedups.
func (p *FSWorkerPlane) LoadCheckpoint() (*checkpoint.Snapshot, error) {
	snap, err := checkpoint.Load(p.spec.Paths.Checkpoint)
	if err != nil {
		p.log.Warn("checkpoint unreadable; starting fresh", "err", err)
		return nil, nil
	}
	return snap, nil
}

// OpenResults implements WorkerPlane. Each epoch writes a fresh run
// file so a crash cannot torn-append into a previous epoch's rows.
func (p *FSWorkerPlane) OpenResults() (io.WriteCloser, error) {
	return os.Create(p.spec.Paths.Output)
}

// Sync implements WorkerPlane: a no-op, the shard directory is the
// coordinator's durable view.
func (p *FSWorkerPlane) Sync() error { return nil }

// Commit implements WorkerPlane: the metadata file's atomic appearance
// is the shard's completion record; only then is the lease done-marked.
// The done-mark is advisory (it spares a restarted coordinator a
// metadata stat) — its failure is logged, not fatal, because the
// coordinator adopts a shard as finished on the commit record alone.
func (p *FSWorkerPlane) Commit(metadata []byte) error {
	tmp := p.spec.Paths.Metadata + ".tmp"
	if err := os.WriteFile(tmp, metadata, 0o644); err != nil {
		return fmt.Errorf("fleet: metadata: %w", err)
	}
	if err := os.Rename(tmp, p.spec.Paths.Metadata); err != nil {
		return fmt.Errorf("fleet: metadata rename: %w", err)
	}
	p.markDone()
	return nil
}

// markDone best-effort flips the lease terminal. Split out so its
// failure path is directly testable.
func (p *FSWorkerPlane) markDone() {
	l, err := checkpoint.LoadLease(p.spec.Paths.Lease)
	if err != nil || l.Epoch != p.spec.Epoch {
		return
	}
	l.State = checkpoint.LeaseDone
	l.OwnerPID = os.Getpid()
	l.RenewedAt = time.Now()
	if err := checkpoint.SaveLease(p.spec.Paths.Lease, l); err != nil {
		p.log.Warn("lease done-mark failed (commit record already durable)", "err", err)
	}
}

// Close implements WorkerPlane.
func (p *FSWorkerPlane) Close() error { return nil }
