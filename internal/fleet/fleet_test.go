package fleet

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zmapgo/internal/checkpoint"
)

func TestFaultPlanParseRoundTrip(t *testing.T) {
	in := "kill:0@800ms,hang:1@1.2s,slow:2@500ms/300ms"
	plan, err := ParseFaultPlan(in)
	if err != nil {
		t.Fatalf("ParseFaultPlan: %v", err)
	}
	if len(plan.Events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(plan.Events))
	}
	if plan.Events[1].Kind != FaultHang || plan.Events[1].Shard != 1 ||
		plan.Events[1].After != 1200*time.Millisecond {
		t.Fatalf("event 1 mangled: %+v", plan.Events[1])
	}
	if plan.Events[2].Duration != 300*time.Millisecond {
		t.Fatalf("slow duration lost: %+v", plan.Events[2])
	}
	reparsed, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", plan.String(), err)
	}
	if reparsed.String() != plan.String() {
		t.Fatalf("round trip: %q != %q", reparsed.String(), plan.String())
	}
}

func TestFaultPlanParseErrors(t *testing.T) {
	for _, bad := range []string{
		"explode:0@1s",      // unknown kind
		"kill:0",            // no delay
		"kill:x@1s",         // bad shard
		"kill:0@soon",       // bad delay
		"slow:0@1s",         // slow without duration
		"kill:0@1s/200ms",   // duration on non-slow
		"slow:0@1s/forever", // bad duration
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	a := RandomFaultPlan(42, 3, 6, 2*time.Second, 300*time.Millisecond)
	b := RandomFaultPlan(42, 3, 6, 2*time.Second, 300*time.Millisecond)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	c := RandomFaultPlan(43, 3, 6, 2*time.Second, 300*time.Millisecond)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical plans")
	}
	for _, ev := range a.Events {
		if ev.Shard < 0 || ev.Shard >= 3 {
			t.Fatalf("event targets shard %d of 3", ev.Shard)
		}
		if ev.Kind == FaultSlow && (ev.Duration <= 0 || ev.Duration > 300*time.Millisecond) {
			t.Fatalf("slow duration out of bounds: %v", ev.Duration)
		}
	}
}

// writeRun lays a run file into the expected shard/epoch location.
func writeRun(t *testing.T, dir string, shard, epoch int, format, content string) {
	t.Helper()
	paths := PathsFor(dir, shard, epoch, format)
	if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths.Output, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMergeTextExactlyOnce: duplicates across run files of one shard
// (crash re-probe) collapse to one row; output is sorted numerically.
func TestMergeTextExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	// Shard 0 crashed between epochs: 10.0.0.2 appears in both runs.
	writeRun(t, dir, 0, 1, "text", "10.0.0.9\n10.0.0.2\n")
	writeRun(t, dir, 0, 2, "text", "10.0.0.2\n10.0.0.1\n")
	writeRun(t, dir, 1, 1, "text", "10.0.0.10\n2.0.0.1\n")

	files, err := RunFiles(dir, 2, "text")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("found %d run files, want 3: %v", len(files), files)
	}
	var buf bytes.Buffer
	stats, err := MergeOutputs("text", files, &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := "2.0.0.1\n10.0.0.1\n10.0.0.2\n10.0.0.9\n10.0.0.10\n"
	if buf.String() != want {
		t.Fatalf("merged output:\n%q\nwant:\n%q", buf.String(), want)
	}
	if stats.RowsRead != 6 || stats.UniqueRows != 5 || stats.Duplicates != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestMergeTornTailTolerated: a partial trailing line from a SIGKILLed
// writer is dropped (the row's target is re-probed after resume), but
// corruption mid-file stays a hard error.
func TestMergeTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	writeRun(t, dir, 0, 1, "text", "10.0.0.1\n10.0.0.2\n10.0.")
	files, _ := RunFiles(dir, 1, "text")
	var buf bytes.Buffer
	stats, err := MergeOutputs("text", files, &buf)
	if err != nil {
		t.Fatalf("merge with torn tail: %v", err)
	}
	if stats.TornRows != 1 || stats.UniqueRows != 2 {
		t.Fatalf("stats: %+v", stats)
	}

	writeRun(t, dir, 0, 2, "text", "garbage-line\n10.0.0.3\n")
	files, _ = RunFiles(dir, 1, "text")
	if _, err := MergeOutputs("text", files, &buf); err == nil {
		t.Fatal("mid-file corruption was silently accepted")
	}
}

func TestMergeCSVAndJSONL(t *testing.T) {
	dir := t.TempDir()
	hdr := "saddr,sport,classification,success,repeat,cooldown,ttl,timestamp\n"
	writeRun(t, dir, 0, 1, "csv", hdr+"10.0.0.2,80,synack,1,0,0,64,0.5\n")
	writeRun(t, dir, 1, 1, "csv", hdr+"10.0.0.1,80,synack,1,0,0,64,0.1\n10.0.0.2,80,synack,1,0,0,64,0.7\n")
	files, _ := RunFiles(dir, 2, "csv")
	var buf bytes.Buffer
	stats, err := MergeOutputs("csv", files, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 unique rows
		t.Fatalf("csv merge lines: %q", buf.String())
	}
	if !strings.HasPrefix(lines[1], "10.0.0.1,") || !strings.HasPrefix(lines[2], "10.0.0.2,") {
		t.Fatalf("csv merge order: %q", buf.String())
	}
	if stats.Duplicates != 1 {
		t.Fatalf("csv stats: %+v", stats)
	}

	jdir := t.TempDir()
	writeRun(t, jdir, 0, 1, "jsonl",
		`{"saddr":"10.0.0.5","sport":443,"classification":"synack","success":true,"repeat":false,"cooldown":false,"ttl":64,"timestamp":0.2}`+"\n"+
			`{"saddr":"10.0.0.5","sport":80,"classification":"synack","success":true,"repeat":false,"cooldown":false,"ttl":64,"timestamp":0.3}`+"\n")
	jfiles, _ := RunFiles(jdir, 1, "jsonl")
	buf.Reset()
	stats, err = MergeOutputs("jsonl", jfiles, &buf)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(jlines) != 2 || !strings.Contains(jlines[0], `"sport":80`) {
		t.Fatalf("jsonl merge (same addr, port order): %q", buf.String())
	}
	if stats.UniqueRows != 2 {
		t.Fatalf("jsonl stats: %+v", stats)
	}
}

// TestScanSpecFingerprints: the coordinator's expected fingerprints
// must mirror the engine's defaulting (probe, ports, threads), and
// differ across shard slots.
func TestScanSpecFingerprints(t *testing.T) {
	spec := ScanSpec{Ranges: []string{"10.0.0.0/16"}, Seed: 7}
	fps, err := spec.Fingerprints(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 3 {
		t.Fatalf("got %d fingerprints", len(fps))
	}
	fp := fps[1]
	if fp.ProbeModule != "tcp_synscan" || fp.Ports != "80" || fp.Threads != 1 ||
		fp.ProbesPerTarget != 1 || fp.ShardMode != "pizza" {
		t.Fatalf("defaults not mirrored: %+v", fp)
	}
	if fp.ShardIndex != 1 || fp.Shards != 3 || fp.Seed != 7 {
		t.Fatalf("slot identity wrong: %+v", fp)
	}
	if fps[0].TargetsDigest == "" || fps[0].TargetsDigest != fps[2].TargetsDigest {
		t.Fatalf("digest should be shared and non-empty: %q vs %q",
			fps[0].TargetsDigest, fps[2].TargetsDigest)
	}
}

// TestShardHandoffFingerprintGate is the satellite-3 contract at the
// coordinator layer: a reclaimed shard's checkpoint is adopted only
// when (seed, shards, shard-index, probe, ports) match the fleet's
// expected slot fingerprint; any drift hard-fails the fleet with
// ErrFingerprintMismatch before a worker is ever spawned.
func TestShardHandoffFingerprintGate(t *testing.T) {
	spec := ScanSpec{Ranges: []string{"10.9.0.0/24"}, Seed: 11}
	fps, err := spec.Fingerprints(1)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*checkpoint.Fingerprint){
		"seed":   func(f *checkpoint.Fingerprint) { f.Seed = 999 },
		"shards": func(f *checkpoint.Fingerprint) { f.Shards = 4 },
		"index":  func(f *checkpoint.Fingerprint) { f.ShardIndex = 2 },
		"probe":  func(f *checkpoint.Fingerprint) { f.ProbeModule = "icmp_echoscan" },
		"ports":  func(f *checkpoint.Fingerprint) { f.Ports = "443" },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			paths := PathsFor(dir, 0, 1, "text")
			if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
				t.Fatal(err)
			}
			fp := fps[0]
			mutate(&fp)
			snap := &checkpoint.Snapshot{
				Tool: "zmapgo", WrittenAt: time.Now(), Phase: "send",
				Progress: []uint64{5}, Fingerprint: fp,
			}
			if err := checkpoint.Save(paths.Checkpoint, snap); err != nil {
				t.Fatal(err)
			}
			_, err := Run(context.Background(), Config{
				Workers: 1, Dir: dir, Scan: spec,
				Binary: "/bin/false", // must never be reached
			})
			if !errors.Is(err, ErrFingerprintMismatch) {
				t.Fatalf("mutated %s: Run returned %v, want ErrFingerprintMismatch", name, err)
			}
		})
	}

	// Control: the unmutated fingerprint passes the gate — the run
	// proceeds to spawn (and fails differently, on the stub binary).
	dir := t.TempDir()
	paths := PathsFor(dir, 0, 1, "text")
	if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	snap := &checkpoint.Snapshot{
		Tool: "zmapgo", WrittenAt: time.Now(), Phase: "send",
		Progress: []uint64{5}, Fingerprint: fps[0],
	}
	if err := checkpoint.Save(paths.Checkpoint, snap); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Config{
		Workers: 1, Dir: dir, Scan: spec,
		Binary:         "/bin/false",
		MaxRespawns:    -1, // first crash is fatal: keeps the test fast
		RespawnBackoff: time.Millisecond,
	})
	if err == nil || errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("control run: %v (fingerprint gate misfired)", err)
	}
	if !errors.Is(err, ErrRespawnsExhausted) {
		t.Fatalf("control run failed for an unexpected reason: %v", err)
	}
}

func TestRateFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rate.pps")
	if got := ReadRateFile(path); got != 0 {
		t.Fatalf("missing file read as %g", got)
	}
	if err := writeRateFile(path, 12500.5); err != nil {
		t.Fatal(err)
	}
	if got := ReadRateFile(path); got != 12500.5 {
		t.Fatalf("round trip: %g", got)
	}
	os.WriteFile(path, []byte("not-a-number\n"), 0o644)
	if got := ReadRateFile(path); got != 0 {
		t.Fatalf("garbage read as %g", got)
	}
}

// TestLeaseGateRejectsForeignLease: a lease file from a different scan
// configuration stops the fleet before any supervision starts.
func TestLeaseGateRejectsForeignLease(t *testing.T) {
	spec := ScanSpec{Ranges: []string{"10.9.0.0/24"}, Seed: 11}
	fps, err := spec.Fingerprints(1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := PathsFor(dir, 0, 1, "text")
	if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	foreign := fps[0]
	foreign.Seed = 555
	now := time.Now()
	lease := &checkpoint.Lease{
		FleetID: "other", ShardIndex: 0, Epoch: 4, OwnerPID: 1,
		WorkerID: "shard-0.epoch-4", State: checkpoint.LeaseRunning,
		GrantedAt: now, RenewedAt: now, TTLSecs: 1, Fingerprint: foreign,
	}
	if err := checkpoint.SaveLease(paths.Lease, lease); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Config{
		Workers: 1, Dir: dir, Scan: spec, Binary: "/bin/false",
	})
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("foreign lease accepted: %v", err)
	}
}
