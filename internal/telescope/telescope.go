// Package telescope reimplements the measurement pipeline behind §2 of
// "Ten Years of ZMap": a network telescope (the ORION substitute) that
// collects unsolicited probe traffic, groups it into scan sessions using
// the same methodology as Durumeric et al. 2014 and Anand et al. 2023
// (a source counts as a scanner once it targets at least ten distinct
// destination IPs), and fingerprints the scanning tool per session.
//
// Tool fingerprints follow the published heuristics:
//
//   - ZMap: every packet carries the static IP ID 54321. Forks that
//     remove the ID — and modern ZMap's random per-probe IDs — are NOT
//     attributed, exactly as the paper cautions, so measured ZMap share
//     is a floor.
//   - Masscan: the IP ID equals (dstIP ⊕ dstPort ⊕ tcpSeq) & 0xFFFF,
//     masscan's documented stateless cookie.
//   - Everything else is "unknown".
//
// Reports aggregate by packet (the unit Figures 1–4 use): tool share per
// period, top ports overall and per tool, and per-country tool shares via
// a caller-supplied geolocation function.
package telescope

import (
	"sort"
)

// Tool is a fingerprinted scanner implementation.
type Tool string

// Fingerprint outcomes.
const (
	ToolZMap    Tool = "zmap"
	ToolMasscan Tool = "masscan"
	ToolUnknown Tool = "unknown"
)

// Packet is one unsolicited probe observed by the telescope. Period is an
// arbitrary bucketing label (e.g. "2024Q1").
type Packet struct {
	Period  string
	SrcIP   uint32
	DstIP   uint32
	DstPort uint16
	IPID    uint16
	TCPSeq  uint32
}

// MasscanIPID returns masscan's stateless IP ID cookie for a flow.
func MasscanIPID(dstIP uint32, dstPort uint16, seq uint32) uint16 {
	return uint16(dstIP) ^ dstPort ^ uint16(seq) ^ uint16(dstIP>>16) ^ uint16(seq>>16)
}

// ZMapIPID is the classic static identifier.
const ZMapIPID = 54321

// ScanSessionThreshold is the minimum distinct destination IPs for a
// source to be counted as a scanner (ORION methodology).
const ScanSessionThreshold = 10

// session accumulates per (source, period) state during ingestion.
type session struct {
	period      string
	srcIP       uint32
	packets     uint64
	portPackets map[uint16]uint64
	distinctDst map[uint32]struct{} // capped at threshold
	allZMap     bool
	allMasscan  bool
}

// Telescope ingests packets and produces aggregated reports. Not safe for
// concurrent use; feed it from one goroutine like a capture loop would.
type Telescope struct {
	sessions map[sessionKey]*session
}

type sessionKey struct {
	period string
	srcIP  uint32
}

// New returns an empty telescope.
func New() *Telescope {
	return &Telescope{sessions: make(map[sessionKey]*session)}
}

// Ingest records one observed packet.
func (t *Telescope) Ingest(p Packet) {
	k := sessionKey{p.Period, p.SrcIP}
	s := t.sessions[k]
	if s == nil {
		s = &session{
			period:      p.Period,
			srcIP:       p.SrcIP,
			portPackets: make(map[uint16]uint64),
			distinctDst: make(map[uint32]struct{}, ScanSessionThreshold),
			allZMap:     true,
			allMasscan:  true,
		}
		t.sessions[k] = s
	}
	s.packets++
	s.portPackets[p.DstPort]++
	if len(s.distinctDst) < ScanSessionThreshold {
		s.distinctDst[p.DstIP] = struct{}{}
	}
	if p.IPID != ZMapIPID {
		s.allZMap = false
	}
	if p.IPID != MasscanIPID(p.DstIP, p.DstPort, p.TCPSeq) {
		s.allMasscan = false
	}
}

// tool classifies a finished session.
func (s *session) tool() Tool {
	switch {
	case s.allZMap:
		return ToolZMap
	case s.allMasscan:
		return ToolMasscan
	default:
		return ToolUnknown
	}
}

// isScan applies the >= 10 distinct destinations rule.
func (s *session) isScan() bool { return len(s.distinctDst) >= ScanSessionThreshold }

// Session is a finalized scan session.
type Session struct {
	Period      string
	SrcIP       uint32
	Tool        Tool
	Packets     uint64
	PortPackets map[uint16]uint64
}

// Sessions returns all scan sessions (sources meeting the threshold),
// in unspecified order.
func (t *Telescope) Sessions() []Session {
	out := make([]Session, 0, len(t.sessions))
	for _, s := range t.sessions {
		if !s.isScan() {
			continue
		}
		out = append(out, Session{
			Period:      s.period,
			SrcIP:       s.srcIP,
			Tool:        s.tool(),
			Packets:     s.packets,
			PortPackets: s.portPackets,
		})
	}
	return out
}

// DiscardedSources counts sources that never met the scan threshold
// (background radiation, misconfigurations).
func (t *Telescope) DiscardedSources() int {
	n := 0
	for _, s := range t.sessions {
		if !s.isScan() {
			n++
		}
	}
	return n
}

// ToolShare is a packet-weighted tool breakdown.
type ToolShare struct {
	Total   uint64
	Packets map[Tool]uint64
}

// Share returns the fraction of packets attributed to tool.
func (ts ToolShare) Share(tool Tool) float64 {
	if ts.Total == 0 {
		return 0
	}
	return float64(ts.Packets[tool]) / float64(ts.Total)
}

// ShareByPeriod computes Figure 1: per-period packet counts by tool.
func (t *Telescope) ShareByPeriod() map[string]ToolShare {
	out := make(map[string]ToolShare)
	for _, s := range t.Sessions() {
		ts, ok := out[s.Period]
		if !ok {
			ts = ToolShare{Packets: make(map[Tool]uint64)}
		}
		ts.Total += s.Packets
		ts.Packets[s.Tool] += s.Packets
		out[s.Period] = ts
	}
	return out
}

// PortCount pairs a port with a packet count and the ZMap-attributed
// fraction of that port's traffic.
type PortCount struct {
	Port      uint16
	Packets   uint64
	ZMapShare float64
}

// TopPorts computes Figures 2 and 3: the n ports with the most scan
// packets. If tool is non-empty, only sessions fingerprinted as that tool
// contribute to the ranking (Figure 3 uses ToolZMap); the ZMapShare field
// is always computed against all traffic on the port.
func (t *Telescope) TopPorts(n int, tool Tool) []PortCount {
	byPort := make(map[uint16]uint64)
	zmapByPort := make(map[uint16]uint64)
	totalByPort := make(map[uint16]uint64)
	for _, s := range t.Sessions() {
		for port, pkts := range s.PortPackets {
			totalByPort[port] += pkts
			if s.Tool == ToolZMap {
				zmapByPort[port] += pkts
			}
			if tool == "" || s.Tool == tool {
				byPort[port] += pkts
			}
		}
	}
	out := make([]PortCount, 0, len(byPort))
	for port, pkts := range byPort {
		share := 0.0
		if totalByPort[port] > 0 {
			share = float64(zmapByPort[port]) / float64(totalByPort[port])
		}
		out = append(out, PortCount{Port: port, Packets: pkts, ZMapShare: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Port < out[j].Port
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ZMapShareForPort returns the ZMap-attributed fraction of packets
// targeting port (the §2.1 per-port numbers: 69% of TCP/80, 99.5% of
// TCP/8728, ...).
func (t *Telescope) ZMapShareForPort(port uint16) float64 {
	var total, zmap uint64
	for _, s := range t.Sessions() {
		pkts := s.PortPackets[port]
		total += pkts
		if s.Tool == ToolZMap {
			zmap += pkts
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zmap) / float64(total)
}

// CountryShare computes Figure 4: per-country packet counts by tool,
// using the supplied geolocation function.
func (t *Telescope) CountryShare(geo func(uint32) string) map[string]ToolShare {
	out := make(map[string]ToolShare)
	for _, s := range t.Sessions() {
		c := geo(s.SrcIP)
		ts, ok := out[c]
		if !ok {
			ts = ToolShare{Packets: make(map[Tool]uint64)}
		}
		ts.Total += s.Packets
		ts.Packets[s.Tool] += s.Packets
		out[c] = ts
	}
	return out
}
