package telescope

import (
	"math/rand"
	"testing"
)

func zmapPacket(period string, src, dst uint32, port uint16) Packet {
	return Packet{Period: period, SrcIP: src, DstIP: dst, DstPort: port, IPID: ZMapIPID, TCPSeq: 1}
}

func masscanPacket(period string, src, dst uint32, port uint16, seq uint32) Packet {
	return Packet{Period: period, SrcIP: src, DstIP: dst, DstPort: port, IPID: MasscanIPID(dst, port, seq), TCPSeq: seq}
}

func TestScanSessionThreshold(t *testing.T) {
	tel := New()
	// Source A hits 9 distinct IPs: not a scan.
	for i := uint32(0); i < 9; i++ {
		tel.Ingest(zmapPacket("q", 1, i, 80))
	}
	// Source B hits 10 distinct IPs: a scan.
	for i := uint32(0); i < 10; i++ {
		tel.Ingest(zmapPacket("q", 2, i, 80))
	}
	sessions := tel.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	if sessions[0].SrcIP != 2 {
		t.Error("wrong source promoted to scan")
	}
	if tel.DiscardedSources() != 1 {
		t.Errorf("discarded = %d, want 1", tel.DiscardedSources())
	}
}

func TestRepeatDestinationsDoNotCount(t *testing.T) {
	tel := New()
	// 100 packets to the same 3 destinations: never a scan.
	for i := 0; i < 100; i++ {
		tel.Ingest(zmapPacket("q", 7, uint32(i%3), 80))
	}
	if len(tel.Sessions()) != 0 {
		t.Error("3-destination source counted as scan")
	}
}

func TestZMapFingerprint(t *testing.T) {
	tel := New()
	for i := uint32(0); i < 20; i++ {
		tel.Ingest(zmapPacket("q", 5, i, 443))
	}
	s := tel.Sessions()
	if len(s) != 1 || s[0].Tool != ToolZMap {
		t.Fatalf("sessions %+v, want one zmap", s)
	}
	if s[0].Packets != 20 || s[0].PortPackets[443] != 20 {
		t.Error("packet counting wrong")
	}
}

func TestZMapFingerprintBrokenByOneDeviation(t *testing.T) {
	// A fork that randomizes even a single IP ID is not attributed.
	tel := New()
	for i := uint32(0); i < 19; i++ {
		tel.Ingest(zmapPacket("q", 5, i, 443))
	}
	tel.Ingest(Packet{Period: "q", SrcIP: 5, DstIP: 99, DstPort: 443, IPID: 1234, TCPSeq: 1})
	s := tel.Sessions()
	if len(s) != 1 || s[0].Tool != ToolUnknown {
		t.Fatalf("deviating session classified as %v, want unknown", s[0].Tool)
	}
}

func TestMasscanFingerprint(t *testing.T) {
	tel := New()
	rng := rand.New(rand.NewSource(1))
	for i := uint32(0); i < 30; i++ {
		tel.Ingest(masscanPacket("q", 6, rng.Uint32(), 80, rng.Uint32()))
	}
	s := tel.Sessions()
	if len(s) != 1 || s[0].Tool != ToolMasscan {
		t.Fatalf("masscan session classified as %v", s[0].Tool)
	}
}

func TestUnknownFingerprint(t *testing.T) {
	tel := New()
	rng := rand.New(rand.NewSource(2))
	for i := uint32(0); i < 30; i++ {
		tel.Ingest(Packet{
			Period: "q", SrcIP: 8, DstIP: rng.Uint32(), DstPort: 80,
			IPID: uint16(rng.Intn(65000)), TCPSeq: rng.Uint32(),
		})
	}
	s := tel.Sessions()
	if len(s) != 1 || s[0].Tool != ToolUnknown {
		t.Fatalf("random-ipid session classified as %v", s[0].Tool)
	}
}

func TestShareByPeriod(t *testing.T) {
	tel := New()
	for i := uint32(0); i < 30; i++ {
		tel.Ingest(zmapPacket("2024Q1", 1, i, 80))
	}
	rng := rand.New(rand.NewSource(3))
	for i := uint32(0); i < 70; i++ {
		tel.Ingest(Packet{Period: "2024Q1", SrcIP: 2, DstIP: i, DstPort: 23,
			IPID: uint16(rng.Intn(50000)), TCPSeq: 1})
	}
	shares := tel.ShareByPeriod()
	q := shares["2024Q1"]
	if q.Total != 100 {
		t.Fatalf("total = %d", q.Total)
	}
	if got := q.Share(ToolZMap); got != 0.30 {
		t.Errorf("zmap share = %f, want 0.30", got)
	}
	if got := q.Share(ToolUnknown); got != 0.70 {
		t.Errorf("unknown share = %f, want 0.70", got)
	}
}

func TestTopPortsAndPerPortShare(t *testing.T) {
	tel := New()
	// ZMap source: 60 packets on 80, 40 on 8080.
	for i := uint32(0); i < 60; i++ {
		tel.Ingest(zmapPacket("q", 1, i, 80))
	}
	for i := uint32(0); i < 40; i++ {
		tel.Ingest(zmapPacket("q", 1, i, 8080))
	}
	// Unknown source: 100 packets on 23, 20 on 80.
	rng := rand.New(rand.NewSource(4))
	for i := uint32(0); i < 100; i++ {
		tel.Ingest(Packet{Period: "q", SrcIP: 2, DstIP: i, DstPort: 23, IPID: uint16(rng.Intn(50000))})
	}
	for i := uint32(0); i < 20; i++ {
		tel.Ingest(Packet{Period: "q", SrcIP: 2, DstIP: i, DstPort: 80, IPID: uint16(rng.Intn(50000))})
	}
	all := tel.TopPorts(10, "")
	if all[0].Port != 23 || all[0].Packets != 100 {
		t.Errorf("top port %+v, want 23/100", all[0])
	}
	if all[1].Port != 80 || all[1].Packets != 80 {
		t.Errorf("second port %+v, want 80/80", all[1])
	}
	zmapOnly := tel.TopPorts(10, ToolZMap)
	if zmapOnly[0].Port != 80 || zmapOnly[0].Packets != 60 {
		t.Errorf("zmap top port %+v, want 80/60", zmapOnly[0])
	}
	if got := tel.ZMapShareForPort(80); got != 0.75 {
		t.Errorf("zmap share of port 80 = %f, want 0.75", got)
	}
	if got := tel.ZMapShareForPort(8080); got != 1.0 {
		t.Errorf("zmap share of 8080 = %f, want 1.0", got)
	}
	if got := tel.ZMapShareForPort(23); got != 0 {
		t.Errorf("zmap share of 23 = %f, want 0", got)
	}
	if tel.ZMapShareForPort(9999) != 0 {
		t.Error("untargeted port share should be 0")
	}
}

func TestTopPortsLimit(t *testing.T) {
	tel := New()
	for p := uint16(1); p <= 20; p++ {
		for i := uint32(0); i < 15; i++ {
			tel.Ingest(zmapPacket("q", uint32(p), i, p))
		}
	}
	if got := len(tel.TopPorts(5, "")); got != 5 {
		t.Errorf("TopPorts(5) returned %d", got)
	}
	if got := len(tel.TopPorts(0, "")); got != 20 {
		t.Errorf("TopPorts(0) returned %d, want all", got)
	}
}

func TestCountryShare(t *testing.T) {
	tel := New()
	for i := uint32(0); i < 50; i++ {
		tel.Ingest(zmapPacket("q", 0x08000001, i, 80)) // "US" block
	}
	rng := rand.New(rand.NewSource(5))
	for i := uint32(0); i < 50; i++ {
		tel.Ingest(Packet{Period: "q", SrcIP: 0x0A000001, DstIP: i, DstPort: 80,
			IPID: uint16(rng.Intn(50000))})
	}
	geo := func(ip uint32) string {
		if ip>>24 == 8 {
			return "US"
		}
		return "RU"
	}
	byCountry := tel.CountryShare(geo)
	if byCountry["US"].Share(ToolZMap) != 1.0 {
		t.Errorf("US zmap share = %f", byCountry["US"].Share(ToolZMap))
	}
	if byCountry["RU"].Share(ToolZMap) != 0 {
		t.Errorf("RU zmap share = %f", byCountry["RU"].Share(ToolZMap))
	}
}

func TestToolShareEmpty(t *testing.T) {
	var ts ToolShare
	if ts.Share(ToolZMap) != 0 {
		t.Error("empty share should be 0")
	}
}

func TestMasscanIPIDSymmetry(t *testing.T) {
	// Cookie must depend on all three inputs.
	base := MasscanIPID(1, 2, 3)
	if MasscanIPID(2, 2, 3) == base && MasscanIPID(1<<16, 2, 3) == base {
		t.Error("cookie ignores dst ip")
	}
	if MasscanIPID(1, 3, 3) == base {
		t.Error("cookie ignores dst port")
	}
	if MasscanIPID(1, 2, 4) == base && MasscanIPID(1, 2, 3|1<<16) == base {
		t.Error("cookie ignores seq")
	}
}

func BenchmarkIngest(b *testing.B) {
	tel := New()
	for i := 0; i < b.N; i++ {
		tel.Ingest(Packet{
			Period: "q", SrcIP: uint32(i % 1000), DstIP: uint32(i),
			DstPort: uint16(i % 7), IPID: ZMapIPID,
		})
	}
}
