package probe

import (
	"zmapgo/internal/packet"
)

// SYNACKScan is the tcp_synackscan module: it sends unsolicited SYN-ACK
// segments and classifies the RSTs compliant stacks return. Researchers
// use it for liveness measurement that is robust to SYN-specific
// filtering, and for studying backscatter; notably, stateless
// SYN-responder middleboxes stay silent to it, so its view complements
// tcp_synscan's.
type SYNACKScan struct{}

func init() {
	Register(SYNACKScan{})
}

// Name implements Module.
func (SYNACKScan) Name() string { return "tcp_synackscan" }

// synAckAck derives the acknowledgment number carried in the probe; a
// compliant host's RST echoes it as its sequence number (RFC 9293
// "If the ACK bit is on, <SEQ=SEG.ACK><CTL=RST>").
func synAckAck(ctx *Context, ip uint32, port uint16) uint32 {
	return uint32(ctx.Validator.Compute(ctx.SrcIP, ip, port) >> 32)
}

// MakeProbe implements Module.
func (SYNACKScan) MakeProbe(buf []byte, ctx *Context, ip uint32, port uint16) ([]byte, error) {
	sport := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, ip, port)
	buf = packet.AppendEthernet(buf, ctx.SrcMAC, ctx.GwMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       ctx.ipID(ip, port),
		DontFrag: true,
		TTL:      ctx.TTL,
		Protocol: packet.ProtocolTCP,
		Src:      ctx.SrcIP,
		Dst:      ip,
	}, packet.TCPHeaderLen)
	return packet.AppendTCP(buf, packet.TCP{
		SrcPort: sport,
		DstPort: port,
		Seq:     ctx.Validator.TCPSeq(ctx.SrcIP, ip, port),
		Ack:     synAckAck(ctx, ip, port),
		Flags:   packet.FlagSYN | packet.FlagACK,
		Window:  65535,
	}, ctx.SrcIP, ip, nil)
}

// Classify implements Module: a valid response is a RST whose sequence
// number equals the probe's acknowledgment number.
func (SYNACKScan) Classify(ctx *Context, f *packet.Frame) (Result, bool) {
	if f.TCP == nil || f.IP.Dst != ctx.SrcIP {
		return Result{}, false
	}
	if f.TCP.Flags&packet.FlagRST == 0 {
		return Result{}, false
	}
	ip := f.IP.Src
	port := f.TCP.SrcPort
	if f.TCP.Seq != synAckAck(ctx, ip, port) {
		return Result{}, false
	}
	wantSport := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, ip, port)
	if f.TCP.DstPort != wantSport {
		return Result{}, false
	}
	// A RST to an unsolicited SYN-ACK demonstrates a live stack, which
	// is the success condition for this module.
	return Result{IP: ip, Port: port, Class: "rst", Success: true, TTL: f.IP.TTL}, true
}

// ProbeLen implements Module.
func (SYNACKScan) ProbeLen(_ *Context) int {
	return packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.TCPHeaderLen
}
