// Package probe implements ZMap's probe modules: the pluggable pairs of
// (packet constructor, response classifier) that define what a scan sends
// and what counts as a response. The module system survives from the
// original architecture; the lesson recorded in §5 is that probe modules
// were worth keeping while output modules for specific databases were not.
//
// Three modules match upstream ZMap's most-used set:
//
//   - tcp_synscan: SYN probes, classifying SYN-ACK (success) and RST.
//   - icmp_echoscan: echo requests, classifying echo replies.
//   - udp: a payload probe, classifying UDP replies and ICMP unreachable.
//
// Modules are stateless; all mutable probe fields are derived from the
// scan's Validator so responses can be verified without per-probe state.
package probe

import (
	"fmt"
	"sort"

	"zmapgo/internal/packet"
	"zmapgo/internal/validate"
)

// Context carries the per-scan parameters modules need to build and
// validate probes. One Context is shared by all send threads; it is
// immutable after scan start.
type Context struct {
	SrcIP  uint32
	SrcMAC packet.MAC
	GwMAC  packet.MAC

	Validator *validate.Validator

	// SourcePortBase/Count define the source port range; the port for a
	// flow is chosen deterministically by the Validator.
	SourcePortBase  uint16
	SourcePortCount uint16

	// Options selects the TCP option layout for SYN probes (Figure 7).
	Options packet.OptionLayout

	// RandomIPID uses a per-probe pseudorandom IP ID instead of ZMap's
	// classic static 54321 (the 2024 default change, §4.3).
	RandomIPID bool

	// TTL for outgoing probes.
	TTL byte

	// TimestampValue seeds the TCP timestamp option.
	TimestampValue uint32
}

func (c *Context) ipID(ip uint32, port uint16) uint16 {
	if c.RandomIPID {
		return uint16(c.Validator.Compute(c.SrcIP, ip, port) >> 40)
	}
	return packet.ZMapIPID
}

// Result is a classified response.
type Result struct {
	// IP is the responding address; Port the scanned port (0 for ICMP).
	IP   uint32
	Port uint16
	// Class is the response class ("synack", "rst", "echoreply",
	// "udp", "port-unreach").
	Class string
	// Success marks classes that indicate an open service.
	Success bool
	// TTL observed on the response.
	TTL byte
}

// Module builds probes for targets and classifies responses.
type Module interface {
	// Name is the registry key (e.g. "tcp_synscan").
	Name() string
	// MakeProbe appends a complete Ethernet frame probing (ip, port). A
	// non-nil error means the frame could not be built (e.g. a malformed
	// option layout); the engine counts and skips such probes rather
	// than sending a partial frame.
	MakeProbe(buf []byte, ctx *Context, ip uint32, port uint16) ([]byte, error)
	// Classify validates a parsed inbound frame against the scan
	// context. ok is false for frames that are not valid responses to
	// this scan (wrong validation bytes, irrelevant traffic).
	Classify(ctx *Context, f *packet.Frame) (Result, bool)
	// ProbeLen returns the probe frame length (for bandwidth math).
	ProbeLen(ctx *Context) int
}

var registry = map[string]Module{}

// Register adds a module; it panics on duplicates (a packaging error).
func Register(m Module) {
	if _, dup := registry[m.Name()]; dup {
		panic("probe: duplicate module " + m.Name())
	}
	registry[m.Name()] = m
}

// Lookup returns the module with the given name.
func Lookup(name string) (Module, error) {
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("probe: unknown module %q (have %v)", name, Names())
	}
	return m, nil
}

// Names lists registered modules, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(SYNScan{})
	Register(ICMPEchoScan{})
	Register(UDPScan{})
}

// SYNScan is the flagship tcp_synscan module.
type SYNScan struct{}

// Name implements Module.
func (SYNScan) Name() string { return "tcp_synscan" }

// MakeProbe implements Module.
func (SYNScan) MakeProbe(buf []byte, ctx *Context, ip uint32, port uint16) ([]byte, error) {
	opts := packet.BuildOptions(ctx.Options, ctx.TimestampValue)
	sport := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, ip, port)
	buf = packet.AppendEthernet(buf, ctx.SrcMAC, ctx.GwMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       ctx.ipID(ip, port),
		DontFrag: true,
		TTL:      ctx.TTL,
		Protocol: packet.ProtocolTCP,
		Src:      ctx.SrcIP,
		Dst:      ip,
	}, packet.TCPHeaderLen+len(opts))
	return packet.AppendTCP(buf, packet.TCP{
		SrcPort: sport,
		DstPort: port,
		Seq:     ctx.Validator.TCPSeq(ctx.SrcIP, ip, port),
		Flags:   packet.FlagSYN,
		Window:  65535,
		Options: opts,
	}, ctx.SrcIP, ip, nil)
}

// Classify implements Module.
func (SYNScan) Classify(ctx *Context, f *packet.Frame) (Result, bool) {
	if f.TCP == nil || f.IP.Dst != ctx.SrcIP {
		return Result{}, false
	}
	ip := f.IP.Src
	port := f.TCP.SrcPort // responder's source port is the scanned port
	isRST := f.TCP.Flags&packet.FlagRST != 0
	if !ctx.Validator.TCPAckValid(ctx.SrcIP, ip, port, f.TCP.Ack, isRST) {
		return Result{}, false
	}
	wantSport := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, ip, port)
	if f.TCP.DstPort != wantSport {
		return Result{}, false
	}
	r := Result{IP: ip, Port: port, TTL: f.IP.TTL}
	switch {
	case f.TCP.Flags&packet.FlagSYN != 0 && f.TCP.Flags&packet.FlagACK != 0:
		r.Class, r.Success = "synack", true
	case isRST:
		r.Class, r.Success = "rst", false
	default:
		return Result{}, false
	}
	return r, true
}

// ProbeLen implements Module.
func (SYNScan) ProbeLen(ctx *Context) int { return packet.SYNFrameLen(ctx.Options) }

// ICMPEchoScan is the icmp_echoscan module. Ports are ignored.
type ICMPEchoScan struct{}

// Name implements Module.
func (ICMPEchoScan) Name() string { return "icmp_echoscan" }

// MakeProbe implements Module.
func (ICMPEchoScan) MakeProbe(buf []byte, ctx *Context, ip uint32, _ uint16) ([]byte, error) {
	id, seq := ctx.Validator.ICMPIDSeq(ctx.SrcIP, ip)
	buf = packet.AppendEthernet(buf, ctx.SrcMAC, ctx.GwMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       ctx.ipID(ip, 0),
		DontFrag: true,
		TTL:      ctx.TTL,
		Protocol: packet.ProtocolICMP,
		Src:      ctx.SrcIP,
		Dst:      ip,
	}, packet.ICMPHeaderLen)
	return packet.AppendICMPEcho(buf, packet.ICMPEchoRequest, id, seq, nil), nil
}

// Classify implements Module.
func (ICMPEchoScan) Classify(ctx *Context, f *packet.Frame) (Result, bool) {
	if f.ICMP == nil || f.IP.Dst != ctx.SrcIP || f.ICMP.Type != packet.ICMPEchoReply {
		return Result{}, false
	}
	ip := f.IP.Src
	id, seq := ctx.Validator.ICMPIDSeq(ctx.SrcIP, ip)
	if f.ICMP.ID != id || f.ICMP.Seq != seq {
		return Result{}, false
	}
	return Result{IP: ip, Class: "echoreply", Success: true, TTL: f.IP.TTL}, true
}

// ProbeLen implements Module.
func (ICMPEchoScan) ProbeLen(_ *Context) int {
	return packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.ICMPHeaderLen
}

// UDPScan is a minimal udp module with a fixed payload.
type UDPScan struct{}

// Name implements Module.
func (UDPScan) Name() string { return "udp" }

// udpPayload is the probe body; real deployments template this per
// protocol, which composes with this module unchanged.
var udpPayload = []byte("zmapgo-udp-probe")

// MakeProbe implements Module.
func (UDPScan) MakeProbe(buf []byte, ctx *Context, ip uint32, port uint16) ([]byte, error) {
	sport := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, ip, port)
	buf = packet.AppendEthernet(buf, ctx.SrcMAC, ctx.GwMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{
		ID:       ctx.ipID(ip, port),
		DontFrag: true,
		TTL:      ctx.TTL,
		Protocol: packet.ProtocolUDP,
		Src:      ctx.SrcIP,
		Dst:      ip,
	}, packet.UDPHeaderLen+len(udpPayload))
	return packet.AppendUDP(buf, sport, port, ctx.SrcIP, ip, udpPayload), nil
}

// Classify implements Module.
func (UDPScan) Classify(ctx *Context, f *packet.Frame) (Result, bool) {
	switch {
	case f.UDP != nil && f.IP.Dst == ctx.SrcIP:
		ip, port := f.IP.Src, f.UDP.SrcPort
		wantSport := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, ip, port)
		if f.UDP.DstPort != wantSport {
			return Result{}, false
		}
		return Result{IP: ip, Port: port, Class: "udp", Success: true, TTL: f.IP.TTL}, true
	case f.ICMP != nil && f.IP.Dst == ctx.SrcIP && f.ICMP.Type == packet.ICMPDestUnreach:
		// The quoted original datagram identifies the scanned target.
		q, ok := ParseUnreachQuote(f.Payload)
		if !ok || q.Proto != packet.ProtocolUDP {
			return Result{}, false
		}
		return Result{IP: q.Dst, Port: q.DstPort, Class: "port-unreach", Success: false, TTL: f.IP.TTL}, true
	default:
		return Result{}, false
	}
}

// UnreachQuote is the decoded head of the original datagram quoted in an
// ICMP destination-unreachable payload: the addresses and protocol of
// the probe that elicited the error, plus the first transport header
// words (meaningful ports only for TCP/UDP quotes).
type UnreachQuote struct {
	Src, Dst         uint32
	Proto            byte
	SrcPort, DstPort uint16
}

// ParseUnreachQuote decodes the quoted IP header + 8 bytes inside an
// ICMP unreachable payload. The bytes are attacker-controlled — any
// host on the Internet can mail the scanner an ICMP error — so every
// offset is bounds checked and garbage quotes are rejected. Callers
// must further validate that Src is the scanner's own address before
// acting on the quote (otherwise spoofed errors could, e.g., drive an
// adaptive rate controller down).
func ParseUnreachQuote(quote []byte) (UnreachQuote, bool) {
	if len(quote) < packet.IPv4HeaderLen+8 {
		return UnreachQuote{}, false
	}
	if quote[0]>>4 != 4 {
		return UnreachQuote{}, false
	}
	ihl := int(quote[0]&0x0F) * 4
	if ihl < packet.IPv4HeaderLen || len(quote) < ihl+4 {
		return UnreachQuote{}, false
	}
	q := UnreachQuote{
		Src: uint32(quote[12])<<24 | uint32(quote[13])<<16 | uint32(quote[14])<<8 | uint32(quote[15]),
		Dst: uint32(quote[16])<<24 | uint32(quote[17])<<16 | uint32(quote[18])<<8 | uint32(quote[19]),

		Proto:   quote[9],
		SrcPort: uint16(quote[ihl])<<8 | uint16(quote[ihl+1]),
		DstPort: uint16(quote[ihl+2])<<8 | uint16(quote[ihl+3]),
	}
	return q, true
}

// ProbeLen implements Module.
func (UDPScan) ProbeLen(_ *Context) int {
	return packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + len(udpPayload)
}
