package probe

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"zmapgo/internal/packet"
	"zmapgo/internal/validate"
)

func templateTestContext(t testing.TB, layout packet.OptionLayout, randomIPID bool, sportCount uint16) *Context {
	t.Helper()
	var key [validate.KeySize]byte
	copy(key[:], "template-equivalence-test-key-00")
	return &Context{
		SrcIP:           0x0A000001,
		SrcMAC:          packet.MAC{2, 0, 0, 0, 0, 1},
		GwMAC:           packet.MAC{2, 0, 0, 0, 0, 2},
		Validator:       validate.New(key),
		SourcePortBase:  32768,
		SourcePortCount: sportCount,
		Options:         layout,
		RandomIPID:      randomIPID,
		TTL:             packet.DefaultProbeTTL,
		TimestampValue:  0xDEADBEEF,
	}
}

// TestRenderMatchesMakeProbe is the template-equivalence property test:
// for every module, every TCP option layout, both IP ID modes, and both
// source-port range shapes, a template-rendered frame must equal the
// from-scratch MakeProbe frame byte for byte — including across slot
// reuse, where each Render starts from the previous target's bytes.
func TestRenderMatchesMakeProbe(t *testing.T) {
	modules := []Module{SYNScan{}, SYNACKScan{}, ICMPEchoScan{}, UDPScan{}}
	for _, m := range modules {
		layouts := []packet.OptionLayout{packet.LayoutNone}
		if (m.Name()) == "tcp_synscan" {
			layouts = packet.AllOptionLayouts()
		}
		for _, layout := range layouts {
			for _, randomIPID := range []bool{false, true} {
				for _, sportCount := range []uint16{1, 256} {
					name := fmt.Sprintf("%s/%v/random_ipid=%v/sports=%d", m.Name(), layout, randomIPID, sportCount)
					t.Run(name, func(t *testing.T) {
						ctx := templateTestContext(t, layout, randomIPID, sportCount)
						tm, ok := m.(Templater)
						if !ok {
							t.Fatalf("%s does not implement Templater", m.Name())
						}
						r, err := tm.MakeTemplate(ctx)
						if err != nil {
							t.Fatalf("MakeTemplate: %v", err)
						}
						if r.Len() != m.ProbeLen(ctx) {
							t.Fatalf("Len %d != ProbeLen %d", r.Len(), m.ProbeLen(ctx))
						}
						frame := make([]byte, r.Len())
						r.Seed(frame)
						rng := rand.New(rand.NewSource(int64(layout)<<8 | int64(sportCount)))
						for i := 0; i < 256; i++ {
							ip := rng.Uint32()
							port := uint16(rng.Uint32())
							if i == 0 {
								ip, port = 0xFFFFFFFF, 0xFFFF
							}
							r.Render(frame, ip, port)
							want, err := m.MakeProbe(nil, ctx, ip, port)
							if err != nil {
								t.Fatalf("MakeProbe(%#x, %d): %v", ip, port, err)
							}
							if !bytes.Equal(frame, want) {
								t.Fatalf("target %d (%#x:%d): rendered frame differs from MakeProbe\n got %x\nwant %x",
									i, ip, port, frame, want)
							}
							if !packet.VerifyChecksums(frame) {
								t.Fatalf("target %d: invalid checksums", i)
							}
						}
					})
				}
			}
		}
	}
}

// TestRenderZeroAllocs pins the hot-path contract: rendering a probe
// into a seeded slot allocates nothing, for every module.
func TestRenderZeroAllocs(t *testing.T) {
	for _, m := range []Module{SYNScan{}, SYNACKScan{}, ICMPEchoScan{}, UDPScan{}} {
		t.Run(m.Name(), func(t *testing.T) {
			ctx := templateTestContext(t, packet.LayoutLinux, true, 256)
			r, err := m.(Templater).MakeTemplate(ctx)
			if err != nil {
				t.Fatal(err)
			}
			frame := make([]byte, r.Len())
			r.Seed(frame)
			ip := uint32(0x01000000)
			allocs := testing.AllocsPerRun(1000, func() {
				ip++
				r.Render(frame, ip, 443)
			})
			if allocs != 0 {
				t.Fatalf("Render allocates %.1f objects per call, want 0", allocs)
			}
		})
	}
}

// TestRenderedProbeClassifies closes the loop: a frame produced by the
// template path must carry validator fields the module itself accepts,
// exercised here through the synack-echo a responder would send.
func TestRenderedProbeValidatorFields(t *testing.T) {
	ctx := templateTestContext(t, packet.LayoutOptimal, true, 256)
	r, err := SYNScan{}.MakeTemplate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, r.Len())
	r.Seed(frame)
	r.Render(frame, 0x01020304, 443)
	f, err := packet.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if want := ctx.Validator.TCPSeq(ctx.SrcIP, 0x01020304, 443); f.TCP.Seq != want {
		t.Fatalf("rendered seq %#x != validator %#x", f.TCP.Seq, want)
	}
	if want := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, 0x01020304, 443); f.TCP.SrcPort != want {
		t.Fatalf("rendered sport %d != validator %d", f.TCP.SrcPort, want)
	}
}

func BenchmarkMakeProbe(b *testing.B) {
	ctx := templateTestContext(b, packet.LayoutLinux, true, 256)
	m := SYNScan{}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.MakeProbe(buf[:0], ctx, uint32(i), 443)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRender(b *testing.B) {
	ctx := templateTestContext(b, packet.LayoutLinux, true, 256)
	r, err := SYNScan{}.MakeTemplate(ctx)
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, r.Len())
	r.Seed(frame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Render(frame, uint32(i), 443)
	}
}
