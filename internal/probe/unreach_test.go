package probe

import (
	"testing"

	"zmapgo/internal/packet"
)

// buildQuote constructs a quoted IP header (+options) and first 8
// transport bytes the way a router quotes a dropped datagram.
func buildQuote(ihlWords int, proto byte, src, dst uint32, sport, dport uint16, trailing int) []byte {
	hdr := ihlWords * 4
	q := make([]byte, hdr+trailing)
	q[0] = 0x40 | byte(ihlWords)
	q[8] = 64
	q[9] = proto
	q[12], q[13], q[14], q[15] = byte(src>>24), byte(src>>16), byte(src>>8), byte(src)
	q[16], q[17], q[18], q[19] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	if trailing >= 2 {
		q[hdr], q[hdr+1] = byte(sport>>8), byte(sport)
	}
	if trailing >= 4 {
		q[hdr+2], q[hdr+3] = byte(dport>>8), byte(dport)
	}
	return q
}

func TestParseUnreachQuote(t *testing.T) {
	const (
		src   = uint32(0xC0000201)
		dst   = uint32(0x0A010203)
		sport = uint16(33333)
		dport = uint16(443)
	)
	valid := buildQuote(5, packet.ProtocolUDP, src, dst, sport, dport, 8)

	tests := []struct {
		name  string
		quote []byte
		want  UnreachQuote
		ok    bool
	}{
		{
			name:  "valid udp quote",
			quote: valid,
			want:  UnreachQuote{Src: src, Dst: dst, Proto: packet.ProtocolUDP, SrcPort: sport, DstPort: dport},
			ok:    true,
		},
		{
			name:  "valid tcp quote",
			quote: buildQuote(5, packet.ProtocolTCP, src, dst, sport, dport, 8),
			want:  UnreachQuote{Src: src, Dst: dst, Proto: packet.ProtocolTCP, SrcPort: sport, DstPort: dport},
			ok:    true,
		},
		{
			name:  "quote with ip options",
			quote: buildQuote(6, packet.ProtocolUDP, src, dst, sport, dport, 8),
			want:  UnreachQuote{Src: src, Dst: dst, Proto: packet.ProtocolUDP, SrcPort: sport, DstPort: dport},
			ok:    true,
		},
		{name: "empty", quote: nil},
		{name: "truncated below minimum", quote: valid[:27]},
		{name: "exactly minimum", quote: valid[:28], want: UnreachQuote{Src: src, Dst: dst, Proto: packet.ProtocolUDP, SrcPort: sport, DstPort: dport}, ok: true},
		{
			name: "version 6 nibble",
			quote: func() []byte {
				q := append([]byte(nil), valid...)
				q[0] = 0x65
				return q
			}(),
		},
		{
			name: "ihl below header minimum",
			quote: func() []byte {
				q := append([]byte(nil), valid...)
				q[0] = 0x44 // ihl=4 words: 16 bytes, impossible
				return q
			}(),
		},
		{
			// ihl claims 15 words of options in a 28-byte quote: the
			// port offsets would land out of bounds.
			name: "ihl past quote end",
			quote: func() []byte {
				q := append([]byte(nil), valid[:28]...)
				q[0] = 0x4F
				return q
			}(),
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseUnreachQuote(tc.quote)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("quote = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestUDPClassifyRejectsNonUDPQuote pins the caller-side protocol check
// that moved out of the parser: a TCP quote parses fine but must not
// classify as a UDP port-unreachable.
func TestUDPClassifyRejectsNonUDPQuote(t *testing.T) {
	ctx := testContext()
	mod, err := Lookup("udp")
	if err != nil {
		t.Fatal(err)
	}
	build := func(proto byte) *packet.Frame {
		quote := buildQuote(5, proto, ctx.SrcIP, 0x0A010203, 33333, 443, 8)
		buf := packet.AppendEthernet(nil, ctx.GwMAC, ctx.SrcMAC, packet.EtherTypeIPv4)
		buf = packet.AppendIPv4(buf, packet.IPv4{
			TTL: 64, Protocol: packet.ProtocolICMP, Src: 0x0A010203, Dst: ctx.SrcIP,
		}, packet.ICMPHeaderLen+len(quote))
		buf = packet.AppendICMPEcho(buf, packet.ICMPDestUnreach, 0, 0, quote)
		f, err := packet.Parse(buf)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if _, ok := mod.Classify(ctx, build(packet.ProtocolTCP)); ok {
		t.Fatal("udp module classified a TCP-quoting unreachable")
	}
	res, ok := mod.Classify(ctx, build(packet.ProtocolUDP))
	if !ok || res.Class != "port-unreach" || res.IP != 0x0A010203 || res.Port != 443 {
		t.Fatalf("udp quote classification = %+v, %v", res, ok)
	}
}
