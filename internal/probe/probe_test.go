package probe

import (
	"testing"

	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
	"zmapgo/internal/validate"
)

// mustProbe builds a probe frame, failing the test on a builder error
// (valid layouts never produce one).
func mustProbe(t testing.TB, m Module, buf []byte, ctx *Context, ip uint32, port uint16) []byte {
	t.Helper()
	frame, err := m.MakeProbe(buf, ctx, ip, port)
	if err != nil {
		t.Fatalf("%s.MakeProbe: %v", m.Name(), err)
	}
	return frame
}

func testContext() *Context {
	var key [validate.KeySize]byte
	key[0] = 42
	return &Context{
		SrcIP:           0xC0000201,
		SrcMAC:          packet.MAC{2, 0, 0, 0, 0, 1},
		GwMAC:           packet.MAC{2, 0, 0, 0, 0, 2},
		Validator:       validate.New(key),
		SourcePortBase:  32768,
		SourcePortCount: 64,
		Options:         packet.LayoutMSS,
		TTL:             255,
		TimestampValue:  7,
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"icmp_echoscan", "tcp_synackscan", "tcp_synscan", "udp"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		m, err := Lookup(n)
		if err != nil || m.Name() != n {
			t.Errorf("Lookup(%q) = %v, %v", n, m, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown module succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(SYNScan{})
}

func TestSYNProbeWellFormed(t *testing.T) {
	ctx := testContext()
	frame := mustProbe(t, SYNScan{}, nil, ctx, 0x08080808, 443)
	f, err := packet.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCP == nil || f.TCP.Flags != packet.FlagSYN {
		t.Fatal("not a SYN")
	}
	if f.IP.Src != ctx.SrcIP || f.IP.Dst != 0x08080808 || f.TCP.DstPort != 443 {
		t.Error("addressing wrong")
	}
	if f.IP.ID != packet.ZMapIPID {
		t.Errorf("static IP ID mode: id = %d, want %d", f.IP.ID, packet.ZMapIPID)
	}
	if f.TCP.Seq != ctx.Validator.TCPSeq(ctx.SrcIP, 0x08080808, 443) {
		t.Error("seq not derived from validator")
	}
	sport := f.TCP.SrcPort
	if sport < 32768 || sport >= 32768+64 {
		t.Errorf("source port %d outside range", sport)
	}
	if len(frame) != (SYNScan{}).ProbeLen(ctx) {
		t.Errorf("ProbeLen %d != actual %d", (SYNScan{}).ProbeLen(ctx), len(frame))
	}
	if !packet.VerifyIPv4Checksum(frame) {
		t.Error("bad IP checksum")
	}
}

func TestSYNProbeRandomIPID(t *testing.T) {
	ctx := testContext()
	ctx.RandomIPID = true
	f1, _ := packet.Parse(mustProbe(t, SYNScan{}, nil, ctx, 1, 80))
	f2, _ := packet.Parse(mustProbe(t, SYNScan{}, nil, ctx, 2, 80))
	f1b, _ := packet.Parse(mustProbe(t, SYNScan{}, nil, ctx, 1, 80))
	if f1.IP.ID == packet.ZMapIPID && f2.IP.ID == packet.ZMapIPID {
		t.Error("random IP ID mode still produced static IDs")
	}
	if f1.IP.ID != f1b.IP.ID {
		t.Error("IP ID should be stable per flow (deterministic retries)")
	}
	if f1.IP.ID == f2.IP.ID {
		t.Error("distinct flows got identical 'random' IDs (weak but suspicious)")
	}
}

// respondVia runs a probe through the simulated Internet and returns the
// first response frame, or nil.
func respondVia(t *testing.T, in *netsim.Internet, frame []byte) *packet.Frame {
	t.Helper()
	rs := in.Respond(frame)
	if len(rs) == 0 {
		return nil
	}
	f, err := packet.Parse(rs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func losslessSim(seed uint64) *netsim.Internet {
	cfg := netsim.DefaultConfig(seed)
	cfg.ProbeLoss, cfg.ResponseLoss, cfg.PathBadFraction = 0, 0, 0
	return netsim.New(cfg)
}

func TestSYNClassifyAgainstSim(t *testing.T) {
	ctx := testContext()
	in := losslessSim(50)
	mod := SYNScan{}
	opts := packet.BuildOptions(ctx.Options, ctx.TimestampValue)
	var synacks, rsts int
	for ip := uint32(0); ip < 300000 && (synacks == 0 || rsts == 0); ip++ {
		frame := mustProbe(t, mod, nil, ctx, ip, 80)
		resp := respondVia(t, in, frame)
		if resp == nil {
			continue
		}
		r, ok := mod.Classify(ctx, resp)
		if !ok {
			t.Fatalf("sim response for ip %d failed classification", ip)
		}
		if r.IP != ip || r.Port != 80 {
			t.Fatalf("classified (%d, %d), want (%d, 80)", r.IP, r.Port, ip)
		}
		switch r.Class {
		case "synack":
			if !r.Success {
				t.Error("synack must be success")
			}
			if !in.ExpectedSYNACK(ip, 80, opts) {
				t.Error("synack from host that should not have answered")
			}
			synacks++
		case "rst":
			if r.Success {
				t.Error("rst must not be success")
			}
			rsts++
		default:
			t.Fatalf("unexpected class %q", r.Class)
		}
	}
	if synacks == 0 || rsts == 0 {
		t.Fatalf("wanted both classes: synacks=%d rsts=%d", synacks, rsts)
	}
}

func TestSYNClassifyRejectsForgeries(t *testing.T) {
	ctx := testContext()
	mod := SYNScan{}
	// Forge a SYN-ACK with a wrong ack number.
	buf := packet.AppendEthernet(nil, packet.MAC{1}, ctx.SrcMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 64, Protocol: packet.ProtocolTCP, Src: 99, Dst: ctx.SrcIP}, packet.TCPHeaderLen)
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: 80,
		DstPort: ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, 99, 80),
		Ack:     12345, // not validator-derived
		Flags:   packet.FlagSYN | packet.FlagACK,
	}, 99, ctx.SrcIP, nil)
	f, _ := packet.Parse(buf)
	if _, ok := mod.Classify(ctx, f); ok {
		t.Error("forged ack accepted")
	}
	// Correct ack but wrong destination (not our scanner).
	seq := ctx.Validator.TCPSeq(ctx.SrcIP, 99, 80)
	buf2 := packet.AppendEthernet(nil, packet.MAC{1}, ctx.SrcMAC, packet.EtherTypeIPv4)
	buf2 = packet.AppendIPv4(buf2, packet.IPv4{TTL: 64, Protocol: packet.ProtocolTCP, Src: 99, Dst: 12345}, packet.TCPHeaderLen)
	buf2, _ = packet.AppendTCP(buf2, packet.TCP{
		SrcPort: 80, DstPort: 32768, Ack: seq + 1, Flags: packet.FlagSYN | packet.FlagACK,
	}, 99, 12345, nil)
	f2, _ := packet.Parse(buf2)
	if _, ok := mod.Classify(ctx, f2); ok {
		t.Error("response to another scanner accepted")
	}
	// Correct ack but wrong dst port (not our source-port range slot).
	buf3 := packet.AppendEthernet(nil, packet.MAC{1}, ctx.SrcMAC, packet.EtherTypeIPv4)
	buf3 = packet.AppendIPv4(buf3, packet.IPv4{TTL: 64, Protocol: packet.ProtocolTCP, Src: 99, Dst: ctx.SrcIP}, packet.TCPHeaderLen)
	badPort := ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, 99, 80) + 1
	buf3, _ = packet.AppendTCP(buf3, packet.TCP{
		SrcPort: 80, DstPort: badPort, Ack: seq + 1, Flags: packet.FlagSYN | packet.FlagACK,
	}, 99, ctx.SrcIP, nil)
	f3, _ := packet.Parse(buf3)
	if _, ok := mod.Classify(ctx, f3); ok {
		t.Error("wrong source-port slot accepted")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	ctx := testContext()
	in := losslessSim(51)
	mod := ICMPEchoScan{}
	replies := 0
	for ip := uint32(0); ip < 2000 && replies == 0; ip++ {
		frame := mustProbe(t, mod, nil, ctx, ip, 0)
		if len(frame) != mod.ProbeLen(ctx) {
			t.Fatalf("ProbeLen mismatch: %d != %d", len(frame), mod.ProbeLen(ctx))
		}
		resp := respondVia(t, in, frame)
		if resp == nil {
			continue
		}
		r, ok := mod.Classify(ctx, resp)
		if !ok {
			t.Fatal("valid echo reply rejected")
		}
		if r.Class != "echoreply" || !r.Success || r.IP != ip {
			t.Fatalf("bad result %+v", r)
		}
		replies++
	}
	if replies == 0 {
		t.Fatal("no echo replies in 2000 hosts at 80% echo fraction")
	}
}

func TestICMPClassifyRejectsWrongID(t *testing.T) {
	ctx := testContext()
	buf := packet.AppendEthernet(nil, packet.MAC{1}, ctx.SrcMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 64, Protocol: packet.ProtocolICMP, Src: 5, Dst: ctx.SrcIP}, packet.ICMPHeaderLen)
	buf = packet.AppendICMPEcho(buf, packet.ICMPEchoReply, 1, 1, nil)
	f, _ := packet.Parse(buf)
	if _, ok := (ICMPEchoScan{}).Classify(ctx, f); ok {
		t.Error("echo reply with wrong id/seq accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	ctx := testContext()
	in := losslessSim(52)
	mod := UDPScan{}
	var udp, unreach int
	for ip := uint32(0); ip < 3_000_000 && (udp == 0 || unreach == 0); ip++ {
		frame := mustProbe(t, mod, nil, ctx, ip, 53)
		resp := respondVia(t, in, frame)
		if resp == nil {
			continue
		}
		r, ok := mod.Classify(ctx, resp)
		if !ok {
			t.Fatal("sim UDP response rejected")
		}
		if r.IP != ip || r.Port != 53 {
			t.Fatalf("classified (%d,%d), want (%d,53)", r.IP, r.Port, ip)
		}
		switch r.Class {
		case "udp":
			if !r.Success {
				t.Error("udp reply must be success")
			}
			udp++
		case "port-unreach":
			if r.Success {
				t.Error("unreach must not be success")
			}
			unreach++
		}
	}
	if udp == 0 || unreach == 0 {
		t.Fatalf("wanted both udp and unreach: %d, %d", udp, unreach)
	}
}

func TestProbeBuildersAppendInPlace(t *testing.T) {
	// Builders must append to the provided buffer without reallocating
	// when capacity suffices — the hot-path contract.
	ctx := testContext()
	buf := make([]byte, 0, 256)
	out := mustProbe(t, SYNScan{}, buf, ctx, 1, 80)
	if &out[0] != &buf[0:1][0] {
		t.Error("SYN builder reallocated despite capacity")
	}
}

func BenchmarkSYNMakeProbe(b *testing.B) {
	ctx := testContext()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = SYNScan{}.MakeProbe(buf[:0], ctx, uint32(i), 80)
	}
	benchLen = len(buf)
}

func BenchmarkSYNClassify(b *testing.B) {
	ctx := testContext()
	in := losslessSim(53)
	var frame []byte
	for ip := uint32(0); ; ip++ {
		rs := in.Respond(mustProbe(b, SYNScan{}, nil, ctx, ip, 80))
		if len(rs) > 0 {
			frame = rs[0].Frame
			break
		}
	}
	f, _ := packet.Parse(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok := SYNScan{}.Classify(ctx, f)
		benchBool = ok
	}
}

var (
	benchLen  int
	benchBool bool
)

func TestSYNACKScanRoundTrip(t *testing.T) {
	ctx := testContext()
	in := losslessSim(54)
	mod := SYNACKScan{}
	rsts := 0
	for ip := uint32(0); ip < 3000 && rsts == 0; ip++ {
		frame := mustProbe(t, mod, nil, ctx, ip, 80)
		f, err := packet.Parse(frame)
		if err != nil {
			t.Fatal(err)
		}
		if f.TCP.Flags != packet.FlagSYN|packet.FlagACK {
			t.Fatal("probe is not a SYN-ACK")
		}
		if len(frame) != mod.ProbeLen(ctx) {
			t.Fatalf("ProbeLen %d != %d", mod.ProbeLen(ctx), len(frame))
		}
		resp := respondVia(t, in, frame)
		if resp == nil {
			continue
		}
		r, ok := mod.Classify(ctx, resp)
		if !ok {
			t.Fatal("valid backscatter RST rejected")
		}
		if r.Class != "rst" || !r.Success || r.IP != ip {
			t.Fatalf("bad result %+v", r)
		}
		if !in.Live(ip) {
			t.Fatal("RST from a dead host")
		}
		rsts++
	}
	if rsts == 0 {
		t.Fatal("no backscatter RSTs in 3000 hosts")
	}
}

func TestSYNACKScanMiddleboxSilent(t *testing.T) {
	// Middleboxes answer SYNs statelessly but not unsolicited SYN-ACKs,
	// so synackscan sees through them.
	ctx := testContext()
	in := losslessSim(55)
	var ip uint32
	found := false
	for ip = 0; ip < 50_000_000; ip += 65536 {
		if in.Middlebox(ip) && !in.Live(ip) {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no dead middlebox address sampled")
	}
	if resp := respondVia(t, in, mustProbe(t, SYNACKScan{}, nil, ctx, ip, 80)); resp != nil {
		t.Error("middlebox answered a SYN-ACK probe")
	}
	if resp := respondVia(t, in, mustProbe(t, SYNScan{}, nil, ctx, ip, 80)); resp == nil {
		t.Error("middlebox should answer the plain SYN")
	}
}

func TestSYNACKScanRejectsForgedSeq(t *testing.T) {
	ctx := testContext()
	buf := packet.AppendEthernet(nil, packet.MAC{1}, ctx.SrcMAC, packet.EtherTypeIPv4)
	buf = packet.AppendIPv4(buf, packet.IPv4{TTL: 64, Protocol: packet.ProtocolTCP, Src: 9, Dst: ctx.SrcIP}, packet.TCPHeaderLen)
	buf, _ = packet.AppendTCP(buf, packet.TCP{
		SrcPort: 80,
		DstPort: ctx.Validator.SourcePort(ctx.SourcePortBase, ctx.SourcePortCount, 9, 80),
		Seq:     12345, // not the derived ack
		Flags:   packet.FlagRST,
	}, 9, ctx.SrcIP, nil)
	f, _ := packet.Parse(buf)
	if _, ok := (SYNACKScan{}).Classify(ctx, f); ok {
		t.Error("forged RST accepted")
	}
}
