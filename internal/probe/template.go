package probe

import (
	"zmapgo/internal/packet"
	"zmapgo/internal/validate"
)

// Template rendering for the batched send path (§4.3). Instead of
// rebuilding every frame with MakeProbe, a sender thread obtains a
// Renderer once, seeds its preallocated frame ring from the template,
// and calls Render per target. Render derives the validator-bound
// fields with a zero-alloc Hasher and rewrites them in place via the
// packet.Patch* helpers, so the steady state allocates nothing.
//
// The prototype frame is built by the module's own MakeProbe, which
// guarantees the invariant bytes (MACs, TTL, option layout, flags,
// payload) are exactly what the per-probe path would emit; the
// property test in template_test.go pins byte-for-byte equivalence.

// Templater is an optional interface probe modules implement to
// support template rendering. The engine falls back to per-probe
// MakeProbe for modules that do not.
type Templater interface {
	// MakeTemplate builds a renderer for one sender thread. Renderers
	// are not safe for concurrent use (they own a validate.Hasher).
	MakeTemplate(ctx *Context) (*Renderer, error)
}

// Renderer retargets seeded probe frames for one sender thread.
type Renderer struct {
	tpl    *packet.Template
	hasher *validate.Hasher
	patch  func(r *Renderer, frame []byte, ip uint32, port uint16)

	srcIP      uint32
	sportBase  uint16
	sportCount uint16
	randomIPID bool
}

func newRenderer(m Module, ctx *Context, patch func(*Renderer, []byte, uint32, uint16)) (*Renderer, error) {
	proto, err := m.MakeProbe(nil, ctx, 0, 0)
	if err != nil {
		return nil, err
	}
	tpl, err := packet.NewTemplate(proto)
	if err != nil {
		return nil, err
	}
	return &Renderer{
		tpl:        tpl,
		hasher:     ctx.Validator.NewHasher(),
		patch:      patch,
		srcIP:      ctx.SrcIP,
		sportBase:  ctx.SourcePortBase,
		sportCount: ctx.SourcePortCount,
		randomIPID: ctx.RandomIPID,
	}, nil
}

// Len returns the frame length; every rendered frame is exactly this
// long.
func (r *Renderer) Len() int { return r.tpl.Len() }

// Seed initializes frame (of length Len) from the template. A slot
// needs seeding once; Render re-patches it from target to target.
func (r *Renderer) Seed(frame []byte) { r.tpl.Seed(frame) }

// Render retargets a seeded frame at (ip, port), deriving the
// validator-bound fields and fixing checksums incrementally. It
// allocates nothing.
func (r *Renderer) Render(frame []byte, ip uint32, port uint16) {
	r.patch(r, frame, ip, port)
}

// patchSYN mirrors SYNScan.MakeProbe. One validation word supplies
// both the sequence number and (when enabled) the random IP ID — the
// same bits MakeProbe extracts with separate computations.
func patchSYN(r *Renderer, frame []byte, ip uint32, port uint16) {
	w := r.hasher.Compute(r.srcIP, ip, port)
	ipid := uint16(packet.ZMapIPID)
	if r.randomIPID {
		ipid = uint16(w >> 40)
	}
	sport := r.hasher.SourcePort(r.sportBase, r.sportCount, ip, port)
	packet.PatchTCP(frame, ipid, ip, sport, port, uint32(w), 0)
}

// patchSYNACK mirrors SYNACKScan.MakeProbe; the acknowledgment comes
// from the upper half of the same validation word as the sequence.
func patchSYNACK(r *Renderer, frame []byte, ip uint32, port uint16) {
	w := r.hasher.Compute(r.srcIP, ip, port)
	ipid := uint16(packet.ZMapIPID)
	if r.randomIPID {
		ipid = uint16(w >> 40)
	}
	sport := r.hasher.SourcePort(r.sportBase, r.sportCount, ip, port)
	packet.PatchTCP(frame, ipid, ip, sport, port, uint32(w), uint32(w>>32))
}

// patchICMP mirrors ICMPEchoScan.MakeProbe; id, seq, and the random
// IP ID all come from the port-0 validation word.
func patchICMP(r *Renderer, frame []byte, ip uint32, _ uint16) {
	w := r.hasher.Compute(r.srcIP, ip, 0)
	ipid := uint16(packet.ZMapIPID)
	if r.randomIPID {
		ipid = uint16(w >> 40)
	}
	packet.PatchICMPEcho(frame, ipid, ip, uint16(w>>16), uint16(w))
}

// patchUDP mirrors UDPScan.MakeProbe.
func patchUDP(r *Renderer, frame []byte, ip uint32, port uint16) {
	ipid := uint16(packet.ZMapIPID)
	if r.randomIPID {
		ipid = uint16(r.hasher.Compute(r.srcIP, ip, port) >> 40)
	}
	sport := r.hasher.SourcePort(r.sportBase, r.sportCount, ip, port)
	packet.PatchUDP(frame, ipid, ip, sport, port)
}

// MakeTemplate implements Templater.
func (m SYNScan) MakeTemplate(ctx *Context) (*Renderer, error) {
	return newRenderer(m, ctx, patchSYN)
}

// MakeTemplate implements Templater.
func (m SYNACKScan) MakeTemplate(ctx *Context) (*Renderer, error) {
	return newRenderer(m, ctx, patchSYNACK)
}

// MakeTemplate implements Templater.
func (m ICMPEchoScan) MakeTemplate(ctx *Context) (*Renderer, error) {
	return newRenderer(m, ctx, patchICMP)
}

// MakeTemplate implements Templater.
func (m UDPScan) MakeTemplate(ctx *Context) (*Renderer, error) {
	return newRenderer(m, ctx, patchUDP)
}
