package probe

import (
	"testing"

	"zmapgo/internal/packet"
)

// FuzzValidate feeds arbitrary frames through the full
// parse-then-classify pipeline of every registered probe module: the
// exact path a hostile network drives in the receiver. Invariants: no
// panic, and no classifier accepts a frame that is not addressed to the
// scanner — the cheapest possible validator-bypass check, holding for
// every input the fuzzer can construct.
func FuzzValidate(f *testing.F) {
	ctx := testContext()
	// True positive: the simulator-shaped SYN-ACK a live host would send
	// in response to our own probe (correct ack = our seq + 1).
	tcpMod, _ := Lookup("tcp_synscan")
	probeFrame := mustProbe(f, tcpMod, nil, ctx, 0x0A000001, 443)
	pf, err := packet.Parse(probeFrame)
	if err != nil {
		f.Fatal(err)
	}
	synack := packet.AppendEthernet(nil, ctx.GwMAC, ctx.SrcMAC, packet.EtherTypeIPv4)
	synack = packet.AppendIPv4(synack, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolTCP, Src: 0x0A000001, Dst: ctx.SrcIP,
	}, packet.TCPHeaderLen)
	synack, err = packet.AppendTCP(synack, packet.TCP{
		SrcPort: 443, DstPort: pf.TCP.SrcPort,
		Seq: 99, Ack: pf.TCP.Seq + 1,
		Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
	}, 0x0A000001, ctx.SrcIP, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(synack)
	// Spoof: structurally identical but with a forged ack number.
	spoof := append([]byte(nil), synack...)
	spoof[len(spoof)-12] ^= 0xA5 // inside the ack field
	f.Add(spoof)
	f.Add(probeFrame) // our own probe looped back
	f.Add([]byte{})

	mods := make([]Module, 0, len(Names()))
	for _, n := range Names() {
		m, err := Lookup(n)
		if err != nil {
			f.Fatal(err)
		}
		mods = append(mods, m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := packet.Parse(data)
		if err != nil {
			return // parser rejections are FuzzParse's concern
		}
		for _, m := range mods {
			res, ok := m.Classify(ctx, frame)
			if !ok {
				continue
			}
			if frame.IP.Dst != ctx.SrcIP {
				t.Fatalf("%s accepted a frame not addressed to the scanner (dst %08x)", m.Name(), frame.IP.Dst)
			}
			if res.IP != frame.IP.Src {
				t.Fatalf("%s classified result IP %08x from frame src %08x", m.Name(), res.IP, frame.IP.Src)
			}
		}
	})
}

// FuzzUnreachQuote hammers the ICMP quoted-packet parser with arbitrary
// bytes. The payload of an unreachable is the least trustworthy input
// the scanner parses — any host can mail one, and the health subsystem
// acts on the result — so the invariants are strict: no panic, and an
// accepted quote's fields must round-trip against manual extraction at
// the offsets the header itself declares.
func FuzzUnreachQuote(f *testing.F) {
	// Seed with a real quote: the head of a UDP probe built by the udp
	// module, exactly what a router would quote back at us.
	ctx := testContext()
	udpMod, _ := Lookup("udp")
	probeFrame := mustProbe(f, udpMod, nil, ctx, 0x0A000001, 53)
	quote := probeFrame[packet.EthernetHeaderLen:]
	if len(quote) > packet.IPv4HeaderLen+8 {
		quote = quote[:packet.IPv4HeaderLen+8]
	}
	f.Add(append([]byte(nil), quote...))
	for _, n := range []int{0, 1, 19, 20, 27} {
		f.Add(append([]byte(nil), quote[:n]...)) // truncations
	}
	mangled := append([]byte(nil), quote...)
	mangled[0] = 0x6F // version/ihl garbage
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		q, ok := ParseUnreachQuote(data)
		if !ok {
			if q != (UnreachQuote{}) {
				t.Fatal("rejected quote returned non-zero fields")
			}
			return
		}
		if len(data) < packet.IPv4HeaderLen+8 {
			t.Fatalf("accepted %d-byte quote below the minimum", len(data))
		}
		if data[0]>>4 != 4 {
			t.Fatal("accepted non-IPv4 version nibble")
		}
		ihl := int(data[0]&0x0F) * 4
		if ihl < packet.IPv4HeaderLen || len(data) < ihl+4 {
			t.Fatalf("accepted quote with ihl %d beyond its %d bytes", ihl, len(data))
		}
		wantSrc := uint32(data[12])<<24 | uint32(data[13])<<16 | uint32(data[14])<<8 | uint32(data[15])
		wantDst := uint32(data[16])<<24 | uint32(data[17])<<16 | uint32(data[18])<<8 | uint32(data[19])
		if q.Src != wantSrc || q.Dst != wantDst || q.Proto != data[9] {
			t.Fatalf("quote fields %+v disagree with manual extraction", q)
		}
		if q.SrcPort != uint16(data[ihl])<<8|uint16(data[ihl+1]) ||
			q.DstPort != uint16(data[ihl+2])<<8|uint16(data[ihl+3]) {
			t.Fatalf("port fields %+v disagree with declared ihl %d", q, ihl)
		}
	})
}
