package probe

import (
	"testing"

	"zmapgo/internal/packet"
)

// FuzzValidate feeds arbitrary frames through the full
// parse-then-classify pipeline of every registered probe module: the
// exact path a hostile network drives in the receiver. Invariants: no
// panic, and no classifier accepts a frame that is not addressed to the
// scanner — the cheapest possible validator-bypass check, holding for
// every input the fuzzer can construct.
func FuzzValidate(f *testing.F) {
	ctx := testContext()
	// True positive: the simulator-shaped SYN-ACK a live host would send
	// in response to our own probe (correct ack = our seq + 1).
	tcpMod, _ := Lookup("tcp_synscan")
	probeFrame := mustProbe(f, tcpMod, nil, ctx, 0x0A000001, 443)
	pf, err := packet.Parse(probeFrame)
	if err != nil {
		f.Fatal(err)
	}
	synack := packet.AppendEthernet(nil, ctx.GwMAC, ctx.SrcMAC, packet.EtherTypeIPv4)
	synack = packet.AppendIPv4(synack, packet.IPv4{
		TTL: 64, Protocol: packet.ProtocolTCP, Src: 0x0A000001, Dst: ctx.SrcIP,
	}, packet.TCPHeaderLen)
	synack, err = packet.AppendTCP(synack, packet.TCP{
		SrcPort: 443, DstPort: pf.TCP.SrcPort,
		Seq: 99, Ack: pf.TCP.Seq + 1,
		Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
	}, 0x0A000001, ctx.SrcIP, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(synack)
	// Spoof: structurally identical but with a forged ack number.
	spoof := append([]byte(nil), synack...)
	spoof[len(spoof)-12] ^= 0xA5 // inside the ack field
	f.Add(spoof)
	f.Add(probeFrame) // our own probe looped back
	f.Add([]byte{})

	mods := make([]Module, 0, len(Names()))
	for _, n := range Names() {
		m, err := Lookup(n)
		if err != nil {
			f.Fatal(err)
		}
		mods = append(mods, m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := packet.Parse(data)
		if err != nil {
			return // parser rejections are FuzzParse's concern
		}
		for _, m := range mods {
			res, ok := m.Classify(ctx, frame)
			if !ok {
				continue
			}
			if frame.IP.Dst != ctx.SrcIP {
				t.Fatalf("%s accepted a frame not addressed to the scanner (dst %08x)", m.Name(), frame.IP.Dst)
			}
			if res.IP != frame.IP.Src {
				t.Fatalf("%s classified result IP %08x from frame src %08x", m.Name(), res.IP, frame.IP.Src)
			}
		}
	})
}
