// Package fleetnet is the network control plane for the fleet
// coordinator (internal/fleet): the coordinator serves the shard-dir
// state machine over HTTP/JSON, and workers join over TCP instead of a
// shared filesystem. The server is a fencing facade over the same
// durable files the filesystem plane uses — lease, checkpoint, rate,
// per-epoch run and metadata files — so merge, crash-resume, and the
// decision journal are transport-independent, and a fleet directory
// written through this plane is byte-compatible with PR 8 directories.
//
// The package also ships the fault injector the acceptance suite runs
// the plane through: a seeded, deterministic ChaosProxy that drops,
// delays, duplicates, and reorders RPCs, partitions shards one-way or
// fully, and slow-drips response bodies, all scripted as a per-phase
// Timeline.
package fleetnet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Phase is one segment of a chaos timeline: from After (relative to
// proxy start) until the next phase begins, every RPC through the proxy
// is subjected to these faults. Probabilities are drawn deterministically
// from the proxy seed and the RPC's global index, never from wall clock
// or math/rand, so a timeline replays identically across runs.
type Phase struct {
	// After is the phase's activation offset from proxy start.
	After time.Duration

	// Drop is the probability an RPC is severed before reaching the
	// coordinator (the client sees a connection reset, the server
	// nothing).
	Drop float64
	// Dup is the probability an RPC is forwarded twice back-to-back —
	// the second copy's response is discarded. This is the idempotency
	// gauntlet: a duplicated result upload or commit must not
	// double-apply.
	Dup float64

	// Delay (+ a uniform draw of Jitter) holds an RPC before forwarding.
	Delay  time.Duration
	Jitter time.Duration

	// ReorderFrac of RPCs are additionally held ReorderHold, letting
	// later RPCs overtake them (checkpoint regression, stale renewals).
	ReorderFrac float64
	ReorderHold time.Duration

	// SlowBody drips the response back to the client in 4 KiB chunks
	// with this pause between chunks.
	SlowBody time.Duration

	// Partition, when non-empty, is "full" (RPC severed with no
	// forward) or "oneway" (forwarded — the server acts — but the
	// response never returns, so the client retries an already-applied
	// RPC). PartitionShard scopes it to one shard, -1 means every shard.
	Partition      string
	PartitionShard int
}

// Timeline is an ordered chaos script. Phases apply from their After
// offset until the next phase's; the last phase holds forever.
type Timeline struct {
	Phases []Phase
}

// At returns the phase active at the given elapsed time and its index.
// Before the first phase (or on an empty timeline) it returns a
// zero/pass phase with index -1.
func (t *Timeline) At(elapsed time.Duration) (Phase, int) {
	idx := -1
	for i := range t.Phases {
		if t.Phases[i].After <= elapsed {
			idx = i
		}
	}
	if idx < 0 {
		return Phase{PartitionShard: -1}, -1
	}
	return t.Phases[idx], idx
}

// ParseTimeline parses the chaos DSL: semicolon-separated phases, each
// "<offset>:<fault>,<fault>,...". Faults:
//
//	pass                    no faults (placeholder, keeps a phase valid)
//	drop=0.25               drop probability
//	dup=0.25                duplicate probability
//	delay=10ms              fixed forward delay
//	jitter=5ms              uniform extra delay on top of delay
//	reorder=0.3/40ms        fraction held for the given duration
//	slow=2ms                per-4KiB response body drip
//	partition=full          sever everything
//	partition=oneway        forward, discard response
//	partition=full@1        scope to shard 1 (@N works for both kinds)
//
// Example:
//
//	0:pass;300ms:drop=0.25,dup=0.25,delay=10ms;1s:partition=full@1;1.8s:pass
func ParseTimeline(s string) (*Timeline, error) {
	tl := &Timeline{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		offStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("fleetnet: phase %q: want <offset>:<faults>", part)
		}
		after, err := time.ParseDuration(strings.TrimSpace(offStr))
		if err != nil || after < 0 {
			return nil, fmt.Errorf("fleetnet: phase %q: bad offset %q", part, offStr)
		}
		ph := Phase{After: after, PartitionShard: -1}
		for _, f := range strings.Split(rest, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			if f == "pass" {
				continue
			}
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("fleetnet: phase %q: fault %q: want key=value or pass", part, f)
			}
			switch key {
			case "drop":
				if ph.Drop, err = parseFrac(val); err != nil {
					return nil, fmt.Errorf("fleetnet: drop: %w", err)
				}
			case "dup":
				if ph.Dup, err = parseFrac(val); err != nil {
					return nil, fmt.Errorf("fleetnet: dup: %w", err)
				}
			case "delay":
				if ph.Delay, err = parseDur(val); err != nil {
					return nil, fmt.Errorf("fleetnet: delay: %w", err)
				}
			case "jitter":
				if ph.Jitter, err = parseDur(val); err != nil {
					return nil, fmt.Errorf("fleetnet: jitter: %w", err)
				}
			case "slow":
				if ph.SlowBody, err = parseDur(val); err != nil {
					return nil, fmt.Errorf("fleetnet: slow: %w", err)
				}
			case "reorder":
				fracStr, holdStr, ok := strings.Cut(val, "/")
				if !ok {
					return nil, fmt.Errorf("fleetnet: reorder %q: want frac/hold", val)
				}
				if ph.ReorderFrac, err = parseFrac(fracStr); err != nil {
					return nil, fmt.Errorf("fleetnet: reorder: %w", err)
				}
				if ph.ReorderHold, err = parseDur(holdStr); err != nil {
					return nil, fmt.Errorf("fleetnet: reorder: %w", err)
				}
			case "partition":
				kind, shardStr, scoped := strings.Cut(val, "@")
				if kind != "full" && kind != "oneway" {
					return nil, fmt.Errorf("fleetnet: partition %q: want full or oneway", val)
				}
				ph.Partition = kind
				if scoped {
					n, err := strconv.Atoi(shardStr)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("fleetnet: partition shard %q", shardStr)
					}
					ph.PartitionShard = n
				}
			default:
				return nil, fmt.Errorf("fleetnet: unknown fault %q", key)
			}
		}
		tl.Phases = append(tl.Phases, ph)
	}
	sort.SliceStable(tl.Phases, func(i, j int) bool {
		return tl.Phases[i].After < tl.Phases[j].After
	})
	return tl, nil
}

// String renders the timeline back into the DSL in canonical form:
// phases in activation order, faults in a fixed key order, fractions
// with minimal digits. ParseTimeline(t.String()) round-trips exactly.
func (t *Timeline) String() string {
	var phases []string
	for _, ph := range t.Phases {
		var faults []string
		if ph.Drop > 0 {
			faults = append(faults, "drop="+fmtFrac(ph.Drop))
		}
		if ph.Dup > 0 {
			faults = append(faults, "dup="+fmtFrac(ph.Dup))
		}
		if ph.Delay > 0 {
			faults = append(faults, "delay="+ph.Delay.String())
		}
		if ph.Jitter > 0 {
			faults = append(faults, "jitter="+ph.Jitter.String())
		}
		if ph.ReorderFrac > 0 {
			faults = append(faults, "reorder="+fmtFrac(ph.ReorderFrac)+"/"+ph.ReorderHold.String())
		}
		if ph.SlowBody > 0 {
			faults = append(faults, "slow="+ph.SlowBody.String())
		}
		if ph.Partition != "" {
			p := "partition=" + ph.Partition
			if ph.PartitionShard >= 0 {
				p += "@" + strconv.Itoa(ph.PartitionShard)
			}
			faults = append(faults, p)
		}
		if len(faults) == 0 {
			faults = []string{"pass"}
		}
		phases = append(phases, ph.After.String()+":"+strings.Join(faults, ","))
	}
	return strings.Join(phases, ";")
}

func parseFrac(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 || v > 1 {
		return 0, fmt.Errorf("fraction %q: want [0,1]", s)
	}
	return v, nil
}

func parseDur(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil || d < 0 {
		return 0, fmt.Errorf("duration %q", s)
	}
	return d, nil
}

func fmtFrac(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Decision is what the proxy does to one RPC, fully determined by
// (seed, phase index, RPC index, phase, shard).
type Decision struct {
	// FullPartition severs the RPC without forwarding.
	FullPartition bool
	// OneWay forwards the RPC but severs the response path.
	OneWay bool
	// Drop severs the RPC without forwarding (probabilistic flavor).
	Drop bool
	// Dup forwards the RPC twice.
	Dup bool
	// Delay holds the RPC before forwarding.
	Delay time.Duration
	// SlowBody paces the response body per 4 KiB chunk.
	SlowBody time.Duration
}

// Decide is the proxy's pure decision function: the same arguments
// always yield the same Decision. n is the RPC's global arrival index;
// shard is the shard the RPC concerns (from its X-Fleet-Shard header,
// -1 when absent — an unscoped RPC is only hit by fleet-wide
// partitions).
func Decide(seed uint64, phaseIdx int, n uint64, ph Phase, shard int) Decision {
	var d Decision
	if ph.Partition != "" && (ph.PartitionShard < 0 || shard == ph.PartitionShard) {
		switch ph.Partition {
		case "full":
			d.FullPartition = true
			return d
		case "oneway":
			d.OneWay = true
		}
	}
	state := splitmix64(seed ^ splitmix64(uint64(phaseIdx)+1) ^ splitmix64(n+0x5bd1e995))
	next := func() float64 {
		state = splitmix64(state)
		return float64(state>>11) / (1 << 53)
	}
	if next() < ph.Drop {
		d.Drop = true
		return d
	}
	if next() < ph.Dup {
		d.Dup = true
	}
	d.Delay = ph.Delay
	if ph.Jitter > 0 {
		d.Delay += time.Duration(next() * float64(ph.Jitter))
	}
	if next() < ph.ReorderFrac {
		d.Delay += ph.ReorderHold
	}
	d.SlowBody = ph.SlowBody
	return d
}

// splitmix64 is the seed expander used across the repo for
// deterministic derived streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
