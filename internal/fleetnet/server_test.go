package fleetnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/fleet"
	"zmapgo/internal/trace"
)

// journalSink collects the server's decision-journal entries.
type journalSink struct {
	mu      sync.Mutex
	entries []trace.JEntry
}

func (j *journalSink) add(e trace.JEntry) {
	j.mu.Lock()
	j.entries = append(j.entries, e)
	j.mu.Unlock()
}

func (j *journalSink) count(kind string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func newTestServer(t *testing.T, token string) (*Server, *journalSink, string) {
	t.Helper()
	dir := t.TempDir()
	js := &journalSink{}
	srv := NewServer(ServerOptions{Token: token})
	err := srv.Start(fleet.PlaneInfo{
		Dir: dir, Workers: 2, Format: "text", FleetID: "net-test",
		LeaseTTL: time.Second, Journal: js.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, js, dir
}

// grantShard grants (shard 0, epoch) on the server exactly like the
// coordinator would, returning the spec and its fingerprint.
func grantShard(t *testing.T, srv *Server, dir string, epoch int) (*fleet.WorkerSpec, checkpoint.Fingerprint) {
	t.Helper()
	scan := fleet.ScanSpec{Ranges: []string{"10.9.0.0/28"}, Seed: 5, Format: "text", SimSeed: 1}
	fps, err := scan.Fingerprints(1)
	if err != nil {
		t.Fatal(err)
	}
	paths := fleet.PathsFor(dir, 0, epoch, "text")
	if err := os.MkdirAll(paths.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := &fleet.WorkerSpec{
		FleetID: "net-test", Shard: 0, Shards: 1, Epoch: epoch,
		Scan: scan, Paths: paths, LeaseTTL: time.Second,
	}
	now := time.Now()
	lease := &checkpoint.Lease{
		FleetID: "net-test", ShardIndex: 0, Epoch: epoch,
		WorkerID: spec.WorkerID(), State: checkpoint.LeaseGranted,
		GrantedAt: now, RenewedAt: now, TTLSecs: 5, Fingerprint: fps[0],
	}
	if err := srv.Grant(spec, lease); err != nil {
		t.Fatal(err)
	}
	return spec, fps[0]
}

// postChunk uploads one result chunk and returns the HTTP status plus
// the server's authoritative size.
func postChunk(t *testing.T, base string, epoch int, offset int64, chunk []byte, sha string) (int, int64) {
	t.Helper()
	url := fmt.Sprintf("%s%s?shard=0&epoch=%d&offset=%d", base, pathResult, epoch, offset)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	if sha == "" {
		sum := sha256.Sum256(chunk)
		sha = hex.EncodeToString(sum[:])
	}
	req.Header.Set(headerChunkSHA, sha)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr resultResponse
	json.NewDecoder(resp.Body).Decode(&rr)
	return resp.StatusCode, rr.Size
}

// TestServerResultIdempotentAppend: the append-iff-offset==size rule.
// A duplicated chunk acks without re-appending; a chunk past the
// durable size is refused with the authoritative size (and journaled)
// so the client rewinds; a corrupted body never lands.
func TestServerResultIdempotentAppend(t *testing.T) {
	srv, js, dir := newTestServer(t, "")
	spec, _ := grantShard(t, srv, dir, 1)

	chunk := []byte("10.9.0.1,80,synack\n")
	if code, size := postChunk(t, srv.URL(), 1, 0, chunk, ""); code != 200 || size != int64(len(chunk)) {
		t.Fatalf("first append: code=%d size=%d", code, size)
	}
	// The chaos proxy's dup fault: identical chunk, identical offset.
	if code, size := postChunk(t, srv.URL(), 1, 0, chunk, ""); code != 200 || size != int64(len(chunk)) {
		t.Fatalf("duplicate append: code=%d size=%d", code, size)
	}
	data, err := os.ReadFile(spec.Paths.Output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, chunk) {
		t.Fatalf("duplicate chunk double-applied: run file holds %q", data)
	}

	// Gap: a chunk arriving past the durable size means an earlier one
	// was lost; the server must refuse to leave a hole.
	if code, size := postChunk(t, srv.URL(), 1, 100, []byte("late\n"), ""); code != 200 || size != int64(len(chunk)) {
		t.Fatalf("gap chunk: code=%d size=%d", code, size)
	}
	if got := js.count(trace.JFleetNetGap); got != 1 {
		t.Fatalf("gap journaled %d times, want 1", got)
	}

	// Corruption: digest mismatch is rejected before touching the file.
	if code, _ := postChunk(t, srv.URL(), 1, int64(len(chunk)), []byte("junk\n"), strings.Repeat("0", 64)); code != http.StatusBadRequest {
		t.Fatalf("corrupted chunk accepted with code %d", code)
	}
	if data, _ := os.ReadFile(spec.Paths.Output); !bytes.Equal(data, chunk) {
		t.Fatalf("rejected chunks mutated the run file: %q", data)
	}
}

// TestServerFencesStaleEpoch: after a re-grant, every RPC carrying the
// old epoch is rejected with the fenced verdict — the late heartbeat or
// result upload of a partitioned worker can never be merged.
func TestServerFencesStaleEpoch(t *testing.T) {
	srv, js, dir := newTestServer(t, "")
	grantShard(t, srv, dir, 1)
	if code, size := postChunk(t, srv.URL(), 1, 0, []byte("epoch1-row\n"), ""); code != 200 || size == 0 {
		t.Fatalf("epoch-1 append before re-grant: code=%d", code)
	}
	grantShard(t, srv, dir, 2) // reclaim: epoch moves on

	// Stale result upload.
	if code, _ := postChunk(t, srv.URL(), 1, 10, []byte("stale-row\n"), ""); code != http.StatusConflict {
		t.Fatalf("stale-epoch result upload answered %d, want 409", code)
	}
	// Stale renewal, through the client so the fenced verdict's error
	// mapping is exercised too.
	c := newClient(srv.URL(), "", 0, 1, nil)
	if _, err := c.renewOnce(os.Getpid()); !errors.Is(err, checkpoint.ErrLeaseFenced) {
		t.Fatalf("stale renew error = %v, want ErrLeaseFenced", err)
	}
	// Stale commit.
	body, _ := json.Marshal(commitRequest{Shard: 0, Epoch: 1, Size: 0, SHA256: ""})
	resp, err := http.Post(srv.URL()+pathCommit, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale commit answered %d, want 409", resp.StatusCode)
	}
	if js.count(trace.JFleetNetFence) < 3 {
		t.Fatalf("only %d fence decisions journaled, want >=3", js.count(trace.JFleetNetFence))
	}
	// The current epoch still works.
	if code, _ := postChunk(t, srv.URL(), 2, 0, []byte("epoch2-row\n"), ""); code != 200 {
		t.Fatalf("current-epoch append answered %d", code)
	}
}

func putCheckpoint(t *testing.T, base string, epoch int, snap *checkpoint.Snapshot) int {
	t.Helper()
	snap.FormatVersion = checkpoint.FormatVersion
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s%s?shard=0&epoch=%d", base, pathCheckpoint, epoch)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestServerCheckpointMonotonic: a delayed or duplicated checkpoint
// upload must never regress the durable snapshot a successor would
// resume from, and a checkpoint from a different scan never lands.
func TestServerCheckpointMonotonic(t *testing.T) {
	srv, js, dir := newTestServer(t, "")
	spec, fp := grantShard(t, srv, dir, 1)
	now := time.Now().UTC()

	fresh := &checkpoint.Snapshot{Tool: "zmapgo", WrittenAt: now, Phase: "send",
		Progress: []uint64{7}, Fingerprint: fp}
	if code := putCheckpoint(t, srv.URL(), 1, fresh); code != http.StatusNoContent {
		t.Fatalf("fresh checkpoint PUT: %d", code)
	}
	// The reordered duplicate of an older snapshot arrives late.
	stale := &checkpoint.Snapshot{Tool: "zmapgo", WrittenAt: now.Add(-time.Minute), Phase: "send",
		Progress: []uint64{3}, Fingerprint: fp}
	if code := putCheckpoint(t, srv.URL(), 1, stale); code != http.StatusConflict {
		t.Fatalf("stale checkpoint PUT: %d, want 409", code)
	}
	if got := js.count(trace.JFleetNetCkptRej); got != 1 {
		t.Fatalf("checkpoint rejection journaled %d times, want 1", got)
	}
	durable, err := checkpoint.Load(spec.Paths.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !durable.WrittenAt.Equal(now) || durable.Progress[0] != 7 {
		t.Fatalf("durable checkpoint regressed: %+v", durable)
	}

	// Foreign scan: fingerprint mismatch against the granted lease.
	foreignFP := fp
	foreignFP.Seed = fp.Seed + 1
	foreign := &checkpoint.Snapshot{Tool: "zmapgo", WrittenAt: now.Add(time.Minute), Phase: "send",
		Progress: []uint64{9}, Fingerprint: foreignFP}
	if code := putCheckpoint(t, srv.URL(), 1, foreign); code != http.StatusBadRequest {
		t.Fatalf("foreign checkpoint PUT: %d, want 400", code)
	}
}

// TestServerCommitVerifiedAndIdempotent: commit only lands over a fully
// shipped, digest-matching run file, appears atomically, and retries
// are no-ops.
func TestServerCommitVerifiedAndIdempotent(t *testing.T) {
	srv, js, dir := newTestServer(t, "")
	spec, _ := grantShard(t, srv, dir, 1)
	rows := []byte("10.9.0.1,80\n10.9.0.2,80\n")
	if code, _ := postChunk(t, srv.URL(), 1, 0, rows, ""); code != 200 {
		t.Fatalf("upload: %d", code)
	}
	sum := sha256.Sum256(rows)
	meta := []byte(`{"shard":0}`)

	commit := func(size int64, sha string) int {
		body, _ := json.Marshal(commitRequest{Shard: 0, Epoch: 1, Size: size,
			SHA256: sha, Metadata: meta})
		resp, err := http.Post(srv.URL()+pathCommit, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// The client believes it shipped more than the server holds (lost
	// chunks): refused, nothing committed.
	if code := commit(int64(len(rows))+5, hex.EncodeToString(sum[:])); code != http.StatusConflict {
		t.Fatalf("short-upload commit: %d, want 409", code)
	}
	if _, err := os.Stat(spec.Paths.Metadata); err == nil {
		t.Fatal("refused commit still wrote a metadata record")
	}
	if code := commit(int64(len(rows)), hex.EncodeToString(sum[:])); code != http.StatusNoContent {
		t.Fatalf("commit: %d", code)
	}
	got, err := os.ReadFile(spec.Paths.Metadata)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, meta) {
		t.Fatalf("metadata %q", got)
	}
	// Retried commit (the chaos proxy's oneway fault): idempotent ack.
	if code := commit(int64(len(rows)), hex.EncodeToString(sum[:])); code != http.StatusNoContent {
		t.Fatalf("retried commit: %d", code)
	}
	if js.count(trace.JFleetNetCommit) != 1 {
		t.Fatalf("commit journaled %d times, want 1", js.count(trace.JFleetNetCommit))
	}
	// The done-mark rode along.
	l, err := checkpoint.LoadLease(spec.Paths.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if l.State != checkpoint.LeaseDone {
		t.Fatalf("lease state %q after commit", l.State)
	}
}

// TestClientRewindsOnGapVerdict: a client that believes it uploaded
// bytes the server never received (dropped mid-partition) adopts the
// server's authoritative size and re-sends — the spool and the run file
// converge byte-identically.
func TestClientRewindsOnGapVerdict(t *testing.T) {
	srv, js, dir := newTestServer(t, "")
	spec, _ := grantShard(t, srv, dir, 1)
	c := newClient(srv.URL(), "", 0, 1, nil)
	if err := c.adoptSpec(spec); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows := []byte("10.9.0.1,80\n10.9.0.2,80\n10.9.0.3,80\n")
	if err := os.WriteFile(c.spoolPath, rows, 0o644); err != nil {
		t.Fatal(err)
	}
	// Simulate a partition that ate the first upload after the client
	// counted it: the client's high-water mark is past the server's.
	c.uploaded = 12
	if err := c.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got, err := os.ReadFile(spec.Paths.Output)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rows) {
		t.Fatalf("run file diverged after rewind: %q vs %q", got, rows)
	}
	if js.count(trace.JFleetNetGap) == 0 {
		t.Fatal("gap rewind left no journal entry")
	}
}

// TestServerRejectsBadToken: every RPC must carry the fleet token.
func TestServerRejectsBadToken(t *testing.T) {
	srv, _, dir := newTestServer(t, "s3cret")
	grantShard(t, srv, dir, 1)
	resp, err := http.Get(srv.URL() + pathSpec + "?shard=0&epoch=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless RPC answered %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL()+pathSpec+"?shard=0&epoch=1", nil)
	req.Header.Set(headerToken, "s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed RPC answered %d", resp.StatusCode)
	}
}
