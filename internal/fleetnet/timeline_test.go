package fleetnet

import (
	"strings"
	"testing"
	"time"
)

// TestTimelineParseCanonical: the DSL parses, renders canonically, and
// the canonical form round-trips exactly (the property the chaos suite
// leans on to record a timeline in a failure message and replay it).
func TestTimelineParseCanonical(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"0:pass", "0s:pass"},
		{"0:pass;300ms:drop=0.25,dup=0.25,delay=10ms;1s:partition=full@1;1.8s:pass",
			"0s:pass;300ms:drop=0.25,dup=0.25,delay=10ms;1s:partition=full@1;1.8s:pass"},
		{"500ms:partition=oneway", "500ms:partition=oneway"},
		{"0:reorder=0.3/40ms,slow=2ms,jitter=5ms", "0s:jitter=5ms,reorder=0.3/40ms,slow=2ms"},
		// Phases given out of order sort by activation offset.
		{"1s:drop=1;0:pass", "0s:pass;1s:drop=1"},
	}
	for _, c := range cases {
		tl, err := ParseTimeline(c.in)
		if err != nil {
			t.Fatalf("ParseTimeline(%q): %v", c.in, err)
		}
		got := tl.String()
		if got != c.want {
			t.Errorf("ParseTimeline(%q).String() = %q, want %q", c.in, got, c.want)
		}
		again, err := ParseTimeline(got)
		if err != nil {
			t.Fatalf("re-parse %q: %v", got, err)
		}
		if again.String() != got {
			t.Errorf("canonical form %q does not round-trip (got %q)", got, again.String())
		}
	}
}

func TestTimelineParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"nonsense",
		"0:drop=1.5",
		"0:drop=-0.1",
		"0:partition=sideways",
		"0:partition=full@-2",
		"-1s:pass",
		"0:reorder=0.5",
		"0:wobble=3",
	} {
		if _, err := ParseTimeline(in); err == nil {
			t.Errorf("ParseTimeline(%q) accepted garbage", in)
		}
	}
}

func TestTimelineAt(t *testing.T) {
	tl, err := ParseTimeline("100ms:drop=0.5;1s:partition=full")
	if err != nil {
		t.Fatal(err)
	}
	if ph, idx := tl.At(50 * time.Millisecond); idx != -1 || ph.Drop != 0 {
		t.Fatalf("before first phase: idx=%d drop=%v", idx, ph.Drop)
	}
	if ph, idx := tl.At(500 * time.Millisecond); idx != 0 || ph.Drop != 0.5 {
		t.Fatalf("mid first phase: idx=%d drop=%v", idx, ph.Drop)
	}
	// The last phase holds forever.
	if ph, idx := tl.At(time.Hour); idx != 1 || ph.Partition != "full" {
		t.Fatalf("last phase: idx=%d partition=%q", idx, ph.Partition)
	}
}

// TestDecideDeterministic: Decide is a pure function — the same
// (seed, phase, index, shard) always yields the same Decision, and a
// different seed yields a different fault pattern.
func TestDecideDeterministic(t *testing.T) {
	ph := Phase{Drop: 0.3, Dup: 0.3, Delay: time.Millisecond,
		Jitter: time.Millisecond, ReorderFrac: 0.2, ReorderHold: 5 * time.Millisecond,
		PartitionShard: -1}
	var diff int
	for n := uint64(0); n < 512; n++ {
		a := Decide(7, 1, n, ph, 0)
		b := Decide(7, 1, n, ph, 0)
		if a != b {
			t.Fatalf("Decide not deterministic at n=%d: %+v vs %+v", n, a, b)
		}
		if c := Decide(8, 1, n, ph, 0); c != a {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed never changed a decision; the seed is dead")
	}
}

// TestDecideFrequencies: drawn fault rates track the configured
// probabilities (loose statistical bounds; the draws are deterministic,
// so this can never flake).
func TestDecideFrequencies(t *testing.T) {
	ph := Phase{Drop: 0.25, Dup: 0.5, PartitionShard: -1}
	const N = 4000
	var drops, dups int
	for n := uint64(0); n < N; n++ {
		d := Decide(1234, 0, n, ph, 0)
		if d.Drop {
			drops++
		}
		if d.Dup {
			dups++
		}
	}
	if drops < N/5 || drops > N/3 {
		t.Fatalf("drop rate %d/%d far from 0.25", drops, N)
	}
	// Dup is drawn only for RPCs that survived the drop draw.
	survivors := N - drops
	if dups < survivors/3 || dups > 2*survivors/3 {
		t.Fatalf("dup rate %d/%d far from 0.5", dups, survivors)
	}
}

// TestDecidePartitionScope: a shard-scoped partition hits only that
// shard's RPCs; unscoped RPCs (no X-Fleet-Shard, shard -1) pass.
func TestDecidePartitionScope(t *testing.T) {
	full := Phase{Partition: "full", PartitionShard: 1}
	if d := Decide(1, 0, 0, full, 1); !d.FullPartition {
		t.Fatal("scoped full partition missed its shard")
	}
	if d := Decide(1, 0, 0, full, 0); d.FullPartition {
		t.Fatal("scoped full partition hit the wrong shard")
	}
	if d := Decide(1, 0, 0, full, -1); d.FullPartition {
		t.Fatal("scoped partition hit an unscoped RPC")
	}
	oneway := Phase{Partition: "oneway", PartitionShard: -1}
	if d := Decide(1, 0, 0, oneway, 3); !d.OneWay || d.FullPartition {
		t.Fatalf("fleet-wide oneway: %+v", d)
	}
}

// FuzzChaosTimeline: any string the parser accepts must render
// canonically, re-parse, and re-render to the identical canonical form;
// and decisions over the parsed timeline must be pure.
func FuzzChaosTimeline(f *testing.F) {
	f.Add("0:pass")
	f.Add("0:pass;300ms:drop=0.25,dup=0.25,delay=10ms;1s:partition=full@1;1.8s:pass")
	f.Add("250ms:reorder=0.3/40ms,slow=2ms;2s:partition=oneway@0")
	f.Add("0:drop=1")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 || strings.ContainsAny(s, "\x00") {
			return
		}
		tl, err := ParseTimeline(s)
		if err != nil {
			return
		}
		canon := tl.String()
		again, err := ParseTimeline(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
		for _, elapsed := range []time.Duration{0, 300 * time.Millisecond, 5 * time.Second} {
			ph, idx := tl.At(elapsed)
			for n := uint64(0); n < 8; n++ {
				if a, b := Decide(42, idx, n, ph, 0), Decide(42, idx, n, ph, 0); a != b {
					t.Fatalf("Decide impure for timeline %q", canon)
				}
			}
		}
	})
}
