package fleetnet

// wire.go names everything that crosses the TCP boundary: environment
// variables a spawned network worker finds its grant through, the HTTP
// endpoint paths, the JSON request/response bodies, and the error
// vocabulary. Both halves (server.go, client.go) import only from here,
// so a drift between them is a compile error, not a protocol bug.

// Environment variables the coordinator sets on locally-spawned network
// workers. A remote worker (zmapgo fleet-worker --join) gets the same
// values from flags instead.
const (
	// JoinEnv is the coordinator's base URL (http://host:port).
	JoinEnv = "ZMAPGO_FLEET_JOIN"
	// ShardEnv is the granted shard index.
	ShardEnv = "ZMAPGO_FLEET_SHARD"
	// EpochEnv is the granted lease epoch; every RPC carries it and the
	// server fences any RPC whose epoch is not the shard's current one.
	EpochEnv = "ZMAPGO_FLEET_EPOCH"
	// TokenEnv is the shared join token ("" = open fleet).
	TokenEnv = "ZMAPGO_FLEET_TOKEN"
)

// HTTP endpoint paths (all under the coordinator's base URL).
const (
	pathSpec       = "/v1/spec"       // GET  ?shard=&epoch=        -> WorkerSpec JSON
	pathRenew      = "/v1/renew"      // POST renewRequest          -> renewResponse
	pathCheckpoint = "/v1/checkpoint" // GET  ?shard=&epoch= (204 = none) / PUT raw snapshot JSON
	pathResult     = "/v1/result"     // POST ?shard=&epoch=&offset= raw chunk -> resultResponse
	pathCommit     = "/v1/commit"     // POST commitRequest         -> commitResponse
	pathAcquire    = "/v1/acquire"    // POST acquireRequest        -> WorkerSpec JSON | 204
	pathExit       = "/v1/exit"       // POST exitRequest           -> 204
)

// Request headers.
const (
	// headerToken authenticates every RPC when the fleet has a token.
	headerToken = "X-Fleet-Token"
	// headerShard scopes an RPC to a shard for the chaos proxy's
	// per-shard partitions; the server trusts the URL/body, not this.
	headerShard = "X-Fleet-Shard"
	// headerChunkSHA is the hex SHA-256 of a result chunk's bytes; the
	// server verifies it before appending, so a truncated or corrupted
	// body is rejected rather than merged.
	headerChunkSHA = "X-Chunk-Sha256"
)

// Wire error codes (errorResponse.Code). Everything else the client
// treats as retryable; these four are verdicts.
const (
	// codeFenced: the RPC's epoch is not the shard's current epoch, or
	// the lease moved on. The worker must stop scanning.
	codeFenced = "fenced"
	// codeBadRequest: malformed RPC; retrying identical bytes is useless.
	codeBadRequest = "bad_request"
	// codeUnauthorized: token mismatch.
	codeUnauthorized = "unauthorized"
	// codeConflict: upload state disagreement the client can reconcile
	// (e.g. a checkpoint older than the one the server holds).
	codeConflict = "conflict"
)

type errorResponse struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

type renewRequest struct {
	Shard int `json:"shard"`
	Epoch int `json:"epoch"`
	// PID is the worker's process id on ITS host. The server records
	// remote pids negated so a restarted coordinator never mistakes a
	// remote worker's pid for a live local process.
	PID    int  `json:"pid"`
	Remote bool `json:"remote,omitempty"`
}

type renewResponse struct {
	// RatePPS is the shard's current rate share, piggybacked on every
	// heartbeat so a separate rate poll RPC is unnecessary.
	RatePPS float64 `json:"rate_pps"`
}

type resultResponse struct {
	// Size is the authoritative byte length of the shard's epoch run
	// file after this RPC. The client always adopts it: on a duplicated
	// chunk the server acks without re-appending (offset < size), and on
	// a gap (offset > size, an earlier chunk was lost) the client
	// rewinds to Size and re-sends from there.
	Size int64 `json:"size"`
}

type commitRequest struct {
	Shard int `json:"shard"`
	Epoch int `json:"epoch"`
	// Size and SHA256 describe the COMPLETE run file; the commit is
	// refused unless the server's file matches both, so a commit can
	// never land over a partially-shipped result stream.
	Size     int64  `json:"size"`
	SHA256   string `json:"sha256"`
	Metadata []byte `json:"metadata"`
}

type acquireRequest struct {
	// WaitMS long-polls: the server holds the request up to this long
	// waiting for an offered grant before answering 204.
	WaitMS int64 `json:"wait_ms"`
}

type exitRequest struct {
	Shard int `json:"shard"`
	Epoch int `json:"epoch"`
	Code  int `json:"code"`
}
