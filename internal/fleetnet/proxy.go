package fleetnet

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosProxy sits between workers and the coordinator and subjects
// every RPC to a scripted, seeded fault timeline — the netsim
// equivalent for the control plane. Faults are decided by the pure
// function Decide over (seed, phase index, RPC arrival index), so a
// given (seed, timeline, RPC sequence) misbehaves identically on every
// run; nothing is drawn from wall clock or global randomness.
//
// Fault semantics:
//   - drop / full partition: the connection is severed before the
//     request reaches the coordinator — the worker sees a transport
//     error, the server nothing;
//   - oneway partition: the request IS forwarded (the server acts on
//     it) but the response is severed — the worker must retry an
//     already-applied RPC, which is exactly the idempotency gauntlet;
//   - dup: the request is forwarded twice back-to-back, second
//     response discarded;
//   - delay / jitter / reorder hold: the forward is held, letting later
//     RPCs overtake;
//   - slow: the response body drips back in 4 KiB chunks.
type ChaosProxy struct {
	seed uint64
	tl   *Timeline
	log  *slog.Logger

	mu      sync.Mutex
	backend *url.URL
	start   time.Time

	ln  net.Listener
	srv *http.Server
	hc  *http.Client
	n   atomic.Uint64

	// Stats (atomic; read via Stats).
	forwarded   atomic.Uint64
	dropped     atomic.Uint64
	duplicated  atomic.Uint64
	delayed     atomic.Uint64
	partitioned atomic.Uint64
	oneway      atomic.Uint64
	slowBodies  atomic.Uint64
}

// ProxyStats is a snapshot of what the proxy did.
type ProxyStats struct {
	Forwarded   uint64
	Dropped     uint64
	Duplicated  uint64
	Delayed     uint64
	Partitioned uint64
	OneWay      uint64
	SlowBodies  uint64
}

// NewChaosProxy builds a proxy for the given seed and timeline; point
// it at the coordinator with SetBackend, then Start it.
func NewChaosProxy(seed uint64, tl *Timeline, logger *slog.Logger) *ChaosProxy {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	if tl == nil {
		tl = &Timeline{}
	}
	return &ChaosProxy{
		seed: seed,
		tl:   tl,
		log:  logger,
		hc: &http.Client{
			Timeout: 60 * time.Second,
			// Each logical RPC must be its own decision; connection
			// reuse would let one severed response kill a later,
			// pass-verdict RPC sharing the socket.
			Transport: &http.Transport{DisableKeepAlives: true},
		},
	}
}

// SetBackend points the proxy at the coordinator's base URL. Safe to
// call after Start (the acceptance test learns the coordinator's bound
// port from OnListen, after the proxy already exists).
func (p *ChaosProxy) SetBackend(baseURL string) error {
	u, err := url.Parse(baseURL)
	if err != nil {
		return fmt.Errorf("fleetnet: proxy backend %q: %w", baseURL, err)
	}
	p.mu.Lock()
	p.backend = u
	p.mu.Unlock()
	return nil
}

// Start binds the proxy and returns the URL workers should join
// through. The timeline clock starts now.
func (p *ChaosProxy) Start(listen string) (string, error) {
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", fmt.Errorf("fleetnet: proxy listen %s: %w", listen, err)
	}
	p.ln = ln
	p.mu.Lock()
	p.start = time.Now()
	p.mu.Unlock()
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go p.srv.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}

// Close stops the listener and in-flight handling.
func (p *ChaosProxy) Close() error {
	if p.srv != nil {
		return p.srv.Close()
	}
	return nil
}

// Stats snapshots the proxy's fault counters.
func (p *ChaosProxy) Stats() ProxyStats {
	return ProxyStats{
		Forwarded:   p.forwarded.Load(),
		Dropped:     p.dropped.Load(),
		Duplicated:  p.duplicated.Load(),
		Delayed:     p.delayed.Load(),
		Partitioned: p.partitioned.Load(),
		OneWay:      p.oneway.Load(),
		SlowBodies:  p.slowBodies.Load(),
	}
}

// sever aborts the exchange without writing a response: net/http
// recovers http.ErrAbortHandler quietly and resets the connection, so
// the client observes a transport error — indistinguishable from a
// real partition.
func sever() { panic(http.ErrAbortHandler) }

func (p *ChaosProxy) serve(w http.ResponseWriter, r *http.Request) {
	n := p.n.Add(1) - 1
	p.mu.Lock()
	backend := p.backend
	elapsed := time.Since(p.start)
	p.mu.Unlock()
	if backend == nil {
		sever()
	}

	shard := -1
	if v := r.Header.Get(headerShard); v != "" {
		if s, err := strconv.Atoi(v); err == nil {
			shard = s
		}
	}
	ph, phaseIdx := p.tl.At(elapsed)
	d := Decide(p.seed, phaseIdx, n, ph, shard)

	switch {
	case d.FullPartition:
		p.partitioned.Add(1)
		sever()
	case d.Drop:
		p.dropped.Add(1)
		sever()
	}
	if d.Delay > 0 {
		p.delayed.Add(1)
		time.Sleep(d.Delay)
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, maxCheckpoint+1))
	if err != nil {
		sever()
	}

	resp, err := p.forward(r, backend, body)
	if d.Dup {
		// Forward the same bytes again; the duplicate's response is
		// discarded. The server must treat the replay as a no-op.
		p.duplicated.Add(1)
		if dupResp, dupErr := p.forward(r, backend, body); dupErr == nil {
			io.Copy(io.Discard, dupResp.Body)
			dupResp.Body.Close()
		}
	}
	if err != nil {
		sever()
	}
	defer resp.Body.Close()
	p.forwarded.Add(1)

	if d.OneWay {
		// The backend acted; the worker never hears about it.
		p.oneway.Add(1)
		io.Copy(io.Discard, resp.Body)
		sever()
	}

	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if d.SlowBody > 0 {
		p.slowBodies.Add(1)
		buf := make([]byte, 4096)
		flusher, _ := w.(http.Flusher)
		for {
			nn, rerr := resp.Body.Read(buf)
			if nn > 0 {
				if _, werr := w.Write(buf[:nn]); werr != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
				time.Sleep(d.SlowBody)
			}
			if rerr != nil {
				return
			}
		}
	}
	io.Copy(w, resp.Body)
}

// forward replays the inbound RPC against the backend.
func (p *ChaosProxy) forward(r *http.Request, backend *url.URL, body []byte) (*http.Response, error) {
	u := *backend
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequest(r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return p.hc.Do(req)
}
