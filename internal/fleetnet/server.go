package fleetnet

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/fleet"
	"zmapgo/internal/metrics"
	"zmapgo/internal/trace"
)

// Body size ceilings. A result chunk larger than maxChunk is a client
// bug; checkpoints carry the dedup recent-window so they get headroom.
const (
	maxChunk      = 4 << 20
	maxCheckpoint = 64 << 20
	maxCommitBody = 64 << 20
)

// ServerOptions configures the network control plane's listener.
type ServerOptions struct {
	// Listen is the bind address (host:port; port 0 picks a free one).
	Listen string
	// Advertise overrides the URL published to workers (WorkerEnv,
	// OnListen); defaults to http://<bound address>.
	Advertise string
	// Token, when non-empty, must ride every RPC in X-Fleet-Token.
	Token string
	// OnListen, when set, receives the server's directly-bound URL
	// (http://<listen address>) once the listener is up — before any
	// worker is granted. Workers are told the advertised URL; the bound
	// one is what a front proxy targets.
	OnListen func(url string)
}

// Server is the HTTP/JSON control plane: a fencing facade over the same
// shard-directory files the filesystem plane uses. It implements
// fleet.ControlPlane (grants still land as spec+lease files, so the
// fleet directory stays byte-compatible) and fleet.RemotePlane (grants
// can be offered to joining fleet-worker processes over /v1/acquire).
//
// Every mutating RPC is epoch-fenced server-side: an RPC carrying any
// epoch other than the shard's current one is rejected with codeFenced
// and journaled, so a partitioned worker's late heartbeat or result
// upload can never corrupt a re-granted shard.
type Server struct {
	opts ServerOptions
	info fleet.PlaneInfo
	log  *slog.Logger

	ln   net.Listener
	srv  *http.Server
	url  string // advertised base URL
	once sync.Once

	mu     sync.Mutex
	shards map[int]*netShard
	exits  map[[2]int]int
	offers chan *fleet.WorkerSpec

	mRPCs    *metrics.Counter
	mFenced  *metrics.Counter
	mBytes   *metrics.Counter
	mCommits *metrics.Counter
	mGaps    *metrics.Counter
}

// netShard serializes one shard's server-side state transitions: grant,
// renew, result append, and commit all hold its lock, which closes the
// load-modify-save race between a heartbeat and a concurrent re-grant
// that the filesystem plane merely narrows.
type netShard struct {
	mu      sync.Mutex
	epoch   int // current granted epoch; -1 until known
	spec    *fleet.WorkerSpec
	out     *os.File // open run file for the current epoch
	outSize int64
}

// NewServer builds the network control plane; Start binds it.
func NewServer(opts ServerOptions) *Server {
	return &Server{
		opts:   opts,
		shards: make(map[int]*netShard),
		exits:  make(map[[2]int]int),
		offers: make(chan *fleet.WorkerSpec, 64),
	}
}

// Name implements fleet.ControlPlane.
func (s *Server) Name() string { return "http" }

// URL returns the advertised base URL (valid after Start).
func (s *Server) URL() string { return s.url }

// Start implements fleet.ControlPlane: bind the listener, publish the
// URL, and start serving RPCs.
func (s *Server) Start(info fleet.PlaneInfo) error {
	s.info = info
	s.log = info.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if reg := info.Metrics; reg != nil {
		s.mRPCs = reg.Counter("zmapgo_fleetnet_rpcs_total",
			"Control-plane RPCs served.")
		s.mFenced = reg.Counter("zmapgo_fleetnet_rpcs_fenced_total",
			"RPCs rejected by server-side epoch fencing.")
		s.mBytes = reg.Counter("zmapgo_fleetnet_result_bytes_total",
			"Result bytes appended from workers.")
		s.mCommits = reg.Counter("zmapgo_fleetnet_commits_total",
			"Epoch commit records applied.")
		s.mGaps = reg.Counter("zmapgo_fleetnet_upload_gaps_total",
			"Result uploads arriving past the server's size (client rewound).")
	}

	addr := s.opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleetnet: listen %s: %w", addr, err)
	}
	s.ln = ln
	bound := "http://" + ln.Addr().String()
	s.url = s.opts.Advertise
	if s.url == "" {
		s.url = bound
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathSpec, s.auth(s.handleSpec))
	mux.HandleFunc("POST "+pathRenew, s.auth(s.handleRenew))
	mux.HandleFunc("GET "+pathCheckpoint, s.auth(s.handleCheckpointGet))
	mux.HandleFunc("PUT "+pathCheckpoint, s.auth(s.handleCheckpointPut))
	mux.HandleFunc("POST "+pathResult, s.auth(s.handleResult))
	mux.HandleFunc("POST "+pathCommit, s.auth(s.handleCommit))
	mux.HandleFunc("POST "+pathAcquire, s.auth(s.handleAcquire))
	mux.HandleFunc("POST "+pathExit, s.auth(s.handleExit))
	s.srv = &http.Server{Handler: mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Warn("fleetnet server stopped", "err", err)
		}
	}()

	detail := bound
	if s.url != bound {
		detail += " advertised=" + s.url
	}
	s.journal(trace.JEntry{Kind: trace.JFleetNetListen, Detail: detail})
	s.log.Info("fleet control plane listening", "bound", bound, "advertised", s.url)
	if s.opts.OnListen != nil {
		s.opts.OnListen(bound)
	}
	return nil
}

// Grant implements fleet.ControlPlane: durably publish the spec and the
// fencing lease exactly like the filesystem plane, then swap the
// shard's in-memory epoch so in-flight RPCs from the previous epoch
// fence immediately.
func (s *Server) Grant(spec *fleet.WorkerSpec, lease *checkpoint.Lease) error {
	sh := s.shard(spec.Shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := fleet.SaveWorkerSpec(spec.Paths.Spec, spec); err != nil {
		return err
	}
	if err := checkpoint.SaveLease(spec.Paths.Lease, lease); err != nil {
		return err
	}
	if sh.out != nil {
		sh.out.Close()
		sh.out = nil
	}
	sh.epoch = spec.Epoch
	sh.spec = spec
	sh.outSize = 0
	return nil
}

// WorkerEnv implements fleet.ControlPlane: a locally-spawned network
// worker finds its grant through the join URL plus shard/epoch.
func (s *Server) WorkerEnv(spec *fleet.WorkerSpec) []string {
	return []string{
		JoinEnv + "=" + s.url,
		ShardEnv + "=" + strconv.Itoa(spec.Shard),
		EpochEnv + "=" + strconv.Itoa(spec.Epoch),
		TokenEnv + "=" + s.opts.Token,
	}
}

// Offer implements fleet.RemotePlane: make the grant acquirable by a
// joining worker. Offers are best-effort — the coordinator re-offers a
// grant that sits unadopted — so a full queue sheds the oldest entry.
func (s *Server) Offer(spec *fleet.WorkerSpec) {
	select {
	case s.offers <- spec:
		return
	default:
	}
	select {
	case <-s.offers:
	default:
	}
	select {
	case s.offers <- spec:
	default:
	}
}

// TakeExit implements fleet.RemotePlane: consume a joined worker's
// reported exit code for the epoch, if one arrived.
func (s *Server) TakeExit(shard, epoch int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	code, ok := s.exits[[2]int{shard, epoch}]
	if ok {
		delete(s.exits, [2]int{shard, epoch})
	}
	return code, ok
}

// Close implements fleet.ControlPlane.
func (s *Server) Close() error {
	if s.srv != nil {
		s.srv.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.out != nil {
			sh.out.Close()
			sh.out = nil
		}
		sh.mu.Unlock()
	}
	return nil
}

func (s *Server) shard(i int) *netShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[i]
	if !ok {
		sh = &netShard{epoch: -1}
		s.shards[i] = sh
	}
	return sh
}

// currentEpoch resolves the shard's live epoch under sh.mu. When the
// server has not granted in this incarnation (coordinator restart), the
// lease file on disk is authoritative.
func (s *Server) currentEpoch(sh *netShard, shard int) int {
	if sh.spec != nil {
		return sh.epoch
	}
	l, err := checkpoint.LoadLease(fleet.PathsFor(s.info.Dir, shard, 0, s.info.Format).Lease)
	if err != nil {
		return -1
	}
	sh.epoch = l.Epoch
	return l.Epoch
}

func (s *Server) journal(e trace.JEntry) {
	if s.info.Journal != nil {
		s.info.Journal(e)
	}
}

func (s *Server) count(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// ---------------------------------------------------------------------
// HTTP plumbing.
// ---------------------------------------------------------------------

func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.count(s.mRPCs)
		if s.opts.Token != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get(headerToken)), []byte(s.opts.Token)) != 1 {
			writeError(w, http.StatusUnauthorized, codeUnauthorized, "bad or missing fleet token")
			return
		}
		h(w, r)
	}
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Code: code, Detail: detail})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// fence rejects the RPC and attributes the rejection in the journal.
func (s *Server) fence(w http.ResponseWriter, rpc string, shard, gotEpoch, curEpoch int) {
	s.count(s.mFenced)
	s.journal(trace.JEntry{
		Kind:   trace.JFleetNetFence,
		Index:  shard,
		Reason: rpc,
		Detail: fmt.Sprintf("epoch %d, current %d", gotEpoch, curEpoch),
	})
	writeError(w, http.StatusConflict, codeFenced,
		fmt.Sprintf("shard %d epoch %d superseded (current %d)", shard, gotEpoch, curEpoch))
}

func shardEpochQuery(r *http.Request) (shard, epoch int, err error) {
	shard, err1 := strconv.Atoi(r.URL.Query().Get("shard"))
	epoch, err2 := strconv.Atoi(r.URL.Query().Get("epoch"))
	if err1 != nil || err2 != nil || shard < 0 {
		return 0, 0, fmt.Errorf("want integer shard= and epoch=")
	}
	return shard, epoch, nil
}

// ---------------------------------------------------------------------
// Handlers.
// ---------------------------------------------------------------------

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	shard, epoch, err := shardEpochQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	sh := s.shard(shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := s.currentEpoch(sh, shard)
	if sh.spec == nil || epoch != cur {
		s.fence(w, "spec", shard, epoch, cur)
		return
	}
	writeJSON(w, sh.spec)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	pid := req.PID
	if req.Remote {
		// Remote pids are recorded negated so a restarted coordinator's
		// liveness probe (kill -0) can never match an unrelated local
		// process that happens to share the number.
		if pid > 0 {
			pid = -pid
		} else if pid == 0 {
			pid = -1
		}
	}
	sh := s.shard(req.Shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := s.currentEpoch(sh, req.Shard)
	if req.Epoch != cur {
		s.fence(w, "renew", req.Shard, req.Epoch, cur)
		return
	}
	paths := fleet.PathsFor(s.info.Dir, req.Shard, req.Epoch, s.info.Format)
	if _, err := checkpoint.RenewLease(paths.Lease, req.Epoch, pid, time.Now()); err != nil {
		if errors.Is(err, checkpoint.ErrLeaseFenced) {
			s.fence(w, "renew", req.Shard, req.Epoch, cur)
			return
		}
		writeError(w, http.StatusInternalServerError, codeConflict, err.Error())
		return
	}
	writeJSON(w, renewResponse{RatePPS: fleet.ReadRateFile(paths.Rate)})
}

func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	shard, epoch, err := shardEpochQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	sh := s.shard(shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := s.currentEpoch(sh, shard)
	if epoch != cur {
		s.fence(w, "checkpoint_get", shard, epoch, cur)
		return
	}
	data, err := os.ReadFile(fleet.PathsFor(s.info.Dir, shard, epoch, s.info.Format).Checkpoint)
	if err != nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	shard, epoch, err := shardEpochQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxCheckpoint+1))
	if err != nil || len(data) > maxCheckpoint {
		writeError(w, http.StatusBadRequest, codeBadRequest, "checkpoint body unreadable or oversized")
		return
	}
	var snap checkpoint.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "checkpoint not a snapshot: "+err.Error())
		return
	}
	sh := s.shard(shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := s.currentEpoch(sh, shard)
	if epoch != cur {
		s.fence(w, "checkpoint_put", shard, epoch, cur)
		return
	}
	paths := fleet.PathsFor(s.info.Dir, shard, epoch, s.info.Format)
	if l, err := checkpoint.LoadLease(paths.Lease); err == nil {
		if err := snap.Verify(l.Fingerprint); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "fingerprint: "+err.Error())
			return
		}
	}
	// Monotonicity: a delayed or duplicated upload must never regress
	// the durable checkpoint below what a successor would resume from.
	if prev, err := checkpoint.Load(paths.Checkpoint); err == nil && prev.WrittenAt.After(snap.WrittenAt) {
		s.journal(trace.JEntry{
			Kind:   trace.JFleetNetCkptRej,
			Index:  shard,
			Reason: "stale_written_at",
			Detail: fmt.Sprintf("epoch %d: held %s, got %s", epoch,
				prev.WrittenAt.Format(time.RFC3339Nano), snap.WrittenAt.Format(time.RFC3339Nano)),
		})
		writeError(w, http.StatusConflict, codeConflict, "checkpoint older than durable one")
		return
	}
	if err := atomicWrite(paths.Checkpoint, data); err != nil {
		writeError(w, http.StatusInternalServerError, codeConflict, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	shard, epoch, err := shardEpochQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	offset, err := strconv.ParseInt(r.URL.Query().Get("offset"), 10, 64)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "want integer offset=")
		return
	}
	chunk, err := io.ReadAll(io.LimitReader(r.Body, maxChunk+1))
	if err != nil || len(chunk) > maxChunk {
		writeError(w, http.StatusBadRequest, codeBadRequest, "chunk unreadable or oversized")
		return
	}
	if want := r.Header.Get(headerChunkSHA); want != "" {
		got := sha256.Sum256(chunk)
		if hex.EncodeToString(got[:]) != want {
			writeError(w, http.StatusBadRequest, codeBadRequest, "chunk digest mismatch")
			return
		}
	}
	sh := s.shard(shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := s.currentEpoch(sh, shard)
	if epoch != cur {
		s.fence(w, "result", shard, epoch, cur)
		return
	}
	if err := s.openOutLocked(sh, shard, epoch); err != nil {
		writeError(w, http.StatusInternalServerError, codeConflict, err.Error())
		return
	}
	switch {
	case offset == sh.outSize:
		n, err := sh.out.Write(chunk)
		sh.outSize += int64(n)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeConflict, err.Error())
			return
		}
		if s.mBytes != nil {
			s.mBytes.Add(uint64(n))
		}
	case offset < sh.outSize:
		// Duplicated or retried chunk: the bytes are already durable;
		// ack with the authoritative size, never re-append.
	default:
		// Gap: an earlier chunk was lost in flight. Answer with the
		// authoritative size so the client rewinds and re-sends.
		s.count(s.mGaps)
		s.journal(trace.JEntry{
			Kind:   trace.JFleetNetGap,
			Index:  shard,
			Reason: "result",
			Detail: fmt.Sprintf("epoch %d: offset %d past size %d", epoch, offset, sh.outSize),
		})
	}
	writeJSON(w, resultResponse{Size: sh.outSize})
}

// openOutLocked lazily opens the epoch's run file for appending,
// adopting whatever size is already durable (coordinator restart,
// server-side reopen). Caller holds sh.mu.
func (s *Server) openOutLocked(sh *netShard, shard, epoch int) error {
	if sh.out != nil {
		return nil
	}
	paths := fleet.PathsFor(s.info.Dir, shard, epoch, s.info.Format)
	f, err := os.OpenFile(paths.Output, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleetnet: open run file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("fleetnet: stat run file: %w", err)
	}
	sh.out = f
	sh.outSize = st.Size()
	return nil
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxCommitBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	sh := s.shard(req.Shard)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := s.currentEpoch(sh, req.Shard)
	if req.Epoch != cur {
		s.fence(w, "commit", req.Shard, req.Epoch, cur)
		return
	}
	paths := fleet.PathsFor(s.info.Dir, req.Shard, req.Epoch, s.info.Format)
	if _, err := os.Stat(paths.Metadata); err == nil {
		// Retried commit of an applied epoch: idempotent ack.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	size, digest, err := fileDigest(paths.Output)
	if err != nil && !os.IsNotExist(err) {
		writeError(w, http.StatusInternalServerError, codeConflict, err.Error())
		return
	}
	if size != req.Size || (req.Size > 0 && digest != req.SHA256) {
		// The client believes it shipped more (or different) bytes than
		// the server holds — lost chunks. Refuse; the client re-syncs
		// and retries.
		writeError(w, http.StatusConflict, codeConflict,
			fmt.Sprintf("run file %d bytes sha %s, commit names %d bytes sha %s",
				size, digest, req.Size, req.SHA256))
		return
	}
	if sh.out != nil {
		sh.out.Close()
		sh.out = nil
	}
	if err := atomicWrite(paths.Metadata, req.Metadata); err != nil {
		writeError(w, http.StatusInternalServerError, codeConflict, err.Error())
		return
	}
	s.count(s.mCommits)
	s.journal(trace.JEntry{
		Kind:   trace.JFleetNetCommit,
		Index:  req.Shard,
		Detail: fmt.Sprintf("epoch %d: %d bytes", req.Epoch, req.Size),
	})
	// Done-mark is advisory (the metadata file IS the commit record);
	// mirror the filesystem plane's logged-not-fatal policy.
	if l, err := checkpoint.LoadLease(paths.Lease); err == nil && l.Epoch == req.Epoch {
		l.State = checkpoint.LeaseDone
		l.RenewedAt = time.Now()
		if err := checkpoint.SaveLease(paths.Lease, l); err != nil {
			s.log.Warn("lease done-mark failed (commit record already durable)",
				"shard", req.Shard, "err", err)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait <= 0 || wait > 30*time.Second {
		wait = 30 * time.Second
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		select {
		case spec := <-s.offers:
			// A re-offered grant may have been superseded while queued;
			// hand out only grants that are still the shard's current
			// epoch.
			sh := s.shard(spec.Shard)
			sh.mu.Lock()
			cur := s.currentEpoch(sh, spec.Shard)
			sh.mu.Unlock()
			if spec.Epoch != cur {
				continue
			}
			s.journal(trace.JEntry{
				Kind:   trace.JFleetAcquire,
				Index:  spec.Shard,
				Name:   spec.WorkerID(),
				Detail: fmt.Sprintf("epoch %d acquired by %s", spec.Epoch, r.RemoteAddr),
			})
			writeJSON(w, spec)
			return
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleExit(w http.ResponseWriter, r *http.Request) {
	var req exitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.exits[[2]int{req.Shard, req.Epoch}] = req.Code
	s.mu.Unlock()
	s.journal(trace.JEntry{
		Kind:   trace.JFleetNetExit,
		Index:  req.Shard,
		Detail: fmt.Sprintf("epoch %d exit code %d", req.Epoch, req.Code),
	})
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------
// Small file helpers.
// ---------------------------------------------------------------------

// atomicWrite lands bytes under path via temp+rename so readers (and a
// crashed server's successor) never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// fileDigest returns a file's length and hex SHA-256. A missing file
// digests as (0, sha256("")) with the stat error passed through.
func fileDigest(path string) (int64, string, error) {
	h := sha256.New()
	f, err := os.Open(path)
	if err != nil {
		return 0, hex.EncodeToString(h.Sum(nil)), err
	}
	defer f.Close()
	n, err := io.Copy(h, f)
	if err != nil {
		return n, "", err
	}
	return n, hex.EncodeToString(h.Sum(nil)), nil
}
