package fleetnet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/fleet"
)

// ErrNoWork is returned by Acquire when the long-poll elapsed without
// the coordinator offering a grant.
var ErrNoWork = errors.New("fleetnet: no grant offered")

// chunkSize bounds one result-upload RPC. Small enough that a retry
// after a mid-body partition is cheap, large enough to amortize the
// round trip.
const chunkSize = 256 << 10

// Client is the worker's side of the network control plane — a
// fleet.WorkerPlane whose durable writes are RPCs against the
// coordinator. The scan engine works against a private local spool
// (checkpoint + result files in a temp dir); Sync ships the spool
// upstream in digest-checked, offset-idempotent chunks, and Commit
// publishes the epoch's metadata only after the server confirms it
// holds every result byte.
//
// Every RPC carries the granted epoch; a codeFenced verdict surfaces as
// a wrapped checkpoint.ErrLeaseFenced, which the worker runtime treats
// exactly like a filesystem lease fencing.
type Client struct {
	base   string
	token  string
	shard  int
	epoch  int
	remote bool
	hc     *http.Client
	log    *slog.Logger

	spec       *fleet.WorkerSpec
	workDir    string
	ckptPath   string
	spoolPath  string
	out        *os.File
	rpcTimeout time.Duration

	rateMu sync.Mutex
	rate   float64

	syncMu   sync.Mutex
	uploaded int64
	lastCkpt [sha256.Size]byte
	sentCkpt bool
}

// Dial fetches the grant for (shard, epoch) from the coordinator and
// builds the worker plane for it. The spec RPC is retried with bounded
// backoff so a worker spawned a beat before the listener settles still
// joins.
func Dial(baseURL, token string, shard, epoch int, logger *slog.Logger) (*Client, error) {
	c := newClient(baseURL, token, shard, epoch, logger)
	var spec fleet.WorkerSpec
	q := url.Values{"shard": {strconv.Itoa(shard)}, "epoch": {strconv.Itoa(epoch)}}
	err := c.rpcRetry("spec", 6, func() error {
		return c.doJSON(http.MethodGet, pathSpec+"?"+q.Encode(), nil, &spec)
	})
	if err != nil {
		return nil, fmt.Errorf("fleetnet: join %s: %w", baseURL, err)
	}
	if err := c.adoptSpec(&spec); err != nil {
		return nil, err
	}
	return c, nil
}

// Acquire long-polls the coordinator for an offered grant and builds
// the plane for it. It returns ErrNoWork when the wait elapsed quietly;
// connection errors pass through for the caller's backoff.
func Acquire(ctx context.Context, baseURL, token string, wait time.Duration, logger *slog.Logger) (*Client, error) {
	c := newClient(baseURL, token, -1, -1, logger)
	body, _ := json.Marshal(acquireRequest{WaitMS: wait.Milliseconds()})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+pathAcquire, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(headerToken, token)
	hc := &http.Client{Timeout: wait + 10*time.Second}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, ErrNoWork
	case http.StatusOK:
	default:
		return nil, decodeError(resp)
	}
	var spec fleet.WorkerSpec
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&spec); err != nil {
		return nil, fmt.Errorf("fleetnet: acquire decode: %w", err)
	}
	c.shard, c.epoch, c.remote = spec.Shard, spec.Epoch, true
	if err := c.adoptSpec(&spec); err != nil {
		return nil, err
	}
	return c, nil
}

// ReportExit best-effort tells the coordinator how a joined worker's
// epoch ended, so reclaim can be attributed faster than lease expiry.
func ReportExit(baseURL, token string, shard, epoch, code int) {
	body, _ := json.Marshal(exitRequest{Shard: shard, Epoch: epoch, Code: code})
	req, err := http.NewRequest(http.MethodPost, baseURL+pathExit, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set(headerToken, token)
	req.Header.Set(headerShard, strconv.Itoa(shard))
	hc := &http.Client{Timeout: 2 * time.Second}
	if resp, err := hc.Do(req); err == nil {
		resp.Body.Close()
	}
}

func newClient(baseURL, token string, shard, epoch int, logger *slog.Logger) *Client {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Client{
		base:       baseURL,
		token:      token,
		shard:      shard,
		epoch:      epoch,
		log:        logger,
		hc:         &http.Client{Timeout: 2 * time.Second},
		rpcTimeout: 2 * time.Second,
		rate:       -1,
	}
}

// adoptSpec finishes construction once the grant is known: size the
// per-RPC timeout off the lease TTL and lay out the local spool.
func (c *Client) adoptSpec(spec *fleet.WorkerSpec) error {
	c.spec = spec
	if ttl := spec.LeaseTTL; ttl > 0 {
		t := ttl / 2
		if t < 100*time.Millisecond {
			t = 100 * time.Millisecond
		}
		if t > 5*time.Second {
			t = 5 * time.Second
		}
		c.rpcTimeout = t
		c.hc.Timeout = t
	}
	dir, err := os.MkdirTemp("", fmt.Sprintf("zmapgo-fleetnet-s%d-e%d-", spec.Shard, spec.Epoch))
	if err != nil {
		return fmt.Errorf("fleetnet: spool dir: %w", err)
	}
	c.workDir = dir
	c.ckptPath = dir + "/scan.ckpt"
	c.spoolPath = dir + "/out.spool"
	return nil
}

// Spec returns the granted worker spec (valid after Dial/Acquire).
func (c *Client) Spec() *fleet.WorkerSpec { return c.spec }

// ---------------------------------------------------------------------
// fleet.WorkerPlane implementation.
// ---------------------------------------------------------------------

// Adopt implements fleet.WorkerPlane: the first renewal, retried a few
// beats so a listener mid-hiccup does not kill a fresh worker.
func (c *Client) Adopt(pid int, now time.Time) error {
	return c.rpcRetry("adopt", 4, func() error {
		_, err := c.renewOnce(pid)
		return err
	})
}

// Renew implements fleet.WorkerPlane: one heartbeat, one RPC — the
// caller's heartbeat loop is the retry policy, and the self-fence clock
// (WorkerSpec.LeaseTTL) bounds how long failures are tolerated.
func (c *Client) Renew(pid int, now time.Time) (float64, error) {
	rate, err := c.renewOnce(pid)
	if err != nil {
		return -1, err
	}
	c.rateMu.Lock()
	c.rate = rate
	c.rateMu.Unlock()
	return rate, nil
}

func (c *Client) renewOnce(pid int) (float64, error) {
	var resp renewResponse
	err := c.doJSON(http.MethodPost, pathRenew,
		renewRequest{Shard: c.shard, Epoch: c.epoch, PID: pid, Remote: c.remote}, &resp)
	if err != nil {
		return -1, err
	}
	return resp.RatePPS, nil
}

// RateCap implements fleet.WorkerPlane: the share piggybacked on the
// last successful heartbeat (no extra round trip). Negative until one
// arrives, which callers treat as "no update yet".
func (c *Client) RateCap() float64 {
	c.rateMu.Lock()
	defer c.rateMu.Unlock()
	return c.rate
}

// CheckpointPath implements fleet.WorkerPlane: the engine snapshots
// into the private spool; Sync ships it upstream.
func (c *Client) CheckpointPath() string { return c.ckptPath }

// LoadCheckpoint implements fleet.WorkerPlane: fetch the coordinator's
// durable snapshot for this shard (204 = fresh start).
func (c *Client) LoadCheckpoint() (*checkpoint.Snapshot, error) {
	q := url.Values{"shard": {strconv.Itoa(c.shard)}, "epoch": {strconv.Itoa(c.epoch)}}
	var snap *checkpoint.Snapshot
	err := c.rpcRetry("checkpoint_get", 4, func() error {
		req, err := c.newRequest(http.MethodGet, pathCheckpoint+"?"+q.Encode(), nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusNoContent:
			snap = nil
			return nil
		case http.StatusOK:
			data, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpoint))
			if err != nil {
				return err
			}
			var sn checkpoint.Snapshot
			if err := json.Unmarshal(data, &sn); err != nil {
				return fmt.Errorf("fleetnet: decode checkpoint: %w", err)
			}
			snap = &sn
			return nil
		default:
			return decodeError(resp)
		}
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// OpenResults implements fleet.WorkerPlane: the engine writes result
// rows to the local spool file; Sync ships them.
func (c *Client) OpenResults() (io.WriteCloser, error) {
	f, err := os.OpenFile(c.spoolPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c.out = f
	return f, nil
}

// Sync implements fleet.WorkerPlane: make the coordinator's durable
// view catch up with local progress. Ordering is the correctness core:
// the local checkpoint is read FIRST, then the spool is shipped through
// its CURRENT size, then the checkpoint is uploaded. Because the engine
// flushes result rows before writing a checkpoint, spool-size-now ≥
// rows covered by the snapshot read first — so the server can never
// hold a checkpoint whose covered rows it lacks, and a reclaimed shard
// resumed elsewhere never skips a row.
func (c *Client) Sync() error {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	ckpt, ckptErr := os.ReadFile(c.ckptPath)
	if err := c.uploadSpoolLocked(); err != nil {
		return err
	}
	if ckptErr != nil || len(ckpt) == 0 {
		return nil // no checkpoint yet
	}
	sum := sha256.Sum256(ckpt)
	if c.sentCkpt && sum == c.lastCkpt {
		return nil
	}
	q := url.Values{"shard": {strconv.Itoa(c.shard)}, "epoch": {strconv.Itoa(c.epoch)}}
	err := c.rpcRetry("checkpoint_put", 3, func() error {
		req, err := c.newRequest(http.MethodPut, pathCheckpoint+"?"+q.Encode(), bytes.NewReader(ckpt))
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent {
			return nil
		}
		werr := decodeError(resp)
		if isCode(werr, codeConflict) {
			// The server holds a newer snapshot (a delayed duplicate of
			// ours landed first, or a successor already progressed).
			// Local state is simply behind; not an error.
			return nil
		}
		return werr
	})
	if err != nil {
		return err
	}
	c.lastCkpt, c.sentCkpt = sum, true
	return nil
}

// uploadSpoolLocked ships spool bytes [uploaded, size) in digest-tagged
// chunks, adopting the server's authoritative size after every RPC —
// which makes duplicated uploads no-ops and lost ones self-healing
// (the server answers with its size and we rewind). Caller holds
// syncMu.
func (c *Client) uploadSpoolLocked() error {
	st, err := os.Stat(c.spoolPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	size := st.Size()
	if size <= c.uploaded {
		return nil
	}
	f, err := os.Open(c.spoolPath)
	if err != nil {
		return err
	}
	defer f.Close()
	for c.uploaded < size {
		n := size - c.uploaded
		if n > chunkSize {
			n = chunkSize
		}
		chunk := make([]byte, n)
		if _, err := f.ReadAt(chunk, c.uploaded); err != nil {
			return fmt.Errorf("fleetnet: spool read: %w", err)
		}
		sum := sha256.Sum256(chunk)
		q := url.Values{
			"shard":  {strconv.Itoa(c.shard)},
			"epoch":  {strconv.Itoa(c.epoch)},
			"offset": {strconv.FormatInt(c.uploaded, 10)},
		}
		var resp resultResponse
		before := c.uploaded
		err := c.rpcRetry("result", 4, func() error {
			req, err := c.newRequest(http.MethodPost, pathResult+"?"+q.Encode(), bytes.NewReader(chunk))
			if err != nil {
				return err
			}
			req.Header.Set(headerChunkSHA, hex.EncodeToString(sum[:]))
			return c.finishJSON(req, &resp)
		})
		if err != nil {
			return err
		}
		switch {
		case resp.Size > before:
			c.uploaded = resp.Size
		case resp.Size == before:
			// The server neither applied nor already held these bytes;
			// retrying identical input cannot converge.
			return fmt.Errorf("fleetnet: result upload made no progress at offset %d", before)
		default:
			// Gap verdict: the server lost earlier chunks; rewind to its
			// authoritative size and re-send from there.
			c.uploaded = resp.Size
		}
	}
	return nil
}

// Commit implements fleet.WorkerPlane: final Sync, then publish the
// metadata document with the complete run file's length and digest.
// The server applies it atomically and idempotently; a codeConflict
// verdict (lost chunks) triggers one more Sync and a retry.
func (c *Client) Commit(metadata []byte) error {
	if err := c.Sync(); err != nil {
		return err
	}
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	size, digest, err := spoolDigest(c.spoolPath)
	if err != nil {
		return err
	}
	req := commitRequest{Shard: c.shard, Epoch: c.epoch, Size: size, SHA256: digest, Metadata: metadata}
	commitOnce := func() error {
		return c.doJSON(http.MethodPost, pathCommit, req, nil)
	}
	err = c.rpcRetry("commit", 5, commitOnce)
	if isCode(err, codeConflict) {
		if err := c.uploadSpoolLocked(); err != nil {
			return err
		}
		err = c.rpcRetry("commit", 3, commitOnce)
	}
	return err
}

// Close implements fleet.WorkerPlane: drop the local spool without
// committing.
func (c *Client) Close() error {
	if c.out != nil {
		c.out.Close()
		c.out = nil
	}
	if c.workDir != "" {
		os.RemoveAll(c.workDir)
	}
	return nil
}

func spoolDigest(path string) (int64, string, error) {
	n, digest, err := fileDigest(path)
	if err != nil && os.IsNotExist(err) {
		return 0, digest, nil
	}
	return n, digest, err
}

// ---------------------------------------------------------------------
// RPC plumbing: per-RPC timeouts, bounded backoff, fencing verdicts.
// ---------------------------------------------------------------------

// wireError is a server verdict (4xx/409) carried back to the caller.
// Fenced verdicts additionally match checkpoint.ErrLeaseFenced so the
// worker runtime's existing fencing paths fire unchanged.
type wireError struct {
	Status int
	Code   string
	Detail string
}

func (e *wireError) Error() string {
	return fmt.Sprintf("fleetnet: server says %s (%d): %s", e.Code, e.Status, e.Detail)
}

func (e *wireError) Unwrap() error {
	if e.Code == codeFenced {
		return checkpoint.ErrLeaseFenced
	}
	return nil
}

func isCode(err error, code string) bool {
	var we *wireError
	return errors.As(err, &we) && we.Code == code
}

func decodeError(resp *http.Response) error {
	var body errorResponse
	json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	if body.Code == "" {
		body.Code = codeConflict
		if resp.StatusCode >= 500 {
			body.Code = "server_error"
		}
	}
	return &wireError{Status: resp.StatusCode, Code: body.Code, Detail: body.Detail}
}

func (c *Client) newRequest(method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(headerToken, c.token)
	if c.shard >= 0 {
		req.Header.Set(headerShard, strconv.Itoa(c.shard))
	}
	return req, nil
}

// doJSON performs one RPC with a JSON request body (nil = none) and
// decodes a JSON response into out (nil = expect no body).
func (c *Client) doJSON(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := c.newRequest(method, path, body)
	if err != nil {
		return err
	}
	return c.finishJSON(req, out)
}

func (c *Client) finishJSON(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
}

// rpcRetry runs fn up to attempts times with doubling backoff
// (50ms..800ms), stopping immediately on server verdicts that retrying
// cannot change: fencing, bad requests, auth failures.
func (c *Client) rpcRetry(rpc string, attempts int, fn func() error) error {
	backoff := 50 * time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if errors.Is(err, checkpoint.ErrLeaseFenced) ||
			isCode(err, codeBadRequest) || isCode(err, codeUnauthorized) || isCode(err, codeConflict) {
			return err
		}
		if i < attempts-1 {
			c.log.Debug("rpc retry", "rpc", rpc, "attempt", i+1, "err", err)
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 800*time.Millisecond {
				backoff = 800 * time.Millisecond
			}
		}
	}
	return fmt.Errorf("fleetnet: %s failed after %d attempts: %w", rpc, attempts, err)
}
