package health

import (
	"testing"
	"time"
)

// TestCollapsePersistenceBeatsBurstyLoss is the failing-first contrast
// for Gilbert-Elliott weather at the controller level: isolated
// collapsed windows (a loss burst clips one evidence window, then the
// link heals) must not move the rate, while the legacy hair-trigger
// (CollapseWindows: 1) spirals to the floor on exactly the same
// window script. The acceptance bars mirror ISSUE 6: hardened keeps
// the average rate >= 80% of configured, legacy collapses below 50%.
func TestCollapsePersistenceBeatsBurstyLoss(t *testing.T) {
	script := func(collapseWindows int) (avg float64, decreases uint64) {
		c := NewController(Config{
			ConfiguredRate:  10000,
			CollapseWindows: collapseWindows,
			// Parole/quarantine irrelevant here.
			QuarantineThreshold: -1,
		})
		now := time.Unix(0, 0)
		var sum float64
		const windows = 60
		for i := 0; i < windows; i++ {
			if i >= 4 && i%5 == 4 {
				// An isolated burst clips this window to a 1% hit rate.
				feedWindow(c, 10, 1000, 10, 0)
			} else {
				feedWindow(c, 10, 1000, 100, 0)
			}
			now = tick(c, now)
			sum += c.Rate()
		}
		return sum / windows, c.Decreases()
	}

	avgHardened, decHardened := script(0) // 0 = default (2)
	if decHardened != 0 {
		t.Fatalf("hardened controller decreased %d times on isolated bursts", decHardened)
	}
	if avgHardened < 0.8*10000 {
		t.Fatalf("hardened average rate %.0f < 80%% of configured", avgHardened)
	}

	avgLegacy, decLegacy := script(1) // legacy hair-trigger
	if decLegacy == 0 {
		t.Fatal("legacy hair-trigger did not decrease; contrast test is vacuous")
	}
	if avgLegacy >= 0.5*10000 {
		t.Fatalf("legacy average rate %.0f >= 50%% of configured; burst script too gentle", avgLegacy)
	}
}

// TestConsecutiveCollapsedWindowsStillCut: real congestion (sustained
// collapse) must still pull the rate down under the hardened default.
func TestConsecutiveCollapsedWindowsStillCut(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 10000, QuarantineThreshold: -1})
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		feedWindow(c, 10, 1000, 100, 0)
		now = tick(c, now)
	}
	for i := 0; i < 4; i++ {
		feedWindow(c, 10, 1000, 10, 0)
		now = tick(c, now)
	}
	if c.Decreases() == 0 {
		t.Fatal("sustained collapse never decreased the rate")
	}
	if got := c.Rate(); got >= 10000 {
		t.Fatalf("rate = %v, want below configured under sustained collapse", got)
	}
}

// TestJitteredTicksDoNotFakeCollapse is the windowed-rate satellite
// regression: evidence windows are judged on measured elapsed time
// between ticks, not the assumed interval. A clump of early ticks
// arrives while this window's responses are still in flight; judged
// immediately (the legacy bug) the window reads as a collapse.
func TestJitteredTicksDoNotFakeCollapse(t *testing.T) {
	c := NewController(Config{
		ConfiguredRate:      10000,
		CollapseWindows:     1, // even the hair-trigger must not fire
		QuarantineThreshold: -1,
	})
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		feedWindow(c, 10, 1000, 100, 0)
		now = tick(c, now)
	}
	before := c.Rate()
	// Probes go out, then the ticker fires a jittered clump only
	// milliseconds after the last judgment — the responses have not
	// come back yet, so judged now the window reads 0% hit rate.
	feedWindow(c, 10, 1000, 0, 0)
	last := now.Add(-time.Second) // when the previous tick judged
	for i := 0; i < 3; i++ {
		c.Tick(last.Add(time.Duration(i+1) * 10 * time.Millisecond))
	}
	if got := c.Rate(); got != before {
		t.Fatalf("jittered ticks moved the rate: %v -> %v", before, got)
	}
	if c.Decreases() != 0 {
		t.Fatalf("jittered ticks recorded %d decreases", c.Decreases())
	}
	// The responses arrive; the next on-schedule tick sees a healthy
	// full-interval window.
	feedWindow(c, 10, 0, 100, 0)
	now = tick(c, now)
	if got := c.Rate(); got != before || c.Decreases() != 0 {
		t.Fatalf("full window judged unhealthy: rate %v, decreases %d", got, c.Decreases())
	}
}

// TestUnreachStormClampedToHoldPeriod: a sustained (or spoofed
// valid-quote) unreachable flood cuts the rate at most once per hold
// period — stepping down window by window, never spiraling within one
// hold — and never below MinRate.
func TestUnreachStormClampedToHoldPeriod(t *testing.T) {
	c := NewController(Config{
		ConfiguredRate:      10000,
		MinRate:             1000,
		HoldTicks:           4,
		QuarantineThreshold: -1,
	})
	now := time.Unix(0, 0)
	// 12 consecutive storm windows, one per second. Cuts are allowed
	// only at t=0, t=4, t=8: ceil(12/4) = 3 decreases.
	for i := 0; i < 12; i++ {
		feedWindow(c, 10, 1000, 10, 300)
		now = tick(c, now)
	}
	if got := c.Decreases(); got != 3 {
		t.Fatalf("decreases = %d, want 3 (one per hold period)", got)
	}
	if got := c.Rate(); got != 1250 {
		t.Fatalf("rate = %v, want 1250 after three halvings", got)
	}
	// The storm keeps raging: the rate parks at MinRate, never below.
	for i := 0; i < 40; i++ {
		feedWindow(c, 10, 1000, 10, 300)
		now = tick(c, now)
	}
	if got := c.Rate(); got != 1000 {
		t.Fatalf("rate = %v, want MinRate 1000 under sustained storm", got)
	}
}

// paroleConfig quarantines fast and paroles fast, on the test clock.
func paroleConfig() Config {
	return Config{
		QuarantineThreshold: 0.15,
		QuarantineBadTicks:  3,
		ParoleAfter:         5 * time.Second,
		ParoleInterval:      4 * time.Second,
		ParoleMinResponses:  4,
	}
}

// quarantinePrefix drives prefix p into quarantine and returns the
// advanced clock.
func quarantinePrefix(t *testing.T, c *Controller, p uint32, now time.Time) time.Time {
	t.Helper()
	for i := 0; i < 3; i++ {
		feedWindow(c, p, 200, 40, 0)
		now = tick(c, now)
	}
	for i := 0; i < 3; i++ {
		feedWindow(c, p, 200, 0, 0)
		now = tick(c, now)
	}
	if !c.Quarantined(p << 16) {
		t.Fatal("setup: prefix not quarantined")
	}
	return now
}

func TestParoleReleasesRecoveredPrefix(t *testing.T) {
	c := NewController(paroleConfig())
	now := quarantinePrefix(t, c, 0x0A10, time.Unix(0, 0))
	ip := uint32(0x0A10 << 16)

	// Before the parole window opens there is no re-probe budget.
	if c.TakeParole(ip) {
		t.Fatal("parole budget available before ParoleAfter elapsed")
	}
	now = now.Add(6 * time.Second)
	c.Tick(now)
	if c.ParoleGrants() != 1 {
		t.Fatalf("parole grants = %d, want 1", c.ParoleGrants())
	}
	if !c.TakeParole(ip) {
		t.Fatal("no parole budget after the window opened")
	}
	// The blackout was transient: parole probes answer at the old rate.
	feedWindow(c, 0x0A10, 40, 20, 0)
	now = tick(c, now)
	if c.Quarantined(ip) {
		t.Fatal("recovered prefix still quarantined after parole")
	}
	if c.ParoleReleases() != 1 {
		t.Fatalf("parole releases = %d, want 1", c.ParoleReleases())
	}
	recs := c.QuarantineRecords()
	if len(recs) != 1 || !recs[0].Released || recs[0].ParoleAttempts != 1 ||
		recs[0].ParoleRecv < 4 || recs[0].ReleasedAtSecs <= recs[0].AtSecs {
		t.Fatalf("parole trail not recorded: %+v", recs)
	}
	// Released means the budget is gone too.
	if c.TakeParole(ip) {
		t.Fatal("parole budget left after release")
	}
}

func TestParoleFailedAttemptReschedules(t *testing.T) {
	c := NewController(paroleConfig())
	now := quarantinePrefix(t, c, 0x0A11, time.Unix(0, 0))
	ip := uint32(0x0A11 << 16)

	now = now.Add(6 * time.Second)
	c.Tick(now) // window opens
	// Budget goes out, the prefix stays dark.
	for c.TakeParole(ip) {
		c.NoteSent(ip, 1)
	}
	now = now.Add(2 * time.Second)
	c.Tick(now) // budget spent + settle time: attempt fails
	if !c.Quarantined(ip) {
		t.Fatal("dark prefix released from parole without responses")
	}
	recs := c.QuarantineRecords()
	if len(recs) != 1 || recs[0].Released || recs[0].ParoleAttempts != 1 || recs[0].ParoleSent == 0 {
		t.Fatalf("failed attempt not recorded: %+v", recs)
	}
	if c.TakeParole(ip) {
		t.Fatal("budget survived a failed attempt")
	}
	// The next window opens a full ParoleInterval later, not sooner.
	c.Tick(now.Add(2 * time.Second))
	if c.ParoleGrants() != 1 {
		t.Fatal("second parole window opened early")
	}
	now = now.Add(5 * time.Second)
	c.Tick(now)
	if c.ParoleGrants() != 2 {
		t.Fatalf("parole grants = %d, want 2 after ParoleInterval", c.ParoleGrants())
	}
}

// TestParoleStateSurvivesRestore: quarantine + parole trail ride the
// Snapshot/Restore path, so kill-and-resume keeps both the skip set and
// the release history.
func TestParoleStateSurvivesRestore(t *testing.T) {
	c := NewController(paroleConfig())
	now := quarantinePrefix(t, c, 0x0A12, time.Unix(0, 0))
	st := c.Snapshot()
	if len(st.Quarantined) != 1 || st.Quarantined[0].BaseRate == 0 {
		t.Fatalf("snapshot lacks parole yardstick: %+v", st.Quarantined)
	}

	fresh := NewController(paroleConfig())
	fresh.Restore(st)
	ip := uint32(0x0A12 << 16)
	if !fresh.Quarantined(ip) {
		t.Fatal("restored controller lost the quarantine")
	}
	// Parole still works after resume: the wait restarts from Restore.
	fresh.Tick(now)
	now = now.Add(6 * time.Second)
	fresh.Tick(now)
	if fresh.ParoleGrants() == 0 {
		t.Fatal("restored controller never opened a parole window")
	}
	feedWindow(fresh, 0x0A12, 40, 20, 0)
	fresh.Tick(now.Add(time.Second))
	if fresh.Quarantined(ip) {
		t.Fatal("restored prefix not released after recovery")
	}

	// A released record restores as released: no quarantine, no parole.
	st2 := fresh.Snapshot()
	final := NewController(paroleConfig())
	final.Restore(st2)
	if final.Quarantined(ip) {
		t.Fatal("released prefix re-quarantined by Restore")
	}
	recs := final.QuarantineRecords()
	if len(recs) != 1 || !recs[0].Released {
		t.Fatalf("release trail lost across restore: %+v", recs)
	}
}
