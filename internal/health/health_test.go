package health

import (
	"sync"
	"testing"
	"time"
)

// tick advances one full default interval per call: evidence windows
// are judged on measured elapsed time, so test ticks must span it.
func tick(c *Controller, at time.Time) time.Time {
	c.Tick(at)
	return at.Add(time.Second)
}

// feedWindow simulates one tick's worth of traffic: sent probes spread
// over a /16, recv unique successes, unr unreachables.
func feedWindow(c *Controller, prefix uint32, sent, recv, unr int) {
	base := prefix << 16
	for i := 0; i < sent; i++ {
		c.NoteSent(base|uint32(i&0xFFFF), 1)
	}
	for i := 0; i < recv; i++ {
		c.NoteRecv(base | uint32(i&0xFFFF))
	}
	for i := 0; i < unr; i++ {
		c.NoteUnreach(base | uint32(i&0xFFFF))
	}
}

func TestAIMDDecreaseOnUnreachSpike(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 10000})
	if !c.Adaptive() {
		t.Fatal("controller should be adaptive with a configured rate")
	}
	if got := c.Rate(); got != 10000 {
		t.Fatalf("initial rate = %v, want 10000", got)
	}
	now := time.Unix(0, 0)
	// Window with a 10% unreachable fraction: well above the default
	// 1% threshold, and above 3x the (zero) baseline.
	feedWindow(c, 10, 1000, 50, 100)
	now = tick(c, now)
	if got := c.Rate(); got != 5000 {
		t.Fatalf("rate after unreach spike = %v, want 5000", got)
	}
	if c.Decreases() != 1 {
		t.Fatalf("decreases = %d, want 1", c.Decreases())
	}
}

func TestAIMDDecreaseOnHitRateCollapse(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 10000})
	now := time.Unix(0, 0)
	// Establish a healthy baseline: ~10% hit rate, no unreachables.
	for i := 0; i < 5; i++ {
		feedWindow(c, 10, 1000, 100, 0)
		now = tick(c, now)
	}
	before := c.Rate()
	// Hit rate silently collapses to 1% with no ICMP at all. One
	// collapsed window is weather; the default CollapseWindows=2 cuts
	// on the second consecutive one.
	feedWindow(c, 10, 1000, 10, 0)
	now = tick(c, now)
	if got := c.Rate(); got != before {
		t.Fatalf("rate moved on a single collapsed window: %v -> %v", before, got)
	}
	feedWindow(c, 10, 1000, 10, 0)
	tick(c, now)
	if got := c.Rate(); got >= before {
		t.Fatalf("rate did not decrease on hit-rate collapse: %v -> %v", before, got)
	}
	if c.Decreases() == 0 {
		t.Fatal("expected at least one recorded decrease")
	}
}

func TestAIMDAdditiveRecovery(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 10000, HoldTicks: 1, IncreasePerTick: 0.01})
	now := time.Unix(0, 0)
	feedWindow(c, 10, 1000, 50, 100)
	now = tick(c, now) // decrease to 5000, hold=1
	if got := c.Rate(); got != 5000 {
		t.Fatalf("rate = %v, want 5000", got)
	}
	// Healthy windows: first consumes the hold, then +1% of configured
	// rate per tick.
	for i := 0; i < 3; i++ {
		feedWindow(c, 10, 1000, 100, 0)
		now = tick(c, now)
	}
	want := 5000 + 2*100.0
	if got := c.Rate(); got != want {
		t.Fatalf("rate after recovery ticks = %v, want %v", got, want)
	}
	if c.Increases() != 2 {
		t.Fatalf("increases = %d, want 2", c.Increases())
	}
}

func TestAIMDRespectsMinRateAndCeiling(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 1000, MinRate: 400, HoldTicks: 1})
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		feedWindow(c, 10, 1000, 10, 200)
		now = tick(c, now)
	}
	if got := c.Rate(); got != 400 {
		t.Fatalf("rate floored at %v, want MinRate 400", got)
	}
	// Long healthy stretch cannot exceed the configured rate.
	for i := 0; i < 200; i++ {
		feedWindow(c, 10, 1000, 100, 0)
		now = tick(c, now)
	}
	if got := c.Rate(); got != 1000 {
		t.Fatalf("rate recovered to %v, want ceiling 1000", got)
	}
}

func TestSmallWindowsNotJudged(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 10000})
	now := time.Unix(0, 0)
	// 10 probes, all unreachable — but far below MinWindowProbes.
	feedWindow(c, 10, 10, 0, 10)
	tick(c, now)
	if got := c.Rate(); got != 10000 {
		t.Fatalf("rate moved on an unjudgeable window: %v", got)
	}
}

func TestQuarantineDarkPrefix(t *testing.T) {
	c := NewController(Config{
		ConfiguredRate:      0, // AIMD off; quarantine only
		QuarantineThreshold: 0.15,
		QuarantineBadTicks:  3,
	})
	if c.Adaptive() {
		t.Fatal("controller should not be adaptive without a rate")
	}
	now := time.Unix(0, 0)
	// Prefix 10.1.0.0/16 answers at 10% for a few windows.
	for i := 0; i < 3; i++ {
		feedWindow(c, 0x0A01, 200, 20, 0)
		now = tick(c, now)
	}
	if c.Quarantined(0x0A010000) {
		t.Fatal("responsive prefix must not be quarantined")
	}
	// Then goes completely dark for three consecutive windows.
	for i := 0; i < 3; i++ {
		feedWindow(c, 0x0A01, 200, 0, 0)
		now = tick(c, now)
	}
	if !c.Quarantined(0x0A010000) {
		t.Fatal("dark prefix not quarantined after bad windows")
	}
	if c.QuarantineCount() != 1 {
		t.Fatalf("quarantine count = %d, want 1", c.QuarantineCount())
	}
	recs := c.QuarantineRecords()
	if len(recs) != 1 || recs[0].Prefix != "10.1.0.0/16" {
		t.Fatalf("quarantine records = %+v", recs)
	}
	if recs[0].Index != 0x0A01 {
		t.Fatalf("record index = %#x, want 0x0A01", recs[0].Index)
	}
}

func TestNeverResponsivePrefixNotQuarantined(t *testing.T) {
	c := NewController(Config{QuarantineThreshold: 0.15})
	now := time.Unix(0, 0)
	// Empty address space: thousands of probes, zero responses, ever.
	for i := 0; i < 10; i++ {
		feedWindow(c, 0x0A02, 500, 0, 0)
		now = tick(c, now)
	}
	if c.Quarantined(0x0A020000) {
		t.Fatal("never-responsive prefix quarantined; it is just empty space")
	}
}

func TestQuarantineWindowCarryAcrossTicks(t *testing.T) {
	c := NewController(Config{
		QuarantineThreshold: 0.15,
		QuarantineMinProbes: 100,
		QuarantineBadTicks:  2,
	})
	now := time.Unix(0, 0)
	// Baseline.
	for i := 0; i < 2; i++ {
		feedWindow(c, 0x0A03, 200, 40, 0)
		now = tick(c, now)
	}
	// Dark, but only 30 probes per tick — windows must accumulate
	// across ticks before being judged.
	for i := 0; i < 12; i++ {
		feedWindow(c, 0x0A03, 30, 0, 0)
		now = tick(c, now)
	}
	if !c.Quarantined(0x0A030000) {
		t.Fatal("sparse dark prefix not quarantined despite window carry")
	}
}

func TestQuarantineRecoversFromSingleBadWindow(t *testing.T) {
	c := NewController(Config{QuarantineThreshold: 0.15, QuarantineBadTicks: 3})
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		feedWindow(c, 0x0A04, 200, 30, 0)
		now = tick(c, now)
	}
	// One bad window, then healthy again: strike counter must reset.
	feedWindow(c, 0x0A04, 200, 0, 0)
	now = tick(c, now)
	for i := 0; i < 5; i++ {
		feedWindow(c, 0x0A04, 200, 30, 0)
		now = tick(c, now)
	}
	feedWindow(c, 0x0A04, 200, 0, 0)
	now = tick(c, now)
	feedWindow(c, 0x0A04, 200, 0, 0)
	tick(c, now)
	if c.Quarantined(0x0A040000) {
		t.Fatal("prefix quarantined without consecutive bad windows")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 10000, QuarantineThreshold: 0.15})
	now := time.Unix(0, 0)
	feedWindow(c, 10, 1000, 50, 100)
	now = tick(c, now)
	for i := 0; i < 3; i++ {
		feedWindow(c, 0x0A05, 200, 30, 0)
		now = tick(c, now)
	}
	for i := 0; i < 3; i++ {
		feedWindow(c, 0x0A05, 200, 0, 0)
		now = tick(c, now)
	}
	if !c.Quarantined(0x0A050000) {
		t.Fatal("setup: prefix not quarantined")
	}
	st := c.Snapshot()
	if st.Decreases == 0 || st.RatePPS >= 10000 {
		t.Fatalf("snapshot = %+v, want decreased rate", st)
	}
	if len(st.Quarantined) != 1 {
		t.Fatalf("snapshot quarantined = %+v", st.Quarantined)
	}

	fresh := NewController(Config{ConfiguredRate: 10000, QuarantineThreshold: 0.15})
	fresh.Restore(st)
	if got := fresh.Rate(); got != st.RatePPS {
		t.Fatalf("restored rate = %v, want %v", got, st.RatePPS)
	}
	if !fresh.Quarantined(0x0A050000) {
		t.Fatal("restored controller lost the quarantine set")
	}
	if fresh.QuarantineCount() != 1 {
		t.Fatalf("restored quarantine count = %d", fresh.QuarantineCount())
	}
	// Restore clamps an out-of-range checkpoint rate to the new bounds.
	clamped := NewController(Config{ConfiguredRate: 2000})
	clamped.Restore(&State{RatePPS: 99999})
	if got := clamped.Rate(); got != 2000 {
		t.Fatalf("restored rate not clamped to ceiling: %v", got)
	}
	clamped.Restore(&State{RatePPS: 0.001})
	if got := clamped.Rate(); got < 1 {
		t.Fatalf("restored rate not clamped to floor: %v", got)
	}
	// Nil restore is a no-op.
	fresh.Restore(nil)
}

func TestNoteHotPathsConcurrent(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 1000, QuarantineThreshold: 0.15})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			base := uint32(g) << 16
			for i := 0; i < 2000; i++ {
				c.NoteSent(base|uint32(i), 1)
				if i%3 == 0 {
					c.NoteRecv(base | uint32(i))
				}
				if i%7 == 0 {
					c.NoteUnreach(base | uint32(i))
				}
				_ = c.Quarantined(base)
				_ = c.Rate()
			}
		}(g)
	}
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		now = tick(c, now)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	c.Tick(now)
	st := c.Snapshot()
	if st.Unreach == 0 {
		t.Fatal("unreach counter never advanced")
	}
}

// TestNoteRecvSamePrefixConcurrent hammers NoteRecv and NoteUnreach
// from several goroutines into the SAME /16 — the exact shape the
// sharded receive path produces when one prefix's responses spread
// across workers (fanout is per-host, not per-prefix) — and requires
// the counts to be exact, not merely race-free: a lost increment would
// skew the windowed response rate that drives quarantine decisions.
func TestNoteRecvSamePrefixConcurrent(t *testing.T) {
	c := NewController(Config{ConfiguredRate: 1000})
	const workers, perWorker = 8, 5000
	const prefix = uint32(0x0A0A) << 16
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.NoteRecv(prefix | uint32(g*perWorker+i))
				if i%5 == 0 {
					c.NoteUnreach(prefix | uint32(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if want := uint64(workers * perWorker); c.recvTotal.Load() != want {
		t.Errorf("recv total = %d, want %d (lost increments under contention)", c.recvTotal.Load(), want)
	}
	if want := uint64(workers * perWorker); c.prefixRecv[prefix>>16].Load() != want {
		t.Errorf("prefix recv = %d, want %d", c.prefixRecv[prefix>>16].Load(), want)
	}
	if want := uint64(workers * (perWorker / 5)); c.Snapshot().Unreach != want {
		t.Errorf("unreach total = %d, want %d", c.Snapshot().Unreach, want)
	}
}
