// Package health closes the loop between the receive path and the send
// rate — the scan-health subsystem the 10GigE retrospective motivates:
// past a capacity knee, pushing packets faster *loses* results, because
// the network (not the host) drops probes and responses. The engine's
// per-thread degradation (PR 1) only reacts to local transport errors;
// this package watches what the network itself says.
//
// Two mechanisms share one Controller:
//
//   - A global AIMD rate controller fed with windowed (not cumulative)
//     telemetry: when the windowed hit rate collapses relative to its
//     healthy baseline, or ICMP destination-unreachable messages spike,
//     the target rate is cut multiplicatively; after a hold-off it is
//     probed back up additively toward the configured rate. Senders
//     consult the controller's target at batch boundaries.
//
//   - Per-/16 interference quarantine: remote networks fingerprint and
//     filter scan traffic (Mazel & Strullu), so a prefix that has been
//     answering can go dark mid-scan. A previously-responsive /16 whose
//     windowed response rate stays far below its own baseline for
//     several consecutive windows is quarantined — probes stop, the
//     event is recorded for operator review — instead of burning the
//     probe budget into a black hole.
//
// Hot-path methods (NoteSent, NoteRecv, NoteUnreach, Quarantined, Rate)
// are lock-free; Tick runs the control decisions on whatever goroutine
// drives it (the engine runs one ticker per scan).
package health

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"zmapgo/internal/trace"
)

// Defaults for Config fields left zero.
const (
	DefaultDecreaseFactor      = 0.5
	DefaultIncreasePerTick     = 0.01
	DefaultHoldTicks           = 4
	DefaultCollapseRatio       = 0.5
	DefaultUnreachFraction     = 0.01
	DefaultMinWindowProbes     = 50
	DefaultMinWindowResponses  = 50
	DefaultBaselineGain        = 0.3
	DefaultQuarantineThreshold = 0.15
	DefaultQuarantineMinProbes = 32
	DefaultQuarantineBadTicks  = 3
	DefaultQuarantineMinResp   = 8
	DefaultInterval            = time.Second
	DefaultCollapseWindows     = 2
	DefaultParoleAfterTicks    = 30 // ParoleAfter = 30 * Interval
	DefaultParoleMinResponses  = 4
	DefaultParoleReleaseRatio  = 0.5
)

// Config tunes the controller. The zero value of every knob takes the
// package default above; ConfiguredRate <= 0 disables the AIMD loop
// (quarantine still works), QuarantineThreshold < 0 disables quarantine.
type Config struct {
	// ConfiguredRate is the operator's packets-per-second budget — the
	// ceiling additive recovery probes back toward. <= 0 disables AIMD
	// (an unlimited-rate scan has no rate to control).
	ConfiguredRate float64

	// MinRate floors multiplicative decrease. 0 means
	// max(ConfiguredRate/64, 1).
	MinRate float64

	// Interval is the expected tick period (informational; the engine
	// drives Tick on its own ticker). 0 means 1s.
	Interval time.Duration

	// DecreaseFactor multiplies the rate on a congestion signal (0 =
	// 0.5, the classic AIMD cut).
	DecreaseFactor float64

	// IncreasePerTick is the additive recovery step per healthy tick,
	// as a fraction of ConfiguredRate (0 = 0.01: a full recovery from
	// the floor takes ~100 healthy ticks).
	IncreasePerTick float64

	// HoldTicks is how many healthy ticks to sit still after a decrease
	// before probing upward again (0 = 4).
	HoldTicks int

	// CollapseRatio: a windowed hit rate below CollapseRatio * baseline
	// is a congestion signal (0 = 0.5). The baseline is an EWMA over
	// healthy windows, so it tracks the population's real density.
	CollapseRatio float64

	// UnreachFraction: a windowed ICMP-unreachable fraction (unreach /
	// probes sent) above this is a congestion signal (0 = 0.01).
	UnreachFraction float64

	// MinWindowProbes: windows with fewer probes sent are not judged
	// (0 = 50). Prevents end-of-scan noise from whipsawing the rate.
	MinWindowProbes uint64

	// MinWindowResponses sizes the hit-rate evidence window (0 = 50):
	// the collapse judgment and the baseline EWMA only run once the
	// window is large enough that a healthy scan would be expected to
	// carry this many responses (baseline * probes sent). Internet-wide
	// hit rates are ~1%, so a fixed probe-count window holds O(0)
	// expected responses and its hit rate is Poisson noise, not signal;
	// the evidence window scales with 1/density instead.
	MinWindowResponses uint64

	// BaselineGain is the EWMA gain for the healthy-window baselines
	// (0 = 0.3).
	BaselineGain float64

	// QuarantineThreshold: a previously-responsive /16 whose windowed
	// response rate falls below QuarantineThreshold times its own
	// baseline accumulates a bad-window strike. 0 = 0.15; negative
	// disables quarantine entirely.
	QuarantineThreshold float64

	// QuarantineMinProbes: per-prefix windows accumulate across ticks
	// until they carry at least this many probes before being judged
	// (0 = 32).
	QuarantineMinProbes uint64

	// QuarantineBadTicks: consecutive bad windows before the prefix is
	// quarantined (0 = 3).
	QuarantineBadTicks int

	// QuarantineMinResponses: a prefix must have produced at least this
	// many responses before the window under judgment to count as
	// "previously responsive" (0 = 8). Never-responsive prefixes are
	// ordinary empty address space, not interference.
	QuarantineMinResponses uint64

	// CollapseWindows is how many *consecutive* collapsed hit-rate
	// evidence windows are required before the multiplicative decrease
	// fires (0 = 2). Bursty non-congestion loss (Gilbert-Elliott
	// weather) collapses isolated windows; sustained congestion
	// collapses consecutive ones. 1 restores the legacy hair-trigger
	// behavior that a single loss burst could fool.
	CollapseWindows int

	// ParoleAfter is how long a quarantined prefix waits before its
	// first parole window — a budgeted low-rate re-probe that releases
	// the prefix if it answers again (a transient blackout, not a
	// permanent null-route). 0 = 30 * Interval; negative disables
	// parole, restoring quarantine-is-forever.
	ParoleAfter time.Duration

	// ParoleInterval is the wait between failed parole attempts
	// (0 = ParoleAfter).
	ParoleInterval time.Duration

	// ParoleMinResponses is how many responses a parole window needs to
	// release the prefix (0 = 4). The re-probe budget is sized so a
	// recovered prefix would produce about twice this many at its
	// pre-quarantine response rate.
	ParoleMinResponses uint64

	// ParoleReleaseRatio: release requires the parole window's response
	// rate to reach this fraction of the prefix's pre-quarantine
	// baseline (0 = 0.5).
	ParoleReleaseRatio float64

	// Logger receives controller decisions; nil discards them.
	Logger *slog.Logger
}

func (c *Config) setDefaults() {
	if c.MinRate <= 0 && c.ConfiguredRate > 0 {
		c.MinRate = c.ConfiguredRate / 64
		if c.MinRate < 1 {
			c.MinRate = 1
		}
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = DefaultDecreaseFactor
	}
	if c.IncreasePerTick <= 0 {
		c.IncreasePerTick = DefaultIncreasePerTick
	}
	if c.HoldTicks == 0 {
		c.HoldTicks = DefaultHoldTicks
	}
	if c.CollapseRatio <= 0 {
		c.CollapseRatio = DefaultCollapseRatio
	}
	if c.UnreachFraction <= 0 {
		c.UnreachFraction = DefaultUnreachFraction
	}
	if c.MinWindowProbes == 0 {
		c.MinWindowProbes = DefaultMinWindowProbes
	}
	if c.MinWindowResponses == 0 {
		c.MinWindowResponses = DefaultMinWindowResponses
	}
	if c.BaselineGain <= 0 || c.BaselineGain > 1 {
		c.BaselineGain = DefaultBaselineGain
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = DefaultQuarantineThreshold
	}
	if c.QuarantineMinProbes == 0 {
		c.QuarantineMinProbes = DefaultQuarantineMinProbes
	}
	if c.QuarantineBadTicks <= 0 {
		c.QuarantineBadTicks = DefaultQuarantineBadTicks
	}
	if c.QuarantineMinResponses == 0 {
		c.QuarantineMinResponses = DefaultQuarantineMinResp
	}
	if c.CollapseWindows <= 0 {
		c.CollapseWindows = DefaultCollapseWindows
	}
	if c.ParoleAfter == 0 {
		c.ParoleAfter = DefaultParoleAfterTicks * c.Interval
	}
	if c.ParoleInterval <= 0 {
		c.ParoleInterval = c.ParoleAfter
	}
	if c.ParoleMinResponses == 0 {
		c.ParoleMinResponses = DefaultParoleMinResponses
	}
	if c.ParoleReleaseRatio <= 0 {
		c.ParoleReleaseRatio = DefaultParoleReleaseRatio
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Quarantine records one quarantined /16: which prefix, how much had
// been probed and answered at the moment of quarantine, when (scan
// elapsed seconds), and the parole trail — attempts, re-probe traffic,
// and release, if the prefix came back. It rides checkpoints and the
// metadata document, so parole state survives kill-and-resume.
type Quarantine struct {
	Prefix string  `json:"prefix"`     // "a.b.0.0/16"
	Index  uint32  `json:"prefix_idx"` // ip >> 16, for machine restore
	Sent   uint64  `json:"sent"`
	Recv   uint64  `json:"recv"`
	AtSecs float64 `json:"at_secs"`

	// BaseRate is the prefix's pre-quarantine response rate (recv/sent
	// at quarantine time), the yardstick parole release is judged by.
	BaseRate float64 `json:"base_rate,omitempty"`

	// Parole trail: completed re-probe attempts, the probes/responses
	// they spent, and whether (and when) the prefix was released.
	ParoleAttempts int     `json:"parole_attempts,omitempty"`
	ParoleSent     uint64  `json:"parole_sent,omitempty"`
	ParoleRecv     uint64  `json:"parole_recv,omitempty"`
	Released       bool    `json:"released,omitempty"`
	ReleasedAtSecs float64 `json:"released_at_secs,omitempty"`
}

// State is the controller's persistable state: everything a resumed scan
// needs to avoid re-learning the network's capacity or re-probing
// quarantined prefixes.
type State struct {
	RatePPS         float64      `json:"rate_pps"`
	BaselineHitRate float64      `json:"baseline_hit_rate"`
	BaselineUnreach float64      `json:"baseline_unreach"`
	Unreach         uint64       `json:"unreach_total"`
	Decreases       uint64       `json:"rate_decreases"`
	Increases       uint64       `json:"rate_increases"`
	Quarantined     []Quarantine `json:"quarantined,omitempty"`
}

const prefixes = 1 << 16

// prefixWin is the per-/16 accumulation window, owned by the Tick
// goroutine: the window spans from the recorded bases to the live
// counters and rolls forward only once it carries enough probes.
type prefixWin struct {
	sentBase uint64
	recvBase uint64
	badTicks int
}

// Controller is the scan-health state machine. All Note*/Quarantined/
// Rate methods are safe for concurrent use from hot paths; Tick and
// Restore serialize on an internal mutex.
type Controller struct {
	cfg      Config
	adaptive bool

	// journal, when set, receives one entry per control decision — the
	// flight recorder's unsampled decision stream. Called only from Tick
	// (under c.mu), so the sink needs no ordering of its own.
	journal func(trace.JEntry)

	rateBits atomic.Uint64 // math.Float64bits of the current target rate

	sentTotal    atomic.Uint64
	recvTotal    atomic.Uint64
	unreachTotal atomic.Uint64
	quarCount    atomic.Uint64
	decreases    atomic.Uint64
	increases    atomic.Uint64

	prefixSent   []atomic.Uint64 // [prefixes] probes sent per /16
	prefixRecv   []atomic.Uint64 // [prefixes] unique successes per /16
	quarantined  []atomic.Bool   // [prefixes] O(1) send-path check
	paroleCredit []atomic.Int64  // [prefixes] parole re-probe budget

	paroleGrants   atomic.Uint64
	paroleReleases atomic.Uint64

	// newPrefixes collects first-touched /16s so Tick only walks
	// prefixes the scan actually probes.
	newMu       sync.Mutex
	newPrefixes []uint32

	mu         sync.Mutex // everything below
	start      time.Time
	tickSeen   bool
	resumeHold bool // Restore requested a hold anchored at the first tick
	lastSent   uint64
	lastRecv   uint64
	lastUnr    uint64
	evSent     uint64 // hit-rate evidence window anchors; these roll
	evRecv     uint64 // only when the window carries enough evidence
	evAt       time.Time

	baseline       float64 // EWMA hit rate over healthy windows
	baselineUnr    float64 // EWMA unreach fraction over healthy windows
	holdUntil      time.Time
	collapseStreak int

	active  []uint32 // touched prefixes, tick-owned
	wins    map[uint32]*prefixWin
	parole  map[uint32]*paroleState
	records []Quarantine
}

// paroleState is the tick-owned parole machine for one quarantined /16:
// when the next re-probe window opens, and — while one is active — the
// grant size and the counter anchors it is judged against.
type paroleState struct {
	nextAt   time.Time
	active   bool
	granted  int64
	sentBase uint64
	recvBase uint64
	grantAt  time.Time
	rec      int // index into records
}

// NewController builds a controller; the scan clock starts at the first
// Tick (or now, for records written before any tick).
func NewController(cfg Config) *Controller {
	cfg.setDefaults()
	c := &Controller{
		cfg:          cfg,
		adaptive:     cfg.ConfiguredRate > 0,
		prefixSent:   make([]atomic.Uint64, prefixes),
		prefixRecv:   make([]atomic.Uint64, prefixes),
		quarantined:  make([]atomic.Bool, prefixes),
		paroleCredit: make([]atomic.Int64, prefixes),
		wins:         make(map[uint32]*prefixWin),
		parole:       make(map[uint32]*paroleState),
		start:        time.Now(),
	}
	c.storeRate(cfg.ConfiguredRate)
	return c
}

// SetJournal attaches the decision journal sink (normally
// trace.Recorder.Journal). Call before the scan starts.
func (c *Controller) SetJournal(fn func(trace.JEntry)) { c.journal = fn }

func (c *Controller) emit(e trace.JEntry) {
	if c.journal != nil {
		c.journal(e)
	}
}

// Adaptive reports whether the AIMD loop is active (a configured rate
// exists to control).
func (c *Controller) Adaptive() bool { return c.adaptive }

// QuarantineEnabled reports whether the interference detector is active.
func (c *Controller) QuarantineEnabled() bool { return c.cfg.QuarantineThreshold > 0 }

// ParoleEnabled reports whether quarantined prefixes are periodically
// re-probed for release.
func (c *Controller) ParoleEnabled() bool {
	return c.QuarantineEnabled() && c.cfg.ParoleAfter > 0
}

func (c *Controller) storeRate(r float64) { c.rateBits.Store(math.Float64bits(r)) }

// Rate returns the current global target rate in packets/second (0 when
// AIMD is disabled). Senders divide it by the thread count and apply it
// as a cap on their local share.
func (c *Controller) Rate() float64 { return math.Float64frombits(c.rateBits.Load()) }

// NoteSent records n probes sent toward ip. Called from sender threads.
func (c *Controller) NoteSent(ip uint32, n uint64) {
	if n == 0 {
		return
	}
	p := ip >> 16
	if c.prefixSent[p].Add(n) == n {
		// First touch of this /16 (exactly one concurrent adder can
		// observe its own n as the post-add value on a zero base).
		c.newMu.Lock()
		c.newPrefixes = append(c.newPrefixes, p)
		c.newMu.Unlock()
	}
	c.sentTotal.Add(n)
}

// NoteRecv records one unique successful response from ip. Called
// concurrently from every receive worker (the sharded receive path runs
// N classification goroutines); the per-prefix and total counters are
// atomics, so no worker coordination is required.
func (c *Controller) NoteRecv(ip uint32) {
	c.prefixRecv[ip>>16].Add(1)
	c.recvTotal.Add(1)
}

// NoteUnreach records one validated ICMP destination-unreachable whose
// quoted probe targeted ip. The caller has already checked the quoted
// source address, so spoofed unreachables cannot drive the rate down.
// Like NoteRecv it is called concurrently from all receive workers.
func (c *Controller) NoteUnreach(ip uint32) {
	_ = ip // per-prefix unreach attribution is not used by the policy yet
	c.unreachTotal.Add(1)
}

// Quarantined reports whether probes to ip should be skipped.
func (c *Controller) Quarantined(ip uint32) bool {
	return c.quarantined[ip>>16].Load()
}

// TakeParole consumes one unit of the prefix's parole re-probe budget.
// The send path calls it for targets whose prefix is quarantined: true
// means this probe rides the parole budget and should be sent, false
// means skip as usual. Lock-free; called per-probe from sender threads.
func (c *Controller) TakeParole(ip uint32) bool {
	p := ip >> 16
	if c.paroleCredit[p].Load() <= 0 {
		return false
	}
	return c.paroleCredit[p].Add(-1) >= 0
}

// ParoleGrants counts parole windows opened; ParoleReleases counts
// quarantined prefixes released after answering their parole probes.
func (c *Controller) ParoleGrants() uint64 { return c.paroleGrants.Load() }

// ParoleReleases counts prefixes released from quarantine.
func (c *Controller) ParoleReleases() uint64 { return c.paroleReleases.Load() }

// QuarantineCount returns how many /16s are quarantined.
func (c *Controller) QuarantineCount() uint64 { return c.quarCount.Load() }

// Unreach returns the cumulative validated unreachable count.
func (c *Controller) Unreach() uint64 { return c.unreachTotal.Load() }

// Decreases and Increases count AIMD rate adjustments.
func (c *Controller) Decreases() uint64 { return c.decreases.Load() }

// Increases counts additive recovery steps taken.
func (c *Controller) Increases() uint64 { return c.increases.Load() }

// Tick runs one control-loop evaluation: the quarantine pass over every
// active prefix, then the global AIMD decision for the window since the
// previous tick. The engine calls it on its health ticker.
func (c *Controller) Tick(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.start.IsZero() {
		c.start = now
	}
	if !c.tickSeen {
		// Anchor the evidence clock one interval back so the first
		// window is judgeable immediately (it spans the whole pre-tick
		// scan), while later windows measure real elapsed time. State
		// restored before the scan started (resume hold, parole waits)
		// is anchored here too, on the tick clock.
		c.tickSeen = true
		c.evAt = now.Add(-c.cfg.Interval)
		if c.resumeHold {
			c.resumeHold = false
			c.holdUntil = now.Add(time.Duration(c.cfg.HoldTicks) * c.cfg.Interval)
		}
		for _, ps := range c.parole {
			if ps.nextAt.IsZero() {
				ps.nextAt = now.Add(c.cfg.ParoleAfter)
			}
		}
	}

	// Fold newly-touched prefixes into the active list.
	c.newMu.Lock()
	if len(c.newPrefixes) > 0 {
		c.active = append(c.active, c.newPrefixes...)
		c.newPrefixes = c.newPrefixes[:0]
	}
	c.newMu.Unlock()

	if c.QuarantineEnabled() {
		c.quarantinePass(now)
		if c.ParoleEnabled() {
			c.parolePass(now)
		}
	}
	if c.adaptive {
		c.aimdPass(now)
	} else {
		// Keep the window anchors moving so enabling AIMD mid-flight
		// (future) or state snapshots stay coherent.
		c.lastSent = c.sentTotal.Load()
		c.lastRecv = c.recvTotal.Load()
		c.lastUnr = c.unreachTotal.Load()
	}
}

// quarantinePass judges each active /16's accumulated window against the
// prefix's own baseline response rate. Windows roll forward only when
// they carry enough probes, so sparse prefixes accumulate across ticks
// instead of being judged on noise.
func (c *Controller) quarantinePass(now time.Time) {
	cfg := &c.cfg
	for _, p := range c.active {
		if c.quarantined[p].Load() {
			continue
		}
		w := c.wins[p]
		if w == nil {
			w = &prefixWin{}
			c.wins[p] = w
		}
		sent := c.prefixSent[p].Load()
		recv := c.prefixRecv[p].Load()
		wSent := sent - w.sentBase
		if wSent < cfg.QuarantineMinProbes {
			continue // window not full yet; keep accumulating
		}
		wRecv := recv - w.recvBase
		responsive := w.recvBase >= cfg.QuarantineMinResponses && w.sentBase > 0
		if responsive {
			baseRate := float64(w.recvBase) / float64(w.sentBase)
			if float64(wSent)*baseRate < float64(cfg.QuarantineMinResponses) {
				// Not enough evidence yet: at this prefix's density the
				// window would be expected to hold fewer responses than
				// the judgment needs — keep accumulating.
				continue
			}
			if float64(wRecv) < cfg.QuarantineThreshold*baseRate*float64(wSent) {
				w.badTicks++
			} else {
				w.badTicks = 0
			}
			if w.badTicks >= cfg.QuarantineBadTicks {
				c.quarantined[p].Store(true)
				c.quarCount.Add(1)
				q := Quarantine{
					Prefix:   fmt.Sprintf("%d.%d.0.0/16", byte(p>>8), byte(p)),
					Index:    p,
					Sent:     sent,
					Recv:     recv,
					AtSecs:   now.Sub(c.start).Seconds(),
					BaseRate: baseRate,
				}
				c.records = append(c.records, q)
				if c.ParoleEnabled() {
					c.parole[p] = &paroleState{
						nextAt: now.Add(cfg.ParoleAfter),
						rec:    len(c.records) - 1,
					}
				}
				c.emit(trace.JEntry{
					Kind: trace.JQuarantine, Prefix: q.Prefix,
					WindowSent: wSent, WindowRecv: wRecv, Baseline: baseRate,
				})
				cfg.Logger.Warn("quarantining interfered prefix",
					"prefix", q.Prefix, "sent", sent, "recv", recv,
					"baseline_rate", baseRate)
				continue
			}
		}
		// Roll the window forward.
		w.sentBase, w.recvBase = sent, recv
	}
}

// parolePass drives the quarantine-release machine. A quarantined /16 is
// not abandoned forever: after ParoleAfter it gets a small re-probe
// budget (credits the send path consumes via TakeParole). If the parole
// window's responses reach ParoleMinResponses and ParoleReleaseRatio of
// the prefix's pre-quarantine rate, the blackout was transient and the
// prefix is released; otherwise the attempt is logged and the next one
// waits ParoleInterval.
func (c *Controller) parolePass(now time.Time) {
	cfg := &c.cfg
	for p, ps := range c.parole {
		rec := &c.records[ps.rec]
		if !ps.active {
			if now.Before(ps.nextAt) {
				continue
			}
			// Open a parole window: size the budget so a recovered
			// prefix would produce about 2x ParoleMinResponses at its
			// pre-quarantine response rate, bounded to one /16's worth.
			grant := int64(4 * cfg.QuarantineMinProbes)
			if rec.BaseRate > 0 {
				if need := int64(2 * float64(cfg.ParoleMinResponses) / rec.BaseRate); need > grant {
					grant = need
				}
			}
			if grant > 1<<16 {
				grant = 1 << 16
			}
			ps.active = true
			ps.granted = grant
			ps.sentBase = c.prefixSent[p].Load()
			ps.recvBase = c.prefixRecv[p].Load()
			ps.grantAt = now
			c.paroleCredit[p].Store(grant)
			c.paroleGrants.Add(1)
			c.emit(trace.JEntry{
				Kind: trace.JParoleGrant, Prefix: rec.Prefix,
				WindowSent: uint64(grant), Index: rec.ParoleAttempts + 1,
			})
			cfg.Logger.Info("parole window opened",
				"prefix", rec.Prefix, "budget", grant, "attempt", rec.ParoleAttempts+1)
			continue
		}
		sent := c.prefixSent[p].Load() - ps.sentBase
		recv := c.prefixRecv[p].Load() - ps.recvBase
		if recv >= cfg.ParoleMinResponses &&
			(sent == 0 || float64(recv) >= cfg.ParoleReleaseRatio*rec.BaseRate*float64(sent)) {
			// The prefix answers again at a healthy rate: release it.
			c.paroleCredit[p].Store(0)
			c.quarantined[p].Store(false)
			c.quarCount.Add(^uint64(0))
			c.paroleReleases.Add(1)
			rec.ParoleAttempts++
			rec.ParoleSent += sent
			rec.ParoleRecv += recv
			rec.Released = true
			rec.ReleasedAtSecs = now.Sub(c.start).Seconds()
			// Restart the interference window from the live counters so
			// stale pre-blackout history cannot instantly re-strike.
			if w := c.wins[p]; w != nil {
				w.sentBase = c.prefixSent[p].Load()
				w.recvBase = c.prefixRecv[p].Load()
				w.badTicks = 0
			}
			delete(c.parole, p)
			c.emit(trace.JEntry{
				Kind: trace.JParoleRelease, Prefix: rec.Prefix,
				WindowSent: sent, WindowRecv: recv, Baseline: rec.BaseRate,
			})
			cfg.Logger.Info("parole release: prefix recovered",
				"prefix", rec.Prefix, "parole_sent", sent, "parole_recv", recv)
			continue
		}
		budgetSpent := c.paroleCredit[p].Load() <= 0 && sent >= uint64(ps.granted)
		if (budgetSpent && now.Sub(ps.grantAt) >= 2*cfg.Interval) ||
			now.Sub(ps.grantAt) >= cfg.ParoleInterval {
			// Failed attempt: the budget went out (plus settle time for
			// stragglers) or the window timed out. Close it and wait.
			c.paroleCredit[p].Store(0)
			ps.active = false
			ps.nextAt = now.Add(cfg.ParoleInterval)
			rec.ParoleAttempts++
			rec.ParoleSent += sent
			rec.ParoleRecv += recv
			c.emit(trace.JEntry{
				Kind: trace.JParoleFail, Prefix: rec.Prefix,
				WindowSent: sent, WindowRecv: recv, Index: rec.ParoleAttempts,
			})
		}
	}
}

// aimdPass evaluates the windows since the previous judgment and moves
// the target rate. Two windows run at different cadences:
//
//   - the fast window (MinWindowProbes) carries the ICMP-unreachable
//     signal — a router shedding load emits unreachables immediately,
//     so even a small window is meaningful evidence;
//   - the hit-rate evidence window (MinWindowResponses) carries the
//     collapse signal and the baseline EWMA. A windowed hit rate is
//     only signal once the window is large enough that a healthy scan
//     would be expected to produce MinWindowResponses responses;
//     judged earlier, a ~1% hit-rate scan reads Poisson noise as
//     collapse and spirals to the rate floor.
func (c *Controller) aimdPass(now time.Time) {
	cfg := &c.cfg
	sent := c.sentTotal.Load()
	recv := c.recvTotal.Load()
	unr := c.unreachTotal.Load()
	dSent := sent - c.lastSent
	dRecv := recv - c.lastRecv
	dUnr := unr - c.lastUnr
	if dSent < cfg.MinWindowProbes {
		return // too quiet to judge; keep the anchors where they are
	}
	c.lastSent, c.lastRecv, c.lastUnr = sent, recv, unr

	unrFrac := float64(dUnr) / float64(dSent)
	if unrFrac > cfg.UnreachFraction && unrFrac > 3*c.baselineUnr {
		// A congested window must not leak into the hit-rate evidence.
		c.evSent, c.evRecv, c.evAt = sent, recv, now
		c.collapseStreak = 0
		c.decrease(now, "unreach_spike", unrFrac, dSent, dRecv, 0)
		return
	}

	evSent := sent - c.evSent
	evRecv := recv - c.evRecv
	enough := false
	if c.baseline > 0 {
		enough = float64(evSent)*c.baseline >= float64(cfg.MinWindowResponses)
	} else {
		// No baseline yet: learn one from the responses themselves, so
		// the first estimate carries the same evidence as later ones.
		enough = evRecv >= cfg.MinWindowResponses
	}
	// Evidence windows are judged on *measured* elapsed time, never an
	// assumed tick cadence: a clump of jittered ticks would otherwise
	// judge windows far shorter than the interval the thresholds were
	// tuned for, reading scheduling noise as collapse.
	if enough && now.Sub(c.evAt) >= cfg.Interval {
		hitRate := float64(evRecv) / float64(evSent)
		c.evSent, c.evRecv, c.evAt = sent, recv, now
		if c.baseline > 0 && hitRate < cfg.CollapseRatio*c.baseline {
			// Collapse evidence must persist: one bad window is weather
			// (a Gilbert-Elliott loss burst, a transient blackout);
			// CollapseWindows consecutive ones are congestion. Either
			// way a collapsed window never feeds the healthy baseline.
			c.collapseStreak++
			if c.collapseStreak >= cfg.CollapseWindows {
				c.collapseStreak = 0
				c.decrease(now, "hit_rate_collapse", unrFrac, evSent, evRecv, hitRate)
			}
			return
		}
		c.collapseStreak = 0
		g := cfg.BaselineGain
		if c.baseline == 0 {
			c.baseline = hitRate
		} else {
			c.baseline += g * (hitRate - c.baseline)
		}
	}

	// Healthy fast window: fold the unreachable baseline, then (after
	// the post-decrease hold) probe back toward the configured rate.
	c.baselineUnr += cfg.BaselineGain * (unrFrac - c.baselineUnr)
	if !now.After(c.holdUntil) {
		return
	}
	if rate := c.Rate(); rate < cfg.ConfiguredRate {
		next := rate + cfg.IncreasePerTick*cfg.ConfiguredRate
		if next > cfg.ConfiguredRate {
			next = cfg.ConfiguredRate
		}
		c.storeRate(next)
		c.increases.Add(1)
		c.emit(trace.JEntry{
			Kind: trace.JRateIncrease, RatePPS: next,
			WindowSent: dSent, WindowRecv: dRecv, Baseline: c.baseline,
		})
	}
}

// decrease applies at most one multiplicative cut per hold period. The
// hold is wall-clock (HoldTicks * Interval) and is NOT re-armed by
// suppressed signals, so a sustained unreachable storm cuts the rate
// once per period — stepping down, never spiraling — and the floor is
// always MinRate.
func (c *Controller) decrease(now time.Time, reason string, unrFrac float64, wSent, wRecv uint64, hitRate float64) {
	cfg := &c.cfg
	if now.Before(c.holdUntil) {
		cfg.Logger.Debug("congestion signal suppressed inside hold",
			"reason", reason, "hold_remaining", c.holdUntil.Sub(now))
		return
	}
	rate := c.Rate()
	next := rate * cfg.DecreaseFactor
	if next < cfg.MinRate {
		next = cfg.MinRate
	}
	if next != rate {
		c.storeRate(next)
		c.decreases.Add(1)
		c.emit(trace.JEntry{
			Kind: trace.JRateDecrease, Reason: reason, RatePPS: next,
			WindowSent: wSent, WindowRecv: wRecv,
			UnreachFrac: unrFrac, HitRate: hitRate, Baseline: c.baseline,
		})
		cfg.Logger.Warn("congestion signal; decreasing rate",
			"reason", reason, "rate_pps", next,
			"window_unreach_frac", unrFrac,
			"baseline_hit_rate", c.baseline)
	}
	c.holdUntil = now.Add(time.Duration(cfg.HoldTicks) * cfg.Interval)
}

// QuarantineRecords returns a copy of the quarantine log.
func (c *Controller) QuarantineRecords() []Quarantine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Quarantine(nil), c.records...)
}

// Snapshot captures the persistable controller state for checkpoints
// and metadata.
func (c *Controller) Snapshot() *State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &State{
		RatePPS:         c.Rate(),
		BaselineHitRate: c.baseline,
		BaselineUnreach: c.baselineUnr,
		Unreach:         c.unreachTotal.Load(),
		Decreases:       c.decreases.Load(),
		Increases:       c.increases.Load(),
		Quarantined:     append([]Quarantine(nil), c.records...),
	}
}

// Restore loads state from a checkpoint written by a previous run, so a
// resumed scan neither re-learns the safe rate nor re-probes prefixes
// already found interfered. Call before the scan starts.
func (c *Controller) Restore(st *State) {
	if st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adaptive && st.RatePPS > 0 {
		r := st.RatePPS
		if r < c.cfg.MinRate {
			r = c.cfg.MinRate
		}
		if r > c.cfg.ConfiguredRate {
			r = c.cfg.ConfiguredRate
		}
		c.storeRate(r)
		// Resume cautiously: hold before probing upward again (the
		// hold is anchored when the first tick supplies the clock).
		c.resumeHold = true
	}
	c.baseline = st.BaselineHitRate
	c.baselineUnr = st.BaselineUnreach
	for _, q := range st.Quarantined {
		p := q.Index % prefixes
		if q.Released {
			// Released prefixes stay released; keep the record so the
			// parole trail survives into this run's metadata.
			c.records = append(c.records, q)
			continue
		}
		if !c.quarantined[p].Load() {
			c.quarantined[p].Store(true)
			c.quarCount.Add(1)
			c.records = append(c.records, q)
			if c.ParoleEnabled() {
				// Parole scheduling resumes with the scan: the wait
				// restarts (anchored at the first tick) rather than
				// crediting downtime as served.
				c.parole[p] = &paroleState{rec: len(c.records) - 1}
			}
		}
	}
}
