package shard

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zmapgo/internal/cyclic"
)

// collectTargets walks every subshard of a plan over a real cycle and
// returns per-element visit counts.
func collectTargets(t *testing.T, mode Mode, c cyclic.Cycle, shards, threads int) map[uint64]int {
	t.Helper()
	counts := make(map[uint64]int)
	for _, a := range PlanAll(mode, c.Group.Order(), shards, threads) {
		it := a.Iterator(c)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			counts[e]++
		}
	}
	return counts
}

func testPartition(t *testing.T, mode Mode, shards, threads int) {
	t.Helper()
	g, _ := cyclic.GroupForOrder(256) // p = 257, order 256
	c := cyclic.NewCycle(g, rand.New(rand.NewSource(42)))
	counts := collectTargets(t, mode, c, shards, threads)
	if uint64(len(counts)) != g.Order() {
		t.Fatalf("%v %dx%d: covered %d elements, want %d", mode, shards, threads, len(counts), g.Order())
	}
	for e, n := range counts {
		if n != 1 {
			t.Fatalf("%v %dx%d: element %d visited %d times", mode, shards, threads, e, n)
		}
	}
}

func TestPizzaPartitions(t *testing.T) {
	for _, st := range [][2]int{{1, 1}, {1, 4}, {2, 1}, {3, 3}, {5, 7}, {16, 8}, {255, 1}, {257, 1}} {
		testPartition(t, Pizza, st[0], st[1])
	}
}

func TestInterleavedPartitions(t *testing.T) {
	for _, st := range [][2]int{{1, 1}, {1, 4}, {2, 1}, {3, 3}, {5, 7}, {16, 8}, {255, 1}, {257, 1}} {
		testPartition(t, Interleaved, st[0], st[1])
	}
}

func TestPartitionProperty(t *testing.T) {
	// Property: for arbitrary shard/thread counts and group orders, both
	// modes partition [0, order) exactly — every exponent position is
	// assigned to exactly one subshard.
	f := func(order uint32, nRaw, tRaw uint8) bool {
		ord := uint64(order%5000) + 1
		n := int(nRaw%12) + 1
		tt := int(tRaw%6) + 1
		for _, mode := range []Mode{Pizza, Interleaved} {
			seen := make([]int, ord)
			for _, a := range PlanAll(mode, ord, n, tt) {
				pos := a.Start
				for i := uint64(0); i < a.Count; i++ {
					if pos >= ord {
						if mode == Pizza {
							return false // pizza positions never exceed order
						}
						pos %= ord // interleaved never wraps either; flag it
						return false
					}
					seen[pos]++
					pos += a.Stride
				}
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPizzaBalance(t *testing.T) {
	// Pizza subshard sizes must differ by at most 1 within a shard, and
	// shard sizes by at most 1 overall.
	order := uint64((1 << 16)) // 65536, order of 65537 group
	for _, st := range [][2]int{{3, 1}, {7, 5}, {16, 8}} {
		assignments := PlanAll(Pizza, order, st[0], st[1])
		min, max := ^uint64(0), uint64(0)
		for _, a := range assignments {
			if a.Count < min {
				min = a.Count
			}
			if a.Count > max {
				max = a.Count
			}
		}
		if max-min > 2 {
			t.Errorf("pizza %dx%d: subshard sizes range [%d, %d], want near-equal", st[0], st[1], min, max)
		}
	}
}

func TestInterleavedStrideAndStart(t *testing.T) {
	// Shard n, thread t must start at exponent n + t*N and stride N*T,
	// matching the paper's g^(n+tN) offset and g^(NT) step.
	a := Plan(Interleaved, 1000, 4, 3, 2, 1)
	if a.Start != 2+1*4 {
		t.Errorf("start = %d, want 6", a.Start)
	}
	if a.Stride != 12 {
		t.Errorf("stride = %d, want 12", a.Stride)
	}
}

func TestInterleavedEmptySubshard(t *testing.T) {
	// With more subshards than elements, trailing subshards must be empty
	// rather than wrapping.
	a := Plan(Interleaved, 3, 5, 1, 4, 0)
	if a.Count != 0 {
		t.Errorf("subshard beyond order: count = %d, want 0", a.Count)
	}
}

func TestPizzaContiguity(t *testing.T) {
	// Consecutive pizza subshards must abut exactly.
	order := uint64(12345)
	prevEnd := uint64(0)
	for _, a := range PlanAll(Pizza, order, 7, 3) {
		if a.Start != prevEnd {
			t.Fatalf("subshard (%d,%d) starts at %d, want %d", a.Shard, a.Thread, a.Start, prevEnd)
		}
		prevEnd = a.Start + a.Count
	}
	if prevEnd != order {
		t.Fatalf("final subshard ends at %d, want %d", prevEnd, order)
	}
}

func TestNaiveInterleavedCountDropsTargets(t *testing.T) {
	// The bug class from §4.2: truncating order/NT drops targets whenever
	// NT does not divide the order. For p-1 = 2^32+14 and NT = 12, the
	// naive plan misses elements.
	g, _ := cyclic.GroupForOrder(1 << 32)
	order := g.Order()
	n, threads := 4, 3
	nt := uint64(n * threads)
	naiveTotal := NaiveInterleavedCount(order, n, threads) * nt
	if naiveTotal == order {
		t.Fatalf("expected naive count to mismatch for order %d, NT %d", order, nt)
	}
	missed := order - naiveTotal
	if missed == 0 || missed >= nt {
		t.Errorf("naive plan misses %d targets, want in [1, %d)", missed, nt)
	}
	// The correct plan covers everything.
	var correct uint64
	for _, a := range PlanAll(Interleaved, order, n, threads) {
		correct += a.Count
	}
	if correct != order {
		t.Errorf("correct interleaved plan covers %d, want %d", correct, order)
	}
}

func TestPlanPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Plan(Pizza, 100, 0, 1, 0, 0) },
		func() { Plan(Pizza, 100, 1, 0, 0, 0) },
		func() { Plan(Pizza, 100, 2, 2, 2, 0) },
		func() { Plan(Pizza, 100, 2, 2, 0, 2) },
		func() { Plan(Mode(99), 100, 1, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPizzaLargeOrderNoOverflow(t *testing.T) {
	// 2^48-order group with many shards: boundary math must not overflow.
	g, _ := cyclic.GroupForOrder(1 << 48)
	order := g.Order()
	var total uint64
	const shards = 1000
	for s := 0; s < shards; s++ {
		a := Plan(Pizza, order, shards, 1, s, 0)
		total += a.Count
		if a.Start >= order && a.Count > 0 {
			t.Fatalf("shard %d starts beyond order", s)
		}
	}
	if total != order {
		t.Fatalf("total coverage %d, want %d", total, order)
	}
}

func TestModeString(t *testing.T) {
	if Pizza.String() != "pizza" || Interleaved.String() != "interleaved" {
		t.Error("unexpected Mode.String values")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Errorf("Mode(9).String() = %q", Mode(9).String())
	}
}

func BenchmarkPizzaIteration(b *testing.B)       { benchIteration(b, Pizza) }
func BenchmarkInterleavedIteration(b *testing.B) { benchIteration(b, Interleaved) }

func benchIteration(b *testing.B, mode Mode) {
	g, _ := cyclic.GroupForOrder(1 << 32)
	c := cyclic.NewCycle(g, rand.New(rand.NewSource(1)))
	a := Plan(mode, g.Order(), 4, 4, 1, 2)
	it := a.Iterator(c)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		e, ok := it.Next()
		if !ok {
			it = a.Iterator(c)
			e, _ = it.Next()
		}
		sink = e
	}
	benchSink = sink
}

var benchSink uint64
