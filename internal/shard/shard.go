// Package shard splits a cyclic permutation across scan shards (machines)
// and send threads, implementing both sharding schemes ZMap has used.
//
// Interleaved sharding (2014–2017, "Zippier ZMap"): shard n of N walks the
// exponent residue class n mod N; with T threads per shard, subshard (n, t)
// walks residue n + tN mod NT. Each worker multiplies by g^(NT) per step.
// The scheme is mutex-free but computing where each subshard *ends* has no
// closed form when NT does not divide p-1, and the original implementation
// suffered repeated off-by-one bugs (§4.2).
//
// Pizza sharding (2017–): the exponent space [0, p-1) is cut into N
// contiguous ranges of increasing exponent, and each range into T subranges
// — like slicing a pizza. Because group elements are already pseudorandom
// in exponent order, contiguous exponent ranges are just as random as
// interleaved ones, and the endpoints are trivial: subshard (n, t) is
// [lo + (hi-lo)*t/T, lo + (hi-lo)*(t+1)/T) within shard range
// [order*n/N, order*(n+1)/N).
//
// Both schemes are exposed so the Figure 6 experiment can compare them; the
// engine uses pizza.
package shard

import (
	"fmt"

	"zmapgo/internal/cyclic"
	"zmapgo/internal/mathx"
)

// Mode selects a sharding scheme.
type Mode int

const (
	// Pizza is the modern contiguous-range scheme (default).
	Pizza Mode = iota
	// Interleaved is the original residue-class scheme.
	Interleaved
)

func (m Mode) String() string {
	switch m {
	case Pizza:
		return "pizza"
	case Interleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Assignment describes the slice of exponent space owned by one worker
// (a subshard): the positions start, start+stride, ..., start+(count-1)*stride.
type Assignment struct {
	Shard  int
	Thread int
	Start  uint64
	Count  uint64
	Stride uint64
}

// Plan computes the assignment for subshard (shard, thread) of an
// order-element permutation split into shards shards of threads threads
// each. It panics on out-of-range indices or zero divisions — these are
// programmer errors, not runtime conditions.
func Plan(mode Mode, order uint64, shards, threads, shard, thread int) Assignment {
	if shards <= 0 || threads <= 0 {
		panic("shard: shards and threads must be positive")
	}
	if shard < 0 || shard >= shards || thread < 0 || thread >= threads {
		panic("shard: index out of range")
	}
	switch mode {
	case Interleaved:
		return planInterleaved(order, shards, threads, shard, thread)
	case Pizza:
		return planPizza(order, shards, threads, shard, thread)
	default:
		panic("shard: unknown mode")
	}
}

// planInterleaved assigns residue class shard + thread*shards modulo
// shards*threads. The count is the number of exponents in [0, order) in
// that class: floor((order - 1 - first)/NT) + 1 when first < order.
func planInterleaved(order uint64, shards, threads, shard, thread int) Assignment {
	nt := uint64(shards) * uint64(threads)
	first := uint64(shard) + uint64(thread)*uint64(shards)
	var count uint64
	if first < order {
		count = (order-1-first)/nt + 1
	}
	return Assignment{
		Shard:  shard,
		Thread: thread,
		Start:  first,
		Count:  count,
		Stride: nt,
	}
}

// planPizza cuts [0, order) into contiguous balanced ranges. Boundaries are
// computed with 128-bit intermediates so order up to 2^48 times indices up
// to 2^31 cannot overflow.
func planPizza(order uint64, shards, threads, shard, thread int) Assignment {
	shardLo := mathx.MulDiv64(order, uint64(shard), uint64(shards))
	shardHi := mathx.MulDiv64(order, uint64(shard)+1, uint64(shards))
	span := shardHi - shardLo
	lo := shardLo + mathx.MulDiv64(span, uint64(thread), uint64(threads))
	hi := shardLo + mathx.MulDiv64(span, uint64(thread)+1, uint64(threads))
	return Assignment{
		Shard:  shard,
		Thread: thread,
		Start:  lo,
		Count:  hi - lo,
		Stride: 1,
	}
}

// PlanAll returns assignments for every (shard, thread) pair, shard-major.
func PlanAll(mode Mode, order uint64, shards, threads int) []Assignment {
	out := make([]Assignment, 0, shards*threads)
	for s := 0; s < shards; s++ {
		for t := 0; t < threads; t++ {
			out = append(out, Plan(mode, order, shards, threads, s, t))
		}
	}
	return out
}

// Iterator returns a cyclic iterator over the assignment's slice of the
// given cycle.
func (a Assignment) Iterator(c cyclic.Cycle) *cyclic.Iterator {
	return c.Iterate(a.Start, a.Count, a.Stride)
}

// NaiveInterleavedCount reproduces the end-point bug class the paper
// describes for interleaved sharding: a "simple" per-subshard count of
// order/(N*T), which silently drops up to NT-1 targets whenever NT does not
// divide the group order (and group orders here are p-1 for p prime, so
// they are almost never divisible). It exists only for the Figure 6
// experiment and tests; never use it to plan a real scan.
func NaiveInterleavedCount(order uint64, shards, threads int) uint64 {
	return order / (uint64(shards) * uint64(threads))
}
