package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Dump formats. JSONL is the machine-readable interchange format
// (consumed by `zanalyze trace`); Chrome trace-event JSON loads
// directly into chrome://tracing or Perfetto for a visual timeline.

// MetaLine is the first line of a JSONL dump.
type MetaLine struct {
	Type        string `json:"type"` // "meta"
	Version     int    `json:"v"`
	EpochUnixNS int64  `json:"epoch_unix_ns"`
	SampleEvery int    `json:"sample_every"`
	Shards      int    `json:"shards"`
	RingSize    int    `json:"ring_size"`
	JournalDrop uint64 `json:"journal_dropped,omitempty"`
}

// RingLine is one ring event in a JSONL dump.
type RingLine struct {
	Type  string `json:"type"` // "ring"
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
	TS    int64  `json:"ts_ns"`
	Kind  string `json:"kind"`
	IP    string `json:"ip"`
	Port  uint16 `json:"port"`
	Val   uint64 `json:"val,omitempty"`
}

// JournalLine is one journal entry in a JSONL dump.
type JournalLine struct {
	Type string `json:"type"` // "journal"
	JEntry
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

func parseIP(s string) uint32 {
	var a, b, c, d uint32
	fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d)
	return a<<24 | b<<16 | c<<8 | d
}

// WriteJSONL writes the snapshot as one JSON object per line: a meta
// header, then ring and journal lines merged in timestamp order.
func (s *Snapshot) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(MetaLine{
		Type:        "meta",
		Version:     1,
		EpochUnixNS: s.Epoch.UnixNano(),
		SampleEvery: s.SampleEvery,
		Shards:      s.Shards,
		RingSize:    s.RingSize,
		JournalDrop: s.JournalDrop,
	}); err != nil {
		return err
	}
	// Merge the two ts-sorted streams. The journal is already in append
	// (≈ timestamp) order; ring events are sorted by Snapshot.
	ei, ji := 0, 0
	for ei < len(s.Events) || ji < len(s.Journal) {
		if ji >= len(s.Journal) || (ei < len(s.Events) && s.Events[ei].TS <= s.Journal[ji].TS) {
			e := s.Events[ei]
			ei++
			if err := enc.Encode(RingLine{
				Type: "ring", Shard: e.Shard, Seq: e.Seq, TS: e.TS,
				Kind: e.Kind.String(), IP: ipString(e.IP), Port: e.Port, Val: e.Val,
			}); err != nil {
				return err
			}
			continue
		}
		if err := enc.Encode(JournalLine{Type: "journal", JEntry: s.Journal[ji]}); err != nil {
			return err
		}
		ji++
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL dump back into a Snapshot. zanalyze and the
// round-trip tests share this so the format has one reader.
func ReadJSONL(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	snap := &Snapshot{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("trace dump line %d: %w", lineNo, err)
		}
		switch probe.Type {
		case "meta":
			var m MetaLine
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("trace dump line %d: %w", lineNo, err)
			}
			snap.Epoch = time.Unix(0, m.EpochUnixNS)
			snap.SampleEvery = m.SampleEvery
			snap.Shards = m.Shards
			snap.RingSize = m.RingSize
			snap.JournalDrop = m.JournalDrop
		case "ring":
			var rl RingLine
			if err := json.Unmarshal(line, &rl); err != nil {
				return nil, fmt.Errorf("trace dump line %d: %w", lineNo, err)
			}
			snap.Events = append(snap.Events, Event{
				Shard: rl.Shard, Seq: rl.Seq, TS: rl.TS,
				Kind: KindByName(rl.Kind), IP: parseIP(rl.IP), Port: rl.Port, Val: rl.Val,
			})
		case "journal":
			var jl JournalLine
			if err := json.Unmarshal(line, &jl); err != nil {
				return nil, fmt.Errorf("trace dump line %d: %w", lineNo, err)
			}
			snap.Journal = append(snap.Journal, jl.JEntry)
		default:
			return nil, fmt.Errorf("trace dump line %d: unknown type %q", lineNo, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// chromeEvent is one entry in the Chrome trace-event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the snapshot in Chrome trace-event JSON
// (chrome://tracing / Perfetto): ring events as thread-scoped instants
// per shard, sampled probe lifecycles as async spans keyed by target,
// the controller rate as a counter track, and every journal entry as a
// process-scoped instant.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	us := func(ts int64) float64 { return float64(ts) / 1e3 }

	// Lifecycle spans: first→last ring event per (ip, port).
	type span struct{ first, last int64 }
	spans := make(map[uint64]*span)
	for _, e := range s.Events {
		key := uint64(e.IP)<<16 | uint64(e.Port)
		sp := spans[key]
		if sp == nil {
			spans[key] = &span{first: e.TS, last: e.TS}
			continue
		}
		if e.TS < sp.first {
			sp.first = e.TS
		}
		if e.TS > sp.last {
			sp.last = e.TS
		}
	}
	for key, sp := range spans {
		if sp.last == sp.first {
			continue
		}
		name := fmt.Sprintf("%s:%d", ipString(uint32(key>>16)), uint16(key))
		evs = append(evs,
			chromeEvent{Name: name, Cat: "lifecycle", Phase: "b", TS: us(sp.first), PID: 1, TID: 0, ID: name},
			chromeEvent{Name: name, Cat: "lifecycle", Phase: "e", TS: us(sp.last), PID: 1, TID: 0, ID: name},
		)
	}

	for _, e := range s.Events {
		evs = append(evs, chromeEvent{
			Name: e.Kind.String(), Cat: "probe", Phase: "i",
			TS: us(e.TS), PID: 1, TID: e.Shard + 1, Scope: "t",
			Args: map[string]any{"ip": ipString(e.IP), "port": e.Port, "val": e.Val},
		})
	}

	for _, j := range s.Journal {
		if j.Kind == JRateDecrease || j.Kind == JRateIncrease {
			evs = append(evs, chromeEvent{
				Name: "controller_rate_pps", Phase: "C", TS: us(j.TS), PID: 1, TID: 0,
				Args: map[string]any{"pps": j.RatePPS},
			})
		}
		args := map[string]any{}
		if j.Reason != "" {
			args["reason"] = j.Reason
		}
		if j.Prefix != "" {
			args["prefix"] = j.Prefix
		}
		if j.Phase != "" {
			args["phase"] = j.Phase
		}
		if j.Name != "" {
			args["name"] = j.Name
		}
		if j.RatePPS != 0 {
			args["rate_pps"] = j.RatePPS
		}
		if j.Detail != "" {
			args["detail"] = j.Detail
		}
		evs = append(evs, chromeEvent{
			Name: j.Kind, Cat: "journal", Phase: "i",
			TS: us(j.TS), PID: 1, TID: 0, Scope: "p", Args: args,
		})
	}

	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
