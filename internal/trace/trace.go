// Package trace is the scan flight recorder: an always-on, bounded-memory
// event tracer that answers "what did the scan actually do, and why?"
// after the fact.
//
// Two streams with very different rates share one timeline:
//
//   - The ring: per-shard lock-free ring buffers of fixed-size probe
//     lifecycle events for a deterministic 1-in-N sample of targets
//     (generated → rendered → sent → retried → response-received →
//     validated → deduped → written). Each sender thread owns one shard,
//     the receive loop owns another, so the record hot path is a plain
//     cursor increment plus a handful of atomic word stores — no locks,
//     no allocation, bounded by the ring size.
//
//   - The journal: controller and lifecycle decisions (AIMD cuts and
//     increases with their evidence windows, quarantine, parole,
//     cooldown, checkpoints, phase changes, scenario faults). These are
//     rare — tens per scan — so every one is kept, unsampled, behind a
//     mutex with a bounded backing slice.
//
// Timestamps are monotonic nanoseconds since the recorder's epoch (the
// wall-clock epoch rides every dump header), so per-stage latency is
// attributable and ring and journal merge onto one ordering.
//
// Dumps (JSONL and Chrome trace-event JSON, see dump.go) are safe to
// take concurrently with writers: slot publication is seqlock-style —
// writers invalidate the sequence word, store the payload, then publish
// the new sequence — and the reader discards any slot whose sequence
// word changed mid-read.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one ring event type.
type Kind uint8

const (
	// KInvalid marks an empty or torn slot; never recorded.
	KInvalid Kind = iota
	// Probe lifecycle, send side.
	KProbeGen      // target left the generator (post-decode, pre-render)
	KProbeRendered // frame bytes rendered into the batch ring
	KProbeSent     // frame handed to the transport (batch resolve time)
	KProbeRetry    // frame re-sent after a transient transport error
	KProbeDropped  // frame abandoned (retries exhausted or canceled)
	// Probe lifecycle, receive side.
	KRespReceived  // raw frame arrived at the receive loop
	KRespValidated // parsed, checksummed, and classified as ours
	KRespDeduped   // dedup verdict reached (Val: 1 = duplicate)
	KRespWritten   // record handed to the output writer
	// Transport / netsim faults.
	KFaultDrop // probe consumed by an emulated fault (Val: fault class)
	kindCount
)

var kindNames = [kindCount]string{
	KInvalid:       "invalid",
	KProbeGen:      "probe_gen",
	KProbeRendered: "probe_rendered",
	KProbeSent:     "probe_sent",
	KProbeRetry:    "probe_retry",
	KProbeDropped:  "probe_dropped",
	KRespReceived:  "resp_received",
	KRespValidated: "resp_validated",
	KRespDeduped:   "resp_deduped",
	KRespWritten:   "resp_written",
	KFaultDrop:     "fault_drop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName resolves a dump-format kind name back to its Kind.
// Unknown names return KInvalid.
func KindByName(name string) Kind {
	for k, n := range kindNames {
		if n == name {
			return Kind(k)
		}
	}
	return KInvalid
}

// Fault classes carried in a KFaultDrop event's Val word. Code 0 is
// reserved for "unknown" so real classes survive JSON omitempty.
var faultClasses = []string{"unknown", "blackout", "bursty_loss",
	"asym_forward", "asym_reverse", "knee"}

// FaultClassCode packs a fault-class name for KFaultDrop's Val.
func FaultClassCode(name string) uint64 {
	for i, n := range faultClasses {
		if n == name {
			return uint64(i)
		}
	}
	return 0
}

// FaultClassName decodes a KFaultDrop Val back to its class name.
func FaultClassName(code uint64) string {
	if code < uint64(len(faultClasses)) {
		return faultClasses[code]
	}
	return "unknown"
}

// Journal entry kinds. Unlike ring kinds these are open-ended strings:
// the journal is rare-event rich, not hot-path packed.
const (
	JRateDecrease  = "rate_decrease"
	JRateIncrease  = "rate_increase"
	JQuarantine    = "quarantine"
	JParoleGrant   = "parole_grant"
	JParoleAttempt = "parole_attempt"
	JParoleRelease = "parole_release"
	JParoleFail    = "parole_fail"
	JCooldownBegin = "cooldown_begin"
	JCooldownEnd   = "cooldown_end"
	JPhase         = "phase"
	JCheckpoint    = "checkpoint"
	JScenarioBegin = "scenario_begin"
	JScenarioEnd   = "scenario_end"
	JStatus        = "status"
	JAbort         = "abort"
)

// Fleet coordinator journal kinds (see internal/fleet): worker lifecycle
// (spawn/adopt/exit/done), the lease reclaim state machine
// (lease_expired → reclaim → respawn, with backoff), global rate budget
// redistribution, injected chaos faults, and the merge stage. JEntry
// usage: Index carries the shard, Name the worker ID, RatePPS the
// allocation after a realloc decision.
const (
	JFleetStart        = "fleet_start"
	JFleetSpawn        = "fleet_spawn"
	JFleetAdopt        = "fleet_adopt"
	JFleetWorkerDone   = "fleet_worker_done"
	JFleetWorkerExit   = "fleet_worker_exit"
	JFleetLeaseExpired = "fleet_lease_expired"
	JFleetReclaim      = "fleet_reclaim"
	JFleetRespawn      = "fleet_respawn"
	JFleetRateRealloc  = "fleet_rate_realloc"
	JFleetFault        = "fleet_fault"
	JFleetMerge        = "fleet_merge"
	JFleetDone         = "fleet_done"
)

// Network control plane journal kinds (see internal/fleetnet): the
// coordinator's HTTP listener lifecycle, server-side epoch fencing of
// late RPCs from reclaimed workers (renew/checkpoint/result/commit,
// named in Reason), result-upload offset resets after lost chunks,
// grants offered to and acquired by remote joined workers, and rate-file
// publication failures that exhausted their retry budget
// (fleet_rate_write_failed; Index is the shard whose budget slice could
// not be published).
const (
	JFleetNetListen  = "fleet_net_listen"
	JFleetNetFence   = "fleet_net_fence"
	JFleetNetGap     = "fleet_net_upload_gap"
	JFleetOffer      = "fleet_offer"
	JFleetAcquire    = "fleet_acquire"
	JFleetRateLost   = "fleet_rate_write_failed"
	JFleetSelfFence  = "fleet_self_fence"
	JFleetNetExit    = "fleet_net_exit"
	JFleetNetCommit  = "fleet_net_commit"
	JFleetNetCkptRej = "fleet_net_ckpt_rejected"
)

// JEntry is one journal record. Fields are a flat union across entry
// kinds; zero values are omitted from dumps.
type JEntry struct {
	TS   int64  `json:"ts_ns"` // ns since recorder epoch; stamped on Journal() if zero
	Kind string `json:"kind"`

	Reason string `json:"reason,omitempty"` // e.g. "unreach_spike", "hit_rate_collapse"
	Phase  string `json:"phase,omitempty"`
	Prefix string `json:"prefix,omitempty"` // quarantine/parole subject
	Name   string `json:"name,omitempty"`   // scenario event type or free label
	Index  int    `json:"index,omitempty"`  // scenario event index

	RatePPS     float64 `json:"rate_pps,omitempty"` // controller rate after the decision
	WindowSent  uint64  `json:"window_sent,omitempty"`
	WindowRecv  uint64  `json:"window_recv,omitempty"`
	UnreachFrac float64 `json:"unreach_frac,omitempty"`
	HitRate     float64 `json:"hit_rate,omitempty"`
	Baseline    float64 `json:"baseline,omitempty"`

	Detail string `json:"detail,omitempty"`
}

// Config sizes a Recorder. Zero values take defaults.
type Config struct {
	// Shards is the number of independent ring writers (sender threads
	// plus one for the receive loop). Default 1.
	Shards int
	// RingSize is the per-shard slot count, rounded up to a power of
	// two. Default 8192. Memory is RingSize × 32 bytes per shard.
	RingSize int
	// SampleEvery traces 1 in SampleEvery targets, rounded up to a
	// power of two. Default 256. 1 traces every target; negative
	// disables probe sampling entirely (the journal stays on).
	SampleEvery int
	// JournalCap bounds the decision journal. Default 65536 entries;
	// overflow increments a drop counter instead of growing.
	JournalCap int
}

const (
	defaultRingSize    = 8192
	defaultSampleEvery = 256
	defaultJournalCap  = 65536
	slotWords          = 4 // seq, ts, key, val
)

// Shard is a single-writer ring. Exactly one goroutine may call
// Record/RecordAt on a given shard; any number may snapshot it.
type Shard struct {
	rec    *Recorder
	mask   uint64
	cursor uint64 // writer-owned; seq of the last published event
	words  []atomic.Uint64
	_      [4]uint64 // keep neighboring shards' cursors off this line
}

// Recorder owns the ring shards and the decision journal.
type Recorder struct {
	epoch       time.Time
	shards      []*Shard
	sampleMask  uint64
	sampleEvery int
	ringSize    int

	mu         sync.Mutex
	journal    []JEntry
	journalCap int
	jDropped   uint64
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a Recorder. The epoch is captured now; all event
// timestamps are monotonic nanoseconds since it.
func New(cfg Config) *Recorder {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	cfg.RingSize = ceilPow2(cfg.RingSize)
	if cfg.JournalCap <= 0 {
		cfg.JournalCap = defaultJournalCap
	}
	jhint := cfg.JournalCap
	if jhint > 1024 {
		jhint = 1024
	}
	r := &Recorder{
		epoch:      time.Now(),
		ringSize:   cfg.RingSize,
		journal:    make([]JEntry, 0, jhint),
		journalCap: cfg.JournalCap,
	}
	switch {
	case cfg.SampleEvery < 0:
		r.sampleEvery = -1
		r.sampleMask = ^uint64(0) // Sampled() always false
	case cfg.SampleEvery == 0:
		r.sampleEvery = defaultSampleEvery
	default:
		r.sampleEvery = ceilPow2(cfg.SampleEvery)
	}
	if r.sampleEvery > 0 {
		r.sampleMask = uint64(r.sampleEvery - 1)
	}
	r.shards = make([]*Shard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &Shard{
			rec:   r,
			mask:  uint64(cfg.RingSize - 1),
			words: make([]atomic.Uint64, cfg.RingSize*slotWords),
		}
	}
	return r
}

// Epoch returns the wall-clock instant event timestamps count from.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// SampleEvery reports the effective sampling period (-1 if probe
// sampling is disabled).
func (r *Recorder) SampleEvery() int { return r.sampleEvery }

// Now returns the current trace timestamp: monotonic nanoseconds since
// the recorder epoch.
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// Shard returns ring writer i (clamped to the shard count, so a caller
// with a larger thread index degrades to sharing the last shard rather
// than panicking — sharing violates the single-writer contract only if
// both writers are live, which the engine's thread/shard sizing avoids).
func (r *Recorder) Shard(i int) *Shard {
	if i < 0 {
		i = 0
	}
	if i >= len(r.shards) {
		i = len(r.shards) - 1
	}
	return r.shards[i]
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed hash so
// sampling is uncorrelated with address structure (sequential IPs in a
// /16 must not all land in — or all miss — the sample).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampled reports whether the (ip, port) target is in the trace sample.
// It is deterministic and stateless, so the send path and the receive
// path independently agree on which targets are traced — no per-probe
// state crosses the wire, the same trick ZMap's validators use.
func (r *Recorder) Sampled(ip uint32, port uint16) bool {
	if r.sampleMask == ^uint64(0) {
		return false
	}
	return mix64(uint64(ip)<<16|uint64(port))&r.sampleMask == 0
}

// Key packs a sampled target for later Record calls: non-zero iff
// sampled. The send path stashes this in its pending bookkeeping so the
// post-flush resolve step can record KProbeSent without rehashing.
func (r *Recorder) Key(ip uint32, port uint16) uint64 {
	if !r.Sampled(ip, port) {
		return 0
	}
	return uint64(ip)<<32 | uint64(port)<<16 | 1
}

// KeyParts unpacks a Key built by Key.
func KeyParts(key uint64) (ip uint32, port uint16) {
	return uint32(key >> 32), uint16(key >> 16)
}

// RecordAt appends one event with a caller-supplied timestamp (from
// Recorder.Now), for hot paths that already hold one. Single writer per
// shard; see Shard.
func (s *Shard) RecordAt(ts int64, k Kind, ip uint32, port uint16, val uint64) {
	c := s.cursor + 1
	s.cursor = c
	base := (c & s.mask) * slotWords
	w := s.words
	// Seqlock publication: invalidate, store payload, publish. A
	// concurrent snapshot rereads the seq word after copying the payload
	// and discards the slot unless both reads returned c.
	w[base].Store(0)
	w[base+1].Store(uint64(ts))
	w[base+2].Store(uint64(ip)<<32 | uint64(port)<<16 | uint64(k))
	w[base+3].Store(val)
	w[base].Store(c)
}

// Record appends one event stamped now.
func (s *Shard) Record(k Kind, ip uint32, port uint16, val uint64) {
	s.RecordAt(s.rec.Now(), k, ip, port, val)
}

// RecordKeyAt is RecordAt addressed by a packed Key (no-op on zero).
func (s *Shard) RecordKeyAt(ts int64, k Kind, key uint64, val uint64) {
	if key == 0 {
		return
	}
	ip, port := KeyParts(key)
	s.RecordAt(ts, k, ip, port, val)
}

// Journal appends one decision entry, stamping TS if the caller left it
// zero. Over JournalCap the entry is counted as dropped instead.
func (r *Recorder) Journal(e JEntry) {
	if e.TS == 0 {
		e.TS = r.Now()
	}
	r.mu.Lock()
	if len(r.journal) >= r.journalCap {
		r.jDropped++
		r.mu.Unlock()
		return
	}
	r.journal = append(r.journal, e)
	r.mu.Unlock()
}

// Event is one decoded ring slot.
type Event struct {
	Shard int
	Seq   uint64
	TS    int64 // ns since epoch
	Kind  Kind
	IP    uint32
	Port  uint16
	Val   uint64
}

// Snapshot is a consistent copy of the recorder's retained state.
type Snapshot struct {
	Epoch       time.Time
	SampleEvery int
	Shards      int
	RingSize    int
	Events      []Event // ascending by TS
	Journal     []JEntry
	JournalDrop uint64
}

// Snapshot copies the retained ring window and the journal. It is safe
// concurrently with writers: torn slots (overwritten mid-copy) are
// discarded, which can cost at most the few events written during the
// copy itself.
func (r *Recorder) Snapshot() *Snapshot {
	snap := &Snapshot{
		Epoch:       r.epoch,
		SampleEvery: r.sampleEvery,
		Shards:      len(r.shards),
		RingSize:    r.ringSize,
	}
	for si, sh := range r.shards {
		for slot := 0; slot < r.ringSize; slot++ {
			base := slot * slotWords
			seq := sh.words[base].Load()
			if seq == 0 {
				continue
			}
			ts := sh.words[base+1].Load()
			key := sh.words[base+2].Load()
			val := sh.words[base+3].Load()
			if sh.words[base].Load() != seq {
				continue // torn: writer landed mid-copy
			}
			snap.Events = append(snap.Events, Event{
				Shard: si,
				Seq:   seq,
				TS:    int64(ts),
				Kind:  Kind(key & 0xff),
				IP:    uint32(key >> 32),
				Port:  uint16(key >> 16),
				Val:   val,
			})
		}
	}
	sortEvents(snap.Events)
	r.mu.Lock()
	snap.Journal = append([]JEntry(nil), r.journal...)
	snap.JournalDrop = r.jDropped
	r.mu.Unlock()
	return snap
}

// sortEvents orders by timestamp, then shard/seq for determinism.
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
}
