package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRingRoundTrip(t *testing.T) {
	r := New(Config{Shards: 2, RingSize: 64})
	s0, s1 := r.Shard(0), r.Shard(1)
	s0.Record(KProbeGen, 0x0a000001, 80, 0)
	s0.Record(KProbeSent, 0x0a000001, 80, 7)
	s1.Record(KRespReceived, 0x0a000001, 80, 0)

	snap := r.Snapshot()
	if len(snap.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(snap.Events))
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].TS < snap.Events[i-1].TS {
			t.Fatalf("events not ts-sorted: %+v", snap.Events)
		}
	}
	e := snap.Events[0]
	if e.Kind != KProbeGen || e.IP != 0x0a000001 || e.Port != 80 {
		t.Fatalf("first event decoded wrong: %+v", e)
	}
	var sent *Event
	for i := range snap.Events {
		if snap.Events[i].Kind == KProbeSent {
			sent = &snap.Events[i]
		}
	}
	if sent == nil || sent.Val != 7 || sent.Shard != 0 || sent.Seq != 2 {
		t.Fatalf("sent event decoded wrong: %+v", sent)
	}
}

// TestRingWrap: overfilling a shard retains exactly the newest RingSize
// events with contiguous sequence numbers — the recorder is a window,
// not a leak.
func TestRingWrap(t *testing.T) {
	const ring = 32
	r := New(Config{Shards: 1, RingSize: ring})
	sh := r.Shard(0)
	const n = 5*ring + 3
	for i := 0; i < n; i++ {
		sh.Record(KProbeSent, uint32(i), uint16(i), uint64(i))
	}
	snap := r.Snapshot()
	if len(snap.Events) != ring {
		t.Fatalf("retained %d events, want %d", len(snap.Events), ring)
	}
	seqs := map[uint64]bool{}
	var minSeq, maxSeq uint64 = 1 << 62, 0
	for _, e := range snap.Events {
		seqs[e.Seq] = true
		if e.Seq < minSeq {
			minSeq = e.Seq
		}
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		if e.Val != uint64(e.Seq-1) {
			t.Fatalf("event %d payload skewed: %+v", e.Seq, e)
		}
	}
	if maxSeq != n || minSeq != n-ring+1 || len(seqs) != ring {
		t.Fatalf("retained window [%d,%d] x%d, want [%d,%d]", minSeq, maxSeq, len(seqs), n-ring+1, n)
	}
}

func TestSampling(t *testing.T) {
	r := New(Config{SampleEvery: 256})
	if r.SampleEvery() != 256 {
		t.Fatalf("SampleEvery = %d", r.SampleEvery())
	}
	hits := 0
	const n = 1 << 16
	for i := 0; i < n; i++ {
		ip := 0x0a000000 | uint32(i)
		if r.Sampled(ip, 443) != r.Sampled(ip, 443) {
			t.Fatal("Sampled not deterministic")
		}
		if r.Sampled(ip, 443) {
			hits++
			if r.Key(ip, 443) == 0 {
				t.Fatal("sampled target got zero key")
			}
			kip, kport := KeyParts(r.Key(ip, 443))
			if kip != ip || kport != 443 {
				t.Fatalf("key round trip: got %x:%d want %x:443", kip, kport, ip)
			}
		} else if r.Key(ip, 443) != 0 {
			t.Fatal("unsampled target got non-zero key")
		}
	}
	want := n / 256
	if hits < want/2 || hits > want*2 {
		t.Fatalf("sampled %d of %d targets, want ~%d", hits, n, want)
	}

	all := New(Config{SampleEvery: 1})
	if !all.Sampled(1, 1) || !all.Sampled(0xffffffff, 65535) {
		t.Fatal("SampleEvery 1 must sample everything")
	}
	off := New(Config{SampleEvery: -1})
	for i := 0; i < 4096; i++ {
		if off.Sampled(uint32(i*2654435761), uint16(i)) {
			t.Fatal("disabled sampling still sampled a target")
		}
	}
}

func TestJournalBounded(t *testing.T) {
	r := New(Config{JournalCap: 4})
	for i := 0; i < 10; i++ {
		r.Journal(JEntry{Kind: JPhase, Phase: "send"})
	}
	snap := r.Snapshot()
	if len(snap.Journal) != 4 || snap.JournalDrop != 6 {
		t.Fatalf("journal len %d drop %d, want 4 and 6", len(snap.Journal), snap.JournalDrop)
	}
	if snap.Journal[0].TS == 0 {
		t.Fatal("journal entry not timestamped")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(Config{Shards: 2, RingSize: 64})
	r.Shard(0).Record(KProbeGen, 0xc0a80102, 443, 0)
	r.Shard(0).Record(KProbeSent, 0xc0a80102, 443, 3)
	r.Shard(1).Record(KRespWritten, 0xc0a80102, 443, 0)
	r.Journal(JEntry{Kind: JRateDecrease, Reason: "unreach_spike", RatePPS: 5000,
		WindowSent: 100, WindowRecv: 3, UnreachFrac: 0.2})
	r.Journal(JEntry{Kind: JQuarantine, Prefix: "10.1.0.0/16"})

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if got.SampleEvery != want.SampleEvery || got.Shards != 2 || got.RingSize != 64 {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("events %d != %d", len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], want.Events[i])
		}
	}
	if len(got.Journal) != 2 || got.Journal[0].Reason != "unreach_spike" ||
		got.Journal[0].RatePPS != 5000 || got.Journal[1].Prefix != "10.1.0.0/16" {
		t.Fatalf("journal mismatch: %+v", got.Journal)
	}
}

func TestChromeTraceParses(t *testing.T) {
	r := New(Config{Shards: 1, RingSize: 64})
	r.Shard(0).Record(KProbeGen, 0x0a000001, 80, 0)
	r.Shard(0).Record(KRespWritten, 0x0a000001, 80, 0)
	r.Journal(JEntry{Kind: JRateDecrease, Reason: "hit_rate_collapse", RatePPS: 1234})

	var buf bytes.Buffer
	if err := r.Snapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range out.TraceEvents {
		names[e["name"].(string)] = true
		if _, ok := e["ph"].(string); !ok {
			t.Fatalf("event missing phase: %v", e)
		}
	}
	for _, want := range []string{"probe_gen", "resp_written", "rate_decrease", "controller_rate_pps", "10.0.0.1:80"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q event (have %v)", want, names)
		}
	}
}

// TestSnapshotUnderWriters is the -race probe for the seqlock: shards
// hammered by their writers while snapshots run concurrently must yield
// only well-formed events.
func TestSnapshotUnderWriters(t *testing.T) {
	r := New(Config{Shards: 4, RingSize: 128})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sh := r.Shard(shard)
			var n uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n++
				sh.Record(KProbeSent, uint32(n), uint16(n), n)
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		perShard := map[int]map[uint64]bool{}
		for _, e := range snap.Events {
			if e.Kind != KProbeSent || e.Seq == 0 {
				t.Fatalf("malformed event under concurrency: %+v", e)
			}
			if e.Val != e.Seq {
				t.Fatalf("torn slot leaked through: %+v", e)
			}
			m := perShard[e.Shard]
			if m == nil {
				m = map[uint64]bool{}
				perShard[e.Shard] = m
			}
			if m[e.Seq] {
				t.Fatalf("duplicate seq %d in shard %d", e.Seq, e.Shard)
			}
			m[e.Seq] = true
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkTraceRecord is the engine's per-event hot path: RecordAt
// with a caller-held timestamp. The send and receive loops already hold
// one (batch resolve time, receive time), so per-event cost excludes
// the clock read; BenchmarkTraceRecordStamp prices the variant that
// stamps its own. The ≤50ns/0-alloc budget applies here.
func BenchmarkTraceRecord(b *testing.B) {
	r := New(Config{Shards: 1, RingSize: 8192})
	sh := r.Shard(0)
	ts := r.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.RecordAt(ts, KProbeSent, uint32(i), uint16(i), uint64(i))
	}
}

// BenchmarkTraceRecordStamp includes the monotonic clock read
// (time.Since of the epoch) — the cost when no timestamp is at hand.
func BenchmarkTraceRecordStamp(b *testing.B) {
	r := New(Config{Shards: 1, RingSize: 8192})
	sh := r.Shard(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Record(KProbeSent, uint32(i), uint16(i), uint64(i))
	}
}

func BenchmarkTraceSampled(b *testing.B) {
	r := New(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Sampled(uint32(i), 443) {
			n++
		}
	}
	_ = n
}
