package experiments

import (
	"context"
	"io"
	"time"

	"zmapgo/internal/core"
	"zmapgo/internal/netsim"
	"zmapgo/internal/output"
	"zmapgo/internal/packet"
	"zmapgo/internal/target"
)

// Fig7E2ERow is one layout's engine-measured hitrate.
type Fig7E2ERow struct {
	Layout  packet.OptionLayout
	Probes  uint64
	Hits    uint64
	Hitrate float64
}

// Fig7EndToEnd validates Figure 7 through the full engine rather than
// the analytic host-model query: for each option layout it runs a real
// scan (probe construction, link, validation, dedup) over the same
// simulated population and reports the measured hitrate. The analytic
// Fig7 covers millions of addresses cheaply; this variant proves the
// production path reproduces the same ordering at smaller scale.
func Fig7EndToEnd(w io.Writer, prefixBits int, seed uint64) []Fig7E2ERow {
	header(w, "Figure 7 (end-to-end)", "hitrate by option layout through the scan engine")
	if prefixBits < 8 || prefixBits > 24 {
		prefixBits = 14
	}
	simCfg := netsim.DefaultConfig(seed)
	simCfg.ProbeLoss, simCfg.ResponseLoss, simCfg.PathBadFraction = 0, 0, 0
	simCfg.BlowbackFraction = 0
	in := netsim.New(simCfg)

	layouts := []packet.OptionLayout{
		packet.LayoutNone, packet.LayoutMSS, packet.LayoutLinux,
	}
	rows := make([]Fig7E2ERow, 0, len(layouts))
	printf(w, "%-8s %10s %10s %10s\n", "layout", "probes", "hits", "hitrate")
	for _, layout := range layouts {
		cons := target.NewConstraint(false)
		cons.Allow(0x0A000000, 32-prefixBits)
		ports, err := target.ParsePorts("80")
		if err != nil {
			panic(err)
		}
		link := netsim.NewLink(in, 1<<16, 0)
		counter := &output.CountingWriter{}
		s, err := core.New(core.Config{
			Constraint:   cons,
			Ports:        ports,
			Seed:         int64(seed) + 1, // same permutation per layout
			Threads:      4,
			Cooldown:     300 * time.Millisecond,
			SourceIP:     0xC0000201,
			OptionLayout: layout,
			RandomIPID:   true,
			Results:      counter,
		}, link)
		if err != nil {
			panic(err)
		}
		meta, err := s.Run(context.Background())
		if err != nil {
			panic(err)
		}
		link.Close()
		row := Fig7E2ERow{
			Layout:  layout,
			Probes:  meta.PacketsSent,
			Hits:    meta.UniqueSucc,
			Hitrate: float64(meta.UniqueSucc) / float64(meta.PacketsSent),
		}
		rows = append(rows, row)
		printf(w, "%-8s %10d %10d %9.4f%%\n", row.Layout, row.Probes, row.Hits, row.Hitrate*100)
	}
	printf(w, "expected ordering: none < mss <= linux (engine path, lossless population)\n")
	return rows
}
