// Package experiments regenerates every table and figure in the
// evaluation of "Ten Years of ZMap". Each exported function runs one
// experiment against the deterministic substrates (netsim, scanpop,
// telescope, ...), prints the same rows/series the paper reports, and
// returns a typed result so tests and the benchmark harness can assert on
// the shape: who wins, by roughly what factor, and where crossovers fall.
//
// Absolute numbers differ from the paper where the substrate is a
// simulator rather than the authors' telescope and testbed; DESIGN.md and
// EXPERIMENTS.md record the paper-vs-measured comparison for each.
package experiments

import (
	"fmt"
	"io"
)

// printf writes to w when non-nil, so experiments can run silently in
// tests and benchmarks.
func printf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// header prints a figure banner.
func header(w io.Writer, id, title string) {
	printf(w, "\n=== %s: %s ===\n", id, title)
}
