package experiments

import (
	"io"
	"sort"

	"zmapgo/internal/scanpop"
	"zmapgo/internal/telescope"
)

// TopASRow is one autonomous system ranked by ZMap-attributed packets.
type TopASRow struct {
	Rank     int
	AS       string
	Category string
	Packets  uint64
}

// TopASResult aggregates the §2.2 operator analysis.
type TopASResult struct {
	Rows []TopASRow
	// UniversitiesInTop counts university ASes among the top N — the
	// paper found zero among the top 100.
	UniversitiesInTop int
	// TopCategory is the category of the single loudest ZMap AS; the
	// paper identifies GCP (cloud, powering Palo Alto Xpanse).
	TopCategory string
}

// TopAS regenerates the §2.2 source-network analysis: rank the networks
// emitting the most ZMap-attributed packets and categorize their
// operators. The paper's findings — none of the loudest ZMap sources are
// universities, and a cloud provider (GCP, predominately hosting Palo
// Alto Xpanse's scans) is the single largest origin — fall out of the
// calibrated AS mix.
func TopAS(w io.Writer, packets int, seed int64) TopASResult {
	header(w, "Table: top ZMap source networks", "operator categories (§2.2)")
	gen := scanpop.NewGenerator(seed)
	tel := telescope.New()
	q := scanpop.Timeline[len(scanpop.Timeline)-1]
	gen.GenerateQuarter(q, packets, tel.Ingest)

	byAS := map[int]uint64{}
	for _, s := range tel.Sessions() {
		if s.Tool != telescope.ToolZMap {
			continue
		}
		byAS[scanpop.ASFor(s.SrcIP).Number] += s.Packets
	}
	type entry struct {
		as      scanpop.AS
		packets uint64
	}
	var entries []entry
	for num, pkts := range byAS {
		for _, a := range scanpop.ASes {
			if a.Number == num {
				entries = append(entries, entry{a, pkts})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].packets > entries[j].packets })

	res := TopASResult{}
	printf(w, "%4s %-36s %10s\n", "rank", "network", "zmap-pkts")
	for i, e := range entries {
		row := TopASRow{
			Rank:     i + 1,
			AS:       e.as.String(),
			Category: string(e.as.Category),
			Packets:  e.packets,
		}
		res.Rows = append(res.Rows, row)
		if e.as.Category == scanpop.ASUniversity {
			res.UniversitiesInTop++
		}
		printf(w, "%4d %-36s %10d\n", row.Rank, row.AS, row.Packets)
	}
	if len(res.Rows) > 0 {
		res.TopCategory = res.Rows[0].Category
	}
	printf(w, "paper: the loudest ZMap origin is a cloud provider (GCP, powering Xpanse); none of the top ZMap ASes are universities despite academia producing the papers\n")
	return res
}
