package experiments

import (
	"io"
	"sort"

	"zmapgo/internal/papers"
	"zmapgo/internal/scanpop"
	"zmapgo/internal/telescope"
)

// Fig1Row is one point of the ZMap-adoption time series.
type Fig1Row struct {
	Quarter  string
	Measured float64 // telescope-measured ZMap packet share
	Expected float64 // analytic share from the population model
}

// Fig1 regenerates Figure 1 (and the §2.1 headline number): the
// ZMap-attributed share of Internet-wide TCP scan packets per quarter,
// measured by running synthetic scanner traffic through the telescope
// pipeline. packetsPerQuarter sizes each quarter's sample.
func Fig1(w io.Writer, packetsPerQuarter int, seed int64) []Fig1Row {
	header(w, "Figure 1", "ZMap-attributed TCP scan traffic, 2014Q1-2024Q1")
	gen := scanpop.NewGenerator(seed)
	tel := telescope.New()
	for _, q := range scanpop.Timeline {
		gen.GenerateQuarter(q, packetsPerQuarter, tel.Ingest)
	}
	shares := tel.ShareByPeriod()
	rows := make([]Fig1Row, 0, len(scanpop.Timeline))
	printf(w, "%-8s %10s %10s\n", "quarter", "measured", "expected")
	for _, q := range scanpop.Timeline {
		row := Fig1Row{
			Quarter:  q.Label,
			Measured: shares[q.Label].Share(telescope.ToolZMap),
			Expected: scanpop.ExpectedGlobalShare(q),
		}
		rows = append(rows, row)
		printf(w, "%-8s %9.1f%% %9.1f%%\n", row.Quarter, row.Measured*100, row.Expected*100)
	}
	last := rows[len(rows)-1]
	printf(w, "paper: 35.4%% in 2024Q1; measured %.1f%%\n", last.Measured*100)
	return rows
}

// Fig23Row is one port row of Figures 2/3.
type Fig23Row struct {
	Rank      int
	Port      uint16
	Packets   uint64
	ZMapShare float64
}

// Fig23Result carries both figures, which share one traffic sample.
type Fig23Result struct {
	AllScans  []Fig23Row // Figure 2: top ports across all scan traffic
	ZMapScans []Fig23Row // Figure 3: top ports among ZMap-attributed traffic
}

// Fig23 regenerates Figures 2 and 3 plus the §2.1 per-port shares, from
// one 2024Q1 traffic sample.
func Fig23(w io.Writer, packets int, seed int64) Fig23Result {
	gen := scanpop.NewGenerator(seed)
	tel := telescope.New()
	q := scanpop.Timeline[len(scanpop.Timeline)-1]
	gen.GenerateQuarter(q, packets, tel.Ingest)

	mk := func(pcs []telescope.PortCount) []Fig23Row {
		rows := make([]Fig23Row, len(pcs))
		for i, pc := range pcs {
			rows[i] = Fig23Row{Rank: i + 1, Port: pc.Port, Packets: pc.Packets, ZMapShare: pc.ZMapShare}
		}
		return rows
	}
	res := Fig23Result{
		AllScans:  mk(tel.TopPorts(10, "")),
		ZMapScans: mk(tel.TopPorts(10, telescope.ToolZMap)),
	}
	header(w, "Figure 2", "All TCP scans: top ports by packet")
	printf(w, "%4s %7s %12s %11s\n", "rank", "port", "packets", "zmap-share")
	for _, r := range res.AllScans {
		printf(w, "%4d %7d %12d %10.1f%%\n", r.Rank, r.Port, r.Packets, r.ZMapShare*100)
	}
	header(w, "Figure 3", "ZMap scans: top ports by packet")
	for _, r := range res.ZMapScans {
		printf(w, "%4d %7d %12d %10.1f%%\n", r.Rank, r.Port, r.Packets, r.ZMapShare*100)
	}
	printf(w, "paper: zmap share of 80=69%%, 8080=73%%, 23=12%%, 8728=99.5%% (6th most-scanned)\n")
	printf(w, "measured: 80=%.1f%% 8080=%.1f%% 23=%.1f%% 8728=%.1f%%\n",
		tel.ZMapShareForPort(80)*100, tel.ZMapShareForPort(8080)*100,
		tel.ZMapShareForPort(23)*100, tel.ZMapShareForPort(8728)*100)
	return res
}

// Fig4Row is one country of Figure 4.
type Fig4Row struct {
	Country  string
	Measured float64
	Paper    float64
}

// Fig4 regenerates Figure 4: ZMap share by source country in 2024Q1.
func Fig4(w io.Writer, packets int, seed int64) []Fig4Row {
	header(w, "Figure 4", "ZMap share by country, 2024Q1")
	gen := scanpop.NewGenerator(seed)
	tel := telescope.New()
	q := scanpop.Timeline[len(scanpop.Timeline)-1]
	gen.GenerateQuarter(q, packets, tel.Ingest)
	byCountry := tel.CountryShare(scanpop.Geo)
	rows := make([]Fig4Row, 0, len(scanpop.Countries))
	printf(w, "%-4s %10s %10s\n", "cc", "measured", "paper")
	for _, c := range scanpop.Countries {
		if c.Code == "XX" {
			continue
		}
		row := Fig4Row{
			Country:  c.Code,
			Measured: byCountry[c.Code].Share(telescope.ToolZMap),
			Paper:    c.ZMapShare,
		}
		rows = append(rows, row)
		printf(w, "%-4s %9.2f%% %9.2f%%\n", row.Country, row.Measured*100, row.Paper*100)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Measured > rows[j].Measured })
	return rows
}

// Fig8 prints the Appendix B topic table and returns the topic list.
func Fig8(w io.Writer) []papers.Topic {
	header(w, "Figure 8", "Academic papers built on ZMap data (Appendix B)")
	if w != nil {
		papers.Render(w)
	}
	return papers.Topics
}
