package experiments

import (
	"io"
	"sort"
	"time"

	"zmapgo/internal/cyclic"
	"zmapgo/internal/dedup"
	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
	"zmapgo/internal/ratelimit"
)

// Fig5Row is one (scan rate, window size) cell of Figure 5.
type Fig5Row struct {
	GbpsLabel   string
	RatePPS     float64
	WindowSize  int
	Responses   int // total classified responses incl. duplicates
	Duplicates  int // duplicate responses emitted by hosts
	LeakedDups  int // duplicates the window failed to flag
	ResidualPct float64
}

// fig5Event is one response arrival in the virtual-time stream.
type fig5Event struct {
	at  float64 // seconds since scan start
	ip  uint32
	dup bool
}

// Fig5 regenerates Figure 5: residual duplicate rate versus sliding
// window size, at several scan rates. The workload replays scanSeconds
// of scanning (as a full-Internet scan would sustain) through the
// simulated Internet's blowback model: every response (primary and
// duplicate) is placed on a virtual timeline — probes paced at the line
// rate, duplicates spaced by the blowback gap — and the merged stream is
// driven through the real dedup.Window. A duplicate "leaks" when the
// window has already evicted its key. Faster scans interleave more
// responses between a host's duplicates, so they need larger windows —
// the paper's crossover.
//
// The paper's result: a 10^6-entry window (the ZMap default) eliminates
// nearly all duplicates, and lower scan rates can make do with smaller
// windows.
func Fig5(w io.Writer, scanSeconds float64, seed uint64) []Fig5Row {
	header(w, "Figure 5", "sliding-window duplicate rate vs window size")
	cfg := netsim.DefaultConfig(seed)
	cfg.ProbeLoss, cfg.ResponseLoss, cfg.PathBadFraction = 0, 0, 0
	cfg.BlowbackGap = 100 * time.Millisecond
	in := netsim.New(cfg)

	rates := []struct {
		label string
		gbps  float64
	}{
		{"0.1 Gbps", 0.1e9},
		{"0.5 Gbps", 0.5e9},
		{"1.0 Gbps", 1.0e9},
	}
	windows := []int{100, 1_000, 10_000, 100_000, 1_000_000}
	opts := packet.BuildOptions(packet.LayoutMSS, 0)
	wire := packet.WireLen(packet.SYNFrameLen(packet.LayoutMSS))

	// Target order: a real cyclic permutation over the space the fastest
	// rate can cover, like a scan would use.
	maxPPS := ratelimit.BandwidthToRate(rates[len(rates)-1].gbps, wire)
	maxTargets := int(maxPPS * scanSeconds)
	group, err := cyclic.GroupForOrder(uint64(maxTargets))
	if err != nil {
		panic(err)
	}
	cycle := cyclic.Cycle{Group: group, Generator: cyclic.SmallestPrimitiveRoot(group), Offset: seed % group.Order()}

	var rows []Fig5Row
	printf(w, "%-9s %10s %10s %10s %10s %12s\n",
		"rate", "window", "responses", "dups", "leaked", "residual")
	for _, rate := range rates {
		pps := ratelimit.BandwidthToRate(rate.gbps, wire)
		numTargets := int(pps * scanSeconds)
		events := buildFig5Events(in, cycle, numTargets, pps, opts, cfg.BlowbackGap)
		for _, size := range windows {
			row := replayFig5(events, size)
			row.GbpsLabel = rate.label
			row.RatePPS = pps
			rows = append(rows, row)
			printf(w, "%-9s %10d %10d %10d %10d %11.3f%%\n",
				row.GbpsLabel, row.WindowSize, row.Responses, row.Duplicates,
				row.LeakedDups, row.ResidualPct)
		}
	}
	printf(w, "paper: window 10^6 eliminates nearly all duplicates; smaller windows suffice at lower rates\n")
	return rows
}

// buildFig5Events lays every response on the virtual timeline.
func buildFig5Events(in *netsim.Internet, cycle cyclic.Cycle, numTargets int, pps float64, opts []byte, gap time.Duration) []fig5Event {
	var events []fig5Event
	it := cycle.Iterate(0, cycle.Group.Order(), 1)
	idx := 0
	for idx < numTargets {
		elem, ok := it.Next()
		if !ok {
			break
		}
		if elem > uint64(numTargets) {
			continue // skip elements outside the target space
		}
		ip := uint32(elem - 1)
		sendAt := float64(idx) / pps
		idx++
		if !in.ExpectedSYNACK(ip, 80, opts) {
			continue
		}
		rtt := in.RTT(ip).Seconds()
		events = append(events, fig5Event{at: sendAt + rtt, ip: ip})
		if in.Middlebox(ip) && !in.ServiceOpen(ip, 80) {
			continue
		}
		for d := 1; d <= in.BlowbackCount(ip, 80); d++ {
			events = append(events, fig5Event{
				at:  sendAt + rtt + float64(d)*gap.Seconds(),
				ip:  ip,
				dup: true,
			})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events
}

// replayFig5 drives the event stream through a fresh window.
func replayFig5(events []fig5Event, size int) Fig5Row {
	win := dedup.NewWindow(size)
	row := Fig5Row{WindowSize: size, Responses: len(events)}
	for _, e := range events {
		seen := win.Seen(e.ip, 80)
		if e.dup {
			row.Duplicates++
			if !seen {
				row.LeakedDups++
			}
		}
	}
	if row.Responses > 0 {
		row.ResidualPct = float64(row.LeakedDups) / float64(row.Responses) * 100
	}
	return row
}

// DedupMemRow is one line of the §4.1 dedup memory table.
type DedupMemRow struct {
	Design string
	Bytes  uint64
	Note   string
}

// DedupMem regenerates the §4.1 memory arithmetic: the 2^32 bitmap costs
// 512 MB, a 48-bit bitmap would cost 35 TB, and the sliding window's trie
// stays within tens of megabytes at the default size.
func DedupMem(w io.Writer) []DedupMemRow {
	header(w, "Table: dedup memory", "bitmap vs sliding window (§4.1)")
	win := dedup.NewWindow(dedup.DefaultWindowSize)
	// Fill the window with spread-out keys to measure steady-state memory.
	for i := 0; i < dedup.DefaultWindowSize; i++ {
		win.Seen(uint32(i)*2654435761, uint16(i*31))
	}
	rows := []DedupMemRow{
		{"bitmap 2^32 (single port)", dedup.FullBitmapBytes(32), "paper: 512 MB"},
		{"bitmap 2^48 (IP x port)", dedup.FullBitmapBytes(48), "paper: 35 TB - infeasible"},
		{"sliding window 10^6 (hash-indexed ring)", win.MemoryBytes(), "default; Figure 5 shows ~zero residual dups"},
	}
	for _, r := range rows {
		printf(w, "%-42s %16d bytes  (%s)\n", r.Design, r.Bytes, r.Note)
	}
	return rows
}
