package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"zmapgo/internal/packet"
)

func TestFig1ShapeMatchesPaper(t *testing.T) {
	rows := Fig1(nil, 60000, 1)
	if len(rows) != 21 {
		t.Fatalf("%d quarters, want 21", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Quarter != "2014Q1" || last.Quarter != "2024Q1" {
		t.Error("timeline endpoints wrong")
	}
	// Headline: ~35% in 2024Q1, under 10% in 2014.
	if math.Abs(last.Measured-0.354) > 0.04 {
		t.Errorf("2024Q1 measured %.3f, want ~0.354", last.Measured)
	}
	if first.Measured > 0.10 {
		t.Errorf("2014Q1 measured %.3f, want < 0.10", first.Measured)
	}
	// Broadly increasing (allow sampling jitter between adjacent points).
	if !(rows[5].Measured < rows[15].Measured && rows[15].Measured < last.Measured) {
		t.Error("adoption curve not increasing")
	}
}

func TestFig23ShapeMatchesPaper(t *testing.T) {
	res := Fig23(nil, 400000, 2)
	if len(res.AllScans) != 10 || len(res.ZMapScans) != 10 {
		t.Fatal("want 10 ports per figure")
	}
	rankOf := func(rows []Fig23Row, port uint16) int {
		for _, r := range rows {
			if r.Port == port {
				return r.Rank
			}
		}
		return -1
	}
	// All traffic: 80 and 23 dominate; 8728 appears around rank 6.
	if r := rankOf(res.AllScans, 80); r > 2 {
		t.Errorf("port 80 overall rank %d, want top 2", r)
	}
	if r := rankOf(res.AllScans, 23); r > 2 {
		t.Errorf("port 23 overall rank %d, want top 2", r)
	}
	if r := rankOf(res.AllScans, 8728); r < 4 || r > 8 {
		t.Errorf("port 8728 overall rank %d, want ~6", r)
	}
	// ZMap traffic: 80 first, 8728 high, telnet low.
	if r := rankOf(res.ZMapScans, 80); r != 1 {
		t.Errorf("port 80 zmap rank %d, want 1", r)
	}
	if r := rankOf(res.ZMapScans, 23); r >= 0 && r <= 3 {
		t.Errorf("port 23 zmap rank %d, want low", r)
	}
	// Per-port shares.
	shareOf := func(port uint16) float64 {
		for _, r := range res.AllScans {
			if r.Port == port {
				return r.ZMapShare
			}
		}
		return -1
	}
	checks := []struct {
		port uint16
		want float64
		tol  float64
	}{{80, 0.69, 0.04}, {8080, 0.73, 0.05}, {23, 0.12, 0.04}, {8728, 0.995, 0.01}}
	for _, c := range checks {
		if got := shareOf(c.port); math.Abs(got-c.want) > c.tol {
			t.Errorf("port %d zmap share %.3f, want %.3f±%.2f", c.port, got, c.want, c.tol)
		}
	}
}

func TestFig4MatchesPaperTable(t *testing.T) {
	rows := Fig4(nil, 400000, 3)
	if len(rows) != 10 {
		t.Fatalf("%d countries, want 10", len(rows))
	}
	for _, r := range rows {
		tol := 0.04
		if r.Paper < 0.01 {
			tol = 0.01 // RU/ZA shares are tiny
		}
		if math.Abs(r.Measured-r.Paper) > tol {
			t.Errorf("%s measured %.3f, paper %.3f", r.Country, r.Measured, r.Paper)
		}
	}
}

func TestFig5WindowShape(t *testing.T) {
	rows := Fig5(nil, 1.2, 5)
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15 (3 rates x 5 windows)", len(rows))
	}
	byRate := map[string][]Fig5Row{}
	for _, r := range rows {
		byRate[r.GbpsLabel] = append(byRate[r.GbpsLabel], r)
	}
	for rate, rs := range byRate {
		// Residual dups must be non-increasing in window size and ~zero
		// at the 10^6 default.
		for i := 1; i < len(rs); i++ {
			if rs[i].LeakedDups > rs[i-1].LeakedDups {
				t.Errorf("%s: leaked dups increased from window %d to %d", rate, rs[i-1].WindowSize, rs[i].WindowSize)
			}
		}
		last := rs[len(rs)-1]
		if last.WindowSize != 1_000_000 {
			t.Fatal("window order wrong")
		}
		if last.Responses > 0 && last.ResidualPct > 0.01 {
			t.Errorf("%s: residual %.4f%% at 10^6 window, want ~0", rate, last.ResidualPct)
		}
		if rs[0].Duplicates == 0 {
			t.Errorf("%s: no duplicates generated; workload broken", rate)
		}
	}
	// Crossover: at the smallest window, the fast scan must leak at
	// least as much as the slow scan (higher rates need bigger windows).
	slow, fast := byRate["0.1 Gbps"][0], byRate["1.0 Gbps"][0]
	if fast.LeakedDups < slow.LeakedDups {
		t.Errorf("fast scan leaked %d < slow %d at window 100", fast.LeakedDups, slow.LeakedDups)
	}
}

func TestFig6BothSchemesPartition(t *testing.T) {
	rows := Fig6(nil, 6)
	for _, r := range rows {
		if r.PizzaCovered != r.Order {
			t.Errorf("%dx%d pizza covered %d of %d", r.Shards, r.Threads, r.PizzaCovered, r.Order)
		}
		if r.InterleavedCovered != r.Order {
			t.Errorf("%dx%d interleaved covered %d of %d", r.Shards, r.Threads, r.InterleavedCovered, r.Order)
		}
		nt := uint64(r.Shards * r.Threads)
		if nt > 1 && r.NaiveMissed == 0 {
			t.Errorf("%dx%d naive endpoint math missed nothing; bug demo broken", r.Shards, r.Threads)
		}
		if r.NaiveMissed >= nt {
			t.Errorf("%dx%d naive missed %d >= NT %d", r.Shards, r.Threads, r.NaiveMissed, nt)
		}
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	rows := Fig7(nil, 3_000_000, 7)
	by := map[packet.OptionLayout]Fig7Row{}
	for _, r := range rows {
		by[r.Layout] = r
	}
	// Single options lift hitrate 1.5-2.0% relative to none.
	for _, l := range []packet.OptionLayout{packet.LayoutMSS, packet.LayoutSACK, packet.LayoutTimestamp, packet.LayoutWScale} {
		lift := by[l].LiftVsNone
		if lift < 0.010 || lift > 0.025 {
			t.Errorf("%v lift %.4f, want within ~1.5-2.0%% band", l, lift)
		}
	}
	// OS layouts find the most; MSS-only finds >99.99% of the OS max.
	max := by[packet.LayoutLinux].Hitrate
	if by[packet.LayoutBSD].Hitrate > max {
		max = by[packet.LayoutBSD].Hitrate
	}
	if by[packet.LayoutWindows].Hitrate > max {
		max = by[packet.LayoutWindows].Hitrate
	}
	if by[packet.LayoutNone].Hitrate >= max {
		t.Error("optionless probe should find fewer than OS layouts")
	}
	if by[packet.LayoutMSS].Hitrate < max*0.9995 {
		t.Errorf("MSS-only found %.6f of OS max %.6f, want > 99.95%%", by[packet.LayoutMSS].Hitrate, max)
	}
	// Optimal order loses a tiny sliver to order-sensitive stacks.
	if by[packet.LayoutOptimal].Hitrate > max {
		t.Error("optimal order should not beat OS-exact layouts")
	}
	// Line rates ride along.
	if math.Abs(by[packet.LayoutMSS].LineRateMpp-1.488) > 0.001 ||
		math.Abs(by[packet.LayoutLinux].LineRateMpp-1.276) > 0.001 {
		t.Error("line-rate columns wrong")
	}
}

func TestLineRateExact(t *testing.T) {
	rows := LineRate(nil)
	want := map[packet.OptionLayout]float64{
		packet.LayoutNone:    1.488,
		packet.LayoutMSS:     1.488,
		packet.LayoutWindows: 1.389,
		packet.LayoutLinux:   1.276,
	}
	for _, r := range rows {
		if w, ok := want[r.Layout]; ok && math.Abs(r.Mpps1GbE-w) > 0.001 {
			t.Errorf("%v: %.3f Mpps, want %.3f", r.Layout, r.Mpps1GbE, w)
		}
	}
}

func TestIPIDHitrateInsignificant(t *testing.T) {
	rows := IPIDHitrate(nil, 400000, 8)
	if len(rows) != 2 {
		t.Fatal("want 2 modes")
	}
	diff := math.Abs(rows[0].Hitrate - rows[1].Hitrate)
	// Both modes sample the same population; difference is loss noise.
	if diff > 0.002 {
		t.Errorf("ip-id hitrate difference %.5f, want ~0 (paper: insignificant)", diff)
	}
	if rows[0].Hitrate == 0 {
		t.Error("no hits; experiment broken")
	}
}

func TestGeneratorsMatchPaper(t *testing.T) {
	rows := Generators(nil, 300, 9)
	if len(rows) == 0 {
		t.Fatal("no groups tested")
	}
	for _, r := range rows {
		if math.Abs(r.AvgAttempts-r.AnalyticExpect) > r.AnalyticExpect*0.25 {
			t.Errorf("group %d: avg attempts %.2f vs analytic %.2f", r.GroupPrime, r.AvgAttempts, r.AnalyticExpect)
		}
		if r.AnalyticExpect < 2 || r.AnalyticExpect > 7 {
			t.Errorf("group %d: analytic attempts %.2f outside 'average four' ballpark", r.GroupPrime, r.AnalyticExpect)
		}
		// The 48-bit group's additive method must be hopeless.
		if r.GroupPrime == (1<<48)+21 && r.AdditiveUsableRate != 0 {
			t.Errorf("48-bit group additive usable rate %.8f, want 0 in sample", r.AdditiveUsableRate)
		}
	}
}

func TestMasscanCoverageOrdering(t *testing.T) {
	rows := Masscan(nil, 1_000_000, 10)
	by := map[string]MasscanRow{}
	for _, r := range rows {
		by[r.Scheme] = r
	}
	if by["zmap-cyclic"].Missed != 0 {
		t.Error("zmap cyclic iteration missed targets")
	}
	if by["blackrock-correct"].Missed != 0 {
		t.Error("correct blackrock missed targets")
	}
	if by["blackrock-biased"].Missed == 0 {
		t.Error("biased blackrock missed nothing; deficit not reproduced")
	}
	// Who wins: ZMap >= biased masscan, with a measurable gap.
	if by["blackrock-biased"].MissRate < 0.001 {
		t.Errorf("biased miss rate %.5f too small to explain the paper's gap", by["blackrock-biased"].MissRate)
	}
}

func TestL4L7MatchesPaperShape(t *testing.T) {
	res := L4L7(nil, 400000, 11)
	if res.L4Open <= res.L7Services {
		t.Error("L4 liveness should overcount services")
	}
	if res.MiddleboxOnly == 0 {
		t.Error("no middlebox-only targets")
	}
	// Port diffusion: small single-digit shares on assigned ports.
	if res.HTTPOn80Share < 0.01 || res.HTTPOn80Share > 0.10 {
		t.Errorf("HTTP-on-80 share %.3f, paper ~0.03", res.HTTPOn80Share)
	}
	if res.TLSOn443Share < 0.02 || res.TLSOn443Share > 0.15 {
		t.Errorf("TLS-on-443 share %.3f, paper ~0.06", res.TLSOn443Share)
	}
	// Visibility: single probe misses ~2.7%; retries/vantage recover most.
	if math.Abs(res.SingleProbeMiss-0.027) > 0.012 {
		t.Errorf("single-probe miss %.4f, paper ~0.027", res.SingleProbeMiss)
	}
	if res.DoubleProbeMiss >= res.SingleProbeMiss {
		t.Error("second probe did not reduce misses")
	}
	if res.TwoVantageMiss >= res.SingleProbeMiss {
		t.Error("second vantage did not reduce misses")
	}
	// The Wan et al. ordering: a second vantage recovers much more than
	// a retry from the same vantage (correlated path outages persist).
	if res.TwoVantageMiss >= res.DoubleProbeMiss {
		t.Errorf("two vantages (%.4f) should beat two probes (%.4f)", res.TwoVantageMiss, res.DoubleProbeMiss)
	}
	if res.DoubleProbeMiss < res.SingleProbeMiss/4 {
		t.Errorf("retry recovered too much (%.4f of %.4f); correlated component missing", res.DoubleProbeMiss, res.SingleProbeMiss)
	}
}

func TestFig8Table(t *testing.T) {
	var buf bytes.Buffer
	topics := Fig8(&buf)
	if len(topics) != 21 {
		t.Errorf("topics = %d", len(topics))
	}
	if !strings.Contains(buf.String(), "direct-use=307") {
		t.Error("figure 8 output missing totals")
	}
}

func TestExperimentsPrintOutput(t *testing.T) {
	// Smoke: every experiment writes a banner and rows when given a writer.
	var buf bytes.Buffer
	Fig1(&buf, 20000, 1)
	Fig23(&buf, 20000, 1)
	Fig4(&buf, 20000, 1)
	Fig5(&buf, 0.05, 1)
	Fig6(&buf, 1)
	Fig7(&buf, 200000, 1)
	LineRate(&buf)
	IPIDHitrate(&buf, 50000, 1)
	Generators(&buf, 50, 1)
	Masscan(&buf, 60_000, 1)
	L4L7(&buf, 50000, 1)
	DedupMem(&buf)
	Fig8(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "line rate", "IP ID",
		"generator search", "randomization coverage", "L4 vs L7", "dedup memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDedupMemPaperFigures(t *testing.T) {
	rows := DedupMem(nil)
	if rows[0].Bytes != 512<<20 {
		t.Errorf("2^32 bitmap = %d, want 512 MB", rows[0].Bytes)
	}
	if rows[1].Bytes/1e12 < 35 || rows[1].Bytes/1e12 > 36 {
		t.Errorf("48-bit bitmap = %d, want ~35 TB", rows[1].Bytes)
	}
	if rows[2].Bytes >= rows[0].Bytes {
		t.Errorf("window memory %d not below 512 MB bitmap", rows[2].Bytes)
	}
}

func TestFingerprintDetectsZMapOnly(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		rows := Fingerprint(nil, 256, workers, 13)
		by := map[string]FingerprintRow{}
		for _, r := range rows {
			by[r.Source] = r
		}
		pizza := by["zmap-pizza"]
		if !pizza.Detected {
			t.Errorf("workers=%d: pizza scan not fingerprinted", workers)
		} else {
			if pizza.Lag != workers {
				t.Errorf("workers=%d: pizza detected at lag %d, want %d", workers, pizza.Lag, workers)
			}
			if pizza.Multiplier != pizza.Expected {
				t.Errorf("workers=%d: pizza multiplier %d, want generator %d", workers, pizza.Multiplier, pizza.Expected)
			}
		}
		inter := by["zmap-interleaved"]
		if !inter.Detected {
			t.Errorf("workers=%d: interleaved scan not fingerprinted", workers)
		} else {
			if inter.Lag != 1 {
				t.Errorf("workers=%d: interleaved detected at lag %d, want 1 (round-robin reconstructs the sequential walk)", workers, inter.Lag)
			}
			if inter.Multiplier != inter.Expected {
				t.Errorf("workers=%d: interleaved multiplier %d, want generator %d", workers, inter.Multiplier, inter.Expected)
			}
		}
		if by["random"].Detected {
			t.Errorf("workers=%d: random stream misidentified as ZMap", workers)
		}
	}
}

func TestFig7EndToEndOrdering(t *testing.T) {
	rows := Fig7EndToEnd(nil, 15, 14) // /17: 32768 addresses x 3 layouts
	by := map[packet.OptionLayout]Fig7E2ERow{}
	for _, r := range rows {
		by[r.Layout] = r
	}
	none, mss, linux := by[packet.LayoutNone], by[packet.LayoutMSS], by[packet.LayoutLinux]
	if none.Probes != mss.Probes || mss.Probes != linux.Probes {
		t.Fatalf("probe counts differ: %d %d %d", none.Probes, mss.Probes, linux.Probes)
	}
	if none.Hits >= mss.Hits {
		t.Errorf("engine path: optionless %d hits >= mss %d", none.Hits, mss.Hits)
	}
	if mss.Hits > linux.Hits {
		t.Errorf("engine path: mss %d hits > linux %d", mss.Hits, linux.Hits)
	}
	// Relative lift should land near the analytic 1.5-2% band, with slack
	// for the smaller sample.
	lift := float64(linux.Hits)/float64(none.Hits) - 1
	if lift < 0.005 || lift > 0.05 {
		t.Errorf("engine-measured lift %.4f, want roughly 1.5-2%%", lift)
	}
}

func TestTopASMatchesPaperClaims(t *testing.T) {
	res := TopAS(nil, 250000, 15)
	if len(res.Rows) < 5 {
		t.Fatalf("only %d ASes ranked", len(res.Rows))
	}
	if res.TopCategory != "cloud" {
		t.Errorf("top ZMap AS category %q, paper: cloud (GCP)", res.TopCategory)
	}
	// Universities must rank at the bottom, never near the top.
	for _, r := range res.Rows[:3] {
		if r.Category == "university" {
			t.Errorf("university AS at rank %d", r.Rank)
		}
	}
	// Security companies should hold multiple top-5 slots.
	sec := 0
	for _, r := range res.Rows[:5] {
		if r.Category == "security-company" || r.Category == "cloud" {
			sec++
		}
	}
	if sec < 4 {
		t.Errorf("only %d of top 5 ASes are cloud/security; paper says they dominate", sec)
	}
}

func TestDedupAblationAgreement(t *testing.T) {
	rows := DedupAblation(nil, 14, 16) // /18
	if len(rows) != 2 {
		t.Fatal("want 2 designs")
	}
	bitmap, window := rows[0], rows[1]
	if bitmap.UniqueSucc != window.UniqueSucc {
		t.Errorf("unique successes differ: bitmap %d, window %d", bitmap.UniqueSucc, window.UniqueSucc)
	}
	if bitmap.Duplicates == 0 || window.Duplicates == 0 {
		t.Error("double probing produced no duplicates; ablation vacuous")
	}
	if bitmap.UniqueSucc == 0 {
		t.Error("no services found")
	}
}
