package experiments

import (
	"io"
	"math/rand"

	"zmapgo/internal/cyclic"
	"zmapgo/internal/shard"
)

// Fig6Row compares the sharding schemes for one (shards, threads) split.
type Fig6Row struct {
	Shards, Threads int
	// Covered counts distinct targets visited by each scheme over the
	// full group; Order is the ground truth.
	Order              uint64
	PizzaCovered       uint64
	InterleavedCovered uint64
	// NaiveMissed is how many targets the pre-2017 closed-form endpoint
	// calculation silently drops (the off-by-one bug class of §4.2).
	NaiveMissed uint64
}

// Fig6 regenerates Figure 6's comparison of interleaved and pizza
// sharding: both schemes, implemented carefully, partition the
// permutation exactly; the naive interleaved endpoint arithmetic misses
// up to N*T-1 targets per scan, which is why ZMap switched.
func Fig6(w io.Writer, seed int64) []Fig6Row {
	header(w, "Figure 6", "sharding schemes: interleaved (old) vs pizza (new)")
	group, _ := cyclic.GroupForOrder(1 << 16)
	cycle := cyclic.NewCycle(group, rand.New(rand.NewSource(seed)))
	order := group.Order()

	// Splits whose N*T does not divide the group order (the common case:
	// orders are p-1 for prime p), so the naive endpoint math is exposed.
	splits := [][2]int{{1, 1}, {2, 3}, {3, 4}, {5, 7}, {7, 9}, {16, 3}}
	rows := make([]Fig6Row, 0, len(splits))
	printf(w, "%6s %7s %12s %12s %12s %12s\n",
		"shards", "threads", "order", "pizza", "interleaved", "naive-missed")
	for _, st := range splits {
		n, threads := st[0], st[1]
		row := Fig6Row{Shards: n, Threads: threads, Order: order}
		row.PizzaCovered = coverage(cycle, shard.Pizza, order, n, threads)
		row.InterleavedCovered = coverage(cycle, shard.Interleaved, order, n, threads)
		naive := shard.NaiveInterleavedCount(order, n, threads) * uint64(n*threads)
		if naive < order {
			row.NaiveMissed = order - naive
		}
		rows = append(rows, row)
		printf(w, "%6d %7d %12d %12d %12d %12d\n",
			n, threads, order, row.PizzaCovered, row.InterleavedCovered, row.NaiveMissed)
	}
	printf(w, "paper: both schemes are correct partitions; interleaved endpoint math was 'prone to off-by-one errors', motivating the pizza switch\n")
	return rows
}

// coverage walks every subshard and counts distinct elements.
func coverage(cycle cyclic.Cycle, mode shard.Mode, order uint64, shards, threads int) uint64 {
	seen := make(map[uint64]struct{}, order)
	for _, a := range shard.PlanAll(mode, order, shards, threads) {
		it := a.Iterator(cycle)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			seen[e] = struct{}{}
		}
	}
	return uint64(len(seen))
}
