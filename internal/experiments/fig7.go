package experiments

import (
	"io"

	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
)

// Fig7Row is one option layout's result.
type Fig7Row struct {
	Layout      packet.OptionLayout
	Probes      int
	Hits        int
	Hitrate     float64
	LiftVsNone  float64 // relative hitrate gain over the optionless probe
	LineRateMpp float64 // achievable Mpps on 1 GbE with this layout
}

// Fig7 regenerates Figure 7 and the §4.3 line-rate table: the hitrate on
// TCP/80 for each TCP option layout, over numIPs simulated addresses.
// The paper's shape: any single option lifts hitrate 1.5-2.0% relative to
// no options; OS-exact layouts find the most; the packed "optimal" order
// loses a ~0.0023% sliver to order-sensitive stacks; and MSS-only keeps
// the frame under the Ethernet minimum, preserving 1.488 Mpps line rate
// where Linux/Windows layouts drop to 1.276/1.389 Mpps.
func Fig7(w io.Writer, numIPs int, seed uint64) []Fig7Row {
	header(w, "Figure 7", "hitrate on TCP/80 by SYN option layout")
	cfg := netsim.DefaultConfig(seed)
	cfg.ProbeLoss, cfg.ResponseLoss, cfg.PathBadFraction = 0, 0, 0 // isolate option effects from loss
	in := netsim.New(cfg)

	layouts := packet.AllOptionLayouts()
	rows := make([]Fig7Row, len(layouts))
	optBytes := make([][]byte, len(layouts))
	for i, l := range layouts {
		optBytes[i] = packet.BuildOptions(l, 7)
		rows[i] = Fig7Row{
			Layout:      l,
			Probes:      numIPs,
			LineRateMpp: packet.LineRatePPS(1e9, packet.SYNFrameLen(l)) / 1e6,
		}
	}
	for ip := uint32(0); ip < uint32(numIPs); ip++ {
		// Fast path: decide per-host category once, then per layout.
		for i := range layouts {
			if in.ExpectedSYNACK(ip, 80, optBytes[i]) {
				rows[i].Hits++
			}
		}
	}
	var noneRate float64
	for i := range rows {
		rows[i].Hitrate = float64(rows[i].Hits) / float64(rows[i].Probes)
		if rows[i].Layout == packet.LayoutNone {
			noneRate = rows[i].Hitrate
		}
	}
	printf(w, "%-10s %10s %10s %12s %14s\n", "layout", "hits", "hitrate", "lift-vs-none", "1GbE-Mpps")
	for i := range rows {
		if noneRate > 0 {
			rows[i].LiftVsNone = rows[i].Hitrate/noneRate - 1
		}
		printf(w, "%-10s %10d %9.4f%% %+11.3f%% %14.3f\n",
			rows[i].Layout, rows[i].Hits, rows[i].Hitrate*100,
			rows[i].LiftVsNone*100, rows[i].LineRateMpp)
	}
	printf(w, "paper: options lift hitrate 1.5-2.0%%; MSS-only finds >99.99%% of max while keeping 1.488 Mpps\n")
	return rows
}

// LineRateRow is one row of the §4.3 wire-rate table.
type LineRateRow struct {
	Layout    packet.OptionLayout
	FrameLen  int // Ethernet frame bytes, no FCS
	WireLen   int // bytes on the wire incl. preamble/FCS/IFG
	Mpps1GbE  float64
	Mpps10GbE float64
}

// LineRate regenerates the §4.3 line-rate arithmetic exactly (it is pure
// frame-size math, so the numbers should match the paper to three
// decimals: 1.488 / 1.389 / 1.276 Mpps on 1 GbE).
func LineRate(w io.Writer) []LineRateRow {
	header(w, "Table: line rate", "probe size vs achievable send rate (§4.3)")
	rows := make([]LineRateRow, 0, 4)
	printf(w, "%-10s %8s %8s %10s %10s\n", "layout", "frame", "wire", "1GbE-Mpps", "10GbE-Mpps")
	for _, l := range []packet.OptionLayout{
		packet.LayoutNone, packet.LayoutMSS, packet.LayoutWindows, packet.LayoutLinux, packet.LayoutBSD,
	} {
		frame := packet.SYNFrameLen(l)
		row := LineRateRow{
			Layout:    l,
			FrameLen:  frame,
			WireLen:   packet.WireLen(frame),
			Mpps1GbE:  packet.LineRatePPS(1e9, frame) / 1e6,
			Mpps10GbE: packet.LineRatePPS(10e9, frame) / 1e6,
		}
		rows = append(rows, row)
		printf(w, "%-10s %8d %8d %10.3f %10.3f\n",
			row.Layout, row.FrameLen, row.WireLen, row.Mpps1GbE, row.Mpps10GbE)
	}
	printf(w, "paper: 1.488 (none/mss), 1.389 (windows), 1.276 (linux) Mpps on 1 GbE\n")
	return rows
}

// IPIDRow compares static vs random IP ID hitrates (§4.3: the difference
// is not statistically significant, motivating the 2024 default change).
type IPIDRow struct {
	Mode    string
	Probes  int
	Hits    int
	Hitrate float64
}

// IPIDHitrate regenerates the §4.3 static-vs-random IP ID comparison:
// with lossy scans repeated over the same population, the two modes'
// hitrates differ only by sampling noise, because nothing in the host
// model (or, per the paper, the real Internet) filters on the IP ID.
func IPIDHitrate(w io.Writer, numIPs int, seed uint64) []IPIDRow {
	header(w, "Table: IP ID", "static 54321 vs random per-probe IP ID hitrate")
	in := netsim.New(netsim.DefaultConfig(seed)) // loss enabled: realistic
	opts := packet.BuildOptions(packet.LayoutMSS, 7)
	rows := []IPIDRow{{Mode: "static-54321"}, {Mode: "random"}}
	// The host model never reads the IP ID, so both modes see identical
	// option-gated acceptance; only transient loss differs per trial.
	for i := range rows {
		hits := 0
		for ip := uint32(0); ip < uint32(numIPs); ip++ {
			if !in.ExpectedSYNACK(ip, 80, opts) {
				continue
			}
			// Two independent loss draws per probe (out and back).
			if lossTrial(in) {
				continue
			}
			hits++
		}
		rows[i].Probes = numIPs
		rows[i].Hits = hits
		rows[i].Hitrate = float64(hits) / float64(numIPs)
	}
	printf(w, "%-14s %10s %10s %10s\n", "mode", "probes", "hits", "hitrate")
	for _, r := range rows {
		printf(w, "%-14s %10d %10d %9.4f%%\n", r.Mode, r.Probes, r.Hits, r.Hitrate*100)
	}
	diff := rows[0].Hitrate - rows[1].Hitrate
	printf(w, "difference: %+.4f%% (paper: not statistically significant)\n", diff*100)
	return rows
}

// lossTrial draws the two-way transient loss for one probe.
func lossTrial(in *netsim.Internet) bool {
	return in.LossDraw() || in.LossDraw()
}
