package experiments

import (
	"context"
	"io"
	"time"

	"zmapgo/internal/core"
	"zmapgo/internal/dedup"
	"zmapgo/internal/netsim"
	"zmapgo/internal/output"
	"zmapgo/internal/target"
)

// DedupAblationRow is one deduplicator's engine-level result.
type DedupAblationRow struct {
	Design      string
	UniqueSucc  uint64
	Duplicates  uint64
	MemoryBytes uint64
}

// DedupAblation runs the §4.1 design choice through the engine: the same
// single-port scan (with blowback enabled and double probing, so
// duplicates actually occur) deduplicated by the legacy full bitmap and
// by the modern sliding window. Both must report identical unique
// successes — the designs trade memory, not correctness, on single-port
// scans; only the window extends to multiport.
func DedupAblation(w io.Writer, prefixBits int, seed uint64) []DedupAblationRow {
	header(w, "Ablation: dedup design", "bitmap vs sliding window through the engine (§4.1)")
	if prefixBits < 8 || prefixBits > 24 {
		prefixBits = 14
	}
	simCfg := netsim.DefaultConfig(seed)
	simCfg.ProbeLoss, simCfg.ResponseLoss, simCfg.PathBadFraction = 0, 0, 0
	in := netsim.New(simCfg)

	run := func(d dedup.Deduper, name string) DedupAblationRow {
		cons := target.NewConstraint(false)
		cons.Allow(0x0A000000, 32-prefixBits)
		ports, _ := target.ParsePorts("80")
		link := netsim.NewLink(in, 1<<17, 0)
		defer link.Close()
		s, err := core.New(core.Config{
			Constraint:      cons,
			Ports:           ports,
			Seed:            int64(seed) + 1,
			Threads:         4,
			ProbesPerTarget: 2, // guarantee duplicates
			Cooldown:        400 * time.Millisecond,
			SourceIP:        0xC0000201,
			Deduper:         d,
			Results:         &output.CountingWriter{},
		}, link)
		if err != nil {
			panic(err)
		}
		meta, err := s.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return DedupAblationRow{
			Design:      name,
			UniqueSucc:  meta.UniqueSucc,
			Duplicates:  meta.Duplicates,
			MemoryBytes: d.MemoryBytes(),
		}
	}
	rows := []DedupAblationRow{
		run(dedup.NewBitmap(), "paged-bitmap (2013)"),
		run(dedup.NewWindow(dedup.DefaultWindowSize), "sliding-window (modern)"),
	}
	printf(w, "%-26s %10s %10s %14s\n", "design", "unique", "dups", "memory-bytes")
	for _, r := range rows {
		printf(w, "%-26s %10d %10d %14d\n", r.Design, r.UniqueSucc, r.Duplicates, r.MemoryBytes)
	}
	printf(w, "identical results by design; the window trades the bitmap's guarantee for multiport reach and bounded memory\n")
	return rows
}
