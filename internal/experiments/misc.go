package experiments

import (
	"io"
	"math/rand"

	"zmapgo/internal/baseline"
	"zmapgo/internal/cyclic"
	"zmapgo/internal/l7"
	"zmapgo/internal/mathx"
	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
)

// GeneratorRow summarizes the generator search for one group.
type GeneratorRow struct {
	GroupPrime     uint64
	AvgAttempts    float64 // modern factorization-based search
	AnalyticExpect float64 // (p-1)/phi(p-1)
	// AdditiveUsableRate is the fraction of old-method candidates whose
	// mapped generator lands below 2^16 (usable for 48-bit groups).
	AdditiveUsableRate float64
	AdditiveTrials     int
}

// Generators regenerates the §4.1 generator-search analysis: the modern
// method needs ~4 attempts on average for every group, while the original
// additive-mapping method's usable-candidate rate collapses to ~2^-32 on
// the 2^48 group (we measure 0 successes over the trial budget and report
// the analytic rate).
func Generators(w io.Writer, trials int, seed int64) []GeneratorRow {
	header(w, "Table: generator search", "modern vs 2013 method (§4.1)")
	rng := rand.New(rand.NewSource(seed))
	var rows []GeneratorRow
	printf(w, "%16s %12s %12s %18s\n", "group prime", "avg-attempts", "analytic", "additive-usable")
	for _, g := range cyclic.Groups() {
		if g.P < (1 << 24) {
			continue // the small groups predate the multiport design
		}
		total := 0
		for i := 0; i < trials; i++ {
			_, attempts := cyclic.FindGenerator(g, rng)
			total += attempts
		}
		row := GeneratorRow{
			GroupPrime:     g.P,
			AvgAttempts:    float64(total) / float64(trials),
			AnalyticExpect: float64(g.Order()) / float64(mathx.EulerPhi(g.Order())),
		}
		// Old method: how often does a mapped generator land < 2^16?
		// Analytically ~ 2^16/p; sampling confirms for small groups and
		// shows zero hits for the 48-bit group.
		root := smallRoot(g)
		usable := 0
		additiveTrials := trials * 4
		for i := 0; i < additiveTrials; i++ {
			a := uint64(rng.Int63n(int64(g.Order()-1))) + 1
			if mathx.GCD(a, g.Order()) != 1 {
				continue
			}
			if mathx.PowMod(root, a, g.P) < cyclic.MaxGeneratorCandidate {
				usable++
			}
		}
		row.AdditiveUsableRate = float64(usable) / float64(additiveTrials)
		row.AdditiveTrials = additiveTrials
		rows = append(rows, row)
		printf(w, "%16d %12.2f %12.2f %17.6f%%\n",
			row.GroupPrime, row.AvgAttempts, row.AnalyticExpect, row.AdditiveUsableRate*100)
	}
	printf(w, "paper: modern search averages ~4 attempts; for 2^48 groups only 1/2^32 additive candidates are usable\n")
	return rows
}

func smallRoot(g cyclic.Group) uint64 {
	for c := uint64(2); ; c++ {
		if mathx.IsGeneratorOfMultiplicativeGroup(c, g.P, g.PM1Factors) {
			return c
		}
	}
}

// MasscanRow compares randomization coverage for one scheme.
type MasscanRow struct {
	Scheme   string
	Domain   uint64
	Visited  uint64
	Missed   uint64
	MissRate float64
}

// Masscan regenerates the §3 randomization comparison: ZMap's cyclic
// group and a correct Blackrock are exact permutations, while the biased
// (modulo-folded) Blackrock variant — the bug class behind masscan's
// coverage deficit — misses a measurable slice of the space, so ZMap
// "finds notably more hosts".
func Masscan(w io.Writer, domain uint64, seed int64) []MasscanRow {
	header(w, "Table: randomization coverage", "ZMap cyclic vs masscan Blackrock (§3)")
	rows := make([]MasscanRow, 0, 3)

	// ZMap cyclic group covering the domain.
	group, err := cyclic.GroupForOrder(domain)
	if err != nil {
		panic(err)
	}
	cycle := cyclic.NewCycle(group, rand.New(rand.NewSource(seed)))
	seen := make([]bool, domain)
	var visited uint64
	it := cycle.Iterate(0, group.Order(), 1)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e-1 < domain {
			if !seen[e-1] {
				seen[e-1] = true
				visited++
			}
		}
	}
	rows = append(rows, MasscanRow{
		Scheme: "zmap-cyclic", Domain: domain, Visited: visited, Missed: domain - visited,
	})

	br := baseline.NewBlackrock(domain, uint64(seed), 4)
	correct := baseline.Coverage(domain, br.Shuffle)
	rows = append(rows, MasscanRow{
		Scheme: "blackrock-correct", Domain: domain, Visited: correct.Visited, Missed: correct.Missed,
	})
	biased := baseline.Coverage(domain, br.BiasedShuffle)
	rows = append(rows, MasscanRow{
		Scheme: "blackrock-biased", Domain: domain, Visited: biased.Visited, Missed: biased.Missed,
	})

	printf(w, "%-18s %12s %12s %10s %10s\n", "scheme", "domain", "visited", "missed", "miss-rate")
	for i := range rows {
		rows[i].MissRate = float64(rows[i].Missed) / float64(rows[i].Domain)
		printf(w, "%-18s %12d %12d %10d %9.3f%%\n",
			rows[i].Scheme, rows[i].Domain, rows[i].Visited, rows[i].Missed, rows[i].MissRate*100)
	}
	printf(w, "paper: masscan finds notably fewer hosts than ZMap, 'likely due to biases in its randomization algorithm'\n")
	return rows
}

// L4L7Result aggregates the §3 two-phase scanning experiment.
type L4L7Result struct {
	Probed         int
	L4Open         int
	L7Services     int
	MiddleboxOnly  int
	BannerlessOpen int
	// HTTPOn80Share is the fraction of all discovered HTTP services
	// found on port 80 (paper: ~3%).
	HTTPOn80Share float64
	// TLSOn443Share is the analogue for TLS on 443 (paper: ~6%).
	TLSOn443Share float64
	// Visibility: fraction of truly responsive hosts missed...
	SingleProbeMiss float64 // ...by one probe (paper: ~2.7%)
	DoubleProbeMiss float64 // ...by two probes from one vantage
	TwoVantageMiss  float64 // ...by one probe from each of two vantages
}

// L4L7 regenerates the §3 discrepancy analyses over numIPs addresses:
//
//   - L4 vs L7: middlebox prefixes make TCP liveness overcount services
//     (Izhikevich et al.), quantified by running the ZGrab/LZR follow-up
//     over every L4-responsive target.
//   - Port diffusion: sampling the port space shows only a small
//     fraction of HTTP/TLS services sit on their assigned ports.
//   - Visibility: with two-component loss (independent + correlated
//     path outages), one probe misses ~2.7% of responsive hosts; a
//     retry from the same vantage recovers only the independent
//     component ("both probes are oftentimes lost"), while a second
//     vantage draws a fresh path and recovers nearly everything — Wan
//     et al.'s recommendation to prefer vantages over probes.
func L4L7(w io.Writer, numIPs int, seed uint64) L4L7Result {
	header(w, "Table: L4 vs L7, port diffusion, visibility", "§3 discrepancies")
	cfg := netsim.DefaultConfig(seed)
	lossless := cfg
	lossless.ProbeLoss, lossless.ResponseLoss, lossless.PathBadFraction = 0, 0, 0
	inLossless := netsim.New(lossless)
	inLossy := netsim.New(cfg)

	// Phase 1+2: L4 scan plus L7 follow-up on port 80.
	grab := l7.NewGrabber(inLossless)
	i := 0
	stats := grab.Survey(func() (uint32, uint16, bool) {
		if i >= numIPs {
			return 0, 0, false
		}
		i++
		return uint32(i-1) * 257, 80, true // stride across prefixes
	})
	res := L4L7Result{
		Probed:         stats.Probed,
		L4Open:         stats.L4Open,
		L7Services:     stats.ServiceDetected,
		MiddleboxOnly:  stats.MiddleboxOnly,
		BannerlessOpen: stats.BannerlessOpen,
	}
	printf(w, "L4-vs-L7 on TCP/80: probed=%d l4-open=%d l7-services=%d middlebox-only=%d bannerless=%d\n",
		res.Probed, res.L4Open, res.L7Services, res.MiddleboxOnly, res.BannerlessOpen)
	printf(w, "  -> %.1f%% of L4-responsive targets have no service behind them\n",
		float64(res.L4Open-res.L7Services)/float64(res.L4Open)*100)

	// Port diffusion: count HTTP/TLS services on assigned ports vs a
	// sampled slice of the long tail, then extrapolate the tail.
	res.HTTPOn80Share, res.TLSOn443Share = portDiffusion(inLossless, numIPs)
	printf(w, "port diffusion: %.1f%% of HTTP on port 80 (paper ~3%%), %.1f%% of TLS on 443 (paper ~6%%)\n",
		res.HTTPOn80Share*100, res.TLSOn443Share*100)

	// Visibility: single probe vs retries vs second vantage.
	res.SingleProbeMiss, res.DoubleProbeMiss, res.TwoVantageMiss = visibility(inLossy, inLossless, numIPs)
	printf(w, "visibility: single-probe miss %.2f%% (paper ~2.7%%), two probes %.2f%%, two vantages %.2f%%\n",
		res.SingleProbeMiss*100, res.DoubleProbeMiss*100, res.TwoVantageMiss*100)
	return res
}

// portDiffusion estimates the assigned-port share of HTTP and TLS
// services: exact counts on 80/8080/443 plus a sampled tail scaled up.
func portDiffusion(in *netsim.Internet, numIPs int) (httpOn80, tlsOn443 float64) {
	const tailSample = 64 // tail ports sampled out of ~65k
	var http80, httpElse, tls443, tlsElse float64
	countPort := func(port uint16, weight float64) {
		for i := 0; i < numIPs; i++ {
			ip := uint32(i) * 257
			if !in.ServiceOpen(ip, port) {
				continue
			}
			switch in.ServiceProtocol(ip, port) {
			case netsim.ProtoHTTP:
				if port == 80 {
					http80++
				} else {
					httpElse += weight
				}
			case netsim.ProtoTLS:
				if port == 443 {
					tls443++
				} else {
					tlsElse += weight
				}
			}
		}
	}
	countPort(80, 1)
	countPort(443, 1)
	countPort(8080, 1)
	// Sample the unassigned tail and scale to the full port space.
	tailPorts := []uint16{1024, 2222, 5001, 7547, 9999, 10001, 12345, 18080,
		20001, 23023, 28015, 31337, 40000, 44380, 50050, 60001}
	scale := float64(65536-10) / float64(len(tailPorts))
	_ = tailSample
	for _, p := range tailPorts {
		countPort(p, scale)
	}
	httpOn80 = http80 / (http80 + httpElse)
	tlsOn443 = tls443 / (tls443 + tlsElse)
	return httpOn80, tlsOn443
}

// visibility measures miss rates against loss-free ground truth, using
// both loss components: independent per-packet loss plus correlated path
// outages. Retries from vantage A share A's (possibly bad) path, while
// vantage B draws an independent one — Wan et al.'s reason to prefer
// additional vantages over additional probes.
func visibility(lossy, lossless *netsim.Internet, numIPs int) (single, double, twoVantage float64) {
	const vantageA, vantageB = 0xC0000201, 0xC6336401 // 192.0.2.1, 198.51.100.1
	opts := packet.BuildOptions(packet.LayoutMSS, 7)
	var truth, missSingle, missDouble, missVantage int
	for i := 0; i < numIPs; i++ {
		ip := uint32(i) * 257
		if !lossless.ExpectedSYNACK(ip, 80, opts) {
			continue
		}
		truth++
		probeFrom := func(vantage uint32) bool { // true = response arrived
			if lossy.PathBad(vantage, ip) && lossy.LossDrawAt(lossy.Config().PathBadLossProb) {
				return false
			}
			return !lossTrial(lossy)
		}
		p1 := probeFrom(vantageA)
		if !p1 {
			missSingle++
			if !probeFrom(vantageA) { // retry, same path
				missDouble++
			}
			if !probeFrom(vantageB) { // second vantage, fresh path
				missVantage++
			}
		}
	}
	if truth == 0 {
		return 0, 0, 0
	}
	return float64(missSingle) / float64(truth),
		float64(missDouble) / float64(truth),
		float64(missVantage) / float64(truth)
}
