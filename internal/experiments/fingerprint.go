package experiments

import (
	"io"
	"math/rand"

	"zmapgo/internal/cyclic"
	"zmapgo/internal/mathx"
	"zmapgo/internal/shard"
)

// FingerprintRow is one observed probe stream and the detector's verdict.
type FingerprintRow struct {
	Source   string // "zmap-pizza", "zmap-interleaved", "random"
	Workers  int
	Detected bool
	// Lag is the stride at which the multiplicative structure appeared.
	Lag int
	// Multiplier is the recovered per-step multiplier (the generator g
	// for both schemes; the lag at which it appears differs).
	Multiplier uint64
	Expected   uint64
}

// Fingerprint reproduces the §4.2 observation by Mazel et al. that ZMap
// scans can be identified "through its IP generation method": because
// each sender walks the group by a constant multiplier, an observer who
// sees a window of consecutive probe destinations can recover that
// multiplier with one modular inversion and verify it across the window
// — for either sharding scheme, since the 2017 pizza switch changed the
// observable structure but not its existence. Random scan orders never
// satisfy the test.
//
// The observer model: a sensor sees `window` consecutive on-the-wire
// probes from a scanner running `workers` send threads that interleave
// round-robin. It knows ZMap's public group moduli; it does not know the
// generator, offset, or thread count.
func Fingerprint(w io.Writer, window, workers int, seed int64) []FingerprintRow {
	header(w, "Table: scan fingerprinting", "identifying ZMap from probe order (Mazel et al., §4.2)")
	rng := rand.New(rand.NewSource(seed))
	group, _ := cyclic.GroupForOrder(1 << 16)
	cycle := cyclic.NewCycle(group, rng)

	// Observable structure differs by scheme: pizza workers walk
	// contiguous exponent ranges, so the round-robin wire order shows
	// x[i+workers] = x[i]*g — lag equals the worker count. Interleaved
	// workers walk residue classes offset by one, so their round-robin
	// interleaving reconstructs the *sequential* group walk: lag 1,
	// multiplier g. Either way one modular inversion identifies the scan.
	rows := []FingerprintRow{
		{Source: "zmap-pizza", Workers: workers, Expected: cycle.Generator},
		{Source: "zmap-interleaved", Workers: workers, Expected: cycle.Generator},
		{Source: "random", Workers: workers},
	}
	streams := [][]uint64{
		wireStream(cycle, shard.Pizza, workers, window),
		wireStream(cycle, shard.Interleaved, workers, window),
		randomStream(rng, group.P, window),
	}
	printf(w, "%-18s %8s %9s %5s %12s %12s\n", "source", "workers", "detected", "lag", "multiplier", "expected")
	for i := range rows {
		lag, mult, ok := detectMultiplicativeStructure(streams[i], group.P, 2*workers+2)
		rows[i].Detected = ok
		rows[i].Lag = lag
		rows[i].Multiplier = mult
		printf(w, "%-18s %8d %9v %5d %12d %12d\n",
			rows[i].Source, rows[i].Workers, rows[i].Detected, rows[i].Lag,
			rows[i].Multiplier, rows[i].Expected)
	}
	printf(w, "paper: ZMap 'can be fingerprinted through its IP generation method'; the 2017 sharding change altered the observable pattern (lag, multiplier) but both schemes remain identifiable\n")
	return rows
}

// wireStream simulates what a sensor sees: workers' subshard iterators
// serviced round-robin (the steady-state send order of the engine).
func wireStream(cycle cyclic.Cycle, mode shard.Mode, workers, n int) []uint64 {
	order := cycle.Group.Order()
	iters := make([]*cyclic.Iterator, workers)
	for t := 0; t < workers; t++ {
		a := shard.Plan(mode, order, 1, workers, 0, t)
		iters[t] = a.Iterator(cycle)
	}
	out := make([]uint64, 0, n)
	for len(out) < n {
		progressed := false
		for _, it := range iters {
			e, ok := it.Next()
			if !ok {
				continue
			}
			progressed = true
			out = append(out, e)
			if len(out) == n {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// randomStream is a scanner with no multiplicative structure.
func randomStream(rng *rand.Rand, p uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Int63n(int64(p-1))) + 1
	}
	return out
}

// detectMultiplicativeStructure searches lags 1..maxLag for a constant s
// with x[i+lag] = x[i]*s (mod p) across the whole stream. Requiring the
// relation to hold at every position makes false positives on random
// streams (probability ~n/p per lag) negligible.
func detectMultiplicativeStructure(xs []uint64, p uint64, maxLag int) (lag int, multiplier uint64, ok bool) {
	for lag = 1; lag <= maxLag && lag*3 < len(xs); lag++ {
		inv, invOK := mathx.InvMod(xs[0], p)
		if !invOK {
			continue
		}
		s := mathx.MulMod(xs[lag], inv, p)
		if s == 0 {
			continue
		}
		consistent := true
		for i := 0; i+lag < len(xs); i++ {
			if mathx.MulMod(xs[i], s, p) != xs[i+lag] {
				consistent = false
				break
			}
		}
		if consistent {
			return lag, s, true
		}
	}
	return 0, 0, false
}
