// Package output implements ZMap's result pipeline, following the §5
// lessons verbatim:
//
//   - only well-worn text interfaces — Text, CSV, and JSON Lines — after
//     the database-specific output modules proved to be liabilities and
//     were removed ("Tools Not Frameworks");
//   - a static, fully typed record schema: every field has one type that
//     never depends on another field's value ("Static Types and Output
//     Schema");
//   - per-record streaming, so results can be piped into downstream tools
//     while a scan runs; and
//   - output filters in ZMap's expression syntax (e.g.
//     "success = 1 && repeat = 0") so callers choose which classifications
//     reach the stream.
package output

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"zmapgo/internal/target"
)

// Record is one scan result. The field set is fixed and each field is a
// single static type (the schema lesson from §5); Schema() documents it
// machine-readably.
type Record struct {
	Saddr          string  `json:"saddr"`
	Sport          uint16  `json:"sport"`
	Classification string  `json:"classification"`
	Success        bool    `json:"success"`
	Repeat         bool    `json:"repeat"`
	InCooldown     bool    `json:"cooldown"`
	TTL            uint8   `json:"ttl"`
	Timestamp      float64 `json:"timestamp"` // seconds since scan start
}

// NewRecord builds a Record from raw classifier output.
func NewRecord(ip uint32, port uint16, class string, success, repeat, cooldown bool, ttl uint8, elapsed time.Duration) Record {
	return Record{
		Saddr:          target.FormatIPv4(ip),
		Sport:          port,
		Classification: class,
		Success:        success,
		Repeat:         repeat,
		InCooldown:     cooldown,
		TTL:            ttl,
		Timestamp:      elapsed.Seconds(),
	}
}

// FieldDoc describes one schema field.
type FieldDoc struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Doc  string `json:"doc"`
}

// Schema returns the machine-readable record schema (the ZSchema lesson).
func Schema() []FieldDoc {
	return []FieldDoc{
		{"saddr", "string", "responding IPv4 address, dotted quad"},
		{"sport", "uint16", "scanned port (responder source port)"},
		{"classification", "string", "response class: synack|rst|echoreply|udp|port-unreach"},
		{"success", "bool", "true when the class indicates an open service"},
		{"repeat", "bool", "true when deduplication saw this target before"},
		{"cooldown", "bool", "true when received after sending finished"},
		{"ttl", "uint8", "IP TTL observed on the response"},
		{"timestamp", "float64", "seconds since scan start"},
	}
}

// Writer consumes records. Implementations are not safe for concurrent
// use; the engine writes from its single receive goroutine.
type Writer interface {
	Write(Record) error
	Close() error
}

// Flusher is implemented by writers that buffer records. The engine
// flushes before every checkpoint snapshot so a crash loses at most one
// checkpoint interval of results, not a buffer's worth. Wrapping writers
// forward Flush to their inner writer.
type Flusher interface {
	Flush() error
}

// Flush pushes buffered records in w (or any writer it wraps) to the
// underlying stream. Writers without buffers flush trivially.
func Flush(w Writer) error {
	if f, ok := w.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// WrittenCounter is implemented by writers that can report how many
// records they have emitted to their stream. Wrappers forward to the
// writer they wrap, so a Filtered writer reports records that passed the
// filter — the count of rows actually in the output, which is what the
// checkpoint's crash-loss bound is stated against.
type WrittenCounter interface {
	RecordsWritten() uint64
}

// Written reports how many records w has emitted, or 0 when the writer
// cannot say.
func Written(w Writer) uint64 {
	if c, ok := w.(WrittenCounter); ok {
		return c.RecordsWritten()
	}
	return 0
}

// TextWriter emits one address per line (ZMap's default human output).
// With ShowPort true it emits addr:port, appropriate for multiport scans.
type TextWriter struct {
	w        io.Writer
	ShowPort bool
	written  uint64
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer, showPort bool) *TextWriter {
	return &TextWriter{w: w, ShowPort: showPort}
}

// Write implements Writer.
func (t *TextWriter) Write(r Record) error {
	var err error
	if t.ShowPort {
		_, err = fmt.Fprintf(t.w, "%s:%d\n", r.Saddr, r.Sport)
	} else {
		_, err = fmt.Fprintln(t.w, r.Saddr)
	}
	if err == nil {
		t.written++
	}
	return err
}

// RecordsWritten implements WrittenCounter.
func (t *TextWriter) RecordsWritten() uint64 { return t.written }

// Close implements Writer.
func (t *TextWriter) Close() error { return nil }

// csvHeader matches Schema() order.
var csvHeader = []string{"saddr", "sport", "classification", "success", "repeat", "cooldown", "ttl", "timestamp"}

// CSVHeader returns the CSV column header row in Schema() order, for
// consumers that read or re-emit CSV results (e.g. the fleet merge).
func CSVHeader() []string { return append([]string(nil), csvHeader...) }

// CSVWriter emits the full schema as CSV with a header row.
type CSVWriter struct {
	cw          *csv.Writer
	wroteHeader bool
	written     uint64
}

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w)}
}

// Write implements Writer.
func (c *CSVWriter) Write(r Record) error {
	if !c.wroteHeader {
		if err := c.cw.Write(csvHeader); err != nil {
			return err
		}
		c.wroteHeader = true
	}
	row := []string{
		r.Saddr,
		strconv.Itoa(int(r.Sport)),
		r.Classification,
		boolStr(r.Success),
		boolStr(r.Repeat),
		boolStr(r.InCooldown),
		strconv.Itoa(int(r.TTL)),
		strconv.FormatFloat(r.Timestamp, 'f', 6, 64),
	}
	if err := c.cw.Write(row); err != nil {
		return err
	}
	c.written++
	return nil
}

// RecordsWritten implements WrittenCounter. Rows are counted when handed
// to the csv buffer; they are durable only after Flush, which is why the
// engine captures the count inside the same critical section as the
// checkpoint-time flush.
func (c *CSVWriter) RecordsWritten() uint64 { return c.written }

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Flush implements Flusher: csv.Writer buffers rows, so an unflushed
// crash would lose everything since the last Flush.
func (c *CSVWriter) Flush() error {
	c.cw.Flush()
	return c.cw.Error()
}

// Close implements Writer.
func (c *CSVWriter) Close() error { return c.Flush() }

// JSONLWriter emits one JSON object per line (JSON Lines).
type JSONLWriter struct {
	enc     *json.Encoder
	written uint64
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Write implements Writer.
func (j *JSONLWriter) Write(r Record) error {
	if err := j.enc.Encode(r); err != nil {
		return err
	}
	j.written++
	return nil
}

// RecordsWritten implements WrittenCounter.
func (j *JSONLWriter) RecordsWritten() uint64 { return j.written }

// Close implements Writer.
func (j *JSONLWriter) Close() error { return nil }

// NewWriter constructs a writer by format name: "text", "csv", "jsonl".
func NewWriter(format string, w io.Writer, multiport bool) (Writer, error) {
	switch format {
	case "text", "":
		return NewTextWriter(w, multiport), nil
	case "csv":
		return NewCSVWriter(w), nil
	case "jsonl", "json":
		return NewJSONLWriter(w), nil
	default:
		return nil, fmt.Errorf("output: unknown format %q (text|csv|jsonl)", format)
	}
}

// Filtered wraps a Writer, forwarding only records the filter accepts.
type Filtered struct {
	W      Writer
	Filter *Filter
}

// Write implements Writer.
func (f *Filtered) Write(r Record) error {
	if f.Filter != nil && !f.Filter.Match(r) {
		return nil
	}
	return f.W.Write(r)
}

// Close implements Writer.
func (f *Filtered) Close() error { return f.W.Close() }

// Flush implements Flusher by forwarding to the wrapped writer.
func (f *Filtered) Flush() error { return Flush(f.W) }

// RecordsWritten implements WrittenCounter: only records that passed the
// filter reached the wrapped writer, so its count is the row count of
// the actual output.
func (f *Filtered) RecordsWritten() uint64 { return Written(f.W) }

// CountingWriter wraps a Writer and counts records passed through.
type CountingWriter struct {
	W     Writer
	Count uint64
}

// Write implements Writer.
func (c *CountingWriter) Write(r Record) error {
	c.Count++
	if c.W == nil {
		return nil
	}
	return c.W.Write(r)
}

// Close implements Writer.
func (c *CountingWriter) Close() error {
	if c.W == nil {
		return nil
	}
	return c.W.Close()
}

// Flush implements Flusher by forwarding to the wrapped writer.
func (c *CountingWriter) Flush() error {
	if c.W == nil {
		return nil
	}
	return Flush(c.W)
}

// RecordsWritten implements WrittenCounter: the wrapped writer's count
// when one exists (it may emit fewer rows than passed through here), or
// this writer's own tally when it is the sink.
func (c *CountingWriter) RecordsWritten() uint64 {
	if c.W == nil {
		return c.Count
	}
	return Written(c.W)
}
