package output

import (
	"encoding/json"
	"io"
	"time"
)

// PhaseTiming records one scan lifecycle phase: generation (cyclic
// group and generator search), send, cooldown, drain, and done. The
// engine logs each transition through slog as it happens and summarizes
// the full sequence here, so a scan's wall time can be attributed
// post-hoc without parsing the log stream.
type PhaseTiming struct {
	Phase        string    `json:"phase"`
	Start        time.Time `json:"start"`
	DurationSecs float64   `json:"duration_secs"`
}

// Metadata is the machine-readable end-of-scan summary — the fourth
// output stream from §5 ("be liberal in what environment and execution
// information is included"). One JSON document is written at completion.
type Metadata struct {
	// Tool identity and configuration.
	Tool          string   `json:"tool"`
	Version       string   `json:"version"`
	ProbeModule   string   `json:"probe_module"`
	OutputFormat  string   `json:"output_format"`
	OutputFilter  string   `json:"output_filter"`
	Seed          int64    `json:"seed"`
	Shards        int      `json:"shards"`
	ShardIndex    int      `json:"shard_index"`
	SenderThreads int      `json:"sender_threads"`
	RatePPS       float64  `json:"rate_pps"`
	Ports         string   `json:"ports"`
	OptionLayout  string   `json:"tcp_option_layout"`
	RandomIPID    bool     `json:"random_ip_id"`
	MaxTargets    uint64   `json:"max_targets"`
	CooldownSecs  float64  `json:"cooldown_secs"`
	Blocklisted   uint64   `json:"blocklisted_addrs"`
	Allowlisted   uint64   `json:"allowlisted_addrs"`
	Group         uint64   `json:"cyclic_group_prime"`
	Generator     uint64   `json:"cyclic_generator"`
	Flags         []string `json:"flags,omitempty"`

	// Timing.
	StartTime time.Time     `json:"start_time"`
	EndTime   time.Time     `json:"end_time"`
	Duration  float64       `json:"duration_secs"`
	Phases    []PhaseTiming `json:"phases,omitempty"`

	// Counters.
	TargetsScanned uint64   `json:"targets_scanned"`
	PacketsSent    uint64   `json:"packets_sent"`
	PacketsRecv    uint64   `json:"packets_received"`
	ValidResponses uint64   `json:"valid_responses"`
	Successes      uint64   `json:"successes"`
	UniqueSucc     uint64   `json:"unique_successes"`
	Duplicates     uint64   `json:"duplicate_responses"`
	RecvDrops      uint64   `json:"receive_drops"`
	ThreadProgress []uint64 `json:"thread_progress,omitempty"`
	HitRate        float64  `json:"hit_rate"`
	SendRatePPS    float64  `json:"achieved_send_pps"`

	// Send-path fault accounting: failed transport attempts, retries
	// after transient errors, probes dropped once the retry budget ran
	// out, supervised sender restarts, and wall time spent below the
	// configured rate because the transport was failing.
	SendErrors     uint64  `json:"send_errors"`
	SendRetries    uint64  `json:"retries"`
	SendDrops      uint64  `json:"send_drops"`
	SenderRestarts uint64  `json:"sender_restarts"`
	DegradedSecs   float64 `json:"degraded_seconds"`

	// Receive-path fault accounting: frames rejected before producing a
	// result, by failure class (parser truncation, unsupported protocol,
	// checksum failure, validation/classification refusal). Probes the
	// engine could not build at all are counted as probe_build_errors.
	RecvTruncated    uint64 `json:"recv_truncated"`
	RecvUnsupported  uint64 `json:"recv_unsupported"`
	RecvChecksumFail uint64 `json:"recv_checksum_fail"`
	RecvInvalid      uint64 `json:"recv_invalid"`
	ProbeBuildErrors uint64 `json:"probe_build_errors"`

	// Scan-health accounting: the closed-loop rate controller's final
	// state, validated ICMP unreachables observed, and the interference
	// quarantine log (prefixes that went dark mid-scan and were dropped
	// from the probe rotation). CooldownActualSecs is how long the
	// adaptive cooldown really waited (>= cooldown_secs when responses
	// kept arriving, capped at cooldown_max_secs).
	AdaptiveRate        bool                `json:"adaptive_rate"`
	MinRatePPS          float64             `json:"min_rate_pps,omitempty"`
	FinalRatePPS        float64             `json:"controller_final_rate_pps,omitempty"`
	RateDecreases       uint64              `json:"rate_decreases,omitempty"`
	RateIncreases       uint64              `json:"rate_increases,omitempty"`
	UnreachObserved     uint64              `json:"icmp_unreach_observed,omitempty"`
	QuarantineSkipped   uint64              `json:"quarantine_skipped_probes,omitempty"`
	QuarantinedPrefixes []QuarantinedPrefix `json:"quarantined_prefixes,omitempty"`
	ParoleProbes        uint64              `json:"parole_probes,omitempty"`
	ParoleGrants        uint64              `json:"parole_grants,omitempty"`
	ParoleReleases      uint64              `json:"parole_releases,omitempty"`
	CooldownMaxSecs     float64             `json:"cooldown_max_secs,omitempty"`
	CooldownActualSecs  float64             `json:"cooldown_actual_secs,omitempty"`

	// Crash-safety accounting across interrupted runs: how many runs
	// contributed to this scan, when the first began, cumulative active
	// wall clock, whether this run ended on a graceful interrupt, and the
	// checkpoint file (if any) that carries the resumable state.
	Runs           int       `json:"runs"`
	FirstStartTime time.Time `json:"first_start_time"`
	CumulativeSecs float64   `json:"cumulative_secs"`
	Interrupted    bool      `json:"interrupted"`
	CheckpointFile string    `json:"checkpoint_file,omitempty"`
}

// QuarantinedPrefix is one interference-quarantine event: the prefix,
// its probe/response counts at quarantine time, when it happened
// (seconds since scan start), and the parole trail — budgeted re-probe
// attempts and, for transient blackouts, the release.
type QuarantinedPrefix struct {
	Prefix string  `json:"prefix"`
	Sent   uint64  `json:"sent"`
	Recv   uint64  `json:"recv"`
	AtSecs float64 `json:"at_secs"`

	ParoleAttempts int     `json:"parole_attempts,omitempty"`
	ParoleSent     uint64  `json:"parole_sent,omitempty"`
	ParoleRecv     uint64  `json:"parole_recv,omitempty"`
	Released       bool    `json:"released,omitempty"`
	ReleasedAtSecs float64 `json:"released_at_secs,omitempty"`
}

// Emit writes the metadata as a single indented JSON document.
func (m *Metadata) Emit(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
