package output

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return NewRecord(0x01020304, 443, "synack", true, false, false, 57, 1500*time.Millisecond)
}

func TestNewRecord(t *testing.T) {
	r := sampleRecord()
	if r.Saddr != "1.2.3.4" || r.Sport != 443 || !r.Success || r.TTL != 57 {
		t.Errorf("bad record %+v", r)
	}
	if r.Timestamp != 1.5 {
		t.Errorf("timestamp %f, want 1.5", r.Timestamp)
	}
}

func TestTextWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf, false)
	if err := w.Write(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "1.2.3.4\n" {
		t.Errorf("text output %q", buf.String())
	}
	buf.Reset()
	wp := NewTextWriter(&buf, true)
	wp.Write(sampleRecord())
	if buf.String() != "1.2.3.4:443\n" {
		t.Errorf("text+port output %q", buf.String())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCSVWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	w.Write(sampleRecord())
	r2 := sampleRecord()
	r2.Success = false
	r2.Classification = "rst"
	w.Write(r2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3 (header + 2)", len(lines))
	}
	if lines[0] != "saddr,sport,classification,success,repeat,cooldown,ttl,timestamp" {
		t.Errorf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.2.3.4,443,synack,1,0,0,57,") {
		t.Errorf("csv row %q", lines[1])
	}
	if !strings.Contains(lines[2], ",rst,0,") {
		t.Errorf("csv row 2 %q", lines[2])
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Write(sampleRecord())
	w.Write(sampleRecord())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var decoded Record
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded != sampleRecord() {
		t.Errorf("round trip %+v != %+v", decoded, sampleRecord())
	}
}

func TestNewWriterFactory(t *testing.T) {
	var buf bytes.Buffer
	for _, f := range []string{"text", "", "csv", "jsonl", "json"} {
		if _, err := NewWriter(f, &buf, false); err != nil {
			t.Errorf("NewWriter(%q): %v", f, err)
		}
	}
	if _, err := NewWriter("redis", &buf, false); err == nil {
		t.Error("database output modules were removed; 'redis' must fail")
	}
}

func TestSchemaMatchesRecordFields(t *testing.T) {
	s := Schema()
	if len(s) != 8 {
		t.Fatalf("schema has %d fields", len(s))
	}
	if s[0].Name != "saddr" || s[0].Type != "string" {
		t.Error("schema[0] wrong")
	}
	// Every schema field must have a single static type.
	for _, f := range s {
		if f.Type == "" || f.Doc == "" {
			t.Errorf("field %q missing type or doc", f.Name)
		}
	}
}

func TestFilterDefault(t *testing.T) {
	f := MustCompileFilter(DefaultFilterExpr)
	r := sampleRecord()
	if !f.Match(r) {
		t.Error("fresh success should pass default filter")
	}
	r.Repeat = true
	if f.Match(r) {
		t.Error("repeat should fail default filter")
	}
	r.Repeat = false
	r.Success = false
	if f.Match(r) {
		t.Error("failure should fail default filter")
	}
}

func TestFilterExpressions(t *testing.T) {
	r := sampleRecord() // synack, success, sport 443, ttl 57
	cases := []struct {
		expr string
		want bool
	}{
		{"", true},
		{"success = 1", true},
		{"success = 0", false},
		{"success != 0", true},
		{"classification = synack", true},
		{"classification != synack", false},
		{"classification = rst || classification = synack", true},
		{"sport = 443", true},
		{"sport = 80", false},
		{"sport >= 443 && sport <= 443", true},
		{"ttl > 32", true},
		{"ttl < 32", false},
		{"(sport = 80 || sport = 443) && ttl > 32", true},
		{"(sport = 80 || sport = 22) && ttl > 32", false},
		{"saddr = 1.2.3.4", true},
		{"saddr != 1.2.3.4", false},
		{"timestamp >= 1.5", true},
		{"timestamp > 1.5", false},
		{"cooldown = 0 && repeat = 0 && success = 1", true},
	}
	for _, c := range cases {
		f, err := CompileFilter(c.expr)
		if err != nil {
			t.Fatalf("compile %q: %v", c.expr, err)
		}
		if got := f.Match(r); got != c.want {
			t.Errorf("filter %q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestFilterCompileErrors(t *testing.T) {
	bad := []string{
		"nosuchfield = 1",
		"success == 1",
		"success =",
		"sport = abc",
		"classification > synack",
		"(success = 1",
		"success = 1 &&",
		"success = 1 extra",
		"&& success = 1",
		"success ? 1",
	}
	for _, expr := range bad {
		if _, err := CompileFilter(expr); err == nil {
			t.Errorf("CompileFilter(%q) succeeded, want error", expr)
		}
	}
}

func TestMustCompileFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompileFilter should panic on bad input")
		}
	}()
	MustCompileFilter("bogus ~ 1")
}

func TestFilteredWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := &Filtered{W: NewTextWriter(&buf, false), Filter: MustCompileFilter("success = 1")}
	fw.Write(sampleRecord())
	fail := sampleRecord()
	fail.Success = false
	fw.Write(fail)
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Errorf("filtered output %q, want 1 line", buf.String())
	}
}

func TestCountingWriter(t *testing.T) {
	cw := &CountingWriter{}
	for i := 0; i < 5; i++ {
		if err := cw.Write(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if cw.Count != 5 {
		t.Errorf("count = %d", cw.Count)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataJSON(t *testing.T) {
	var buf bytes.Buffer
	m := &Metadata{
		Tool:        "zmapgo",
		Version:     "1.0.0",
		ProbeModule: "tcp_synscan",
		PacketsSent: 100,
		HitRate:     0.25,
		StartTime:   time.Unix(1700000000, 0).UTC(),
	}
	if err := m.Emit(&buf); err != nil {
		t.Fatal(err)
	}
	var back Metadata
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "zmapgo" || back.PacketsSent != 100 || back.HitRate != 0.25 {
		t.Errorf("metadata round trip %+v", back)
	}
}

func BenchmarkJSONLWrite(b *testing.B) {
	w := NewJSONLWriter(discard{})
	r := sampleRecord()
	for i := 0; i < b.N; i++ {
		w.Write(r)
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	f := MustCompileFilter("(sport = 80 || sport = 443) && success = 1 && repeat = 0")
	r := sampleRecord()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Match(r)
	}
	benchBool = sink
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

var benchBool bool

func FuzzCompileFilter(f *testing.F) {
	f.Add("success = 1 && repeat = 0")
	f.Add("(sport = 80 || sport = 443) && ttl > 32")
	f.Add("classification != synack")
	f.Add("!!! ((")
	f.Add("saddr = 1.2.3.4 || timestamp <= 1.5")
	f.Fuzz(func(t *testing.T, expr string) {
		flt, err := CompileFilter(expr)
		if err != nil {
			return
		}
		// Compiled filters must evaluate without panicking on any record.
		flt.Match(sampleRecord())
		flt.Match(Record{})
	})
}
