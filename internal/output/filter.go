package output

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Filter is a compiled ZMap output-filter expression, e.g.
//
//	success = 1 && repeat = 0
//	classification = synack || classification = rst
//	(sport = 80 || sport = 443) && ttl > 32
//
// The grammar matches ZMap's: comparisons (=, !=, <, >, <=, >=) over the
// schema fields, combined with &&, ||, and parentheses. Boolean fields
// compare against 0/1.
type Filter struct {
	root filterNode
	src  string
}

// DefaultFilterExpr is ZMap's default output filter: fresh successes only.
const DefaultFilterExpr = "success = 1 && repeat = 0"

// CompileFilter parses an expression. An empty expression matches all
// records.
func CompileFilter(expr string) (*Filter, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return &Filter{root: matchAll{}, src: ""}, nil
	}
	p := &filterParser{tokens: lexFilter(expr)}
	root, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("output: filter %q: %w", expr, err)
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("output: filter %q: trailing tokens at %q", expr, p.peek())
	}
	return &Filter{root: root, src: expr}, nil
}

// MustCompileFilter is CompileFilter for known-good literals.
func MustCompileFilter(expr string) *Filter {
	f, err := CompileFilter(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// Match reports whether r passes the filter.
func (f *Filter) Match(r Record) bool { return f.root.eval(r) }

// String returns the source expression.
func (f *Filter) String() string { return f.src }

type filterNode interface{ eval(Record) bool }

type matchAll struct{}

func (matchAll) eval(Record) bool { return true }

type andNode struct{ l, r filterNode }

func (n andNode) eval(r Record) bool { return n.l.eval(r) && n.r.eval(r) }

type orNode struct{ l, r filterNode }

func (n orNode) eval(r Record) bool { return n.l.eval(r) || n.r.eval(r) }

type cmpNode struct {
	field string
	op    string
	sval  string
	nval  float64
	isNum bool
}

// fieldValue extracts a record field as (string, number, numeric?).
func fieldValue(r Record, field string) (string, float64, bool, error) {
	switch field {
	case "saddr":
		return r.Saddr, 0, false, nil
	case "classification":
		return r.Classification, 0, false, nil
	case "sport":
		return "", float64(r.Sport), true, nil
	case "ttl":
		return "", float64(r.TTL), true, nil
	case "timestamp":
		return "", r.Timestamp, true, nil
	case "success":
		return "", b2f(r.Success), true, nil
	case "repeat":
		return "", b2f(r.Repeat), true, nil
	case "cooldown":
		return "", b2f(r.InCooldown), true, nil
	default:
		return "", 0, false, fmt.Errorf("unknown field %q", field)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (n cmpNode) eval(r Record) bool {
	s, num, isNum, err := fieldValue(r, n.field)
	if err != nil {
		return false // unreachable: validated at compile time
	}
	if isNum {
		if !n.isNum {
			return false
		}
		switch n.op {
		case "=":
			return num == n.nval
		case "!=":
			return num != n.nval
		case "<":
			return num < n.nval
		case ">":
			return num > n.nval
		case "<=":
			return num <= n.nval
		case ">=":
			return num >= n.nval
		}
		return false
	}
	switch n.op {
	case "=":
		return s == n.sval
	case "!=":
		return s != n.sval
	}
	return false
}

// --- lexer ---

func lexFilter(src string) []string {
	var tokens []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')':
			tokens = append(tokens, string(c))
			i++
		case c == '&' && i+1 < len(src) && src[i+1] == '&':
			tokens = append(tokens, "&&")
			i += 2
		case c == '|' && i+1 < len(src) && src[i+1] == '|':
			tokens = append(tokens, "||")
			i += 2
		case c == '=':
			tokens = append(tokens, "=")
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			tokens = append(tokens, "!=")
			i += 2
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				tokens = append(tokens, string(c)+"=")
				i += 2
			} else {
				tokens = append(tokens, string(c))
				i++
			}
		default:
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '.' || src[j] == '_' || src[j] == '-') {
				j++
			}
			if j == i {
				// Unknown character: emit as its own token; the parser
				// will reject it with position context.
				j = i + 1
			}
			tokens = append(tokens, src[i:j])
			i = j
		}
	}
	return tokens
}

// --- parser ---

type filterParser struct {
	tokens []string
	pos    int
}

func (p *filterParser) atEnd() bool { return p.pos >= len(p.tokens) }

func (p *filterParser) peek() string {
	if p.atEnd() {
		return ""
	}
	return p.tokens[p.pos]
}

func (p *filterParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *filterParser) parseOr() (filterNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "||" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{left, right}
	}
	return left, nil
}

func (p *filterParser) parseAnd() (filterNode, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&&" {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = andNode{left, right}
	}
	return left, nil
}

var validOps = map[string]bool{"=": true, "!=": true, "<": true, ">": true, "<=": true, ">=": true}

func (p *filterParser) parseTerm() (filterNode, error) {
	if p.peek() == "(" {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("missing close paren")
		}
		return inner, nil
	}
	field := p.next()
	if field == "" {
		return nil, fmt.Errorf("expected field name")
	}
	if _, _, _, err := fieldValue(Record{}, field); err != nil {
		return nil, err
	}
	op := p.next()
	if !validOps[op] {
		return nil, fmt.Errorf("bad operator %q after field %q", op, field)
	}
	val := p.next()
	if val == "" {
		return nil, fmt.Errorf("missing value after %q %s", field, op)
	}
	node := cmpNode{field: field, op: op, sval: val}
	if n, err := strconv.ParseFloat(val, 64); err == nil {
		node.nval = n
		node.isNum = true
	}
	// String fields only support equality.
	if _, _, isNum, _ := fieldValue(Record{}, field); !isNum {
		if op != "=" && op != "!=" {
			return nil, fmt.Errorf("field %q supports only = and !=", field)
		}
	} else if !node.isNum {
		return nil, fmt.Errorf("field %q needs a numeric value, got %q", field, val)
	}
	return node, nil
}
