package output

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVWriterFlushPushesBufferedRows(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	rec := NewRecord(0x0A000001, 80, "synack", true, false, false, 64, 0)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("csv writer is expected to buffer until flushed")
	}
	if err := Flush(w); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10.0.0.1") {
		t.Fatalf("flushed output missing record: %q", out)
	}
	// Flush is idempotent and Close still works afterwards.
	if err := Flush(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushForwardsThroughWrappers(t *testing.T) {
	var buf bytes.Buffer
	csvw := NewCSVWriter(&buf)
	wrapped := &CountingWriter{W: &Filtered{W: csvw}}
	if err := wrapped.Write(NewRecord(0x0A000002, 443, "synack", true, false, false, 64, 0)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("record reached the stream before flush")
	}
	if err := Flush(wrapped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10.0.0.2") {
		t.Fatalf("flush did not traverse the wrapper chain: %q", buf.String())
	}
	// Unbuffered writers flush trivially, wrapped or not.
	if err := Flush(NewTextWriter(&bytes.Buffer{}, false)); err != nil {
		t.Fatal(err)
	}
	if err := Flush(&CountingWriter{}); err != nil {
		t.Fatal(err)
	}
}

func TestWrittenCountsOnlyEmittedRecords(t *testing.T) {
	filt, err := CompileFilter("success = 1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	csvw := NewCSVWriter(&buf)
	wrapped := &CountingWriter{W: &Filtered{W: csvw, Filter: filt}}
	pass := NewRecord(0x0A000001, 80, "synack", true, false, false, 64, 0)
	drop := NewRecord(0x0A000002, 80, "rst", false, false, false, 64, 0)
	for _, r := range []Record{pass, drop, pass} {
		if err := wrapped.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if wrapped.Count != 3 {
		t.Fatalf("CountingWriter saw %d records, want 3", wrapped.Count)
	}
	// Written reports rows that reached the sink, not rows offered: the
	// filter-rejected record must not count toward the crash-loss floor.
	if got := Written(wrapped); got != 2 {
		t.Fatalf("Written through wrapper chain = %d, want 2", got)
	}
	if got := Written(csvw); got != 2 {
		t.Fatalf("csv Written = %d, want 2", got)
	}
	// A standalone CountingWriter is its own sink.
	cw := &CountingWriter{}
	_ = cw.Write(pass)
	if got := Written(cw); got != 1 {
		t.Fatalf("sink CountingWriter Written = %d, want 1", got)
	}
	// Writers that cannot count report zero.
	if got := Written(devNullWriter{}); got != 0 {
		t.Fatalf("uncountable writer Written = %d, want 0", got)
	}
}

type devNullWriter struct{}

func (devNullWriter) Write(Record) error { return nil }
func (devNullWriter) Close() error       { return nil }
