package core

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"zmapgo/internal/netsim"
	"zmapgo/internal/output"
)

// failingWriter errors on every write after the first n.
type failingWriter struct {
	mu       sync.Mutex
	okLeft   int
	writes   int
	failures int
}

func (f *failingWriter) Write(output.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.okLeft > 0 {
		f.okLeft--
		return nil
	}
	f.failures++
	return errors.New("disk full")
}

func (f *failingWriter) Close() error { return nil }

func TestScanSurvivesResultWriteFailures(t *testing.T) {
	// A failing output sink must not kill the scan: the engine logs and
	// keeps receiving (results are best-effort streams, §5).
	in, cfg, _ := testbed(t, 200, "80")
	fw := &failingWriter{okLeft: 3}
	cfg.Results = fw
	var logBuf safeBuffer
	logBuf.buf = &bytes.Buffer{}
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("scan failed outright: %v", err)
	}
	if meta.PacketsSent != 16384 {
		t.Errorf("scan stopped early: sent %d", meta.PacketsSent)
	}
	fw.mu.Lock()
	failures := fw.failures
	fw.mu.Unlock()
	if failures == 0 {
		t.Fatal("writer never failed; test is vacuous")
	}
	if !strings.Contains(logBuf.String(), "result write failed") {
		t.Error("write failures not logged")
	}
}

func TestScanCountsReceiveDrops(t *testing.T) {
	// A 1-slot receive ring under a burst must record drops in metadata,
	// like ZMap's recv-drop counter. A moderate rate keeps the batched
	// sender from starving the receiver outright: limiter sleeps are
	// guaranteed drain windows, while each batch grant still bursts far
	// past one ring slot.
	in, cfg, _ := testbed(t, 201, "80")
	cfg.Rate = 100000
	link := netsim.NewLink(in, 1, 0) // pathological ring
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if meta.RecvDrops == 0 {
		t.Error("no receive drops recorded despite 1-slot ring")
	}
	if meta.UniqueSucc == 0 {
		t.Error("scan should still classify some responses")
	}
}

func TestScanImmediateCancel(t *testing.T) {
	in, cfg, _ := testbed(t, 202, "80")
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before Run
	start := time.Now()
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("pre-cancelled scan did not exit promptly")
	}
}

func TestScanWithLossyNetworkUndercounts(t *testing.T) {
	// With default transient loss, the engine should find slightly fewer
	// services than lossless ground truth (the Wan et al. effect),
	// never more. Reuse the testbed config but run against a lossy sim.
	_, cfg, sink := testbed(t, 203, "80")
	simCfg := netsim.DefaultConfig(203)
	simCfg.BlowbackFraction = 0
	lossy := netsim.New(simCfg)
	link := netsim.NewLink(lossy, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	losslessCfg := simCfg
	losslessCfg.ProbeLoss, losslessCfg.ResponseLoss, losslessCfg.PathBadFraction = 0, 0, 0
	truth := expectedHits(netsim.New(losslessCfg), []uint16{80}, cfg.OptionLayout)
	if int(meta.UniqueSucc) > truth {
		t.Errorf("lossy scan found %d > ground truth %d", meta.UniqueSucc, truth)
	}
	missRate := 1 - float64(meta.UniqueSucc)/float64(truth)
	if missRate < 0.005 || missRate > 0.08 {
		t.Errorf("loss-induced miss rate %.4f, want ~0.027", missRate)
	}
	_ = sink
}

// lockedClock is a concurrency-safe simulated clock: sleeps advance time
// instantly, so retry backoffs cost no wall time in tests.
type lockedClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *lockedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockedClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func uniqueSuccessSet(recs []output.Record) map[string]bool {
	set := map[string]bool{}
	for _, r := range recs {
		if r.Success && !r.Repeat {
			set[r.Saddr] = true
		}
	}
	return set
}

func TestScanAllFirstAttemptsFailMatchesCleanScan(t *testing.T) {
	// 100% transient-error injection on first attempts: with retries the
	// scan must reach exactly the same unique-success set as a clean run.
	in, cfg, sink := testbed(t, 210, "80")
	link := netsim.NewLink(in, 1<<16, 0)
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	metaClean, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	link.Close()

	in2, cfg2, sink2 := testbed(t, 210, "80")
	cfg2.Clock = &lockedClock{now: time.Unix(0, 0)}
	link2 := netsim.NewLink(in2, 1<<16, 0)
	defer link2.Close()
	faulty := netsim.NewFaultyTransport(link2, netsim.FaultConfig{FailFirstN: 1})
	s2, err := New(cfg2, faulty)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatalf("all-transient scan failed: %v", err)
	}
	if meta2.PacketsSent != 16384 || meta2.SendDrops != 0 {
		t.Errorf("sent %d drops %d, want 16384/0", meta2.PacketsSent, meta2.SendDrops)
	}
	if meta2.SendErrors != 16384 || meta2.SendRetries != 16384 {
		t.Errorf("send_errors %d retries %d, want 16384 each", meta2.SendErrors, meta2.SendRetries)
	}
	if meta2.UniqueSucc != metaClean.UniqueSucc {
		t.Errorf("faulty run found %d services, clean run %d", meta2.UniqueSucc, metaClean.UniqueSucc)
	}
	cleanSet, faultySet := uniqueSuccessSet(sink.all()), uniqueSuccessSet(sink2.all())
	if len(cleanSet) != len(faultySet) {
		t.Fatalf("success sets differ in size: %d vs %d", len(cleanSet), len(faultySet))
	}
	for ip := range cleanSet {
		if !faultySet[ip] {
			t.Errorf("clean-run success %s missing from faulty run", ip)
		}
	}
}

func TestScanRetryExhaustionDropsHonestly(t *testing.T) {
	// When transient failures outlast the retry budget, every probe is
	// dropped, counted as send_drops — never as sent — and the scan still
	// terminates cleanly (ZMap's give-up-and-move-on semantics).
	in, cfg, sink := testbed(t, 211, "80")
	cfg.Retries = 2
	cfg.Clock = &lockedClock{now: time.Unix(0, 0)}
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	faulty := netsim.NewFaultyTransport(link, netsim.FaultConfig{FailFirstN: 5})
	s, err := New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("drop-everything scan errored: %v", err)
	}
	if meta.PacketsSent != 0 {
		t.Errorf("PacketsSent = %d, want 0 (nothing reached the wire)", meta.PacketsSent)
	}
	if meta.SendDrops != 16384 {
		t.Errorf("SendDrops = %d, want 16384", meta.SendDrops)
	}
	// 3 attempts per probe (1 + 2 retries), all failed.
	if meta.SendErrors != 3*16384 || meta.SendRetries != 2*16384 {
		t.Errorf("send_errors %d retries %d, want %d/%d",
			meta.SendErrors, meta.SendRetries, 3*16384, 2*16384)
	}
	if meta.UniqueSucc != 0 || len(sink.all()) != 0 {
		t.Error("successes reported despite zero delivered probes")
	}
	if inner, _, _ := faulty.Stats(); inner != 0 {
		t.Errorf("inner link saw %d sends", inner)
	}
}

func TestScanFatalMidScanAbortsCleanlyAndResumes(t *testing.T) {
	// A transport that dies permanently mid-scan: sender supervision
	// restarts each thread up to its budget, Run returns ErrSenderAborted
	// with accurate metadata, and the reported progress resumes to exact
	// full coverage on a healthy transport.
	in, cfg, sink1 := testbed(t, 212, "80")
	cfg.Clock = &lockedClock{now: time.Unix(0, 0)}
	link1 := netsim.NewLink(in, 1<<16, 0)
	// FatalAfter below the ~4096-element per-thread subshard, so no
	// thread can finish before the wall and all four must abort.
	faulty := netsim.NewFaultyTransport(link1, netsim.FaultConfig{FatalAfter: 2000})
	s1, err := New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	meta1, err := s1.Run(context.Background())
	if !errors.Is(err, ErrSenderAborted) {
		t.Fatalf("Run error = %v, want ErrSenderAborted", err)
	}
	if meta1 == nil {
		t.Fatal("aborted run must still return metadata")
	}
	link1.Close()
	if meta1.PacketsSent != 2000 {
		t.Errorf("PacketsSent = %d, want exactly 2000 (FatalAfter)", meta1.PacketsSent)
	}
	// 4 threads, default budget of 2 restarts each, all exhausted.
	if meta1.SenderRestarts != 8 {
		t.Errorf("SenderRestarts = %d, want 8", meta1.SenderRestarts)
	}
	if meta1.SendErrors == 0 {
		t.Error("fatal attempts not counted as send errors")
	}
	if len(meta1.ThreadProgress) != 4 {
		t.Fatalf("thread progress %v", meta1.ThreadProgress)
	}

	// Resume on a healthy link: the union must cover every target once.
	in2, cfg2, sink2 := testbed(t, 212, "80")
	cfg2.Seed = cfg.Seed
	cfg2.ResumeProgress = meta1.ThreadProgress
	link2 := netsim.NewLink(in2, 1<<16, 0)
	defer link2.Close()
	s2, err := New(cfg2, link2)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed scan failed: %v", err)
	}
	if total := meta1.PacketsSent + meta2.PacketsSent; total != 16384 {
		t.Errorf("combined probes %d (=%d+%d), want exactly 16384",
			total, meta1.PacketsSent, meta2.PacketsSent)
	}
	union := uniqueSuccessSet(sink1.all())
	for ip := range uniqueSuccessSet(sink2.all()) {
		union[ip] = true
	}
	want := expectedHits(in, []uint16{80}, cfg.OptionLayout)
	if len(union) != want {
		t.Errorf("union of runs found %d services, ground truth %d", len(union), want)
	}
}

func TestScanStalledTransportHonorsMaxRuntime(t *testing.T) {
	// A wedged driver that stalls every send must not hang the scan:
	// MaxRuntime bounds the sending phase and progress stays resumable.
	in, cfg, _ := testbed(t, 213, "80")
	cfg.MaxRuntime = 250 * time.Millisecond
	link := netsim.NewLink(in, 1<<16, 0)
	faulty := netsim.NewFaultyTransport(link, netsim.FaultConfig{
		StallEvery: 1,
		StallFor:   10 * time.Millisecond,
	})
	s, err := New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("stalled scan errored: %v", err)
	}
	link.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled scan took %v; MaxRuntime not honored", elapsed)
	}
	if meta.PacketsSent == 0 || meta.PacketsSent >= 16384 {
		t.Fatalf("PacketsSent = %d, want partial progress", meta.PacketsSent)
	}

	// The partial progress must resume to exact full coverage.
	in2, cfg2, _ := testbed(t, 213, "80")
	cfg2.Seed = cfg.Seed
	cfg2.ResumeProgress = meta.ThreadProgress
	link2 := netsim.NewLink(in2, 1<<16, 0)
	defer link2.Close()
	s2, err := New(cfg2, link2)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total := meta.PacketsSent + meta2.PacketsSent; total != 16384 {
		t.Errorf("combined probes %d, want exactly 16384", total)
	}
}

func TestScanDegradesRateUnderSustainedFaults(t *testing.T) {
	// Sustained transient failure makes senders lower their rate share
	// (and report the degraded interval); recovery restores it, and every
	// probe that survives its retry budget still goes out.
	in, cfg, _ := testbed(t, 214, "80")
	cfg.Rate = 400_000 // 100k pps per thread, on the simulated clock
	cfg.Clock = &lockedClock{now: time.Unix(0, 0)}
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	faulty := netsim.NewFaultyTransport(link, netsim.FaultConfig{FailFirstSends: 2000})
	s, err := New(cfg, faulty)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("scan errored: %v", err)
	}
	if meta.DegradedSecs <= 0 {
		t.Error("no degraded time reported despite sustained failure burst")
	}
	if meta.SendErrors == 0 || meta.SendRetries == 0 {
		t.Errorf("fault counters empty: errors=%d retries=%d", meta.SendErrors, meta.SendRetries)
	}
	if meta.PacketsSent+meta.SendDrops != 16384 {
		t.Errorf("sent %d + dropped %d != 16384", meta.PacketsSent, meta.SendDrops)
	}
	if meta.PacketsSent < 14000 {
		t.Errorf("only %d probes survived a 2000-attempt burst", meta.PacketsSent)
	}
}
