package core

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"zmapgo/internal/netsim"
	"zmapgo/internal/output"
)

// failingWriter errors on every write after the first n.
type failingWriter struct {
	mu       sync.Mutex
	okLeft   int
	writes   int
	failures int
}

func (f *failingWriter) Write(output.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.okLeft > 0 {
		f.okLeft--
		return nil
	}
	f.failures++
	return errors.New("disk full")
}

func (f *failingWriter) Close() error { return nil }

func TestScanSurvivesResultWriteFailures(t *testing.T) {
	// A failing output sink must not kill the scan: the engine logs and
	// keeps receiving (results are best-effort streams, §5).
	in, cfg, _ := testbed(t, 200, "80")
	fw := &failingWriter{okLeft: 3}
	cfg.Results = fw
	var logBuf safeBuffer
	logBuf.buf = &bytes.Buffer{}
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("scan failed outright: %v", err)
	}
	if meta.PacketsSent != 16384 {
		t.Errorf("scan stopped early: sent %d", meta.PacketsSent)
	}
	fw.mu.Lock()
	failures := fw.failures
	fw.mu.Unlock()
	if failures == 0 {
		t.Fatal("writer never failed; test is vacuous")
	}
	if !strings.Contains(logBuf.String(), "result write failed") {
		t.Error("write failures not logged")
	}
}

func TestScanCountsReceiveDrops(t *testing.T) {
	// A 1-slot receive ring under a burst must record drops in metadata,
	// like ZMap's recv-drop counter.
	in, cfg, _ := testbed(t, 201, "80")
	link := netsim.NewLink(in, 1, 0) // pathological ring
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if meta.RecvDrops == 0 {
		t.Error("no receive drops recorded despite 1-slot ring")
	}
	if meta.UniqueSucc == 0 {
		t.Error("scan should still classify some responses")
	}
}

func TestScanImmediateCancel(t *testing.T) {
	in, cfg, _ := testbed(t, 202, "80")
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before Run
	start := time.Now()
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("pre-cancelled scan did not exit promptly")
	}
}

func TestScanWithLossyNetworkUndercounts(t *testing.T) {
	// With default transient loss, the engine should find slightly fewer
	// services than lossless ground truth (the Wan et al. effect),
	// never more. Reuse the testbed config but run against a lossy sim.
	_, cfg, sink := testbed(t, 203, "80")
	simCfg := netsim.DefaultConfig(203)
	simCfg.BlowbackFraction = 0
	lossy := netsim.New(simCfg)
	link := netsim.NewLink(lossy, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	losslessCfg := simCfg
	losslessCfg.ProbeLoss, losslessCfg.ResponseLoss, losslessCfg.PathBadFraction = 0, 0, 0
	truth := expectedHits(netsim.New(losslessCfg), []uint16{80}, cfg.OptionLayout)
	if int(meta.UniqueSucc) > truth {
		t.Errorf("lossy scan found %d > ground truth %d", meta.UniqueSucc, truth)
	}
	missRate := 1 - float64(meta.UniqueSucc)/float64(truth)
	if missRate < 0.005 || missRate > 0.08 {
		t.Errorf("loss-induced miss rate %.4f, want ~0.027", missRate)
	}
	_ = sink
}
