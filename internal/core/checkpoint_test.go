package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/dedup"
	"zmapgo/internal/netsim"
	"zmapgo/internal/output"
	"zmapgo/internal/target"
)

func mustPorts(t *testing.T, spec string) *target.PortSet {
	t.Helper()
	ps, err := target.ParsePorts(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestGracefulStopFinishesCleanly(t *testing.T) {
	in, cfg, _ := testbed(t, 130, "80")
	cfg.Rate = 20000 // ~0.8s of sending: Stop lands mid-scan
	cfg.Cooldown = 100 * time.Millisecond
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "scan.ckpt")
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var meta *output.Metadata
	go func() {
		defer close(done)
		m, err := s.Run(context.Background())
		if err != nil {
			t.Errorf("graceful stop must not error: %v", err)
		}
		meta = m
	}()
	time.Sleep(150 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if meta == nil {
		t.Fatal("no metadata")
	}
	if !meta.Interrupted {
		t.Error("metadata must record the interrupt")
	}
	if meta.PacketsSent == 0 || meta.PacketsSent >= 16384 {
		t.Errorf("stop landed outside the scan: sent %d", meta.PacketsSent)
	}
	// The full lifecycle still ran: cooldown, drain, done.
	phases := map[string]bool{}
	for _, p := range meta.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"send", "cooldown", "drain", "done"} {
		if !phases[want] {
			t.Errorf("phase %q missing after graceful stop: %v", want, meta.Phases)
		}
	}
	// The final checkpoint exists and is marked interrupted.
	snap, err := checkpoint.Load(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if snap.Phase != "interrupted" {
		t.Errorf("final checkpoint phase %q, want interrupted", snap.Phase)
	}
}

func TestCheckpointResumeExactlyOnce(t *testing.T) {
	// Run 1: graceful interrupt mid-scan, final checkpoint is exact.
	ckpt := filepath.Join(t.TempDir(), "scan.ckpt")
	in, cfg, sink1 := testbed(t, 131, "80")
	cfg.Rate = 20000
	cfg.Cooldown = 150 * time.Millisecond
	cfg.CheckpointPath = ckpt
	link1 := netsim.NewLink(in, 1<<16, 0)
	s1, err := New(cfg, link1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *output.Metadata, 1)
	go func() {
		m, err := s1.Run(context.Background())
		if err != nil {
			t.Errorf("run 1: %v", err)
		}
		done <- m
	}()
	time.Sleep(150 * time.Millisecond)
	s1.Stop()
	meta1 := <-done
	link1.Close()
	if meta1.PacketsSent == 0 || meta1.PacketsSent >= 16384 {
		t.Fatalf("interrupt landed outside the scan: sent %d", meta1.PacketsSent)
	}

	snap, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// Run 2: resume with Seed zero — it must be adopted from the
	// checkpoint — against an identically-populated fresh sim.
	in2, cfg2, sink2 := testbed(t, 131, "80")
	cfg2.Seed = 0
	cfg2.Resume = snap
	cfg2.CheckpointPath = ckpt
	link2 := netsim.NewLink(in2, 1<<16, 0)
	defer link2.Close()
	s2, err := New(cfg2, link2)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if total := meta1.PacketsSent + meta2.PacketsSent; total != 16384 {
		t.Errorf("runs sent %d+%d = %d probes, want exactly 16384",
			meta1.PacketsSent, meta2.PacketsSent, total)
	}
	seen := map[string]int{}
	for _, r := range append(sink1.all(), sink2.all()...) {
		if r.Success && !r.Repeat {
			seen[r.Saddr]++
		}
	}
	for addr, n := range seen {
		if n != 1 {
			t.Errorf("%s reported as new success %d times across the runs", addr, n)
		}
	}
	want := expectedHits(in, []uint16{80}, cfg.OptionLayout)
	if len(seen) != want {
		t.Errorf("union found %d services, ground truth %d", len(seen), want)
	}

	// Cross-run accounting.
	if meta1.Runs != 1 || !meta1.Interrupted {
		t.Errorf("run 1 accounting: runs=%d interrupted=%v", meta1.Runs, meta1.Interrupted)
	}
	if meta2.Runs != 2 || meta2.Interrupted {
		t.Errorf("run 2 accounting: runs=%d interrupted=%v", meta2.Runs, meta2.Interrupted)
	}
	if meta2.CumulativeSecs <= meta2.Duration {
		t.Errorf("cumulative %.3fs must exceed run-2 duration %.3fs",
			meta2.CumulativeSecs, meta2.Duration)
	}
	if meta2.Seed != meta1.Seed {
		t.Errorf("adopted seed %d != original %d", meta2.Seed, meta1.Seed)
	}

	// The resumed run's final checkpoint is complete.
	final, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if final.Phase != "done" || final.Runs != 2 {
		t.Errorf("final checkpoint phase=%q runs=%d", final.Phase, final.Runs)
	}
}

func TestCheckpointFingerprintMismatchIsHardError(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "scan.ckpt")
	in, cfg, _ := testbed(t, 132, "80")
	cfg.MaxTargets = 500
	cfg.CheckpointPath = ckpt
	link := netsim.NewLink(in, 1<<16, 0)
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	link.Close()
	snap, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"ports", func(c *Config) { c.Ports = mustPorts(t, "443") }},
		{"seed", func(c *Config) { c.Seed++ }},
		{"threads", func(c *Config) { c.Threads++ }},
		{"shards", func(c *Config) { c.Shards = 2 }},
		{"targets", func(c *Config) {
			cons := *c.Constraint
			c.Constraint = &cons
			c.Constraint.Deny(0x0A000000, 24)
		}},
	}
	for _, tc := range cases {
		in2, cfg2, _ := testbed(t, 132, "80")
		_ = in2
		cfg2.Resume = snap
		tc.mutate(&cfg2)
		link2 := netsim.NewLink(in2, 16, 0)
		_, err := New(cfg2, link2)
		link2.Close()
		if !errors.Is(err, checkpoint.ErrFingerprintMismatch) {
			t.Errorf("%s mismatch: New = %v, want ErrFingerprintMismatch", tc.name, err)
		}
	}

	// And an unmutated config resumes fine.
	in3, cfg3, _ := testbed(t, 132, "80")
	_ = in3
	cfg3.Resume = snap
	cfg3.MaxTargets = cfg.MaxTargets
	link3 := netsim.NewLink(in3, 16, 0)
	defer link3.Close()
	if _, err := New(cfg3, link3); err != nil {
		t.Errorf("identical config rejected: %v", err)
	}
}

func TestCrashResumeFromPeriodicSnapshotSkipsNothing(t *testing.T) {
	// A crash leaves only the last periodic snapshot, whose progress is
	// rounded down for still-running threads. Resuming from it must walk
	// the permutation to the very end — re-probing a little is allowed
	// (at-least-once), skipping anything is not.
	ckpt := filepath.Join(t.TempDir(), "scan.ckpt")
	in, cfg, _ := testbed(t, 133, "80")
	cfg.Rate = 15000
	cfg.CheckpointPath = ckpt
	cfg.CheckpointInterval = 20 * time.Millisecond
	link := netsim.NewLink(in, 1<<16, 0)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_, _ = s.Run(ctx) // hard-aborted; error/metadata irrelevant
	}()
	// Wait for a periodic snapshot to land, then "crash".
	var snap *checkpoint.Snapshot
	deadline := time.Now().Add(5 * time.Second)
	for snap == nil {
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
		if loaded, err := checkpoint.Load(ckpt); err == nil && loaded.Phase == "send" {
			snap = loaded
		}
	}
	cancel()
	<-runDone
	link.Close()

	// Reference: a clean full run with the same fingerprint.
	inRef, cfgRef, _ := testbed(t, 133, "80")
	_ = inRef
	linkRef := netsim.NewLink(inRef, 1<<16, 0)
	defer linkRef.Close()
	sRef, err := New(cfgRef, linkRef)
	if err != nil {
		t.Fatal(err)
	}
	metaRef, err := sRef.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Resume from the stale snapshot: cumulative per-thread progress must
	// reach exactly the reference's (the full assignment), proving no
	// element was skipped.
	in2, cfg2, _ := testbed(t, 133, "80")
	_ = in2
	cfg2.Resume = snap
	link2 := netsim.NewLink(in2, 1<<16, 0)
	defer link2.Close()
	s2, err := New(cfg2, link2)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Runs != snap.Runs+1 {
		t.Errorf("runs = %d, want %d", meta2.Runs, snap.Runs+1)
	}
	if len(meta2.ThreadProgress) != len(metaRef.ThreadProgress) {
		t.Fatalf("thread counts differ: %v vs %v", meta2.ThreadProgress, metaRef.ThreadProgress)
	}
	for i := range meta2.ThreadProgress {
		if meta2.ThreadProgress[i] != metaRef.ThreadProgress[i] {
			t.Errorf("thread %d progress %d, reference %d — resume skipped or overran",
				i, meta2.ThreadProgress[i], metaRef.ThreadProgress[i])
		}
	}
	// The conservative rounding re-probes at most one element per thread
	// beyond what the snapshot recorded.
	for i, p := range snap.Progress {
		if p > meta2.ThreadProgress[i] {
			t.Errorf("thread %d snapshot progress %d exceeds total %d", i, p, meta2.ThreadProgress[i])
		}
	}
}

func TestFinalCheckpointCarriesDedupWindow(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "scan.ckpt")
	in, cfg, sink := testbed(t, 134, "80")
	cfg.MaxTargets = 3000
	cfg.CheckpointPath = ckpt
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dedup == nil {
		t.Fatal("final checkpoint carries no dedup state")
	}
	keys, err := checkpoint.DecodeKeys(snap.Dedup.Keys)
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	for _, r := range sink.all() {
		if !r.Repeat {
			valid++
		}
	}
	if len(keys) != valid {
		t.Errorf("window carries %d keys, scan saw %d distinct responses", len(keys), valid)
	}
	// Restoring the keys reproduces membership: every key is a repeat.
	w := dedup.NewWindow(snap.Dedup.Size)
	w.Restore(keys)
	for _, k := range keys {
		if !w.Seen(uint32(k>>16), uint16(k&0xFFFF)) {
			t.Fatalf("restored window missing key %x", k)
		}
	}
}
