package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"zmapgo/internal/netsim"
	"zmapgo/internal/packet"
	"zmapgo/internal/probe"
)

// unbuildableModule is a registered probe module whose MakeProbe always
// fails. It pins the rate-limiter regression: a probe that cannot be
// built must never consume a rate token (the historical loop drew the
// token before attempting the build, silently under-running the
// configured rate on every failure).
type unbuildableModule struct{}

func (unbuildableModule) Name() string { return "test_unbuildable" }

func (unbuildableModule) MakeProbe(buf []byte, ctx *probe.Context, ip uint32, port uint16) ([]byte, error) {
	return nil, fmt.Errorf("test module never builds probes")
}

func (unbuildableModule) Classify(ctx *probe.Context, f *packet.Frame) (probe.Result, bool) {
	return probe.Result{}, false
}

func (unbuildableModule) ProbeLen(ctx *probe.Context) int { return 54 }

func init() { probe.Register(unbuildableModule{}) }

// sleepCountingClock is a real clock that counts Sleep calls. The
// limiter only sleeps when a token grant actually blocks, so the count
// distinguishes "drew tokens" from "never touched the limiter".
type sleepCountingClock struct {
	sleeps atomic.Uint64
}

func (c *sleepCountingClock) Now() time.Time { return time.Now() }

func (c *sleepCountingClock) Sleep(d time.Duration) {
	c.sleeps.Add(1)
	time.Sleep(d)
}

func TestBuildFailuresBurnNoRateTokens(t *testing.T) {
	// Every build fails, at a rate slow enough (1k pps) that drawing one
	// token per failed build — the old behavior — would sleep thousands
	// of times and take ~16s. The fixed path must finish immediately:
	// zero limiter sleeps, zero packets, every failure counted.
	in, cfg, _ := testbed(t, 220, "80")
	cfg.ProbeModule = "test_unbuildable"
	cfg.Rate = 1000
	clk := &sleepCountingClock{}
	cfg.Clock = clk
	cfg.Cooldown = time.Millisecond
	link := netsim.NewLink(in, 1<<10, 0)
	defer link.Close()
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("scan of unbuildable probes took %v; build failures are drawing rate tokens", elapsed)
	}
	if n := clk.sleeps.Load(); n != 0 {
		t.Errorf("limiter slept %d times for probes that never existed", n)
	}
	if meta.ProbeBuildErrors != 16384 {
		t.Errorf("ProbeBuildErrors = %d, want 16384", meta.ProbeBuildErrors)
	}
	if meta.PacketsSent != 0 {
		t.Errorf("PacketsSent = %d, want 0", meta.PacketsSent)
	}
}

func TestScanBatchedFaultyTransport(t *testing.T) {
	// Batch size must be invisible to scan semantics: across a sweep of
	// batch sizes, with a transport that fails the first attempt of every
	// frame, the unique-success set and exact send accounting must match
	// a clean run's. This is the batched path's equivalence contract —
	// partial-batch failures, retry classification, and progress all
	// behave as if probes were sent one at a time.
	in, cfg, sink := testbed(t, 221, "80")
	link := netsim.NewLink(in, 1<<16, 0)
	s, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	link.Close()
	if meta.PacketsSent != 16384 {
		t.Fatalf("clean run sent %d, want 16384", meta.PacketsSent)
	}
	cleanSet := uniqueSuccessSet(sink.all())
	if len(cleanSet) == 0 {
		t.Fatal("clean run found no services; test is vacuous")
	}

	for _, batch := range []int{1, 16, 64, 256} {
		batch := batch
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			in2, cfg2, sink2 := testbed(t, 221, "80")
			cfg2.Seed = cfg.Seed
			cfg2.BatchSize = batch
			cfg2.Clock = &lockedClock{now: time.Unix(0, 0)} // instant backoff sleeps
			link2 := netsim.NewLink(in2, 1<<16, 0)
			defer link2.Close()
			faulty := netsim.NewFaultyTransport(link2, netsim.FaultConfig{
				Seed:       uint64(batch),
				FailFirstN: 1,
			})
			s2, err := New(cfg2, faulty)
			if err != nil {
				t.Fatal(err)
			}
			meta2, err := s2.Run(context.Background())
			if err != nil {
				t.Fatalf("faulty batched scan failed: %v", err)
			}
			if meta2.PacketsSent != 16384 {
				t.Errorf("PacketsSent = %d, want 16384", meta2.PacketsSent)
			}
			if meta2.SendErrors != 16384 {
				t.Errorf("SendErrors = %d, want 16384 (one per frame)", meta2.SendErrors)
			}
			if meta2.SendRetries != 16384 {
				t.Errorf("SendRetries = %d, want 16384 (one per frame)", meta2.SendRetries)
			}
			if meta2.SendDrops != 0 {
				t.Errorf("SendDrops = %d, want 0", meta2.SendDrops)
			}
			got := uniqueSuccessSet(sink2.all())
			if len(got) != len(cleanSet) {
				t.Fatalf("batch %d found %d services, clean run found %d",
					batch, len(got), len(cleanSet))
			}
			for ip := range got {
				if !cleanSet[ip] {
					t.Fatalf("batch %d found %s, absent from clean run", batch, ip)
				}
			}
		})
	}
}

func TestBatchedKillAndResumeExactCoverage(t *testing.T) {
	// Stop a large-batch scan mid-flight (MaxRuntime ends the send phase
	// partway through, then cooldown drains in-flight responses), then
	// resume from its reported progress: the two runs together must probe
	// every target exactly once and reach full ground-truth coverage.
	// Progress resolves at batch granularity, so this exercises the
	// give-back of filled-but-unflushed elements.
	in, cfg, sink1 := testbed(t, 222, "80")
	cfg.BatchSize = 256
	cfg.Rate = 30000 // slow enough that the stop lands mid-scan
	cfg.MaxRuntime = 150 * time.Millisecond
	link := netsim.NewLink(in, 1<<16, 0)
	s1, err := New(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	meta1, err := s1.Run(context.Background())
	if err != nil {
		t.Fatalf("interrupted run errored: %v", err)
	}
	link.Close()
	if meta1.PacketsSent == 0 || meta1.PacketsSent >= 16384 {
		t.Fatalf("PacketsSent = %d, want a mid-scan kill", meta1.PacketsSent)
	}

	in2, cfg2, sink2 := testbed(t, 222, "80")
	cfg2.Seed = cfg.Seed
	cfg2.BatchSize = 256
	cfg2.ResumeProgress = meta1.ThreadProgress
	link2 := netsim.NewLink(in2, 1<<16, 0)
	defer link2.Close()
	s2, err := New(cfg2, link2)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total := meta1.PacketsSent + meta2.PacketsSent; total != 16384 {
		t.Errorf("combined probes %d (=%d+%d), want exactly 16384",
			total, meta1.PacketsSent, meta2.PacketsSent)
	}
	union := uniqueSuccessSet(sink1.all())
	for ip := range uniqueSuccessSet(sink2.all()) {
		union[ip] = true
	}
	if want := expectedHits(in, []uint16{80}, cfg.OptionLayout); len(union) != want {
		t.Errorf("union of runs found %d services, ground truth %d", len(union), want)
	}
}
