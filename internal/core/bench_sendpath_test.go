package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"zmapgo/internal/packet"
	"zmapgo/internal/probe"
	"zmapgo/internal/ratelimit"
	"zmapgo/internal/validate"
)

// nullTransport accepts every frame instantly, isolating the cost of
// the send path itself (build, rate accounting, transport dispatch)
// from any simulated network behavior.
type nullTransport struct{ sent atomic.Uint64 }

func (t *nullTransport) Send(frame []byte) error { t.sent.Add(1); return nil }

func (t *nullTransport) SendBatch(frames [][]byte) (int, error) {
	t.sent.Add(uint64(len(frames)))
	return len(frames), nil
}

func (t *nullTransport) Recv() <-chan []byte { return nil }

func (t *nullTransport) Stats() (sent, received, dropped uint64) {
	return t.sent.Load(), 0, 0
}

func benchProbeCtx() *probe.Context {
	var key [validate.KeySize]byte
	copy(key[:], "sendpath-benchmark-validator-key")
	return &probe.Context{
		SrcIP:           0x0A000001,
		SrcMAC:          packet.MAC{2, 0, 0, 0, 0, 1},
		GwMAC:           packet.MAC{2, 0, 0, 0, 0, 2},
		Validator:       validate.New(key),
		SourcePortBase:  32768,
		SourcePortCount: 256,
		Options:         packet.LayoutMSS,
		RandomIPID:      true,
		TTL:             packet.DefaultProbeTTL,
		TimestampValue:  0xDEADBEEF,
	}
}

// BenchmarkSendPathPerProbe is the historical per-probe shape the
// engine used before batching: one rate token, one from-scratch probe
// build, one transport call per target.
func BenchmarkSendPathPerProbe(b *testing.B) {
	mod, err := probe.Lookup("tcp_synscan")
	if err != nil {
		b.Fatal(err)
	}
	ctx := benchProbeCtx()
	limiter := ratelimit.New(0, ratelimit.RealClock{})
	tr := &nullTransport{}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		limiter.Wait()
		buf, err = mod.MakeProbe(buf[:0], ctx, 0x0A000000+uint32(i), 443)
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Send(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendPathBatch is the batched template path: frames are
// re-patched in a preallocated ring, tokens granted per batch, and the
// whole batch handed to the transport in one call.
func BenchmarkSendPathBatch(b *testing.B) {
	for _, size := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			mod, err := probe.Lookup("tcp_synscan")
			if err != nil {
				b.Fatal(err)
			}
			ctx := benchProbeCtx()
			r, err := mod.(probe.Templater).MakeTemplate(ctx)
			if err != nil {
				b.Fatal(err)
			}
			limiter := ratelimit.New(0, ratelimit.RealClock{})
			tr := &nullTransport{}
			backing := make([]byte, size*r.Len())
			slots := make([][]byte, size)
			for i := range slots {
				slots[i] = backing[i*r.Len() : (i+1)*r.Len()]
				r.Seed(slots[i])
			}
			frames := make([][]byte, 0, size)
			b.ReportAllocs()
			b.ResetTimer()
			ip := uint32(0x0A000000)
			for done := 0; done < b.N; {
				frames = frames[:0]
				for len(frames) < size && done+len(frames) < b.N {
					slot := slots[len(frames)]
					r.Render(slot, ip, 443)
					frames = append(frames, slot)
					ip++
				}
				idx := 0
				for idx < len(frames) {
					n := limiter.WaitN(len(frames) - idx)
					sent, err := tr.SendBatch(frames[idx : idx+n])
					if err != nil {
						b.Fatal(err)
					}
					idx += sent
				}
				done += len(frames)
			}
		})
	}
}

// TestBatchSendPathZeroAllocs pins the acceptance bar: one full
// fill-and-flush cycle of the batched path allocates nothing.
func TestBatchSendPathZeroAllocs(t *testing.T) {
	mod, err := probe.Lookup("tcp_synscan")
	if err != nil {
		t.Fatal(err)
	}
	ctx := benchProbeCtx()
	r, err := mod.(probe.Templater).MakeTemplate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const size = 64
	limiter := ratelimit.New(0, ratelimit.RealClock{})
	tr := &nullTransport{}
	backing := make([]byte, size*r.Len())
	slots := make([][]byte, size)
	for i := range slots {
		slots[i] = backing[i*r.Len() : (i+1)*r.Len()]
		r.Seed(slots[i])
	}
	frames := make([][]byte, 0, size)
	ip := uint32(0x0A000000)
	allocs := testing.AllocsPerRun(100, func() {
		frames = frames[:0]
		for len(frames) < size {
			slot := slots[len(frames)]
			r.Render(slot, ip, 443)
			frames = append(frames, slot)
			ip++
		}
		idx := 0
		for idx < len(frames) {
			n := limiter.WaitN(len(frames) - idx)
			sent, err := tr.SendBatch(frames[idx : idx+n])
			if err != nil {
				t.Fatal(err)
			}
			idx += sent
		}
	})
	if allocs != 0 {
		t.Fatalf("batched send path allocates %.1f objects per batch, want 0", allocs)
	}
}
