package core

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zmapgo/internal/checkpoint"
	"zmapgo/internal/netsim"
	"zmapgo/internal/output"
	"zmapgo/internal/packet"
)

// canonRecords reduces a record set to a sorted, byte-comparable form.
// Timestamp is wall-clock and InCooldown is a timing annotation (a
// reordered straggler may land on either side of the cooldown boundary
// run to run); both are zeroed because neither is scan output the
// sharded path is allowed to change. Everything else — address, port,
// classification, success, repeat — must match byte for byte.
func canonRecords(t *testing.T, recs []output.Record) string {
	t.Helper()
	lines := make([]string, 0, len(recs))
	for _, r := range recs {
		r.Timestamp = 0
		r.InCooldown = false
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// recvTaxonomy is the rejection/acceptance accounting a scan reports;
// the sharded receive path must reproduce it exactly.
type recvTaxonomy struct {
	Recv, Truncated, Unsupported, Checksum, Invalid uint64
	Valid, Successes, Unique, Duplicates            uint64
}

func taxonomyOf(meta *output.Metadata) recvTaxonomy {
	return recvTaxonomy{
		Recv:        meta.PacketsRecv,
		Truncated:   meta.RecvTruncated,
		Unsupported: meta.RecvUnsupported,
		Checksum:    meta.RecvChecksumFail,
		Invalid:     meta.RecvInvalid,
		Valid:       meta.ValidResponses,
		Successes:   meta.Successes,
		Unique:      meta.UniqueSucc,
		Duplicates:  meta.Duplicates,
	}
}

// runFaultyScan executes one complete scan over the 10.0.0.0/18 testbed
// with the full receive-fault taxonomy enabled, single sender thread and
// zero link latency so traffic order — and therefore the seeded fault
// schedule — is identical run to run regardless of worker count.
func runFaultyScan(t *testing.T, workers int) (string, recvTaxonomy) {
	t.Helper()
	in, cfg, sink := testbed(t, 150, "80")
	cfg.Threads = 1
	cfg.RecvWorkers = workers
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	ft := netsim.NewRecvFaultTransport(link, netsim.RecvFaultConfig{
		Seed:          150,
		TruncateProb:  0.10,
		CorruptProb:   0.10,
		DuplicateProb: 0.20,
		ReorderProb:   0.20,
		ReorderDelay:  time.Millisecond,
		SpoofProb:     0.10,
	})
	defer ft.Stop()
	s, err := New(cfg, ft)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ft.Drain()
	return canonRecords(t, sink.all()), taxonomyOf(meta)
}

// TestShardedRecvEquivalence proves the tentpole's correctness bar: the
// sharded receive path at 2, 4, and 8 workers produces byte-identical
// output records and an identical rejection taxonomy to the 1-worker
// reference, under duplicates, reordering, truncation, corruption, and
// spoofed traffic.
func TestShardedRecvEquivalence(t *testing.T) {
	refRecords, refTax := runFaultyScan(t, 1)
	if refTax.Duplicates == 0 || refTax.Checksum == 0 || refTax.Invalid == 0 {
		t.Fatalf("reference run exercised too little of the taxonomy: %+v", refTax)
	}
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			records, tax := runFaultyScan(t, workers)
			if tax != refTax {
				t.Errorf("counter taxonomy diverged:\n got %+v\nwant %+v", tax, refTax)
			}
			if records != refRecords {
				t.Errorf("output records diverged from 1-worker reference\n got %d bytes\nwant %d bytes",
					len(records), len(refRecords))
			}
		})
	}
}

// TestShardedRecvResumeExactlyOnce is the kill-and-resume e2e for the
// per-shard dedup state: run 1 scans with 4 receive workers under
// duplicate faults and is gracefully stopped mid-scan; run 2 resumes
// from the final checkpoint with 2 workers (the merged key set must
// re-partition cleanly across a different worker count). The union must
// report every service exactly once even though the duplicate faults
// keep replaying responses the first run already saw.
func TestShardedRecvResumeExactlyOnce(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "scan.ckpt")
	faults := netsim.RecvFaultConfig{Seed: 151, DuplicateProb: 0.5}

	in, cfg, sink1 := testbed(t, 151, "80")
	cfg.Threads = 1
	cfg.RecvWorkers = 4
	cfg.Rate = 20000
	cfg.Cooldown = 150 * time.Millisecond
	cfg.CheckpointPath = ckpt
	link1 := netsim.NewLink(in, 1<<16, 0)
	ft1 := netsim.NewRecvFaultTransport(link1, faults)
	s1, err := New(cfg, ft1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *output.Metadata, 1)
	go func() {
		m, err := s1.Run(context.Background())
		if err != nil {
			t.Errorf("run 1: %v", err)
		}
		done <- m
	}()
	time.Sleep(150 * time.Millisecond)
	s1.Stop()
	meta1 := <-done
	ft1.Drain()
	ft1.Stop()
	link1.Close()
	if meta1.PacketsSent == 0 || meta1.PacketsSent >= 16384 {
		t.Fatalf("interrupt landed outside the scan: sent %d", meta1.PacketsSent)
	}
	if meta1.Duplicates == 0 {
		t.Fatal("run 1 saw no duplicates; the resume proves nothing")
	}

	snap, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dedup == nil {
		t.Fatal("final checkpoint carries no dedup state")
	}
	keys, err := checkpoint.DecodeKeys(snap.Dedup.Keys)
	if err != nil {
		t.Fatal(err)
	}
	// The merged window must hold every distinct response run 1 wrote.
	distinct := 0
	for _, r := range sink1.all() {
		if !r.Repeat {
			distinct++
		}
	}
	if len(keys) != distinct {
		t.Errorf("merged dedup carries %d keys, run 1 saw %d distinct responses", len(keys), distinct)
	}

	// Run 2: resume with a DIFFERENT worker count against an identically
	// populated simulator; the flow hash re-partitions the restored keys.
	in2, cfg2, sink2 := testbed(t, 151, "80")
	cfg2.Threads = 1
	cfg2.RecvWorkers = 2
	cfg2.Cooldown = 150 * time.Millisecond
	cfg2.Seed = 0 // adopted from the checkpoint
	cfg2.Resume = snap
	cfg2.CheckpointPath = ckpt
	link2 := netsim.NewLink(in2, 1<<16, 0)
	ft2 := netsim.NewRecvFaultTransport(link2, faults)
	defer ft2.Stop()
	defer link2.Close()
	s2, err := New(cfg2, ft2)
	if err != nil {
		t.Fatal(err)
	}
	meta2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ft2.Drain()

	if total := meta1.PacketsSent + meta2.PacketsSent; total != 16384 {
		t.Errorf("runs sent %d+%d = %d probes, want exactly 16384",
			meta1.PacketsSent, meta2.PacketsSent, total)
	}
	seen := map[string]int{}
	for _, r := range append(sink1.all(), sink2.all()...) {
		if r.Success && !r.Repeat {
			seen[r.Saddr]++
		}
	}
	for addr, n := range seen {
		if n != 1 {
			t.Errorf("%s reported as new success %d times across the runs", addr, n)
		}
	}
	want := expectedHits(in, []uint16{80}, cfg.OptionLayout)
	if len(seen) != want {
		t.Errorf("union found %d services, ground truth %d", len(seen), want)
	}
}

// collectResponseFrames harvests n structurally valid, correctly
// checksummed response frames that s's validator will accept, by probing
// a private lossless simulator with s's own probe context and capturing
// what comes back. The frames answer distinct targets, so they exercise
// the dedup first-sighting path once each and the repeat path forever
// after.
func collectResponseFrames(t testing.TB, s *Scanner, n int) [][]byte {
	simCfg := netsim.DefaultConfig(77)
	simCfg.ProbeLoss, simCfg.ResponseLoss, simCfg.PathBadFraction = 0, 0, 0
	simCfg.BlowbackFraction = 0
	// Responses are harvested one probe at a time, so leave no simulated
	// round-trip time: at the default 20-300ms per host, collecting a
	// thousand frames would take minutes of wall clock.
	simCfg.RTTMin, simCfg.RTTMax = 0, 0
	in := netsim.New(simCfg)
	link := netsim.NewLink(in, 1<<16, 0)
	defer link.Close()
	opts := packet.BuildOptions(s.cfg.OptionLayout, 0)
	frames := make([][]byte, 0, n)
	buf := make([]byte, 0, 128)
	var err error
	for ip := uint32(0x0A000000); len(frames) < n; ip++ {
		if ip >= 0x0A000000+1<<20 {
			t.Fatalf("exhausted address range with only %d of %d responses", len(frames), n)
		}
		if !in.ExpectedSYNACK(ip, 80, opts) {
			continue
		}
		buf, err = s.module.MakeProbe(buf[:0], s.probeCtx, ip, 80)
		if err != nil {
			t.Fatal(err)
		}
		if err := link.Send(buf); err != nil {
			t.Fatal(err)
		}
		select {
		case f := <-link.Recv():
			frames = append(frames, append([]byte(nil), f...))
		case <-time.After(5 * time.Second):
			t.Fatalf("no response for expected SYN-ACK target %x", ip)
		}
	}
	return frames
}

// newRecvBenchScanner builds a scanner suitable for driving recvLoop
// directly (no Run): single sender config, sharded receive workers, a
// counting sink, and a modest dedup window so construction stays cheap.
func newRecvBenchScanner(t testing.TB, workers int, tr Transport) *Scanner {
	cons := newBenchConstraint()
	ps, err := parseBenchPorts()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Constraint:   cons,
		Ports:        ps,
		Seed:         7,
		Threads:      1,
		RecvWorkers:  workers,
		DedupWindow:  1 << 16,
		SourceIP:     0xC0A80002,
		SourceMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		GatewayMAC:   packet.MAC{2, 0, 0, 0, 0, 2},
		OptionLayout: packet.LayoutMSS,
		RandomIPID:   true,
		Results:      &output.CountingWriter{},
	}
	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	s.start = time.Now()
	return s
}

// TestShardedRecvZeroAllocs pins the perf acceptance bar: once caches
// are warm (dedup window populated, saddr strings interned, result
// buffers grown), handling a frame end to end — parse+verify, classify,
// dedup, result buffering — plus the merge-writer drain allocates
// nothing.
func TestShardedRecvZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are not meaningful")
	}
	tr := newReplayTransport(nil)
	s := newRecvBenchScanner(t, 1, tr)
	frames := collectResponseFrames(t, s, 64)
	w := s.recvPipe.workers[0]
	var cooldownAt atomic.Int64
	handleAll := func() {
		t0 := time.Now()
		for _, f := range frames {
			s.handleFrame(w, f, t0, &cooldownAt)
		}
		s.drainResults()
	}
	handleAll() // warm: first sightings, saddr interning, slice growth
	handleAll() // warm: repeat path
	if allocs := testing.AllocsPerRun(100, handleAll); allocs != 0 {
		t.Fatalf("sharded receive path allocates %.2f objects per %d-frame batch, want 0",
			allocs, len(frames))
	}
}
