// Package core is the scan engine: it wires target generation (cyclic),
// sharding, probe modules, rate limiting, response validation,
// deduplication, and the four output streams into ZMap's send/receive
// architecture.
//
// Concurrency model (unchanged since "Zippier ZMap", modulo the pizza
// sharding switch): N sender goroutines each own a disjoint subshard of
// the cyclic permutation and share nothing but atomic counters; one
// receiver goroutine parses, validates, deduplicates, and writes results
// as they arrive; the main goroutine waits for senders, then holds the
// receiver open through a cooldown window for stragglers.
//
// The engine is stateless per target: probes carry validator-derived
// fields, so the receiver needs no probe table. Configuration, data,
// metadata and status updates are kept on separate streams (§5).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zmapgo/internal/cyclic"
	"zmapgo/internal/dedup"
	"zmapgo/internal/monitor"
	"zmapgo/internal/output"
	"zmapgo/internal/packet"
	"zmapgo/internal/probe"
	"zmapgo/internal/ratelimit"
	"zmapgo/internal/shard"
	"zmapgo/internal/target"
	"zmapgo/internal/validate"
)

// Version is reported in scan metadata. Per §5's release-discipline
// lesson, it follows semantic versioning and changes with every release.
const Version = "1.0.0"

// Transport is the wire the scanner sends probes into and receives
// responses from. netsim.Link implements it for the simulated Internet; a
// raw-socket implementation would satisfy it on a real network.
type Transport interface {
	Send(frame []byte)
	Recv() <-chan []byte
	Stats() (sent, received, dropped uint64)
}

// Config describes one scan. Zero values get ZMap's defaults where a
// default exists; Validate reports what cannot be defaulted.
type Config struct {
	// ProbeModule is a registry name: tcp_synscan, icmp_echoscan, udp.
	ProbeModule string

	// Targets: eligible addresses (allowlist minus blocklist) and ports.
	Constraint *target.Constraint
	Ports      *target.PortSet

	// Seed fixes the permutation (generator and offset); shards of the
	// same scan must share it. Zero means "derive from entropy" — pass
	// an explicit seed for reproducible scans.
	Seed int64

	// Sharding.
	Shards     int // total shards (machines), default 1
	ShardIndex int // this machine's shard, default 0
	Threads    int // sender goroutines, default 1
	ShardMode  shard.Mode

	// Rate is the aggregate packets-per-second budget (0 = unlimited).
	Rate float64

	// ProbesPerTarget sends each probe k times (ZMap --probes).
	ProbesPerTarget int

	// MaxTargets caps targets probed by this shard (0 = no cap). The
	// multiport design tracks (IP, port) targets, not hosts: a "max
	// hosts" option is no longer expressible without extra state (§4.1).
	MaxTargets uint64

	// Cooldown is how long to keep receiving after sending completes.
	Cooldown time.Duration

	// MaxRuntime stops sending after this duration (0 = no limit); the
	// cooldown still runs afterward. Mirrors ZMap's --max-runtime.
	MaxRuntime time.Duration

	// ResumeProgress restores an interrupted scan: element counts
	// consumed per sender thread, as reported in the previous run's
	// metadata (ThreadProgress). Length must equal Threads, and Seed,
	// Shards, ShardIndex, ShardMode, Ports, and the constraint must be
	// identical to the original scan or coverage guarantees are void.
	ResumeProgress []uint64

	// DedupWindow sizes the sliding window (0 = ZMap default 10^6;
	// negative disables dedup). Deduper overrides it when non-nil (e.g.
	// the legacy full bitmap).
	DedupWindow int
	Deduper     dedup.Deduper

	// Probe construction.
	SourceIP        uint32
	SourceMAC       packet.MAC
	GatewayMAC      packet.MAC
	SourcePortBase  uint16 // default 32768
	SourcePortCount uint16 // default 256
	OptionLayout    packet.OptionLayout
	RandomIPID      bool // 2024 default behavior when true
	TTL             byte

	// Output streams.
	Results      output.Writer // required (use CountingWriter to discard)
	StatusWriter io.Writer     // optional 1 Hz status CSV
	Logger       *slog.Logger  // optional; defaults to a no-op logger
	MetadataOut  io.Writer     // optional end-of-scan JSON

	// Clock is for tests; nil uses the wall clock.
	Clock ratelimit.Clock
}

func (c *Config) setDefaults() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.ProbesPerTarget == 0 {
		c.ProbesPerTarget = 1
	}
	if c.Cooldown == 0 {
		c.Cooldown = 8 * time.Second
	}
	if c.SourcePortBase == 0 {
		c.SourcePortBase = 32768
	}
	if c.SourcePortCount == 0 {
		c.SourcePortCount = 256
	}
	if c.TTL == 0 {
		c.TTL = packet.DefaultProbeTTL
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Clock == nil {
		c.Clock = ratelimit.RealClock{}
	}
	if c.ProbeModule == "" {
		c.ProbeModule = "tcp_synscan"
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Constraint == nil {
		return errors.New("core: Constraint is required")
	}
	if c.Ports == nil || c.Ports.Len() == 0 {
		return errors.New("core: Ports is required")
	}
	if c.Results == nil {
		return errors.New("core: Results writer is required")
	}
	if c.ShardIndex < 0 || c.Shards <= c.ShardIndex {
		return fmt.Errorf("core: shard index %d outside [0, %d)", c.ShardIndex, c.Shards)
	}
	if _, err := probe.Lookup(c.ProbeModule); err != nil {
		return err
	}
	if c.ResumeProgress != nil && len(c.ResumeProgress) != c.Threads {
		return fmt.Errorf("core: ResumeProgress has %d entries for %d threads", len(c.ResumeProgress), c.Threads)
	}
	return nil
}

// Scanner executes one scan.
type Scanner struct {
	cfg       Config
	module    probe.Module
	transport Transport
	space     *cyclic.Space
	cycle     cyclic.Cycle
	probeCtx  *probe.Context
	counters  monitor.Counters
	deduper   dedup.Deduper
	sentCount atomic.Uint64 // targets probed (for MaxTargets)
	progress  []atomic.Uint64
	start     time.Time
}

// New prepares a scanner: it finalizes the constraint, sizes the cyclic
// group, runs the generator search, and builds the probe context.
func New(cfg Config, transport Transport) (*Scanner, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if transport == nil {
		return nil, errors.New("core: transport is required")
	}
	mod, err := probe.Lookup(cfg.ProbeModule)
	if err != nil {
		return nil, err
	}
	cfg.Constraint.Finalize()
	numIPs := cfg.Constraint.Count()
	if numIPs == 0 {
		return nil, errors.New("core: no eligible addresses after blocklist")
	}
	space, err := cyclic.NewSpace(numIPs, uint64(cfg.Ports.Len()))
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	cfg.Seed = seed
	rng := rand.New(rand.NewSource(seed))
	cycle := cyclic.NewCycle(space.Group(), rng)

	var key [validate.KeySize]byte
	rng.Read(key[:])
	validator := validate.New(key)

	deduper := cfg.Deduper
	if deduper == nil && cfg.DedupWindow >= 0 {
		size := cfg.DedupWindow
		if size == 0 {
			size = dedup.DefaultWindowSize
		}
		deduper = dedup.NewWindow(size)
	}

	return &Scanner{
		cfg:       cfg,
		module:    mod,
		transport: transport,
		space:     space,
		cycle:     cycle,
		deduper:   deduper,
		progress:  make([]atomic.Uint64, cfg.Threads),
		probeCtx: &probe.Context{
			SrcIP:           cfg.SourceIP,
			SrcMAC:          cfg.SourceMAC,
			GwMAC:           cfg.GatewayMAC,
			Validator:       validator,
			SourcePortBase:  cfg.SourcePortBase,
			SourcePortCount: cfg.SourcePortCount,
			Options:         cfg.OptionLayout,
			RandomIPID:      cfg.RandomIPID,
			TTL:             cfg.TTL,
			TimestampValue:  uint32(seed),
		},
	}, nil
}

// Space exposes the target space (for tests and tooling).
func (s *Scanner) Space() *cyclic.Space { return s.space }

// Cycle exposes the permutation (generator, offset) used by this scan.
func (s *Scanner) Cycle() cyclic.Cycle { return s.cycle }

// Counters exposes live scan counters for external monitoring.
func (s *Scanner) Counters() *monitor.Counters { return &s.counters }

// Progress returns the per-thread count of permutation elements consumed
// so far. Feed it back via Config.ResumeProgress (with an identical
// configuration) to continue an interrupted scan without re-probing.
func (s *Scanner) Progress() []uint64 {
	out := make([]uint64, len(s.progress))
	for i := range s.progress {
		out[i] = s.progress[i].Load()
	}
	return out
}

// Run executes the scan to completion (or ctx cancellation) and returns
// the metadata summary. Run may be called once.
func (s *Scanner) Run(ctx context.Context) (*output.Metadata, error) {
	cfg := &s.cfg
	s.start = time.Now()
	log := cfg.Logger
	excluded, excludedFrac := cfg.Constraint.Excluded()
	log.Info("scan starting",
		"module", s.module.Name(),
		"targets", s.space.Targets(),
		"excluded_addrs", excluded,
		"excluded_pct", fmt.Sprintf("%.2f%%", excludedFrac*100),
		"group", s.space.Group().P,
		"generator", s.cycle.Generator,
		"shard", cfg.ShardIndex, "shards", cfg.Shards,
		"threads", cfg.Threads, "rate", cfg.Rate)

	var status *monitor.StatusWriter
	if cfg.StatusWriter != nil {
		status = monitor.NewStatusWriter(cfg.StatusWriter, &s.counters, time.Second)
	}

	// Senders. MaxRuntime bounds the sending phase via a derived context.
	sendCtx := ctx
	var cancelSend context.CancelFunc
	if cfg.MaxRuntime > 0 {
		sendCtx, cancelSend = context.WithTimeout(ctx, cfg.MaxRuntime)
		defer cancelSend()
	}
	var wg sync.WaitGroup
	order := s.space.Group().Order()
	for t := 0; t < cfg.Threads; t++ {
		a := shard.Plan(cfg.ShardMode, order, cfg.Shards, cfg.Threads, cfg.ShardIndex, t)
		if cfg.ResumeProgress != nil {
			done := cfg.ResumeProgress[t]
			if done > a.Count {
				done = a.Count
			}
			a.Start += done * a.Stride
			a.Count -= done
			s.progress[t].Store(done)
		}
		wg.Add(1)
		go func(t int, a shard.Assignment) {
			defer wg.Done()
			s.sendLoop(sendCtx, t, a)
		}(t, a)
	}

	// Receiver.
	recvDone := make(chan struct{})
	stopRecv := make(chan struct{})
	var cooldownAt atomic.Int64 // unix nanos when cooldown began; 0 while sending
	go func() {
		defer close(recvDone)
		s.recvLoop(ctx, stopRecv, &cooldownAt)
	}()

	wg.Wait()
	log.Debug("senders finished; entering cooldown", "cooldown", cfg.Cooldown)
	cooldownAt.Store(time.Now().UnixNano())
	select {
	case <-ctx.Done():
	case <-time.After(cfg.Cooldown):
	}
	close(stopRecv)
	<-recvDone
	if status != nil {
		status.Stop()
	}

	meta := s.buildMetadata()
	if cfg.MetadataOut != nil {
		if err := meta.Emit(cfg.MetadataOut); err != nil {
			return meta, fmt.Errorf("core: writing metadata: %w", err)
		}
	}
	if err := cfg.Results.Close(); err != nil {
		return meta, fmt.Errorf("core: closing results: %w", err)
	}
	log.Info("scan complete",
		"sent", meta.PacketsSent, "received", meta.PacketsRecv,
		"successes", meta.UniqueSucc, "hitrate", meta.HitRate)
	return meta, nil
}

// sendLoop walks one subshard, emitting probes under the per-thread rate
// share. It owns its iterator and probe buffer; nothing is shared except
// the per-thread progress counter, which makes the scan resumable.
func (s *Scanner) sendLoop(ctx context.Context, thread int, a shard.Assignment) {
	cfg := &s.cfg
	limiter := ratelimit.New(cfg.Rate/float64(cfg.Threads), cfg.Clock)
	it := a.Iterator(s.cycle)
	buf := make([]byte, 0, 128)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		elem, ok := it.Next()
		if !ok {
			return
		}
		s.progress[thread].Add(1)
		ipIdx, portIdx, ok := s.space.Decode(elem)
		if !ok {
			continue // element outside the target space; skip
		}
		if n := s.sentCount.Add(1); cfg.MaxTargets > 0 && n > cfg.MaxTargets {
			// The element was consumed but not probed; give it back so
			// resumed scans cover it.
			s.progress[thread].Add(^uint64(0))
			return
		}
		ip := cfg.Constraint.At(ipIdx)
		port := cfg.Ports.At(int(portIdx))
		for p := 0; p < cfg.ProbesPerTarget; p++ {
			limiter.Wait()
			buf = s.module.MakeProbe(buf[:0], s.probeCtx, ip, port)
			s.transport.Send(buf)
			s.counters.Sent()
		}
	}
}

// recvLoop parses, validates, deduplicates, and writes responses until
// stop closes (end of cooldown) or the context dies.
func (s *Scanner) recvLoop(ctx context.Context, stop <-chan struct{}, cooldownAt *atomic.Int64) {
	cfg := &s.cfg
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case frame := <-s.transport.Recv():
			s.counters.Recv()
			f, err := packet.Parse(frame)
			if err != nil {
				cfg.Logger.Debug("unparseable frame", "err", err)
				continue
			}
			res, ok := s.module.Classify(s.probeCtx, f)
			if !ok {
				continue
			}
			s.counters.Valid()
			repeat := false
			if s.deduper != nil {
				repeat = s.deduper.Seen(res.IP, res.Port)
			}
			if repeat {
				s.counters.Duplicate()
			}
			if res.Success {
				s.counters.Success(!repeat)
			}
			inCooldown := cooldownAt.Load() != 0
			rec := output.NewRecord(res.IP, res.Port, res.Class, res.Success, repeat, inCooldown, res.TTL, time.Since(s.start))
			if err := cfg.Results.Write(rec); err != nil {
				cfg.Logger.Error("result write failed", "err", err)
			}
		}
	}
}

func (s *Scanner) buildMetadata() *output.Metadata {
	cfg := &s.cfg
	snap := s.counters.Snapshot()
	_, _, dropped := s.transport.Stats()
	end := time.Now()
	dur := end.Sub(s.start).Seconds()
	hitRate := 0.0
	if snap.Sent > 0 {
		hitRate = float64(snap.UniqueSucc) * float64(cfg.ProbesPerTarget) / float64(snap.Sent)
	}
	targets := s.sentCount.Load()
	if cfg.MaxTargets > 0 && targets > cfg.MaxTargets {
		targets = cfg.MaxTargets
	}
	return &output.Metadata{
		Tool:           "zmapgo",
		Version:        Version,
		ProbeModule:    s.module.Name(),
		Seed:           cfg.Seed,
		Shards:         cfg.Shards,
		ShardIndex:     cfg.ShardIndex,
		SenderThreads:  cfg.Threads,
		RatePPS:        cfg.Rate,
		Ports:          cfg.Ports.String(),
		OptionLayout:   cfg.OptionLayout.String(),
		RandomIPID:     cfg.RandomIPID,
		MaxTargets:     cfg.MaxTargets,
		CooldownSecs:   cfg.Cooldown.Seconds(),
		Allowlisted:    cfg.Constraint.Count(),
		Blocklisted:    excludedCount(cfg.Constraint),
		Group:          s.space.Group().P,
		Generator:      s.cycle.Generator,
		StartTime:      s.start,
		EndTime:        end,
		Duration:       dur,
		TargetsScanned: targets,
		PacketsSent:    snap.Sent,
		PacketsRecv:    snap.Recv,
		ValidResponses: snap.Valid,
		Successes:      snap.Success,
		UniqueSucc:     snap.UniqueSucc,
		Duplicates:     snap.Duplicates,
		RecvDrops:      dropped,
		HitRate:        hitRate,
		SendRatePPS:    float64(snap.Sent) / dur,
		ThreadProgress: s.Progress(),
	}
}

func excludedCount(c *target.Constraint) uint64 {
	n, _ := c.Excluded()
	return n
}
